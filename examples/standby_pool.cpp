// Shared standby pool: four cells, each with a dedicated primary PHY,
// all protected by ONE pooled hot standby — the scale-out economics the
// paper's deployment note points at: standby capacity is shared, not
// 1:1 duplicated.
//
// When cell 2's primary dies, Orion promotes the pooled standby for
// that cell alone; the other three cells never drop a TTI. Because the
// promoted member can no longer back anyone, Orion re-points the
// survivors at the next pool member (here: none left), leaving them
// *explicitly* unprotected rather than pointed at a stale standby — an
// operator restarting the dead PHY into the pool restores protection.
#include <cstdio>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main() {
  TestbedConfig config;
  config.seed = 12;
  config.cells.assign(4, CellSpec{1, {20.0}});  // 4 cells, 1 UE each
  config.standby_pool_size = 1;                 // 1 shared standby PHY
  Testbed testbed{config};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  UdpFlow flow{testbed.sim(), testbed.ue_pipe(2), testbed.server_pipe(2),
               flow_cfg};

  testbed.start();
  testbed.run_until(100_ms);
  flow.start();

  auto report = [&](const char* when) {
    std::printf("%s\n", when);
    for (int c = 0; c < testbed.num_cells(); ++c) {
      const PhyId standby = testbed.orion().standby_phy(testbed.ru_id(c));
      std::printf("  cell %d: active phy-%u  standby %-12s "
                  "dropped TTIs %lld  UE %s\n",
                  c, testbed.orion().active_phy(testbed.ru_id(c)).value(),
                  standby == PhyId{}
                      ? "(unprotected)"
                      : ("phy-" + std::to_string(standby.value())).c_str(),
                  static_cast<long long>(testbed.ru_at(c).stats().dropped_ttis),
                  testbed.ue(c).connected() ? "connected" : "DETACHED");
    }
    std::printf("  pool members available: %zu\n",
                testbed.orion().pool_available());
  };

  testbed.run_until(1'000_ms);
  report("steady state (one pooled standby backs all four cells):");

  std::printf("\nkilling phy-%u (cell 2's primary) ...\n\n",
              testbed.phy_id(2).value());
  testbed.kill_phy(testbed.phy_id(2));
  testbed.run_until(3'000_ms);
  report("after failover:");
  std::printf("  UDP packets through cell 2: %llu\n",
              static_cast<unsigned long long>(flow.packets_received()));

  std::printf("\nrestarting the dead PHY into the pool ...\n\n");
  testbed.revive_phy_as_standby(testbed.phy_id(2));
  testbed.run_until(4'000_ms);
  report("after the revived PHY rejoins the pool:");

  // The demo doubles as a smoke test: cell 2 must have failed over onto
  // the pooled standby with the other cells untouched.
  const bool ok =
      testbed.orion().active_phy(testbed.ru_id(2)) == testbed.phy_id(4) &&
      testbed.ue(2).connected() &&
      testbed.ru_at(0).stats().dropped_ttis == 0 &&
      testbed.ru_at(1).stats().dropped_ttis == 0 &&
      testbed.ru_at(3).stats().dropped_ttis == 0;
  std::printf("\n%s\n", ok ? "cell 2 recovered on the pooled standby; "
                             "cells 0/1/3 never dropped a TTI."
                           : "UNEXPECTED END STATE — see report above");
  return ok ? 0 : 1;
}
