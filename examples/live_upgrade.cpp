// Live PHY upgrade: roll out a PHY build with stronger forward error
// correction, with zero downtime (§8.3).
//
// The standby PHY runs the "new" build (12 LDPC iterations instead of
// 2). A UE whose SNR sits near the old build's decoding threshold
// suffers frequent CRC failures and HARQ retransmissions; after a
// planned migration to the upgraded standby, first-shot decoding works
// and its throughput rises — without a maintenance window.
#include <cstdio>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main() {
  TestbedConfig config;
  config.seed = 5;
  config.num_ues = 1;
  config.ue_mean_snr_db = {11.2};     // near the 16QAM threshold
  config.phy.ldpc_max_iters = 2;      // old build on the primary
  config.secondary_ldpc_iters = 12;   // upgraded build on the standby
  Testbed testbed{config};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow uplink{testbed.sim(), testbed.ue_pipe(0), testbed.server_pipe(0),
                 flow_cfg};

  testbed.start();
  testbed.run_until(100_ms);
  uplink.start();

  std::printf("old PHY build: %d FEC iterations; upgrading at t=4.0 s to "
              "%d iterations\n\n",
              testbed.phy_a().ldpc_max_iters(),
              testbed.phy_b().ldpc_max_iters());
  testbed.sim().at(4'000_ms, [&testbed] { testbed.planned_migration(); });

  std::printf("%8s %18s\n", "t (s)", "UL goodput (Mbps)");
  double window_start_bytes = 0;
  for (Nanos t = 1'000_ms; t <= 8'000_ms; t += 500_ms) {
    testbed.run_until(t);
    double total = 0;
    for (std::size_t b = 0; b < std::size_t(t / 10_ms); ++b) {
      total += uplink.goodput().bin(b);
    }
    std::printf("%8.1f %18.1f%s\n", to_seconds(t),
                (total - window_start_bytes) * 8.0 / 0.5 / 1e6,
                t == 4'000_ms ? "   <- upgrade" : "");
    window_start_bytes = total;
  }

  const auto& old_phy = testbed.phy_a().stats();
  const auto& new_phy = testbed.phy_b().stats();
  auto rate = [](const PhyStats& s) {
    return s.ul_tbs_decoded > 0
               ? double(s.ul_crc_ok) / double(s.ul_tbs_decoded)
               : 0.0;
  };
  std::printf("\nfirst-shot+HARQ decode success: old build %.0f%%, "
              "upgraded build %.0f%%\n",
              rate(old_phy) * 100, rate(new_phy) * 100);
  std::printf("dropped TTIs during upgrade: %lld — no maintenance window\n",
              static_cast<long long>(testbed.ru().stats().dropped_ttis));
  return 0;
}
