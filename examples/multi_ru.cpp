// Multi-RU deployment: primaries and hot standbys co-located within the
// PHY processes, as the paper's deployment note describes — "our design
// does not require dedicated servers to run just secondary PHYs".
//
// RU 1 is primary on PHY-A and standby on PHY-B; RU 2 the other way
// around. Killing PHY-A therefore fails over RU 1 onto PHY-B (which
// was already doing RU 2's real work) while RU 2 never notices.
#include <cstdio>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main() {
  TestbedConfig config;
  config.seed = 6;
  config.num_ues = 1;      // UE 1   on RU 1 (primary PHY-A)
  config.num_ues_ru2 = 1;  // UE 101 on RU 2 (primary PHY-B)
  config.ue_mean_snr_db = {20.0, 20.0};
  Testbed testbed{config};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 8e6;
  UdpFlow flow_ru1{testbed.sim(), testbed.ue_pipe(0), testbed.server_pipe(0),
                   flow_cfg};
  UdpFlowConfig flow_cfg2 = flow_cfg;
  UdpFlow flow_ru2{testbed.sim(), testbed.ue_pipe(1), testbed.server_pipe(1),
                   flow_cfg2};

  testbed.start();
  testbed.run_until(100_ms);
  flow_ru1.start();
  flow_ru2.start();

  auto report = [&](const char* when) {
    std::printf("%s\n", when);
    std::printf("  RU1 active PHY: phy-%u    RU2 active PHY: phy-%u\n",
                testbed.mbox().active_phy(Testbed::kRu).value(),
                testbed.mbox().active_phy(Testbed::kRu2).value());
    std::printf("  RU1 UE: %s (%llu pkts)   RU2 UE: %s (%llu pkts)\n",
                testbed.ue(0).connected() ? "connected" : "DETACHED",
                static_cast<unsigned long long>(flow_ru1.packets_received()),
                testbed.ue(1).connected() ? "connected" : "DETACHED",
                static_cast<unsigned long long>(flow_ru2.packets_received()));
  };

  testbed.run_until(2'000_ms);
  report("steady state (cross-assigned primaries):");

  std::printf("\nkilling PHY-A (primary for RU1, standby for RU2) ...\n\n");
  testbed.kill_primary_phy();
  testbed.run_until(4'000_ms);
  report("after failover:");
  std::printf("  RU1 dropped TTIs: %lld   RU2 dropped TTIs: %lld\n",
              static_cast<long long>(testbed.ru().stats().dropped_ttis),
              static_cast<long long>(testbed.ru2().stats().dropped_ttis));
  std::printf(
      "\nPHY-B now serves both RUs; RU2 experienced zero disruption.\n"
      "An operator would now restart PHY-A and re-adopt it as the\n"
      "standby for both RUs (see examples in the test suite).\n");

  // Smoke-test verdict: the failover must have landed both RUs on PHY-B
  // with both UEs still attached and RU2 completely untouched.
  const bool ok =
      testbed.mbox().active_phy(Testbed::kRu) == Testbed::kPhyB &&
      testbed.mbox().active_phy(Testbed::kRu2) == Testbed::kPhyB &&
      testbed.ue(0).connected() && testbed.ue(1).connected() &&
      testbed.ru2().stats().dropped_ttis == 0;
  if (!ok) {
    std::printf("\nUNEXPECTED END STATE — see report above\n");
  }
  return ok ? 0 : 1;
}
