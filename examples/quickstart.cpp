// Quickstart: bring up the simulated 5G vRAN testbed with Slingshot,
// run bidirectional traffic, then perform a planned zero-downtime PHY
// migration.
//
//   $ ./build/examples/quickstart
//
// What you are looking at:
//  * a radio unit with one attached UE, a primary PHY server, a hot
//    standby PHY server kept alive with null FAPI, and an L2 server —
//    all connected through a programmable edge switch running
//    Slingshot's fronthaul middlebox and failure detector;
//  * Orion middlebox processes interposed between the L2 and each PHY.
#include <cstdio>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main() {
  // --- Configure the deployment (defaults mirror the paper's testbed:
  // 100 MHz carrier, 30 kHz SCS => 500 us TTIs, DDDSU TDD).
  TestbedConfig config;
  config.seed = 1;
  config.num_ues = 1;
  config.ue_mean_snr_db = {20.0};

  Testbed testbed{config};

  // --- Attach iperf-like UDP flows in both directions.
  UdpFlowConfig ul_cfg;
  ul_cfg.rate_bps = 12e6;
  UdpFlow uplink{testbed.sim(), testbed.ue_pipe(0), testbed.server_pipe(0),
                 ul_cfg};
  UdpFlowConfig dl_cfg;
  dl_cfg.rate_bps = 80e6;
  UdpFlow downlink{testbed.sim(), testbed.server_pipe(0), testbed.ue_pipe(0),
                   dl_cfg};

  // --- Power on and let link adaptation settle.
  testbed.start();
  testbed.run_until(100_ms);
  uplink.start();
  downlink.start();

  std::printf("running traffic for 2 s ...\n");
  testbed.run_until(2'000_ms);

  std::printf("  uplink:   %llu packets delivered (%.1f%% loss)\n",
              static_cast<unsigned long long>(uplink.packets_received()),
              uplink.loss_rate() * 100);
  std::printf("  downlink: %llu packets delivered (%.1f%% loss)\n",
              static_cast<unsigned long long>(downlink.packets_received()),
              downlink.loss_rate() * 100);
  std::printf("  active PHY: phy-%u (primary)\n",
              testbed.mbox().active_phy(Testbed::kRu).value());

  // --- Planned migration to the hot standby at a TTI boundary.
  std::printf("\nplanned migration to the standby PHY ...\n");
  testbed.planned_migration();
  testbed.run_until(4'000_ms);

  std::printf("  active PHY: phy-%u (was the standby)\n",
              testbed.mbox().active_phy(Testbed::kRu).value());
  std::printf("  dropped TTIs: %lld (zero-downtime)\n",
              static_cast<long long>(testbed.ru().stats().dropped_ttis));
  std::printf("  UE state: %s, radio-link failures: %lld\n",
              testbed.ue(0).connected() ? "connected" : "DISCONNECTED",
              static_cast<long long>(testbed.ue(0).stats().rlf_events));
  std::printf("  pipelined uplink drained through Orion: %llu responses\n",
              static_cast<unsigned long long>(
                  testbed.orion().stats().drained_responses_accepted));
  std::printf("  standby kept hot with %llu null FAPI requests\n",
              static_cast<unsigned long long>(
                  testbed.orion().stats().null_requests_sent));
  return 0;
}
