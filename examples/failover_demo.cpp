// Failover demo: a video call survives a PHY crash.
//
// The primary PHY process is killed (fail-stop) while a 500 kbps video
// stream plays. The in-switch failure detector notices the missing
// per-TTI downlink fronthaul heartbeat within 450 us, Orion steers the
// FAPI and fronthaul to the hot standby at a TTI boundary, and the call
// continues — the UE never deattaches. Run with --no-slingshot to watch
// the same crash take the call down for ~6 seconds.
#include <cstdio>
#include <cstring>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main(int argc, char** argv) {
  const bool slingshot_enabled =
      !(argc > 1 && std::strcmp(argv[1], "--no-slingshot") == 0);

  TestbedConfig config;
  config.seed = 3;
  config.num_ues = 1;
  config.ue_mean_snr_db = {20.0};
  config.mode = slingshot_enabled ? TestbedMode::kSlingshot
                                  : TestbedMode::kBaselineFailover;
  Testbed testbed{config};

  VideoConfig video_cfg;
  video_cfg.bitrate_bps = 500e3;
  VideoApp video{testbed.sim(), testbed.server_pipe(0), testbed.ue_pipe(0),
                 video_cfg};

  testbed.start();
  testbed.run_until(100_ms);
  video.start();

  std::printf("mode: %s\n",
              slingshot_enabled ? "Slingshot" : "baseline (full-stack backup)");
  std::printf("video call running; killing the primary PHY at t=3.0 s\n\n");
  testbed.sim().at(3'000_ms, [&testbed] { testbed.kill_primary_phy(); });

  std::printf("%8s %14s %12s\n", "t (s)", "bitrate (kbps)", "UE state");
  for (Nanos t = 1'000_ms; t <= 12'000_ms; t += 1'000_ms) {
    testbed.run_until(t);
    std::printf("%8.1f %14.0f %12s\n", to_seconds(t),
                video.bitrate_kbps_at(t - 500_ms),
                testbed.ue(0).connected() ? "connected" : "DETACHED");
  }

  const Nanos detected = testbed.last_failover_notification();
  if (detected > 0) {
    std::printf("\nfailure detected %.0f us after the crash\n",
                to_micros(detected - 3'000_ms));
  }
  std::printf("dropped TTIs: %lld; UE reattaches: %lld\n",
              static_cast<long long>(testbed.ru().stats().dropped_ttis),
              static_cast<long long>(testbed.ue(0).stats().reattach_events));
  return 0;
}
