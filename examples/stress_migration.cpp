// Stress: migrate the PHY back and forth many times per second while a
// UDP flow runs (the §8.4 experiment in miniature), demonstrating that
// discarding all inter-TTI PHY state at every migration never takes the
// network down.
#include <cstdio>

#include "testbed/testbed.h"
#include "transport/apps.h"

using namespace slingshot;

int main() {
  constexpr double kMigrationsPerSecond = 10.0;
  constexpr Nanos kDuration = 10'000_ms;

  TestbedConfig config;
  config.seed = 8;
  config.num_ues = 1;
  config.ue_mean_snr_db = {18.0};
  Testbed testbed{config};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow uplink{testbed.sim(), testbed.ue_pipe(0), testbed.server_pipe(0),
                 flow_cfg};

  testbed.start();
  testbed.run_until(100_ms);
  uplink.start();

  const auto period = Nanos(1e9 / kMigrationsPerSecond);
  testbed.sim().every(500_ms, period,
                      [&testbed] { testbed.planned_migration(); });

  std::printf("migrating the PHY %g times per second for %.0f s ...\n\n",
              kMigrationsPerSecond, to_seconds(kDuration));
  testbed.run_until(kDuration);

  double min_mbps = 1e9;
  int blackouts = 0;
  for (std::size_t b = 100; b < std::size_t(kDuration / 10_ms); ++b) {
    const double mbps = uplink.goodput().bin_rate_bps(b) / 1e6;
    min_mbps = std::min(min_mbps, mbps);
    blackouts += mbps < 0.1 ? 1 : 0;
  }

  std::printf("migrations executed: %llu\n",
              static_cast<unsigned long long>(
                  testbed.mbox().stats().migrations_executed));
  std::printf("10 ms blackout intervals: %d\n", blackouts);
  std::printf("min throughput per 10 ms: %.1f Mbps\n", min_mbps);
  std::printf("overall UDP loss: %.2f%%\n", uplink.loss_rate() * 100);
  std::printf("UE radio-link failures: %lld (still %s)\n",
              static_cast<long long>(testbed.ue(0).stats().rlf_events),
              testbed.ue(0).connected() ? "connected" : "DETACHED");
  std::printf("HARQ soft-buffer state discarded at every single migration "
              "— and nobody noticed.\n");
  return 0;
}
