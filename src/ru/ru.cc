#include "ru/ru.h"

#include "common/log.h"
#include "common/pool.h"
#include "obs/obs.h"

namespace slingshot {

RadioUnit::RadioUnit(Simulator& sim, std::string name, RuConfig config,
                     Nic& nic)
    : sim_(sim), name_(std::move(name)), config_(config), nic_(nic) {
  nic_.set_rx_handler([this](Packet&& f) { handle_frame(std::move(f)); });
}

void RadioUnit::power_on() {
  const Nanos first =
      config_.slots.slot_start(config_.slots.next_slot_after(sim_.now()));
  slot_task_ = sim_.every(first, config_.slots.slot_duration, [this] {
    on_slot(config_.slots.slot_at(sim_.now()));
  });
  SLOG_INFO("ru", "%s powered on", name_.c_str());
}

void RadioUnit::handle_frame(Packet&& frame) {
  if (frame.eth.ethertype != EtherType::kEcpri) {
    return;
  }
  FronthaulPacket packet;
  try {
    packet = parse_fronthaul(frame.payload);
  } catch (const std::exception&) {
    return;  // corrupt fronthaul packet: drop
  }
  // Parsing copied everything out; recycle the wire buffer.
  BufferPools::instance().bytes.release(std::move(frame.payload));
  if (packet.header.direction != FhDirection::kDownlink ||
      packet.header.ru != config_.id) {
    return;
  }
  const auto current = config_.slots.slot_at(sim_.now());
  const auto abs_slot = packet.header.slot.unwrap(current, config_.slots);
  // First DL fronthaul packet per slot wins (first-write-wins stamp).
  SLS_TRACE_STAGE(sim_, obs::SlotStage::kFronthaulTx, config_.id.value(),
                  abs_slot);

  // Protocol-compliance check: two PHYs feeding the same TTI.
  const auto [it, inserted] =
      dl_source_by_slot_.emplace(abs_slot, frame.eth.src);
  if (!inserted && it->second != frame.eth.src) {
    ++stats_.conflicting_sources;
    SLOG_WARN("ru", "%s received slot %lld DL from two PHYs", name_.c_str(),
              static_cast<long long>(abs_slot));
  }
  // Bound the tracking map.
  while (!dl_source_by_slot_.empty() &&
         dl_source_by_slot_.begin()->first < abs_slot - 16) {
    dl_source_by_slot_.erase(dl_source_by_slot_.begin());
  }

  if (packet.header.plane == FhPlane::kControl) {
    ++stats_.dl_cplane_rx;
    // Broadcast over the air: all attached UEs hear the control channel.
    for (auto* ue : ues_) {
      ue->on_dl_control(abs_slot, packet.cplane);
    }
    if (batch_ != nullptr) {
      batch_->on_dl_control(abs_slot);
    }
  } else {
    ++stats_.dl_uplane_rx;
    for (auto& section : packet.uplane.sections) {
      if (is_bulk_ue(section.ue)) {
        // Bulk DL sections are zero-IQ markers; the batch models the
        // decode internally (no per-lane channel object to apply).
        ++stats_.dl_bulk_sections_rx;
        if (batch_ != nullptr) {
          batch_->on_dl_section(abs_slot, section);
        }
        BufferPools::instance().iq.release(std::move(section.iq));
        BufferPools::instance().bytes.release(
            std::move(section.shadow_payload));
        continue;
      }
      for (auto* ue : ues_) {
        if (ue->id() == section.ue) {
          // Apply this UE's wireless channel to the radiated symbols.
          // Copy scalar fields + shadow bytes; the impaired IQ replaces
          // the transmitted IQ directly (no intermediate copy).
          UPlaneSection rx = section;
          rx.iq = ue->channel().apply(section.iq);
          ue->on_dl_section(abs_slot, rx);
          BufferPools::instance().iq.release(std::move(rx.iq));
          BufferPools::instance().bytes.release(std::move(rx.shadow_payload));
        }
      }
      // The radiated copy is done with; recycle its buffers.
      BufferPools::instance().iq.release(std::move(section.iq));
      BufferPools::instance().bytes.release(std::move(section.shadow_payload));
    }
  }
}

void RadioUnit::on_slot(std::int64_t slot) {
  // Dropped-TTI accounting: once any DL fronthaul has been seen, every
  // slot should carry at least one DL packet from the active PHY.
  if (!dl_source_by_slot_.empty() &&
      dl_source_by_slot_.rbegin()->first < slot - 1 &&
      slot - 1 > dl_source_by_slot_.begin()->first) {
    ++stats_.dropped_ttis;
  }

  // Advance every attached UE's fading process once per slot (channel
  // reciprocity: the same tap serves DL and UL within the slot).
  for (auto* ue : ues_) {
    ue->channel().step_slot();
  }
  // One SoA advance for the whole bulk population (fading, credits,
  // guarded deadline sweeps, churn).
  if (batch_ != nullptr) {
    batch_->advance_tti(slot);
  }

  if (!config_.slots.is_uplink(slot)) {
    return;
  }

  // Collect granted uplink transmissions and UCI feedback; emit at a
  // fixed offset into the slot.
  sim_.after(config_.ul_tx_offset, [this, slot] {
    FronthaulPacket uplane;
    uplane.header.direction = FhDirection::kUplink;
    uplane.header.plane = FhPlane::kUser;
    uplane.header.slot = SlotPoint::from_index(slot, config_.slots);
    uplane.header.ru = config_.id;

    CPlaneMsg uci_msg;
    for (auto* ue : ues_) {
      for (auto& section : ue->pull_uplink(slot)) {
        // The uplink signal traverses the UE's channel to the RU; the
        // RU then BFP-compresses what it sampled for the fronthaul.
        section.iq = ue->channel().apply(section.iq);
        section.bfp_mantissa_bits = config_.ul_bfp_mantissa_bits;
        uplane.uplane.sections.push_back(std::move(section));
      }
      for (const auto& uci : ue->pull_uci()) {
        uci_msg.uci.push_back(uci);
      }
    }

    if (!uplane.uplane.sections.empty()) {
      ++stats_.ul_uplane_tx;
      nic_.send(make_fronthaul_frame(nic_.mac(), config_.virtual_phy_mac,
                                     uplane));
    }
    if (!uci_msg.uci.empty()) {
      FronthaulPacket cplane;
      cplane.header.direction = FhDirection::kUplink;
      cplane.header.plane = FhPlane::kControl;
      cplane.header.slot = SlotPoint::from_index(slot, config_.slots);
      cplane.header.ru = config_.id;
      cplane.cplane = std::move(uci_msg);
      ++stats_.ul_uci_tx;
      nic_.send(make_fronthaul_frame(nic_.mac(), config_.virtual_phy_mac,
                                     cplane));
    }

    // Bulk batch uplink rides in SEPARATE packets, emitted after the
    // tracer packets so the tracer wire bytes (and everything downstream
    // of them) are identical with and without a batch attached.
    if (batch_ != nullptr) {
      FronthaulPacket bulk;
      bulk.header.direction = FhDirection::kUplink;
      bulk.header.plane = FhPlane::kUser;
      bulk.header.slot = SlotPoint::from_index(slot, config_.slots);
      bulk.header.symbol = 4;
      bulk.header.ru = config_.id;
      for (auto& section : batch_->pull_uplink(slot)) {
        // Modeled SNR — no per-lane channel to apply; the clean IQ
        // decodes at the PHY, and detachment shows up as a missing turn.
        section.bfp_mantissa_bits = config_.ul_bfp_mantissa_bits;
        bulk.uplane.sections.push_back(std::move(section));
      }
      if (!bulk.uplane.sections.empty()) {
        ++stats_.ul_bulk_tx;
        nic_.send(make_fronthaul_frame(nic_.mac(), config_.virtual_phy_mac,
                                       bulk));
      }
      auto uci = batch_->pull_uci();
      if (!uci.empty()) {
        FronthaulPacket bulk_uci;
        bulk_uci.header.direction = FhDirection::kUplink;
        bulk_uci.header.plane = FhPlane::kControl;
        bulk_uci.header.slot = SlotPoint::from_index(slot, config_.slots);
        bulk_uci.header.symbol = 4;
        bulk_uci.header.ru = config_.id;
        bulk_uci.cplane.uci = std::move(uci);
        ++stats_.ul_bulk_uci_tx;
        nic_.send(make_fronthaul_frame(nic_.mac(), config_.virtual_phy_mac,
                                       bulk_uci));
      }
    }
  });
}

}  // namespace slingshot
