// Radio unit (RU) simulator — the O-RAN split-7.2x radio.
//
// Downlink: receives fronthaul packets from the switch, broadcasts the
// control plane over the air (radio-link supervision + grants for the
// UEs) and delivers user-plane transport blocks through each UE's
// wireless channel.
//
// Uplink: on each UL slot it collects the attached UEs' granted
// transmissions, applies their channels, and emits U-plane packets —
// addressed to the *virtual PHY MAC* (§5.1), so the in-switch middlebox
// can steer them to whichever PHY is currently active. UE HARQ feedback
// rides in an UL C-plane packet.
//
// The RU also performs the protocol-compliance check the paper warns
// about: receiving packets for the same TTI from two different PHYs
// "can cause the RU to malfunction" — counted here and asserted zero in
// TTI-boundary migration tests.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "fronthaul/oran.h"
#include "net/nic.h"
#include "sim/simulator.h"
#include "ue/ue.h"
#include "ue/ue_batch.h"

namespace slingshot {

struct RuConfig {
  RuId id;
  SlotConfig slots{};
  MacAddr virtual_phy_mac;  // where UL fronthaul is addressed
  Nanos ul_tx_offset = 150'000;  // UL U-plane emission offset within slot
  // O-RAN BFP compression applied to uplink U-plane IQ (0 = off).
  std::uint8_t ul_bfp_mantissa_bits = 9;
};

struct RuStats {
  std::int64_t dl_cplane_rx = 0;
  std::int64_t dl_uplane_rx = 0;
  std::int64_t ul_uplane_tx = 0;
  std::int64_t ul_uci_tx = 0;
  // Bulk (massive-UE batch) traffic, kept separate so the tracer-path
  // counters stay comparable across batched and unbatched builds.
  std::int64_t ul_bulk_tx = 0;
  std::int64_t ul_bulk_uci_tx = 0;
  std::int64_t dl_bulk_sections_rx = 0;
  // Same-slot DL packets from two different source MACs — protocol
  // violations that a real RU may not survive.
  std::int64_t conflicting_sources = 0;
  // Slots with no DL fronthaul at all (dropped TTIs, §8.2). Counted
  // once DL traffic has been seen.
  std::int64_t dropped_ttis = 0;
};

class RadioUnit {
 public:
  RadioUnit(Simulator& sim, std::string name, RuConfig config, Nic& nic);

  void attach_ue(UserEquipment* ue) { ues_.push_back(ue); }
  // At most one batch per cell; advanced once per TTI from on_slot and
  // fed the same over-the-air events as the tracer UEs.
  void attach_batch(UeBatch* batch) { batch_ = batch; }
  void power_on();

  [[nodiscard]] const RuStats& stats() const { return stats_; }
  [[nodiscard]] MacAddr mac() const { return nic_.mac(); }
  [[nodiscard]] const RuConfig& config() const { return config_; }

 private:
  void handle_frame(Packet&& frame);
  void on_slot(std::int64_t slot);

  Simulator& sim_;
  std::string name_;
  RuConfig config_;
  Nic& nic_;
  std::vector<UserEquipment*> ues_;
  UeBatch* batch_ = nullptr;
  EventHandle slot_task_;
  // DL source tracking per slot for the conflicting-sources check.
  std::map<std::int64_t, MacAddr> dl_source_by_slot_;
  RuStats stats_;
};

}  // namespace slingshot
