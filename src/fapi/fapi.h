// FAPI (Small Cell Forum PHY API) message set — the L2<->PHY interface
// (split option 6) that Orion interposes on.
//
// This is a faithful subset of 5G FAPI: per-slot UL_TTI/DL_TTI requests
// describing the slot's signal-processing work, TX_DATA carrying DL
// payloads, and RX_DATA/CRC/UCI indications flowing back up. Per the
// FAPI contract the PHY *must* receive valid UL_TTI and DL_TTI requests
// in every slot — FlexRAN crashes otherwise — which is exactly why
// Slingshot invented null requests (§6.2): a request with zero PDU
// entries is valid input that generates no signal-processing work.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <variant>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace slingshot {

enum class FapiMsgType : std::uint8_t {
  kConfigRequest = 0,
  kConfigResponse = 1,
  kStartRequest = 2,
  kStopRequest = 3,
  kSlotIndication = 4,
  kDlTtiRequest = 5,
  kUlTtiRequest = 6,
  kTxDataRequest = 7,
  kRxDataIndication = 8,
  kCrcIndication = 9,
  kUciIndication = 10,
  kErrorIndication = 11,
};

[[nodiscard]] const char* fapi_msg_name(FapiMsgType type);

// Carrier configuration for one RU/cell (CONFIG.request body).
struct CarrierConfig {
  RuId ru;
  std::uint8_t numerology = 1;       // µ=1: 30 kHz SCS, 500 µs slots
  std::uint16_t num_prbs = 273;      // 100 MHz carrier
  std::uint8_t num_antennas = 4;
  std::string tdd_pattern = "DDDSU";

  bool operator==(const CarrierConfig&) const = default;
};

// One PDSCH/PUSCH PDU in a TTI request.
struct TtiPdu {
  UeId ue;
  std::uint8_t mcs = 0;
  std::uint32_t tb_bytes = 0;
  HarqId harq;
  bool new_data = true;

  bool operator==(const TtiPdu&) const = default;
};

struct ConfigRequest {
  CarrierConfig carrier;
};
struct ConfigResponse {
  RuId ru;
  bool ok = true;
};
struct StartRequest {
  RuId ru;
};
struct StopRequest {
  RuId ru;
};
// PHY -> L2, announcing it advanced to `slot`.
struct SlotIndication {};

// An uplink grant (DCI format 0-like) carried on the PDCCH of this DL
// slot, scheduling a PUSCH transmission `target_slot` (k2 slots later).
// Riding in DL_TTI — rather than UL_TTI — matters for migration
// correctness: the grant is radiated by whichever PHY is active for the
// *announcing* slot, while the PUSCH is processed by whichever PHY is
// active for the *target* slot.
struct UlDci {
  TtiPdu pdu;
  std::int64_t target_slot = 0;

  bool operator==(const UlDci&) const = default;
};

struct DlTtiRequest {
  std::vector<TtiPdu> pdus;  // empty == null request
  std::vector<UlDci> ul_dci;
};
struct UlTtiRequest {
  std::vector<TtiPdu> pdus;  // empty == null request
};
// DL MAC PDUs for the DL_TTI request of the same slot, matched by index.
struct TxDataRequest {
  std::vector<std::vector<std::uint8_t>> payloads;
};

struct RxPdu {
  UeId ue;
  HarqId harq;
  std::vector<std::uint8_t> payload;
};
struct RxDataIndication {
  std::vector<RxPdu> pdus;
};

struct CrcEntry {
  UeId ue;
  HarqId harq;
  bool ok = false;
  float snr_db = 0.0F;  // PHY's post-equalization SNR estimate

  bool operator==(const CrcEntry&) const = default;
};
struct CrcIndication {
  std::vector<CrcEntry> entries;
};

struct UciEntry {
  UeId ue;
  HarqId harq;
  bool ack = false;

  bool operator==(const UciEntry&) const = default;
};
struct UciIndication {
  std::vector<UciEntry> entries;
};

// FAPI error codes (subset of SCF 222's table).
inline constexpr std::uint16_t kFapiMsgOk = 0x0;
inline constexpr std::uint16_t kFapiMsgInvalidState = 0x1;
inline constexpr std::uint16_t kFapiMsgSlotErr = 0x2;   // late request
inline constexpr std::uint16_t kFapiMsgCorrupt = 0x3;   // unparseable bytes

struct ErrorIndication {
  std::uint16_t code = 0;
  FapiMsgType offending = FapiMsgType::kErrorIndication;
};

using FapiBody =
    std::variant<ConfigRequest, ConfigResponse, StartRequest, StopRequest,
                 SlotIndication, DlTtiRequest, UlTtiRequest, TxDataRequest,
                 RxDataIndication, CrcIndication, UciIndication,
                 ErrorIndication>;

struct FapiMessage {
  RuId ru;                   // carrier this message concerns
  std::int64_t slot = 0;     // absolute slot index
  FapiBody body;

  [[nodiscard]] FapiMsgType type() const {
    return FapiMsgType(body.index());
  }
};

// Null TTI requests: valid per the FAPI spec, zero signal-processing
// work. These keep the hot-standby secondary PHY alive (§6.2).
[[nodiscard]] FapiMessage make_null_dl_tti(RuId ru, std::int64_t slot);
[[nodiscard]] FapiMessage make_null_ul_tti(RuId ru, std::int64_t slot);

// Wire codec (used by Orion's inter-server UDP transport, both the
// simulated one and the real-process deployment mode). The format is
// pinned explicitly little-endian (SCF 222 FAPI's byte order) via
// fapi/wire.h, so bytes produced by one process parse identically in
// any other.
[[nodiscard]] std::vector<std::uint8_t> serialize_fapi(const FapiMessage& msg);
// Allocation-free variant: clears and fills a caller-owned (e.g.
// pooled) buffer.
void serialize_fapi_into(const FapiMessage& msg,
                         std::vector<std::uint8_t>& out);
// Wire size without materializing the serialized bytes anywhere —
// computed arithmetically, no scratch buffer is retained.
[[nodiscard]] std::size_t serialized_fapi_size(const FapiMessage& msg);

// Checked parse: the only valid way to consume bytes that crossed a
// process boundary. Returns false on any malformed input — truncation,
// a length field exceeding the buffer, an unknown message type,
// trailing garbage — without throwing, allocating proportionally to
// attacker-controlled counts, or reading past the span. On failure
// `out` is unspecified, `*error` (if non-null) names the violation, and
// the process-wide parse-error counter (the `fapi.parse_errors` gauge)
// increments.
[[nodiscard]] bool try_parse_fapi(std::span<const std::uint8_t> bytes,
                                  FapiMessage& out,
                                  const char** error = nullptr);
// Throwing wrapper kept for call sites that treat malformed input as a
// programming error (tests, benches): std::runtime_error on failure.
[[nodiscard]] FapiMessage parse_fapi(std::span<const std::uint8_t> bytes);

// Process-wide count of failed try_parse_fapi calls.
[[nodiscard]] std::uint64_t fapi_parse_errors();
void reset_fapi_parse_errors();

}  // namespace slingshot
