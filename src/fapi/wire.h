// Bounds-checked, endian-explicit wire primitives for the FAPI codec.
//
// The FAPI transport is the one wire format in this codebase that real
// foreign processes produce and consume (the real-process deployment
// mode sends it over actual UDP sockets), so its codec carries two
// guarantees the simulator-internal formats never needed:
//
//  * Explicit byte order. Every multi-byte integer is little-endian on
//    the wire — matching SCF 222 FAPI, which is LE throughout — rather
//    than "whatever the host does". Cross-process and future
//    cross-machine framing is therefore well-defined, and a mixed
//    deployment of debug/release builds can never disagree about
//    layout.
//  * Total parsing. WireReader never throws and never reads past the
//    span: any overrun latches a sticky failure with a reason, all
//    subsequent reads return zero, and the caller observes one bool.
//    Malformed input from a socket is a *value* (a parse error), not
//    UB and not control flow.
//
// The simulator-internal formats (fronthaul O-RAN framing, switch
// commands) keep using common/bits.h's network-byte-order
// ByteWriter/ByteReader; they never leave the process.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <vector>

namespace slingshot {

// Little-endian appender. Mirrors ByteWriter's surface so codec code
// reads the same, but the byte order is pinned LE.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(std::uint8_t(v));
    out_.push_back(std::uint8_t(v >> 8));
  }
  void u32(std::uint32_t v) {
    u16(std::uint16_t(v));
    u16(std::uint16_t(v >> 16));
  }
  void u64(std::uint64_t v) {
    u32(std::uint32_t(v));
    u32(std::uint32_t(v >> 32));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::uint8_t>& out_;
};

// Little-endian, non-throwing reader. After any failed read, ok() is
// false, error() names the first violation, and every subsequent read
// returns zero / does nothing — so codec code can parse straight-line
// and check once at the end (or early, before trusting a length field).
class WireReader {
 public:
  explicit WireReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() {
    if (!take(1)) {
      return 0;
    }
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t u16() {
    if (!take(2)) {
      return 0;
    }
    const auto lo = data_[pos_];
    const auto hi = data_[pos_ + 1];
    pos_ += 2;
    return std::uint16_t(std::uint16_t(lo) | (std::uint16_t(hi) << 8));
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t lo = u16();
    return lo | (std::uint32_t(u16()) << 16);
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t lo = u32();
    return lo | (std::uint64_t(u32()) << 32);
  }
  [[nodiscard]] float f32() {
    const auto bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  // Copy n bytes into a caller-owned buffer; on overrun the buffer is
  // cleared and the failure latched.
  void bytes_into(std::size_t n, std::vector<std::uint8_t>& out) {
    if (!take(n)) {
      out.clear();
      return;
    }
    out.assign(data_.begin() + long(pos_), data_.begin() + long(pos_ + n));
    pos_ += n;
  }

  // Pre-flight check for length fields read off the wire: true iff n
  // more bytes exist. Unlike the reads above it does NOT latch failure —
  // use it to validate an element count before reserving memory for it
  // (an oversized count must neither allocate nor poison the reader
  // before the caller reports the error).
  [[nodiscard]] bool can_read(std::size_t n) const {
    return n <= data_.size() - pos_;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return error_ == nullptr; }
  [[nodiscard]] const char* error() const {
    return error_ == nullptr ? "" : error_;
  }
  // Latch a semantic failure spotted by the caller (bad count, unknown
  // enum value); first reason wins.
  void fail(const char* why) {
    if (error_ == nullptr) {
      error_ = why;
    }
  }

 private:
  [[nodiscard]] bool take(std::size_t n) {
    if (error_ != nullptr) {
      return false;
    }
    if (n > data_.size() - pos_) {
      error_ = "truncated buffer";
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  const char* error_ = nullptr;
};

}  // namespace slingshot
