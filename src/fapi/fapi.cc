#include "fapi/fapi.h"

#include <stdexcept>

#include "common/bits.h"

namespace slingshot {
namespace {

void write_tti_pdus(ByteWriter& w, const std::vector<TtiPdu>& pdus) {
  w.u16(std::uint16_t(pdus.size()));
  for (const auto& p : pdus) {
    w.u16(p.ue.value());
    w.u8(p.mcs);
    w.u32(p.tb_bytes);
    w.u8(p.harq.value());
    w.u8(p.new_data ? 1 : 0);
  }
}

std::vector<TtiPdu> read_tti_pdus(ByteReader& r) {
  std::vector<TtiPdu> pdus;
  const auto n = r.u16();
  pdus.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    TtiPdu p;
    p.ue = UeId{r.u16()};
    p.mcs = r.u8();
    p.tb_bytes = r.u32();
    p.harq = HarqId{r.u8()};
    p.new_data = r.u8() != 0;
    pdus.push_back(p);
  }
  return pdus;
}

void write_payload(ByteWriter& w, const std::vector<std::uint8_t>& bytes) {
  w.u32(std::uint32_t(bytes.size()));
  w.bytes(bytes);
}

std::vector<std::uint8_t> read_payload(ByteReader& r) {
  const auto n = r.u32();
  return r.bytes(n);
}

struct BodyWriter {
  ByteWriter& w;

  void operator()(const ConfigRequest& b) const {
    w.u8(b.carrier.ru.value());
    w.u8(b.carrier.numerology);
    w.u16(b.carrier.num_prbs);
    w.u8(b.carrier.num_antennas);
    w.u8(std::uint8_t(b.carrier.tdd_pattern.size()));
    for (const char c : b.carrier.tdd_pattern) {
      w.u8(std::uint8_t(c));
    }
  }
  void operator()(const ConfigResponse& b) const {
    w.u8(b.ru.value());
    w.u8(b.ok ? 1 : 0);
  }
  void operator()(const StartRequest& b) const { w.u8(b.ru.value()); }
  void operator()(const StopRequest& b) const { w.u8(b.ru.value()); }
  void operator()(const SlotIndication&) const {}
  void operator()(const DlTtiRequest& b) const {
    write_tti_pdus(w, b.pdus);
    w.u16(std::uint16_t(b.ul_dci.size()));
    for (const auto& dci : b.ul_dci) {
      w.u16(dci.pdu.ue.value());
      w.u8(dci.pdu.mcs);
      w.u32(dci.pdu.tb_bytes);
      w.u8(dci.pdu.harq.value());
      w.u8(dci.pdu.new_data ? 1 : 0);
      w.u64(std::uint64_t(dci.target_slot));
    }
  }
  void operator()(const UlTtiRequest& b) const { write_tti_pdus(w, b.pdus); }
  void operator()(const TxDataRequest& b) const {
    w.u16(std::uint16_t(b.payloads.size()));
    for (const auto& p : b.payloads) {
      write_payload(w, p);
    }
  }
  void operator()(const RxDataIndication& b) const {
    w.u16(std::uint16_t(b.pdus.size()));
    for (const auto& p : b.pdus) {
      w.u16(p.ue.value());
      w.u8(p.harq.value());
      write_payload(w, p.payload);
    }
  }
  void operator()(const CrcIndication& b) const {
    w.u16(std::uint16_t(b.entries.size()));
    for (const auto& e : b.entries) {
      w.u16(e.ue.value());
      w.u8(e.harq.value());
      w.u8(e.ok ? 1 : 0);
      w.f32(e.snr_db);
    }
  }
  void operator()(const UciIndication& b) const {
    w.u16(std::uint16_t(b.entries.size()));
    for (const auto& e : b.entries) {
      w.u16(e.ue.value());
      w.u8(e.harq.value());
      w.u8(e.ack ? 1 : 0);
    }
  }
  void operator()(const ErrorIndication& b) const {
    w.u16(b.code);
    w.u8(std::uint8_t(b.offending));
  }
};

FapiBody read_body(FapiMsgType type, ByteReader& r) {
  switch (type) {
    case FapiMsgType::kConfigRequest: {
      ConfigRequest b;
      b.carrier.ru = RuId{r.u8()};
      b.carrier.numerology = r.u8();
      b.carrier.num_prbs = r.u16();
      b.carrier.num_antennas = r.u8();
      const auto len = r.u8();
      b.carrier.tdd_pattern.clear();
      for (std::uint8_t i = 0; i < len; ++i) {
        b.carrier.tdd_pattern.push_back(char(r.u8()));
      }
      return b;
    }
    case FapiMsgType::kConfigResponse: {
      ConfigResponse b;
      b.ru = RuId{r.u8()};
      b.ok = r.u8() != 0;
      return b;
    }
    case FapiMsgType::kStartRequest:
      return StartRequest{RuId{r.u8()}};
    case FapiMsgType::kStopRequest:
      return StopRequest{RuId{r.u8()}};
    case FapiMsgType::kSlotIndication:
      return SlotIndication{};
    case FapiMsgType::kDlTtiRequest: {
      DlTtiRequest b;
      b.pdus = read_tti_pdus(r);
      const auto n = r.u16();
      b.ul_dci.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        UlDci dci;
        dci.pdu.ue = UeId{r.u16()};
        dci.pdu.mcs = r.u8();
        dci.pdu.tb_bytes = r.u32();
        dci.pdu.harq = HarqId{r.u8()};
        dci.pdu.new_data = r.u8() != 0;
        dci.target_slot = std::int64_t(r.u64());
        b.ul_dci.push_back(dci);
      }
      return b;
    }
    case FapiMsgType::kUlTtiRequest:
      return UlTtiRequest{read_tti_pdus(r)};
    case FapiMsgType::kTxDataRequest: {
      TxDataRequest b;
      const auto n = r.u16();
      b.payloads.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        b.payloads.push_back(read_payload(r));
      }
      return b;
    }
    case FapiMsgType::kRxDataIndication: {
      RxDataIndication b;
      const auto n = r.u16();
      b.pdus.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        RxPdu p;
        p.ue = UeId{r.u16()};
        p.harq = HarqId{r.u8()};
        p.payload = read_payload(r);
        b.pdus.push_back(std::move(p));
      }
      return b;
    }
    case FapiMsgType::kCrcIndication: {
      CrcIndication b;
      const auto n = r.u16();
      b.entries.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        CrcEntry e;
        e.ue = UeId{r.u16()};
        e.harq = HarqId{r.u8()};
        e.ok = r.u8() != 0;
        e.snr_db = r.f32();
        b.entries.push_back(e);
      }
      return b;
    }
    case FapiMsgType::kUciIndication: {
      UciIndication b;
      const auto n = r.u16();
      b.entries.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        UciEntry e;
        e.ue = UeId{r.u16()};
        e.harq = HarqId{r.u8()};
        e.ack = r.u8() != 0;
        b.entries.push_back(e);
      }
      return b;
    }
    case FapiMsgType::kErrorIndication: {
      ErrorIndication b;
      b.code = r.u16();
      b.offending = FapiMsgType(r.u8());
      return b;
    }
  }
  throw std::invalid_argument{"parse_fapi: unknown message type"};
}

}  // namespace

const char* fapi_msg_name(FapiMsgType type) {
  switch (type) {
    case FapiMsgType::kConfigRequest: return "CONFIG.request";
    case FapiMsgType::kConfigResponse: return "CONFIG.response";
    case FapiMsgType::kStartRequest: return "START.request";
    case FapiMsgType::kStopRequest: return "STOP.request";
    case FapiMsgType::kSlotIndication: return "SLOT.indication";
    case FapiMsgType::kDlTtiRequest: return "DL_TTI.request";
    case FapiMsgType::kUlTtiRequest: return "UL_TTI.request";
    case FapiMsgType::kTxDataRequest: return "TX_Data.request";
    case FapiMsgType::kRxDataIndication: return "RX_Data.indication";
    case FapiMsgType::kCrcIndication: return "CRC.indication";
    case FapiMsgType::kUciIndication: return "UCI.indication";
    case FapiMsgType::kErrorIndication: return "ERROR.indication";
  }
  return "UNKNOWN";
}

FapiMessage make_null_dl_tti(RuId ru, std::int64_t slot) {
  return FapiMessage{ru, slot, DlTtiRequest{}};
}

FapiMessage make_null_ul_tti(RuId ru, std::int64_t slot) {
  return FapiMessage{ru, slot, UlTtiRequest{}};
}

void serialize_fapi_into(const FapiMessage& msg,
                         std::vector<std::uint8_t>& out) {
  out.clear();
  ByteWriter w{out};
  w.u8(std::uint8_t(msg.type()));
  w.u8(msg.ru.value());
  w.u64(std::uint64_t(msg.slot));
  std::visit(BodyWriter{w}, msg.body);
}

std::vector<std::uint8_t> serialize_fapi(const FapiMessage& msg) {
  std::vector<std::uint8_t> out;
  serialize_fapi_into(msg, out);
  return out;
}

std::size_t serialized_fapi_size(const FapiMessage& msg) {
  // thread_local: sizing calls race across island worker threads under
  // the sharded runtime if the scratch is process-wide.
  static thread_local std::vector<std::uint8_t> scratch;
  serialize_fapi_into(msg, scratch);
  return scratch.size();
}

FapiMessage parse_fapi(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  const auto type = FapiMsgType(r.u8());
  FapiMessage msg;
  msg.ru = RuId{r.u8()};
  msg.slot = std::int64_t(r.u64());
  msg.body = read_body(type, r);
  if (!r.ok()) {
    throw std::out_of_range{"parse_fapi: truncated message"};
  }
  return msg;
}

}  // namespace slingshot
