#include "fapi/fapi.h"

#include <atomic>
#include <stdexcept>
#include <string>

#include "fapi/wire.h"

namespace slingshot {
namespace {

// Per-record wire sizes (fixed-size repeated elements). Used both to
// serialize and to validate element counts read off the wire before any
// memory is reserved for them.
constexpr std::size_t kTtiPduBytes = 9;   // ue:2 mcs:1 tb:4 harq:1 nd:1
constexpr std::size_t kUlDciBytes = 17;   // TtiPdu + target_slot:8
constexpr std::size_t kCrcEntryBytes = 8; // ue:2 harq:1 ok:1 snr:4
constexpr std::size_t kUciEntryBytes = 4; // ue:2 harq:1 ack:1
constexpr std::size_t kHeaderBytes = 10;  // type:1 ru:1 slot:8

std::atomic<std::uint64_t> g_parse_errors{0};

void write_tti_pdu(WireWriter& w, const TtiPdu& p) {
  w.u16(p.ue.value());
  w.u8(p.mcs);
  w.u32(p.tb_bytes);
  w.u8(p.harq.value());
  w.u8(p.new_data ? 1 : 0);
}

TtiPdu read_tti_pdu(WireReader& r) {
  TtiPdu p;
  p.ue = UeId{r.u16()};
  p.mcs = r.u8();
  p.tb_bytes = r.u32();
  p.harq = HarqId{r.u8()};
  p.new_data = r.u8() != 0;
  return p;
}

void write_tti_pdus(WireWriter& w, const std::vector<TtiPdu>& pdus) {
  w.u16(std::uint16_t(pdus.size()));
  for (const auto& p : pdus) {
    write_tti_pdu(w, p);
  }
}

// Reads a counted vector of fixed-size records. The count comes off the
// wire, so it is validated against the remaining bytes *before* reserve:
// a corrupt count of 65535 in a 40-byte datagram must fail cleanly, not
// allocate for 65535 elements and then fault mid-parse.
std::vector<TtiPdu> read_tti_pdus(WireReader& r) {
  std::vector<TtiPdu> pdus;
  const auto n = r.u16();
  if (!r.can_read(std::size_t(n) * kTtiPduBytes)) {
    r.fail("pdu count exceeds buffer");
    return pdus;
  }
  pdus.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    pdus.push_back(read_tti_pdu(r));
  }
  return pdus;
}

void write_payload(WireWriter& w, const std::vector<std::uint8_t>& bytes) {
  w.u32(std::uint32_t(bytes.size()));
  w.bytes(bytes);
}

std::vector<std::uint8_t> read_payload(WireReader& r) {
  std::vector<std::uint8_t> out;
  const auto n = r.u32();
  if (!r.can_read(n)) {
    r.fail("payload length exceeds buffer");
    return out;
  }
  r.bytes_into(n, out);
  return out;
}

struct BodyWriter {
  WireWriter& w;

  void operator()(const ConfigRequest& b) const {
    w.u8(b.carrier.ru.value());
    w.u8(b.carrier.numerology);
    w.u16(b.carrier.num_prbs);
    w.u8(b.carrier.num_antennas);
    w.u8(std::uint8_t(b.carrier.tdd_pattern.size()));
    for (const char c : b.carrier.tdd_pattern) {
      w.u8(std::uint8_t(c));
    }
  }
  void operator()(const ConfigResponse& b) const {
    w.u8(b.ru.value());
    w.u8(b.ok ? 1 : 0);
  }
  void operator()(const StartRequest& b) const { w.u8(b.ru.value()); }
  void operator()(const StopRequest& b) const { w.u8(b.ru.value()); }
  void operator()(const SlotIndication&) const {}
  void operator()(const DlTtiRequest& b) const {
    write_tti_pdus(w, b.pdus);
    w.u16(std::uint16_t(b.ul_dci.size()));
    for (const auto& dci : b.ul_dci) {
      write_tti_pdu(w, dci.pdu);
      w.u64(std::uint64_t(dci.target_slot));
    }
  }
  void operator()(const UlTtiRequest& b) const { write_tti_pdus(w, b.pdus); }
  void operator()(const TxDataRequest& b) const {
    w.u16(std::uint16_t(b.payloads.size()));
    for (const auto& p : b.payloads) {
      write_payload(w, p);
    }
  }
  void operator()(const RxDataIndication& b) const {
    w.u16(std::uint16_t(b.pdus.size()));
    for (const auto& p : b.pdus) {
      w.u16(p.ue.value());
      w.u8(p.harq.value());
      write_payload(w, p.payload);
    }
  }
  void operator()(const CrcIndication& b) const {
    w.u16(std::uint16_t(b.entries.size()));
    for (const auto& e : b.entries) {
      w.u16(e.ue.value());
      w.u8(e.harq.value());
      w.u8(e.ok ? 1 : 0);
      w.f32(e.snr_db);
    }
  }
  void operator()(const UciIndication& b) const {
    w.u16(std::uint16_t(b.entries.size()));
    for (const auto& e : b.entries) {
      w.u16(e.ue.value());
      w.u8(e.harq.value());
      w.u8(e.ack ? 1 : 0);
    }
  }
  void operator()(const ErrorIndication& b) const {
    w.u16(b.code);
    w.u8(std::uint8_t(b.offending));
  }
};

// Arithmetic twin of BodyWriter: wire size without serializing.
struct BodySizer {
  std::size_t operator()(const ConfigRequest& b) const {
    return 6 + b.carrier.tdd_pattern.size();
  }
  std::size_t operator()(const ConfigResponse&) const { return 2; }
  std::size_t operator()(const StartRequest&) const { return 1; }
  std::size_t operator()(const StopRequest&) const { return 1; }
  std::size_t operator()(const SlotIndication&) const { return 0; }
  std::size_t operator()(const DlTtiRequest& b) const {
    return 2 + b.pdus.size() * kTtiPduBytes + 2 +
           b.ul_dci.size() * kUlDciBytes;
  }
  std::size_t operator()(const UlTtiRequest& b) const {
    return 2 + b.pdus.size() * kTtiPduBytes;
  }
  std::size_t operator()(const TxDataRequest& b) const {
    std::size_t n = 2;
    for (const auto& p : b.payloads) {
      n += 4 + p.size();
    }
    return n;
  }
  std::size_t operator()(const RxDataIndication& b) const {
    std::size_t n = 2;
    for (const auto& p : b.pdus) {
      n += 2 + 1 + 4 + p.payload.size();
    }
    return n;
  }
  std::size_t operator()(const CrcIndication& b) const {
    return 2 + b.entries.size() * kCrcEntryBytes;
  }
  std::size_t operator()(const UciIndication& b) const {
    return 2 + b.entries.size() * kUciEntryBytes;
  }
  std::size_t operator()(const ErrorIndication&) const { return 3; }
};

FapiBody read_body(FapiMsgType type, WireReader& r) {
  switch (type) {
    case FapiMsgType::kConfigRequest: {
      ConfigRequest b;
      b.carrier.ru = RuId{r.u8()};
      b.carrier.numerology = r.u8();
      b.carrier.num_prbs = r.u16();
      b.carrier.num_antennas = r.u8();
      const auto len = r.u8();
      if (!r.can_read(len)) {
        r.fail("tdd pattern length exceeds buffer");
        return b;
      }
      b.carrier.tdd_pattern.clear();
      for (std::uint8_t i = 0; i < len; ++i) {
        b.carrier.tdd_pattern.push_back(char(r.u8()));
      }
      return b;
    }
    case FapiMsgType::kConfigResponse: {
      ConfigResponse b;
      b.ru = RuId{r.u8()};
      b.ok = r.u8() != 0;
      return b;
    }
    case FapiMsgType::kStartRequest:
      return StartRequest{RuId{r.u8()}};
    case FapiMsgType::kStopRequest:
      return StopRequest{RuId{r.u8()}};
    case FapiMsgType::kSlotIndication:
      return SlotIndication{};
    case FapiMsgType::kDlTtiRequest: {
      DlTtiRequest b;
      b.pdus = read_tti_pdus(r);
      if (!r.ok()) {
        return b;
      }
      const auto n = r.u16();
      if (!r.can_read(std::size_t(n) * kUlDciBytes)) {
        r.fail("ul_dci count exceeds buffer");
        return b;
      }
      b.ul_dci.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        UlDci dci;
        dci.pdu = read_tti_pdu(r);
        dci.target_slot = std::int64_t(r.u64());
        b.ul_dci.push_back(dci);
      }
      return b;
    }
    case FapiMsgType::kUlTtiRequest:
      return UlTtiRequest{read_tti_pdus(r)};
    case FapiMsgType::kTxDataRequest: {
      TxDataRequest b;
      const auto n = r.u16();
      // Each payload is at least its 4-byte length prefix.
      if (!r.can_read(std::size_t(n) * 4)) {
        r.fail("payload count exceeds buffer");
        return b;
      }
      b.payloads.reserve(n);
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        b.payloads.push_back(read_payload(r));
      }
      return b;
    }
    case FapiMsgType::kRxDataIndication: {
      RxDataIndication b;
      const auto n = r.u16();
      if (!r.can_read(std::size_t(n) * 7)) {  // ue:2 harq:1 len:4 minimum
        r.fail("rx pdu count exceeds buffer");
        return b;
      }
      b.pdus.reserve(n);
      for (std::uint16_t i = 0; i < n && r.ok(); ++i) {
        RxPdu p;
        p.ue = UeId{r.u16()};
        p.harq = HarqId{r.u8()};
        p.payload = read_payload(r);
        b.pdus.push_back(std::move(p));
      }
      return b;
    }
    case FapiMsgType::kCrcIndication: {
      CrcIndication b;
      const auto n = r.u16();
      if (!r.can_read(std::size_t(n) * kCrcEntryBytes)) {
        r.fail("crc entry count exceeds buffer");
        return b;
      }
      b.entries.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        CrcEntry e;
        e.ue = UeId{r.u16()};
        e.harq = HarqId{r.u8()};
        e.ok = r.u8() != 0;
        e.snr_db = r.f32();
        b.entries.push_back(e);
      }
      return b;
    }
    case FapiMsgType::kUciIndication: {
      UciIndication b;
      const auto n = r.u16();
      if (!r.can_read(std::size_t(n) * kUciEntryBytes)) {
        r.fail("uci entry count exceeds buffer");
        return b;
      }
      b.entries.reserve(n);
      for (std::uint16_t i = 0; i < n; ++i) {
        UciEntry e;
        e.ue = UeId{r.u16()};
        e.harq = HarqId{r.u8()};
        e.ack = r.u8() != 0;
        b.entries.push_back(e);
      }
      return b;
    }
    case FapiMsgType::kErrorIndication: {
      ErrorIndication b;
      b.code = r.u16();
      b.offending = FapiMsgType(r.u8());
      return b;
    }
  }
  r.fail("unknown message type");
  return SlotIndication{};
}

}  // namespace

const char* fapi_msg_name(FapiMsgType type) {
  switch (type) {
    case FapiMsgType::kConfigRequest: return "CONFIG.request";
    case FapiMsgType::kConfigResponse: return "CONFIG.response";
    case FapiMsgType::kStartRequest: return "START.request";
    case FapiMsgType::kStopRequest: return "STOP.request";
    case FapiMsgType::kSlotIndication: return "SLOT.indication";
    case FapiMsgType::kDlTtiRequest: return "DL_TTI.request";
    case FapiMsgType::kUlTtiRequest: return "UL_TTI.request";
    case FapiMsgType::kTxDataRequest: return "TX_Data.request";
    case FapiMsgType::kRxDataIndication: return "RX_Data.indication";
    case FapiMsgType::kCrcIndication: return "CRC.indication";
    case FapiMsgType::kUciIndication: return "UCI.indication";
    case FapiMsgType::kErrorIndication: return "ERROR.indication";
  }
  return "UNKNOWN";
}

FapiMessage make_null_dl_tti(RuId ru, std::int64_t slot) {
  return FapiMessage{ru, slot, DlTtiRequest{}};
}

FapiMessage make_null_ul_tti(RuId ru, std::int64_t slot) {
  return FapiMessage{ru, slot, UlTtiRequest{}};
}

void serialize_fapi_into(const FapiMessage& msg,
                         std::vector<std::uint8_t>& out) {
  out.clear();
  WireWriter w{out};
  w.u8(std::uint8_t(msg.type()));
  w.u8(msg.ru.value());
  w.u64(std::uint64_t(msg.slot));
  std::visit(BodyWriter{w}, msg.body);
}

std::vector<std::uint8_t> serialize_fapi(const FapiMessage& msg) {
  std::vector<std::uint8_t> out;
  out.reserve(serialized_fapi_size(msg));
  serialize_fapi_into(msg, out);
  return out;
}

std::size_t serialized_fapi_size(const FapiMessage& msg) {
  return kHeaderBytes + std::visit(BodySizer{}, msg.body);
}

bool try_parse_fapi(std::span<const std::uint8_t> bytes, FapiMessage& out,
                    const char** error) {
  WireReader r{bytes};
  const auto type_raw = r.u8();
  out.ru = RuId{r.u8()};
  out.slot = std::int64_t(r.u64());
  if (r.ok() && type_raw > std::uint8_t(FapiMsgType::kErrorIndication)) {
    r.fail("unknown message type");
  }
  if (r.ok()) {
    out.body = read_body(FapiMsgType(type_raw), r);
  }
  // A datagram is exactly one message: trailing bytes mean the length
  // fields inside disagree with the framing, i.e. corruption.
  if (r.ok() && r.remaining() != 0) {
    r.fail("trailing bytes after message");
  }
  if (!r.ok()) {
    g_parse_errors.fetch_add(1, std::memory_order_relaxed);
    if (error != nullptr) {
      *error = r.error();
    }
    return false;
  }
  if (error != nullptr) {
    *error = "";
  }
  return true;
}

FapiMessage parse_fapi(std::span<const std::uint8_t> bytes) {
  FapiMessage msg;
  const char* error = nullptr;
  if (!try_parse_fapi(bytes, msg, &error)) {
    throw std::runtime_error{std::string("parse_fapi: ") + error};
  }
  return msg;
}

std::uint64_t fapi_parse_errors() {
  return g_parse_errors.load(std::memory_order_relaxed);
}

void reset_fapi_parse_errors() {
  g_parse_errors.store(0, std::memory_order_relaxed);
}

}  // namespace slingshot
