// FAPI delivery channels.
//
// In tightly-coupled deployments the L2 and PHY exchange FAPI messages
// over shared memory (§2.2). ShmFapiPipe models that path: a one-way
// queue with sub-microsecond latency. Orion is "agnostic to the
// physical FAPI channel" (§6.1); both the PHY and L2 in this codebase
// talk to whatever FapiSink they're handed — which is either the peer
// directly (coupled deployment) or an Orion middlebox (Slingshot).
#pragma once

#include <functional>
#include <utility>

#include "fapi/fapi.h"
#include "sim/simulator.h"

namespace slingshot {

class FapiSink {
 public:
  virtual ~FapiSink() = default;
  virtual void on_fapi(FapiMessage&& msg) = 0;
};

// One-way SHM-like pipe: delivers to `sink` after a small fixed latency.
class ShmFapiPipe {
 public:
  ShmFapiPipe(Simulator& sim, Nanos latency = 200)
      : sim_(&sim), latency_(latency) {}

  void connect(FapiSink* sink) { sink_ = sink; }
  [[nodiscard]] bool connected() const { return sink_ != nullptr; }

  // Observation tap (src/inject): sees every message entering the pipe.
  // Read-only; does not affect delivery.
  void set_tap(std::function<void(const FapiMessage&)> tap) {
    tap_ = std::move(tap);
  }

  void send(FapiMessage&& msg) {
    if (sink_ == nullptr) {
      return;
    }
    if (tap_) {
      tap_(msg);
    }
    FapiSink* sink = sink_;
    sim_->after(latency_, [sink, m = std::move(msg)]() mutable {
      sink->on_fapi(std::move(m));
    });
  }

 private:
  Simulator* sim_;
  Nanos latency_;
  FapiSink* sink_ = nullptr;
  std::function<void(const FapiMessage&)> tap_;
};

}  // namespace slingshot
