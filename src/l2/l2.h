// The L2 process: MAC scheduler, link adaptation, MAC-level HARQ
// management, and RLC-UM data plane — a software stand-in for a
// commercial L2 (CapGemini / Intel testmac in the paper's testbed).
//
// The L2 holds the *hard* per-UE state (contexts, queues, HARQ process
// bookkeeping) that survives PHY migration — which is precisely why
// Slingshot can discard the PHY's soft state (§4). Per the FAPI
// contract it issues UL_TTI and DL_TTI requests for every slot, a few
// slots ahead of over-the-air time.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "fapi/channel.h"
#include "fapi/fapi.h"
#include "l2/bulk_schedule.h"
#include "l2/rlc.h"
#include "phy/mcs.h"
#include "sim/simulator.h"

namespace slingshot {

struct L2Config {
  SlotConfig slots{};
  int fapi_advance_slots = 2;   // requests for slot N sent at N - 2
  int max_harq_retx = 3;        // 1 initial + 3 retransmissions (5G HARQ)
  double default_snr_db = 5.0;  // before the first PHY SNR report
  double mcs_margin_db = 1.0;
  int num_prbs = 273;
  int max_dl_prbs_per_ue = 273;
  int max_ul_prbs_per_ue = 100;
  std::size_t mtu_bytes = 1400;  // scheduler never allocates below this
  std::size_t max_dl_queue_bytes = 3'000'000;  // per-UE buffer cap
  Nanos rlc_t_reordering = 30_ms;  // UL receive reordering window
  // RLC-AM behaviour on the downlink: when a TB exhausts HARQ (or its
  // feedback never arrives, e.g. because the serving PHY died), its
  // SDUs are re-queued for retransmission instead of being dropped —
  // which is why the paper's DL TCP sees no visible degradation through
  // a failover while UL TCP must rely on the UE's TCP stack (§8.2).
  bool rlc_am_requeue = true;
};

// Outcome record for a completed uplink HARQ sequence (for Table 2's
// interrupted-HARQ accounting).
struct HarqSequenceRecord {
  UeId ue;
  std::int64_t start_slot = 0;
  std::int64_t end_slot = 0;
  int transmissions = 0;
  bool delivered = false;
};

// Aggregate outcome counters for a carrier's bulk (massive-UE) pool.
// The L2 keeps NO per-bulk-UE context — the pool rides configured
// grants recomputed from the pure bulk-schedule arithmetic, so L2-side
// cost is O(quota) per slot regardless of population.
struct BulkPoolStats {
  std::int64_t ul_pdus = 0;
  std::int64_t ul_crc_ok = 0;
  std::int64_t ul_crc_fail = 0;
  std::int64_t ul_bytes = 0;
  std::int64_t dl_pdus = 0;
  std::int64_t dl_acks = 0;
  std::int64_t dl_nacks = 0;
};

struct L2Stats {
  std::int64_t dl_tbs_scheduled = 0;
  std::int64_t dl_retx = 0;
  std::int64_t dl_tbs_lost = 0;   // exhausted HARQ
  std::int64_t ul_tbs_granted = 0;
  std::int64_t ul_retx = 0;
  std::int64_t ul_tbs_lost = 0;
  std::int64_t ul_sdus_delivered = 0;
  std::int64_t dl_sdus_dropped_overflow = 0;
  std::int64_t dl_rlc_requeues = 0;
};

class L2Process final : public FapiSink {
 public:
  L2Process(Simulator& sim, std::string name, L2Config config);

  // ---- Wiring ----
  // Where the L2 sends FAPI requests (L2-side Orion, or the PHY
  // directly in a coupled deployment).
  void connect_fapi_out(ShmFapiPipe* pipe) { fapi_out_ = pipe; }
  // Uplink SDUs exiting toward the core network / app server.
  void set_uplink_sink(std::function<void(UeId, std::vector<std::uint8_t>)> sink) {
    uplink_sink_ = std::move(sink);
  }

  // ---- Lifecycle ----
  // Configure and start a carrier, then begin the per-slot FAPI stream.
  void start_carrier(const CarrierConfig& carrier);
  void power_on();
  void kill();
  [[nodiscard]] bool alive() const { return alive_; }

  // ---- UE context management (the L2's hard state) ----
  void add_ue(UeId ue, RuId ru);
  void remove_ue(UeId ue);
  // Enable the configured-grant bulk pool on a carrier. Unlike add_ue
  // this creates no per-UE context; both sides recompute the same turn
  // schedule (src/l2/bulk_schedule.h).
  void configure_bulk(RuId ru, const BulkSchedule& schedule);
  [[nodiscard]] const BulkPoolStats& bulk_stats(std::uint8_t cell) const;
  [[nodiscard]] bool has_ue(UeId ue) const { return ues_.contains(ue.value()); }
  [[nodiscard]] double reported_snr_db(UeId ue) const;

  // ---- Data plane (core-network side) ----
  void send_downlink(UeId ue, std::vector<std::uint8_t> sdu);
  [[nodiscard]] std::size_t dl_queue_bytes(UeId ue) const;

  // ---- FAPI in (indications from the PHY) ----
  void on_fapi(FapiMessage&& msg) override;

  [[nodiscard]] const L2Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<HarqSequenceRecord>& harq_log() const {
    return harq_log_;
  }
  [[nodiscard]] const L2Config& config() const { return config_; }

 private:
  struct DlInflight {
    std::vector<std::uint8_t> payload;
    std::uint8_t mcs = 0;
    std::uint32_t tb_bytes = 0;
    int transmissions = 0;
    std::int64_t start_slot = 0;
    bool awaiting_ack = false;
  };
  struct UlInflight {
    std::uint8_t mcs = 0;
    std::uint32_t tb_bytes = 0;
    int transmissions = 0;
    std::int64_t start_slot = 0;
    bool active = false;
  };
  struct UeContext {
    UeId id;
    RuId ru;
    double snr_db;
    std::deque<RlcSdu> dl_queue;
    RlcTx dl_rlc_tx;
    std::unique_ptr<RlcRx> ul_rlc_rx;  // heap: owns a timer closure
    std::array<DlInflight, 8> dl_harq;
    std::array<UlInflight, 8> ul_harq;
    std::uint8_t next_dl_harq = 0;
    std::uint8_t next_ul_harq = 0;
    // HARQ processes needing retransmission scheduling.
    std::vector<std::uint8_t> pending_dl_retx;
    std::vector<std::uint8_t> pending_ul_retx;
  };

  void on_slot(std::int64_t now_slot);
  void schedule_downlink(RuId ru, std::int64_t target_slot,
                         std::vector<UlDci> ul_dci);
  // Decide UL grants on carrier `ru` for `target_slot` (k2 slots
  // ahead); the returned request is stashed until its UL_TTI send time,
  // and the DCI list is announced on the PDCCH of the current DL_TTI.
  [[nodiscard]] std::vector<UlDci> plan_uplink(RuId ru,
                                               std::int64_t target_slot);
  [[nodiscard]] int ue_count_on(RuId ru) const;
  void handle_crc(const FapiMessage& msg);
  void handle_rx_data(FapiMessage&& msg);
  void handle_uci(const FapiMessage& msg);
  void send_fapi(FapiMessage&& msg);
  [[nodiscard]] int active_ue_count_with_dl_data() const;
  void drop_or_requeue_dl(UeContext& ue, DlInflight& inflight);

  Simulator& sim_;
  std::string name_;
  L2Config config_;
  ShmFapiPipe* fapi_out_ = nullptr;
  std::function<void(UeId, std::vector<std::uint8_t>)> uplink_sink_;
  bool alive_ = false;
  EventHandle slot_task_;
  std::vector<CarrierConfig> carriers_;
  // Planned UL_TTI per (carrier, slot).
  std::map<std::pair<std::uint8_t, std::int64_t>, UlTtiRequest> planned_ul_;
  std::unordered_map<std::uint16_t, UeContext> ues_;
  // Bulk pools: schedule keyed by carrier RU, stats keyed by cell (the
  // only identity recoverable from a bulk wire id on indications).
  std::map<std::uint8_t, BulkSchedule> bulk_;
  std::map<std::uint8_t, BulkPoolStats> bulk_stats_;
  L2Stats stats_;
  std::vector<HarqSequenceRecord> harq_log_;
};

}  // namespace slingshot
