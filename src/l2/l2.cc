#include "l2/l2.h"

#include <algorithm>

#include "common/log.h"
#include "obs/obs.h"

namespace slingshot {
namespace {
// HARQ bookkeeping timeout: if the PHY never reports an outcome (e.g. it
// crashed mid-sequence), the process is reaped so scheduling can
// continue — the L2-level self-healing that lets traffic resume after a
// failover even before Orion finishes migrating.
constexpr std::int64_t kHarqStaleSlots = 40;  // 20 ms
}  // namespace

L2Process::L2Process(Simulator& sim, std::string name, L2Config config)
    : sim_(sim), name_(std::move(name)), config_(config) {}

void L2Process::start_carrier(const CarrierConfig& carrier) {
  carriers_.push_back(carrier);
  send_fapi(FapiMessage{carrier.ru, 0, ConfigRequest{carrier}});
  send_fapi(FapiMessage{carrier.ru, 0, StartRequest{carrier.ru}});
}

void L2Process::power_on() {
  if (alive_) {
    return;
  }
  alive_ = true;
  const Nanos first =
      config_.slots.slot_start(config_.slots.next_slot_after(sim_.now()));
  slot_task_ = sim_.every(first, config_.slots.slot_duration, [this] {
    on_slot(config_.slots.slot_at(sim_.now()));
  });
  SLOG_INFO("l2", "%s powered on", name_.c_str());
}

void L2Process::kill() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  slot_task_.cancel();
}

void L2Process::add_ue(UeId ue, RuId ru) {
  UeContext ctx;
  ctx.id = ue;
  ctx.ru = ru;
  ctx.snr_db = config_.default_snr_db;
  // Uplink RLC receive entity: in-order release toward the core.
  ctx.ul_rlc_rx = std::make_unique<RlcRx>(
      sim_, config_.rlc_t_reordering, [this, ue](std::vector<std::uint8_t> sdu) {
        ++stats_.ul_sdus_delivered;
        if (uplink_sink_) {
          uplink_sink_(ue, std::move(sdu));
        }
      });
  ues_.erase(ue.value());
  ues_.emplace(ue.value(), std::move(ctx));
}

void L2Process::remove_ue(UeId ue) { ues_.erase(ue.value()); }

void L2Process::configure_bulk(RuId ru, const BulkSchedule& schedule) {
  bulk_[ru.value()] = schedule;
  bulk_stats_[schedule.cell] = BulkPoolStats{};
}

const BulkPoolStats& L2Process::bulk_stats(std::uint8_t cell) const {
  static const BulkPoolStats kEmpty{};
  const auto it = bulk_stats_.find(cell);
  return it == bulk_stats_.end() ? kEmpty : it->second;
}

double L2Process::reported_snr_db(UeId ue) const {
  const auto it = ues_.find(ue.value());
  return it == ues_.end() ? config_.default_snr_db : it->second.snr_db;
}

void L2Process::send_downlink(UeId ue, std::vector<std::uint8_t> sdu) {
  const auto it = ues_.find(ue.value());
  if (it == ues_.end()) {
    return;  // unknown UE: the core's packet is dropped
  }
  auto& ctx = it->second;
  if (sdu.empty()) {
    return;  // zero-length SDUs are not representable in RLC framing
  }
  if (queued_bytes(ctx.dl_queue) + sdu.size() > config_.max_dl_queue_bytes) {
    ++stats_.dl_sdus_dropped_overflow;
    return;
  }
  ctx.dl_queue.push_back(RlcSdu{kRlcSnUnassigned, std::move(sdu)});
}

std::size_t L2Process::dl_queue_bytes(UeId ue) const {
  const auto it = ues_.find(ue.value());
  return it == ues_.end() ? 0 : queued_bytes(it->second.dl_queue);
}

void L2Process::on_slot(std::int64_t now_slot) {
  if (!alive_ || carriers_.empty()) {
    return;
  }
  const std::int64_t target = now_slot + config_.fapi_advance_slots;

  // Reap stale HARQ processes whose outcomes will never arrive.
  for (auto& [id, ue] : ues_) {
    for (std::uint8_t h = 0; h < 8; ++h) {
      auto& dl = ue.dl_harq[h];
      if (dl.awaiting_ack && now_slot - dl.start_slot > kHarqStaleSlots) {
        dl.awaiting_ack = false;
        drop_or_requeue_dl(ue, dl);
      }
      auto& ul = ue.ul_harq[h];
      if (ul.active && now_slot - ul.start_slot > kHarqStaleSlots) {
        ul.active = false;
        ++stats_.ul_tbs_lost;
        harq_log_.push_back(HarqSequenceRecord{ue.id, ul.start_slot, now_slot,
                                               ul.transmissions, false});
      }
    }
    std::erase_if(ue.pending_dl_retx, [&](std::uint8_t h) {
      return !ue.dl_harq[h].awaiting_ack;
    });
    std::erase_if(ue.pending_ul_retx,
                  [&](std::uint8_t h) { return !ue.ul_harq[h].active; });
  }

  for (const auto& carrier : carriers_) {
    const RuId ru = carrier.ru;
    // Span opens here: everything the L2 emits this TTI is for `target`.
    SLS_TRACE_STAGE(sim_, obs::SlotStage::kL2Request, ru.value(), target);
    // Plan UL grants k2 = advance + 2 slots out, so their DCI rides in
    // the DL_TTI that is announced over the air before the PUSCH slot.
    auto ul_dci = plan_uplink(ru, now_slot + config_.fapi_advance_slots + 2);
    schedule_downlink(ru, target, std::move(ul_dci));

    // Send the UL_TTI whose slot is due now (planned two on_slot calls
    // ago); null if nothing was planned.
    UlTtiRequest ul_req;
    const auto planned = planned_ul_.find({ru.value(), target});
    if (planned != planned_ul_.end()) {
      ul_req = std::move(planned->second);
      planned_ul_.erase(planned);
    }
    send_fapi(FapiMessage{ru, target, std::move(ul_req)});
  }
  // Drop any stale plans (e.g. for carriers stopped mid-flight).
  std::erase_if(planned_ul_, [target](const auto& kv) {
    return kv.first.second < target - 10;
  });
}

int L2Process::ue_count_on(RuId ru) const {
  int n = 0;
  for (const auto& [id, ue] : ues_) {
    n += ue.ru == ru ? 1 : 0;
  }
  return n;
}

int L2Process::active_ue_count_with_dl_data() const {
  int n = 0;
  for (const auto& [id, ue] : ues_) {
    if (!ue.dl_queue.empty() || !ue.pending_dl_retx.empty()) {
      ++n;
    }
  }
  return n;
}

void L2Process::schedule_downlink(RuId ru, std::int64_t target_slot,
                                  std::vector<UlDci> ul_dci) {
  DlTtiRequest dl_req;
  dl_req.ul_dci = std::move(ul_dci);
  TxDataRequest tx;

  if (config_.slots.is_downlink(target_slot)) {
    const int eligible = active_ue_count_with_dl_data();
    const int prbs_per_ue =
        eligible > 0
            ? std::min(config_.num_prbs / eligible, config_.max_dl_prbs_per_ue)
            : 0;
    for (auto& [id, ue] : ues_) {
      if (ue.ru != ru) {
        continue;  // this UE is served on a different carrier
      }
      // Retransmissions first: same HARQ process, same payload/MCS.
      if (!ue.pending_dl_retx.empty()) {
        const std::uint8_t h = ue.pending_dl_retx.front();
        ue.pending_dl_retx.erase(ue.pending_dl_retx.begin());
        auto& inflight = ue.dl_harq[h];
        if (inflight.awaiting_ack) {
          ++inflight.transmissions;
          ++stats_.dl_retx;
          dl_req.pdus.push_back(TtiPdu{ue.id, inflight.mcs, inflight.tb_bytes,
                                       HarqId{h}, /*new_data=*/false});
          tx.payloads.push_back(inflight.payload);
          continue;  // one TB per UE per slot
        }
      }
      if (ue.dl_queue.empty() || prbs_per_ue <= 0) {
        continue;
      }
      // New transmission on a free HARQ process.
      std::uint8_t h = ue.next_dl_harq;
      bool found = false;
      for (int probe = 0; probe < 8; ++probe) {
        if (!ue.dl_harq[h].awaiting_ack) {
          found = true;
          break;
        }
        h = std::uint8_t((h + 1) % 8);
      }
      if (!found) {
        continue;  // all processes in flight
      }
      ue.next_dl_harq = std::uint8_t((h + 1) % 8);
      const auto mcs = select_mcs(ue.snr_db, config_.mcs_margin_db);
      const auto tb_bytes = std::max<std::uint32_t>(
          tb_size_bytes(mcs, prbs_per_ue),
          std::uint32_t(config_.mtu_bytes + 2));
      auto payload = ue.dl_rlc_tx.pack(ue.dl_queue, tb_bytes);
      auto& inflight = ue.dl_harq[h];
      inflight.payload = payload;
      inflight.mcs = mcs;
      inflight.tb_bytes = tb_bytes;
      inflight.transmissions = 1;
      inflight.start_slot = target_slot;
      inflight.awaiting_ack = true;
      ++stats_.dl_tbs_scheduled;
      dl_req.pdus.push_back(
          TtiPdu{ue.id, mcs, tb_bytes, HarqId{h}, /*new_data=*/true});
      tx.payloads.push_back(std::move(payload));
    }
  }

  // Bulk DL pdus go at the END of the request with NO payloads: the
  // PHY's legacy U-plane loop is payload-indexed, so the trailing bulk
  // pdus never consume a tracer payload (and never perturb the tracer
  // jitter draw sequence); a separate bulk U-plane path radiates them
  // as zero-IQ marker sections.
  if (config_.slots.is_downlink(target_slot)) {
    const auto bulk = bulk_.find(ru.value());
    if (bulk != bulk_.end() && bulk->second.population > 0) {
      const std::size_t before = dl_req.pdus.size();
      append_bulk_dl(bulk->second, target_slot, dl_req.pdus);
      bulk_stats_[bulk->second.cell].dl_pdus +=
          std::int64_t(dl_req.pdus.size() - before);
    }
  }

  send_fapi(FapiMessage{ru, target_slot, std::move(dl_req)});
  if (!tx.payloads.empty()) {
    send_fapi(FapiMessage{ru, target_slot, std::move(tx)});
  }
}

std::vector<UlDci> L2Process::plan_uplink(RuId ru,
                                          std::int64_t target_slot) {
  std::vector<UlDci> dci;
  UlTtiRequest ul_req;

  const int carrier_ues = ue_count_on(ru);
  if (config_.slots.is_uplink(target_slot) && carrier_ues > 0) {
    const int prbs_per_ue = std::min(config_.num_prbs / carrier_ues,
                                     config_.max_ul_prbs_per_ue);
    for (auto& [id, ue] : ues_) {
      if (ue.ru != ru) {
        continue;
      }
      // Retransmission grants first.
      if (!ue.pending_ul_retx.empty()) {
        const std::uint8_t h = ue.pending_ul_retx.front();
        ue.pending_ul_retx.erase(ue.pending_ul_retx.begin());
        auto& inflight = ue.ul_harq[h];
        if (inflight.active) {
          ++inflight.transmissions;
          ++stats_.ul_retx;
          ul_req.pdus.push_back(TtiPdu{ue.id, inflight.mcs, inflight.tb_bytes,
                                       HarqId{h}, /*new_data=*/false});
          continue;
        }
      }
      // New grant on a free HARQ process (semi-persistent: every UL
      // slot, every connected UE).
      std::uint8_t h = ue.next_ul_harq;
      bool found = false;
      for (int probe = 0; probe < 8; ++probe) {
        if (!ue.ul_harq[h].active) {
          found = true;
          break;
        }
        h = std::uint8_t((h + 1) % 8);
      }
      if (!found) {
        continue;
      }
      ue.next_ul_harq = std::uint8_t((h + 1) % 8);
      const auto mcs = select_mcs(ue.snr_db, config_.mcs_margin_db);
      const auto tb_bytes = std::max<std::uint32_t>(
          tb_size_bytes(mcs, prbs_per_ue),
          std::uint32_t(config_.mtu_bytes + 2));
      auto& inflight = ue.ul_harq[h];
      inflight.mcs = mcs;
      inflight.tb_bytes = tb_bytes;
      inflight.transmissions = 1;
      inflight.start_slot = target_slot;
      inflight.active = true;
      ++stats_.ul_tbs_granted;
      ul_req.pdus.push_back(
          TtiPdu{ue.id, mcs, tb_bytes, HarqId{h}, /*new_data=*/true});
    }
  }

  dci.reserve(ul_req.pdus.size());
  for (const auto& pdu : ul_req.pdus) {
    dci.push_back(UlDci{pdu, target_slot});
  }
  // Bulk pool: configured grants appended AFTER the DCI loop — they are
  // implicit (the batch recomputes the same turns), so the C-plane
  // carries no per-bulk-UE DCI and its wire size stays flat in N.
  if (config_.slots.is_uplink(target_slot)) {
    const auto bulk = bulk_.find(ru.value());
    if (bulk != bulk_.end() && bulk->second.population > 0) {
      const std::size_t before = ul_req.pdus.size();
      append_bulk_ul(bulk->second, target_slot, ul_req.pdus);
      bulk_stats_[bulk->second.cell].ul_pdus +=
          std::int64_t(ul_req.pdus.size() - before);
    }
  }
  if (!ul_req.pdus.empty()) {
    planned_ul_[{ru.value(), target_slot}] = std::move(ul_req);
  }
  return dci;
}

void L2Process::on_fapi(FapiMessage&& msg) {
  if (!alive_) {
    return;
  }
  switch (msg.type()) {
    case FapiMsgType::kCrcIndication:
      handle_crc(msg);
      break;
    case FapiMsgType::kRxDataIndication:
      handle_rx_data(std::move(msg));
      break;
    case FapiMsgType::kUciIndication:
      handle_uci(msg);
      break;
    default:
      break;  // SLOT.ind / CONFIG.response etc. need no action here
  }
}

void L2Process::handle_crc(const FapiMessage& msg) {
  // Span closes: the slot's UL outcome is back at the scheduler.
  SLS_TRACE_STAGE(sim_, obs::SlotStage::kResponse, msg.ru.value(), msg.slot);
  for (const auto& entry : std::get<CrcIndication>(msg.body).entries) {
    if (is_bulk_ue(entry.ue)) {
      auto& pool = bulk_stats_[bulk_cell_of(entry.ue)];
      ++(entry.ok ? pool.ul_crc_ok : pool.ul_crc_fail);
      continue;  // no per-UE HARQ context for bulk pools
    }
    const auto it = ues_.find(entry.ue.value());
    if (it == ues_.end()) {
      continue;
    }
    auto& ue = it->second;
    // Link adaptation input: the PHY's filtered SNR estimate.
    ue.snr_db = entry.snr_db;
    auto& inflight = ue.ul_harq[entry.harq.value() % 8];
    if (!inflight.active) {
      continue;  // stale indication (already reaped)
    }
    if (entry.ok) {
      inflight.active = false;
      harq_log_.push_back(HarqSequenceRecord{ue.id, inflight.start_slot,
                                             msg.slot, inflight.transmissions,
                                             true});
    } else if (inflight.transmissions > config_.max_harq_retx) {
      inflight.active = false;
      ++stats_.ul_tbs_lost;
      harq_log_.push_back(HarqSequenceRecord{ue.id, inflight.start_slot,
                                             msg.slot, inflight.transmissions,
                                             false});
    } else {
      ue.pending_ul_retx.push_back(entry.harq.value() % 8);
    }
  }
}

void L2Process::handle_rx_data(FapiMessage&& msg) {
  auto& rx = std::get<RxDataIndication>(msg.body);
  for (auto& pdu : rx.pdus) {
    if (is_bulk_ue(pdu.ue)) {
      // Bulk payloads are synthetic app bytes, not RLC frames; account
      // and discard.
      bulk_stats_[bulk_cell_of(pdu.ue)].ul_bytes +=
          std::int64_t(pdu.payload.size());
      continue;
    }
    const auto it = ues_.find(pdu.ue.value());
    if (it == ues_.end()) {
      continue;
    }
    for (auto& sdu : rlc_unpack(pdu.payload)) {
      it->second.ul_rlc_rx->on_sdu(std::move(sdu));
    }
  }
}

void L2Process::handle_uci(const FapiMessage& msg) {
  for (const auto& entry : std::get<UciIndication>(msg.body).entries) {
    if (is_bulk_ue(entry.ue)) {
      auto& pool = bulk_stats_[bulk_cell_of(entry.ue)];
      ++(entry.ack ? pool.dl_acks : pool.dl_nacks);
      continue;  // bulk DL is always new_data; no retx scheduling
    }
    const auto it = ues_.find(entry.ue.value());
    if (it == ues_.end()) {
      continue;
    }
    auto& ue = it->second;
    auto& inflight = ue.dl_harq[entry.harq.value() % 8];
    if (!inflight.awaiting_ack) {
      continue;
    }
    if (entry.ack) {
      inflight.awaiting_ack = false;
      inflight.payload.clear();
    } else if (inflight.transmissions > config_.max_harq_retx) {
      inflight.awaiting_ack = false;
      drop_or_requeue_dl(ue, inflight);
    } else {
      ue.pending_dl_retx.push_back(entry.harq.value() % 8);
    }
  }
}

void L2Process::drop_or_requeue_dl(UeContext& ue, DlInflight& inflight) {
  ++stats_.dl_tbs_lost;
  if (config_.rlc_am_requeue && !inflight.payload.empty()) {
    // RLC-AM: recover the TB's SDUs for retransmission, ahead of new
    // data (insert at the queue front, preserving order).
    auto sdus = rlc_unpack(inflight.payload);
    ++stats_.dl_rlc_requeues;
    // RLC-AM retransmission: the SDUs keep their original sequence
    // numbers and jump the queue, so the UE's receive window fills its
    // gap in order — TCP above never sees reordering or loss, only a
    // short delay (the paper's "DL unaffected" failover behaviour).
    for (auto it = sdus.rbegin(); it != sdus.rend(); ++it) {
      ue.dl_queue.push_front(std::move(*it));
    }
  }
  inflight.payload.clear();
}

void L2Process::send_fapi(FapiMessage&& msg) {
  if (fapi_out_ != nullptr) {
    fapi_out_->send(std::move(msg));
  }
}

}  // namespace slingshot
