// RLC-UM data plane: SDU framing with sequence numbers and a
// t-Reordering receive window.
//
// Transport blocks carry whole SDUs as [SN u32][len u16][bytes] records,
// zero-length-terminated. Sequence numbers matter because HARQ
// retransmissions deliver TBs out of order (a TB that fails CRC lands
// several slots after its successors); without RLC reordering, TCP above
// would see packet reordering and trigger spurious fast retransmits.
// The receiver therefore buffers out-of-sequence SDUs and releases them
// in order, skipping real losses only after the t-Reordering timer
// (as 3GPP RLC-UM does).
//
// Segmentation is intentionally not implemented: the scheduler never
// allocates a TB smaller than the configured MTU, so SDUs always fit
// whole. Reliability above HARQ comes from RLC-AM-style requeueing on
// the DL and the transport layer (TCP) on the UL, matching the paper's
// observed asymmetry (§8.2).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "sim/simulator.h"

namespace slingshot {

inline constexpr std::uint32_t kRlcSnUnassigned = 0xFFFFFFFF;

struct RlcSdu {
  std::uint32_t sn = kRlcSnUnassigned;
  std::vector<std::uint8_t> bytes;
};

// Transmit side: stamps each SDU with the next sequence number. SDUs
// re-queued by RLC-AM retransmission keep their original SN, so the
// receiver's gap *fills* (in-order delivery resumes seamlessly) rather
// than being skipped.
class RlcTx {
 public:
  // Pops SDUs from `queue` while they fit in `tb_bytes` and serializes
  // them (assigning fresh SNs where unassigned), zero-padded to exactly
  // tb_bytes.
  [[nodiscard]] std::vector<std::uint8_t> pack(std::deque<RlcSdu>& queue,
                                               std::size_t tb_bytes) {
    std::vector<std::uint8_t> out;
    out.reserve(tb_bytes);
    while (!queue.empty()) {
      auto& sdu = queue.front();
      const std::size_t need = 6 + sdu.bytes.size();
      if (out.size() + need > tb_bytes || sdu.bytes.empty()) {
        break;
      }
      const std::uint32_t sn =
          sdu.sn == kRlcSnUnassigned ? next_sn_++ : sdu.sn;
      out.push_back(std::uint8_t(sn >> 24));
      out.push_back(std::uint8_t(sn >> 16));
      out.push_back(std::uint8_t(sn >> 8));
      out.push_back(std::uint8_t(sn));
      out.push_back(std::uint8_t(sdu.bytes.size() >> 8));
      out.push_back(std::uint8_t(sdu.bytes.size() & 0xFF));
      out.insert(out.end(), sdu.bytes.begin(), sdu.bytes.end());
      queue.pop_front();
    }
    out.resize(tb_bytes, 0);  // [sn][len=0] terminates on the receive side
    return out;
  }

  void reset() { next_sn_ = 0; }
  [[nodiscard]] std::uint32_t next_sn() const { return next_sn_; }

 private:
  std::uint32_t next_sn_ = 0;
};

// Unpacks a TB payload into (SN, SDU) records.
[[nodiscard]] inline std::vector<RlcSdu> rlc_unpack(
    std::span<const std::uint8_t> tb) {
  std::vector<RlcSdu> sdus;
  std::size_t pos = 0;
  while (pos + 6 <= tb.size()) {
    RlcSdu sdu;
    sdu.sn = (std::uint32_t(tb[pos]) << 24) | (std::uint32_t(tb[pos + 1]) << 16) |
             (std::uint32_t(tb[pos + 2]) << 8) | std::uint32_t(tb[pos + 3]);
    const std::size_t len =
        (std::size_t(tb[pos + 4]) << 8) | std::size_t(tb[pos + 5]);
    pos += 6;
    if (len == 0 || pos + len > tb.size()) {
      break;
    }
    sdu.bytes.assign(tb.begin() + long(pos), tb.begin() + long(pos + len));
    pos += len;
    sdus.push_back(std::move(sdu));
  }
  return sdus;
}

// Receive side: in-order release with a t-Reordering timer.
class RlcRx {
 public:
  using DeliverFn = std::function<void(std::vector<std::uint8_t>)>;

  RlcRx(Simulator& sim, Nanos t_reordering, DeliverFn deliver)
      : sim_(&sim), t_reordering_(t_reordering), deliver_(std::move(deliver)) {}

  void on_sdu(RlcSdu&& sdu) {
    if (sdu.sn < expected_) {
      ++duplicates_;
      return;  // duplicate or already skipped
    }
    if (sdu.sn == expected_) {
      deliver_(std::move(sdu.bytes));
      ++expected_;
      drain_contiguous();
    } else {
      buffer_.emplace(sdu.sn, std::move(sdu.bytes));
    }
    manage_timer();
  }

  void reset() {
    expected_ = 0;
    buffer_.clear();
    timer_.cancel();
  }

  [[nodiscard]] std::uint32_t expected_sn() const { return expected_; }
  [[nodiscard]] std::size_t buffered() const { return buffer_.size(); }
  [[nodiscard]] std::uint64_t skipped() const { return skipped_; }
  [[nodiscard]] std::uint64_t duplicates() const { return duplicates_; }

 private:
  void drain_contiguous() {
    auto it = buffer_.find(expected_);
    while (it != buffer_.end()) {
      deliver_(std::move(it->second));
      buffer_.erase(it);
      ++expected_;
      it = buffer_.find(expected_);
    }
  }

  void manage_timer() {
    if (buffer_.empty()) {
      timer_.cancel();
      timer_armed_ = false;
      return;
    }
    if (!timer_armed_) {
      timer_armed_ = true;
      timer_ = sim_->after(t_reordering_, [this] { on_timer(); });
    }
  }

  void on_timer() {
    timer_armed_ = false;
    if (buffer_.empty()) {
      return;
    }
    // Give up on the gap: skip to the first buffered SN.
    skipped_ += buffer_.begin()->first - expected_;
    expected_ = buffer_.begin()->first;
    drain_contiguous();
    manage_timer();
  }

  Simulator* sim_;
  Nanos t_reordering_;
  DeliverFn deliver_;
  std::uint32_t expected_ = 0;
  std::map<std::uint32_t, std::vector<std::uint8_t>> buffer_;
  EventHandle timer_;
  bool timer_armed_ = false;
  std::uint64_t skipped_ = 0;
  std::uint64_t duplicates_ = 0;
};

// Bytes currently queued (SDU payloads only).
[[nodiscard]] inline std::size_t queued_bytes(
    const std::deque<RlcSdu>& queue) {
  std::size_t total = 0;
  for (const auto& sdu : queue) {
    total += sdu.bytes.size();
  }
  return total;
}

}  // namespace slingshot
