// Shared bulk-UE grant schedule — the contract between the L2 scheduler
// and the massive-UE batch (src/ue/ue_batch.h).
//
// Individually-modeled UEs receive explicit per-UE DCI; at 10^6 UEs that
// is untenable (the C-plane alone would dwarf the data). Instead the
// batched population runs on a configured-grant-style schedule: for any
// absolute slot, both the L2 and the batch recompute the same
// (wire id, lane, HARQ) tuples from pure arithmetic — no per-lane grant
// state, no DCI bytes, no lane→RNTI inversion tables. The L2 appends the
// matching PDUs to its UL_TTI/DL_TTI requests; the batch generates (UL)
// or consumes (DL) the matching U-plane sections.
//
// Bulk wire ids carry bit 15, so every component on the path (PHY
// decode, RU air interface, L2 indication handlers) can route them with
// a single mask test. Tracer/legacy UE ids stay far below the flag
// (testbeds allocate 1.., 101.., 100*cell+1..), so the two populations
// can never collide on the wire.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "fapi/fapi.h"

namespace slingshot {

// Bit 15 marks a bulk (batched) UE wire id.
inline constexpr std::uint16_t kBulkUeFlag = 0x8000;

[[nodiscard]] inline constexpr bool is_bulk_ue(UeId ue) {
  return (ue.value() & kBulkUeFlag) != 0;
}

// Bulk wire id layout: [15]=1, [14:8]=cell, [7:0]=rotating RNTI slot.
[[nodiscard]] inline constexpr UeId bulk_wire_id(std::uint8_t cell,
                                                 std::uint8_t rnti) {
  return UeId{std::uint16_t(kBulkUeFlag |
                            (std::uint16_t(cell & 0x7F) << 8) | rnti)};
}

[[nodiscard]] inline constexpr std::uint8_t bulk_cell_of(UeId ue) {
  return std::uint8_t((ue.value() >> 8) & 0x7F);
}

// One cell's bulk schedule parameters. `population` is the batch's lane
// count; the per-slot quotas bound the PHY's extra signal-processing
// work to a constant independent of population (each lane simply waits
// longer between turns as the cell fills up).
struct BulkSchedule {
  std::uint8_t cell = 0;
  std::uint32_t population = 0;
  int ul_grants_per_slot = 2;   // bulk PUSCH PDUs per UL slot
  int dl_pdus_per_slot = 2;     // bulk PDSCH PDUs per DL slot
  std::uint8_t ul_mcs = 1;
  std::uint8_t dl_mcs = 1;
  std::uint32_t ul_tb_bytes = 320;
  std::uint32_t dl_tb_bytes = 1402;
};

// The lane/RNTI/HARQ tuple for turn `j` of a slot. The rotating index
// keeps the ≤256 in-flight wire ids distinct inside the PHY's pipelined
// decode window while cycling fairly over all lanes.
struct BulkTurn {
  UeId ue;
  std::uint32_t lane = 0;
  HarqId harq;
};

namespace detail {
[[nodiscard]] inline BulkTurn bulk_turn(const BulkSchedule& s,
                                        std::int64_t slot, int j,
                                        int per_slot) {
  const std::uint64_t index =
      std::uint64_t(slot) * std::uint64_t(per_slot) + std::uint64_t(j);
  BulkTurn turn;
  turn.ue = bulk_wire_id(s.cell, std::uint8_t(index & 0xFF));
  turn.lane = std::uint32_t(index % s.population);
  turn.harq = HarqId{std::uint8_t(index & 0x7)};
  return turn;
}
}  // namespace detail

[[nodiscard]] inline BulkTurn bulk_ul_turn(const BulkSchedule& s,
                                           std::int64_t slot, int j) {
  return detail::bulk_turn(s, slot, j, s.ul_grants_per_slot);
}

[[nodiscard]] inline BulkTurn bulk_dl_turn(const BulkSchedule& s,
                                           std::int64_t slot, int j) {
  return detail::bulk_turn(s, slot, j, s.dl_pdus_per_slot);
}

// L2-side helpers: append the slot's bulk PDUs to a TTI request. UL
// PDUs are always new_data (the batch has no uplink HARQ retention; a
// missed turn surfaces as a CRC failure and the data is simply re-sent
// from the lane's credit backlog). DL PDUs carry no TX_DATA payload —
// the PHY emits them as zero-IQ marker sections and the batch models
// the decode itself.
inline void append_bulk_ul(const BulkSchedule& s, std::int64_t slot,
                           std::vector<TtiPdu>& pdus) {
  if (s.population == 0) {
    return;
  }
  for (int j = 0; j < s.ul_grants_per_slot; ++j) {
    const auto turn = bulk_ul_turn(s, slot, j);
    pdus.push_back(
        TtiPdu{turn.ue, s.ul_mcs, s.ul_tb_bytes, turn.harq, true});
  }
}

inline void append_bulk_dl(const BulkSchedule& s, std::int64_t slot,
                           std::vector<TtiPdu>& pdus) {
  if (s.population == 0) {
    return;
  }
  for (int j = 0; j < s.dl_pdus_per_slot; ++j) {
    const auto turn = bulk_dl_turn(s, slot, j);
    pdus.push_back(
        TtiPdu{turn.ue, s.dl_mcs, s.dl_tb_bytes, turn.harq, true});
  }
}

}  // namespace slingshot
