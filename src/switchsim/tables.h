// Programmable-switch state primitives, mirroring what P4 on Tofino
// offers and what Slingshot's fronthaul middlebox is built from (§7):
//
//  * MatchActionTable — exact-match tables (the RU-ID and PHY-address
//    directories). Only the *control plane* can insert/modify entries,
//    and a rule update takes milliseconds to land (the paper measures a
//    29 ms 99.9th-percentile update latency on their testbed), which is
//    exactly why Slingshot keeps the RU-to-PHY mapping in registers.
//  * RegisterArray — data-plane-updatable registers (the RU-to-PHY map,
//    the migration request store, the failure-detector counters).
//    Updates are immediate, at packet-processing time.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/rng.h"
#include "sim/simulator.h"

namespace slingshot {

// Latency model for switch control-plane rule updates. Defaults are
// calibrated to the paper's measurement: ~29 ms at the 99.9th pct.
struct ControlPlaneLatencyModel {
  Nanos base = 5'000'000;        // 5 ms fixed gRPC/driver cost
  Nanos exp_mean = 3'500'000;    // exponential tail, mean 3.5 ms
  // base + Exp(mean): p99.9 = base + mean*ln(1000) ~= 29.2 ms.

  [[nodiscard]] Nanos sample(RngStream& rng) const {
    return base + Nanos(rng.exponential(double(exp_mean)));
  }
};

template <typename Key, typename Value>
class MatchActionTable {
 public:
  MatchActionTable(Simulator& sim, RngStream rng,
                   ControlPlaneLatencyModel latency = {})
      : sim_(&sim), rng_(std::move(rng)), latency_(latency) {}

  // Pending delayed installs capture `this`; a table torn down mid-run
  // (the PHY pool shrinking, a testbed rebuilt between bench phases)
  // must not leave callbacks poking freed memory.
  ~MatchActionTable() {
    for (auto& p : pending_) {
      p.handle.cancel();
    }
  }

  MatchActionTable(const MatchActionTable&) = delete;
  MatchActionTable& operator=(const MatchActionTable&) = delete;

  // Control-plane insert: takes effect after a sampled rule-update
  // latency. Returns the virtual time at which the rule lands.
  //
  // Installs are applied in *issue order* per key, not in sampled-
  // latency order: the driver/gRPC channel to a real switch serializes
  // updates to one table entry, so a later update can never be undone
  // by an earlier one whose (longer) latency sample lands after it.
  // Each insert carries a per-key sequence number; a landing callback
  // whose sequence is older than the newest already-landed one for that
  // key is a stale land and is dropped.
  Nanos control_plane_insert(const Key& key, const Value& value) {
    const Nanos delay = latency_.sample(rng_);
    const std::uint64_t seq = ++issue_seq_[key];
    prune_pending();
    auto handle = sim_->after(delay, [this, key, value, seq] {
      auto [it, fresh] = landed_seq_.try_emplace(key, seq);
      if (!fresh) {
        if (it->second >= seq) {
          ++stale_lands_dropped_;
          return;  // a newer update already landed for this key
        }
        it->second = seq;
      }
      entries_[key] = value;
    });
    const Nanos lands_at = sim_->now() + delay;
    pending_.push_back(Pending{lands_at, handle});
    return lands_at;
  }

  // Instant insert for initialization time (before traffic starts) —
  // corresponds to pre-populating tables when the datacenter is set up.
  void bootstrap_insert(const Key& key, const Value& value) {
    entries_[key] = value;
  }

  // Data-plane lookup: immediate, read-only.
  [[nodiscard]] const Value* lookup(const Key& key) const {
    const auto it = entries_.find(key);
    return it == entries_.end() ? nullptr : &it->second;
  }

  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] std::uint64_t stale_lands_dropped() const {
    return stale_lands_dropped_;
  }

 private:
  struct Pending {
    Nanos lands_at = 0;
    EventHandle handle;
  };

  void prune_pending() {
    if (pending_.size() < 64) {
      return;
    }
    const Nanos now = sim_->now();
    std::erase_if(pending_,
                  [now](const Pending& p) { return p.lands_at <= now; });
  }

  Simulator* sim_;
  RngStream rng_;
  ControlPlaneLatencyModel latency_;
  std::unordered_map<Key, Value> entries_;
  std::unordered_map<Key, std::uint64_t> issue_seq_;
  std::unordered_map<Key, std::uint64_t> landed_seq_;
  std::vector<Pending> pending_;
  std::uint64_t stale_lands_dropped_ = 0;
};

// Fixed-size register array, readable and writable from the data plane
// at line rate (the property match-action tables lack).
template <typename T>
class RegisterArray {
 public:
  explicit RegisterArray(std::size_t size, T initial = T{})
      : regs_(size, initial) {}

  [[nodiscard]] const T& read(std::size_t i) const { return regs_.at(i); }
  void write(std::size_t i, const T& v) { regs_.at(i) = v; }
  [[nodiscard]] std::size_t size() const { return regs_.size(); }

 private:
  std::vector<T> regs_;
};

}  // namespace slingshot
