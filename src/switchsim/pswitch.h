// Programmable switch model (Tofino-style).
//
// Frames arriving on any port traverse an optional DataplaneProgram
// (Slingshot's fronthaul middlebox installs one); the program can
// forward, drop, rewrite, or emit additional packets at data-plane
// latency. Frames the program declines are forwarded by the switch's
// plain static L2 table. A built-in packet generator injects periodic
// "timer" packets into the pipeline, which is how the failure detector
// emulates timeouts on hardware that has no timers (§5.2.2).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "net/link.h"
#include "net/packet.h"
#include "obs/metrics.h"
#include "sim/simulator.h"

namespace slingshot {

class ProgrammableSwitch;

// What the dataplane program decided for the frame it was handed.
enum class PipelineVerdict : std::uint8_t {
  kDefaultForward,  // not mine: use the switch's static L2 table
  kHandled,         // program consumed it (forwarded via ctx or dropped)
};

// Execution context handed to the program for each packet.
class PipelineContext {
 public:
  PipelineContext(ProgrammableSwitch& sw, Nanos now) : sw_(sw), now_(now) {}

  [[nodiscard]] Nanos now() const { return now_; }
  // Emit a frame out of a specific egress port.
  void emit(int egress_port, Packet&& packet);
  // Emit a frame toward a MAC address via the static L2 table.
  void emit_to_mac(const MacAddr& dst, Packet&& packet);

 private:
  ProgrammableSwitch& sw_;
  Nanos now_;
};

class DataplaneProgram {
 public:
  virtual ~DataplaneProgram() = default;
  // Process a frame that arrived on `ingress_port`. May mutate it.
  virtual PipelineVerdict process(Packet& packet, int ingress_port,
                                  PipelineContext& ctx) = 0;
  // Called for each packet injected by the switch's packet generator.
  virtual void on_generator_packet(Packet& packet, PipelineContext& ctx) = 0;
};

// Observes every ingress frame — models the paper's timestamping mirror
// (§8.6) used to measure fronthaul inter-packet gaps.
using IngressTap =
    std::function<void(const Packet&, int ingress_port, Nanos now)>;

// Observes emitted frames of one EtherType (see set_notification_tap).
using NotificationTap = std::function<void(const Packet&, Nanos now)>;

class ProgrammableSwitch {
 public:
  ProgrammableSwitch(Simulator& sim, int num_ports,
                     Nanos pipeline_latency = 400);

  // Wire up `link`'s B side to `port`; frames from the link enter the
  // pipeline, frames emitted on the port go to the link's A side.
  void attach_link(int port, Link& link);

  // Static L2 forwarding entry (set up at installation time).
  void add_l2_route(const MacAddr& mac, int port);

  void install_program(std::shared_ptr<DataplaneProgram> program) {
    program_ = std::move(program);
  }
  [[nodiscard]] DataplaneProgram* program() const { return program_.get(); }

  // Start injecting generator packets every `period`. Tofino's packet
  // generator is configured by the control plane (§7); each injected
  // packet runs through the installed program's generator hook.
  void start_packet_generator(Nanos period);
  void stop_packet_generator();

  void set_ingress_tap(IngressTap tap) { tap_ = std::move(tap); }

  // Clock-error hook for the packet generator (the gPTP sync-error
  // model): when set, every tick interval is the nominal period passed
  // through `f` — the period as counted on the switch's drifting local
  // oscillator. Must be set before start_packet_generator; null keeps
  // the ideal fixed-period generator.
  using TickPerturbation = std::function<Nanos(Nanos nominal_period)>;
  void set_tick_perturbation(TickPerturbation f) {
    tick_perturb_ = std::move(f);
  }

  // Observes frames the switch *emits* with the given EtherType —
  // regardless of egress port or whether the port is wired. Lets a
  // fleet-level watcher (the shard coordinator) see switch-originated
  // failure notifications (§5.2.2) without sitting in the forwarding
  // path. One tap per switch; pass a null function to detach.
  void set_notification_tap(EtherType type, NotificationTap tap) {
    notify_type_ = type;
    notify_tap_ = std::move(tap);
  }

  // Mirror the frame/generator counters into registry counters. Cached
  // raw pointers (registry storage is stable), null-checked on the hot
  // path; pass nullptrs to detach.
  void bind_obs(obs::Counter* frames, obs::Counter* generator_packets) {
    obs_frames_ = frames;
    obs_gen_ = generator_packets;
  }

  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] int num_ports() const { return num_ports_; }
  [[nodiscard]] std::uint64_t frames_processed() const { return processed_; }
  [[nodiscard]] std::uint64_t generator_packets() const { return gen_count_; }
  // Emissions aimed at an out-of-range or unwired port: a silently
  // misconfigured egress is a counted, observable drop, never UB.
  [[nodiscard]] std::uint64_t emits_to_unwired_port() const {
    return unwired_emits_;
  }

  // Internal use by PipelineContext and port sinks.
  void emit_on_port(int port, Packet&& packet);
  void emit_via_l2(const MacAddr& dst, Packet&& packet);
  void ingress(Packet&& packet, int port);

 private:
  void generator_tick();
  void schedule_perturbed_tick();

  struct PortSink final : FrameSink {
    ProgrammableSwitch* owner = nullptr;
    int port = -1;
    void handle_frame(Packet&& packet) override {
      owner->ingress(std::move(packet), port);
    }
  };

  Simulator& sim_;
  int num_ports_;
  Nanos pipeline_latency_;
  std::vector<Link*> port_links_;
  std::vector<std::unique_ptr<PortSink>> sinks_;
  std::unordered_map<MacAddr, int> l2_table_;
  std::shared_ptr<DataplaneProgram> program_;
  EventHandle generator_;
  Nanos gen_period_ = 0;
  TickPerturbation tick_perturb_;
  IngressTap tap_;
  EtherType notify_type_ = EtherType::kControl;
  NotificationTap notify_tap_;
  std::uint64_t processed_ = 0;
  std::uint64_t gen_count_ = 0;
  std::uint64_t unwired_emits_ = 0;
  obs::Counter* obs_frames_ = nullptr;
  obs::Counter* obs_gen_ = nullptr;
  std::uint64_t next_packet_id_ = 1;
};

}  // namespace slingshot
