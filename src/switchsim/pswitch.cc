#include "switchsim/pswitch.h"

#include <algorithm>
#include <stdexcept>

namespace slingshot {

void PipelineContext::emit(int egress_port, Packet&& packet) {
  sw_.emit_on_port(egress_port, std::move(packet));
}

void PipelineContext::emit_to_mac(const MacAddr& dst, Packet&& packet) {
  sw_.emit_via_l2(dst, std::move(packet));
}

ProgrammableSwitch::ProgrammableSwitch(Simulator& sim, int num_ports,
                                       Nanos pipeline_latency)
    : sim_(sim),
      num_ports_(num_ports),
      pipeline_latency_(pipeline_latency),
      port_links_(std::size_t(num_ports), nullptr) {
  sinks_.reserve(std::size_t(num_ports));
  for (int p = 0; p < num_ports; ++p) {
    auto sink = std::make_unique<PortSink>();
    sink->owner = this;
    sink->port = p;
    sinks_.push_back(std::move(sink));
  }
}

void ProgrammableSwitch::attach_link(int port, Link& link) {
  port_links_.at(std::size_t(port)) = &link;
  link.attach_b(sinks_.at(std::size_t(port)).get());
}

void ProgrammableSwitch::add_l2_route(const MacAddr& mac, int port) {
  l2_table_[mac] = port;
}

void ProgrammableSwitch::start_packet_generator(Nanos period) {
  stop_packet_generator();
  gen_period_ = period;
  if (tick_perturb_) {
    // Each interval is re-sampled through the clock-error model, so the
    // tick train carries the switch oscillator's frequency error.
    schedule_perturbed_tick();
    return;
  }
  generator_ = sim_.every(sim_.now() + period, period,
                          [this] { generator_tick(); });
}

void ProgrammableSwitch::schedule_perturbed_tick() {
  const Nanos interval = std::max<Nanos>(1, tick_perturb_(gen_period_));
  generator_ = sim_.at(sim_.now() + interval, [this] {
    generator_tick();
    schedule_perturbed_tick();
  });
}

void ProgrammableSwitch::generator_tick() {
  if (program_ == nullptr) {
    return;
  }
  ++gen_count_;
  if (obs_gen_ != nullptr) {
    obs_gen_->inc();
  }
  Packet tick;
  tick.eth.ethertype = EtherType::kControl;
  tick.created_at = sim_.now();
  tick.id = next_packet_id_++;
  PipelineContext ctx{*this, sim_.now()};
  program_->on_generator_packet(tick, ctx);
}

void ProgrammableSwitch::stop_packet_generator() {
  if (generator_.valid()) {
    generator_.cancel();
  }
}

void ProgrammableSwitch::emit_on_port(int port, Packet&& packet) {
  // Every emission funnels through here (emit_via_l2 included), so the
  // notification tap sees each matching frame exactly once.
  if (notify_tap_ && packet.eth.ethertype == notify_type_) {
    notify_tap_(packet, sim_.now());
  }
  // An out-of-range or unwired egress port is a counted drop (a
  // misconfigured program or L2 table must be observable, not UB).
  if (port < 0 || port >= num_ports_) {
    ++unwired_emits_;
    return;
  }
  Link* link = port_links_[std::size_t(port)];
  if (link == nullptr) {
    ++unwired_emits_;
    return;
  }
  link->send_from_b(std::move(packet));
}

void ProgrammableSwitch::emit_via_l2(const MacAddr& dst, Packet&& packet) {
  const auto it = l2_table_.find(dst);
  if (it == l2_table_.end()) {
    return;  // unknown destination: drop (no flooding in this fabric)
  }
  emit_on_port(it->second, std::move(packet));
}

void ProgrammableSwitch::ingress(Packet&& packet, int port) {
  ++processed_;
  if (obs_frames_ != nullptr) {
    obs_frames_->inc();
  }
  if (packet.id == 0) {
    packet.id = next_packet_id_++;
  }
  if (tap_) {
    tap_(packet, port, sim_.now());
  }
  // Model the ASIC pipeline traversal latency, then run the program and
  // forward.
  sim_.after(pipeline_latency_, [this, port, p = std::move(packet)]() mutable {
    PipelineContext ctx{*this, sim_.now()};
    PipelineVerdict verdict = PipelineVerdict::kDefaultForward;
    if (program_ != nullptr) {
      verdict = program_->process(p, port, ctx);
    }
    if (verdict == PipelineVerdict::kDefaultForward) {
      emit_via_l2(p.eth.dst, std::move(p));
    }
  });
}

}  // namespace slingshot
