#include "fronthaul/oran.h"

#include "common/bits.h"
#include "common/pool.h"
#include "fronthaul/bfp.h"

namespace slingshot {
namespace {

// eCPRI common header: version/reserved byte, message type, payload size.
constexpr std::uint8_t kEcpriVersion = 0x10;  // version 1, no concat
constexpr std::uint8_t kEcpriMsgIqData = 0x00;
constexpr std::uint8_t kEcpriMsgRtCtrl = 0x02;
constexpr std::size_t kEcpriHeaderSize = 4;

void write_header(ByteWriter& w, const FronthaulHeader& h) {
  w.u8(std::uint8_t(h.direction));
  w.u8(std::uint8_t(h.plane));
  w.u16(h.slot.frame);
  w.u8(h.slot.subframe);
  w.u8(h.slot.slot);
  w.u8(h.symbol);
  w.u8(h.ru.value());
}

FronthaulHeader read_header(ByteReader& r) {
  FronthaulHeader h;
  h.direction = FhDirection(r.u8());
  h.plane = FhPlane(r.u8());
  h.slot.frame = r.u16();
  h.slot.subframe = r.u8();
  h.slot.slot = r.u8();
  h.symbol = r.u8();
  h.ru = RuId{r.u8()};
  return h;
}

void write_cplane(ByteWriter& w, const CPlaneMsg& msg) {
  w.u16(std::uint16_t(msg.dl_assignments.size()));
  for (const auto& a : msg.dl_assignments) {
    w.u16(a.ue.value());
    w.u8(a.mcs);
    w.u32(a.tb_bytes);
    w.u8(a.harq.value());
    w.u8(a.new_data ? 1 : 0);
  }
  w.u16(std::uint16_t(msg.ul_grants.size()));
  for (const auto& g : msg.ul_grants) {
    w.u16(g.ue.value());
    w.u64(std::uint64_t(g.target_slot));
    w.u8(g.mcs);
    w.u32(g.tb_bytes);
    w.u8(g.harq.value());
    w.u8(g.new_data ? 1 : 0);
  }
  w.u16(std::uint16_t(msg.uci.size()));
  for (const auto& u : msg.uci) {
    w.u16(u.ue.value());
    w.u8(u.harq.value());
    w.u8(u.ack ? 1 : 0);
  }
}

// Fixed wire size of each repeated element, used to reject a claimed
// element count the buffer cannot possibly back. Without this bound a
// noise packet whose count field reads 65535 costs O(count) section
// constructions (ByteReader::next() saturates instead of throwing), so
// parsing attacker-controlled bytes would be O(claimed) not O(len).
constexpr std::size_t kDlAssignmentWireBytes = 9;   // u16+u8+u32+u8+u8
constexpr std::size_t kUlGrantWireBytes = 17;       // u16+u64+u8+u32+u8+u8
constexpr std::size_t kUciWireBytes = 4;            // u16+u8+u8
constexpr std::size_t kUPlaneSectionWireBytes = 22;  // fixed fields only

void require_backed(const ByteReader& r, std::size_t count,
                    std::size_t min_elem_bytes) {
  if (count * min_elem_bytes > r.remaining()) {
    throw std::out_of_range{"parse_fronthaul: element count exceeds buffer"};
  }
}

CPlaneMsg read_cplane(ByteReader& r) {
  CPlaneMsg msg;
  const auto n_dl = r.u16();
  require_backed(r, n_dl, kDlAssignmentWireBytes);
  msg.dl_assignments.reserve(n_dl);
  for (std::uint16_t i = 0; i < n_dl; ++i) {
    DlAssignment a;
    a.ue = UeId{r.u16()};
    a.mcs = r.u8();
    a.tb_bytes = r.u32();
    a.harq = HarqId{r.u8()};
    a.new_data = r.u8() != 0;
    msg.dl_assignments.push_back(a);
  }
  const auto n_ul = r.u16();
  require_backed(r, n_ul, kUlGrantWireBytes);
  msg.ul_grants.reserve(n_ul);
  for (std::uint16_t i = 0; i < n_ul; ++i) {
    UlGrant g;
    g.ue = UeId{r.u16()};
    g.target_slot = std::int64_t(r.u64());
    g.mcs = r.u8();
    g.tb_bytes = r.u32();
    g.harq = HarqId{r.u8()};
    g.new_data = r.u8() != 0;
    msg.ul_grants.push_back(g);
  }
  const auto n_uci = r.u16();
  require_backed(r, n_uci, kUciWireBytes);
  msg.uci.reserve(n_uci);
  for (std::uint16_t i = 0; i < n_uci; ++i) {
    UciFeedback u;
    u.ue = UeId{r.u16()};
    u.harq = HarqId{r.u8()};
    u.ack = r.u8() != 0;
    msg.uci.push_back(u);
  }
  return msg;
}

void write_uplane(ByteWriter& w, const UPlaneMsg& msg) {
  w.u16(std::uint16_t(msg.sections.size()));
  for (const auto& s : msg.sections) {
    w.u16(s.ue.value());
    w.u8(s.harq.value());
    w.u8(s.new_data ? 1 : 0);
    w.u8(s.mcs);
    w.u32(s.tb_bytes);
    w.u32(s.codeword_bits);
    w.u8(s.bfp_mantissa_bits);
    w.u32(std::uint32_t(s.iq.size()));
    if (s.bfp_mantissa_bits > 0) {
      // Pooled scratch: BFP compression of every UL/DL section would
      // otherwise allocate a fresh byte vector per section. Acquired
      // per call from the thread's BufferPools (islands serialize
      // concurrently under the sharded runtime, and a shared scratch
      // lets one island's compressed IQ bytes land in another island's
      // frame) and released back, so the bytes stay visible to the
      // retained-memory gauges and are freed by BufferPools::drain()
      // when a long-lived transport thread exits — a bare
      // function-local thread_local would park them forever.
      auto scratch = BufferPools::instance().bytes.acquire();
      bfp_compress_into(s.iq, s.bfp_mantissa_bits, scratch);
      w.bytes(scratch);
      BufferPools::instance().bytes.release(std::move(scratch));
    } else {
      for (const auto& sample : s.iq) {
        w.f32(sample.real());
        w.f32(sample.imag());
      }
    }
    w.u32(std::uint32_t(s.shadow_payload.size()));
    w.bytes(s.shadow_payload);
  }
}

UPlaneMsg read_uplane(ByteReader& r) {
  UPlaneMsg msg;
  const auto n = r.u16();
  require_backed(r, n, kUPlaneSectionWireBytes);
  msg.sections.reserve(n);
  for (std::uint16_t i = 0; i < n; ++i) {
    UPlaneSection s;
    s.ue = UeId{r.u16()};
    s.harq = HarqId{r.u8()};
    s.new_data = r.u8() != 0;
    s.mcs = r.u8();
    s.tb_bytes = r.u32();
    s.codeword_bits = r.u32();
    s.bfp_mantissa_bits = r.u8();
    const auto n_iq = r.u32();
    s.iq = BufferPools::instance().iq.acquire();
    if (s.bfp_mantissa_bits > 0) {
      // Width sanity before the size formula sees wire-controlled input;
      // the non-throwing decoder re-validates and bounds-checks, so a
      // malformed section costs one branch, not an exception unwind.
      if (s.bfp_mantissa_bits < 2 || s.bfp_mantissa_bits > 16) {
        throw std::out_of_range{"parse_fronthaul: bad BFP mantissa width"};
      }
      const auto compressed =
          r.view(bfp_compressed_size(n_iq, s.bfp_mantissa_bits));
      if (!bfp_try_decompress_into(compressed, n_iq, s.bfp_mantissa_bits,
                                   s.iq)) {
        throw std::out_of_range{"parse_fronthaul: truncated BFP section"};
      }
    } else {
      require_backed(r, n_iq, 8);  // two f32 per sample
      s.iq.reserve(n_iq);
      for (std::uint32_t k = 0; k < n_iq; ++k) {
        const float re = r.f32();
        const float im = r.f32();
        s.iq.emplace_back(re, im);
      }
    }
    const auto n_shadow = r.u32();
    s.shadow_payload = BufferPools::instance().bytes.acquire();
    r.bytes_into(n_shadow, s.shadow_payload);
    msg.sections.push_back(std::move(s));
  }
  return msg;
}

}  // namespace

void serialize_fronthaul_into(const FronthaulPacket& packet,
                              std::vector<std::uint8_t>& out) {
  out.clear();
  ByteWriter w{out};
  w.u8(kEcpriVersion);
  w.u8(packet.header.plane == FhPlane::kUser ? kEcpriMsgIqData
                                             : kEcpriMsgRtCtrl);
  w.u16(0);  // payload size, patched below
  write_header(w, packet.header);
  if (packet.header.plane == FhPlane::kControl) {
    write_cplane(w, packet.cplane);
  } else {
    write_uplane(w, packet.uplane);
  }
  w.patch_u16(2, std::uint16_t(out.size() - kEcpriHeaderSize));
}

std::vector<std::uint8_t> serialize_fronthaul(const FronthaulPacket& packet) {
  std::vector<std::uint8_t> out;
  serialize_fronthaul_into(packet, out);
  return out;
}

FronthaulPacket parse_fronthaul(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  r.skip(kEcpriHeaderSize);
  FronthaulPacket packet;
  packet.header = read_header(r);
  if (packet.header.plane == FhPlane::kControl) {
    packet.cplane = read_cplane(r);
  } else {
    packet.uplane = read_uplane(r);
  }
  if (!r.ok()) {
    throw std::out_of_range{"parse_fronthaul: truncated packet"};
  }
  return packet;
}

std::optional<FronthaulHeader> peek_fronthaul_header(
    std::span<const std::uint8_t> bytes) {
  if (bytes.size() < kEcpriHeaderSize + FronthaulHeader::kWireSize) {
    return std::nullopt;
  }
  if ((bytes[0] & 0xF0) != kEcpriVersion) {
    return std::nullopt;
  }
  ByteReader r{bytes};
  r.skip(kEcpriHeaderSize);
  return read_header(r);
}

Packet make_fronthaul_frame(const MacAddr& src, const MacAddr& dst,
                            const FronthaulPacket& packet) {
  Packet frame;
  frame.eth.src = src;
  frame.eth.dst = dst;
  frame.eth.ethertype = EtherType::kEcpri;
  frame.payload = BufferPools::instance().bytes.acquire();
  serialize_fronthaul_into(packet, frame.payload);
  return frame;
}

}  // namespace slingshot
