// Block floating-point (BFP) IQ compression, as used on O-RAN 7.2x
// fronthaul links to cut the dominant cost of a vRAN deployment: raw IQ
// bandwidth. Samples are grouped into blocks of 12 complex values (one
// PRB's worth); each block stores one shared exponent and fixed-width
// signed mantissas for the 24 real components.
//
// Compression is lossy: the quantization noise floor sits roughly
// 6 dB per mantissa bit below the block's peak, so the mantissa width
// decides which modulation orders survive (see bench/abl_bfp).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace slingshot {

namespace simd {
struct Kernels;
}  // namespace simd

inline constexpr int kBfpBlockSamples = 12;  // one PRB of subcarriers

// Compress to a byte stream: per block, [s8 exponent][24 x m-bit
// mantissas, MSB-first packed]. mantissa_bits must be in [2, 16].
[[nodiscard]] std::vector<std::uint8_t> bfp_compress(
    std::span<const std::complex<float>> iq, int mantissa_bits);
// Allocation-free variant: clears and fills a caller-owned buffer.
void bfp_compress_into(std::span<const std::complex<float>> iq,
                       int mantissa_bits, std::vector<std::uint8_t>& out);

// Inverse of bfp_compress; `n_samples` is the original sample count.
[[nodiscard]] std::vector<std::complex<float>> bfp_decompress(
    std::span<const std::uint8_t> bytes, std::size_t n_samples,
    int mantissa_bits);
// Allocation-free variant: clears and fills a caller-owned buffer.
void bfp_decompress_into(std::span<const std::uint8_t> bytes,
                         std::size_t n_samples, int mantissa_bits,
                         std::vector<std::complex<float>>& iq);

// Total, non-throwing decode in the WireReader error style (fapi/wire.h):
// validates mantissa_bits and that `bytes` holds a full
// bfp_compressed_size(n_samples, mantissa_bits) stream up front, then
// decodes without any per-read checks. Returns false (leaving `iq`
// cleared) on a short or malformed input instead of raising an
// exception on the fronthaul hot path; never reads out of bounds.
// Trailing bytes beyond the compressed size are ignored, matching the
// historical bit-reader behavior.
[[nodiscard]] bool bfp_try_decompress_into(std::span<const std::uint8_t> bytes,
                                           std::size_t n_samples,
                                           int mantissa_bits,
                                           std::vector<std::complex<float>>& iq);

// Wire size of a compressed block stream (for bandwidth accounting).
[[nodiscard]] std::size_t bfp_compressed_size(std::size_t n_samples,
                                              int mantissa_bits);

// Kernel-pinned variants: identical algorithm and wire format, but the
// SIMD kernel table is chosen by the caller instead of runtime dispatch.
// Used by the bench_kernels parity gate and the per-ISA throughput rows
// (any table from simd::kernels_for() must produce bit-identical bytes
// and floats).
void bfp_compress_into(std::span<const std::complex<float>> iq,
                       int mantissa_bits, std::vector<std::uint8_t>& out,
                       const simd::Kernels& kernels);
[[nodiscard]] bool bfp_try_decompress_into(std::span<const std::uint8_t> bytes,
                                           std::size_t n_samples,
                                           int mantissa_bits,
                                           std::vector<std::complex<float>>& iq,
                                           const simd::Kernels& kernels);

}  // namespace slingshot
