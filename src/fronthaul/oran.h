// O-RAN split-7.2x style fronthaul packet formats (eCPRI framing).
//
// Fronthaul packets carry a (frame, subframe, slot) triple in their
// header — exactly the fields Slingshot's in-switch middlebox parses to
// align PHY migration to TTI boundaries (§5.1) — plus a direction, a
// plane (control vs user), and the logical RU port.
//
// Fidelity note (see DESIGN.md): rather than shipping the full 100 MHz
// carrier's IQ (tens of thousands of subcarriers per slot), each
// transport block travels as one *representative codeword* of really
// modulated IQ samples plus the TB's "shadow payload" bytes. Decoding
// the codeword (channel estimation, equalization, soft demapping, LDPC,
// CRC) decides the fate of the whole TB. This preserves every behaviour
// Slingshot depends on — per-TTI packet streams, header timing fields,
// decode failures under impairment, HARQ combining — at laptop scale.
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "net/packet.h"

namespace slingshot {

enum class FhDirection : std::uint8_t { kUplink = 0, kDownlink = 1 };
enum class FhPlane : std::uint8_t { kControl = 0, kUser = 1 };

// Fixed-size fronthaul header, at the very start of the eCPRI payload so
// a switch pipeline can parse it with static offsets.
struct FronthaulHeader {
  FhDirection direction = FhDirection::kDownlink;
  FhPlane plane = FhPlane::kControl;
  SlotPoint slot;
  std::uint8_t symbol = 0;
  RuId ru;

  static constexpr std::size_t kWireSize = 1 + 1 + 2 + 1 + 1 + 1 + 1;
};

// An uplink grant scheduled by the L2, broadcast to UEs via the RU as
// part of the DL control plane (PDCCH-like).
struct UlGrant {
  UeId ue;
  std::int64_t target_slot = 0;  // absolute slot index the UE transmits in
  std::uint8_t mcs = 0;
  std::uint32_t tb_bytes = 0;
  HarqId harq;
  bool new_data = true;
};

// A downlink assignment: tells the UE a TB addressed to it rides in this
// slot's user plane.
struct DlAssignment {
  UeId ue;
  std::uint8_t mcs = 0;
  std::uint32_t tb_bytes = 0;
  HarqId harq;
  bool new_data = true;
};

// HARQ ACK/NACK feedback from a UE, carried uplink via the RU.
struct UciFeedback {
  UeId ue;
  HarqId harq;
  bool ack = false;
};

// Control-plane body. Downlink: a healthy PHY emits C-plane packets in
// every slot (even when empty) — the packet stream the failure detector
// uses as a natural heartbeat (§5.2.1). Uplink: the RU forwards UE UCI
// (HARQ feedback) in a C-plane packet.
struct CPlaneMsg {
  std::vector<DlAssignment> dl_assignments;
  std::vector<UlGrant> ul_grants;
  std::vector<UciFeedback> uci;
};

// One transport block's worth of radio data: the representative
// codeword's IQ samples plus the TB's payload bytes.
struct UPlaneSection {
  UeId ue;
  HarqId harq;
  bool new_data = true;
  std::uint8_t mcs = 0;
  std::uint32_t tb_bytes = 0;
  std::uint32_t codeword_bits = 0;  // modulated bits in `iq`
  // IQ compression applied on the wire: 0 = uncompressed float32,
  // otherwise O-RAN-style block floating point with this mantissa
  // width. Compression is lossy; the parse side sees quantized samples.
  std::uint8_t bfp_mantissa_bits = 0;
  std::vector<std::complex<float>> iq;
  std::vector<std::uint8_t> shadow_payload;  // the TB's bytes
};

struct UPlaneMsg {
  std::vector<UPlaneSection> sections;
};

struct FronthaulPacket {
  FronthaulHeader header;
  // Exactly one of these is meaningful, selected by header.plane.
  CPlaneMsg cplane;
  UPlaneMsg uplane;
};

// Serialize into an Ethernet frame payload (eCPRI + fronthaul header +
// body) and parse back. Parsing throws std::out_of_range on truncation.
[[nodiscard]] std::vector<std::uint8_t> serialize_fronthaul(
    const FronthaulPacket& packet);
// Allocation-free variant: clears and fills a caller-owned (e.g.
// pooled) buffer.
void serialize_fronthaul_into(const FronthaulPacket& packet,
                              std::vector<std::uint8_t>& out);
[[nodiscard]] FronthaulPacket parse_fronthaul(
    std::span<const std::uint8_t> bytes);

// Parse only the fixed header — what the switch pipeline does per packet
// without touching the body. Returns nullopt if not a valid fronthaul
// packet.
[[nodiscard]] std::optional<FronthaulHeader> peek_fronthaul_header(
    std::span<const std::uint8_t> bytes);

// Convenience: build the Ethernet frame around a fronthaul packet.
[[nodiscard]] Packet make_fronthaul_frame(const MacAddr& src,
                                          const MacAddr& dst,
                                          const FronthaulPacket& packet);

}  // namespace slingshot
