#include "fronthaul/bfp.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>

#include "phy/simd.h"

// Fast-lane BFP codec: one runtime-dispatched SIMD pass per PRB block
// (exponent scan, quantize, pack / unpack, dequantize) with a 64-bit
// word-level bit packer for the non-byte-aligned mantissa widths — no
// per-bit loops anywhere. The wire format and every emitted value are
// bit-identical to the original scalar bit-reader codec: the kernels'
// exactness contract (phy/simd.h) guarantees identical floats at every
// ISA level, and the golden-trace tests pin the result end to end.
//
// std::complex<float> is array-compatible with float[2] ([complex.numbers]),
// so a block of 12 complex samples is processed as 24 contiguous real
// components without a gather.

namespace slingshot {
namespace {

void check_mantissa(int mantissa_bits) {
  if (mantissa_bits < 2 || mantissa_bits > 16) {
    throw std::invalid_argument{"bfp: mantissa_bits must be in [2, 16]"};
  }
}

// Per-block payload bytes (exponent byte excluded).
inline std::size_t block_payload_bytes(std::size_t n_samples, int m) {
  return (2 * n_samples * std::size_t(m) + 7) / 8;
}

}  // namespace

void bfp_compress_into(std::span<const std::complex<float>> iq,
                       int mantissa_bits, std::vector<std::uint8_t>& out,
                       const simd::Kernels& k) {
  check_mantissa(mantissa_bits);
  const int max_mantissa = (1 << (mantissa_bits - 1)) - 1;
  const auto* components = reinterpret_cast<const float*>(iq.data());

  out.clear();
  out.resize(bfp_compressed_size(iq.size(), mantissa_bits));
  std::uint8_t* p = out.data();

  std::int32_t mantissas[2 * kBfpBlockSamples];
  for (std::size_t base = 0; base < iq.size(); base += kBfpBlockSamples) {
    const std::size_t n =
        std::min<std::size_t>(kBfpBlockSamples, iq.size() - base);
    const std::size_t n2 = 2 * n;
    // Shared exponent: smallest e with max|component| / 2^e <= max_m.
    const float peak = k.peak_abs(components + 2 * base, n2);
    int exponent = -20;  // generous floor for near-silent blocks
    if (peak > 0.0F) {
      exponent = int(std::ceil(std::log2(double(peak) / max_mantissa)));
      exponent = std::clamp(exponent, -64, 63);
    }
    *p++ = std::uint8_t(std::int8_t(exponent));
    const double inv_scale = std::exp2(-double(exponent));
    k.bfp_quantize(components + 2 * base, n2, inv_scale, max_mantissa,
                   mantissas);
    p += k.bfp_pack(mantissas, n2, mantissa_bits, p);
  }
}

void bfp_compress_into(std::span<const std::complex<float>> iq,
                       int mantissa_bits, std::vector<std::uint8_t>& out) {
  bfp_compress_into(iq, mantissa_bits, out, simd::kernels());
}

std::vector<std::uint8_t> bfp_compress(
    std::span<const std::complex<float>> iq, int mantissa_bits) {
  std::vector<std::uint8_t> out;
  bfp_compress_into(iq, mantissa_bits, out);
  return out;
}

bool bfp_try_decompress_into(std::span<const std::uint8_t> bytes,
                             std::size_t n_samples, int mantissa_bits,
                             std::vector<std::complex<float>>& iq,
                             const simd::Kernels& k) {
  iq.clear();
  if (mantissa_bits < 2 || mantissa_bits > 16) {
    return false;
  }
  if (bytes.size() < bfp_compressed_size(n_samples, mantissa_bits)) {
    return false;
  }
  iq.resize(n_samples);
  auto* components = reinterpret_cast<float*>(iq.data());
  const std::uint8_t* p = bytes.data();

  std::int32_t mantissas[2 * kBfpBlockSamples];
  for (std::size_t base = 0; base < n_samples; base += kBfpBlockSamples) {
    const std::size_t n =
        std::min<std::size_t>(kBfpBlockSamples, n_samples - base);
    const std::size_t n2 = 2 * n;
    const auto exponent = std::int8_t(*p++);
    const auto scale = float(std::exp2(double(exponent)));
    k.bfp_unpack(p, n2, mantissa_bits, mantissas);
    p += block_payload_bytes(n, mantissa_bits);
    k.bfp_dequantize(mantissas, n2, scale, components + 2 * base);
  }
  return true;
}

bool bfp_try_decompress_into(std::span<const std::uint8_t> bytes,
                             std::size_t n_samples, int mantissa_bits,
                             std::vector<std::complex<float>>& iq) {
  return bfp_try_decompress_into(bytes, n_samples, mantissa_bits, iq,
                                 simd::kernels());
}

void bfp_decompress_into(std::span<const std::uint8_t> bytes,
                         std::size_t n_samples, int mantissa_bits,
                         std::vector<std::complex<float>>& iq) {
  check_mantissa(mantissa_bits);
  if (!bfp_try_decompress_into(bytes, n_samples, mantissa_bits, iq)) {
    throw std::out_of_range{"bfp: truncated stream"};
  }
}

std::vector<std::complex<float>> bfp_decompress(
    std::span<const std::uint8_t> bytes, std::size_t n_samples,
    int mantissa_bits) {
  std::vector<std::complex<float>> iq;
  bfp_decompress_into(bytes, n_samples, mantissa_bits, iq);
  return iq;
}

std::size_t bfp_compressed_size(std::size_t n_samples, int mantissa_bits) {
  const std::size_t full_blocks = n_samples / kBfpBlockSamples;
  const std::size_t rem = n_samples % kBfpBlockSamples;
  std::size_t total =
      full_blocks * (1 + block_payload_bytes(kBfpBlockSamples, mantissa_bits));
  if (rem > 0) {
    total += 1 + block_payload_bytes(rem, mantissa_bits);
  }
  return total;
}

}  // namespace slingshot
