#include "fronthaul/bfp.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace slingshot {
namespace {

// MSB-first bit packing.
class BitWriter {
 public:
  explicit BitWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void put(std::uint32_t value, int bits) {
    for (int b = bits - 1; b >= 0; --b) {
      if (bit_pos_ == 0) {
        out_.push_back(0);
      }
      out_.back() |= std::uint8_t(((value >> b) & 1U) << (7 - bit_pos_));
      bit_pos_ = (bit_pos_ + 1) % 8;
    }
  }
  void align() { bit_pos_ = 0; }

 private:
  std::vector<std::uint8_t>& out_;
  int bit_pos_ = 0;
};

class BitReader {
 public:
  explicit BitReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint32_t get(int bits) {
    std::uint32_t value = 0;
    for (int b = 0; b < bits; ++b) {
      const std::size_t byte = pos_ / 8;
      if (byte >= data_.size()) {
        throw std::out_of_range{"bfp: truncated stream"};
      }
      value = (value << 1) | ((data_[byte] >> (7 - pos_ % 8)) & 1U);
      ++pos_;
    }
    return value;
  }
  void align() { pos_ = (pos_ + 7) / 8 * 8; }

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

void check_mantissa(int mantissa_bits) {
  if (mantissa_bits < 2 || mantissa_bits > 16) {
    throw std::invalid_argument{"bfp: mantissa_bits must be in [2, 16]"};
  }
}

}  // namespace

void bfp_compress_into(std::span<const std::complex<float>> iq,
                       int mantissa_bits, std::vector<std::uint8_t>& out) {
  check_mantissa(mantissa_bits);
  out.clear();
  out.reserve(bfp_compressed_size(iq.size(), mantissa_bits));
  BitWriter writer{out};
  const int max_mantissa = (1 << (mantissa_bits - 1)) - 1;

  for (std::size_t base = 0; base < iq.size(); base += kBfpBlockSamples) {
    const std::size_t n =
        std::min<std::size_t>(kBfpBlockSamples, iq.size() - base);
    // Shared exponent: smallest e with max|component| / 2^e <= max_m.
    float peak = 0.0F;
    for (std::size_t s = 0; s < n; ++s) {
      peak = std::max({peak, std::fabs(iq[base + s].real()),
                       std::fabs(iq[base + s].imag())});
    }
    int exponent = -20;  // generous floor for near-silent blocks
    if (peak > 0.0F) {
      exponent = int(std::ceil(std::log2(double(peak) / max_mantissa)));
      exponent = std::clamp(exponent, -64, 63);
    }
    const double scale = std::exp2(double(exponent));
    writer.align();
    writer.put(std::uint32_t(std::uint8_t(std::int8_t(exponent))), 8);
    for (std::size_t s = 0; s < n; ++s) {
      for (const float component : {iq[base + s].real(), iq[base + s].imag()}) {
        const long q = std::lround(double(component) / scale);
        const long clamped =
            std::clamp<long>(q, -max_mantissa, max_mantissa);
        // Two's complement in mantissa_bits.
        const auto mask = std::uint32_t((1U << mantissa_bits) - 1U);
        writer.put(std::uint32_t(clamped) & mask, mantissa_bits);
      }
    }
  }
}

std::vector<std::uint8_t> bfp_compress(
    std::span<const std::complex<float>> iq, int mantissa_bits) {
  std::vector<std::uint8_t> out;
  bfp_compress_into(iq, mantissa_bits, out);
  return out;
}

void bfp_decompress_into(std::span<const std::uint8_t> bytes,
                         std::size_t n_samples, int mantissa_bits,
                         std::vector<std::complex<float>>& iq) {
  check_mantissa(mantissa_bits);
  iq.clear();
  iq.reserve(n_samples);
  BitReader reader{bytes};
  const std::uint32_t sign_bit = 1U << (mantissa_bits - 1);
  const std::uint32_t sign_extend = ~((1U << mantissa_bits) - 1U);

  for (std::size_t base = 0; base < n_samples; base += kBfpBlockSamples) {
    const std::size_t n =
        std::min<std::size_t>(kBfpBlockSamples, n_samples - base);
    reader.align();
    const auto exponent = std::int8_t(reader.get(8));
    const double scale = std::exp2(double(exponent));
    for (std::size_t s = 0; s < n; ++s) {
      float components[2];
      for (auto& component : components) {
        auto raw = reader.get(mantissa_bits);
        if (raw & sign_bit) {
          raw |= sign_extend;
        }
        component = float(double(std::int32_t(raw)) * scale);
      }
      iq.emplace_back(components[0], components[1]);
    }
  }
}

std::vector<std::complex<float>> bfp_decompress(
    std::span<const std::uint8_t> bytes, std::size_t n_samples,
    int mantissa_bits) {
  std::vector<std::complex<float>> iq;
  bfp_decompress_into(bytes, n_samples, mantissa_bits, iq);
  return iq;
}

std::size_t bfp_compressed_size(std::size_t n_samples, int mantissa_bits) {
  std::size_t total = 0;
  for (std::size_t base = 0; base < n_samples; base += kBfpBlockSamples) {
    const std::size_t n =
        std::min<std::size_t>(kBfpBlockSamples, n_samples - base);
    total += 1 + (2 * n * std::size_t(mantissa_bits) + 7) / 8;
  }
  return total;
}

}  // namespace slingshot
