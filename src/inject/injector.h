// Binds a FaultPlan to a live Testbed.
//
// The injector installs NIC interceptors once at construction and keeps
// per-fault budgets; arming a plan schedules its events on the
// simulator, and each event either acts immediately (kill, revive,
// planned migration) or tops up a budget that the interceptors consume
// as matching packets flow (drop the next N fronthaul frames, duplicate
// the next notification, ...). Everything is driven off the simulator
// clock and the testbed's seeded RNG, so runs are fully reproducible.
#pragma once

#include <cstdint>
#include <vector>

#include "inject/fault_plan.h"
#include "testbed/testbed.h"

namespace slingshot {

class FaultInjector {
 public:
  explicit FaultInjector(Testbed& testbed);
  ~FaultInjector();

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  // Schedule every event in `plan` on the testbed's simulator. May be
  // called more than once; plans accumulate.
  void arm(const FaultPlan& plan);

  // Interceptor activity, for test assertions.
  [[nodiscard]] std::uint64_t fronthaul_dropped() const {
    return fronthaul_dropped_;
  }
  [[nodiscard]] std::uint64_t fapi_dropped() const { return fapi_dropped_; }
  [[nodiscard]] std::uint64_t fapi_corrupted() const { return fapi_corrupted_; }
  [[nodiscard]] std::uint64_t commands_dropped() const {
    return commands_dropped_;
  }
  [[nodiscard]] std::uint64_t notifications_duplicated() const {
    return notifications_duplicated_;
  }
  [[nodiscard]] std::uint64_t notifications_delayed() const {
    return notifications_delayed_;
  }
  [[nodiscard]] std::uint64_t indications_delayed() const {
    return indications_delayed_;
  }

 private:
  void apply(const FaultEvent& event);
  [[nodiscard]] Nic* site_nic(FaultSite site);
  [[nodiscard]] Link* site_link(FaultSite site);

  Testbed& tb_;
  std::vector<EventHandle> scheduled_;

  // Budgets consumed by the interceptors ("the next N ...").
  int drop_fronthaul_ru_ = 0;
  int drop_fronthaul_phy_a_ = 0;
  int drop_fronthaul_phy_b_ = 0;
  int drop_fapi_a_ = 0;
  int drop_fapi_b_ = 0;
  int corrupt_fapi_a_ = 0;
  int corrupt_fapi_b_ = 0;
  int drop_cmd_ = 0;
  int dup_notify_ = 0;
  Nanos dup_notify_delay_ = 0;
  int delay_notify_ = 0;
  Nanos delay_notify_by_ = 0;
  int delay_ind_ = 0;
  Nanos delay_ind_by_ = 0;
  MacAddr delay_ind_src_;

  // PHY tx silenced ("hung") until these instants.
  Nanos hang_a_until_ = 0;
  Nanos hang_b_until_ = 0;

  std::uint64_t fronthaul_dropped_ = 0;
  std::uint64_t fapi_dropped_ = 0;
  std::uint64_t fapi_corrupted_ = 0;
  std::uint64_t commands_dropped_ = 0;
  std::uint64_t notifications_duplicated_ = 0;
  std::uint64_t notifications_delayed_ = 0;
  std::uint64_t indications_delayed_ = 0;
};

}  // namespace slingshot
