#include "inject/injector.h"

#include <algorithm>
#include <utility>

#include "common/log.h"

namespace slingshot {

FaultInjector::FaultInjector(Testbed& testbed) : tb_(testbed) {
  // PHY uplinks: hang windows silence all tx; fronthaul budgets eat
  // eCPRI frames.
  tb_.phy_a_nic().set_tx_interceptor([this](Packet& p) {
    if (tb_.sim().now() < hang_a_until_) {
      return false;
    }
    if (drop_fronthaul_phy_a_ > 0 && p.eth.ethertype == EtherType::kEcpri) {
      --drop_fronthaul_phy_a_;
      ++fronthaul_dropped_;
      return false;
    }
    return true;
  });
  tb_.phy_b_nic().set_tx_interceptor([this](Packet& p) {
    if (tb_.sim().now() < hang_b_until_) {
      return false;
    }
    if (drop_fronthaul_phy_b_ > 0 && p.eth.ethertype == EtherType::kEcpri) {
      --drop_fronthaul_phy_b_;
      ++fronthaul_dropped_;
      return false;
    }
    return true;
  });
  tb_.ru_nic().set_tx_interceptor([this](Packet& p) {
    if (drop_fronthaul_ru_ > 0 && p.eth.ethertype == EtherType::kEcpri) {
      --drop_fronthaul_ru_;
      ++fronthaul_dropped_;
      return false;
    }
    return true;
  });

  // PHY-side Orions: FAPI datagram loss and corruption on ingress.
  auto fapi_rx = [this](Packet& p, int& drops, int& corrupts) {
    if (p.eth.ethertype != EtherType::kFapiTransport) {
      return true;
    }
    if (drops > 0) {
      --drops;
      ++fapi_dropped_;
      return false;
    }
    if (corrupts > 0) {
      --corrupts;
      ++fapi_corrupted_;
      // Truncate and flip bits so deserialization fails loudly rather
      // than producing a plausible message.
      if (p.payload.size() > 3) {
        p.payload.resize(3);
      }
      for (auto& b : p.payload) {
        b ^= 0xFF;
      }
    }
    return true;
  };
  tb_.orion_a_nic().set_rx_interceptor([this, fapi_rx](Packet& p) {
    return fapi_rx(p, drop_fapi_a_, corrupt_fapi_a_);
  });
  tb_.orion_b_nic().set_rx_interceptor([this, fapi_rx](Packet& p) {
    return fapi_rx(p, drop_fapi_b_, corrupt_fapi_b_);
  });

  // L2 Orion egress: lose migrate_on_slot commands.
  tb_.orion_l2_nic().set_tx_interceptor([this](Packet& p) {
    if (drop_cmd_ > 0 && p.eth.ethertype == EtherType::kSlingshotCmd) {
      --drop_cmd_;
      ++commands_dropped_;
      SLOG_WARN("inject", "dropping migrate command from l2 orion");
      return false;
    }
    return true;
  });

  // L2 Orion ingress: duplicate/delay failure notifications, delay FAPI
  // indications from a chosen PHY-side Orion.
  tb_.orion_l2_nic().set_rx_interceptor([this](Packet& p) {
    if (p.eth.ethertype == EtherType::kFailureNotify) {
      if (delay_notify_ > 0) {
        --delay_notify_;
        ++notifications_delayed_;
        Packet copy = p;
        scheduled_.push_back(
            tb_.sim().at(tb_.sim().now() + delay_notify_by_,
                         [this, copy]() mutable {
                           tb_.orion_l2_nic().inject_rx(std::move(copy));
                         }));
        return false;  // original swallowed; only the late copy arrives
      }
      if (dup_notify_ > 0) {
        --dup_notify_;
        ++notifications_duplicated_;
        Packet copy = p;
        scheduled_.push_back(
            tb_.sim().at(tb_.sim().now() + dup_notify_delay_,
                         [this, copy]() mutable {
                           tb_.orion_l2_nic().inject_rx(std::move(copy));
                         }));
        return true;  // original delivered now, duplicate later
      }
    }
    if (p.eth.ethertype == EtherType::kFapiTransport && delay_ind_ > 0 &&
        p.eth.src == delay_ind_src_) {
      --delay_ind_;
      ++indications_delayed_;
      Packet copy = p;
      scheduled_.push_back(tb_.sim().at(tb_.sim().now() + delay_ind_by_,
                                        [this, copy]() mutable {
                                          tb_.orion_l2_nic().inject_rx(
                                              std::move(copy));
                                        }));
      return false;
    }
    return true;
  });
}

FaultInjector::~FaultInjector() {
  for (auto& h : scheduled_) {
    h.cancel();
  }
  tb_.phy_a_nic().set_tx_interceptor({});
  tb_.phy_b_nic().set_tx_interceptor({});
  tb_.ru_nic().set_tx_interceptor({});
  tb_.orion_a_nic().set_rx_interceptor({});
  tb_.orion_b_nic().set_rx_interceptor({});
  tb_.orion_l2_nic().set_tx_interceptor({});
  tb_.orion_l2_nic().set_rx_interceptor({});
}

Nic* FaultInjector::site_nic(FaultSite site) {
  switch (site) {
    case FaultSite::kPhyA:
      return &tb_.phy_a_nic();
    case FaultSite::kPhyB:
      return &tb_.phy_b_nic();
    case FaultSite::kOrionA:
      return &tb_.orion_a_nic();
    case FaultSite::kOrionB:
      return &tb_.orion_b_nic();
    case FaultSite::kOrionL2:
      return &tb_.orion_l2_nic();
    case FaultSite::kRu:
      return &tb_.ru_nic();
    case FaultSite::kNone:
      break;
  }
  return nullptr;
}

Link* FaultInjector::site_link(FaultSite site) {
  switch (site) {
    case FaultSite::kPhyA:
      return &tb_.phy_link(0);
    case FaultSite::kPhyB:
      return &tb_.phy_link(1);
    case FaultSite::kRu:
      return &tb_.ru_link(0);
    default:
      return nullptr;
  }
}

void FaultInjector::arm(const FaultPlan& plan) {
  for (const auto& event : plan.events) {
    scheduled_.push_back(tb_.sim().at(event.at, [this, event] {
      SLOG_INFO("inject", "firing %s", describe(event).c_str());
      apply(event);
    }));
  }
}

void FaultInjector::apply(const FaultEvent& event) {
  switch (event.kind) {
    case FaultKind::kKillPhy:
      if (event.phy != PhyId{}) {
        tb_.kill_phy(event.phy);
      } else if (event.site == FaultSite::kPhyA) {
        tb_.phy_a().kill();
      } else if (event.site == FaultSite::kPhyB) {
        tb_.phy_b().kill();
      }
      break;
    case FaultKind::kHangPhy: {
      const Nanos until = tb_.sim().now() + event.duration;
      if (event.site == FaultSite::kPhyA) {
        hang_a_until_ = std::max(hang_a_until_, until);
      } else if (event.site == FaultSite::kPhyB) {
        hang_b_until_ = std::max(hang_b_until_, until);
      }
      break;
    }
    case FaultKind::kReviveStandby:
      if (event.phy != PhyId{}) {
        tb_.revive_phy_as_standby(event.phy);
      } else {
        tb_.revive_dead_phy_as_standby();
      }
      break;
    case FaultKind::kPlannedMigration:
      tb_.planned_migration(event.count);
      break;
    case FaultKind::kDropFronthaul:
      if (event.site == FaultSite::kRu) {
        drop_fronthaul_ru_ += event.count;
      } else if (event.site == FaultSite::kPhyA) {
        drop_fronthaul_phy_a_ += event.count;
      } else if (event.site == FaultSite::kPhyB) {
        drop_fronthaul_phy_b_ += event.count;
      }
      break;
    case FaultKind::kDropFapi:
      if (event.site == FaultSite::kOrionA) {
        drop_fapi_a_ += event.count;
      } else {
        drop_fapi_b_ += event.count;
      }
      break;
    case FaultKind::kCorruptFapi:
      if (event.site == FaultSite::kOrionA) {
        corrupt_fapi_a_ += event.count;
      } else {
        corrupt_fapi_b_ += event.count;
      }
      break;
    case FaultKind::kDropMigrateCmd:
      drop_cmd_ += event.count;
      break;
    case FaultKind::kDupFailureNotify:
      dup_notify_ += event.count;
      dup_notify_delay_ = event.duration;
      break;
    case FaultKind::kDelayFailureNotify:
      delay_notify_ += event.count;
      delay_notify_by_ = event.duration;
      break;
    case FaultKind::kDelayFapiInd: {
      delay_ind_ += event.count;
      delay_ind_by_ = event.duration;
      Nic* nic = site_nic(event.site);
      delay_ind_src_ = nic != nullptr ? nic->mac()
                                      : tb_.orion_a_nic().mac();
      break;
    }
    case FaultKind::kDownLink: {
      Link* link = site_link(event.site);
      if (link == nullptr) {
        break;
      }
      link->set_down(true);
      if (event.duration > 0) {
        scheduled_.push_back(
            tb_.sim().at(tb_.sim().now() + event.duration,
                         [link] { link->set_down(false); }));
      }
      break;
    }
  }
}

}  // namespace slingshot
