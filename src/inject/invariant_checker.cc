#include "inject/invariant_checker.h"

#include <algorithm>

#include "common/log.h"

namespace slingshot {

InvariantChecker::InvariantChecker(Testbed& testbed,
                                   InvariantCheckerConfig config)
    : tb_(testbed), config_(config), slots_(testbed.config().slots) {
  tb_.mbox().set_tap(this);
  if (tb_.config().mode == TestbedMode::kSlingshot) {
    tb_.orion().set_tap(this);
  }
  if (tb_.pipe_to_phy_a() != nullptr) {
    tb_.pipe_to_phy_a()->set_tap([this](const FapiMessage& m) {
      on_fapi_to_phy(Testbed::kPhyA, m);
    });
  }
  if (tb_.pipe_to_phy_b() != nullptr) {
    tb_.pipe_to_phy_b()->set_tap([this](const FapiMessage& m) {
      on_fapi_to_phy(Testbed::kPhyB, m);
    });
  }
  const Nanos first = slots_.slot_start(slots_.next_slot_after(tb_.sim().now()));
  tick_ = tb_.sim().every(first, slots_.slot_duration, [this] { on_slot_tick(); });
}

InvariantChecker::~InvariantChecker() {
  tick_.cancel();
  tb_.mbox().set_tap(nullptr);
  if (tb_.config().mode == TestbedMode::kSlingshot) {
    tb_.orion().set_tap(nullptr);
  }
  if (tb_.pipe_to_phy_a() != nullptr) {
    tb_.pipe_to_phy_a()->set_tap({});
  }
  if (tb_.pipe_to_phy_b() != nullptr) {
    tb_.pipe_to_phy_b()->set_tap({});
  }
}

std::int64_t InvariantChecker::now_slot() const {
  return slots_.slot_at(tb_.sim().now());
}

std::int64_t InvariantChecker::wrap_window() const {
  return std::int64_t(SlotPoint::kFrames) * slots_.slots_per_frame;
}

void InvariantChecker::violation(const std::string& what) {
  ++violation_count_;
  if (violations_.size() < config_.max_recorded) {
    violations_.push_back({tb_.sim().now(), what});
    SLOG_WARN("inject", "INVARIANT VIOLATION: %s", what.c_str());
  }
}

std::string InvariantChecker::report() const {
  std::string out = "invariant violations: " +
                    std::to_string(violation_count_) + "\n";
  for (const auto& v : violations_) {
    out += "  [" + std::to_string(v.at) + "ns] " + v.what + "\n";
  }
  return out;
}

std::size_t InvariantChecker::count_matching(const std::string& needle) const {
  std::size_t n = 0;
  for (const auto& v : violations_) {
    if (v.what.find(needle) != std::string::npos) {
      ++n;
    }
  }
  return n;
}

// ---------------------------------------------------------------------
// FAPI pipe taps (I1, I6)
// ---------------------------------------------------------------------

void InvariantChecker::on_fapi_to_phy(PhyId phy, const FapiMessage& msg) {
  const auto type = msg.type();
  if (type != FapiMsgType::kDlTtiRequest && type != FapiMsgType::kUlTtiRequest) {
    return;
  }
  const std::pair<std::uint8_t, std::uint8_t> key{phy.value(), msg.ru.value()};
  auto [it, inserted] = first_seen_.try_emplace(key, msg.slot);
  if (!inserted) {
    it->second = std::min(it->second, msg.slot);
  }
  auto& counts = tti_counts_[msg.slot][key];
  if (type == FapiMsgType::kDlTtiRequest) {
    ++counts.dl;
  } else {
    ++counts.ul;
  }

  // I6: a failed PHY must receive nothing after the failover swap until
  // it is re-adopted (§6.3); a bounded amount of in-flight FAPI is
  // tolerated around the swap itself.
  auto& t = track(phy);
  if (t.failed_episode_open && t.episode_swap_slot >= 0) {
    const auto slot = now_slot();
    if (slot > t.episode_swap_slot + config_.dead_fapi_grace_slots &&
        slot != t.last_i6_report_slot) {
      t.last_i6_report_slot = slot;
      violation("I6: FAPI to failed phy " + std::to_string(phy.value()) +
                " at slot " + std::to_string(slot) + ", " +
                std::to_string(slot - t.episode_swap_slot) +
                " slots after failover swap (awaiting adopt_standby)");
    }
  }
}

// ---------------------------------------------------------------------
// Per-slot bookkeeping (I1 finalization, liveness, I3 timeouts)
// ---------------------------------------------------------------------

void InvariantChecker::on_slot_tick() {
  const std::int64_t slot = now_slot();

  auto sample = [&](PhyId id, bool alive) {
    auto& t = track(id);
    if (!t.ever_seen) {
      t.ever_seen = true;
      t.alive = alive;
      t.alive_since_slot = slot;
      t.dead_since_slot = alive ? -1 : slot;
      return;
    }
    if (alive != t.alive) {
      t.alive = alive;
      if (alive) {
        t.alive_since_slot = slot;
      } else {
        t.dead_since_slot = slot;
      }
    }
  };
  sample(Testbed::kPhyA, tb_.phy_a().alive());
  sample(Testbed::kPhyB, tb_.phy_b().alive());

  // Finalize I1 for slots old enough that all their requests (including
  // compensation nulls) must have been delivered.
  const std::int64_t target = slot - config_.fapi_grace_slots;
  if (finalized_through_ < 0) {
    finalized_through_ = target - 1;  // don't back-check pre-attach slots
  }
  while (finalized_through_ < target) {
    finalize_slot(++finalized_through_);
  }

  // I3 timeouts: a migration whose command never reached the middlebox,
  // or whose boundary passed without execution, is a routing divergence
  // (FAPI swapped but fronthaul did not, or vice versa).
  for (auto& m : migrations_) {
    if (!m.command_seen && !m.missing_cmd_reported &&
        slot - m.issued_slot > config_.cmd_grace_slots) {
      m.missing_cmd_reported = true;
      violation("I3: migrate_on_slot for ru " + std::to_string(m.ru.value()) +
                " (boundary " + std::to_string(m.boundary_slot) +
                ") never reached the middlebox");
    }
    if (m.command_seen && !m.executed && !m.missing_exec_reported &&
        slot > m.boundary_slot + config_.cmd_grace_slots) {
      m.missing_exec_reported = true;
      violation("I3: migration for ru " + std::to_string(m.ru.value()) +
                " never executed at the middlebox (boundary " +
                std::to_string(m.boundary_slot) + ")");
    }
  }
  std::erase_if(migrations_, [&](const PendingMigration& m) {
    return m.executed && slot > m.boundary_slot + 64;
  });

  // Bound I2 memory.
  std::erase_if(dl_sources_, [&](const auto& kv) {
    return kv.first.second < slot - 64;
  });
}

void InvariantChecker::finalize_slot(std::int64_t slot) {
  ++slots_checked_;
  const auto it = tti_counts_.find(slot);
  for (const auto& [key, first] : first_seen_) {
    if (slot < first + 2) {
      continue;  // stream still starting up
    }
    const auto& t = phys_.count(key.first) != 0U ? phys_.at(key.first)
                                                 : PhyTrack{};
    // I1 applies only to a PHY that is alive, settled, and not a failed
    // PHY awaiting replacement (which by design receives nothing).
    if (!t.ever_seen || !t.alive || t.failed_episode_open ||
        slot < t.alive_since_slot + config_.startup_ramp_slots) {
      continue;
    }
    TtiCounts counts;
    if (it != tti_counts_.end()) {
      const auto cit = it->second.find(key);
      if (cit != it->second.end()) {
        counts = cit->second;
      }
    }
    if (counts.dl < 1 || counts.ul < 1) {
      violation("I1: phy " + std::to_string(key.first) + " ru " +
                std::to_string(key.second) + " slot " + std::to_string(slot) +
                " missing TTI requests (dl=" + std::to_string(counts.dl) +
                " ul=" + std::to_string(counts.ul) + ")");
    } else if (counts.dl > 3 || counts.ul > 3) {
      violation("I1: phy " + std::to_string(key.first) + " ru " +
                std::to_string(key.second) + " slot " + std::to_string(slot) +
                " flooded with TTI requests (dl=" + std::to_string(counts.dl) +
                " ul=" + std::to_string(counts.ul) + ")");
    }
  }
  if (it != tti_counts_.end()) {
    tti_counts_.erase(tti_counts_.begin(), std::next(it));
  } else {
    tti_counts_.erase(tti_counts_.begin(), tti_counts_.lower_bound(slot));
  }
}

// ---------------------------------------------------------------------
// MboxTap (I2, I3, I5)
// ---------------------------------------------------------------------

void InvariantChecker::on_command(const MigrateOnSlotCmd& cmd,
                                  std::int64_t boundary_wrapped) {
  if (tb_.config().mode != TestbedMode::kSlingshot) {
    return;
  }
  PendingMigration* match = nullptr;
  for (auto& m : migrations_) {
    if (m.ru == cmd.ru && m.dest == cmd.dest_phy && !m.command_seen) {
      match = &m;
    }
  }
  if (match == nullptr) {
    violation("I3: middlebox received a migrate command for ru " +
              std::to_string(cmd.ru.value()) +
              " with no matching Orion migration");
    return;
  }
  match->command_seen = true;
  // TTI-boundary alignment (§5.1): the middlebox must interpret the
  // boundary as the same TTI the Orion meant. A mismatch means the two
  // sides disagree on the slot numbering (e.g. numerology mismatch).
  const std::int64_t expected =
      SlotPoint::from_index(match->boundary_slot, slots_).wrapped_index(slots_);
  if (boundary_wrapped != expected) {
    violation("I3: middlebox boundary interpretation " +
              std::to_string(boundary_wrapped) + " != Orion's boundary " +
              std::to_string(expected) + " for ru " +
              std::to_string(cmd.ru.value()) + " (slot-config mismatch)");
  }
}

void InvariantChecker::on_unwatch_command(PhyId /*phy*/) {}

void InvariantChecker::on_migration_executed(RuId ru, PhyId dest,
                                             std::int64_t pkt_wrapped,
                                             std::int64_t boundary_wrapped) {
  if (tb_.config().mode != TestbedMode::kSlingshot) {
    return;
  }
  PendingMigration* match = nullptr;
  for (auto& m : migrations_) {
    if (m.ru == ru && m.dest == dest && m.command_seen && !m.executed) {
      match = &m;
    }
  }
  if (match == nullptr) {
    violation("I3: migration executed at the middlebox for ru " +
              std::to_string(ru.value()) + " with no pending command");
    return;
  }
  match->executed = true;
  const std::int64_t window = wrap_window();
  const std::int64_t skew =
      ((pkt_wrapped - boundary_wrapped) % window + window) % window;
  if (skew > config_.boundary_skew_slots) {
    violation("I3: migration for ru " + std::to_string(ru.value()) +
              " executed " + std::to_string(skew) +
              " slots past its boundary TTI");
  }
}

void InvariantChecker::on_dl_packet(PhyId src, RuId ru,
                                    std::int64_t pkt_wrapped, bool forwarded) {
  if (!forwarded) {
    return;
  }
  // Unwrap the packet's slot near the current slot so the I2 key is
  // unique across wrap windows.
  const std::int64_t window = wrap_window();
  const std::int64_t slot = now_slot();
  std::int64_t unwrapped = slot - ((slot - pkt_wrapped) % window + window) % window;
  if (slot - unwrapped > window / 2) {
    unwrapped += window;
  }
  const std::pair<std::uint8_t, std::int64_t> key{ru.value(), unwrapped};
  const auto [it, inserted] = dl_sources_.try_emplace(key, src.value());
  if (!inserted && it->second != src.value()) {
    violation("I2: RU " + std::to_string(ru.value()) +
              " heard downlink from phy " + std::to_string(it->second) +
              " and phy " + std::to_string(src.value()) + " in slot " +
              std::to_string(unwrapped));
  }
}

void InvariantChecker::on_failure_notify(PhyId phy) {
  auto& t = track(phy);
  if (t.failed_episode_open) {
    violation("I5: duplicate failure notification for phy " +
              std::to_string(phy.value()) + " in an open failure episode");
  }
  if (watch_known_.count(phy.value()) != 0U &&
      watched_.count(phy.value()) == 0U) {
    violation("I5: failure notification for unwatched phy " +
              std::to_string(phy.value()));
  }
}

void InvariantChecker::on_watch_changed(PhyId phy, bool watched) {
  watch_known_.insert(phy.value());
  if (watched) {
    watched_.insert(phy.value());
  } else {
    watched_.erase(phy.value());
  }
}

// ---------------------------------------------------------------------
// OrionL2Tap (I3, I4, I5)
// ---------------------------------------------------------------------

void InvariantChecker::on_indication(PhyId /*from*/, const FapiMessage& msg,
                                     bool forwarded, bool drained,
                                     std::int64_t drain_boundary) {
  if (!forwarded || !drained) {
    return;
  }
  // Fig 7: drained responses are only valid for pre-boundary slots...
  if (msg.slot >= drain_boundary) {
    violation("I4: drained response for slot " + std::to_string(msg.slot) +
              " at/after boundary " + std::to_string(drain_boundary));
  }
  // ...and only within a bounded window after the swap; the pipeline is
  // a couple of slots deep, so anything later is stale routing state.
  const auto it = last_swap_slot_.find(msg.ru.value());
  const std::int64_t slot = now_slot();
  if (it != last_swap_slot_.end() &&
      slot > it->second + config_.drain_window_slots) {
    violation("I4: stale drained response accepted " +
              std::to_string(slot - it->second) +
              " slots after the swap (ru " + std::to_string(msg.ru.value()) +
              ", slot " + std::to_string(msg.slot) + ")");
  }
}

void InvariantChecker::on_migration(const MigrationEvent& event) {
  migrations_.push_back(PendingMigration{event.ru, event.to,
                                         event.boundary_slot, now_slot(),
                                         false, false, false, false});
  if (event.kind != MigrationEvent::Kind::kFailover) {
    return;
  }
  auto& t = track(event.from);
  if (t.failed_episode_open) {
    violation("I5: duplicate failover MigrationEvent for phy " +
              std::to_string(event.from.value()) +
              " (boundary moved to " + std::to_string(event.boundary_slot) +
              ")");
  }
  t.failed_episode_open = true;
  t.episode_swap_slot = -1;
  pending_failover_from_[event.ru.value()] = event.from.value();
}

void InvariantChecker::on_swap_finalized(RuId ru, std::int64_t /*slot*/,
                                         PhyId /*new_primary*/,
                                         std::int64_t /*boundary_slot*/) {
  const std::int64_t slot = now_slot();
  last_swap_slot_[ru.value()] = slot;
  const auto it = pending_failover_from_.find(ru.value());
  if (it != pending_failover_from_.end()) {
    track(PhyId{it->second}).episode_swap_slot = slot;
  }
}

void InvariantChecker::on_adopt(RuId ru, PhyId phy) {
  auto& t = track(phy);
  t.failed_episode_open = false;
  t.episode_swap_slot = -1;
  t.alive_since_slot = now_slot();  // restart the I1 settling ramp
  const auto it = pending_failover_from_.find(ru.value());
  if (it != pending_failover_from_.end() && it->second == phy.value()) {
    pending_failover_from_.erase(it);
  }
}

void InvariantChecker::on_rehabilitate(RuId ru, PhyId phy) {
  // The failover was a false positive: the episode closes without an
  // adopt, and the PHY's feed resumes after a short unfed gap — restart
  // the I1 ramp so that gap is not flagged.
  auto& t = track(phy);
  t.failed_episode_open = false;
  t.episode_swap_slot = -1;
  t.alive_since_slot = now_slot();
  const auto it = pending_failover_from_.find(ru.value());
  if (it != pending_failover_from_.end() && it->second == phy.value()) {
    pending_failover_from_.erase(it);
  }
}

}  // namespace slingshot
