#include "inject/fault_plan.h"

#include <algorithm>

namespace slingshot {

const char* fault_kind_name(FaultKind kind) {
  switch (kind) {
    case FaultKind::kKillPhy:
      return "kill_phy";
    case FaultKind::kHangPhy:
      return "hang_phy";
    case FaultKind::kReviveStandby:
      return "revive_standby";
    case FaultKind::kPlannedMigration:
      return "planned_migration";
    case FaultKind::kDropFronthaul:
      return "drop_fronthaul";
    case FaultKind::kDropFapi:
      return "drop_fapi";
    case FaultKind::kCorruptFapi:
      return "corrupt_fapi";
    case FaultKind::kDropMigrateCmd:
      return "drop_migrate_cmd";
    case FaultKind::kDupFailureNotify:
      return "dup_failure_notify";
    case FaultKind::kDelayFailureNotify:
      return "delay_failure_notify";
    case FaultKind::kDelayFapiInd:
      return "delay_fapi_ind";
    case FaultKind::kDownLink:
      return "down_link";
  }
  return "?";
}

namespace {
const char* site_name(FaultSite site) {
  switch (site) {
    case FaultSite::kNone:
      return "-";
    case FaultSite::kPhyA:
      return "phy-a";
    case FaultSite::kPhyB:
      return "phy-b";
    case FaultSite::kOrionA:
      return "orion-a";
    case FaultSite::kOrionB:
      return "orion-b";
    case FaultSite::kOrionL2:
      return "orion-l2";
    case FaultSite::kRu:
      return "ru";
  }
  return "?";
}
}  // namespace

std::string describe(const FaultEvent& event) {
  std::string s = std::string(fault_kind_name(event.kind)) + "@" +
                  site_name(event.site);
  if (event.phy != PhyId{}) {
    s += " phy=" + std::to_string(event.phy.value());
  }
  return s + " t=" + std::to_string(event.at) + "ns n=" +
         std::to_string(event.count) + " d=" + std::to_string(event.duration) +
         "ns";
}

FaultPlan make_random_fault_plan(RngStream& rng, Nanos start, Nanos end,
                                 int num_events, bool include_failovers) {
  FaultPlan plan;
  const Nanos span = end - start;

  // Packet-level faults the system must absorb transparently (§6.1 loss
  // compensation, §6.2 idempotent failover signalling).
  for (int i = 0; i < num_events; ++i) {
    FaultEvent e;
    e.at = start + Nanos(rng.uniform(0.0, double(span)));
    switch (rng.uniform_int(0, 4)) {
      case 0:
        e.kind = FaultKind::kDropFapi;
        e.site = rng.bernoulli(0.5) ? FaultSite::kOrionA : FaultSite::kOrionB;
        e.count = rng.uniform_int(1, 3);
        break;
      case 1:
        e.kind = FaultKind::kCorruptFapi;
        e.site = rng.bernoulli(0.5) ? FaultSite::kOrionA : FaultSite::kOrionB;
        e.count = rng.uniform_int(1, 2);
        break;
      case 2:
        e.kind = FaultKind::kDropFronthaul;
        e.site = rng.bernoulli(0.5) ? FaultSite::kRu
                 : rng.bernoulli(0.5) ? FaultSite::kPhyA
                                      : FaultSite::kPhyB;
        e.count = rng.uniform_int(1, 2);
        break;
      case 3:
        e.kind = FaultKind::kDupFailureNotify;
        e.site = FaultSite::kOrionL2;
        e.count = 1;
        e.duration = Nanos(rng.uniform(50'000.0, 400'000.0));
        break;
      default:
        e.kind = FaultKind::kDelayFailureNotify;
        e.site = FaultSite::kOrionL2;
        e.count = 1;
        e.duration = Nanos(rng.uniform(20'000.0, 200'000.0));
        break;
    }
    plan.add(e);
  }

  if (include_failovers && span > 2'000_ms) {
    // Alternating kill/revive cycles, spaced so each failover completes
    // and the revived PHY re-arms before the next one hits. The newly
    // active PHY alternates, so alternate the kill target.
    Nanos t = start + span / 4;
    bool kill_a = true;
    while (t + 600_ms < end) {
      plan.add(t, FaultKind::kKillPhy,
               kill_a ? FaultSite::kPhyA : FaultSite::kPhyB);
      plan.add(t + 200_ms, FaultKind::kReviveStandby);
      kill_a = !kill_a;
      t += span / 3;
    }
  }

  std::sort(plan.events.begin(), plan.events.end(),
            [](const FaultEvent& a, const FaultEvent& b) { return a.at < b.at; });
  return plan;
}

FaultPlan make_double_failure_plan(Nanos at, PhyId first, PhyId second,
                                   Nanos gap) {
  FaultPlan plan;
  FaultEvent e1;
  e1.at = at;
  e1.kind = FaultKind::kKillPhy;
  e1.phy = first;
  plan.add(e1);
  FaultEvent e2;
  e2.at = at + gap;
  e2.kind = FaultKind::kKillPhy;
  e2.phy = second;
  plan.add(e2);
  return plan;
}

}  // namespace slingshot
