// Deterministic fault plans for the Slingshot testbed.
//
// A FaultPlan is a script of fault events against simulator time:
// PHY crash/hang/restart, fronthaul and FAPI datagram loss and
// corruption, delayed or duplicated failure notifications, and lost
// migrate_on_slot commands. The FaultInjector (injector.h) binds a plan
// to a live Testbed through the Nic/Link interceptor hooks, so the same
// seed always produces the same fault sequence — every failure found by
// the randomized soak is replayable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"

namespace slingshot {

enum class FaultKind : std::uint8_t {
  kKillPhy,             // fail-stop the PHY process at `at` (§8.2 SIGKILL)
  kHangPhy,             // silence the PHY's network tx for `duration`
                        // (process alive but wedged — a gray failure)
  kReviveStandby,       // restart the dead PHY and adopt it as standby
  kPlannedMigration,    // planned migration, boundary `count` slots ahead
  kDropFronthaul,       // drop the next `count` eCPRI frames leaving `site`
  kDropFapi,            // drop the next `count` FAPI datagrams reaching `site`
  kCorruptFapi,         // corrupt the next `count` FAPI datagrams at `site`
  kDropMigrateCmd,      // drop the next `count` commands sent by L2 Orion
  kDupFailureNotify,    // duplicate the next `count` failure notifications,
                        // the copy delivered `duration` later
  kDelayFailureNotify,  // delay the next `count` notifications by `duration`
  kDelayFapiInd,        // delay the next `count` FAPI indications from
                        // `site` (a PHY-side Orion) by `duration`
  kDownLink,            // pull the site's plane-A fabric cable at `at`;
                        // `duration` > 0 plugs it back in that much
                        // later (0 = stays down)
};

// Where a fault applies. For packet faults this names the NIC whose
// traffic is affected; for process faults the PHY.
enum class FaultSite : std::uint8_t {
  kNone,
  kPhyA,
  kPhyB,
  kOrionA,
  kOrionB,
  kOrionL2,
  kRu,
};

struct FaultEvent {
  Nanos at = 0;
  FaultKind kind = FaultKind::kKillPhy;
  FaultSite site = FaultSite::kNone;
  int count = 1;       // frames affected / migration lead slots
  Nanos duration = 0;  // hang length or injected delay
  // Multi-PHY deployments: explicit target for kKillPhy/kReviveStandby.
  // PhyId{} (0) falls back to the legacy site-based/first-dead lookup.
  PhyId phy{};
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  FaultPlan& add(FaultEvent event) {
    events.push_back(event);
    return *this;
  }
  FaultPlan& add(Nanos at, FaultKind kind, FaultSite site = FaultSite::kNone,
                 int count = 1, Nanos duration = 0) {
    return add(FaultEvent{at, kind, site, count, duration});
  }

  [[nodiscard]] bool contains(FaultKind kind) const {
    for (const auto& e : events) {
      if (e.kind == kind) {
        return true;
      }
    }
    return false;
  }
};

[[nodiscard]] const char* fault_kind_name(FaultKind kind);
[[nodiscard]] std::string describe(const FaultEvent& event);

// A reproducible random plan over [start, end): datagram loss and
// corruption, duplicated/delayed notifications, plus (optionally)
// alternating kill/revive failover cycles. Only faults the system is
// contractually expected to survive are drawn, so a clean run must
// produce zero invariant violations.
[[nodiscard]] FaultPlan make_random_fault_plan(RngStream& rng, Nanos start,
                                               Nanos end, int num_events,
                                               bool include_failovers = true);

// Concurrent double-failure: kill `first` at `at` and `second` `gap`
// later (both within one detection window if `gap` is smaller than the
// detector timeout) — the scale-out stress case for the shared pool.
[[nodiscard]] FaultPlan make_double_failure_plan(Nanos at, PhyId first,
                                                 PhyId second, Nanos gap);

}  // namespace slingshot
