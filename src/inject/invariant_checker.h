// Runtime invariant checking for the Slingshot testbed.
//
// The InvariantChecker taps the L2-side Orion, the in-switch fronthaul
// middlebox, and the SHM FAPI pipes feeding each PHY, and asserts the
// paper's correctness contracts every slot:
//
//  I1  Every live PHY receives at least one UL_TTI and one DL_TTI
//      request (real or null) per slot (§6.2 — FlexRAN crashes
//      otherwise; Slingshot's null requests and §6.1 loss compensation
//      exist to uphold exactly this).
//  I2  At most one PHY's downlink reaches an RU in any TTI (§5.1 DL
//      source filter).
//  I3  Each migrate_on_slot command executes exactly once, at its
//      boundary TTI, and the middlebox's interpretation of the boundary
//      matches the Orion that issued it (TTI-boundary alignment, §5.1).
//  I4  Drained responses from the pre-migration primary are accepted
//      only for slots before the boundary, and only within a bounded
//      window after the swap (Fig 7 pipeline drain).
//  I5  One failover per failure episode: no duplicate failure
//      notifications or duplicate MigrationEvents for a PHY that is
//      already failed, and no notifications for unwatched PHYs.
//  I6  After a failover, no FAPI flows to the failed PHY until
//      adopt_standby replaces it (§6.3).
//
// Violations are collected (with simulator timestamps), not thrown, so
// a single soak run reports every breach at once.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "core/fh_mbox.h"
#include "core/orion.h"
#include "testbed/testbed.h"

namespace slingshot {

struct InvariantViolation {
  Nanos at = 0;
  std::string what;
};

struct InvariantCheckerConfig {
  // A slot's FAPI request counts are finalized this many slots later,
  // covering the L2's send-ahead plus transport and compensation jitter.
  int fapi_grace_slots = 6;
  // Slots a (re)started PHY gets before I1 applies to it.
  int startup_ramp_slots = 8;
  // Max slots after a swap during which drained responses are legal.
  int drain_window_slots = 8;
  // Allowed skew (slots) between a migration's boundary and the TTI it
  // actually executes on. 0 unless the plan drops fronthaul packets.
  int boundary_skew_slots = 0;
  // Slots an orion-side migration may wait for its middlebox command.
  int cmd_grace_slots = 8;
  // FAPI tolerated after a failover before I6 fires: the failed PHY's
  // own Orion keeps plugging nulls until its dead-stream threshold (16
  // slots) trips, which is local, bounded, and by design — I6 is about
  // the L2 side *sustaining* the flow.
  int dead_fapi_grace_slots = 24;
  // Stop recording after this many violations (the count keeps rising).
  std::size_t max_recorded = 64;
};

class InvariantChecker final : public MboxTap, public OrionL2Tap {
 public:
  explicit InvariantChecker(Testbed& testbed, InvariantCheckerConfig config = {});
  ~InvariantChecker() override;

  InvariantChecker(const InvariantChecker&) = delete;
  InvariantChecker& operator=(const InvariantChecker&) = delete;

  [[nodiscard]] bool ok() const { return violation_count_ == 0; }
  [[nodiscard]] std::uint64_t violation_count() const {
    return violation_count_;
  }
  [[nodiscard]] const std::vector<InvariantViolation>& violations() const {
    return violations_;
  }
  [[nodiscard]] std::string report() const;
  // Count of violations whose text contains `needle`.
  [[nodiscard]] std::size_t count_matching(const std::string& needle) const;

  // Loosen I3's execution-skew bound (fronthaul-loss fault plans).
  void allow_boundary_skew(int slots) { config_.boundary_skew_slots = slots; }
  // Slots checked so far (checker ran, not just constructed).
  [[nodiscard]] std::int64_t slots_checked() const { return slots_checked_; }

  // ---- MboxTap ----
  void on_command(const MigrateOnSlotCmd& cmd,
                  std::int64_t boundary_wrapped) override;
  void on_unwatch_command(PhyId phy) override;
  void on_migration_executed(RuId ru, PhyId dest, std::int64_t pkt_wrapped,
                             std::int64_t boundary_wrapped) override;
  void on_dl_packet(PhyId src, RuId ru, std::int64_t pkt_wrapped,
                    bool forwarded) override;
  void on_failure_notify(PhyId phy) override;
  void on_watch_changed(PhyId phy, bool watched) override;

  // ---- OrionL2Tap ----
  void on_indication(PhyId from, const FapiMessage& msg, bool forwarded,
                     bool drained, std::int64_t drain_boundary) override;
  void on_migration(const MigrationEvent& event) override;
  void on_swap_finalized(RuId ru, std::int64_t slot, PhyId new_primary,
                         std::int64_t boundary_slot) override;
  void on_adopt(RuId ru, PhyId phy) override;
  void on_rehabilitate(RuId ru, PhyId phy) override;

 private:
  struct TtiCounts {
    int dl = 0;
    int ul = 0;
  };
  // Orion-side record of an issued migration, awaiting its middlebox
  // command and execution.
  struct PendingMigration {
    RuId ru;
    PhyId dest;
    std::int64_t boundary_slot = 0;
    std::int64_t issued_slot = 0;
    bool command_seen = false;
    bool executed = false;
    bool missing_cmd_reported = false;
    bool missing_exec_reported = false;
  };
  struct PhyTrack {
    bool ever_seen = false;
    bool alive = true;
    std::int64_t alive_since_slot = 0;  // last death->life transition
    std::int64_t dead_since_slot = -1;
    bool failed_episode_open = false;   // failover consumed it, no adopt yet
    std::int64_t episode_swap_slot = -1;
    std::int64_t last_i6_report_slot = -1;  // rate-limit I6 to one per slot
  };

  void on_fapi_to_phy(PhyId phy, const FapiMessage& msg);
  void on_slot_tick();
  void finalize_slot(std::int64_t slot);
  void violation(const std::string& what);
  [[nodiscard]] std::int64_t now_slot() const;
  [[nodiscard]] std::int64_t wrap_window() const;
  PhyTrack& track(PhyId phy) { return phys_[phy.value()]; }

  Testbed& tb_;
  InvariantCheckerConfig config_;
  SlotConfig slots_;
  EventHandle tick_;

  // I1: per-slot FAPI request counts per (phy, ru).
  std::map<std::int64_t, std::map<std::pair<std::uint8_t, std::uint8_t>,
                                  TtiCounts>>
      tti_counts_;
  // First slot each (phy, ru) request stream was observed at.
  std::map<std::pair<std::uint8_t, std::uint8_t>, std::int64_t> first_seen_;
  std::int64_t finalized_through_ = -1;
  std::int64_t slots_checked_ = 0;

  // I2: forwarded DL source per (ru, unwrapped slot).
  std::map<std::pair<std::uint8_t, std::int64_t>, std::uint8_t> dl_sources_;

  // I3: migrations in flight.
  std::vector<PendingMigration> migrations_;

  // I4: last swap slot per RU.
  std::map<std::uint8_t, std::int64_t> last_swap_slot_;

  // I5/I6: per-PHY liveness + episode state, watch state.
  std::map<std::uint8_t, PhyTrack> phys_;
  std::set<std::uint8_t> watched_;
  std::set<std::uint8_t> watch_known_;  // phys whose watch state we've seen
  std::map<std::uint8_t, std::uint8_t> pending_failover_from_;  // ru -> phy

  std::vector<InvariantViolation> violations_;
  std::uint64_t violation_count_ = 0;
};

}  // namespace slingshot
