// Shared-memory SPSC ring for IQ-heavy FAPI payloads (TX_DATA/RX_DATA).
//
// The paper couples each PHY to its Orion over shared memory (§2.2,
// §6.1): control-sized FAPI rides the network transport, but data-plane
// payloads stay off the sockets. This ring is that SHM path for the
// real-process deployment mode: a single-producer/single-consumer byte
// ring of length-prefixed records living in one MAP_SHARED|MAP_ANONYMOUS
// mapping.
//
// Cross-process contract: the RealTestbed launcher creates every ring
// *before* fork(), so all roles inherit the same physical pages; the
// ShmRing object itself is a plain value handle (header pointer + data
// pointer) that copies across fork intact. Exactly one process pushes
// and one pops per ring. Head/tail are monotonically increasing 64-bit
// counters with acquire/release ordering — the standard SPSC scheme, no
// locks, safe for a reader whose peer is kill -9'd mid-record *write*
// (the tail only advances after the record bytes are fully copied, so a
// torn write is simply never observed).
//
// In --inproc mode the same class runs between threads of one process;
// the mapping is still MAP_SHARED, which is harmless.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

namespace slingshot {

class ShmRing {
 public:
  ShmRing() = default;

  // Create a ring with at least `capacity_bytes` of payload space
  // (rounded up to a power of two). Returns an invalid handle on mmap
  // failure. The creating process should eventually call destroy() on
  // ONE handle after all users are done (children exiting just drop
  // their page references).
  [[nodiscard]] static ShmRing create(std::size_t capacity_bytes);

  [[nodiscard]] bool valid() const { return header_ != nullptr; }

  // Append one record. Returns false (nothing written) if the record
  // would not fit in the free space — the producer's choice to drop or
  // retry; the FAPI transport drops, mirroring §6.1 statelessness.
  bool push(std::span<const std::uint8_t> record);

  // Pop the oldest record into `out` (cleared first). Returns false if
  // the ring is empty.
  bool pop(std::vector<std::uint8_t>& out);

  [[nodiscard]] std::size_t used_bytes() const;
  [[nodiscard]] std::size_t free_bytes() const;
  [[nodiscard]] std::size_t capacity() const {
    return header_ == nullptr ? 0 : header_->capacity;
  }
  // Producer-side count of records dropped for lack of space.
  [[nodiscard]] std::uint64_t dropped_full() const { return dropped_full_; }

  // Unmap the pages. Call from the owning (launcher) process only,
  // after every user is reaped; other handles become dangling.
  void destroy();

 private:
  struct Header {
    alignas(64) std::atomic<std::uint64_t> head;  // consumer position
    alignas(64) std::atomic<std::uint64_t> tail;  // producer position
    alignas(64) std::uint64_t capacity;           // power of two
  };

  void copy_in(std::uint64_t pos, std::span<const std::uint8_t> bytes);
  void copy_out(std::uint64_t pos, std::span<std::uint8_t> bytes) const;

  Header* header_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::size_t map_len_ = 0;
  std::uint64_t dropped_full_ = 0;
};

}  // namespace slingshot
