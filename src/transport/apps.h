// Traffic applications used by the paper's end-to-end experiments:
//
//  * UdpFlow   — iperf-style constant-bit-rate UDP with sequence
//                numbers; the sink measures goodput per time bin and
//                loss (Fig 10, Fig 11, Table 2).
//  * PingApp   — 10 ms-interval echo, RTT time series (Fig 9, §8.7).
//  * VideoApp  — 500 kbps talking-head stream; receiver-side average
//                bitrate, the QoE proxy of Fig 8.
#pragma once

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "sim/simulator.h"
#include "transport/pipe.h"

namespace slingshot {

// ---------------------------------------------------------------------
struct UdpFlowConfig {
  double rate_bps = 15.8e6;
  std::size_t packet_bytes = 1200;
  Nanos bin_width = 10_ms;  // measurement granularity (paper uses 10 ms)
};

class UdpFlow {
 public:
  UdpFlow(Simulator& sim, DatagramPipe& tx_pipe, DatagramPipe& rx_pipe,
          UdpFlowConfig config);

  void start();
  void stop();

  // Receiver-side metrics.
  [[nodiscard]] const TimeBinnedCounter& goodput() const { return rx_bytes_; }
  [[nodiscard]] const TimeBinnedCounter& tx_rate() const { return tx_bytes_; }
  [[nodiscard]] std::uint64_t packets_sent() const { return next_seq_; }
  [[nodiscard]] std::uint64_t packets_received() const { return received_; }
  [[nodiscard]] double loss_rate() const {
    return next_seq_ == 0
               ? 0.0
               : 1.0 - double(received_) / double(next_seq_);
  }
  // Per-bin packet loss: highest loss fraction across bins in
  // [from, to) — Table 2's "max pkt loss rate per 10 ms".
  [[nodiscard]] double max_bin_loss(Nanos from, Nanos to) const;

 private:
  void send_one();

  Simulator& sim_;
  DatagramPipe& tx_pipe_;
  UdpFlowConfig config_;
  EventHandle task_;
  std::uint64_t next_seq_ = 0;
  std::uint64_t received_ = 0;
  TimeBinnedCounter rx_bytes_;
  TimeBinnedCounter tx_bytes_;
  TimeBinnedCounter rx_packets_;
  TimeBinnedCounter tx_packets_;
};

// ---------------------------------------------------------------------
struct PingConfig {
  Nanos interval = 10_ms;
  std::size_t payload_bytes = 64;
};

// Echo client. The matching `PingResponder` reflects requests on the
// other pipe end.
class PingApp {
 public:
  PingApp(Simulator& sim, DatagramPipe& pipe, PingConfig config);

  void start();
  void stop();

  struct Sample {
    Nanos sent_at;
    Nanos rtt;
  };
  [[nodiscard]] const std::vector<Sample>& samples() const { return samples_; }
  [[nodiscard]] std::uint64_t timeouts(Nanos horizon) const;

 private:
  Simulator& sim_;
  DatagramPipe& pipe_;
  PingConfig config_;
  EventHandle task_;
  std::uint64_t next_seq_ = 0;
  std::vector<Nanos> outstanding_;  // sent_at by seq
  std::vector<Sample> samples_;
};

class PingResponder {
 public:
  explicit PingResponder(DatagramPipe& pipe);
};

// ---------------------------------------------------------------------
struct VideoConfig {
  double bitrate_bps = 500e3;
  Nanos frame_interval = 33_ms;   // ~30 fps
  Nanos bitrate_window = 1'000_ms;  // receiver-side averaging window
};

class VideoApp {
 public:
  VideoApp(Simulator& sim, DatagramPipe& tx_pipe, DatagramPipe& rx_pipe,
           VideoConfig config);

  void start();
  void stop();

  // Receiver-side average bitrate series, one point per window.
  [[nodiscard]] const TimeBinnedCounter& rx_bytes() const { return rx_bytes_; }
  [[nodiscard]] double bitrate_kbps_at(Nanos t) const;

 private:
  Simulator& sim_;
  DatagramPipe& tx_pipe_;
  VideoConfig config_;
  EventHandle task_;
  std::uint64_t next_seq_ = 0;
  TimeBinnedCounter rx_bytes_;
};

}  // namespace slingshot
