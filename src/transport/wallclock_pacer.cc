#include "transport/wallclock_pacer.h"

#include <time.h>

namespace slingshot {
namespace {

constexpr std::int64_t kNsPerSec = 1'000'000'000;

}  // namespace

std::int64_t WallclockPacer::now_ns() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return std::int64_t(ts.tv_sec) * kNsPerSec + ts.tv_nsec;
}

std::int64_t WallclockPacer::wait_slot(std::uint64_t slot) {
  const std::int64_t deadline =
      cfg_.epoch_ns + std::int64_t(slot) * cfg_.tti_ns;
  timespec ts{};
  ts.tv_sec = deadline / kNsPerSec;
  ts.tv_nsec = deadline % kNsPerSec;
  // Absolute deadline: EINTR just means retry toward the same instant.
  while (clock_nanosleep(CLOCK_MONOTONIC, TIMER_ABSTIME, &ts, nullptr) != 0) {
  }
  const std::int64_t late = now_ns() - deadline;
  if (late > cfg_.tti_ns) {
    ++overruns_;
  }
  if (late > max_late_ns_) {
    max_late_ns_ = late;
  }
  return late > 0 ? late : 0;
}

std::int64_t WallclockPacer::current_slot() const {
  if (cfg_.tti_ns <= 0) {
    return 0;
  }
  return (now_ns() - cfg_.epoch_ns) / cfg_.tti_ns;
}

}  // namespace slingshot
