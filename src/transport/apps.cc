#include "transport/apps.h"

#include <optional>

#include "common/bits.h"

namespace slingshot {
namespace {
// Datagram headers for the measurement apps: [kind u8][seq u64][t u64].
enum class AppKind : std::uint8_t {
  kUdpData = 1,
  kPingRequest = 2,
  kPingReply = 3,
  kVideoFrame = 4,
};

std::vector<std::uint8_t> make_header(AppKind kind, std::uint64_t seq,
                                      Nanos timestamp, std::size_t total) {
  std::vector<std::uint8_t> out;
  out.reserve(total);
  ByteWriter w{out};
  w.u8(std::uint8_t(kind));
  w.u64(seq);
  w.u64(std::uint64_t(timestamp));
  out.resize(total, 0xA5);  // filler payload
  return out;
}

struct ParsedHeader {
  AppKind kind;
  std::uint64_t seq;
  Nanos timestamp;
};

std::optional<ParsedHeader> parse_header(
    std::span<const std::uint8_t> datagram) {
  if (datagram.size() < 17) {
    return std::nullopt;
  }
  ByteReader r{datagram};
  ParsedHeader h;
  h.kind = AppKind(r.u8());
  h.seq = r.u64();
  h.timestamp = Nanos(r.u64());
  return h;
}

}  // namespace

// ---------------------------------------------------------------------
UdpFlow::UdpFlow(Simulator& sim, DatagramPipe& tx_pipe, DatagramPipe& rx_pipe,
                 UdpFlowConfig config)
    : sim_(sim),
      tx_pipe_(tx_pipe),
      config_(config),
      rx_bytes_(config.bin_width),
      tx_bytes_(config.bin_width),
      rx_packets_(config.bin_width),
      tx_packets_(config.bin_width) {
  rx_pipe.set_receive_handler([this](std::vector<std::uint8_t> datagram) {
    const auto header = parse_header(datagram);
    if (!header || header->kind != AppKind::kUdpData) {
      return;
    }
    ++received_;
    rx_bytes_.add(sim_.now(), double(datagram.size()));
    rx_packets_.add(sim_.now(), 1.0);
  });
}

void UdpFlow::start() {
  const double pps = config_.rate_bps / (double(config_.packet_bytes) * 8.0);
  const auto interval = Nanos(1e9 / pps);
  task_ = sim_.every(sim_.now() + interval, interval, [this] { send_one(); });
}

void UdpFlow::stop() { task_.cancel(); }

void UdpFlow::send_one() {
  tx_bytes_.add(sim_.now(), double(config_.packet_bytes));
  tx_packets_.add(sim_.now(), 1.0);
  tx_pipe_.send(make_header(AppKind::kUdpData, next_seq_++, sim_.now(),
                            config_.packet_bytes));
}

double UdpFlow::max_bin_loss(Nanos from, Nanos to) const {
  double worst = 0.0;
  const auto first = std::size_t(from / config_.bin_width);
  const auto last = std::size_t(to / config_.bin_width);
  for (std::size_t bin = first; bin <= last; ++bin) {
    const double sent = tx_packets_.bin(bin);
    if (sent < 1.0) {
      continue;
    }
    const double got = rx_packets_.bin(bin);
    worst = std::max(worst, 1.0 - std::min(got / sent, 1.0));
  }
  return worst;
}

// ---------------------------------------------------------------------
PingApp::PingApp(Simulator& sim, DatagramPipe& pipe, PingConfig config)
    : sim_(sim), pipe_(pipe), config_(config) {
  pipe_.set_receive_handler([this](std::vector<std::uint8_t> datagram) {
    const auto header = parse_header(datagram);
    if (!header || header->kind != AppKind::kPingReply) {
      return;
    }
    if (header->seq < outstanding_.size() &&
        outstanding_[header->seq] >= 0) {
      samples_.push_back(Sample{outstanding_[header->seq],
                                sim_.now() - outstanding_[header->seq]});
      outstanding_[header->seq] = -1;
    }
  });
}

void PingApp::start() {
  task_ = sim_.every(sim_.now() + config_.interval, config_.interval, [this] {
    outstanding_.push_back(sim_.now());
    pipe_.send(make_header(AppKind::kPingRequest, next_seq_++, sim_.now(),
                           config_.payload_bytes));
  });
}

void PingApp::stop() { task_.cancel(); }

std::uint64_t PingApp::timeouts(Nanos horizon) const {
  std::uint64_t lost = 0;
  for (const auto sent_at : outstanding_) {
    if (sent_at >= 0 && sim_.now() - sent_at > horizon) {
      ++lost;
    }
  }
  return lost;
}

PingResponder::PingResponder(DatagramPipe& pipe) {
  pipe.set_receive_handler([&pipe](std::vector<std::uint8_t> datagram) {
    if (datagram.empty() || datagram[0] != std::uint8_t(AppKind::kPingRequest)) {
      return;
    }
    datagram[0] = std::uint8_t(AppKind::kPingReply);
    pipe.send(std::move(datagram));
  });
}

// ---------------------------------------------------------------------
VideoApp::VideoApp(Simulator& sim, DatagramPipe& tx_pipe,
                   DatagramPipe& rx_pipe, VideoConfig config)
    : sim_(sim),
      tx_pipe_(tx_pipe),
      config_(config),
      rx_bytes_(config.bitrate_window) {
  rx_pipe.set_receive_handler([this](std::vector<std::uint8_t> datagram) {
    const auto header = parse_header(datagram);
    if (!header || header->kind != AppKind::kVideoFrame) {
      return;
    }
    rx_bytes_.add(sim_.now(), double(datagram.size()));
  });
}

void VideoApp::start() {
  task_ = sim_.every(sim_.now() + config_.frame_interval,
                     config_.frame_interval, [this] {
                       const auto frame_bytes = std::size_t(
                           config_.bitrate_bps *
                           to_seconds(config_.frame_interval) / 8.0);
                       tx_pipe_.send(make_header(AppKind::kVideoFrame,
                                                 next_seq_++, sim_.now(),
                                                 std::max<std::size_t>(
                                                     frame_bytes, 17)));
                     });
}

void VideoApp::stop() { task_.cancel(); }

double VideoApp::bitrate_kbps_at(Nanos t) const {
  const auto bin = std::size_t(t / config_.bitrate_window);
  return rx_bytes_.bin_rate_bps(bin) / 1e3;
}

}  // namespace slingshot
