// Datagram pipe abstraction connecting traffic apps to the cellular
// user plane. One side is bound to a UE's modem interface, the other to
// the application server behind the core network; the testbed provides
// the concrete wiring.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

namespace slingshot {

class DatagramPipe {
 public:
  virtual ~DatagramPipe() = default;
  virtual void send(std::vector<std::uint8_t> datagram) = 0;

  void set_receive_handler(
      std::function<void(std::vector<std::uint8_t>)> handler) {
    receive_ = std::move(handler);
  }

 protected:
  void deliver(std::vector<std::uint8_t> datagram) {
    if (receive_) {
      receive_(std::move(datagram));
    }
  }

 private:
  std::function<void(std::vector<std::uint8_t>)> receive_;
};

// Pipe backed by a plain function (used for UE modem binding and in
// unit tests).
class FunctionPipe final : public DatagramPipe {
 public:
  explicit FunctionPipe(
      std::function<void(std::vector<std::uint8_t>)> sender = nullptr)
      : sender_(std::move(sender)) {}

  void set_sender(std::function<void(std::vector<std::uint8_t>)> sender) {
    sender_ = std::move(sender);
  }
  void send(std::vector<std::uint8_t> datagram) override {
    if (sender_) {
      sender_(std::move(datagram));
    }
  }
  // Called by the owner when a datagram arrives from the network.
  void inject(std::vector<std::uint8_t> datagram) {
    deliver(std::move(datagram));
  }

 private:
  std::function<void(std::vector<std::uint8_t>)> sender_;
};

}  // namespace slingshot
