// MiniTcp: a Reno-style reliable byte stream over a DatagramPipe pair,
// enough TCP to reproduce the paper's Fig 10 dynamics: in-order
// delivery stalls on loss, duplicate-ACK fast retransmit, RTO with
// exponential backoff, slow start and AIMD congestion control.
//
// One MiniTcpSender pumps an unbounded (iperf-like) byte stream to one
// MiniTcpReceiver; the receiver measures in-order goodput in time bins.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "sim/simulator.h"
#include "transport/pipe.h"

namespace slingshot {

struct MiniTcpConfig {
  std::size_t mss = 1200;
  std::size_t max_cwnd_segments = 256;
  // Initial slow-start threshold (hystart-like); caps the slow-start
  // overshoot that would otherwise dump a full window into the RAN's
  // buffers at startup.
  double initial_ssthresh_segments = 1e9;
  Nanos min_rto = 200_ms;   // Linux-like minimum RTO
  Nanos initial_rto = 300_ms;
  Nanos bin_width = 10_ms;
  double pacing_max_pps = 40'000;  // safety valve on event volume
};

struct MiniTcpStats {
  std::uint64_t segments_sent = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t fast_retransmits = 0;
  std::uint64_t rto_fires = 0;
  std::uint64_t acks_received = 0;
};

class MiniTcpSender {
 public:
  // The sender owns its pipe end entirely: data segments go out through
  // it and ACKs come back through its receive handler.
  MiniTcpSender(Simulator& sim, DatagramPipe& pipe, MiniTcpConfig config);

  void start();
  void stop();

  [[nodiscard]] const MiniTcpStats& stats() const { return stats_; }
  [[nodiscard]] double cwnd_segments() const { return cwnd_; }
  [[nodiscard]] Nanos srtt() const { return srtt_; }

 private:
  void pump();                 // send while cwnd allows
  void send_segment(std::uint64_t seq, bool is_retx);
  void on_ack(std::uint64_t cum_ack);
  void arm_rto();
  void on_rto();
  void update_rtt(Nanos sample);
  [[nodiscard]] Nanos current_rto() const;

  Simulator& sim_;
  DatagramPipe& pipe_;
  MiniTcpConfig config_;
  bool running_ = false;

  std::uint64_t snd_nxt_ = 0;  // next byte to send
  std::uint64_t snd_una_ = 0;  // lowest unacked byte
  double cwnd_ = 2.0;          // segments
  double ssthresh_ = 1e9;
  int dup_acks_ = 0;
  bool in_recovery_ = false;
  std::uint64_t recovery_end_ = 0;

  // RTT estimation.
  Nanos srtt_ = 0;
  Nanos rttvar_ = 0;
  int backoff_ = 0;
  std::map<std::uint64_t, Nanos> send_times_;  // seq -> first-send time

  EventHandle rto_timer_;
  EventHandle pump_timer_;
  MiniTcpStats stats_;
};

class MiniTcpReceiver {
 public:
  // The receiver owns the other pipe end: data arrives through the
  // receive handler, ACKs go back out through the pipe.
  MiniTcpReceiver(Simulator& sim, DatagramPipe& pipe, MiniTcpConfig config);

  // In-order delivered bytes per bin — what iperf reports (Fig 10).
  [[nodiscard]] const TimeBinnedCounter& goodput() const { return delivered_; }
  // Raw arrivals (including out-of-order) — the paper notes the server
  // keeps receiving packets during much of the TCP "zero" period.
  [[nodiscard]] const TimeBinnedCounter& arrivals() const { return arrived_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const { return rcv_nxt_; }

 private:
  void on_data(std::vector<std::uint8_t> datagram);

  Simulator& sim_;
  DatagramPipe& pipe_;
  MiniTcpConfig config_;
  std::uint64_t rcv_nxt_ = 0;
  std::map<std::uint64_t, std::size_t> out_of_order_;  // seq -> len
  TimeBinnedCounter delivered_;
  TimeBinnedCounter arrived_;
};

}  // namespace slingshot
