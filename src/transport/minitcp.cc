#include "transport/minitcp.h"

#include <algorithm>

#include "common/bits.h"

namespace slingshot {
namespace {
constexpr std::uint8_t kDataMagic = 0xD1;
constexpr std::uint8_t kAckMagic = 0xA1;

std::vector<std::uint8_t> make_data_segment(std::uint64_t seq,
                                            std::size_t len) {
  std::vector<std::uint8_t> out;
  out.reserve(11 + len);
  ByteWriter w{out};
  w.u8(kDataMagic);
  w.u64(seq);
  w.u16(std::uint16_t(len));
  out.resize(11 + len, 0x5A);
  return out;
}

std::vector<std::uint8_t> make_ack(std::uint64_t cum_ack) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(kAckMagic);
  w.u64(cum_ack);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
MiniTcpSender::MiniTcpSender(Simulator& sim, DatagramPipe& pipe,
                             MiniTcpConfig config)
    : sim_(sim), pipe_(pipe), config_(config) {
  pipe_.set_receive_handler([this](std::vector<std::uint8_t> datagram) {
    if (datagram.size() < 9 || datagram[0] != kAckMagic) {
      return;
    }
    ByteReader r{datagram};
    (void)r.u8();
    on_ack(r.u64());
  });
}

void MiniTcpSender::start() {
  running_ = true;
  ssthresh_ = config_.initial_ssthresh_segments;
  pump();
}

void MiniTcpSender::stop() {
  running_ = false;
  rto_timer_.cancel();
  pump_timer_.cancel();
}

void MiniTcpSender::pump() {
  if (!running_) {
    return;
  }
  const auto window_bytes =
      std::uint64_t(cwnd_ * double(config_.mss));
  int sent_this_round = 0;
  while (snd_nxt_ - snd_una_ + config_.mss <= window_bytes &&
         sent_this_round < 64) {
    send_segment(snd_nxt_, /*is_retx=*/false);
    snd_nxt_ += config_.mss;
    ++sent_this_round;
  }
  if (sent_this_round > 0) {
    arm_rto();
  }
  // If the window is still open (large cwnd), continue pumping shortly —
  // acts as pacing and bounds per-event burst size.
  if (snd_nxt_ - snd_una_ + config_.mss <= window_bytes) {
    pump_timer_ = sim_.after(
        Nanos(1e9 * 64.0 / config_.pacing_max_pps), [this] { pump(); });
  }
}

void MiniTcpSender::send_segment(std::uint64_t seq, bool is_retx) {
  ++stats_.segments_sent;
  if (is_retx) {
    ++stats_.retransmits;
    send_times_.erase(seq);  // Karn's algorithm: no RTT sample from retx
  } else {
    send_times_[seq] = sim_.now();
  }
  pipe_.send(make_data_segment(seq, config_.mss));
}

void MiniTcpSender::update_rtt(Nanos sample) {
  if (srtt_ == 0) {
    srtt_ = sample;
    rttvar_ = sample / 2;
  } else {
    const Nanos err = std::abs(sample - srtt_);
    rttvar_ = (3 * rttvar_ + err) / 4;
    srtt_ = (7 * srtt_ + sample) / 8;
  }
}

Nanos MiniTcpSender::current_rto() const {
  Nanos rto = srtt_ == 0 ? config_.initial_rto
                         : std::max(srtt_ + 4 * rttvar_, config_.min_rto);
  for (int i = 0; i < backoff_; ++i) {
    rto *= 2;
  }
  return std::min<Nanos>(rto, 10_s);
}

void MiniTcpSender::arm_rto() {
  rto_timer_.cancel();
  rto_timer_ = sim_.after(current_rto(), [this] { on_rto(); });
}

void MiniTcpSender::on_rto() {
  if (!running_ || snd_una_ == snd_nxt_) {
    return;
  }
  ++stats_.rto_fires;
  ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
  cwnd_ = 2.0;
  backoff_ = std::min(backoff_ + 1, 6);
  dup_acks_ = 0;
  in_recovery_ = false;
  send_segment(snd_una_, /*is_retx=*/true);
  arm_rto();
}

void MiniTcpSender::on_ack(std::uint64_t cum_ack) {
  if (!running_) {
    return;
  }
  ++stats_.acks_received;
  if (cum_ack > snd_una_) {
    // RTT sample from the highest newly-acked first-transmission.
    const auto it = send_times_.find(cum_ack - config_.mss);
    if (it != send_times_.end()) {
      update_rtt(sim_.now() - it->second);
    }
    send_times_.erase(send_times_.begin(),
                      send_times_.lower_bound(cum_ack));
    snd_una_ = cum_ack;
    dup_acks_ = 0;
    backoff_ = 0;
    if (in_recovery_) {
      if (cum_ack >= recovery_end_) {
        in_recovery_ = false;
        cwnd_ = ssthresh_;
      } else {
        // NewReno partial ACK: the cumulative ACK advanced but stopped
        // at the next hole — retransmit it immediately (one hole per
        // RTT until the whole loss burst is repaired).
        send_segment(snd_una_, /*is_retx=*/true);
        arm_rto();
      }
    }
    if (!in_recovery_) {
      if (cwnd_ < ssthresh_) {
        cwnd_ += 1.0;  // slow start
      } else {
        cwnd_ += 1.0 / cwnd_;  // congestion avoidance
      }
      cwnd_ = std::min(cwnd_, double(config_.max_cwnd_segments));
    }
    if (snd_una_ == snd_nxt_) {
      rto_timer_.cancel();
    } else {
      arm_rto();
    }
    pump();
  } else if (cum_ack == snd_una_ && snd_nxt_ > snd_una_) {
    ++dup_acks_;
    if (dup_acks_ == 3 && !in_recovery_) {
      // Fast retransmit + fast recovery.
      ++stats_.fast_retransmits;
      ssthresh_ = std::max(cwnd_ / 2.0, 2.0);
      cwnd_ = ssthresh_;
      in_recovery_ = true;
      recovery_end_ = snd_nxt_;
      send_segment(snd_una_, /*is_retx=*/true);
      arm_rto();
    } else if (in_recovery_ && dup_acks_ > 3 && dup_acks_ % 8 == 0) {
      // Partial progress signal: keep the hole plugged while recovering.
      send_segment(snd_una_, /*is_retx=*/true);
    }
  }
}

// ---------------------------------------------------------------------
MiniTcpReceiver::MiniTcpReceiver(Simulator& sim, DatagramPipe& pipe,
                                 MiniTcpConfig config)
    : sim_(sim),
      pipe_(pipe),
      config_(config),
      delivered_(config.bin_width),
      arrived_(config.bin_width) {
  pipe_.set_receive_handler(
      [this](std::vector<std::uint8_t> d) { on_data(std::move(d)); });
}

void MiniTcpReceiver::on_data(std::vector<std::uint8_t> datagram) {
  if (datagram.size() < 11 || datagram[0] != kDataMagic) {
    return;
  }
  ByteReader r{datagram};
  (void)r.u8();
  const std::uint64_t seq = r.u64();
  const std::size_t len = r.u16();
  arrived_.add(sim_.now(), double(len));

  if (seq == rcv_nxt_) {
    std::uint64_t advanced = len;
    rcv_nxt_ += len;
    // Fill from the out-of-order store.
    auto it = out_of_order_.find(rcv_nxt_);
    while (it != out_of_order_.end()) {
      rcv_nxt_ += it->second;
      advanced += it->second;
      out_of_order_.erase(it);
      it = out_of_order_.find(rcv_nxt_);
    }
    delivered_.add(sim_.now(), double(advanced));
  } else if (seq > rcv_nxt_) {
    out_of_order_.emplace(seq, len);
  }
  // Cumulative ACK (duplicate if nothing advanced).
  pipe_.send(make_ack(rcv_nxt_));
}

}  // namespace slingshot
