// Wall-clock TTI pacer for the real-process deployment mode.
//
// The simulator advances virtual time event-by-event; real processes
// instead march to CLOCK_MONOTONIC. Every role derives its slot cadence
// from one shared epoch (captured by the launcher before fork), so
// "slot n" means the same wall instant in every process and the FAPI
// exchange lines up without any cross-process clock protocol.
//
// wait_slot(n) sleeps until epoch + n * tti, using absolute deadlines
// (TIMER_ABSTIME) so repeated waits never accumulate drift. If the
// deadline is already past the call returns immediately and counts an
// overrun — the real-mode analogue of the simulator's deadline-miss
// accounting.
#pragma once

#include <cstdint>

namespace slingshot {

class WallclockPacer {
 public:
  struct Config {
    std::int64_t epoch_ns = 0;  // shared CLOCK_MONOTONIC origin
    std::int64_t tti_ns = 500'000;
  };

  WallclockPacer() = default;
  explicit WallclockPacer(Config cfg) : cfg_(cfg) {}

  // Current CLOCK_MONOTONIC time in ns — use to capture the epoch.
  [[nodiscard]] static std::int64_t now_ns();

  // Sleep until the start of slot `slot` (epoch + slot * tti). Returns
  // the lateness in ns (0 if we woke at/before the deadline's grace).
  std::int64_t wait_slot(std::uint64_t slot);

  // Slot index the wall clock is currently inside (>= 0 once past the
  // epoch).
  [[nodiscard]] std::int64_t current_slot() const;

  [[nodiscard]] std::uint64_t overruns() const { return overruns_; }
  [[nodiscard]] std::int64_t max_lateness_ns() const { return max_late_ns_; }
  [[nodiscard]] const Config& config() const { return cfg_; }

 private:
  Config cfg_;
  std::uint64_t overruns_ = 0;
  std::int64_t max_late_ns_ = 0;
};

}  // namespace slingshot
