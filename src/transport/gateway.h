// User-plane gateways: glue between traffic apps and the cellular data
// path.
//
//  * AppServer    — the application server behind the core network. One
//                   DatagramPipe per UE; datagrams travel over the edge
//                   fabric to the L2 server tagged with the UE id.
//  * L2UserGateway — terminates those frames on the L2 server and feeds
//                   the L2's per-UE RLC queues (and the reverse).
//  * UeModemPipe  — binds a pipe to a UE's modem interface.
//
// Frame format (EtherType kUserPlane): [ue id u16][datagram bytes].
#pragma once

#include <cstdint>
#include <map>
#include <memory>

#include "l2/l2.h"
#include "net/nic.h"
#include "sim/simulator.h"
#include "transport/pipe.h"
#include "ue/ue.h"

namespace slingshot {

class AppServer {
 public:
  AppServer(Simulator& sim, Nic& nic, MacAddr l2_gateway_mac)
      : nic_(nic), l2_gateway_mac_(l2_gateway_mac) {
    (void)sim;
    nic_.set_rx_handler([this](Packet&& f) { handle_frame(std::move(f)); });
  }

  // Core-network re-route: point future downlink at a different vRAN
  // stack's gateway (used by the no-Slingshot failover baseline).
  void set_gateway_mac(MacAddr mac) { l2_gateway_mac_ = mac; }

  // The server-side pipe for a UE's traffic.
  DatagramPipe& pipe_for(UeId ue) {
    auto& slot = pipes_[ue.value()];
    if (!slot) {
      slot = std::make_unique<FunctionPipe>();
      slot->set_sender([this, ue](std::vector<std::uint8_t> datagram) {
        Packet frame;
        frame.eth.dst = l2_gateway_mac_;
        frame.eth.ethertype = EtherType::kUserPlane;
        frame.payload.reserve(2 + datagram.size());
        frame.payload.push_back(std::uint8_t(ue.value() >> 8));
        frame.payload.push_back(std::uint8_t(ue.value() & 0xFF));
        frame.payload.insert(frame.payload.end(), datagram.begin(),
                             datagram.end());
        nic_.send(std::move(frame));
      });
    }
    return *slot;
  }

 private:
  void handle_frame(Packet&& frame) {
    if (frame.eth.ethertype != EtherType::kUserPlane ||
        frame.payload.size() < 2) {
      return;
    }
    const std::uint16_t ue =
        std::uint16_t((frame.payload[0] << 8) | frame.payload[1]);
    const auto it = pipes_.find(ue);
    if (it == pipes_.end() || !it->second) {
      return;
    }
    it->second->inject(std::vector<std::uint8_t>(frame.payload.begin() + 2,
                                                 frame.payload.end()));
  }

  Nic& nic_;
  MacAddr l2_gateway_mac_;
  std::map<std::uint16_t, std::unique_ptr<FunctionPipe>> pipes_;
};

class L2UserGateway {
 public:
  L2UserGateway(Nic& nic, L2Process& l2, MacAddr app_server_mac)
      : nic_(nic), l2_(l2), app_server_mac_(app_server_mac) {
    nic_.set_rx_handler([this](Packet&& f) { handle_frame(std::move(f)); });
    l2_.set_uplink_sink([this](UeId ue, std::vector<std::uint8_t> sdu) {
      Packet frame;
      frame.eth.dst = app_server_mac_;
      frame.eth.ethertype = EtherType::kUserPlane;
      frame.payload.reserve(2 + sdu.size());
      frame.payload.push_back(std::uint8_t(ue.value() >> 8));
      frame.payload.push_back(std::uint8_t(ue.value() & 0xFF));
      frame.payload.insert(frame.payload.end(), sdu.begin(), sdu.end());
      nic_.send(std::move(frame));
    });
  }

 private:
  void handle_frame(Packet&& frame) {
    if (frame.eth.ethertype != EtherType::kUserPlane ||
        frame.payload.size() < 2) {
      return;
    }
    const UeId ue{
        std::uint16_t((frame.payload[0] << 8) | frame.payload[1])};
    l2_.send_downlink(ue, std::vector<std::uint8_t>(
                              frame.payload.begin() + 2, frame.payload.end()));
  }

  Nic& nic_;
  L2Process& l2_;
  MacAddr app_server_mac_;
};

// Binds a FunctionPipe to a UE's modem: pipe.send() enqueues uplink,
// downlink SDUs pop out of the pipe's receive handler.
inline std::unique_ptr<FunctionPipe> make_ue_modem_pipe(UserEquipment& ue) {
  auto pipe = std::make_unique<FunctionPipe>();
  pipe->set_sender([&ue](std::vector<std::uint8_t> datagram) {
    ue.send_uplink(std::move(datagram));
  });
  ue.set_downlink_sink([raw = pipe.get()](std::vector<std::uint8_t> sdu) {
    raw->inject(std::move(sdu));
  });
  return pipe;
}

}  // namespace slingshot
