#include "transport/shm_ring.h"

#include <sys/mman.h>

#include <bit>
#include <cstring>

namespace slingshot {
namespace {

// Each record is a u32 length prefix followed by the payload bytes,
// rounded up so prefixes stay 4-byte aligned in the ring.
constexpr std::uint64_t kPrefixBytes = 4;

std::uint64_t padded(std::uint64_t n) { return (n + 3) & ~std::uint64_t{3}; }

}  // namespace

ShmRing ShmRing::create(std::size_t capacity_bytes) {
  std::size_t cap = std::bit_ceil(capacity_bytes < 64 ? 64 : capacity_bytes);
  const std::size_t map_len = sizeof(Header) + cap;
  void* mem = ::mmap(nullptr, map_len, PROT_READ | PROT_WRITE,
                     MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (mem == MAP_FAILED) {
    return {};
  }
  ShmRing ring;
  ring.header_ = new (mem) Header{};
  ring.header_->head.store(0, std::memory_order_relaxed);
  ring.header_->tail.store(0, std::memory_order_relaxed);
  ring.header_->capacity = cap;
  ring.data_ = static_cast<std::uint8_t*>(mem) + sizeof(Header);
  ring.map_len_ = map_len;
  return ring;
}

void ShmRing::copy_in(std::uint64_t pos, std::span<const std::uint8_t> bytes) {
  if (bytes.empty()) {
    return;
  }
  const std::uint64_t cap = header_->capacity;
  const std::uint64_t off = pos & (cap - 1);
  const std::uint64_t first = std::min<std::uint64_t>(bytes.size(), cap - off);
  std::memcpy(data_ + off, bytes.data(), first);
  if (first < bytes.size()) {
    std::memcpy(data_, bytes.data() + first, bytes.size() - first);
  }
}

void ShmRing::copy_out(std::uint64_t pos, std::span<std::uint8_t> bytes) const {
  if (bytes.empty()) {
    return;
  }
  const std::uint64_t cap = header_->capacity;
  const std::uint64_t off = pos & (cap - 1);
  const std::uint64_t first = std::min<std::uint64_t>(bytes.size(), cap - off);
  std::memcpy(bytes.data(), data_ + off, first);
  if (first < bytes.size()) {
    std::memcpy(bytes.data() + first, data_, bytes.size() - first);
  }
}

bool ShmRing::push(std::span<const std::uint8_t> record) {
  if (header_ == nullptr) {
    return false;
  }
  const std::uint64_t need = kPrefixBytes + padded(record.size());
  const std::uint64_t tail = header_->tail.load(std::memory_order_relaxed);
  const std::uint64_t head = header_->head.load(std::memory_order_acquire);
  if (need > header_->capacity - (tail - head)) {
    ++dropped_full_;
    return false;
  }
  const std::uint32_t len = std::uint32_t(record.size());
  std::uint8_t prefix[kPrefixBytes];
  std::memcpy(prefix, &len, sizeof(len));
  copy_in(tail, {prefix, kPrefixBytes});
  copy_in(tail + kPrefixBytes, record);
  // Release: the consumer must see the record bytes before the new tail.
  header_->tail.store(tail + need, std::memory_order_release);
  return true;
}

bool ShmRing::pop(std::vector<std::uint8_t>& out) {
  out.clear();
  if (header_ == nullptr) {
    return false;
  }
  const std::uint64_t head = header_->head.load(std::memory_order_relaxed);
  const std::uint64_t tail = header_->tail.load(std::memory_order_acquire);
  if (tail == head) {
    return false;
  }
  std::uint8_t prefix[kPrefixBytes];
  copy_out(head, {prefix, kPrefixBytes});
  std::uint32_t len = 0;
  std::memcpy(&len, prefix, sizeof(len));
  out.resize(len);
  copy_out(head + kPrefixBytes, out);
  header_->head.store(head + kPrefixBytes + padded(len),
                      std::memory_order_release);
  return true;
}

std::size_t ShmRing::used_bytes() const {
  if (header_ == nullptr) {
    return 0;
  }
  return std::size_t(header_->tail.load(std::memory_order_acquire) -
                     header_->head.load(std::memory_order_acquire));
}

std::size_t ShmRing::free_bytes() const {
  return header_ == nullptr ? 0 : capacity() - used_bytes();
}

void ShmRing::destroy() {
  if (header_ != nullptr) {
    ::munmap(static_cast<void*>(header_), map_len_);
    header_ = nullptr;
    data_ = nullptr;
    map_len_ = 0;
  }
}

}  // namespace slingshot
