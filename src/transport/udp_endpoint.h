// Real UDP socket endpoint for the real-process deployment mode.
//
// The paper's Orion relays FAPI between servers over a lean stateless
// UDP-like transport (§6.1). The simulator models that with Nic/Link;
// this class is the *actual* thing: a datagram socket bound to an
// ephemeral loopback port, with poll()-based timed receive so Orion's
// failure detector can run off real socket silence instead of simulated
// timers.
//
// Fork-friendliness is part of the contract: the RealTestbed launcher
// opens every endpoint before fork(), so each child inherits the bound
// descriptors and no port handshake is needed — a role simply sends to
// the ports recorded in its config. Only the owning role reads its
// endpoint; closing a copy in another process does not disturb the
// owner (separate descriptor tables).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace slingshot {

class UdpEndpoint {
 public:
  // Largest datagram the transport carries (a TX_DATA burst fits well
  // under this; IQ-heavy payloads travel the SHM ring instead).
  static constexpr std::size_t kMaxDatagram = 65536;

  UdpEndpoint() = default;
  ~UdpEndpoint();
  UdpEndpoint(UdpEndpoint&& other) noexcept;
  UdpEndpoint& operator=(UdpEndpoint&& other) noexcept;
  UdpEndpoint(const UdpEndpoint&) = delete;
  UdpEndpoint& operator=(const UdpEndpoint&) = delete;

  // Bind to 127.0.0.1 on an ephemeral port. Returns false (with errno
  // intact) if the socket cannot be created or bound.
  [[nodiscard]] bool open_loopback();
  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  // Port this endpoint receives on (host order); 0 if not open.
  [[nodiscard]] std::uint16_t port() const { return port_; }

  // Send one datagram to 127.0.0.1:dst_port. Returns false on any send
  // error (the transport is fire-and-forget, matching §6.1: no retries,
  // loss is compensated by null injection upstream).
  bool send_to(std::uint16_t dst_port, std::span<const std::uint8_t> bytes);

  // Receive one datagram, waiting up to timeout_ms (0 = pure poll,
  // return immediately). Returns:
  //   > 0  — datagram received; `out` is resized to its length, and
  //          *from_port (if non-null) is the sender's port.
  //   0    — timeout: nothing arrived. This return value *is* the
  //          failure detector's input in real mode.
  //   < 0  — socket error.
  // A datagram longer than kMaxDatagram is truncated by the kernel and
  // counted in truncated_datagrams(); the caller sees the clipped bytes
  // (which then fail the checked FAPI parse).
  int recv(std::vector<std::uint8_t>& out, int timeout_ms,
           std::uint16_t* from_port = nullptr);

  void close();

  [[nodiscard]] std::uint64_t datagrams_sent() const { return sent_; }
  [[nodiscard]] std::uint64_t datagrams_received() const { return received_; }
  [[nodiscard]] std::uint64_t send_errors() const { return send_errors_; }
  [[nodiscard]] std::uint64_t truncated_datagrams() const {
    return truncated_;
  }

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
  std::uint64_t send_errors_ = 0;
  std::uint64_t truncated_ = 0;
};

}  // namespace slingshot
