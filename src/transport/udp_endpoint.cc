#include "transport/udp_endpoint.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace slingshot {

UdpEndpoint::~UdpEndpoint() { close(); }

UdpEndpoint::UdpEndpoint(UdpEndpoint&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)),
      sent_(other.sent_),
      received_(other.received_),
      send_errors_(other.send_errors_),
      truncated_(other.truncated_) {}

UdpEndpoint& UdpEndpoint::operator=(UdpEndpoint&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
    sent_ = other.sent_;
    received_ = other.received_;
    send_errors_ = other.send_errors_;
    truncated_ = other.truncated_;
  }
  return *this;
}

bool UdpEndpoint::open_loopback() {
  close();
  fd_ = ::socket(AF_INET, SOCK_DGRAM, 0);
  if (fd_ < 0) {
    return false;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;  // ephemeral
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    close();
    return false;
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    close();
    return false;
  }
  port_ = ntohs(bound.sin_port);
  return true;
}

bool UdpEndpoint::send_to(std::uint16_t dst_port,
                          std::span<const std::uint8_t> bytes) {
  if (fd_ < 0) {
    ++send_errors_;
    return false;
  }
  sockaddr_in dst{};
  dst.sin_family = AF_INET;
  dst.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  dst.sin_port = htons(dst_port);
  const auto n = ::sendto(fd_, bytes.data(), bytes.size(), 0,
                          reinterpret_cast<const sockaddr*>(&dst),
                          sizeof(dst));
  if (n < 0 || std::size_t(n) != bytes.size()) {
    ++send_errors_;
    return false;
  }
  ++sent_;
  return true;
}

int UdpEndpoint::recv(std::vector<std::uint8_t>& out, int timeout_ms,
                      std::uint16_t* from_port) {
  if (fd_ < 0) {
    return -1;
  }
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready == 0) {
    return 0;  // timeout — the real-mode detector's signal
  }
  if (ready < 0) {
    return -1;
  }
  out.resize(kMaxDatagram);
  sockaddr_in from{};
  socklen_t from_len = sizeof(from);
  const auto n =
      ::recvfrom(fd_, out.data(), out.size(), MSG_TRUNC,
                 reinterpret_cast<sockaddr*>(&from), &from_len);
  if (n < 0) {
    out.clear();
    return -1;
  }
  if (std::size_t(n) > kMaxDatagram) {
    ++truncated_;
    out.resize(kMaxDatagram);
  } else {
    out.resize(std::size_t(n));
  }
  if (from_port != nullptr) {
    *from_port = ntohs(from.sin_port);
  }
  ++received_;
  // A zero-length datagram is valid UDP; report it as received with a
  // positive sentinel so callers can distinguish it from a timeout.
  return n == 0 ? 1 : int(out.size());
}

void UdpEndpoint::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
    port_ = 0;
  }
}

}  // namespace slingshot
