// Modulation-and-coding-scheme table and transport-block sizing.
//
// Our LDPC code is fixed at rate ~1/2, so the MCS ladder varies the
// modulation order (like the upper half of the 5G NR MCS tables).
// `snr_threshold_db` is the approximate decoding threshold the L2's link
// adaptation uses; the *actual* decode outcome is always computed by the
// real receive chain, so a UE scheduled too aggressively genuinely fails
// CRC and goes through HARQ.
#pragma once

#include <array>
#include <cstdint>

#include "phy/modulation.h"

namespace slingshot {

struct McsEntry {
  Modulation modulation = Modulation::kQpsk;
  double code_rate = 0.5;
  double snr_threshold_db = 0.0;  // link-adaptation threshold

  [[nodiscard]] double spectral_efficiency() const {
    return bits_per_symbol(modulation) * code_rate;
  }
};

inline constexpr int kNumMcs = 4;

[[nodiscard]] inline const McsEntry& mcs_entry(std::uint8_t mcs) {
  static const std::array<McsEntry, kNumMcs> kTable{{
      {Modulation::kQpsk, 0.5, 2.0},
      {Modulation::kQam16, 0.5, 9.5},
      {Modulation::kQam64, 0.5, 16.0},
      {Modulation::kQam256, 0.5, 22.5},
  }};
  return kTable[mcs < kNumMcs ? mcs : kNumMcs - 1];
}

// Highest MCS whose threshold (plus margin) the SNR clears.
[[nodiscard]] inline std::uint8_t select_mcs(double snr_db,
                                             double margin_db = 1.0) {
  std::uint8_t best = 0;
  for (std::uint8_t m = 0; m < kNumMcs; ++m) {
    if (snr_db >= mcs_entry(m).snr_threshold_db + margin_db) {
      best = m;
    }
  }
  return best;
}

// Cell-level dimensioning for TB sizing. A 100 MHz µ=1 carrier has 273
// PRBs; a PRB-slot carries ~156 data resource elements (12 subcarriers
// x 13 data symbols).
struct CellDimensions {
  int num_prbs = 273;
  int data_res_per_prb = 156;
};

// Transport-block size in bytes for an allocation of `prbs` PRBs.
[[nodiscard]] inline std::uint32_t tb_size_bytes(std::uint8_t mcs, int prbs,
                                                 const CellDimensions& dims = {}) {
  const auto& entry = mcs_entry(mcs);
  const double bits =
      entry.spectral_efficiency() * double(dims.data_res_per_prb) * prbs;
  const auto bytes = std::uint32_t(bits / 8.0);
  return bytes > 0 ? bytes : 1;
}

}  // namespace slingshot
