// HARQ soft-combining buffers — the inter-TTI PHY state that Slingshot
// deliberately discards at migration (§4.2).
//
// The store keeps accumulated channel LLRs per (UE, HARQ process). On a
// retransmission the receiver chase-combines the new LLRs with the
// buffer, raising the odds of successful decoding. Losing the buffer
// (as a freshly-promoted secondary PHY does) just means the combining
// gain is gone for in-flight processes — decoding fails, CRC catches
// it, and higher layers retransmit, exactly like a burst of bad signal.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace slingshot {

class HarqSoftBufferStore {
 public:
  struct Entry {
    std::vector<float> llrs;
    int transmissions = 0;
  };

  static constexpr int kMaxRetransmissions = 3;  // 1 initial + 3 retx

  [[nodiscard]] Entry* find(UeId ue, HarqId harq) {
    const auto it = buffers_.find(key(ue, harq));
    return it == buffers_.end() ? nullptr : &it->second;
  }
  [[nodiscard]] const Entry* find(UeId ue, HarqId harq) const {
    const auto it = buffers_.find(key(ue, harq));
    return it == buffers_.end() ? nullptr : &it->second;
  }

  // Begin a fresh HARQ sequence (new_data = true): drop any old soft
  // bits for the process.
  void start_new(UeId ue, HarqId harq) { buffers_.erase(key(ue, harq)); }

  void store(UeId ue, HarqId harq, std::vector<float> llrs) {
    auto& entry = buffers_[key(ue, harq)];
    entry.llrs = std::move(llrs);
    ++entry.transmissions;
  }

  void release(UeId ue, HarqId harq) { buffers_.erase(key(ue, harq)); }

  // Discard everything — what PHY migration implies for the destination
  // PHY (it starts with empty buffers) and what a crash does to the
  // primary's.
  void clear() { buffers_.clear(); }

  [[nodiscard]] std::size_t active_processes() const {
    return buffers_.size();
  }

 private:
  [[nodiscard]] static std::uint32_t key(UeId ue, HarqId harq) {
    return (std::uint32_t(ue.value()) << 8) | harq.value();
  }

  std::unordered_map<std::uint32_t, Entry> buffers_;
};

}  // namespace slingshot
