#include "phy/ldpc.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

#include "phy/simd.h"

namespace slingshot {
namespace {
constexpr float kMinSumScale = 0.8F;  // normalized min-sum correction

// Flip `v`'s hard decision: toggle the syndrome bit of every adjacent
// check and keep the unsatisfied-check count current. This is how
// parity tracking stays folded into the update pass — no full
// check_parity walk per iteration.
inline void flip_bit(int v, const std::vector<int>& var_edge_offset,
                     const std::vector<int>& var_edges,
                     const std::vector<int>& edge_check,
                     std::vector<std::uint8_t>& syndrome, int& unsatisfied) {
  const int begin = var_edge_offset[std::size_t(v)];
  const int end = var_edge_offset[std::size_t(v) + 1];
  for (int i = begin; i < end; ++i) {
    const int c = edge_check[std::size_t(var_edges[std::size_t(i)])];
    syndrome[std::size_t(c)] ^= 1U;
    unsatisfied += syndrome[std::size_t(c)] ? 1 : -1;
  }
}

}  // namespace

LdpcCode::LdpcCode(int n, int m, std::uint64_t seed, int wc)
    : n_(n), m_(m), k_(0) {
  if (n <= 0 || m <= 0 || m >= n || wc < 2) {
    throw std::invalid_argument{"LdpcCode: bad parameters"};
  }
  std::mt19937_64 rng{seed};

  // --- Build a (near-)regular parity-check matrix via the permutation
  // construction: each of the n*wc column sockets is matched to a check
  // socket; checks get degree ~ n*wc/m.
  const int total_edges = n * wc;
  std::vector<int> sockets;
  sockets.reserve(std::size_t(total_edges));
  for (int e = 0; e < total_edges; ++e) {
    sockets.push_back(e % m);
  }
  std::shuffle(sockets.begin(), sockets.end(), rng);

  std::vector<std::vector<int>> col_rows{std::size_t(n)};
  int cursor = 0;
  for (int c = 0; c < n; ++c) {
    auto& rows = col_rows[std::size_t(c)];
    for (int j = 0; j < wc; ++j) {
      int row = sockets[std::size_t(cursor + j)];
      // Resolve duplicates within a column by swapping with a random
      // later socket (keeps the degree distribution intact).
      int guard = 0;
      while (std::find(rows.begin(), rows.end(), row) != rows.end() &&
             guard < 64) {
        const auto swap_with =
            cursor + wc +
            int(rng() % std::uint64_t(std::max(1, total_edges - cursor - wc)));
        if (swap_with < total_edges) {
          std::swap(sockets[std::size_t(cursor + j)],
                    sockets[std::size_t(swap_with)]);
          row = sockets[std::size_t(cursor + j)];
        }
        ++guard;
      }
      rows.push_back(row);
    }
    cursor += wc;
  }

  // Per-check variable lists (construction scratch; the decoder works
  // off the flat SoA arrays built below).
  std::vector<std::vector<int>> check_vars{std::size_t(m)};
  for (int c = 0; c < n; ++c) {
    for (const int row : col_rows[std::size_t(c)]) {
      check_vars[std::size_t(row)].push_back(c);
    }
  }

  // Flatten the Tanner graph into SoA edge arrays: edges numbered by
  // (check, position), plus per-variable edge-id lists and the reverse
  // edge->check map used by the fused parity tracking.
  check_edge_offset_.assign(std::size_t(m) + 1, 0);
  for (int c = 0; c < m; ++c) {
    const int deg = int(check_vars[std::size_t(c)].size());
    check_edge_offset_[std::size_t(c) + 1] =
        check_edge_offset_[std::size_t(c)] + deg;
    max_check_degree_ = std::max(max_check_degree_, deg);
  }
  num_edges_ = check_edge_offset_[std::size_t(m)];
  edge_var_.resize(std::size_t(num_edges_));
  edge_check_.resize(std::size_t(num_edges_));
  std::vector<int> var_degree(std::size_t(n), 0);
  for (int c = 0; c < m; ++c) {
    const auto& vars = check_vars[std::size_t(c)];
    const int base = check_edge_offset_[std::size_t(c)];
    for (std::size_t j = 0; j < vars.size(); ++j) {
      edge_var_[std::size_t(base) + j] = vars[j];
      edge_check_[std::size_t(base) + j] = c;
      ++var_degree[std::size_t(vars[j])];
    }
  }
  var_edge_offset_.assign(std::size_t(n) + 1, 0);
  for (int v = 0; v < n; ++v) {
    var_edge_offset_[std::size_t(v) + 1] =
        var_edge_offset_[std::size_t(v)] + var_degree[std::size_t(v)];
  }
  var_edges_.resize(std::size_t(num_edges_));
  std::vector<int> cursor_of_var(var_edge_offset_.begin(),
                                 var_edge_offset_.end() - 1);
  // Second pass in the same (check, position) order as the old
  // vector<vector> build, so each variable sees its edges in an
  // identical order — the flooding schedule's float-summation order
  // (and thus every decode outcome) is unchanged.
  for (int e = 0; e < num_edges_; ++e) {
    var_edges_[std::size_t(cursor_of_var[std::size_t(edge_var_[std::size_t(
        e)])]++)] = e;
  }

  // --- Derive a systematic encoder by Gaussian elimination (RREF) on a
  // dense copy of H. Pivot columns become parity positions.
  std::vector<BitVector> rows(static_cast<std::size_t>(m),
                              BitVector(static_cast<std::size_t>(n)));
  for (int c = 0; c < m; ++c) {
    for (const int v : check_vars[std::size_t(c)]) {
      rows[std::size_t(c)].flip(std::size_t(v));  // flip handles dup edges
    }
  }

  std::vector<bool> is_pivot_col(std::size_t(n), false);
  std::vector<int> pivot_col_of_row;
  int rank = 0;
  for (int col = n - 1; col >= 0 && rank < m; --col) {
    // Pivot from the high columns so low columns stay as info positions.
    int pivot_row = -1;
    for (int r = rank; r < m; ++r) {
      if (rows[std::size_t(r)].get(std::size_t(col))) {
        pivot_row = r;
        break;
      }
    }
    if (pivot_row < 0) {
      continue;
    }
    std::swap(rows[std::size_t(rank)], rows[std::size_t(pivot_row)]);
    for (int r = 0; r < m; ++r) {
      if (r != rank && rows[std::size_t(r)].get(std::size_t(col))) {
        rows[std::size_t(r)] ^= rows[std::size_t(rank)];
      }
    }
    is_pivot_col[std::size_t(col)] = true;
    pivot_col_of_row.push_back(col);
    ++rank;
  }

  info_cols_.clear();
  for (int c = 0; c < n; ++c) {
    if (!is_pivot_col[std::size_t(c)]) {
      info_cols_.push_back(c);
    }
  }
  k_ = int(info_cols_.size());

  // Map each kept row to a parity equation over info-bit indices.
  std::vector<int> info_index_of_col(std::size_t(n), -1);
  for (std::size_t i = 0; i < info_cols_.size(); ++i) {
    info_index_of_col[std::size_t(info_cols_[i])] = int(i);
  }
  parity_cols_ = pivot_col_of_row;
  parity_masks_.clear();
  parity_masks_.reserve(std::size_t(rank));
  for (int r = 0; r < rank; ++r) {
    BitVector mask(static_cast<std::size_t>(k_));
    for (int c = 0; c < n; ++c) {
      if (c != parity_cols_[std::size_t(r)] &&
          rows[std::size_t(r)].get(std::size_t(c))) {
        const int idx = info_index_of_col[std::size_t(c)];
        if (idx < 0) {
          throw std::logic_error{"LdpcCode: non-pivot RREF residue"};
        }
        mask.flip(std::size_t(idx));
      }
    }
    parity_masks_.push_back(std::move(mask));
  }
}

std::vector<std::uint8_t> LdpcCode::encode(
    std::span<const std::uint8_t> info_bits) const {
  if (int(info_bits.size()) != k_) {
    throw std::invalid_argument{"LdpcCode::encode: wrong info length"};
  }
  BitVector u(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    if (info_bits[std::size_t(i)] & 1U) {
      u.set(std::size_t(i), true);
    }
  }
  std::vector<std::uint8_t> cw(std::size_t(n_), 0);
  for (int i = 0; i < k_; ++i) {
    cw[std::size_t(info_cols_[std::size_t(i)])] = info_bits[std::size_t(i)] & 1U;
  }
  for (std::size_t r = 0; r < parity_masks_.size(); ++r) {
    cw[std::size_t(parity_cols_[r])] =
        parity_masks_[r].dot(u) ? 1 : 0;
  }
  return cw;
}

std::vector<std::uint8_t> LdpcCode::extract_info(
    std::span<const std::uint8_t> codeword) const {
  std::vector<std::uint8_t> info;
  extract_info_into(codeword, info);
  return info;
}

void LdpcCode::extract_info_into(std::span<const std::uint8_t> codeword,
                                 std::vector<std::uint8_t>& out) const {
  out.resize(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    out[std::size_t(i)] = codeword[std::size_t(info_cols_[std::size_t(i)])] & 1U;
  }
}

bool LdpcCode::check_parity(std::span<const std::uint8_t> cw) const {
  for (int c = 0; c < m_; ++c) {
    unsigned parity = 0;
    for (int e = check_edge_offset_[std::size_t(c)];
         e < check_edge_offset_[std::size_t(c) + 1]; ++e) {
      parity ^= cw[std::size_t(edge_var_[std::size_t(e)])] & 1U;
    }
    if (parity != 0) {
      return false;
    }
  }
  return true;
}

LdpcCode::DecodeStatus LdpcCode::decode_into(std::span<const float> llr,
                                             int max_iterations,
                                             DecodeWorkspace& ws,
                                             LdpcSchedule schedule) const {
  if (int(llr.size()) != n_) {
    throw std::invalid_argument{"LdpcCode::decode: wrong LLR length"};
  }
  ws.codeword.assign(std::size_t(n_), 0);
  ws.var_to_check.resize(std::size_t(num_edges_));
  ws.check_to_var.resize(std::size_t(num_edges_));
  ws.syndrome.assign(std::size_t(m_), 0);

  DecodeStatus status;
  // All-zero hard decisions satisfy every check, so the live
  // unsatisfied-check count starts at 0 and flip_bit() keeps it exact.
  int unsatisfied = 0;

  // SIMD-dispatched check-node kernel; bit-exact against the scalar
  // reference at every level (see phy/simd.h), so decode outcomes —
  // and the golden trace that pins them — don't depend on the CPU.
  const auto& kernels = simd::kernels();

  if (schedule == LdpcSchedule::kFlooding) {
    // Init var->check with channel LLRs.
    for (int e = 0; e < num_edges_; ++e) {
      ws.var_to_check[std::size_t(e)] = llr[std::size_t(edge_var_[std::size_t(e)])];
    }

    for (int iter = 1; iter <= max_iterations; ++iter) {
      // Check-node update (normalized min-sum with exclusion). Each
      // check's edges are contiguous in the SoA arrays, so the kernel
      // runs straight over the message slabs.
      for (int c = 0; c < m_; ++c) {
        const int base = check_edge_offset_[std::size_t(c)];
        const int deg = check_edge_offset_[std::size_t(c) + 1] - base;
        kernels.cn_minsum(&ws.var_to_check[std::size_t(base)],
                          &ws.check_to_var[std::size_t(base)], deg,
                          kMinSumScale);
      }

      // Variable-node update; parity tracked on the fly as hard
      // decisions flip.
      for (int v = 0; v < n_; ++v) {
        float total = llr[std::size_t(v)];
        const int begin = var_edge_offset_[std::size_t(v)];
        const int end = var_edge_offset_[std::size_t(v) + 1];
        for (int i = begin; i < end; ++i) {
          total += ws.check_to_var[std::size_t(var_edges_[std::size_t(i)])];
        }
        for (int i = begin; i < end; ++i) {
          const int e = var_edges_[std::size_t(i)];
          ws.var_to_check[std::size_t(e)] =
              total - ws.check_to_var[std::size_t(e)];
        }
        const std::uint8_t bit = total < 0.0F ? 1 : 0;
        if (bit != ws.codeword[std::size_t(v)]) {
          ws.codeword[std::size_t(v)] = bit;
          flip_bit(v, var_edge_offset_, var_edges_, edge_check_, ws.syndrome,
                   unsatisfied);
        }
      }

      status.iterations_used = iter;
      if (unsatisfied == 0) {
        status.parity_ok = true;
        return status;
      }
    }
    status.parity_ok = unsatisfied == 0;
    return status;
  }

  // --- Layered (serial-C) schedule: each check updates against the
  // live posterior, so beliefs propagate within an iteration.
  ws.posterior.assign(llr.begin(), llr.end());
  std::fill(ws.check_to_var.begin(), ws.check_to_var.end(), 0.0F);
  ws.layer_q.resize(std::size_t(max_check_degree_));
  ws.layer_r.resize(std::size_t(max_check_degree_));
  // Seed hard decisions (and the tracked syndrome) from the channel.
  for (int v = 0; v < n_; ++v) {
    if (llr[std::size_t(v)] < 0.0F) {
      ws.codeword[std::size_t(v)] = 1;
      flip_bit(v, var_edge_offset_, var_edges_, edge_check_, ws.syndrome,
               unsatisfied);
    }
  }

  for (int iter = 1; iter <= max_iterations; ++iter) {
    for (int c = 0; c < m_; ++c) {
      const int base = check_edge_offset_[std::size_t(c)];
      const int deg = check_edge_offset_[std::size_t(c) + 1] - base;
      // Gather this check's inputs from the live posterior, run the
      // min-sum kernel, then commit messages/posterior/bit flips.
      for (int j = 0; j < deg; ++j) {
        const int e = base + j;
        ws.layer_q[std::size_t(j)] =
            ws.posterior[std::size_t(edge_var_[std::size_t(e)])] -
            ws.check_to_var[std::size_t(e)];
      }
      kernels.cn_minsum(ws.layer_q.data(), ws.layer_r.data(), deg,
                        kMinSumScale);
      for (int j = 0; j < deg; ++j) {
        const int e = base + j;
        const int v = edge_var_[std::size_t(e)];
        const float q = ws.layer_q[std::size_t(j)];
        const float r = ws.layer_r[std::size_t(j)];
        ws.check_to_var[std::size_t(e)] = r;
        const float post = q + r;
        ws.posterior[std::size_t(v)] = post;
        const std::uint8_t bit = post < 0.0F ? 1 : 0;
        if (bit != ws.codeword[std::size_t(v)]) {
          ws.codeword[std::size_t(v)] = bit;
          flip_bit(v, var_edge_offset_, var_edges_, edge_check_, ws.syndrome,
                   unsatisfied);
        }
      }
    }
    status.iterations_used = iter;
    if (unsatisfied == 0) {
      status.parity_ok = true;
      return status;
    }
  }
  status.parity_ok = unsatisfied == 0;
  return status;
}

LdpcCode::DecodeResult LdpcCode::decode(std::span<const float> llr,
                                        int max_iterations) const {
  thread_local DecodeWorkspace ws;
  const auto status = decode_into(llr, max_iterations, ws);
  DecodeResult result;
  result.codeword = ws.codeword;
  result.parity_ok = status.parity_ok;
  result.iterations_used = status.iterations_used;
  return result;
}

const LdpcCode& LdpcCode::standard() {
  // n = 648, m = 324, rate ~1/2 (like the 802.11n short code size).
  static const LdpcCode code{648, 324, /*seed=*/0x5D1A9C0DEULL};
  return code;
}

}  // namespace slingshot
