#include "phy/ldpc.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <random>
#include <stdexcept>

namespace slingshot {
namespace {
constexpr float kMinSumScale = 0.8F;  // normalized min-sum correction
}

LdpcCode::LdpcCode(int n, int m, std::uint64_t seed, int wc)
    : n_(n), m_(m), k_(0) {
  if (n <= 0 || m <= 0 || m >= n || wc < 2) {
    throw std::invalid_argument{"LdpcCode: bad parameters"};
  }
  std::mt19937_64 rng{seed};

  // --- Build a (near-)regular parity-check matrix via the permutation
  // construction: each of the n*wc column sockets is matched to a check
  // socket; checks get degree ~ n*wc/m.
  const int total_edges = n * wc;
  std::vector<int> sockets;
  sockets.reserve(std::size_t(total_edges));
  for (int e = 0; e < total_edges; ++e) {
    sockets.push_back(e % m);
  }
  std::shuffle(sockets.begin(), sockets.end(), rng);

  std::vector<std::vector<int>> col_rows{std::size_t(n)};
  int cursor = 0;
  for (int c = 0; c < n; ++c) {
    auto& rows = col_rows[std::size_t(c)];
    for (int j = 0; j < wc; ++j) {
      int row = sockets[std::size_t(cursor + j)];
      // Resolve duplicates within a column by swapping with a random
      // later socket (keeps the degree distribution intact).
      int guard = 0;
      while (std::find(rows.begin(), rows.end(), row) != rows.end() &&
             guard < 64) {
        const auto swap_with =
            cursor + wc +
            int(rng() % std::uint64_t(std::max(1, total_edges - cursor - wc)));
        if (swap_with < total_edges) {
          std::swap(sockets[std::size_t(cursor + j)],
                    sockets[std::size_t(swap_with)]);
          row = sockets[std::size_t(cursor + j)];
        }
        ++guard;
      }
      rows.push_back(row);
    }
    cursor += wc;
  }

  check_vars_.assign(std::size_t(m), {});
  for (int c = 0; c < n; ++c) {
    for (const int row : col_rows[std::size_t(c)]) {
      check_vars_[std::size_t(row)].push_back(c);
    }
  }

  // Flatten edges and build per-variable adjacency.
  check_edge_offset_.assign(std::size_t(m) + 1, 0);
  for (int c = 0; c < m; ++c) {
    check_edge_offset_[std::size_t(c) + 1] =
        check_edge_offset_[std::size_t(c)] +
        int(check_vars_[std::size_t(c)].size());
  }
  num_edges_ = check_edge_offset_[std::size_t(m)];
  var_edges_.assign(std::size_t(n), {});
  for (int c = 0; c < m; ++c) {
    const auto& vars = check_vars_[std::size_t(c)];
    for (std::size_t j = 0; j < vars.size(); ++j) {
      var_edges_[std::size_t(vars[j])].push_back(
          check_edge_offset_[std::size_t(c)] + int(j));
    }
  }

  // --- Derive a systematic encoder by Gaussian elimination (RREF) on a
  // dense copy of H. Pivot columns become parity positions.
  std::vector<BitVector> rows(static_cast<std::size_t>(m),
                              BitVector(static_cast<std::size_t>(n)));
  for (int c = 0; c < m; ++c) {
    for (const int v : check_vars_[std::size_t(c)]) {
      rows[std::size_t(c)].flip(std::size_t(v));  // flip handles dup edges
    }
  }

  std::vector<bool> is_pivot_col(std::size_t(n), false);
  std::vector<int> pivot_col_of_row;
  int rank = 0;
  for (int col = n - 1; col >= 0 && rank < m; --col) {
    // Pivot from the high columns so low columns stay as info positions.
    int pivot_row = -1;
    for (int r = rank; r < m; ++r) {
      if (rows[std::size_t(r)].get(std::size_t(col))) {
        pivot_row = r;
        break;
      }
    }
    if (pivot_row < 0) {
      continue;
    }
    std::swap(rows[std::size_t(rank)], rows[std::size_t(pivot_row)]);
    for (int r = 0; r < m; ++r) {
      if (r != rank && rows[std::size_t(r)].get(std::size_t(col))) {
        rows[std::size_t(r)] ^= rows[std::size_t(rank)];
      }
    }
    is_pivot_col[std::size_t(col)] = true;
    pivot_col_of_row.push_back(col);
    ++rank;
  }

  info_cols_.clear();
  for (int c = 0; c < n; ++c) {
    if (!is_pivot_col[std::size_t(c)]) {
      info_cols_.push_back(c);
    }
  }
  k_ = int(info_cols_.size());

  // Map each kept row to a parity equation over info-bit indices.
  std::vector<int> info_index_of_col(std::size_t(n), -1);
  for (std::size_t i = 0; i < info_cols_.size(); ++i) {
    info_index_of_col[std::size_t(info_cols_[i])] = int(i);
  }
  parity_cols_ = pivot_col_of_row;
  parity_masks_.clear();
  parity_masks_.reserve(std::size_t(rank));
  for (int r = 0; r < rank; ++r) {
    BitVector mask(static_cast<std::size_t>(k_));
    for (int c = 0; c < n; ++c) {
      if (c != parity_cols_[std::size_t(r)] &&
          rows[std::size_t(r)].get(std::size_t(c))) {
        const int idx = info_index_of_col[std::size_t(c)];
        if (idx < 0) {
          throw std::logic_error{"LdpcCode: non-pivot RREF residue"};
        }
        mask.flip(std::size_t(idx));
      }
    }
    parity_masks_.push_back(std::move(mask));
  }
}

std::vector<std::uint8_t> LdpcCode::encode(
    std::span<const std::uint8_t> info_bits) const {
  if (int(info_bits.size()) != k_) {
    throw std::invalid_argument{"LdpcCode::encode: wrong info length"};
  }
  BitVector u(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    if (info_bits[std::size_t(i)] & 1U) {
      u.set(std::size_t(i), true);
    }
  }
  std::vector<std::uint8_t> cw(std::size_t(n_), 0);
  for (int i = 0; i < k_; ++i) {
    cw[std::size_t(info_cols_[std::size_t(i)])] = info_bits[std::size_t(i)] & 1U;
  }
  for (std::size_t r = 0; r < parity_masks_.size(); ++r) {
    cw[std::size_t(parity_cols_[r])] =
        parity_masks_[r].dot(u) ? 1 : 0;
  }
  return cw;
}

std::vector<std::uint8_t> LdpcCode::extract_info(
    std::span<const std::uint8_t> codeword) const {
  std::vector<std::uint8_t> info(static_cast<std::size_t>(k_));
  for (int i = 0; i < k_; ++i) {
    info[std::size_t(i)] = codeword[std::size_t(info_cols_[std::size_t(i)])] & 1U;
  }
  return info;
}

bool LdpcCode::check_parity(std::span<const std::uint8_t> cw) const {
  for (const auto& vars : check_vars_) {
    unsigned parity = 0;
    for (const int v : vars) {
      parity ^= cw[std::size_t(v)] & 1U;
    }
    if (parity != 0) {
      return false;
    }
  }
  return true;
}

LdpcCode::DecodeResult LdpcCode::decode(std::span<const float> llr,
                                        int max_iterations) const {
  if (int(llr.size()) != n_) {
    throw std::invalid_argument{"LdpcCode::decode: wrong LLR length"};
  }
  DecodeResult result;
  result.codeword.assign(std::size_t(n_), 0);

  // Messages indexed by global edge id.
  std::vector<float> var_to_check(static_cast<std::size_t>(num_edges_));
  std::vector<float> check_to_var(std::size_t(num_edges_), 0.0F);

  // Init var->check with channel LLRs.
  for (int v = 0; v < n_; ++v) {
    for (const int e : var_edges_[std::size_t(v)]) {
      var_to_check[std::size_t(e)] = llr[std::size_t(v)];
    }
  }

  std::vector<float> posterior(static_cast<std::size_t>(n_));
  for (int iter = 1; iter <= max_iterations; ++iter) {
    // Check-node update (normalized min-sum with exclusion).
    for (int c = 0; c < m_; ++c) {
      const auto& vars = check_vars_[std::size_t(c)];
      const int base = check_edge_offset_[std::size_t(c)];
      float min1 = 1e30F;
      float min2 = 1e30F;
      int min_pos = -1;
      unsigned sign_all = 0;
      for (std::size_t j = 0; j < vars.size(); ++j) {
        const float q = var_to_check[std::size_t(base) + j];
        const float mag = std::fabs(q);
        if (q < 0.0F) {
          sign_all ^= 1U;
        }
        if (mag < min1) {
          min2 = min1;
          min1 = mag;
          min_pos = int(j);
        } else if (mag < min2) {
          min2 = mag;
        }
      }
      for (std::size_t j = 0; j < vars.size(); ++j) {
        const float q = var_to_check[std::size_t(base) + j];
        const unsigned sign_excl = sign_all ^ (q < 0.0F ? 1U : 0U);
        const float mag = (int(j) == min_pos) ? min2 : min1;
        check_to_var[std::size_t(base) + j] =
            (sign_excl ? -1.0F : 1.0F) * kMinSumScale * mag;
      }
    }

    // Variable-node update + posterior.
    for (int v = 0; v < n_; ++v) {
      float total = llr[std::size_t(v)];
      for (const int e : var_edges_[std::size_t(v)]) {
        total += check_to_var[std::size_t(e)];
      }
      posterior[std::size_t(v)] = total;
      for (const int e : var_edges_[std::size_t(v)]) {
        var_to_check[std::size_t(e)] = total - check_to_var[std::size_t(e)];
      }
      result.codeword[std::size_t(v)] = total < 0.0F ? 1 : 0;
    }

    result.iterations_used = iter;
    if (check_parity(result.codeword)) {
      result.parity_ok = true;
      return result;
    }
  }
  result.parity_ok = check_parity(result.codeword);
  return result;
}

const LdpcCode& LdpcCode::standard() {
  // n = 648, m = 324, rate ~1/2 (like the 802.11n short code size).
  static const LdpcCode code{648, 324, /*seed=*/0x5D1A9C0DEULL};
  return code;
}

}  // namespace slingshot
