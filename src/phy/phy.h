// The PHY process — a software stand-in for a production PHY like Intel
// FlexRAN, faithful to the behaviours Slingshot depends on:
//
//  * Hard real-time slot cadence: a slot task runs every TTI; DL
//    fronthaul packets (control plane every slot, user plane when there
//    is DL data) are emitted with realistic intra-slot timing/jitter —
//    the packet stream the in-switch failure detector watches.
//  * The FAPI contract: the PHY must receive UL_TTI and DL_TTI requests
//    for every slot; after a configurable number of starved slots it
//    crashes (FlexRAN behaviour, §6.2). Null requests (zero PDUs) are
//    valid and generate no signal-processing work.
//  * Pipelined slot processing (§7, Fig 7): uplink data for slot N is
//    decoded and indicated ul_pipeline_slots later, so a draining
//    primary keeps producing results for pre-migration slots.
//  * Inter-TTI soft state only: per-UE SNR moving-average filters and
//    HARQ soft-combining buffers (§4.2) — all discardable.
//  * Fail-stop crash injection (kill()) for failover experiments.
//
// All uplink signal processing is real: channel estimation,
// equalization, soft demapping, HARQ combining, LDPC decoding, CRC.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "common/time.h"
#include "common/types.h"
#include "fapi/channel.h"
#include "fapi/fapi.h"
#include "fronthaul/oran.h"
#include "net/nic.h"
#include "phy/harq.h"
#include "phy/mcs.h"
#include "phy/tb_codec.h"
#include "sim/simulator.h"

namespace slingshot {

struct PhyConfig {
  SlotConfig slots{};
  int ldpc_max_iters = 8;        // the "FEC iterations" upgrade knob
  int ul_pipeline_slots = 2;     // UL slot N indicated at N+2 (Fig 7)
  bool crash_on_fapi_starvation = true;
  int crash_after_missing_slots = 4;
  double default_snr_db = 5.0;   // SNR filter value before convergence
  double snr_filter_alpha = 0.25;

  // Intra-slot emission schedule for DL fronthaul packets. A healthy
  // FlexRAN-like PHY emits several DL packets per slot; the paper
  // measures a 393 µs max inter-packet gap across idle and busy slots.
  Nanos cplane_offset = 30'000;       // scheduling control, early in slot
  Nanos uplane_offset = 120'000;      // DL data symbols
  Nanos midslot_sync_offset = 260'000;  // SSB/CSI-RS-like always-on signal
  Nanos tx_jitter = 35'000;           // uniform jitter applied to each

  Nanos ul_indication_offset = 80'000;  // after decode-deadline boundary

  // O-RAN BFP compression applied to downlink U-plane IQ (0 = off).
  // 9-bit mantissas are the common deployment choice.
  std::uint8_t dl_bfp_mantissa_bits = 9;

  // Identity reported on the observability timeline (kPhyDown events);
  // 0 = unidentified (events suppressed). Deployment config, not PHY
  // behaviour — no effect on processing.
  std::uint8_t obs_phy_id = 0;
};

struct PhyStats {
  std::int64_t slots_processed = 0;
  std::int64_t work_slots = 0;   // slots with non-null FAPI work
  std::int64_t null_slots = 0;   // slots kept alive by null FAPI only
  std::int64_t ul_tbs_decoded = 0;
  std::int64_t ul_crc_ok = 0;
  std::int64_t ul_crc_fail = 0;
  std::int64_t ul_missing_sections = 0;  // granted but no signal arrived
  std::int64_t dl_tbs_encoded = 0;
  std::int64_t dl_bulk_sections = 0;  // zero-IQ bulk markers emitted
  std::int64_t harq_combines = 0;
  std::int64_t fapi_starved_slots = 0;
  std::int64_t late_fapi_dropped = 0;
  std::int64_t decode_iterations = 0;
  // Simulated compute-work units (codec operations); the basis for the
  // §8.5 secondary-PHY overhead measurement.
  double work_units = 0.0;
};

class PhyProcess final : public FapiSink {
 public:
  PhyProcess(Simulator& sim, std::string name, PhyConfig config, Nic& nic);

  // ---- Wiring ----
  // Where this PHY sends FAPI indications (PHY-side Orion or the L2).
  void connect_fapi_out(ShmFapiPipe* pipe) { fapi_out_ = pipe; }
  // Fronthaul MAC of the RU serving carrier `ru` (DL frames go there).
  void add_ru_binding(RuId ru, MacAddr ru_mac);

  // ---- Lifecycle ----
  void power_on();  // start the slot task at the next slot boundary
  void kill();      // fail-stop crash (SIGKILL model)
  // Fresh process start after a crash: all carrier and soft state is
  // gone; the process waits for CONFIG/START (which Orion replays from
  // its stored init messages, §6.3).
  void restart();
  [[nodiscard]] bool alive() const { return alive_; }
  [[nodiscard]] const std::string& name() const { return name_; }

  // ---- Knobs ----
  void set_ldpc_max_iters(int iters) { config_.ldpc_max_iters = iters; }
  [[nodiscard]] int ldpc_max_iters() const { return config_.ldpc_max_iters; }

  // ---- FAPI in (requests from L2/Orion) ----
  void on_fapi(FapiMessage&& msg) override;

  [[nodiscard]] const PhyStats& stats() const { return stats_; }
  [[nodiscard]] const PhyConfig& config() const { return config_; }
  [[nodiscard]] MacAddr mac() const { return nic_.mac(); }

  // Current filtered SNR for a UE on a carrier (for tests/benches).
  [[nodiscard]] double filtered_snr_db(RuId ru, UeId ue) const;

  // ORACLE (ablation only): copy the inter-TTI soft state — HARQ soft
  // buffers and SNR filters — from another PHY. Slingshot deliberately
  // does NOT do this (§4); bench/abl_harq_state quantifies how little
  // it buys.
  void transfer_soft_state_from(const PhyProcess& other);

 private:
  struct CarrierState {
    CarrierConfig config;
    MacAddr ru_mac;
    bool configured = false;
    bool started = false;
    bool fapi_seen = false;
    int missing_streak = 0;
    std::map<std::int64_t, DlTtiRequest> dl_reqs;
    std::map<std::int64_t, UlTtiRequest> ul_reqs;
    std::map<std::int64_t, TxDataRequest> tx_data;
    std::vector<UlGrant> pending_grant_announcements;
    std::map<std::int64_t, std::vector<UPlaneSection>> ul_rx;
    HarqSoftBufferStore harq;
    std::unordered_map<std::uint16_t, Ewma> snr_filters;
  };

  // One slot-decode task: staged serially in PDU order, decoded (maybe
  // in parallel — see decode_uplink), committed serially in PDU order.
  struct DecodeTask {
    const TtiPdu* pdu = nullptr;
    const UPlaneSection* section = nullptr;  // null: granted, no signal
    const std::vector<float>* prior = nullptr;  // HARQ soft buffer
    Ewma* filter = nullptr;                  // per-UE SNR filter
    Modulation mod = Modulation::kQpsk;
    TbDecodeResult result;
  };

  void on_slot(std::int64_t slot);
  void process_carrier_slot(CarrierState& carrier, std::int64_t slot);
  void emit_downlink(CarrierState& carrier, std::int64_t slot,
                     const DlTtiRequest* dl_req, const TxDataRequest* tx);
  void decode_uplink(CarrierState& carrier, std::int64_t decode_slot);
  void handle_fronthaul_frame(Packet&& frame);
  void send_indication(FapiMessage&& msg);
  [[nodiscard]] Nanos jitter();

  Simulator& sim_;
  std::string name_;
  PhyConfig config_;
  Nic& nic_;
  ShmFapiPipe* fapi_out_ = nullptr;
  RngStream jitter_rng_;
  bool alive_ = false;
  EventHandle slot_task_;
  std::map<RuId, CarrierState> carriers_;
  PhyStats stats_;
  // Reused across every UL TB decode: zero per-decode heap traffic.
  // One workspace per fork-join worker (index = worker id); grown
  // lazily to the attached pool's width, [0] serves the serial path.
  std::vector<TbDecodeWorkspace> worker_ws_{1};
  // Per-slot task list, reused across slots (capacity persists).
  std::vector<DecodeTask> decode_tasks_;
};

}  // namespace slingshot
