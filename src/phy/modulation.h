// Gray-mapped square QAM modulation and soft (max-log LLR) demapping.
//
// 5G NR data channels use QPSK, 16-QAM, 64-QAM and 256-QAM; all are
// separable into two Gray-coded PAM dimensions, which is how the
// demapper computes per-bit LLRs cheaply.
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

namespace slingshot {

enum class Modulation : std::uint8_t {
  kQpsk = 2,    // 2 bits/symbol
  kQam16 = 4,
  kQam64 = 6,
  kQam256 = 8,
};

[[nodiscard]] constexpr int bits_per_symbol(Modulation mod) {
  return int(mod);
}
[[nodiscard]] const char* modulation_name(Modulation mod);

class Modulator {
 public:
  explicit Modulator(Modulation mod);

  [[nodiscard]] Modulation modulation() const { return mod_; }

  // Map bits (0/1 values, length must be a multiple of bits_per_symbol)
  // to unit-average-energy symbols.
  [[nodiscard]] std::vector<std::complex<float>> modulate(
      std::span<const std::uint8_t> bits) const;

  // Max-log LLRs for each transmitted bit given received symbols and the
  // per-symbol complex-noise variance (total across both dimensions).
  // Positive LLR means "bit 0 more likely".
  [[nodiscard]] std::vector<float> demap(
      std::span<const std::complex<float>> symbols,
      double noise_variance) const;
  // Non-allocating variant for the PHY's per-slot hot path: writes into
  // `out` (resized to symbols * bits_per_symbol).
  void demap_into(std::span<const std::complex<float>> symbols,
                  double noise_variance, std::vector<float>& out) const;

 private:
  Modulation mod_;
  int bits_per_dim_;                 // bits per PAM dimension
  std::vector<float> levels_;        // PAM level for each bit pattern
  // levels_[pattern] where pattern is the bits of one dimension packed
  // MSB-first; Gray mapping is baked into the table.
};

// Shared immutable Modulator for each modulation order — spares the
// per-TB-codec-call construction (and its level-table allocation) on
// the decode hot path.
[[nodiscard]] const Modulator& modulator_for(Modulation mod);

}  // namespace slingshot
