#include "phy/simd.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <type_traits>

#if defined(__x86_64__) || defined(__i386__)
#define SLINGSHOT_SIMD_X86 1
#include <immintrin.h>
#endif

namespace slingshot::simd {
namespace {

// ---------------------------------------------------------------------
// Scalar reference kernels. These ARE the semantics: every vector
// implementation below must match them bit-for-bit on finite inputs.
// ---------------------------------------------------------------------

void cn_minsum_scalar(const float* q, float* r, int deg, float scale) {
  float min1 = 1e30F;
  float min2 = 1e30F;
  int min_pos = -1;
  unsigned sign_all = 0;
  for (int j = 0; j < deg; ++j) {
    const float v = q[std::size_t(j)];
    const float mag = std::fabs(v);
    if (v < 0.0F) {
      sign_all ^= 1U;
    }
    if (mag < min1) {
      min2 = min1;
      min1 = mag;
      min_pos = j;
    } else if (mag < min2) {
      min2 = mag;
    }
  }
  for (int j = 0; j < deg; ++j) {
    const float v = q[std::size_t(j)];
    const unsigned sign_excl = sign_all ^ (v < 0.0F ? 1U : 0U);
    const float mag = (j == min_pos) ? min2 : min1;
    r[std::size_t(j)] = (sign_excl ? -1.0F : 1.0F) * scale * mag;
  }
}

// One PAM dimension of one symbol: max-log LLR per bit position.
void demap_dim_scalar(float y, const float* levels, int bits_per_dim,
                      double sigma2, float* dst) {
  const int num_levels = 1 << bits_per_dim;
  for (int b = 0; b < bits_per_dim; ++b) {
    float best0 = 1e30F;
    float best1 = 1e30F;
    for (int pattern = 0; pattern < num_levels; ++pattern) {
      const float d = y - levels[std::size_t(pattern)];
      const float metric = d * d;
      const bool bit = (pattern >> (bits_per_dim - 1 - b)) & 1;
      if (bit) {
        best1 = std::min(best1, metric);
      } else {
        best0 = std::min(best0, metric);
      }
    }
    dst[std::size_t(b)] = float((best1 - best0) / (2.0 * sigma2));
  }
}

void demap_soft_scalar(const std::complex<float>* symbols, std::size_t count,
                       const float* levels, int bits_per_dim, double sigma2,
                       float* out) {
  const std::size_t bps = 2 * std::size_t(bits_per_dim);
  for (std::size_t s = 0; s < count; ++s) {
    float* dst = out + s * bps;
    demap_dim_scalar(symbols[s].real(), levels, bits_per_dim, sigma2, dst);
    demap_dim_scalar(symbols[s].imag(), levels, bits_per_dim, sigma2,
                     dst + bits_per_dim);
  }
}

std::size_t deadline_scan_scalar(const std::int64_t* deadlines, std::size_t n,
                                 std::int64_t now, std::uint32_t* hits) {
  std::size_t count = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::int64_t d = deadlines[i];
    if (d >= 0 && d <= now) {
      hits[count++] = std::uint32_t(i);
    }
  }
  return count;
}

void ar1_update_scalar(float* x, std::size_t n, float mean, float rho,
                       const float* innov) {
  for (std::size_t i = 0; i < n; ++i) {
    x[i] = mean + rho * (x[i] - mean) + innov[i];
  }
}

float peak_abs_scalar(const float* x, std::size_t n) {
  float peak = 0.0F;
  for (std::size_t i = 0; i < n; ++i) {
    peak = std::max(peak, std::fabs(x[i]));
  }
  return peak;
}

void bfp_quantize_scalar(const float* x, std::size_t n, double inv_scale,
                         std::int32_t max_m, std::int32_t* q) {
  for (std::size_t i = 0; i < n; ++i) {
    // inv_scale is 2^-e, so the product equals double(x[i]) / 2^e
    // exactly: both forms are a pure exponent shift.
    const long v = std::lround(double(x[i]) * inv_scale);
    q[i] = std::int32_t(std::clamp<long>(v, -long(max_m), long(max_m)));
  }
}

void bfp_dequantize_scalar(const std::int32_t* q, std::size_t n, float scale,
                           float* out) {
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = float(q[i]) * scale;
  }
}

// 64-bit word-level MSB-first packer: accumulate mantissas into a shift
// register and flush whole bytes. The accumulator never exceeds
// 7 + 16 bits, and the only per-element control flow is the byte flush
// (at most two iterations) — no per-bit branches. Templated on the
// width so every shift and the flush trip count are compile-time
// constants; the public entry points dispatch once per call, which for
// a PRB block amortizes over 24 mantissas.
template <int M>
std::size_t bfp_pack_words(const std::int32_t* q, std::size_t n,
                           std::uint8_t* dst) {
  constexpr auto kMask = std::uint32_t((1U << M) - 1U);
  std::uint64_t acc = 0;
  int bits = 0;
  std::uint8_t* p = dst;
  for (std::size_t i = 0; i < n; ++i) {
    acc = (acc << M) | (std::uint32_t(q[i]) & kMask);
    bits += M;
    while (bits >= 8) {
      bits -= 8;
      *p++ = std::uint8_t(acc >> bits);
    }
  }
  if (bits > 0) {
    *p++ = std::uint8_t(acc << (8 - bits));
  }
  return std::size_t(p - dst);
}

template <int M>
void bfp_unpack_words(const std::uint8_t* src, std::size_t n,
                      std::int32_t* q) {
  constexpr auto kMask = std::uint32_t((1U << M) - 1U);
  constexpr int kShift = 32 - M;
  std::uint64_t acc = 0;
  int bits = 0;
  const std::uint8_t* p = src;
  for (std::size_t i = 0; i < n; ++i) {
    while (bits < M) {
      acc = (acc << 8) | *p++;
      bits += 8;
    }
    bits -= M;
    const auto raw = std::uint32_t(acc >> bits) & kMask;
    // Sign-extend the M-bit value (arithmetic shift; C++20 guarantees
    // two's complement).
    q[i] = std::int32_t(raw << kShift) >> kShift;
  }
}

template <typename F>
decltype(auto) with_bfp_width(int m, F&& f) {
  switch (m) {
    case 2: return f(std::integral_constant<int, 2>{});
    case 3: return f(std::integral_constant<int, 3>{});
    case 4: return f(std::integral_constant<int, 4>{});
    case 5: return f(std::integral_constant<int, 5>{});
    case 6: return f(std::integral_constant<int, 6>{});
    case 7: return f(std::integral_constant<int, 7>{});
    case 8: return f(std::integral_constant<int, 8>{});
    case 9: return f(std::integral_constant<int, 9>{});
    case 10: return f(std::integral_constant<int, 10>{});
    case 11: return f(std::integral_constant<int, 11>{});
    case 12: return f(std::integral_constant<int, 12>{});
    case 13: return f(std::integral_constant<int, 13>{});
    case 14: return f(std::integral_constant<int, 14>{});
    case 15: return f(std::integral_constant<int, 15>{});
    default: return f(std::integral_constant<int, 16>{});
  }
}

std::size_t bfp_pack_scalar(const std::int32_t* q, std::size_t n, int m,
                            std::uint8_t* dst) {
  return with_bfp_width(m, [&](auto width) {
    return bfp_pack_words<decltype(width)::value>(q, n, dst);
  });
}

void bfp_unpack_scalar(const std::uint8_t* src, std::size_t n, int m,
                       std::int32_t* q) {
  with_bfp_width(m, [&](auto width) {
    bfp_unpack_words<decltype(width)::value>(src, n, q);
  });
}

constexpr Kernels kScalarKernels{
    cn_minsum_scalar,  demap_soft_scalar,    deadline_scan_scalar,
    ar1_update_scalar, peak_abs_scalar,      bfp_quantize_scalar,
    bfp_dequantize_scalar, bfp_pack_scalar,  bfp_unpack_scalar};

#if SLINGSHOT_SIMD_X86

// Exact two-smallest merge, identical update rule to the scalar kernel.
// Values >= 1e30 (the padding) can never displace a real minimum, so
// running this over a 1e30-padded array gives the scalar result.
inline void two_smallest(const float* vals, int count, float& min1,
                         float& min2) {
  min1 = 1e30F;
  min2 = 1e30F;
  for (int i = 0; i < count; ++i) {
    const float v = vals[std::size_t(i)];
    if (v < min1) {
      min2 = min1;
      min1 = v;
    } else if (v < min2) {
      min2 = v;
    }
  }
}

// ---------------------------------------------------------------------
// SSE2 (x86-64 baseline).
// ---------------------------------------------------------------------

void cn_minsum_sse2(const float* q, float* r, int deg, float scale) {
  const __m128 sign_mask = _mm_set1_ps(-0.0F);
  const __m128 pad = _mm_set1_ps(1e30F);
  const __m128 zero = _mm_setzero_ps();

  // Pass 1: lane-wise two-smallest magnitudes + sign parity.
  __m128 vmin1 = pad;
  __m128 vmin2 = pad;
  unsigned neg_parity = 0;
  int j = 0;
  for (; j + 4 <= deg; j += 4) {
    const __m128 v = _mm_loadu_ps(q + j);
    const __m128 mag = _mm_andnot_ps(sign_mask, v);
    neg_parity ^= unsigned(_mm_movemask_ps(_mm_cmplt_ps(v, zero)));
    vmin2 = _mm_min_ps(vmin2, _mm_max_ps(vmin1, mag));
    vmin1 = _mm_min_ps(vmin1, mag);
  }
  const int tail = deg - j;
  alignas(16) float tail_buf[4] = {1e30F, 1e30F, 1e30F, 1e30F};
  if (tail > 0) {
    std::memcpy(tail_buf, q + j, std::size_t(tail) * sizeof(float));
    const __m128 v = _mm_load_ps(tail_buf);
    const __m128 mag = _mm_andnot_ps(sign_mask, v);
    neg_parity ^= unsigned(_mm_movemask_ps(_mm_cmplt_ps(v, zero)));
    vmin2 = _mm_min_ps(vmin2, _mm_max_ps(vmin1, mag));
    vmin1 = _mm_min_ps(vmin1, mag);
  }
  const unsigned sign_all = unsigned(__builtin_popcount(neg_parity)) & 1U;

  // Horizontal merge: the global two smallest live in the union of the
  // per-lane two smallest.
  alignas(16) float lanes[8];
  _mm_store_ps(lanes, vmin1);
  _mm_store_ps(lanes + 4, vmin2);
  float min1 = 1e30F;
  float min2 = 1e30F;
  two_smallest(lanes, 8, min1, min2);

  // Pass 2: r[j] = +/- scale * (mag == min1 ? min2 : min1). A
  // non-argmin tie with min1 forces min2 == min1, so value selection
  // matches the scalar argmin selection bit-for-bit.
  const __m128 bmin1 = _mm_set1_ps(min1);
  const __m128 bmin2 = _mm_set1_ps(min2);
  const __m128 vscale = _mm_set1_ps(scale);
  const __m128 flip_bias = sign_all != 0 ? _mm_set1_ps(-0.0F) : zero;
  j = 0;
  for (; j + 4 <= deg; j += 4) {
    const __m128 v = _mm_loadu_ps(q + j);
    const __m128 mag = _mm_andnot_ps(sign_mask, v);
    const __m128 eq = _mm_cmpeq_ps(mag, bmin1);
    const __m128 sel =
        _mm_or_ps(_mm_and_ps(eq, bmin2), _mm_andnot_ps(eq, bmin1));
    const __m128 neg = _mm_and_ps(_mm_cmplt_ps(v, zero), sign_mask);
    const __m128 flip = _mm_xor_ps(neg, flip_bias);
    _mm_storeu_ps(r + j, _mm_xor_ps(_mm_mul_ps(vscale, sel), flip));
  }
  if (tail > 0) {
    const __m128 v = _mm_load_ps(tail_buf);
    const __m128 mag = _mm_andnot_ps(sign_mask, v);
    const __m128 eq = _mm_cmpeq_ps(mag, bmin1);
    const __m128 sel =
        _mm_or_ps(_mm_and_ps(eq, bmin2), _mm_andnot_ps(eq, bmin1));
    const __m128 neg = _mm_and_ps(_mm_cmplt_ps(v, zero), sign_mask);
    const __m128 flip = _mm_xor_ps(neg, flip_bias);
    alignas(16) float out_buf[4];
    _mm_store_ps(out_buf, _mm_xor_ps(_mm_mul_ps(vscale, sel), flip));
    std::memcpy(r + j, out_buf, std::size_t(tail) * sizeof(float));
  }
}

void demap_soft_sse2(const std::complex<float>* symbols, std::size_t count,
                     const float* levels, int bits_per_dim, double sigma2,
                     float* out) {
  const std::size_t bps = 2 * std::size_t(bits_per_dim);
  const int num_levels = 1 << bits_per_dim;
  const __m128d vden = _mm_set1_pd(2.0 * sigma2);
  std::size_t s = 0;
  for (; s + 4 <= count; s += 4) {
    const float* p = reinterpret_cast<const float*>(symbols + s);
    const __m128 v0 = _mm_loadu_ps(p);      // r0 i0 r1 i1
    const __m128 v1 = _mm_loadu_ps(p + 4);  // r2 i2 r3 i3
    const __m128 dims[2] = {
        _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(2, 0, 2, 0)),   // re
        _mm_shuffle_ps(v0, v1, _MM_SHUFFLE(3, 1, 3, 1))};  // im
    for (int dim = 0; dim < 2; ++dim) {
      const __m128 y = dims[dim];
      for (int b = 0; b < bits_per_dim; ++b) {
        __m128 best0 = _mm_set1_ps(1e30F);
        __m128 best1 = _mm_set1_ps(1e30F);
        for (int pattern = 0; pattern < num_levels; ++pattern) {
          const __m128 d =
              _mm_sub_ps(y, _mm_set1_ps(levels[std::size_t(pattern)]));
          const __m128 metric = _mm_mul_ps(d, d);
          if ((pattern >> (bits_per_dim - 1 - b)) & 1) {
            best1 = _mm_min_ps(best1, metric);
          } else {
            best0 = _mm_min_ps(best0, metric);
          }
        }
        // Replicate the scalar double-precision division exactly.
        const __m128 diff = _mm_sub_ps(best1, best0);
        const __m128d dlo = _mm_cvtps_pd(diff);
        const __m128d dhi =
            _mm_cvtps_pd(_mm_movehl_ps(diff, diff));
        const __m128 rlo = _mm_cvtpd_ps(_mm_div_pd(dlo, vden));
        const __m128 rhi = _mm_cvtpd_ps(_mm_div_pd(dhi, vden));
        alignas(16) float vals[4];
        _mm_store_ps(vals, _mm_movelh_ps(rlo, rhi));
        float* dst = out + s * bps + std::size_t(dim * bits_per_dim + b);
        dst[0 * bps] = vals[0];
        dst[1 * bps] = vals[1];
        dst[2 * bps] = vals[2];
        dst[3 * bps] = vals[3];
      }
    }
  }
  if (s < count) {
    demap_soft_scalar(symbols + s, count - s, levels, bits_per_dim, sigma2,
                      out + s * bps);
  }
}

// SSE2 has no 64-bit signed compare; the classic emulation compares the
// high dwords and borrows the 64-bit difference's sign where they tie.
// (b - a) cannot overflow when the high dwords are equal, so its sign
// bit is exact there.
inline __m128i cmpgt_epi64_sse2(__m128i a, __m128i b) {
  __m128i r = _mm_and_si128(_mm_cmpeq_epi32(a, b), _mm_sub_epi64(b, a));
  r = _mm_or_si128(r, _mm_cmpgt_epi32(a, b));
  return _mm_shuffle_epi32(r, _MM_SHUFFLE(3, 3, 1, 1));
}

std::size_t deadline_scan_sse2(const std::int64_t* deadlines, std::size_t n,
                               std::int64_t now, std::uint32_t* hits) {
  const __m128i vnow = _mm_set1_epi64x(now);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    const __m128i d = _mm_loadu_si128(
        reinterpret_cast<const __m128i*>(deadlines + i));
    const unsigned m_gt = unsigned(
        _mm_movemask_pd(_mm_castsi128_pd(cmpgt_epi64_sse2(d, vnow))));
    const unsigned m_neg = unsigned(_mm_movemask_pd(_mm_castsi128_pd(d)));
    unsigned hit = ~(m_gt | m_neg) & 0x3U;
    while (hit != 0) {
      hits[count++] = std::uint32_t(i + unsigned(__builtin_ctz(hit)));
      hit &= hit - 1;
    }
  }
  for (; i < n; ++i) {
    const std::int64_t d = deadlines[i];
    if (d >= 0 && d <= now) {
      hits[count++] = std::uint32_t(i);
    }
  }
  return count;
}

void ar1_update_sse2(float* x, std::size_t n, float mean, float rho,
                     const float* innov) {
  const __m128 vmean = _mm_set1_ps(mean);
  const __m128 vrho = _mm_set1_ps(rho);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 v = _mm_loadu_ps(x + i);
    const __m128 t = _mm_mul_ps(vrho, _mm_sub_ps(v, vmean));
    _mm_storeu_ps(
        x + i, _mm_add_ps(_mm_add_ps(vmean, t), _mm_loadu_ps(innov + i)));
  }
  for (; i < n; ++i) {
    x[i] = mean + rho * (x[i] - mean) + innov[i];
  }
}

float peak_abs_sse2(const float* x, std::size_t n) {
  const __m128 sign_mask = _mm_set1_ps(-0.0F);
  __m128 acc = _mm_setzero_ps();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc = _mm_max_ps(acc, _mm_andnot_ps(sign_mask, _mm_loadu_ps(x + i)));
  }
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, acc);
  float peak = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    peak = std::max(peak, std::fabs(x[i]));
  }
  return peak;
}

// Quantize two double lanes: v' = v * inv_scale (exact: power-of-two
// scale), round half-away-from-zero as trunc(v' + copysign(0.5, v')),
// clamp to [-max_m, max_m] in the double domain (so the truncating
// int conversion can never see an out-of-int32 value), and truncate.
// trunc(fl(v' + 0.5)) == lround(v') for every float-derived v' that is
// not clamped away: below the clamp bound |v'| < 2^16, where the
// addition of 0.5 is exact in double (<= 25 significant bits), and
// past it min/max pin the result to +/-max_m either way.
inline __m128i bfp_quantize_pair_sse2(__m128d v, __m128d vinv, __m128d vhalf,
                                      __m128d dsign, __m128d vmax,
                                      __m128d vmin) {
  v = _mm_mul_pd(v, vinv);
  const __m128d bias = _mm_or_pd(vhalf, _mm_and_pd(v, dsign));
  v = _mm_add_pd(v, bias);
  v = _mm_min_pd(v, vmax);
  v = _mm_max_pd(v, vmin);
  return _mm_cvttpd_epi32(v);
}

void bfp_quantize_sse2(const float* x, std::size_t n, double inv_scale,
                       std::int32_t max_m, std::int32_t* q) {
  const __m128d vinv = _mm_set1_pd(inv_scale);
  const __m128d vhalf = _mm_set1_pd(0.5);
  const __m128d dsign = _mm_set1_pd(-0.0);
  const __m128d vmax = _mm_set1_pd(double(max_m));
  const __m128d vmin = _mm_set1_pd(-double(max_m));
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128 f = _mm_loadu_ps(x + i);
    const __m128i lo = bfp_quantize_pair_sse2(_mm_cvtps_pd(f), vinv, vhalf,
                                              dsign, vmax, vmin);
    const __m128i hi = bfp_quantize_pair_sse2(
        _mm_cvtps_pd(_mm_movehl_ps(f, f)), vinv, vhalf, dsign, vmax, vmin);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                     _mm_unpacklo_epi64(lo, hi));
  }
  if (i < n) {
    bfp_quantize_scalar(x + i, n - i, inv_scale, max_m, q + i);
  }
}

void bfp_dequantize_sse2(const std::int32_t* q, std::size_t n, float scale,
                         float* out) {
  const __m128 vscale = _mm_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m128i v =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
    _mm_storeu_ps(out + i, _mm_mul_ps(_mm_cvtepi32_ps(v), vscale));
  }
  for (; i < n; ++i) {
    out[i] = float(q[i]) * scale;
  }
}

// Byte-aligned mantissa widths pack/unpack vectorially; other widths
// share the word-level scalar core. The saturating packs are inert:
// the quantizer already clamped values into the m-bit range.
std::size_t bfp_pack_sse2(const std::int32_t* q, std::size_t n, int m,
                          std::uint8_t* dst) {
  std::size_t i = 0;
  if (m == 8) {
    for (; i + 8 <= n; i += 8) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i + 4));
      const __m128i w = _mm_packs_epi32(a, b);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packs_epi16(w, w));
    }
    for (; i < n; ++i) {
      dst[i] = std::uint8_t(std::uint32_t(q[i]) & 0xFFU);
    }
    return n;
  }
  if (m == 16) {
    for (; i + 4 <= n; i += 4) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
      __m128i w = _mm_packs_epi32(a, a);
      // Big-endian within each 16-bit mantissa (MSB-first stream).
      w = _mm_or_si128(_mm_slli_epi16(w, 8), _mm_srli_epi16(w, 8));
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + 2 * i), w);
    }
    for (; i < n; ++i) {
      const auto v = std::uint32_t(q[i]);
      dst[2 * i] = std::uint8_t(v >> 8);
      dst[2 * i + 1] = std::uint8_t(v);
    }
    return 2 * n;
  }
  return bfp_pack_scalar(q, n, m, dst);
}

void bfp_unpack_sse2(const std::uint8_t* src, std::size_t n, int m,
                     std::int32_t* q) {
  std::size_t i = 0;
  if (m == 8) {
    for (; i + 8 <= n; i += 8) {
      const __m128i b =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
      const __m128i w = _mm_srai_epi16(_mm_unpacklo_epi8(b, b), 8);
      _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                       _mm_srai_epi32(_mm_unpacklo_epi16(w, w), 16));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i + 4),
                       _mm_srai_epi32(_mm_unpackhi_epi16(w, w), 16));
    }
    for (; i < n; ++i) {
      q[i] = std::int32_t(std::int8_t(src[i]));
    }
    return;
  }
  if (m == 16) {
    for (; i + 4 <= n; i += 4) {
      __m128i w =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + 2 * i));
      w = _mm_or_si128(_mm_slli_epi16(w, 8), _mm_srli_epi16(w, 8));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(q + i),
                       _mm_srai_epi32(_mm_unpacklo_epi16(w, w), 16));
    }
    for (; i < n; ++i) {
      const auto hi = std::uint32_t(src[2 * i]);
      const auto lo = std::uint32_t(src[2 * i + 1]);
      q[i] = std::int32_t(std::int16_t((hi << 8) | lo));
    }
    return;
  }
  bfp_unpack_scalar(src, n, m, q);
}

constexpr Kernels kSse2Kernels{
    cn_minsum_sse2,  demap_soft_sse2,    deadline_scan_sse2,
    ar1_update_sse2, peak_abs_sse2,      bfp_quantize_sse2,
    bfp_dequantize_sse2, bfp_pack_sse2,  bfp_unpack_sse2};

// ---------------------------------------------------------------------
// AVX2.
// ---------------------------------------------------------------------

// Load mask covering the first `count` (1..8) lanes.
alignas(32) constexpr int kTailMask[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                           0,  0,  0,  0,  0,  0,  0,  0};

__attribute__((target("avx2"))) void cn_minsum_avx2(const float* q, float* r,
                                                    int deg, float scale) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0F);
  const __m256 pad = _mm256_set1_ps(1e30F);
  const __m256 zero = _mm256_setzero_ps();

  __m256 vmin1 = pad;
  __m256 vmin2 = pad;
  unsigned neg_parity = 0;
  int j = 0;
  for (; j + 8 <= deg; j += 8) {
    const __m256 v = _mm256_loadu_ps(q + j);
    const __m256 mag = _mm256_andnot_ps(sign_mask, v);
    neg_parity ^=
        unsigned(_mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ)));
    vmin2 = _mm256_min_ps(vmin2, _mm256_max_ps(vmin1, mag));
    vmin1 = _mm256_min_ps(vmin1, mag);
  }
  const int tail = deg - j;
  __m256i tail_mask = _mm256_setzero_si256();
  if (tail > 0) {
    // maskload never faults on masked-out lanes, so reading at the end
    // of the edge array is safe; padded lanes become 1e30 (positive,
    // never minimal).
    tail_mask = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(kTailMask + (8 - tail)));
    const __m256 raw = _mm256_maskload_ps(q + j, tail_mask);
    const __m256 v =
        _mm256_blendv_ps(pad, raw, _mm256_castsi256_ps(tail_mask));
    const __m256 mag = _mm256_andnot_ps(sign_mask, v);
    neg_parity ^=
        unsigned(_mm256_movemask_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ)));
    vmin2 = _mm256_min_ps(vmin2, _mm256_max_ps(vmin1, mag));
    vmin1 = _mm256_min_ps(vmin1, mag);
  }
  const unsigned sign_all = unsigned(__builtin_popcount(neg_parity)) & 1U;

  alignas(32) float lanes[16];
  _mm256_store_ps(lanes, vmin1);
  _mm256_store_ps(lanes + 8, vmin2);
  float min1 = 1e30F;
  float min2 = 1e30F;
  two_smallest(lanes, 16, min1, min2);

  const __m256 bmin1 = _mm256_set1_ps(min1);
  const __m256 bmin2 = _mm256_set1_ps(min2);
  const __m256 vscale = _mm256_set1_ps(scale);
  const __m256 flip_bias = sign_all != 0 ? sign_mask : zero;
  j = 0;
  for (; j + 8 <= deg; j += 8) {
    const __m256 v = _mm256_loadu_ps(q + j);
    const __m256 mag = _mm256_andnot_ps(sign_mask, v);
    const __m256 eq = _mm256_cmp_ps(mag, bmin1, _CMP_EQ_OQ);
    const __m256 sel = _mm256_blendv_ps(bmin1, bmin2, eq);
    const __m256 neg =
        _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), sign_mask);
    const __m256 flip = _mm256_xor_ps(neg, flip_bias);
    _mm256_storeu_ps(r + j,
                     _mm256_xor_ps(_mm256_mul_ps(vscale, sel), flip));
  }
  if (tail > 0) {
    const __m256 raw = _mm256_maskload_ps(q + j, tail_mask);
    const __m256 v =
        _mm256_blendv_ps(pad, raw, _mm256_castsi256_ps(tail_mask));
    const __m256 mag = _mm256_andnot_ps(sign_mask, v);
    const __m256 eq = _mm256_cmp_ps(mag, bmin1, _CMP_EQ_OQ);
    const __m256 sel = _mm256_blendv_ps(bmin1, bmin2, eq);
    const __m256 neg =
        _mm256_and_ps(_mm256_cmp_ps(v, zero, _CMP_LT_OQ), sign_mask);
    const __m256 flip = _mm256_xor_ps(neg, flip_bias);
    _mm256_maskstore_ps(r + j, tail_mask,
                        _mm256_xor_ps(_mm256_mul_ps(vscale, sel), flip));
  }
}

__attribute__((target("avx2"))) void demap_soft_avx2(
    const std::complex<float>* symbols, std::size_t count,
    const float* levels, int bits_per_dim, double sigma2, float* out) {
  const std::size_t bps = 2 * std::size_t(bits_per_dim);
  const int num_levels = 1 << bits_per_dim;
  const __m256d vden = _mm256_set1_pd(2.0 * sigma2);
  std::size_t s = 0;
  for (; s + 8 <= count; s += 8) {
    const float* p = reinterpret_cast<const float*>(symbols + s);
    const __m256 v0 = _mm256_loadu_ps(p);      // r0 i0 r1 i1 | r2 i2 r3 i3
    const __m256 v1 = _mm256_loadu_ps(p + 8);  // r4 i4 r5 i5 | r6 i6 r7 i7
    const __m256 t0 = _mm256_permute2f128_ps(v0, v1, 0x20);
    const __m256 t1 = _mm256_permute2f128_ps(v0, v1, 0x31);
    const __m256 dims[2] = {
        _mm256_shuffle_ps(t0, t1, _MM_SHUFFLE(2, 0, 2, 0)),   // re
        _mm256_shuffle_ps(t0, t1, _MM_SHUFFLE(3, 1, 3, 1))};  // im
    for (int dim = 0; dim < 2; ++dim) {
      const __m256 y = dims[dim];
      for (int b = 0; b < bits_per_dim; ++b) {
        __m256 best0 = _mm256_set1_ps(1e30F);
        __m256 best1 = _mm256_set1_ps(1e30F);
        for (int pattern = 0; pattern < num_levels; ++pattern) {
          const __m256 d =
              _mm256_sub_ps(y, _mm256_set1_ps(levels[std::size_t(pattern)]));
          const __m256 metric = _mm256_mul_ps(d, d);
          if ((pattern >> (bits_per_dim - 1 - b)) & 1) {
            best1 = _mm256_min_ps(best1, metric);
          } else {
            best0 = _mm256_min_ps(best0, metric);
          }
        }
        const __m256 diff = _mm256_sub_ps(best1, best0);
        const __m256d dlo = _mm256_cvtps_pd(_mm256_castps256_ps128(diff));
        const __m256d dhi = _mm256_cvtps_pd(_mm256_extractf128_ps(diff, 1));
        const __m128 rlo = _mm256_cvtpd_ps(_mm256_div_pd(dlo, vden));
        const __m128 rhi = _mm256_cvtpd_ps(_mm256_div_pd(dhi, vden));
        alignas(32) float vals[8];
        _mm_store_ps(vals, rlo);
        _mm_store_ps(vals + 4, rhi);
        float* dst = out + s * bps + std::size_t(dim * bits_per_dim + b);
        for (int lane = 0; lane < 8; ++lane) {
          dst[std::size_t(lane) * bps] = vals[std::size_t(lane)];
        }
      }
    }
  }
  if (s < count) {
    demap_soft_scalar(symbols + s, count - s, levels, bits_per_dim, sigma2,
                      out + s * bps);
  }
}

__attribute__((target("avx2"))) std::size_t deadline_scan_avx2(
    const std::int64_t* deadlines, std::size_t n, std::int64_t now,
    std::uint32_t* hits) {
  const __m256i vnow = _mm256_set1_epi64x(now);
  std::size_t count = 0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256i d = _mm256_loadu_si256(
        reinterpret_cast<const __m256i*>(deadlines + i));
    const unsigned m_gt = unsigned(
        _mm256_movemask_pd(_mm256_castsi256_pd(_mm256_cmpgt_epi64(d, vnow))));
    const unsigned m_neg =
        unsigned(_mm256_movemask_pd(_mm256_castsi256_pd(d)));
    unsigned hit = ~(m_gt | m_neg) & 0xFU;
    while (hit != 0) {
      hits[count++] = std::uint32_t(i + unsigned(__builtin_ctz(hit)));
      hit &= hit - 1;
    }
  }
  for (; i < n; ++i) {
    const std::int64_t d = deadlines[i];
    if (d >= 0 && d <= now) {
      hits[count++] = std::uint32_t(i);
    }
  }
  return count;
}

__attribute__((target("avx2"))) void ar1_update_avx2(float* x, std::size_t n,
                                                     float mean, float rho,
                                                     const float* innov) {
  const __m256 vmean = _mm256_set1_ps(mean);
  const __m256 vrho = _mm256_set1_ps(rho);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 v = _mm256_loadu_ps(x + i);
    // Explicit mul+add (no FMA) to stay bit-exact with the scalar form.
    const __m256 t = _mm256_mul_ps(vrho, _mm256_sub_ps(v, vmean));
    _mm256_storeu_ps(x + i, _mm256_add_ps(_mm256_add_ps(vmean, t),
                                          _mm256_loadu_ps(innov + i)));
  }
  for (; i < n; ++i) {
    x[i] = mean + rho * (x[i] - mean) + innov[i];
  }
}

__attribute__((target("avx2"))) float peak_abs_avx2(const float* x,
                                                    std::size_t n) {
  const __m256 sign_mask = _mm256_set1_ps(-0.0F);
  __m256 acc = _mm256_setzero_ps();
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_max_ps(acc,
                        _mm256_andnot_ps(sign_mask, _mm256_loadu_ps(x + i)));
  }
  const __m128 folded = _mm_max_ps(_mm256_castps256_ps128(acc),
                                   _mm256_extractf128_ps(acc, 1));
  alignas(16) float lanes[4];
  _mm_store_ps(lanes, folded);
  float peak = std::max(std::max(lanes[0], lanes[1]),
                        std::max(lanes[2], lanes[3]));
  for (; i < n; ++i) {
    peak = std::max(peak, std::fabs(x[i]));
  }
  return peak;
}

// Same exactness argument as the SSE2 pair helper: power-of-two scale,
// exact +0.5 bias in double below the clamp bound, double-domain clamp
// before the truncating conversion.
__attribute__((target("avx2"))) inline __m128i bfp_quantize_quad_avx2(
    __m256d v, __m256d vinv, __m256d vhalf, __m256d dsign, __m256d vmax,
    __m256d vmin) {
  v = _mm256_mul_pd(v, vinv);
  const __m256d bias = _mm256_or_pd(vhalf, _mm256_and_pd(v, dsign));
  v = _mm256_add_pd(v, bias);
  v = _mm256_min_pd(v, vmax);
  v = _mm256_max_pd(v, vmin);
  return _mm256_cvttpd_epi32(v);
}

__attribute__((target("avx2"))) void bfp_quantize_avx2(
    const float* x, std::size_t n, double inv_scale, std::int32_t max_m,
    std::int32_t* q) {
  const __m256d vinv = _mm256_set1_pd(inv_scale);
  const __m256d vhalf = _mm256_set1_pd(0.5);
  const __m256d dsign = _mm256_set1_pd(-0.0);
  const __m256d vmax = _mm256_set1_pd(double(max_m));
  const __m256d vmin = _mm256_set1_pd(-double(max_m));
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256 f = _mm256_loadu_ps(x + i);
    const __m128i lo = bfp_quantize_quad_avx2(
        _mm256_cvtps_pd(_mm256_castps256_ps128(f)), vinv, vhalf, dsign, vmax,
        vmin);
    const __m128i hi = bfp_quantize_quad_avx2(
        _mm256_cvtps_pd(_mm256_extractf128_ps(f, 1)), vinv, vhalf, dsign,
        vmax, vmin);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                        _mm256_set_m128i(hi, lo));
  }
  if (i < n) {
    bfp_quantize_scalar(x + i, n - i, inv_scale, max_m, q + i);
  }
}

__attribute__((target("avx2"))) void bfp_dequantize_avx2(
    const std::int32_t* q, std::size_t n, float scale, float* out) {
  const __m256 vscale = _mm256_set1_ps(scale);
  std::size_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m256i v =
        _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_cvtepi32_ps(v), vscale));
  }
  for (; i < n; ++i) {
    out[i] = float(q[i]) * scale;
  }
}

__attribute__((target("avx2"))) std::size_t bfp_pack_avx2(
    const std::int32_t* q, std::size_t n, int m, std::uint8_t* dst) {
  std::size_t i = 0;
  if (m == 8) {
    for (; i + 8 <= n; i += 8) {
      const __m128i a =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i));
      const __m128i b =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(q + i + 4));
      const __m128i w = _mm_packs_epi32(a, b);
      _mm_storel_epi64(reinterpret_cast<__m128i*>(dst + i),
                       _mm_packs_epi16(w, w));
    }
    for (; i < n; ++i) {
      dst[i] = std::uint8_t(std::uint32_t(q[i]) & 0xFFU);
    }
    return n;
  }
  if (m == 16) {
    for (; i + 8 <= n; i += 8) {
      const __m256i a =
          _mm256_loadu_si256(reinterpret_cast<const __m256i*>(q + i));
      // packs interleaves 128-bit halves; permute restores order.
      __m128i w = _mm256_castsi256_si128(_mm256_permute4x64_epi64(
          _mm256_packs_epi32(a, a), _MM_SHUFFLE(3, 1, 2, 0)));
      w = _mm_or_si128(_mm_slli_epi16(w, 8), _mm_srli_epi16(w, 8));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + 2 * i), w);
    }
    for (; i < n; ++i) {
      const auto v = std::uint32_t(q[i]);
      dst[2 * i] = std::uint8_t(v >> 8);
      dst[2 * i + 1] = std::uint8_t(v);
    }
    return 2 * n;
  }
  return bfp_pack_scalar(q, n, m, dst);
}

__attribute__((target("avx2"))) void bfp_unpack_avx2(const std::uint8_t* src,
                                                     std::size_t n, int m,
                                                     std::int32_t* q) {
  std::size_t i = 0;
  if (m == 8) {
    for (; i + 8 <= n; i += 8) {
      const __m128i b =
          _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                          _mm256_cvtepi8_epi32(b));
    }
    for (; i < n; ++i) {
      q[i] = std::int32_t(std::int8_t(src[i]));
    }
    return;
  }
  if (m == 16) {
    for (; i + 8 <= n; i += 8) {
      __m128i w =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + 2 * i));
      w = _mm_or_si128(_mm_slli_epi16(w, 8), _mm_srli_epi16(w, 8));
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(q + i),
                          _mm256_cvtepi16_epi32(w));
    }
    for (; i < n; ++i) {
      const auto hi = std::uint32_t(src[2 * i]);
      const auto lo = std::uint32_t(src[2 * i + 1]);
      q[i] = std::int32_t(std::int16_t((hi << 8) | lo));
    }
    return;
  }
  bfp_unpack_scalar(src, n, m, q);
}

constexpr Kernels kAvx2Kernels{
    cn_minsum_avx2,  demap_soft_avx2,    deadline_scan_avx2,
    ar1_update_avx2, peak_abs_avx2,      bfp_quantize_avx2,
    bfp_dequantize_avx2, bfp_pack_avx2,  bfp_unpack_avx2};

#endif  // SLINGSHOT_SIMD_X86

Level detect_level() {
#if SLINGSHOT_SIMD_X86
  Level best = Level::kSse2;  // x86-64 baseline
  if (__builtin_cpu_supports("avx2")) {
    best = Level::kAvx2;
  }
  const char* override_name = std::getenv("SLINGSHOT_SIMD");
  if (override_name != nullptr) {
    if (std::strcmp(override_name, "scalar") == 0) {
      return Level::kScalar;
    }
    if (std::strcmp(override_name, "sse2") == 0) {
      return Level::kSse2;
    }
    if (std::strcmp(override_name, "avx2") == 0 && best == Level::kAvx2) {
      return Level::kAvx2;
    }
    // Unknown or unsupported override: fall through to autodetect.
  }
  return best;
#else
  return Level::kScalar;
#endif
}

}  // namespace

const char* level_name(Level level) {
  switch (level) {
    case Level::kScalar: return "scalar";
    case Level::kSse2: return "sse2";
    case Level::kAvx2: return "avx2";
  }
  return "?";
}

bool level_supported(Level level) {
#if SLINGSHOT_SIMD_X86
  if (level == Level::kAvx2) {
    return __builtin_cpu_supports("avx2") != 0;
  }
  return true;
#else
  return level == Level::kScalar;
#endif
}

const Kernels& kernels_for(Level level) {
#if SLINGSHOT_SIMD_X86
  switch (level) {
    case Level::kScalar: return kScalarKernels;
    case Level::kSse2: return kSse2Kernels;
    case Level::kAvx2:
      if (level_supported(Level::kAvx2)) {
        return kAvx2Kernels;
      }
      return kScalarKernels;
  }
#endif
  return kScalarKernels;
}

Level active_level() {
  static const Level level = detect_level();
  return level;
}

const Kernels& kernels() {
  static const Kernels& active = kernels_for(active_level());
  return active;
}

}  // namespace slingshot::simd
