// LDPC forward error correction.
//
// A regular Gallager LDPC code (column weight 3, rate ~1/2) with a
// systematic GF(2) encoder derived by Gaussian elimination and a
// normalized min-sum belief-propagation decoder. The decoder's maximum
// iteration count is a runtime knob — the paper's live-upgrade
// experiment (§8.3, Fig 11) upgrades the PHY to "more FEC iterations for
// decoding the signal", and with a real BP decoder iteration count
// genuinely moves the decoding threshold.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace slingshot {

class LdpcCode {
 public:
  // Build a pseudo-random regular code: n coded bits, m = n - k checks,
  // column weight `wc`. Deterministic for a given seed.
  LdpcCode(int n, int m, std::uint64_t seed, int wc = 3);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int num_checks() const { return m_; }

  // Encode k info bits into an n-bit codeword (values 0/1).
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> info_bits) const;

  // Extract the k info bits from a (decoded) codeword.
  [[nodiscard]] std::vector<std::uint8_t> extract_info(
      std::span<const std::uint8_t> codeword) const;

  struct DecodeResult {
    std::vector<std::uint8_t> codeword;  // hard decisions, n bits
    bool parity_ok = false;              // all checks satisfied
    int iterations_used = 0;
  };

  // Normalized min-sum BP decode from channel LLRs (positive = bit 0).
  [[nodiscard]] DecodeResult decode(std::span<const float> llr,
                                    int max_iterations) const;

  [[nodiscard]] bool check_parity(std::span<const std::uint8_t> cw) const;

  // The codebase-wide default code: n = 648, rate 1/2 — one
  // representative codeword per transport block.
  static const LdpcCode& standard();

 private:
  int n_;
  int m_;
  int k_;
  // Sparse structure: per-check variable lists (flattened), and per-var
  // global edge-id lists, for the flooding min-sum schedule.
  std::vector<std::vector<int>> check_vars_;
  std::vector<int> check_edge_offset_;      // global edge id of check's 1st edge
  std::vector<std::vector<int>> var_edges_; // global edge ids touching var
  int num_edges_ = 0;
  // Systematic encoder: after RREF, pivot (parity) columns and the
  // info columns, plus per-parity-row masks over info bits.
  std::vector<int> info_cols_;
  std::vector<int> parity_cols_;           // pivot column of each kept row
  std::vector<BitVector> parity_masks_;    // over info-bit indices
};

}  // namespace slingshot
