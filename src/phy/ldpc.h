// LDPC forward error correction.
//
// A regular Gallager LDPC code (column weight 3, rate ~1/2) with a
// systematic GF(2) encoder derived by Gaussian elimination and a
// normalized min-sum belief-propagation decoder. The decoder's maximum
// iteration count is a runtime knob — the paper's live-upgrade
// experiment (§8.3, Fig 11) upgrades the PHY to "more FEC iterations for
// decoding the signal", and with a real BP decoder iteration count
// genuinely moves the decoding threshold.
//
// Two message-passing schedules are available:
//  * kFlooding — all check nodes update, then all variable nodes. The
//    codebase-wide default; its arithmetic is bit-identical across
//    refactors, which the golden-trace determinism test relies on.
//  * kLayered — serial-C: checks update one at a time against the live
//    posterior, so information propagates within an iteration and the
//    decoder converges in roughly half the iterations at equal FER.
//
// The hot decode path is allocation-free: callers own a reusable
// DecodeWorkspace whose buffers amortize to zero heap traffic, parity is
// tracked on the fly as hard decisions flip (no per-iteration
// check_parity walk), and the Tanner graph is stored as flat SoA edge
// arrays rather than vector<vector<int>> adjacency.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/bits.h"

namespace slingshot {

enum class LdpcSchedule : std::uint8_t { kFlooding = 0, kLayered = 1 };

class LdpcCode {
 public:
  // Build a pseudo-random regular code: n coded bits, m = n - k checks,
  // column weight `wc`. Deterministic for a given seed.
  LdpcCode(int n, int m, std::uint64_t seed, int wc = 3);

  [[nodiscard]] int n() const { return n_; }
  [[nodiscard]] int k() const { return k_; }
  [[nodiscard]] int num_checks() const { return m_; }
  [[nodiscard]] int num_edges() const { return num_edges_; }

  // Encode k info bits into an n-bit codeword (values 0/1).
  [[nodiscard]] std::vector<std::uint8_t> encode(
      std::span<const std::uint8_t> info_bits) const;

  // Extract the k info bits from a (decoded) codeword.
  [[nodiscard]] std::vector<std::uint8_t> extract_info(
      std::span<const std::uint8_t> codeword) const;
  // Non-allocating variant (resizes `out` to k).
  void extract_info_into(std::span<const std::uint8_t> codeword,
                         std::vector<std::uint8_t>& out) const;

  struct DecodeResult {
    std::vector<std::uint8_t> codeword;  // hard decisions, n bits
    bool parity_ok = false;              // all checks satisfied
    int iterations_used = 0;
  };

  // Caller-owned scratch buffers for decode_into(). Reusing one
  // workspace across decodes makes the decode loop allocation-free
  // (asserted by a counting-allocator test). The decoded hard decisions
  // land in `codeword`.
  struct DecodeWorkspace {
    std::vector<std::uint8_t> codeword;   // n hard decisions (output)
    std::vector<float> var_to_check;      // per-edge messages
    std::vector<float> check_to_var;      // per-edge messages
    std::vector<float> posterior;         // layered: live LLR accumulator
    std::vector<float> layer_q;           // layered: one check's inputs
    std::vector<float> layer_r;           // layered: one check's outputs
    std::vector<std::uint8_t> syndrome;   // per-check parity bit
  };

  struct DecodeStatus {
    bool parity_ok = false;
    int iterations_used = 0;
  };

  // Normalized min-sum BP decode from channel LLRs (positive = bit 0).
  // Hard decisions are written to ws.codeword. Zero heap allocations
  // once the workspace has warmed up to this code's dimensions.
  DecodeStatus decode_into(std::span<const float> llr, int max_iterations,
                           DecodeWorkspace& ws,
                           LdpcSchedule schedule = LdpcSchedule::kFlooding)
      const;

  // Convenience wrapper around decode_into() that returns an owned
  // codeword (flooding schedule; message buffers come from a
  // thread-local workspace).
  [[nodiscard]] DecodeResult decode(std::span<const float> llr,
                                    int max_iterations) const;

  [[nodiscard]] bool check_parity(std::span<const std::uint8_t> cw) const;

  // The codebase-wide default code: n = 648, rate 1/2 — one
  // representative codeword per transport block.
  static const LdpcCode& standard();

 private:
  int n_;
  int m_;
  int k_;
  // Flat SoA Tanner graph. Edges are numbered by (check, position):
  // check c owns edges [check_edge_offset_[c], check_edge_offset_[c+1]).
  std::vector<int> check_edge_offset_;  // m+1 offsets into edge arrays
  std::vector<int> edge_var_;           // variable at each edge (by check)
  std::vector<int> var_edge_offset_;    // n+1 offsets into var_edges_
  std::vector<int> var_edges_;          // edge ids touching each variable
  std::vector<int> edge_check_;         // owning check of each edge
  int num_edges_ = 0;
  int max_check_degree_ = 0;
  // Systematic encoder: after RREF, pivot (parity) columns and the
  // info columns, plus per-parity-row masks over info bits.
  std::vector<int> info_cols_;
  std::vector<int> parity_cols_;           // pivot column of each kept row
  std::vector<BitVector> parity_masks_;    // over info-bit indices
};

}  // namespace slingshot
