#include "phy/tb_codec.h"

#include <cmath>
#include <stdexcept>

#include "common/bits.h"
#include "common/crc.h"
#include "common/rng.h"

namespace slingshot {
namespace {

std::vector<std::complex<float>> make_pilots() {
  // Deterministic pseudo-random QPSK pilots, unit energy.
  std::vector<std::complex<float>> pilots;
  pilots.reserve(kNumPilotSymbols);
  std::uint64_t state = 0xC0FFEE123456789ULL;
  const float a = float(1.0 / std::sqrt(2.0));
  for (int i = 0; i < kNumPilotSymbols; ++i) {
    state = splitmix64(state);
    const float re = (state & 1) ? a : -a;
    const float im = (state & 2) ? a : -a;
    pilots.emplace_back(re, im);
  }
  return pilots;
}

const std::vector<std::complex<float>>& pilots_storage() {
  static const auto pilots = make_pilots();
  return pilots;
}

}  // namespace

std::span<const std::complex<float>> pilot_sequence() {
  return pilots_storage();
}

std::vector<std::uint8_t> build_info_block(
    std::span<const std::uint8_t> payload, const LdpcCode& code) {
  const int k = code.k();
  if (k <= 24) {
    throw std::invalid_argument{"build_info_block: code too short for CRC"};
  }
  std::vector<std::uint8_t> info(std::size_t(k), 0);
  const std::uint32_t crc = crc24a(payload);
  for (int b = 0; b < 24; ++b) {
    info[std::size_t(b)] = std::uint8_t((crc >> (23 - b)) & 1U);
  }
  // Only the payload's leading k-24 bits ride in the info block: convert
  // just those, not the whole (potentially kilobytes-long) payload.
  thread_local std::vector<std::uint8_t> payload_bits;
  bytes_to_bits_into(payload, std::size_t(k - 24), payload_bits);
  for (std::size_t b = 0; b < payload_bits.size(); ++b) {
    info[24 + b] = payload_bits[b];
  }
  return info;
}

TbEncodeResult encode_tb(std::span<const std::uint8_t> payload, Modulation mod,
                         const LdpcCode& code) {
  const auto info = build_info_block(payload, code);
  auto codeword = code.encode(info);
  // Pad the codeword to a whole number of symbols (no-op for the
  // standard code, whose length divides all modulation orders).
  const int bps = bits_per_symbol(mod);
  while (codeword.size() % std::size_t(bps) != 0) {
    codeword.push_back(0);
  }
  const Modulator& modulator = modulator_for(mod);
  auto data_syms = modulator.modulate(codeword);

  TbEncodeResult result;
  result.codeword_bits = std::uint32_t(codeword.size());
  const auto pilots = pilot_sequence();
  result.iq.reserve(pilots.size() + data_syms.size());
  result.iq.insert(result.iq.end(), pilots.begin(), pilots.end());
  result.iq.insert(result.iq.end(), data_syms.begin(), data_syms.end());
  return result;
}

TbDecodeResult decode_tb(std::span<const std::complex<float>> iq,
                         Modulation mod,
                         std::span<const std::uint8_t> shadow_payload,
                         int max_ldpc_iterations,
                         const std::vector<float>* prior_llrs,
                         const LdpcCode& code, TbDecodeWorkspace* ws,
                         LdpcSchedule schedule) {
  thread_local TbDecodeWorkspace fallback_ws;
  if (ws == nullptr) {
    ws = &fallback_ws;
  }
  TbDecodeResult result;
  const auto pilots = pilot_sequence();
  if (iq.size() <= pilots.size()) {
    return result;  // garbage/truncated block: decode failure
  }

  // --- Channel estimation: LS estimate averaged over pilots.
  std::complex<double> h_acc{0.0, 0.0};
  for (std::size_t p = 0; p < pilots.size(); ++p) {
    h_acc += std::complex<double>(iq[p]) * std::conj(std::complex<double>(pilots[p]));
  }
  const std::complex<double> h = h_acc / double(pilots.size());
  const double h_pow = std::norm(h);

  // --- Noise variance estimate from pilot residuals.
  double noise_acc = 0.0;
  for (std::size_t p = 0; p < pilots.size(); ++p) {
    const auto r = std::complex<double>(iq[p]) - h * std::complex<double>(pilots[p]);
    noise_acc += std::norm(r);
  }
  const double sigma2 = std::max(noise_acc / double(pilots.size()), 1e-9);
  result.est_snr_db = 10.0 * std::log10(std::max(h_pow / sigma2, 1e-9));

  if (h_pow < 1e-12) {
    return result;  // unrecoverable: no channel
  }

  // --- Single-tap equalization; effective noise variance scales by
  // 1/|h|^2 after dividing by h.
  const std::size_t n_data = iq.size() - pilots.size();
  auto& eq = ws->eq;
  eq.resize(n_data);
  const std::complex<double> h_inv = std::conj(h) / h_pow;
  for (std::size_t s = 0; s < n_data; ++s) {
    eq[s] = std::complex<float>(std::complex<double>(iq[pilots.size() + s]) * h_inv);
  }
  const double eff_noise = sigma2 / h_pow;

  // --- Soft demapping.
  const Modulator& modulator = modulator_for(mod);
  auto& llrs = ws->llrs;
  modulator.demap_into(eq, eff_noise, llrs);
  if (int(llrs.size()) < code.n()) {
    return result;
  }
  llrs.resize(std::size_t(code.n()));

  // --- HARQ chase combining.
  if (prior_llrs != nullptr && prior_llrs->size() == llrs.size()) {
    for (std::size_t i = 0; i < llrs.size(); ++i) {
      llrs[i] += (*prior_llrs)[i];
    }
  }
  result.combined_llrs = llrs;

  // --- LDPC decode + CRC check.
  const auto decoded = code.decode_into(llrs, max_ldpc_iterations, ws->ldpc,
                                        schedule);
  result.parity_ok = decoded.parity_ok;
  result.iterations_used = decoded.iterations_used;
  if (!decoded.parity_ok) {
    return result;
  }
  auto& info = ws->info;
  code.extract_info_into(ws->ldpc.codeword, info);
  std::uint32_t crc_rx = 0;
  for (int b = 0; b < 24; ++b) {
    crc_rx = (crc_rx << 1) | (info[std::size_t(b)] & 1U);
  }
  // Equivalent to rebuilding the expected info block and comparing, but
  // without recomputing the CRC twice or converting the whole payload:
  // the decoded info bits must match the payload's leading bits and be
  // zero-padded past the payload's end.
  auto& payload_bits = ws->payload_bits;
  bytes_to_bits_into(shadow_payload, std::size_t(code.k() - 24),
                     payload_bits);
  bool body_ok = std::equal(payload_bits.begin(), payload_bits.end(),
                            info.begin() + 24);
  for (std::size_t b = 24 + payload_bits.size(); body_ok && b < info.size();
       ++b) {
    body_ok = info[b] == 0;
  }
  result.crc_ok = body_ok && crc_rx == crc24a(shadow_payload);
  return result;
}

}  // namespace slingshot
