// Runtime-dispatched SIMD kernels for the PHY's two hottest inner
// loops: the normalized min-sum check-node update (ldpc.cc) and the
// max-log soft demapper (modulation.cc).
//
// Contract: every implementation is BIT-EXACT against the scalar
// reference on all finite inputs — same floats out, down to the sign
// bit. The golden-trace determinism test pins decode iteration counts
// and CRC outcomes, so a kernel that drifted by one ULP would change
// simulation results between machines. The implementations stay exact
// by construction:
//  * min/max/fabs/compare and sign manipulation are exact in IEEE-754;
//    no reassociated sums or FMA contractions are used.
//  * the min-sum magnitude is selected by value equality
//    (mag == min1 ? min2 : min1), which provably matches the scalar
//    code's position-based selection: when a non-minimal position ties
//    with min1, min2 == min1 and both forms emit the same value.
//  * the demapper replicates the scalar path's double-precision
//    division (cvtps_pd -> div_pd -> cvtpd_ps) instead of multiplying
//    by a reciprocal.
//
// Dispatch happens once, at first use: the highest level the CPU
// supports (AVX2 > SSE2 > scalar), overridable with
// SLINGSHOT_SIMD=scalar|sse2|avx2 for A/B benchmarking and tests.
// kernels_for() exposes every compiled-in level so tests can assert
// exact parity between all of them on randomized inputs.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace slingshot::simd {

enum class Level { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* level_name(Level level);

struct Kernels {
  // Normalized min-sum check-node update over one check's `deg`
  // incoming messages q[0..deg): r[j] gets the sign-excluded product
  // sign * scale * mag, where mag is the smallest |q| excluding
  // position j (i.e. min2 at the argmin position, min1 elsewhere).
  // q and r must not alias.
  void (*cn_minsum)(const float* q, float* r, int deg, float scale);

  // Max-log LLR soft demap of `count` Gray-mapped square-QAM symbols.
  // `levels` holds the 1 << bits_per_dim PAM amplitudes indexed by
  // MSB-first bit pattern; `sigma2` is the per-dimension noise
  // variance. Writes 2 * bits_per_dim LLRs per symbol to `out`
  // (I-dimension bits first, then Q), positive = bit 0.
  void (*demap_soft)(const std::complex<float>* symbols, std::size_t count,
                     const float* levels, int bits_per_dim, double sigma2,
                     float* out);

  // Deadline scan over `n` signed 64-bit deadlines: appends every index
  // i with 0 <= deadlines[i] <= now to `hits` (caller-sized to at least
  // n) and returns the number appended, in ascending index order.
  // Negative deadlines mean "unarmed" and never fire. Used by the
  // massive-UE batch to sweep RLF / reattach timer lanes once per TTI
  // instead of scheduling per-UE events.
  std::size_t (*deadline_scan)(const std::int64_t* deadlines, std::size_t n,
                               std::int64_t now, std::uint32_t* hits);

  // Batched AR(1) filter step over `n` float lanes:
  //   x[i] = mean + rho * (x[i] - mean) + innov[i]
  // evaluated exactly in that operation order (sub, mul, add, add;
  // no FMA contraction), so every level is bit-exact vs scalar. Used
  // for the batch's per-lane SNR fading update.
  void (*ar1_update)(float* x, std::size_t n, float mean, float rho,
                     const float* innov);
};

// The active kernel set, chosen once on first call (thread-safe) from
// CPU capabilities and the optional SLINGSHOT_SIMD env override.
[[nodiscard]] const Kernels& kernels();
[[nodiscard]] Level active_level();

// Kernel set for a specific level, for parity tests and benchmarks.
// Returns the scalar set when `level` is not supported on this CPU.
[[nodiscard]] const Kernels& kernels_for(Level level);
[[nodiscard]] bool level_supported(Level level);

}  // namespace slingshot::simd
