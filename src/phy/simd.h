// Runtime-dispatched SIMD kernels for the PHY's two hottest inner
// loops: the normalized min-sum check-node update (ldpc.cc) and the
// max-log soft demapper (modulation.cc).
//
// Contract: every implementation is BIT-EXACT against the scalar
// reference on all finite inputs — same floats out, down to the sign
// bit. The golden-trace determinism test pins decode iteration counts
// and CRC outcomes, so a kernel that drifted by one ULP would change
// simulation results between machines. The implementations stay exact
// by construction:
//  * min/max/fabs/compare and sign manipulation are exact in IEEE-754;
//    no reassociated sums or FMA contractions are used.
//  * the min-sum magnitude is selected by value equality
//    (mag == min1 ? min2 : min1), which provably matches the scalar
//    code's position-based selection: when a non-minimal position ties
//    with min1, min2 == min1 and both forms emit the same value.
//  * the demapper replicates the scalar path's double-precision
//    division (cvtps_pd -> div_pd -> cvtpd_ps) instead of multiplying
//    by a reciprocal.
//
// Dispatch happens once, at first use: the highest level the CPU
// supports (AVX2 > SSE2 > scalar), overridable with
// SLINGSHOT_SIMD=scalar|sse2|avx2 for A/B benchmarking and tests.
// kernels_for() exposes every compiled-in level so tests can assert
// exact parity between all of them on randomized inputs.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace slingshot::simd {

enum class Level { kScalar = 0, kSse2 = 1, kAvx2 = 2 };

[[nodiscard]] const char* level_name(Level level);

struct Kernels {
  // Normalized min-sum check-node update over one check's `deg`
  // incoming messages q[0..deg): r[j] gets the sign-excluded product
  // sign * scale * mag, where mag is the smallest |q| excluding
  // position j (i.e. min2 at the argmin position, min1 elsewhere).
  // q and r must not alias.
  void (*cn_minsum)(const float* q, float* r, int deg, float scale);

  // Max-log LLR soft demap of `count` Gray-mapped square-QAM symbols.
  // `levels` holds the 1 << bits_per_dim PAM amplitudes indexed by
  // MSB-first bit pattern; `sigma2` is the per-dimension noise
  // variance. Writes 2 * bits_per_dim LLRs per symbol to `out`
  // (I-dimension bits first, then Q), positive = bit 0.
  void (*demap_soft)(const std::complex<float>* symbols, std::size_t count,
                     const float* levels, int bits_per_dim, double sigma2,
                     float* out);

  // Deadline scan over `n` signed 64-bit deadlines: appends every index
  // i with 0 <= deadlines[i] <= now to `hits` (caller-sized to at least
  // n) and returns the number appended, in ascending index order.
  // Negative deadlines mean "unarmed" and never fire. Used by the
  // massive-UE batch to sweep RLF / reattach timer lanes once per TTI
  // instead of scheduling per-UE events.
  std::size_t (*deadline_scan)(const std::int64_t* deadlines, std::size_t n,
                               std::int64_t now, std::uint32_t* hits);

  // Batched AR(1) filter step over `n` float lanes:
  //   x[i] = mean + rho * (x[i] - mean) + innov[i]
  // evaluated exactly in that operation order (sub, mul, add, add;
  // no FMA contraction), so every level is bit-exact vs scalar. Used
  // for the batch's per-lane SNR fading update.
  void (*ar1_update)(float* x, std::size_t n, float mean, float rho,
                     const float* innov);

  // ---- BFP codec kernels (fronthaul/bfp.cc fast lane) ----
  // These four cover one O-RAN BFP block: exponent scan, quantize,
  // mantissa pack/unpack, dequantize. All are bit-exact vs scalar:
  // abs/max are exact; the quantizer works in double where division
  // and multiplication by a power of two are exact and emulates
  // lround's half-away-from-zero via trunc(x + copysign(0.5, x)),
  // which is provably identical for |x| small enough to survive the
  // mantissa clamp; the dequantizer multiplies a <=16-bit integer by a
  // power of two, which is exact in float.

  // Max |x[i]| over n floats (0 for n == 0). The BFP shared-exponent
  // scan over one block's 2*n real components.
  float (*peak_abs)(const float* x, std::size_t n);

  // q[i] = clamp(lround(double(x[i]) * inv_scale), -max_m, max_m).
  // inv_scale must be a power of two (it is 2^-exponent).
  void (*bfp_quantize)(const float* x, std::size_t n, double inv_scale,
                       std::int32_t max_m, std::int32_t* q);

  // out[i] = float(q[i]) * scale. scale is a power of two, so the
  // product is exact whenever it is representable.
  void (*bfp_dequantize)(const std::int32_t* q, std::size_t n, float scale,
                         float* out);

  // Pack n two's-complement mantissas (the low m bits of q[i],
  // m in [2,16]) MSB-first into dst; returns the (n*m+7)/8 bytes
  // written, zero-padding the final partial byte's low bits. Values
  // must already be in [-(2^(m-1)-1), 2^(m-1)-1]. SIMD levels
  // specialize the byte-aligned widths (m == 8, 16) and fall back to
  // the shared 64-bit word-level core elsewhere — never to a per-bit
  // loop.
  std::size_t (*bfp_pack)(const std::int32_t* q, std::size_t n, int m,
                          std::uint8_t* dst);

  // Inverse of bfp_pack: sign-extend n m-bit mantissas from src (which
  // must hold at least (n*m+7)/8 bytes) into q.
  void (*bfp_unpack)(const std::uint8_t* src, std::size_t n, int m,
                     std::int32_t* q);
};

// The active kernel set, chosen once on first call (thread-safe) from
// CPU capabilities and the optional SLINGSHOT_SIMD env override.
[[nodiscard]] const Kernels& kernels();
[[nodiscard]] Level active_level();

// Kernel set for a specific level, for parity tests and benchmarks.
// Returns the scalar set when `level` is not supported on this CPU.
[[nodiscard]] const Kernels& kernels_for(Level level);
[[nodiscard]] bool level_supported(Level level);

}  // namespace slingshot::simd
