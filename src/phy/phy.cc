#include "phy/phy.h"

#include <algorithm>

#include "common/log.h"
#include "obs/obs.h"
#include "common/pool.h"
#include "l2/bulk_schedule.h"
#include "phy/tb_codec.h"

namespace slingshot {
namespace {
// Work-unit model: rough codec operation counts, used only for the
// compute-overhead accounting (§8.5). One unit ~ one edge update or one
// symbol map.
constexpr double kEncodeWorkPerBit = 2.0;
constexpr double kDecodeWorkPerIterPerBit = 6.0;
}  // namespace

PhyProcess::PhyProcess(Simulator& sim, std::string name, PhyConfig config,
                       Nic& nic)
    : sim_(sim),
      name_(std::move(name)),
      config_(config),
      nic_(nic),
      jitter_rng_(sim.rng().stream("phy.jitter." + name_)) {
  nic_.set_rx_handler(
      [this](Packet&& frame) { handle_fronthaul_frame(std::move(frame)); });
}

void PhyProcess::add_ru_binding(RuId ru, MacAddr ru_mac) {
  carriers_[ru].ru_mac = ru_mac;
}

void PhyProcess::power_on() {
  if (alive_) {
    return;
  }
  alive_ = true;
  const Nanos first =
      config_.slots.slot_start(config_.slots.next_slot_after(sim_.now()));
  slot_task_ = sim_.every(first, config_.slots.slot_duration, [this] {
    on_slot(config_.slots.slot_at(sim_.now()));
  });
  SLOG_INFO("phy", "%s powered on", name_.c_str());
}

void PhyProcess::kill() {
  if (!alive_) {
    return;
  }
  alive_ = false;
  slot_task_.cancel();
  if (config_.obs_phy_id != 0) {
    SLS_TRACE_EVENT(sim_, obs::ObsEvent::kPhyDown, config_.obs_phy_id,
                    config_.slots.slot_at(sim_.now()));
  }
  SLOG_INFO("phy", "%s killed (fail-stop)", name_.c_str());
}

void PhyProcess::restart() {
  if (alive_) {
    return;
  }
  // A restarted process starts from scratch: carrier configuration and
  // all inter-TTI soft state are gone. Only the operator-provisioned
  // RU address bindings (deployment config, not process state) remain.
  for (auto& [ru, carrier] : carriers_) {
    const MacAddr ru_mac = carrier.ru_mac;
    carrier = CarrierState{};
    carrier.ru_mac = ru_mac;
  }
  power_on();
  SLOG_INFO("phy", "%s restarted", name_.c_str());
}

Nanos PhyProcess::jitter() {
  return Nanos(jitter_rng_.uniform(0.0, double(config_.tx_jitter)));
}

void PhyProcess::on_fapi(FapiMessage&& msg) {
  if (!alive_) {
    return;
  }
  auto& carrier = carriers_[msg.ru];
  switch (msg.type()) {
    case FapiMsgType::kConfigRequest: {
      carrier.config = std::get<ConfigRequest>(msg.body).carrier;
      carrier.configured = true;
      send_indication(FapiMessage{msg.ru, msg.slot,
                                  ConfigResponse{msg.ru, true}});
      break;
    }
    case FapiMsgType::kStartRequest: {
      carrier.started = true;
      SLOG_INFO("phy", "%s started carrier ru=%u", name_.c_str(),
                msg.ru.value());
      break;
    }
    case FapiMsgType::kStopRequest: {
      carrier.started = false;
      break;
    }
    case FapiMsgType::kDlTtiRequest: {
      const auto current = config_.slots.slot_at(sim_.now());
      if (msg.slot < current) {
        ++stats_.late_fapi_dropped;
        // FAPI error handling: a request for a past slot is rejected
        // with MSG_SLOT_ERR back to the sender.
        send_indication(FapiMessage{
            msg.ru, msg.slot,
            ErrorIndication{kFapiMsgSlotErr, FapiMsgType::kDlTtiRequest}});
        break;
      }
      carrier.fapi_seen = true;
      auto req = std::get<DlTtiRequest>(std::move(msg.body));
      // PDCCH: queue the UL grant DCIs for over-the-air announcement in
      // this request's slot (they ride the DL control plane).
      for (const auto& dci : req.ul_dci) {
        UlGrant grant;
        grant.ue = dci.pdu.ue;
        grant.target_slot = dci.target_slot;
        grant.mcs = dci.pdu.mcs;
        grant.tb_bytes = dci.pdu.tb_bytes;
        grant.harq = dci.pdu.harq;
        grant.new_data = dci.pdu.new_data;
        carrier.pending_grant_announcements.push_back(grant);
      }
      carrier.dl_reqs[msg.slot] = std::move(req);
      break;
    }
    case FapiMsgType::kUlTtiRequest: {
      const auto current = config_.slots.slot_at(sim_.now());
      if (msg.slot < current) {
        ++stats_.late_fapi_dropped;
        send_indication(FapiMessage{
            msg.ru, msg.slot,
            ErrorIndication{kFapiMsgSlotErr, FapiMsgType::kUlTtiRequest}});
        break;
      }
      carrier.fapi_seen = true;
      carrier.ul_reqs[msg.slot] = std::get<UlTtiRequest>(std::move(msg.body));
      break;
    }
    case FapiMsgType::kTxDataRequest: {
      carrier.tx_data[msg.slot] = std::get<TxDataRequest>(std::move(msg.body));
      break;
    }
    default:
      break;
  }
}

void PhyProcess::on_slot(std::int64_t slot) {
  if (!alive_) {
    return;
  }
  ++stats_.slots_processed;
  for (auto& [ru, carrier] : carriers_) {
    if (carrier.started) {
      process_carrier_slot(carrier, slot);
    }
  }
}

void PhyProcess::process_carrier_slot(CarrierState& carrier,
                                      std::int64_t slot) {
  SLS_TRACE_STAGE(sim_, obs::SlotStage::kPhySlot, carrier.config.ru.value(),
                  slot);
  // ---- FAPI starvation check (the FlexRAN crash behaviour, §6.2).
  const bool have_dl = carrier.dl_reqs.contains(slot);
  const bool have_ul = carrier.ul_reqs.contains(slot);
  if (carrier.fapi_seen) {
    if (!have_dl && !have_ul) {
      ++carrier.missing_streak;
      ++stats_.fapi_starved_slots;
      if (config_.crash_on_fapi_starvation &&
          carrier.missing_streak >= config_.crash_after_missing_slots) {
        SLOG_WARN("phy", "%s crashing: FAPI starved for %d slots",
                  name_.c_str(), carrier.missing_streak);
        kill();
        return;
      }
    } else {
      carrier.missing_streak = 0;
    }
  }

  send_indication(
      FapiMessage{carrier.config.ru, slot, SlotIndication{}});

  const auto dl_it = carrier.dl_reqs.find(slot);
  const auto tx_it = carrier.tx_data.find(slot);
  const DlTtiRequest* dl_req =
      dl_it != carrier.dl_reqs.end() ? &dl_it->second : nullptr;
  const TxDataRequest* tx =
      tx_it != carrier.tx_data.end() ? &tx_it->second : nullptr;

  const bool has_work =
      (dl_req != nullptr && !dl_req->pdus.empty()) ||
      (have_ul && !carrier.ul_reqs[slot].pdus.empty());
  if (have_dl || have_ul) {
    has_work ? ++stats_.work_slots : ++stats_.null_slots;
  }

  emit_downlink(carrier, slot, dl_req, tx);

  // ---- Pipelined uplink: decode the slot whose deadline is now.
  const auto decode_slot = slot - config_.ul_pipeline_slots;
  decode_uplink(carrier, decode_slot);

  // ---- Garbage-collect consumed per-slot state.
  carrier.dl_reqs.erase(carrier.dl_reqs.begin(),
                        carrier.dl_reqs.upper_bound(slot));
  carrier.tx_data.erase(carrier.tx_data.begin(),
                        carrier.tx_data.upper_bound(slot));
  carrier.ul_reqs.erase(carrier.ul_reqs.begin(),
                        carrier.ul_reqs.upper_bound(decode_slot));
  const auto ul_rx_end = carrier.ul_rx.upper_bound(decode_slot);
  for (auto it = carrier.ul_rx.begin(); it != ul_rx_end; ++it) {
    for (auto& section : it->second) {
      // Consumed sections' buffers go back to the packet pools.
      BufferPools::instance().iq.release(std::move(section.iq));
      BufferPools::instance().bytes.release(std::move(section.shadow_payload));
    }
  }
  carrier.ul_rx.erase(carrier.ul_rx.begin(), ul_rx_end);
}

void PhyProcess::emit_downlink(CarrierState& carrier, std::int64_t slot,
                               const DlTtiRequest* dl_req,
                               const TxDataRequest* tx) {
  const Nanos slot_start = config_.slots.slot_start(slot);
  const auto point = SlotPoint::from_index(slot, config_.slots);
  const RuId ru = carrier.config.ru;

  // --- Control plane: scheduling info early in the slot. This is the
  // per-TTI heartbeat the in-switch failure detector relies on.
  FronthaulPacket cplane;
  cplane.header.direction = FhDirection::kDownlink;
  cplane.header.plane = FhPlane::kControl;
  cplane.header.slot = point;
  cplane.header.ru = ru;
  if (dl_req != nullptr && config_.slots.is_downlink(slot)) {
    for (const auto& pdu : dl_req->pdus) {
      if (is_bulk_ue(pdu.ue)) {
        continue;  // bulk grants are implicit — never announced on PDCCH
      }
      DlAssignment a;
      a.ue = pdu.ue;
      a.mcs = pdu.mcs;
      a.tb_bytes = pdu.tb_bytes;
      a.harq = pdu.harq;
      a.new_data = pdu.new_data;
      cplane.cplane.dl_assignments.push_back(a);
    }
  }
  cplane.cplane.ul_grants = std::move(carrier.pending_grant_announcements);
  carrier.pending_grant_announcements.clear();

  const MacAddr ru_mac = carrier.ru_mac;
  const Nanos t_cplane = slot_start + config_.cplane_offset + jitter();
  sim_.at(std::max(t_cplane, sim_.now()), [this, ru_mac, cplane] {
    if (alive_) {
      nic_.send(make_fronthaul_frame(nic_.mac(), ru_mac, cplane));
    }
  });

  // --- User plane: encode DL transport blocks (real work).
  if (dl_req != nullptr && !dl_req->pdus.empty() && tx != nullptr &&
      config_.slots.is_downlink(slot)) {
    FronthaulPacket uplane;
    uplane.header.direction = FhDirection::kDownlink;
    uplane.header.plane = FhPlane::kUser;
    uplane.header.slot = point;
    uplane.header.symbol = 2;
    uplane.header.ru = ru;
    for (std::size_t i = 0; i < dl_req->pdus.size(); ++i) {
      const auto& pdu = dl_req->pdus[i];
      if (i >= tx->payloads.size()) {
        break;
      }
      const auto& payload = tx->payloads[i];
      const auto mod = mcs_entry(pdu.mcs).modulation;
      auto encoded = encode_tb(payload, mod);
      ++stats_.dl_tbs_encoded;
      stats_.work_units += kEncodeWorkPerBit * double(encoded.codeword_bits);
      UPlaneSection section;
      section.ue = pdu.ue;
      section.harq = pdu.harq;
      section.new_data = pdu.new_data;
      section.mcs = pdu.mcs;
      section.tb_bytes = pdu.tb_bytes;
      section.codeword_bits = encoded.codeword_bits;
      section.bfp_mantissa_bits = config_.dl_bfp_mantissa_bits;
      section.iq = std::move(encoded.iq);
      section.shadow_payload = payload;
      uplane.uplane.sections.push_back(std::move(section));
    }
    const Nanos t_uplane = slot_start + config_.uplane_offset + jitter();
    sim_.at(std::max(t_uplane, sim_.now()),
            [this, ru_mac, up = std::move(uplane)] {
              if (alive_) {
                nic_.send(make_fronthaul_frame(nic_.mac(), ru_mac, up));
              }
            });
  }

  // --- Bulk U-plane: the trailing payload-less bulk pdus (massive-UE
  // pools) radiate as zero-IQ marker sections in their own packet — the
  // batch models the decode, so the PHY does no encode work and draws
  // no jitter for them (a fixed offset keeps the tracer RNG sequence
  // identical with and without a bulk pool on the carrier).
  if (dl_req != nullptr && config_.slots.is_downlink(slot)) {
    FronthaulPacket bulk;
    bulk.header.direction = FhDirection::kDownlink;
    bulk.header.plane = FhPlane::kUser;
    bulk.header.slot = point;
    bulk.header.symbol = 4;
    bulk.header.ru = ru;
    for (const auto& pdu : dl_req->pdus) {
      if (!is_bulk_ue(pdu.ue)) {
        continue;
      }
      UPlaneSection section;
      section.ue = pdu.ue;
      section.harq = pdu.harq;
      section.new_data = pdu.new_data;
      section.mcs = pdu.mcs;
      section.tb_bytes = pdu.tb_bytes;
      section.codeword_bits = 0;
      section.bfp_mantissa_bits = config_.dl_bfp_mantissa_bits;
      bulk.uplane.sections.push_back(std::move(section));
      ++stats_.dl_bulk_sections;
    }
    if (!bulk.uplane.sections.empty()) {
      const Nanos t_bulk =
          slot_start + config_.uplane_offset + config_.tx_jitter;
      sim_.at(std::max(t_bulk, sim_.now()),
              [this, ru_mac, up = std::move(bulk)] {
                if (alive_) {
                  nic_.send(make_fronthaul_frame(nic_.mac(), ru_mac, up));
                }
              });
    }
  }

  // --- Mid-slot always-on sync signal (SSB/CSI-RS-like): keeps the DL
  // packet stream dense even in idle slots, which is why the measured
  // max inter-packet gap stays below one slot duration (§8.6).
  FronthaulPacket sync;
  sync.header.direction = FhDirection::kDownlink;
  sync.header.plane = FhPlane::kControl;
  sync.header.slot = point;
  sync.header.symbol = 7;
  sync.header.ru = ru;
  const Nanos t_sync = slot_start + config_.midslot_sync_offset + jitter();
  sim_.at(std::max(t_sync, sim_.now()), [this, ru_mac, sync] {
    if (alive_) {
      nic_.send(make_fronthaul_frame(nic_.mac(), ru_mac, sync));
    }
  });
}

void PhyProcess::decode_uplink(CarrierState& carrier,
                               std::int64_t decode_slot) {
  const auto req_it = carrier.ul_reqs.find(decode_slot);
  if (req_it == carrier.ul_reqs.end() || req_it->second.pdus.empty()) {
    return;
  }
  const auto& pdus = req_it->second.pdus;
  auto rx_it = carrier.ul_rx.find(decode_slot);
  static const std::vector<UPlaneSection> kNoSections;
  const auto& sections =
      rx_it != carrier.ul_rx.end() ? rx_it->second : kNoSections;

  CrcIndication crc_ind;
  RxDataIndication rx_ind;

  // A slot granting the same (UE, HARQ) process twice (never produced
  // by our L2, but legal FAPI) chains decode i's stored soft bits into
  // decode i+1's prior — an inter-task dependency the fork-join
  // contract forbids. Pre-scan (no state mutation yet) and send such
  // slots down the strictly serial pre-pool path, identical at every
  // thread count.
  bool repeated_harq_process = false;
  for (std::size_t i = 0; i + 1 < pdus.size() && !repeated_harq_process;
       ++i) {
    for (std::size_t j = i + 1; j < pdus.size(); ++j) {
      if (pdus[i].ue == pdus[j].ue && pdus[i].harq == pdus[j].harq) {
        repeated_harq_process = true;
        break;
      }
    }
  }

  if (!repeated_harq_process) {
    // ---- Phase 1 (serial, PDU order): stage one task per PDU. All
    // mutable-state reads a decode depends on — the HARQ prior (after
    // new_data handling) and the received section — are resolved here,
    // so each staged task is a pure function of its own inputs. The
    // staged pointers stay valid through the fork: HarqSoftBufferStore
    // is node-based (operations on other keys don't move entries) and
    // no store/release happens before the commit phase.
    decode_tasks_.clear();
    for (const auto& pdu : pdus) {
      DecodeTask task;
      task.pdu = &pdu;
      task.filter =
          &carrier.snr_filters
               .try_emplace(pdu.ue.value(), config_.snr_filter_alpha)
               .first->second;
      const auto section_it = std::find_if(
          sections.begin(), sections.end(),
          [&](const UPlaneSection& s) { return s.ue == pdu.ue; });
      if (section_it != sections.end()) {
        task.section = &*section_it;
        task.mod = mcs_entry(section_it->mcs).modulation;
        if (pdu.new_data) {
          carrier.harq.start_new(pdu.ue, pdu.harq);
        }
        const auto* buffer = carrier.harq.find(pdu.ue, pdu.harq);
        task.prior = buffer != nullptr ? &buffer->llrs : nullptr;
      }
      decode_tasks_.push_back(std::move(task));
    }

    // ---- Phase 2: fork-join decode. Tasks are enqueued in fixed PDU
    // order and each writes only its own result slot and per-worker
    // workspace, so the joined results are bit-identical at every
    // thread count; the join returns before the event loop advances.
    const int workers = sim_.parallel_workers();
    if (int(worker_ws_.size()) < workers) {
      worker_ws_.resize(std::size_t(workers));
    }
    sim_.run_parallel(decode_tasks_.size(), [&](std::size_t i, int worker) {
      DecodeTask& task = decode_tasks_[i];
      if (task.section == nullptr) {
        return;
      }
      task.result = decode_tb(task.section->iq, task.mod,
                              task.section->shadow_payload,
                              config_.ldpc_max_iters, task.prior,
                              LdpcCode::standard(),
                              &worker_ws_[std::size_t(worker)]);
    });

    // ---- Phase 3 (serial, PDU order): commit results — stats, SNR
    // filters, HARQ buffers, indications — exactly as the serial
    // decoder did, on the event-loop thread.
    for (auto& task : decode_tasks_) {
      const auto& pdu = *task.pdu;
      Ewma& filter = *task.filter;

      CrcEntry entry;
      entry.ue = pdu.ue;
      entry.harq = pdu.harq;

      if (task.section == nullptr) {
        // Granted but no signal arrived (UE missed the grant, or
        // fronthaul packets were lost during migration):
        // indistinguishable from decoding a noisy channel — CRC failure.
        ++stats_.ul_missing_sections;
        entry.ok = false;
        entry.snr_db = float(filter.initialized() ? filter.value()
                                                  : config_.default_snr_db);
        crc_ind.entries.push_back(entry);
        continue;
      }

      if (task.prior != nullptr) {
        ++stats_.harq_combines;
      }
      auto& result = task.result;
      ++stats_.ul_tbs_decoded;
      stats_.decode_iterations += result.iterations_used;
      stats_.work_units += kDecodeWorkPerIterPerBit *
                           double(result.iterations_used) *
                           double(task.section->codeword_bits);

      // Update the per-UE SNR moving average (soft state, §4.2).
      filter.add(result.est_snr_db);
      entry.snr_db = float(filter.value());
      entry.ok = result.crc_ok;
      crc_ind.entries.push_back(entry);

      if (result.crc_ok) {
        ++stats_.ul_crc_ok;
        carrier.harq.release(pdu.ue, pdu.harq);
        RxPdu rx;
        rx.ue = pdu.ue;
        rx.harq = pdu.harq;
        rx.payload = task.section->shadow_payload;
        rx_ind.pdus.push_back(std::move(rx));
      } else {
        ++stats_.ul_crc_fail;
        carrier.harq.store(pdu.ue, pdu.harq,
                           std::move(result.combined_llrs));
      }
    }
  } else {
    for (const auto& pdu : pdus) {
      auto& filter =
          carrier.snr_filters
              .try_emplace(pdu.ue.value(), config_.snr_filter_alpha)
              .first->second;

      const auto section_it = std::find_if(
          sections.begin(), sections.end(),
          [&](const UPlaneSection& s) { return s.ue == pdu.ue; });

      CrcEntry entry;
      entry.ue = pdu.ue;
      entry.harq = pdu.harq;

      if (section_it == sections.end()) {
        ++stats_.ul_missing_sections;
        entry.ok = false;
        entry.snr_db = float(filter.initialized() ? filter.value()
                                                  : config_.default_snr_db);
        crc_ind.entries.push_back(entry);
        continue;
      }

      const auto& section = *section_it;
      if (pdu.new_data) {
        carrier.harq.start_new(pdu.ue, pdu.harq);
      }
      const auto* buffer = carrier.harq.find(pdu.ue, pdu.harq);
      const std::vector<float>* prior =
          buffer != nullptr ? &buffer->llrs : nullptr;
      if (prior != nullptr) {
        ++stats_.harq_combines;
      }

      const auto mod = mcs_entry(section.mcs).modulation;
      auto result = decode_tb(section.iq, mod, section.shadow_payload,
                              config_.ldpc_max_iters, prior,
                              LdpcCode::standard(), &worker_ws_[0]);
      ++stats_.ul_tbs_decoded;
      stats_.decode_iterations += result.iterations_used;
      stats_.work_units += kDecodeWorkPerIterPerBit *
                           double(result.iterations_used) *
                           double(section.codeword_bits);

      filter.add(result.est_snr_db);
      entry.snr_db = float(filter.value());
      entry.ok = result.crc_ok;
      crc_ind.entries.push_back(entry);

      if (result.crc_ok) {
        ++stats_.ul_crc_ok;
        carrier.harq.release(pdu.ue, pdu.harq);
        RxPdu rx;
        rx.ue = pdu.ue;
        rx.harq = pdu.harq;
        rx.payload = section.shadow_payload;
        rx_ind.pdus.push_back(std::move(rx));
      } else {
        ++stats_.ul_crc_fail;
        carrier.harq.store(pdu.ue, pdu.harq, std::move(result.combined_llrs));
      }
    }
  }

  // Indications go out shortly after the decode deadline.
  const Nanos t_ind = sim_.now() + config_.ul_indication_offset + jitter();
  const RuId ru = carrier.config.ru;
  if (!crc_ind.entries.empty()) {
    SLS_TRACE_STAGE(sim_, obs::SlotStage::kPhyDecode, ru.value(),
                    decode_slot);
  }
  if (!crc_ind.entries.empty()) {
    sim_.at(t_ind, [this, ru, decode_slot, ind = std::move(crc_ind)]() mutable {
      if (alive_) {
        send_indication(FapiMessage{ru, decode_slot, std::move(ind)});
      }
    });
  }
  if (!rx_ind.pdus.empty()) {
    sim_.at(t_ind, [this, ru, decode_slot, ind = std::move(rx_ind)]() mutable {
      if (alive_) {
        send_indication(FapiMessage{ru, decode_slot, std::move(ind)});
      }
    });
  }
}

void PhyProcess::handle_fronthaul_frame(Packet&& frame) {
  if (!alive_ || frame.eth.ethertype != EtherType::kEcpri) {
    return;
  }
  FronthaulPacket packet;
  try {
    packet = parse_fronthaul(frame.payload);
  } catch (const std::exception&) {
    return;  // corrupt fronthaul packet: drop
  }
  // Parsing copied everything out; recycle the wire buffer.
  BufferPools::instance().bytes.release(std::move(frame.payload));
  if (packet.header.direction != FhDirection::kUplink) {
    return;
  }
  auto it = carriers_.find(packet.header.ru);
  if (it == carriers_.end() || !it->second.started) {
    return;
  }
  auto& carrier = it->second;
  const auto current = config_.slots.slot_at(sim_.now());
  const auto abs_slot = packet.header.slot.unwrap(current, config_.slots);

  if (packet.header.plane == FhPlane::kUser) {
    auto& store = carrier.ul_rx[abs_slot];
    for (auto& section : packet.uplane.sections) {
      store.push_back(std::move(section));
    }
  } else {
    // UL control plane: UCI (HARQ feedback) from UEs — forward to L2.
    UciIndication ind;
    for (const auto& uci : packet.cplane.uci) {
      ind.entries.push_back(UciEntry{uci.ue, uci.harq, uci.ack});
    }
    if (!ind.entries.empty()) {
      send_indication(
          FapiMessage{packet.header.ru, abs_slot, std::move(ind)});
    }
  }
}

void PhyProcess::send_indication(FapiMessage&& msg) {
  if (fapi_out_ != nullptr) {
    fapi_out_->send(std::move(msg));
  }
}

void PhyProcess::transfer_soft_state_from(const PhyProcess& other) {
  for (const auto& [ru, theirs] : other.carriers_) {
    auto& mine = carriers_[ru];
    mine.harq = theirs.harq;
    mine.snr_filters = theirs.snr_filters;
  }
}

double PhyProcess::filtered_snr_db(RuId ru, UeId ue) const {
  const auto it = carriers_.find(ru);
  if (it == carriers_.end()) {
    return config_.default_snr_db;
  }
  const auto f = it->second.snr_filters.find(ue.value());
  if (f == it->second.snr_filters.end() || !f->second.initialized()) {
    return config_.default_snr_db;
  }
  return f->second.value();
}

}  // namespace slingshot
