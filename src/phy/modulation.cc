#include "phy/modulation.h"

#include <cmath>
#include <stdexcept>

#include "phy/simd.h"

namespace slingshot {

const Modulator& modulator_for(Modulation mod) {
  // The level tables are immutable after construction; building each
  // order once removes a heap allocation from every TB encode/decode
  // (magic statics make first use thread-safe, so pooled decode workers
  // can share them).
  static const Modulator qpsk{Modulation::kQpsk};
  static const Modulator qam16{Modulation::kQam16};
  static const Modulator qam64{Modulation::kQam64};
  static const Modulator qam256{Modulation::kQam256};
  switch (mod) {
    case Modulation::kQpsk: return qpsk;
    case Modulation::kQam16: return qam16;
    case Modulation::kQam64: return qam64;
    case Modulation::kQam256: return qam256;
  }
  return qpsk;
}

const char* modulation_name(Modulation mod) {
  switch (mod) {
    case Modulation::kQpsk: return "QPSK";
    case Modulation::kQam16: return "16QAM";
    case Modulation::kQam64: return "64QAM";
    case Modulation::kQam256: return "256QAM";
  }
  return "?";
}

Modulator::Modulator(Modulation mod)
    : mod_(mod), bits_per_dim_(bits_per_symbol(mod) / 2) {
  const int levels = 1 << bits_per_dim_;
  // Unit average symbol energy: each dimension carries half the energy.
  // E[level^2] over uniform levels {±1, ±3, ...} * scale is
  // scale^2 * (L^2 - 1) / 3; two dimensions double it.
  const double scale = std::sqrt(3.0 / (2.0 * (levels * levels - 1)));
  levels_.assign(std::size_t(levels), 0.0F);
  for (int i = 0; i < levels; ++i) {
    const int gray = i ^ (i >> 1);
    // PAM amplitude for natural index i; stored at the Gray pattern so
    // that looking up by bit pattern yields the level.
    levels_[std::size_t(gray)] = float((2 * i - (levels - 1)) * scale);
  }
}

std::vector<std::complex<float>> Modulator::modulate(
    std::span<const std::uint8_t> bits) const {
  const int bps = bits_per_symbol(mod_);
  if (bits.size() % std::size_t(bps) != 0) {
    throw std::invalid_argument{"Modulator::modulate: bit count"};
  }
  std::vector<std::complex<float>> symbols;
  symbols.reserve(bits.size() / std::size_t(bps));
  for (std::size_t i = 0; i < bits.size(); i += std::size_t(bps)) {
    unsigned i_pattern = 0;
    unsigned q_pattern = 0;
    // First half of the symbol's bits -> I dimension, second half -> Q.
    for (int b = 0; b < bits_per_dim_; ++b) {
      i_pattern = (i_pattern << 1) | (bits[i + std::size_t(b)] & 1U);
      q_pattern =
          (q_pattern << 1) |
          (bits[i + std::size_t(bits_per_dim_ + b)] & 1U);
    }
    symbols.emplace_back(levels_[i_pattern], levels_[q_pattern]);
  }
  return symbols;
}

std::vector<float> Modulator::demap(
    std::span<const std::complex<float>> symbols,
    double noise_variance) const {
  std::vector<float> llrs;
  demap_into(symbols, noise_variance, llrs);
  return llrs;
}

void Modulator::demap_into(std::span<const std::complex<float>> symbols,
                           double noise_variance,
                           std::vector<float>& out) const {
  const int bps = bits_per_symbol(mod_);
  // Per-dimension noise variance.
  const double sigma2 = std::max(noise_variance / 2.0, 1e-9);
  out.resize(symbols.size() * std::size_t(bps));

  // Max-log LLR per bit position: min distance^2 over levels with
  // bit=1 minus min over bit=0, scaled by 1/(2 sigma^2) (positive =>
  // bit 0). The SIMD-dispatched kernel is bit-exact against the scalar
  // reference (phy/simd.h).
  simd::kernels().demap_soft(symbols.data(), symbols.size(), levels_.data(),
                             bits_per_dim_, sigma2, out.data());
}

}  // namespace slingshot
