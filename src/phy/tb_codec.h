// Transport-block <-> representative-codeword codec: the complete
// bit-level transmit and receive chains.
//
// Transmit: CRC24A over the whole TB payload + the payload's leading
// bits form the LDPC info block; encode; Gray-QAM modulate; prepend
// known pilot symbols.
//
// Receive: least-squares channel estimation from the pilots, single-tap
// MMSE equalization, max-log LLR demapping, optional HARQ chase
// combining with a prior LLR buffer, LDPC belief-propagation decoding,
// and CRC verification against the shadow payload. The receiver also
// produces a post-equalization SNR estimate — the quantity the PHY's
// per-UE moving-average filter tracks (§4.2).
#pragma once

#include <complex>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "phy/ldpc.h"
#include "phy/modulation.h"

namespace slingshot {

inline constexpr int kNumPilotSymbols = 16;

struct TbEncodeResult {
  std::vector<std::complex<float>> iq;  // pilots + data symbols
  std::uint32_t codeword_bits = 0;
};

// Encode a TB payload into over-the-air symbols.
[[nodiscard]] TbEncodeResult encode_tb(std::span<const std::uint8_t> payload,
                                       Modulation mod,
                                       const LdpcCode& code = LdpcCode::standard());

struct TbDecodeResult {
  bool crc_ok = false;
  bool parity_ok = false;
  double est_snr_db = 0.0;  // post-equalization estimate from pilots
  int iterations_used = 0;
  std::vector<float> combined_llrs;  // post-combining channel LLRs
};

// Caller-owned scratch for decode_tb(): equalized symbols, LLRs, the
// decoded/expected info blocks, and the LDPC decoder's workspace. A
// long-lived receiver (PHY process, UE modem) keeps one and decodes
// every TB through it without per-TB heap traffic.
struct TbDecodeWorkspace {
  std::vector<std::complex<float>> eq;
  std::vector<float> llrs;
  std::vector<std::uint8_t> info;
  std::vector<std::uint8_t> payload_bits;
  LdpcCode::DecodeWorkspace ldpc;
};

// Decode received symbols. `shadow_payload` is the TB's byte content
// (travelling losslessly alongside the codeword); CRC verification
// checks the decoded info block against it. If `prior_llrs` is
// non-null, its values are chase-combined with this transmission's LLRs
// (HARQ). The combined LLRs are returned so the caller can store them
// in its soft buffer. Passing a reusable `ws` removes the per-TB scratch
// allocations (a thread-local workspace is used otherwise).
[[nodiscard]] TbDecodeResult decode_tb(
    std::span<const std::complex<float>> iq, Modulation mod,
    std::span<const std::uint8_t> shadow_payload, int max_ldpc_iterations,
    const std::vector<float>* prior_llrs = nullptr,
    const LdpcCode& code = LdpcCode::standard(),
    TbDecodeWorkspace* ws = nullptr,
    LdpcSchedule schedule = LdpcSchedule::kFlooding);

// The fixed pilot sequence (unit-energy QPSK, pseudo-random).
[[nodiscard]] std::span<const std::complex<float>> pilot_sequence();

// Build the LDPC info block for a payload: CRC24A followed by the
// payload's leading bits, zero-padded to k bits.
[[nodiscard]] std::vector<std::uint8_t> build_info_block(
    std::span<const std::uint8_t> payload, const LdpcCode& code);

}  // namespace slingshot
