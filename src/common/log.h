// Minimal leveled logger. The simulator installs a time source so log
// lines carry virtual time; default is wall-clock-free "t=?".
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/time.h"

namespace slingshot {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Install a virtual-time source (e.g. the simulator clock).
  void set_time_source(std::function<Nanos()> source) {
    time_source_ = std::move(source);
  }
  void clear_time_source() { time_source_ = nullptr; }

  void log(LogLevel level, const char* component, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<Nanos()> time_source_;
};

namespace detail {
std::string format_args(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define SLOG(level, component, ...)                                       \
  do {                                                                    \
    auto& logger_ = ::slingshot::Logger::instance();                      \
    if (logger_.enabled(level)) {                                         \
      logger_.log(level, component,                                       \
                  ::slingshot::detail::format_args(__VA_ARGS__));         \
    }                                                                     \
  } while (0)

#define SLOG_DEBUG(component, ...) \
  SLOG(::slingshot::LogLevel::kDebug, component, __VA_ARGS__)
#define SLOG_INFO(component, ...) \
  SLOG(::slingshot::LogLevel::kInfo, component, __VA_ARGS__)
#define SLOG_WARN(component, ...) \
  SLOG(::slingshot::LogLevel::kWarn, component, __VA_ARGS__)
#define SLOG_ERROR(component, ...) \
  SLOG(::slingshot::LogLevel::kError, component, __VA_ARGS__)

}  // namespace slingshot
