// Minimal leveled logger. The simulator installs a time source so log
// lines carry virtual time; default is wall-clock-free "t=?".
#pragma once

#include <cstdio>
#include <functional>
#include <string>

#include "common/time.h"

namespace slingshot {

enum class LogLevel : int {
  kTrace = 0,
  kDebug = 1,
  kInfo = 2,
  kWarn = 3,
  kError = 4,
  kOff = 5,
};

class Logger {
 public:
  static Logger& instance();

  void set_level(LogLevel level) { level_ = level; }
  [[nodiscard]] LogLevel level() const { return level_; }
  [[nodiscard]] bool enabled(LogLevel level) const { return level >= level_; }

  // Install a virtual-time source (e.g. the simulator clock). The source
  // almost always captures an object with narrower lifetime than this
  // singleton — prefer ScopedLogTimeSource below, which guarantees the
  // callback is removed before its captures die.
  void set_time_source(std::function<Nanos()> source) {
    time_source_ = std::move(source);
  }
  void clear_time_source() { time_source_ = nullptr; }
  // Swap in a new source and return the previous one (for nested scopes).
  std::function<Nanos()> exchange_time_source(std::function<Nanos()> source) {
    std::function<Nanos()> prev = std::move(time_source_);
    time_source_ = std::move(source);
    return prev;
  }
  [[nodiscard]] bool has_time_source() const {
    return static_cast<bool>(time_source_);
  }

  void log(LogLevel level, const char* component, const std::string& message);

 private:
  Logger() = default;
  LogLevel level_ = LogLevel::kWarn;
  std::function<Nanos()> time_source_;
};

// RAII guard for the Logger time source. install() swaps the source in
// and remembers the one it displaced; destruction (or release()) puts the
// previous source back, so a log call after the owning simulator dies can
// never invoke a dangling callback. Declare the guard *after* the objects
// the callback captures, so it is destroyed first.
class ScopedLogTimeSource {
 public:
  ScopedLogTimeSource() = default;
  explicit ScopedLogTimeSource(std::function<Nanos()> source) {
    install(std::move(source));
  }
  ScopedLogTimeSource(const ScopedLogTimeSource&) = delete;
  ScopedLogTimeSource& operator=(const ScopedLogTimeSource&) = delete;
  ~ScopedLogTimeSource() { release(); }

  void install(std::function<Nanos()> source) {
    release();
    previous_ = Logger::instance().exchange_time_source(std::move(source));
    installed_ = true;
  }
  // Restore the displaced source early; idempotent.
  void release() {
    if (installed_) {
      Logger::instance().set_time_source(std::move(previous_));
      previous_ = nullptr;
      installed_ = false;
    }
  }
  [[nodiscard]] bool installed() const { return installed_; }

 private:
  std::function<Nanos()> previous_;
  bool installed_ = false;
};

namespace detail {
std::string format_args(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));
}  // namespace detail

#define SLOG(level, component, ...)                                       \
  do {                                                                    \
    auto& logger_ = ::slingshot::Logger::instance();                      \
    if (logger_.enabled(level)) {                                         \
      logger_.log(level, component,                                       \
                  ::slingshot::detail::format_args(__VA_ARGS__));         \
    }                                                                     \
  } while (0)

#define SLOG_DEBUG(component, ...) \
  SLOG(::slingshot::LogLevel::kDebug, component, __VA_ARGS__)
#define SLOG_INFO(component, ...) \
  SLOG(::slingshot::LogLevel::kInfo, component, __VA_ARGS__)
#define SLOG_WARN(component, ...) \
  SLOG(::slingshot::LogLevel::kWarn, component, __VA_ARGS__)
#define SLOG_ERROR(component, ...) \
  SLOG(::slingshot::LogLevel::kError, component, __VA_ARGS__)

}  // namespace slingshot
