// Deterministic random-number streams.
//
// Every stochastic element of the simulation (channel noise, fading,
// jitter, loss) draws from its own named stream derived from the global
// experiment seed, so experiments are exactly reproducible and
// independent components don't perturb each other's draws.
#pragma once

#include <cstdint>
#include <random>
#include <string_view>

namespace slingshot {

// splitmix64 — used to whiten (seed, name-hash) pairs into stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : s) {
    h = (h ^ std::uint8_t(c)) * 0x100000001B3ULL;
  }
  return h;
}

// One independent random stream. Thin wrapper over mt19937_64 with the
// distributions the simulator needs.
class RngStream {
 public:
  explicit RngStream(std::uint64_t seed) : engine_(seed) {}

  [[nodiscard]] double uniform() { return uniform_(engine_); }
  [[nodiscard]] double uniform(double lo, double hi) {
    return lo + (hi - lo) * uniform();
  }
  [[nodiscard]] double gaussian(double mean = 0.0, double stddev = 1.0) {
    return mean + stddev * normal_(engine_);
  }
  [[nodiscard]] double exponential(double mean) {
    return -mean * std::log(1.0 - uniform());
  }
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }
  [[nodiscard]] int uniform_int(int lo, int hi) {  // inclusive range
    return int(lo + std::int64_t(next_u64() % std::uint64_t(hi - lo + 1)));
  }
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> uniform_{0.0, 1.0};
  std::normal_distribution<double> normal_{0.0, 1.0};
};

// Factory for named streams derived from a single experiment seed.
class RngRegistry {
 public:
  explicit RngRegistry(std::uint64_t experiment_seed)
      : seed_(experiment_seed) {}

  [[nodiscard]] RngStream stream(std::string_view name) const {
    return RngStream{splitmix64(seed_ ^ fnv1a(name))};
  }
  [[nodiscard]] RngStream stream(std::string_view name,
                                 std::uint64_t index) const {
    return RngStream{splitmix64(splitmix64(seed_ ^ fnv1a(name)) + index)};
  }
  [[nodiscard]] std::uint64_t seed() const { return seed_; }

 private:
  std::uint64_t seed_;
};

}  // namespace slingshot
