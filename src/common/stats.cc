#include "common/stats.h"

#include <cmath>
#include <limits>

namespace slingshot {

double RunningStats::stddev() const { return std::sqrt(variance()); }

double PercentileTracker::quantile(double q) {
  if (samples_.empty()) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  const auto& s = sorted_samples();
  const double pos = q * double(s.size() - 1);
  const auto lo = std::size_t(pos);
  const auto hi = std::min(lo + 1, s.size() - 1);
  const double frac = pos - double(lo);
  return s[lo] * (1.0 - frac) + s[hi] * frac;
}

const std::vector<double>& PercentileTracker::sorted_samples() {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return samples_;
}

void TimeBinnedCounter::add(Nanos t, double amount) {
  if (t < start_) {
    return;
  }
  const auto idx = std::size_t((t - start_) / bin_width_);
  if (idx >= bins_.size()) {
    bins_.resize(idx + 1, 0.0);
  }
  bins_[idx] += amount;
}

}  // namespace slingshot
