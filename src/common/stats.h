// Statistics collectors used by benchmarks and metrics pipelines:
// running moments, exact percentiles, time-binned series, and the
// exponentially-weighted moving average the PHY uses for its per-UE SNR
// filter (§4.2).
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/time.h"

namespace slingshot {

// Running mean / min / max / stddev without storing samples.
//
// Empty-collector contract: min(), max() (and PercentileTracker::
// quantile()) return quiet NaN when count() == 0, so "no samples" is
// distinguishable from a real 0.0 sample.  Consumers that serialize
// these values must check count() or std::isnan first — bare NaN is not
// valid JSON.
class RunningStats {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / double(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }

  [[nodiscard]] std::int64_t count() const { return n_; }
  [[nodiscard]] double mean() const { return mean_; }
  [[nodiscard]] double variance() const {
    return n_ > 1 ? m2_ / double(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const;
  // NaN when empty (see class comment).
  [[nodiscard]] double min() const {
    return n_ ? min_ : std::numeric_limits<double>::quiet_NaN();
  }
  [[nodiscard]] double max() const {
    return n_ ? max_ : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::int64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Stores samples; computes exact quantiles on demand.
class PercentileTracker {
 public:
  void add(double x) {
    samples_.push_back(x);
    sorted_ = false;
  }
  // Pre-size the sample store so hot-path add() never reallocates.
  void reserve(std::size_t n) { samples_.reserve(n); }
  // q in [0, 1]; q=0.5 is the median.  NaN when empty (same contract as
  // RunningStats::min()/max()).
  [[nodiscard]] double quantile(double q);
  [[nodiscard]] std::size_t count() const { return samples_.size(); }
  [[nodiscard]] const std::vector<double>& samples() const { return samples_; }
  // Empirical CDF points (sorted samples), for CDF plots like Fig 3.
  [[nodiscard]] const std::vector<double>& sorted_samples();

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

// Accumulates (time, value) events into fixed-width time bins; used for
// "throughput every 10 ms" style plots (Figs 8-11).
class TimeBinnedCounter {
 public:
  TimeBinnedCounter(Nanos bin_width, Nanos start = 0)
      : bin_width_(bin_width), start_(start) {}

  void add(Nanos t, double amount);

  // Value of bin i (0 if never touched).
  [[nodiscard]] double bin(std::size_t i) const {
    return i < bins_.size() ? bins_[i] : 0.0;
  }
  [[nodiscard]] std::size_t num_bins() const { return bins_.size(); }
  [[nodiscard]] Nanos bin_width() const { return bin_width_; }
  [[nodiscard]] Nanos bin_start_time(std::size_t i) const {
    return start_ + Nanos(i) * bin_width_;
  }
  // Bits-per-second style rate if `amount` was bytes.
  [[nodiscard]] double bin_rate_bps(std::size_t i) const {
    return bin(i) * 8.0 / to_seconds(bin_width_);
  }

 private:
  Nanos bin_width_;
  Nanos start_;
  std::vector<double> bins_;
};

// Exponentially-weighted moving average. The PHY's per-UE SNR filter is
// an EWMA whose reconvergence after a reset takes ~25 ms of slots (§4.2).
class Ewma {
 public:
  explicit Ewma(double alpha) : alpha_(alpha) {}

  void add(double x) {
    if (!initialized_) {
      value_ = x;
      initialized_ = true;
    } else {
      value_ = alpha_ * x + (1.0 - alpha_) * value_;
    }
  }
  void reset() { initialized_ = false; }
  void reset_to(double v) {
    value_ = v;
    initialized_ = true;
  }
  [[nodiscard]] bool initialized() const { return initialized_; }
  [[nodiscard]] double value() const { return value_; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool initialized_ = false;
};

// Max-gap tracker: feeds timestamps, reports the largest gap seen.
// Used to reproduce the paper's §8.6 inter-packet-gap measurement that
// justifies the 450 µs failure-detector timeout.
class GapTracker {
 public:
  void observe(Nanos t) {
    if (have_last_) {
      max_gap_ = std::max(max_gap_, t - last_);
      ++gaps_;
    }
    last_ = t;
    have_last_ = true;
  }
  [[nodiscard]] Nanos max_gap() const { return max_gap_; }
  [[nodiscard]] std::int64_t num_gaps() const { return gaps_; }

 private:
  Nanos last_ = 0;
  Nanos max_gap_ = 0;
  std::int64_t gaps_ = 0;
  bool have_last_ = false;
};

}  // namespace slingshot
