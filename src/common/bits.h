// Byte-order-aware buffer readers/writers and a packed bit vector.
//
// All wire formats in this codebase (fronthaul, FAPI, transport) are
// serialized through ByteWriter/ByteReader in network byte order, so
// packets are real byte strings rather than in-memory structs — the same
// property the in-switch middlebox depends on when it parses header
// fields out of fronthaul packets.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <vector>

namespace slingshot {

class ByteWriter {
 public:
  explicit ByteWriter(std::vector<std::uint8_t>& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.push_back(v); }
  void u16(std::uint16_t v) {
    out_.push_back(std::uint8_t(v >> 8));
    out_.push_back(std::uint8_t(v));
  }
  void u24(std::uint32_t v) {
    out_.push_back(std::uint8_t(v >> 16));
    out_.push_back(std::uint8_t(v >> 8));
    out_.push_back(std::uint8_t(v));
  }
  void u32(std::uint32_t v) {
    u16(std::uint16_t(v >> 16));
    u16(std::uint16_t(v));
  }
  void u64(std::uint64_t v) {
    u32(std::uint32_t(v >> 32));
    u32(std::uint32_t(v));
  }
  void f32(float v) {
    std::uint32_t bits;
    std::memcpy(&bits, &v, sizeof(bits));
    u32(bits);
  }
  void bytes(std::span<const std::uint8_t> data) {
    out_.insert(out_.end(), data.begin(), data.end());
  }

  [[nodiscard]] std::size_t size() const { return out_.size(); }
  // Patch a previously written big-endian u16 at `offset`.
  void patch_u16(std::size_t offset, std::uint16_t v) {
    out_.at(offset) = std::uint8_t(v >> 8);
    out_.at(offset + 1) = std::uint8_t(v);
  }

 private:
  std::vector<std::uint8_t>& out_;
};

class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  [[nodiscard]] std::uint8_t u8() { return next(); }
  [[nodiscard]] std::uint16_t u16() {
    const auto hi = next();
    return std::uint16_t((std::uint16_t(hi) << 8) | next());
  }
  [[nodiscard]] std::uint32_t u24() {
    const std::uint32_t hi = u16();
    return (hi << 8) | next();
  }
  [[nodiscard]] std::uint32_t u32() {
    const std::uint32_t hi = u16();
    return (hi << 16) | u16();
  }
  [[nodiscard]] std::uint64_t u64() {
    const std::uint64_t hi = u32();
    return (hi << 32) | u32();
  }
  [[nodiscard]] float f32() {
    const auto bits = u32();
    float v;
    std::memcpy(&v, &bits, sizeof(v));
    return v;
  }
  [[nodiscard]] std::vector<std::uint8_t> bytes(std::size_t n) {
    require(n);
    std::vector<std::uint8_t> out(data_.begin() + long(pos_),
                                  data_.begin() + long(pos_ + n));
    pos_ += n;
    return out;
  }
  // Copy n bytes into a caller-owned (e.g. pooled) buffer.
  void bytes_into(std::size_t n, std::vector<std::uint8_t>& out) {
    require(n);
    out.assign(data_.begin() + long(pos_), data_.begin() + long(pos_ + n));
    pos_ += n;
  }
  // Zero-copy view of the next n bytes; only valid while the underlying
  // buffer lives.
  [[nodiscard]] std::span<const std::uint8_t> view(std::size_t n) {
    require(n);
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) {
    require(n);
    pos_ += n;
  }

  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }
  [[nodiscard]] bool ok() const { return !failed_; }

 private:
  std::uint8_t next() {
    if (pos_ >= data_.size()) {
      failed_ = true;
      return 0;
    }
    return data_[pos_++];
  }
  void require(std::size_t n) {
    if (pos_ + n > data_.size()) {
      failed_ = true;
      throw std::out_of_range{"ByteReader: truncated buffer"};
    }
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

// Dense bit vector backed by 64-bit words; used by the LDPC encoder's
// GF(2) linear algebra.
class BitVector {
 public:
  BitVector() = default;
  explicit BitVector(std::size_t n_bits)
      : n_(n_bits), words_((n_bits + 63) / 64, 0) {}

  [[nodiscard]] std::size_t size() const { return n_; }
  [[nodiscard]] bool get(std::size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1U;
  }
  void set(std::size_t i, bool v) {
    const std::uint64_t mask = 1ULL << (i & 63);
    if (v) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }
  void flip(std::size_t i) { words_[i >> 6] ^= 1ULL << (i & 63); }

  BitVector& operator^=(const BitVector& other) {
    for (std::size_t w = 0; w < words_.size(); ++w) {
      words_[w] ^= other.words_[w];
    }
    return *this;
  }

  // Parity (XOR-reduction) of this AND other — a GF(2) dot product.
  [[nodiscard]] bool dot(const BitVector& other) const {
    std::uint64_t acc = 0;
    for (std::size_t w = 0; w < words_.size(); ++w) {
      acc ^= words_[w] & other.words_[w];
    }
    return __builtin_parityll(acc);
  }

  [[nodiscard]] std::span<const std::uint64_t> words() const { return words_; }

  bool operator==(const BitVector&) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<std::uint64_t> words_;
};

// Unpack bytes into bits, MSB first. Used when running a byte payload
// through the bit-level PHY chain.
[[nodiscard]] std::vector<std::uint8_t> bytes_to_bits(
    std::span<const std::uint8_t> bytes);
// Non-allocating variant: unpacks at most `max_bits` leading bits into
// `out` (resized to the bit count). The PHY's info-block builder only
// needs the first k-24 bits of a TB payload, not all of them.
void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::size_t max_bits, std::vector<std::uint8_t>& out);
// Pack bits (values 0/1) MSB-first into bytes; partial trailing byte is
// zero-padded.
[[nodiscard]] std::vector<std::uint8_t> bits_to_bytes(
    std::span<const std::uint8_t> bits);

}  // namespace slingshot
