// CRC generators used by the 5G transport-block chain.
//
// 3GPP TS 38.212 attaches CRC24A to transport blocks and CRC16 to small
// blocks. The PHY's forward-error-correction output is CRC-checked; a
// mismatch triggers HARQ retransmission (§4.2).
#pragma once

#include <cstdint>
#include <span>

namespace slingshot {

// CRC-24A, polynomial 0x864CFB (3GPP TS 38.212 §5.1).
[[nodiscard]] std::uint32_t crc24a(std::span<const std::uint8_t> data);

// CRC-16-CCITT, polynomial 0x1021.
[[nodiscard]] std::uint16_t crc16(std::span<const std::uint8_t> data);

// CRC over a bit sequence (one bit per byte entry, values 0/1), as used
// on codeword payloads before segmentation. Returns 24-bit CRC.
[[nodiscard]] std::uint32_t crc24a_bits(std::span<const std::uint8_t> bits);

}  // namespace slingshot
