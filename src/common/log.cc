#include "common/log.h"

#include <cstdarg>

namespace slingshot {

Logger& Logger::instance() {
  static Logger logger;
  return logger;
}

void Logger::log(LogLevel level, const char* component,
                 const std::string& message) {
  static constexpr const char* kNames[] = {"TRACE", "DEBUG", "INFO",
                                           "WARN", "ERROR", "OFF"};
  if (time_source_) {
    std::fprintf(stderr, "[%12.6f ms] %-5s %-12s %s\n",
                 to_millis(time_source_()), kNames[int(level)], component,
                 message.c_str());
  } else {
    std::fprintf(stderr, "[     t=?    ] %-5s %-12s %s\n", kNames[int(level)],
                 component, message.c_str());
  }
}

namespace detail {

std::string format_args(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(std::size_t(needed > 0 ? needed : 0), '\0');
  if (needed > 0) {
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace detail
}  // namespace slingshot
