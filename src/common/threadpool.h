// Deterministic fork-join worker pool.
//
// The simulator core stays single-threaded: events execute one at a
// time in (time, seq) order. What the pool adds is *intra-event* data
// parallelism — a component servicing an event (e.g. the PHY decoding a
// slot's transport blocks) can fan a fixed, pre-built task list out
// across workers and join before returning to the event loop. Nothing
// escapes the fork-join region: no task schedules events, touches
// shared mutable state, or outlives the join, so the event loop — and
// with it the golden-trace (time, seq) hash — is bit-identical at every
// thread count.
//
// Determinism contract (what callers must uphold, and what
// parallel_for guarantees):
//  * Tasks are enqueued in a fixed index order [0, n) decided before
//    the fork. Workers claim indices dynamically (which worker runs
//    which index is scheduling noise), so each task must depend only on
//    its own pre-staged inputs — never on another task's output.
//  * Each task writes only into its own pre-sized result slot (and
//    per-worker scratch identified by the worker id). Task i's result
//    is therefore a pure function of task i's inputs, and the joined
//    result set is independent of thread count and claim order.
//  * parallel_for returns only after every task has finished (a full
//    barrier), so the caller can consume results serially, in task
//    order, on the event-loop thread.
//
// The hot path allocates nothing: tasks are a raw function pointer plus
// a context pointer (the caller keeps the real closure on its stack),
// claiming is one atomic fetch_add per task, and the caller participates
// as worker 0 instead of blocking while n-1 workers do the work.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <thread>
#include <vector>

namespace slingshot {

class ThreadPool {
 public:
  // `num_workers` includes the calling thread: a pool of N spawns N-1
  // threads, and parallel_for(n, ...) runs tasks on up to N threads.
  // num_workers <= 1 spawns nothing and parallel_for degenerates to a
  // serial loop.
  explicit ThreadPool(int num_workers);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int num_workers() const { return num_workers_; }

  // Run fn(ctx, task_index, worker_id) for every task_index in [0, n),
  // blocking until all tasks complete. worker_id is in
  // [0, num_workers()); the calling thread is always worker 0. Must be
  // called from the thread that owns the pool (not from inside a task).
  void parallel_for(std::size_t n, void (*fn)(void*, std::size_t, int),
                    void* ctx);

  // Type-safe wrapper: `body` is any callable taking
  // (std::size_t task_index, int worker_id). The callable lives on the
  // caller's stack — no allocation, no std::function.
  template <typename Body>
  void parallel_for(std::size_t n, Body&& body) {
    using B = std::remove_reference_t<Body>;
    parallel_for(
        n,
        [](void* ctx, std::size_t i, int worker) {
          (*static_cast<B*>(ctx))(i, worker);
        },
        const_cast<std::remove_const_t<B>*>(std::addressof(body)));
  }

 private:
  void worker_loop(int worker_id);
  // Claim-and-run loop shared by workers and the caller; returns the
  // number of tasks this thread completed.
  std::size_t run_tasks(int worker_id);

  const int num_workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable cv_start_;
  std::condition_variable cv_done_;
  std::uint64_t epoch_ = 0;   // bumped once per parallel_for fork
  bool stopping_ = false;

  // Current job. fn/ctx/n are stable from publish until the join
  // completes (workers hold active_ > 0 while reading them); claiming
  // is the one lock-free operation on the task path.
  void (*job_fn_)(void*, std::size_t, int) = nullptr;
  void* job_ctx_ = nullptr;
  std::size_t job_n_ = 0;
  std::atomic<std::size_t> next_task_{0};
  // Guarded by mutex_: tasks not yet accounted for, and workers
  // currently between check-in and check-out.
  std::size_t pending_ = 0;
  int active_ = 0;
};

}  // namespace slingshot
