// Virtual-time and 5G slot-timing primitives.
//
// The cell configuration mirrors the paper's testbed (§8): numerology
// µ=1 (30 kHz subcarrier spacing), i.e. a 500 µs TTI ("slot"), TDD with
// the "DDDSU" slot format — three downlink slots, a shared/guard slot,
// then one uplink slot.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>

namespace slingshot {

// Simulation time in nanoseconds. Signed so durations subtract cleanly.
using Nanos = std::int64_t;

constexpr Nanos operator""_ns(unsigned long long v) { return Nanos(v); }
constexpr Nanos operator""_us(unsigned long long v) { return Nanos(v) * 1000; }
constexpr Nanos operator""_ms(unsigned long long v) {
  return Nanos(v) * 1'000'000;
}
constexpr Nanos operator""_s(unsigned long long v) {
  return Nanos(v) * 1'000'000'000;
}

constexpr double to_seconds(Nanos t) { return double(t) * 1e-9; }
constexpr double to_millis(Nanos t) { return double(t) * 1e-6; }
constexpr double to_micros(Nanos t) { return double(t) * 1e-3; }

// Kind of work a TDD slot carries.
enum class SlotKind : std::uint8_t {
  kDownlink,  // 'D'
  kSpecial,   // 'S' — guard/control; carries DL control but no user data
  kUplink,    // 'U'
};

// 5G slot timing for numerology µ=1. A "slot" here is synonymous with a
// TTI. A radio frame is 10 ms (20 slots); a subframe is 1 ms (2 slots).
struct SlotConfig {
  Nanos slot_duration = 500'000_ns;  // 500 µs
  int slots_per_frame = 20;
  int slots_per_subframe = 2;
  // DDDSU repeating pattern, as in the paper's testbed.
  static constexpr int kTddPeriod = 5;

  [[nodiscard]] constexpr SlotKind kind(std::int64_t slot_index) const {
    switch (slot_index % kTddPeriod) {
      case 3:
        return SlotKind::kSpecial;
      case 4:
        return SlotKind::kUplink;
      default:
        return SlotKind::kDownlink;
    }
  }
  [[nodiscard]] constexpr bool is_uplink(std::int64_t s) const {
    return kind(s) == SlotKind::kUplink;
  }
  [[nodiscard]] constexpr bool is_downlink(std::int64_t s) const {
    return kind(s) == SlotKind::kDownlink;
  }

  [[nodiscard]] constexpr std::int64_t slot_at(Nanos t) const {
    return t / slot_duration;
  }
  [[nodiscard]] constexpr Nanos slot_start(std::int64_t slot) const {
    return slot * slot_duration;
  }
  // First slot boundary strictly after time t.
  [[nodiscard]] constexpr std::int64_t next_slot_after(Nanos t) const {
    return t / slot_duration + 1;
  }
};

// A (frame, subframe, slot) triple as carried in O-RAN fronthaul packet
// headers. The switch middlebox parses these fields to detect TTI
// boundaries (§5.1 "Using packet header fields for timing").
struct SlotPoint {
  std::uint16_t frame = 0;    // SFN, 0..1023
  std::uint8_t subframe = 0;  // 0..9
  std::uint8_t slot = 0;      // 0..1 for µ=1

  static constexpr int kFrames = 1024;

  [[nodiscard]] static SlotPoint from_index(std::int64_t slot_index,
                                            const SlotConfig& cfg) {
    SlotPoint p;
    const auto frame_len = cfg.slots_per_frame;
    const auto in_frame = slot_index % frame_len;
    p.frame = std::uint16_t((slot_index / frame_len) % kFrames);
    p.subframe = std::uint8_t(in_frame / cfg.slots_per_subframe);
    p.slot = std::uint8_t(in_frame % cfg.slots_per_subframe);
    return p;
  }

  // Index within the 1024-frame wrap window.
  [[nodiscard]] std::int64_t wrapped_index(const SlotConfig& cfg) const {
    return (std::int64_t(frame) * 10 + subframe) * cfg.slots_per_subframe +
           slot;
  }

  auto operator<=>(const SlotPoint&) const = default;

  // Reconstruct the absolute slot index from a wrapped SlotPoint, given
  // a nearby absolute slot (e.g. "now"). Picks the unwrapping closest to
  // `near_slot`; valid as long as the true slot is within half a wrap
  // period (~5.1 s) of `near_slot`.
  [[nodiscard]] std::int64_t unwrap(std::int64_t near_slot,
                                    const SlotConfig& cfg) const {
    const std::int64_t period =
        std::int64_t(kFrames) * cfg.slots_per_frame;  // 20480 slots
    const std::int64_t w = wrapped_index(cfg);
    std::int64_t candidate = near_slot - ((near_slot - w) % period);
    // candidate ≡ w (mod period); adjust into the window nearest near_slot.
    while (candidate - near_slot > period / 2) {
      candidate -= period;
    }
    while (near_slot - candidate > period / 2) {
      candidate += period;
    }
    return candidate;
  }

  [[nodiscard]] std::string to_string() const {
    return "f" + std::to_string(frame) + ".sf" + std::to_string(subframe) +
           ".s" + std::to_string(slot);
  }
};

}  // namespace slingshot
