// Freelist pools for the byte and IQ buffers that churn on the packet
// hot path.
//
// Every fronthaul frame and FAPI transport message used to allocate a
// fresh std::vector for its wire payload and free it after parsing —
// hundreds of thousands of round trips through the allocator per
// simulated second. A pool keeps released vectors (with their capacity)
// on a freelist and hands them back cleared, so steady-state serialize/
// parse cycles stop touching the heap entirely.
//
// Threading: the pools are thread_local. A single-threaded run behaves
// exactly as a process-wide pool did; under the sharded simulator
// (sim/sharded.h) each worker thread gets its own freelists, so islands
// running concurrently can never race on — or alias buffers through —
// a shared freelist. (A shared pool let two islands pop the same
// vector, and the aliased payloads corrupted frames nondeterministically
// at shard counts > 1.) Pool state is deliberately behavior-neutral:
// acquire() hands back an *empty* vector whose capacity is the only
// thing reuse changes, so which thread an island lands on — and
// therefore which freelist serves it — can never alter simulation
// outcomes. Returning buffers is optional — a vector that is dropped
// instead of released (or released on a different thread than it will
// next be acquired on) is freed normally, the pool just misses a reuse.
#pragma once

#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

namespace slingshot {

template <typename T>
class VectorPool {
 public:
  // Cap on retained buffers: bounds worst-case memory if a scenario
  // releases a burst far above steady-state demand.
  static constexpr std::size_t kMaxRetained = 1024;

  // An empty (but possibly pre-reserved) vector ready for reuse.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) {
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  // Hand a buffer back for reuse. The contents are discarded.
  void release(std::vector<T>&& v) {
    if (v.capacity() > 0 && free_.size() < kMaxRetained) {
      free_.push_back(std::move(v));
    }
    // else: let it free normally
  }

  [[nodiscard]] std::size_t retained() const { return free_.size(); }

  // Bytes currently parked on the freelist (capacity-accurate): the
  // pool's contribution to the process memory gauges.
  [[nodiscard]] std::size_t retained_bytes() const {
    std::size_t total = 0;
    for (const auto& v : free_) {
      total += v.capacity() * sizeof(T);
    }
    return total;
  }

 private:
  std::vector<std::vector<T>> free_;
};

// Per-thread pools for the two hot buffer element types: serialized
// wire bytes (fronthaul + FAPI payloads) and complex IQ samples.
struct BufferPools {
  VectorPool<std::uint8_t> bytes;
  VectorPool<std::complex<float>> iq;

  [[nodiscard]] std::size_t total_retained_bytes() const {
    return bytes.retained_bytes() + iq.retained_bytes();
  }

  static BufferPools& instance() {
    static thread_local BufferPools pools;
    return pools;
  }
};

}  // namespace slingshot
