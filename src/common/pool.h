// Freelist pools for the byte and IQ buffers that churn on the packet
// hot path.
//
// Every fronthaul frame and FAPI transport message used to allocate a
// fresh std::vector for its wire payload and free it after parsing —
// hundreds of thousands of round trips through the allocator per
// simulated second. A pool keeps released vectors (with their capacity)
// on a freelist and hands them back cleared, so steady-state serialize/
// parse cycles stop touching the heap entirely.
//
// The simulation is single-threaded; pools are plain function-local
// statics. Returning buffers is optional — a vector that is dropped
// instead of released is freed normally, the pool just misses a reuse.
#pragma once

#include <complex>
#include <cstdint>
#include <utility>
#include <vector>

namespace slingshot {

template <typename T>
class VectorPool {
 public:
  // Cap on retained buffers: bounds worst-case memory if a scenario
  // releases a burst far above steady-state demand.
  static constexpr std::size_t kMaxRetained = 1024;

  // An empty (but possibly pre-reserved) vector ready for reuse.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) {
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    v.clear();
    return v;
  }

  // Hand a buffer back for reuse. The contents are discarded.
  void release(std::vector<T>&& v) {
    if (v.capacity() > 0 && free_.size() < kMaxRetained) {
      free_.push_back(std::move(v));
    }
    // else: let it free normally
  }

  [[nodiscard]] std::size_t retained() const { return free_.size(); }

 private:
  std::vector<std::vector<T>> free_;
};

// Process-wide pools for the two hot buffer element types: serialized
// wire bytes (fronthaul + FAPI payloads) and complex IQ samples.
struct BufferPools {
  VectorPool<std::uint8_t> bytes;
  VectorPool<std::complex<float>> iq;

  static BufferPools& instance() {
    static BufferPools pools;
    return pools;
  }
};

}  // namespace slingshot
