// Freelist pools for the byte and IQ buffers that churn on the packet
// hot path.
//
// Every fronthaul frame and FAPI transport message used to allocate a
// fresh std::vector for its wire payload and free it after parsing —
// hundreds of thousands of round trips through the allocator per
// simulated second. A pool keeps released vectors (with their capacity)
// on a freelist and hands them back cleared, so steady-state serialize/
// parse cycles stop touching the heap entirely.
//
// Threading: the pools are thread_local. A single-threaded run behaves
// exactly as a process-wide pool did; under the sharded simulator
// (sim/sharded.h) each worker thread gets its own freelists, so islands
// running concurrently can never race on — or alias buffers through —
// a shared freelist. (A shared pool let two islands pop the same
// vector, and the aliased payloads corrupted frames nondeterministically
// at shard counts > 1.) Pool state is deliberately behavior-neutral:
// acquire() hands back an *empty* vector whose capacity is the only
// thing reuse changes, so which thread an island lands on — and
// therefore which freelist serves it — can never alter simulation
// outcomes. Returning buffers is optional — a vector that is dropped
// instead of released (or released on a different thread than it will
// next be acquired on) is freed normally, the pool just misses a reuse.
//
// Lifetime: thread_local pools originally assumed fork-join workers
// that die with the process, which let two bugs hide. (a) The
// mem.pool_retained_bytes gauge sampled only the *sampling* thread's
// pool, so memory parked on worker freelists — or abandoned by an
// exited transport thread — was invisible. (b) In the real-process
// deployment mode, a fork() child inherits registry state describing
// parent threads that do not exist in the child. Both are fixed by a
// process-wide registry: every live BufferPools instance publishes its
// retained-byte counts through atomics, global_retained_bytes() sums
// exactly the live instances, thread exit drains + unregisters (no
// use-after-return window: removal and sampling share one mutex), and
// reset_after_fork() collapses a child's inherited registry to the one
// thread that actually survived the fork.
#pragma once

#include <atomic>
#include <complex>
#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

namespace slingshot {

template <typename T>
class VectorPool {
 public:
  // Cap on retained buffers: bounds worst-case memory if a scenario
  // releases a burst far above steady-state demand.
  static constexpr std::size_t kMaxRetained = 1024;

  // An empty (but possibly pre-reserved) vector ready for reuse.
  [[nodiscard]] std::vector<T> acquire() {
    if (free_.empty()) {
      return {};
    }
    std::vector<T> v = std::move(free_.back());
    free_.pop_back();
    retained_bytes_ -= v.capacity() * sizeof(T);
    publish();
    v.clear();
    return v;
  }

  // Hand a buffer back for reuse. The contents are discarded.
  void release(std::vector<T>&& v) {
    if (v.capacity() > 0 && free_.size() < kMaxRetained) {
      retained_bytes_ += v.capacity() * sizeof(T);
      free_.push_back(std::move(v));
      publish();
    }
    // else: let it free normally
  }

  // Free every retained buffer (thread exit, fork child, memory
  // pressure). Only the owning thread may call this.
  void drain() {
    free_.clear();
    free_.shrink_to_fit();
    retained_bytes_ = 0;
    publish();
  }

  // Mirror retained_bytes into `gauge` on every change, so other
  // threads (the metrics sampler) can read it without touching free_.
  void bind_gauge(std::atomic<std::size_t>* gauge) {
    gauge_ = gauge;
    publish();
  }

  [[nodiscard]] std::size_t retained() const { return free_.size(); }

  // Bytes currently parked on the freelist (capacity-accurate): the
  // pool's contribution to the process memory gauges.
  [[nodiscard]] std::size_t retained_bytes() const { return retained_bytes_; }

 private:
  void publish() {
    if (gauge_ != nullptr) {
      gauge_->store(retained_bytes_, std::memory_order_relaxed);
    }
  }

  std::vector<std::vector<T>> free_;
  std::size_t retained_bytes_ = 0;
  std::atomic<std::size_t>* gauge_ = nullptr;
};

// Per-thread pools for the two hot buffer element types: serialized
// wire bytes (fronthaul + FAPI payloads) and complex IQ samples.
struct BufferPools {
  VectorPool<std::uint8_t> bytes;
  VectorPool<std::complex<float>> iq;

  BufferPools() {
    bytes.bind_gauge(&bytes_retained_);
    iq.bind_gauge(&iq_retained_);
    registry().add(this);
  }
  ~BufferPools() {
    bytes.drain();
    iq.drain();
    registry().remove(this);
  }
  BufferPools(const BufferPools&) = delete;
  BufferPools& operator=(const BufferPools&) = delete;

  // This thread's parked bytes. Cross-thread totals come from
  // global_retained_bytes().
  [[nodiscard]] std::size_t total_retained_bytes() const {
    return bytes_retained_.load(std::memory_order_relaxed) +
           iq_retained_.load(std::memory_order_relaxed);
  }

  // Release every buffer this thread has parked. Long-lived transport
  // threads call this before blocking forever / exiting early; fork
  // children call it (via reset_after_fork) so inherited freelists do
  // not linger unreachable.
  void drain() {
    bytes.drain();
    iq.drain();
  }

  static BufferPools& instance() {
    static thread_local BufferPools pools;
    return pools;
  }

  // Sum of retained bytes across every *live* thread's pools — the
  // value the mem.pool_retained_bytes gauge reports. Safe to call from
  // any thread: registration, removal and summation share one mutex,
  // and the per-pool counts are read through atomics.
  [[nodiscard]] static std::size_t global_retained_bytes() {
    return registry().total();
  }

  // Number of live registered pool instances (== live threads that have
  // touched a pool). Exposed for lifecycle tests.
  [[nodiscard]] static std::size_t live_instances() {
    return registry().count();
  }

  // fork() gave the child a registry describing the parent's threads.
  // Only the forking thread survives: drop every other entry (their
  // owning threads do not exist here, so nothing will ever unregister
  // them) and keep this thread's freshly drained pools. Call early in
  // child-process entry points, before any other thread starts.
  static void reset_after_fork() {
    BufferPools& mine = instance();
    mine.drain();
    registry().reset_to(&mine);
  }

 private:
  class Registry {
   public:
    void add(BufferPools* p) {
      const std::lock_guard<std::mutex> lock{mu_};
      pools_.push_back(p);
    }
    void remove(BufferPools* p) {
      const std::lock_guard<std::mutex> lock{mu_};
      for (auto it = pools_.begin(); it != pools_.end(); ++it) {
        if (*it == p) {
          pools_.erase(it);
          break;
        }
      }
    }
    void reset_to(BufferPools* survivor) {
      const std::lock_guard<std::mutex> lock{mu_};
      pools_.clear();
      pools_.push_back(survivor);
    }
    [[nodiscard]] std::size_t total() {
      const std::lock_guard<std::mutex> lock{mu_};
      std::size_t sum = 0;
      for (const BufferPools* p : pools_) {
        sum += p->total_retained_bytes();
      }
      return sum;
    }
    [[nodiscard]] std::size_t count() {
      const std::lock_guard<std::mutex> lock{mu_};
      return pools_.size();
    }

   private:
    std::mutex mu_;
    std::vector<BufferPools*> pools_;
  };

  // Leaked singleton: thread_local BufferPools destructors run at
  // arbitrary points during thread/process teardown and must always
  // find a live registry.
  static Registry& registry() {
    static Registry* r = new Registry;
    return *r;
  }

  std::atomic<std::size_t> bytes_retained_{0};
  std::atomic<std::size_t> iq_retained_{0};
};

}  // namespace slingshot
