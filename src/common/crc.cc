#include "common/crc.h"

#include <array>

namespace slingshot {
namespace {

constexpr std::uint32_t kCrc24Poly = 0x864CFB;
constexpr std::uint16_t kCrc16Poly = 0x1021;

std::array<std::uint32_t, 256> make_crc24_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i << 16;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x800000) ? (crc << 1) ^ kCrc24Poly : (crc << 1);
    }
    table[i] = crc & 0xFFFFFF;
  }
  return table;
}

std::array<std::uint16_t, 256> make_crc16_table() {
  std::array<std::uint16_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = std::uint16_t(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? std::uint16_t((crc << 1) ^ kCrc16Poly)
                           : std::uint16_t(crc << 1);
    }
    table[i] = crc;
  }
  return table;
}

const auto kCrc24Table = make_crc24_table();
const auto kCrc16Table = make_crc16_table();

}  // namespace

std::uint32_t crc24a(std::span<const std::uint8_t> data) {
  std::uint32_t crc = 0;
  for (const auto byte : data) {
    crc = ((crc << 8) ^ kCrc24Table[((crc >> 16) ^ byte) & 0xFF]) & 0xFFFFFF;
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  std::uint16_t crc = 0;
  for (const auto byte : data) {
    crc = std::uint16_t((crc << 8) ^ kCrc16Table[((crc >> 8) ^ byte) & 0xFF]);
  }
  return crc;
}

std::uint32_t crc24a_bits(std::span<const std::uint8_t> bits) {
  std::uint32_t crc = 0;
  for (const auto bit : bits) {
    const std::uint32_t in = (bit & 1U) << 23;
    crc ^= in;
    crc = (crc & 0x800000) ? ((crc << 1) ^ kCrc24Poly) & 0xFFFFFF
                           : (crc << 1) & 0xFFFFFF;
  }
  return crc;
}

}  // namespace slingshot
