#include "common/crc.h"

#include <array>
#include <cstdlib>
#include <string_view>

#if defined(__x86_64__)
#include <immintrin.h>
#define SLINGSHOT_CRC_CLMUL 1
#endif

namespace slingshot {
namespace {

constexpr std::uint32_t kCrc24Poly = 0x864CFB;
constexpr std::uint16_t kCrc16Poly = 0x1021;

// Slicing-by-8 tables: slice k holds the CRC of (byte b followed by k
// zero bytes), so one step folds 8 message bytes into the register with
// eight independent table lookups instead of eight serial byte steps.
// Slice 0 is the classic byte-at-a-time table.

std::array<std::array<std::uint32_t, 256>, 8> make_crc24_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> slices{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i << 16;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x800000) ? (crc << 1) ^ kCrc24Poly : (crc << 1);
    }
    slices[0][i] = crc & 0xFFFFFF;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = slices[std::size_t(k) - 1][i];
      slices[std::size_t(k)][i] =
          ((prev << 8) ^ slices[0][(prev >> 16) & 0xFF]) & 0xFFFFFF;
    }
  }
  return slices;
}

std::array<std::array<std::uint16_t, 256>, 8> make_crc16_slices() {
  std::array<std::array<std::uint16_t, 256>, 8> slices{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = std::uint16_t(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? std::uint16_t((crc << 1) ^ kCrc16Poly)
                           : std::uint16_t(crc << 1);
    }
    slices[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint16_t prev = slices[std::size_t(k) - 1][i];
      slices[std::size_t(k)][i] =
          std::uint16_t((prev << 8) ^ slices[0][(prev >> 8) & 0xFF]);
    }
  }
  return slices;
}

const auto kCrc24Slices = make_crc24_slices();
const auto kCrc16Slices = make_crc16_slices();

#ifdef SLINGSHOT_CRC_CLMUL

// Carry-less-multiply fast lane for crc24a. Transport blocks run to
// tens of kilobytes, so even sliced table lookups dominate the decode
// path; PCLMULQDQ folds 64 message bytes per iteration instead of 8.
//
// Exactness: the kernel never computes the CRC itself. It only folds
// the consumed prefix down to a 64-bit polynomial C with
// C = prefix (mod P) using the textbook identity
//   A * x^N = Ah * (x^(N+64) mod P) + Al * (x^N mod P)   (mod P),
// whose products stay below 2^128 (multipliers have degree <= 23).
// The caller then feeds C's eight big-endian bytes through the same
// table path as every other byte, so congruence mod P is the only
// property the SIMD code must provide — the table remains the single
// source of truth for the CRC register semantics, and the unit tests
// pin this path against the bitwise oracle at every length.

// x^n mod P for the fold multipliers (24-bit results).
constexpr std::uint64_t xpow_mod_crc24(int n) {
  std::uint32_t r = 1;
  for (int i = 0; i < n; ++i) {
    const bool carry = (r & 0x800000U) != 0;
    r = (r << 1) & 0xFFFFFF;
    if (carry) {
      r ^= kCrc24Poly;
    }
  }
  return r;
}

// First message byte -> most significant register byte: a
// non-reflected CRC reads the message MSB-first.
__attribute__((target("pclmul,ssse3"))) inline __m128i crc24_load_msb(
    const std::uint8_t* q) {
  const __m128i rev = _mm_set_epi8(0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12,
                                   13, 14, 15);
  return _mm_shuffle_epi8(_mm_loadu_si128(reinterpret_cast<const __m128i*>(q)),
                          rev);
}

__attribute__((target("pclmul,ssse3"))) inline __m128i crc24_fold_step(
    __m128i acc, __m128i k, __m128i data) {
  // k = {low: x^N mod P, high: x^(N+64) mod P}; advances acc by N bits.
  return _mm_xor_si128(data,
                       _mm_xor_si128(_mm_clmulepi64_si128(acc, k, 0x00),
                                     _mm_clmulepi64_si128(acc, k, 0x11)));
}

// Folds the leading n & ~15 bytes (n >= 64) into a 64-bit polynomial
// congruent to that prefix mod P. The tail and the final reduction stay
// on the table path.
__attribute__((target("pclmul,ssse3"))) std::uint64_t crc24_fold_clmul(
    const std::uint8_t* p, std::size_t n) {
  const __m128i k512 = _mm_set_epi64x(std::int64_t(xpow_mod_crc24(576)),
                                      std::int64_t(xpow_mod_crc24(512)));
  const __m128i k128 = _mm_set_epi64x(std::int64_t(xpow_mod_crc24(192)),
                                      std::int64_t(xpow_mod_crc24(128)));
  const __m128i k64 = _mm_cvtsi64_si128(std::int64_t(xpow_mod_crc24(64)));

  // Four independent fold chains hide the PCLMULQDQ latency.
  __m128i a0 = crc24_load_msb(p);
  __m128i a1 = crc24_load_msb(p + 16);
  __m128i a2 = crc24_load_msb(p + 32);
  __m128i a3 = crc24_load_msb(p + 48);
  p += 64;
  n -= 64;
  while (n >= 64) {
    a0 = crc24_fold_step(a0, k512, crc24_load_msb(p));
    a1 = crc24_fold_step(a1, k512, crc24_load_msb(p + 16));
    a2 = crc24_fold_step(a2, k512, crc24_load_msb(p + 32));
    a3 = crc24_fold_step(a3, k512, crc24_load_msb(p + 48));
    p += 64;
    n -= 64;
  }
  __m128i r = crc24_fold_step(a0, k128, a1);
  r = crc24_fold_step(r, k128, a2);
  r = crc24_fold_step(r, k128, a3);
  while (n >= 16) {
    r = crc24_fold_step(r, k128, crc24_load_msb(p));
    p += 16;
    n -= 16;
  }
  // 128 -> 87 -> 64 bits: twice fold the high qword by x^64 mod P.
  // The high halves have degree <= 63 and <= 22, so both products fit.
  __m128i b = _mm_xor_si128(_mm_clmulepi64_si128(r, k64, 0x01),
                            _mm_move_epi64(r));
  __m128i c = _mm_xor_si128(_mm_clmulepi64_si128(b, k64, 0x01),
                            _mm_move_epi64(b));
  return std::uint64_t(_mm_cvtsi128_si64(c));
}

bool crc24_clmul_enabled() {
  static const bool enabled = [] {
    if (!__builtin_cpu_supports("pclmul") ||
        !__builtin_cpu_supports("ssse3")) {
      return false;
    }
    // Honor the kernel-dispatch pin: at scalar/sse2 the rest of the
    // datapath avoids post-SSE2 instructions, so the CRC does too (the
    // result is identical either way; this keeps ISA-pinned runs
    // honest about what they exercise).
    if (const char* env = std::getenv("SLINGSHOT_SIMD")) {
      const std::string_view v{env};
      if (v == "scalar" || v == "sse2") {
        return false;
      }
    }
    return true;
  }();
  return enabled;
}

#endif  // SLINGSHOT_CRC_CLMUL

}  // namespace

std::uint32_t crc24a(std::span<const std::uint8_t> data) {
  const auto& s = kCrc24Slices;
  std::uint32_t crc = 0;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
#ifdef SLINGSHOT_CRC_CLMUL
  if (n >= 128 && crc24_clmul_enabled()) {
    // Fold the bulk of the message to a 64-bit congruent residual, then
    // run the residual's big-endian bytes through the ordinary table
    // register below — same semantics, 8 bytes standing in for the
    // folded prefix.
    const std::size_t folded = n & ~std::size_t(15);
    const std::uint64_t residual = crc24_fold_clmul(p, folded);
    for (int i = 56; i >= 0; i -= 8) {
      const auto byte = std::uint8_t(residual >> i);
      crc = ((crc << 8) ^ s[0][((crc >> 16) ^ byte) & 0xFF]) & 0xFFFFFF;
    }
    p += folded;
    n -= folded;
  }
#endif
  // 8 bytes per step: XOR the 24-bit register into the leading three
  // message bytes, then the new register is the XOR of each byte's
  // independent contribution (byte i is followed by 7-i zero bytes).
  while (n >= 8) {
    crc = s[7][(p[0] ^ (crc >> 16)) & 0xFF] ^
          s[6][(p[1] ^ (crc >> 8)) & 0xFF] ^
          s[5][(p[2] ^ crc) & 0xFF] ^
          s[4][p[3]] ^ s[3][p[4]] ^ s[2][p[5]] ^ s[1][p[6]] ^ s[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = ((crc << 8) ^ s[0][((crc >> 16) ^ *p++) & 0xFF]) & 0xFFFFFF;
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  const auto& s = kCrc16Slices;
  std::uint16_t crc = 0;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    crc = s[7][(p[0] ^ (crc >> 8)) & 0xFF] ^
          s[6][(p[1] ^ crc) & 0xFF] ^
          s[5][p[2]] ^ s[4][p[3]] ^ s[3][p[4]] ^ s[2][p[5]] ^ s[1][p[6]] ^
          s[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = std::uint16_t((crc << 8) ^ s[0][((crc >> 8) ^ *p++) & 0xFF]);
  }
  return crc;
}

std::uint32_t crc24a_bits(std::span<const std::uint8_t> bits) {
  std::uint32_t crc = 0;
  std::size_t i = 0;
  // Pack whole groups of 8 bits MSB-first and run them through the
  // sliced byte path; an MSB-first bitwise CRC over 8 bits is exactly
  // one byte-table step on the packed byte.
  const std::size_t full = bits.size() / 8;
  if (full > 0) {
    std::uint8_t packed[8];
    std::size_t remaining = full;
    while (remaining >= 8) {
      for (int b = 0; b < 8; ++b) {
        const std::uint8_t* src = bits.data() + i + std::size_t(b) * 8;
        packed[b] = std::uint8_t(
            (src[0] & 1U) << 7 | (src[1] & 1U) << 6 | (src[2] & 1U) << 5 |
            (src[3] & 1U) << 4 | (src[4] & 1U) << 3 | (src[5] & 1U) << 2 |
            (src[6] & 1U) << 1 | (src[7] & 1U));
      }
      const auto& s = kCrc24Slices;
      crc = s[7][(packed[0] ^ (crc >> 16)) & 0xFF] ^
            s[6][(packed[1] ^ (crc >> 8)) & 0xFF] ^
            s[5][(packed[2] ^ crc) & 0xFF] ^
            s[4][packed[3]] ^ s[3][packed[4]] ^ s[2][packed[5]] ^
            s[1][packed[6]] ^ s[0][packed[7]];
      i += 64;
      remaining -= 8;
    }
    while (remaining-- != 0) {
      const std::uint8_t* src = bits.data() + i;
      const std::uint8_t byte = std::uint8_t(
          (src[0] & 1U) << 7 | (src[1] & 1U) << 6 | (src[2] & 1U) << 5 |
          (src[3] & 1U) << 4 | (src[4] & 1U) << 3 | (src[5] & 1U) << 2 |
          (src[6] & 1U) << 1 | (src[7] & 1U));
      crc = ((crc << 8) ^ kCrc24Slices[0][((crc >> 16) ^ byte) & 0xFF]) &
            0xFFFFFF;
      i += 8;
    }
  }
  for (; i < bits.size(); ++i) {
    crc ^= (bits[i] & 1U) << 23;
    crc = (crc & 0x800000) ? ((crc << 1) ^ kCrc24Poly) & 0xFFFFFF
                           : (crc << 1) & 0xFFFFFF;
  }
  return crc;
}

}  // namespace slingshot
