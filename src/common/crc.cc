#include "common/crc.h"

#include <array>

namespace slingshot {
namespace {

constexpr std::uint32_t kCrc24Poly = 0x864CFB;
constexpr std::uint16_t kCrc16Poly = 0x1021;

// Slicing-by-8 tables: slice k holds the CRC of (byte b followed by k
// zero bytes), so one step folds 8 message bytes into the register with
// eight independent table lookups instead of eight serial byte steps.
// Slice 0 is the classic byte-at-a-time table.

std::array<std::array<std::uint32_t, 256>, 8> make_crc24_slices() {
  std::array<std::array<std::uint32_t, 256>, 8> slices{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i << 16;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x800000) ? (crc << 1) ^ kCrc24Poly : (crc << 1);
    }
    slices[0][i] = crc & 0xFFFFFF;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint32_t prev = slices[std::size_t(k) - 1][i];
      slices[std::size_t(k)][i] =
          ((prev << 8) ^ slices[0][(prev >> 16) & 0xFF]) & 0xFFFFFF;
    }
  }
  return slices;
}

std::array<std::array<std::uint16_t, 256>, 8> make_crc16_slices() {
  std::array<std::array<std::uint16_t, 256>, 8> slices{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint16_t crc = std::uint16_t(i << 8);
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 0x8000) ? std::uint16_t((crc << 1) ^ kCrc16Poly)
                           : std::uint16_t(crc << 1);
    }
    slices[0][i] = crc;
  }
  for (int k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      const std::uint16_t prev = slices[std::size_t(k) - 1][i];
      slices[std::size_t(k)][i] =
          std::uint16_t((prev << 8) ^ slices[0][(prev >> 8) & 0xFF]);
    }
  }
  return slices;
}

const auto kCrc24Slices = make_crc24_slices();
const auto kCrc16Slices = make_crc16_slices();

}  // namespace

std::uint32_t crc24a(std::span<const std::uint8_t> data) {
  const auto& s = kCrc24Slices;
  std::uint32_t crc = 0;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  // 8 bytes per step: XOR the 24-bit register into the leading three
  // message bytes, then the new register is the XOR of each byte's
  // independent contribution (byte i is followed by 7-i zero bytes).
  while (n >= 8) {
    crc = s[7][(p[0] ^ (crc >> 16)) & 0xFF] ^
          s[6][(p[1] ^ (crc >> 8)) & 0xFF] ^
          s[5][(p[2] ^ crc) & 0xFF] ^
          s[4][p[3]] ^ s[3][p[4]] ^ s[2][p[5]] ^ s[1][p[6]] ^ s[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = ((crc << 8) ^ s[0][((crc >> 16) ^ *p++) & 0xFF]) & 0xFFFFFF;
  }
  return crc;
}

std::uint16_t crc16(std::span<const std::uint8_t> data) {
  const auto& s = kCrc16Slices;
  std::uint16_t crc = 0;
  const std::uint8_t* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    crc = s[7][(p[0] ^ (crc >> 8)) & 0xFF] ^
          s[6][(p[1] ^ crc) & 0xFF] ^
          s[5][p[2]] ^ s[4][p[3]] ^ s[3][p[4]] ^ s[2][p[5]] ^ s[1][p[6]] ^
          s[0][p[7]];
    p += 8;
    n -= 8;
  }
  while (n-- != 0) {
    crc = std::uint16_t((crc << 8) ^ s[0][((crc >> 8) ^ *p++) & 0xFF]);
  }
  return crc;
}

std::uint32_t crc24a_bits(std::span<const std::uint8_t> bits) {
  std::uint32_t crc = 0;
  std::size_t i = 0;
  // Pack whole groups of 8 bits MSB-first and run them through the
  // sliced byte path; an MSB-first bitwise CRC over 8 bits is exactly
  // one byte-table step on the packed byte.
  const std::size_t full = bits.size() / 8;
  if (full > 0) {
    std::uint8_t packed[8];
    std::size_t remaining = full;
    while (remaining >= 8) {
      for (int b = 0; b < 8; ++b) {
        const std::uint8_t* src = bits.data() + i + std::size_t(b) * 8;
        packed[b] = std::uint8_t(
            (src[0] & 1U) << 7 | (src[1] & 1U) << 6 | (src[2] & 1U) << 5 |
            (src[3] & 1U) << 4 | (src[4] & 1U) << 3 | (src[5] & 1U) << 2 |
            (src[6] & 1U) << 1 | (src[7] & 1U));
      }
      const auto& s = kCrc24Slices;
      crc = s[7][(packed[0] ^ (crc >> 16)) & 0xFF] ^
            s[6][(packed[1] ^ (crc >> 8)) & 0xFF] ^
            s[5][(packed[2] ^ crc) & 0xFF] ^
            s[4][packed[3]] ^ s[3][packed[4]] ^ s[2][packed[5]] ^
            s[1][packed[6]] ^ s[0][packed[7]];
      i += 64;
      remaining -= 8;
    }
    while (remaining-- != 0) {
      const std::uint8_t* src = bits.data() + i;
      const std::uint8_t byte = std::uint8_t(
          (src[0] & 1U) << 7 | (src[1] & 1U) << 6 | (src[2] & 1U) << 5 |
          (src[3] & 1U) << 4 | (src[4] & 1U) << 3 | (src[5] & 1U) << 2 |
          (src[6] & 1U) << 1 | (src[7] & 1U));
      crc = ((crc << 8) ^ kCrc24Slices[0][((crc >> 16) ^ byte) & 0xFF]) &
            0xFFFFFF;
      i += 8;
    }
  }
  for (; i < bits.size(); ++i) {
    crc ^= (bits[i] & 1U) << 23;
    crc = (crc & 0x800000) ? ((crc << 1) ^ kCrc24Poly) & 0xFFFFFF
                           : (crc << 1) & 0xFFFFFF;
  }
  return crc;
}

}  // namespace slingshot
