#include "common/bits.h"

#include <algorithm>

namespace slingshot {

void bytes_to_bits_into(std::span<const std::uint8_t> bytes,
                        std::size_t max_bits, std::vector<std::uint8_t>& out) {
  const std::size_t n_bits = std::min(bytes.size() * 8, max_bits);
  out.resize(n_bits);
  std::uint8_t* dst = out.data();
  const std::size_t full_bytes = n_bits / 8;
  for (std::size_t i = 0; i < full_bytes; ++i) {
    const std::uint8_t byte = bytes[i];
    dst[0] = (byte >> 7) & 1U;
    dst[1] = (byte >> 6) & 1U;
    dst[2] = (byte >> 5) & 1U;
    dst[3] = (byte >> 4) & 1U;
    dst[4] = (byte >> 3) & 1U;
    dst[5] = (byte >> 2) & 1U;
    dst[6] = (byte >> 1) & 1U;
    dst[7] = byte & 1U;
    dst += 8;
  }
  for (std::size_t b = full_bytes * 8; b < n_bits; ++b) {
    *dst++ = (bytes[b / 8] >> (7 - (b % 8))) & 1U;
  }
}

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bytes_to_bits_into(bytes, bytes.size() * 8, bits);
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1U) {
      bytes[i / 8] |= std::uint8_t(1U << (7 - (i % 8)));
    }
  }
  return bytes;
}

}  // namespace slingshot
