#include "common/bits.h"

namespace slingshot {

std::vector<std::uint8_t> bytes_to_bits(std::span<const std::uint8_t> bytes) {
  std::vector<std::uint8_t> bits;
  bits.reserve(bytes.size() * 8);
  for (const auto byte : bytes) {
    for (int b = 7; b >= 0; --b) {
      bits.push_back((byte >> b) & 1U);
    }
  }
  return bits;
}

std::vector<std::uint8_t> bits_to_bytes(std::span<const std::uint8_t> bits) {
  std::vector<std::uint8_t> bytes((bits.size() + 7) / 8, 0);
  for (std::size_t i = 0; i < bits.size(); ++i) {
    if (bits[i] & 1U) {
      bytes[i / 8] |= std::uint8_t(1U << (7 - (i % 8)));
    }
  }
  return bytes;
}

}  // namespace slingshot
