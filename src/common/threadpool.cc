#include "common/threadpool.h"

#include <algorithm>
#include <cassert>

namespace slingshot {

ThreadPool::ThreadPool(int num_workers)
    : num_workers_(std::max(1, num_workers)) {
  threads_.reserve(std::size_t(num_workers_ - 1));
  for (int w = 1; w < num_workers_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_start_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

std::size_t ThreadPool::run_tasks(int worker_id) {
  std::size_t done = 0;
  for (;;) {
    const std::size_t i = next_task_.fetch_add(1, std::memory_order_relaxed);
    if (i >= job_n_) {
      return done;
    }
    job_fn_(job_ctx_, i, worker_id);
    ++done;
  }
}

void ThreadPool::worker_loop(int worker_id) {
  std::uint64_t seen_epoch = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    cv_start_.wait(lock,
                   [&] { return stopping_ || epoch_ != seen_epoch; });
    if (stopping_) {
      return;
    }
    seen_epoch = epoch_;
    // Checked in: the forking thread will not retire or replace the job
    // state until this worker checks out below, so run_tasks() reads
    // job_fn_/job_ctx_/job_n_ race-free outside the lock.
    ++active_;
    lock.unlock();
    const std::size_t done = run_tasks(worker_id);
    lock.lock();
    --active_;
    pending_ -= done;
    if (pending_ == 0 && active_ == 0) {
      cv_done_.notify_one();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              void (*fn)(void*, std::size_t, int),
                              void* ctx) {
  if (n == 0) {
    return;
  }
  // A single worker, or a single task, needs no synchronization at all:
  // run inline on the caller. Results are identical by the determinism
  // contract (each task is a pure function of its own inputs).
  if (num_workers_ == 1 || n == 1) {
    for (std::size_t i = 0; i < n; ++i) {
      fn(ctx, i, 0);
    }
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    assert(pending_ == 0 && active_ == 0 &&
           "ThreadPool::parallel_for is not reentrant");
    job_fn_ = fn;
    job_ctx_ = ctx;
    job_n_ = n;
    next_task_.store(0, std::memory_order_relaxed);
    pending_ = n;
    ++epoch_;
  }
  cv_start_.notify_all();
  // The forking thread participates as worker 0.
  const std::size_t done = run_tasks(/*worker_id=*/0);
  std::unique_lock<std::mutex> lock(mutex_);
  pending_ -= done;
  // The join: every task has run AND every woken worker has checked
  // out. The second condition keeps a straggler that claimed nothing
  // from reading the next fork's job state mid-publish.
  cv_done_.wait(lock, [&] { return pending_ == 0 && active_ == 0; });
}

}  // namespace slingshot
