// Strong identifier types used across the Slingshot codebase.
//
// Slingshot's fronthaul middlebox relies on small, operator-assigned
// logical IDs for RUs and PHYs (§5.1 of the paper): they form a
// collision-free keyspace that the switch data plane can index directly.
// We mirror that here with 8-bit logical IDs wrapped in strong types so
// an RuId can never be passed where a PhyId is expected.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>
#include <string>

namespace slingshot {

// CRTP-free strong ID: tag disambiguates, Rep is the wire representation.
template <typename Tag, typename Rep = std::uint8_t>
class StrongId {
 public:
  using rep_type = Rep;

  constexpr StrongId() = default;
  constexpr explicit StrongId(Rep value) : value_(value) {}

  [[nodiscard]] constexpr Rep value() const { return value_; }
  constexpr auto operator<=>(const StrongId&) const = default;

 private:
  Rep value_{0};
};

struct RuIdTag {};
struct PhyIdTag {};
struct UeIdTag {};
struct ServerIdTag {};
struct HarqIdTag {};

// Logical radio-unit ID assigned by the operator at installation time.
using RuId = StrongId<RuIdTag>;
// Logical PHY-process ID; the switch's RU-to-PHY map stores these.
using PhyId = StrongId<PhyIdTag>;
// RNTI-like UE identifier, scoped to a cell.
using UeId = StrongId<UeIdTag, std::uint16_t>;
// Identifies a vRAN server in the edge datacenter.
using ServerId = StrongId<ServerIdTag>;
// HARQ process number (5G allows up to 16; we use 8).
using HarqId = StrongId<HarqIdTag>;

// 48-bit Ethernet MAC address stored in the low bits of a uint64.
class MacAddr {
 public:
  constexpr MacAddr() = default;
  constexpr explicit MacAddr(std::uint64_t bits) : bits_(bits & kMask) {}

  [[nodiscard]] constexpr std::uint64_t bits() const { return bits_; }
  [[nodiscard]] constexpr bool is_broadcast() const { return bits_ == kMask; }
  constexpr auto operator<=>(const MacAddr&) const = default;

  [[nodiscard]] static constexpr MacAddr broadcast() { return MacAddr{kMask}; }

  [[nodiscard]] std::string to_string() const;

 private:
  static constexpr std::uint64_t kMask = 0xFFFF'FFFF'FFFFULL;
  std::uint64_t bits_{0};
};

inline std::string MacAddr::to_string() const {
  char buf[18];
  const auto b = bits_;
  std::snprintf(buf, sizeof(buf), "%02x:%02x:%02x:%02x:%02x:%02x",
                unsigned((b >> 40) & 0xFF), unsigned((b >> 32) & 0xFF),
                unsigned((b >> 24) & 0xFF), unsigned((b >> 16) & 0xFF),
                unsigned((b >> 8) & 0xFF), unsigned(b & 0xFF));
  return std::string{buf};
}

}  // namespace slingshot

template <typename Tag, typename Rep>
struct std::hash<slingshot::StrongId<Tag, Rep>> {
  std::size_t operator()(const slingshot::StrongId<Tag, Rep>& id) const {
    return std::hash<Rep>{}(id.value());
  }
};

template <>
struct std::hash<slingshot::MacAddr> {
  std::size_t operator()(const slingshot::MacAddr& mac) const {
    return std::hash<std::uint64_t>{}(mac.bits());
  }
};
