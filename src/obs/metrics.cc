#include "obs/metrics.h"

#include <cmath>
#include <cstdio>

namespace slingshot {
namespace obs {
namespace {

// %.6g formatting to match bench_util's JSON rows; NaN → null so the
// output stays valid JSON even for empty collectors.
void append_num(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  out += s;
  out += '"';
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::size_t reserve) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(reserve);
  }
  return slot.get();
}

TimeSeries* MetricsRegistry::series(const std::string& name, Nanos bin_width) {
  auto& slot = series_[name];
  if (!slot) {
    slot = std::make_unique<TimeSeries>(bin_width);
  }
  return slot.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

Histogram* MetricsRegistry::find_histogram(const std::string& name) {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::freeze_gauges() {
  for (auto& [name, g] : gauges_) {
    g->freeze();
  }
}

std::string MetricsRegistry::to_json() {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_num(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(h->stats().count());
    out += ",\"mean\":";
    append_num(out, h->stats().count() ? h->stats().mean()
                                       : std::nan(""));
    out += ",\"min\":";
    append_num(out, h->stats().min());
    out += ",\"max\":";
    append_num(out, h->stats().max());
    out += ",\"p50\":";
    append_num(out, h->percentiles().quantile(0.50));
    out += ",\"p90\":";
    append_num(out, h->percentiles().quantile(0.90));
    out += ",\"p99\":";
    append_num(out, h->percentiles().quantile(0.99));
    out += '}';
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& [name, s] : series_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"bin_width_ns\":";
    out += std::to_string(s->bins().bin_width());
    out += ",\"bins\":[";
    for (std::size_t i = 0; i < s->bins().num_bins(); ++i) {
      if (i) out += ',';
      append_num(out, s->bins().bin(i));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_csv() {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](const char* kind, const std::string& name,
                    const char* field, double v) {
    out += kind;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    if (std::isnan(v)) {
      out += "nan";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      out += buf;
    }
    out += '\n';
  };
  for (const auto& [name, c] : counters_) {
    row("counter", name, "value", double(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    row("gauge", name, "value", g->value());
  }
  for (auto& [name, h] : histograms_) {
    row("histogram", name, "count", double(h->stats().count()));
    row("histogram", name, "mean",
        h->stats().count() ? h->stats().mean() : std::nan(""));
    row("histogram", name, "min", h->stats().min());
    row("histogram", name, "max", h->stats().max());
    row("histogram", name, "p50", h->percentiles().quantile(0.50));
    row("histogram", name, "p90", h->percentiles().quantile(0.90));
    row("histogram", name, "p99", h->percentiles().quantile(0.99));
  }
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s->bins().num_bins(); ++i) {
      row("series", name, std::to_string(i).c_str(), s->bins().bin(i));
    }
  }
  return out;
}

}  // namespace obs
}  // namespace slingshot
