#include "obs/metrics.h"

#include <cmath>
#include <cstdio>
#include <cstring>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace slingshot {
namespace obs {
namespace {

// Parse a "VmHWM:   12345 kB"-style line from /proc/self/status.
std::size_t proc_status_kb(const char* key) {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "re");
  if (f == nullptr) {
    return 0;
  }
  std::size_t kb = 0;
  char line[256];
  const std::size_t key_len = std::strlen(key);
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, key, key_len) == 0 && line[key_len] == ':') {
      unsigned long long v = 0;
      if (std::sscanf(line + key_len + 1, "%llu", &v) == 1) {
        kb = std::size_t(v);
      }
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  (void)key;
  return 0;
#endif
}

}  // namespace

std::size_t sample_peak_rss_bytes() {
  if (const std::size_t kb = proc_status_kb("VmHWM"); kb > 0) {
    return kb * 1024;
  }
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
#if defined(__APPLE__)
    return std::size_t(usage.ru_maxrss);  // bytes on macOS
#else
    return std::size_t(usage.ru_maxrss) * 1024;  // kilobytes elsewhere
#endif
  }
#endif
  return 0;
}

std::size_t sample_current_rss_bytes() {
  return proc_status_kb("VmRSS") * 1024;
}

namespace {

// %.6g formatting to match bench_util's JSON rows; NaN → null so the
// output stays valid JSON even for empty collectors.
void append_num(std::string& out, double v) {
  if (std::isnan(v)) {
    out += "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

void append_quoted(std::string& out, const std::string& s) {
  out += '"';
  out += s;
  out += '"';
}

}  // namespace

Counter* MetricsRegistry::counter(const std::string& name) {
  auto& slot = counters_[name];
  if (!slot) {
    slot = std::make_unique<Counter>();
  }
  return slot.get();
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  auto& slot = gauges_[name];
  if (!slot) {
    slot = std::make_unique<Gauge>();
  }
  return slot.get();
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::size_t reserve) {
  auto& slot = histograms_[name];
  if (!slot) {
    slot = std::make_unique<Histogram>(reserve);
  }
  return slot.get();
}

TimeSeries* MetricsRegistry::series(const std::string& name, Nanos bin_width) {
  auto& slot = series_[name];
  if (!slot) {
    slot = std::make_unique<TimeSeries>(bin_width);
  }
  return slot.get();
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : it->second.get();
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : it->second.get();
}

Histogram* MetricsRegistry::find_histogram(const std::string& name) {
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

const TimeSeries* MetricsRegistry::find_series(const std::string& name) const {
  auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

void MetricsRegistry::freeze_gauges() {
  for (auto& [name, g] : gauges_) {
    g->freeze();
  }
}

std::string MetricsRegistry::to_json() {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    out += std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ':';
    append_num(out, g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (auto& [name, h] : histograms_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"count\":";
    out += std::to_string(h->stats().count());
    out += ",\"mean\":";
    append_num(out, h->stats().count() ? h->stats().mean()
                                       : std::nan(""));
    out += ",\"min\":";
    append_num(out, h->stats().min());
    out += ",\"max\":";
    append_num(out, h->stats().max());
    out += ",\"p50\":";
    append_num(out, h->percentiles().quantile(0.50));
    out += ",\"p90\":";
    append_num(out, h->percentiles().quantile(0.90));
    out += ",\"p99\":";
    append_num(out, h->percentiles().quantile(0.99));
    out += '}';
  }
  out += "},\"series\":{";
  first = true;
  for (const auto& [name, s] : series_) {
    if (!first) out += ',';
    first = false;
    append_quoted(out, name);
    out += ":{\"bin_width_ns\":";
    out += std::to_string(s->bins().bin_width());
    out += ",\"bins\":[";
    for (std::size_t i = 0; i < s->bins().num_bins(); ++i) {
      if (i) out += ',';
      append_num(out, s->bins().bin(i));
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

std::string MetricsRegistry::to_csv() {
  std::string out = "kind,name,field,value\n";
  auto row = [&out](const char* kind, const std::string& name,
                    const char* field, double v) {
    out += kind;
    out += ',';
    out += name;
    out += ',';
    out += field;
    out += ',';
    if (std::isnan(v)) {
      out += "nan";
    } else {
      char buf[64];
      std::snprintf(buf, sizeof buf, "%.6g", v);
      out += buf;
    }
    out += '\n';
  };
  for (const auto& [name, c] : counters_) {
    row("counter", name, "value", double(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    row("gauge", name, "value", g->value());
  }
  for (auto& [name, h] : histograms_) {
    row("histogram", name, "count", double(h->stats().count()));
    row("histogram", name, "mean",
        h->stats().count() ? h->stats().mean() : std::nan(""));
    row("histogram", name, "min", h->stats().min());
    row("histogram", name, "max", h->stats().max());
    row("histogram", name, "p50", h->percentiles().quantile(0.50));
    row("histogram", name, "p90", h->percentiles().quantile(0.90));
    row("histogram", name, "p99", h->percentiles().quantile(0.99));
  }
  for (const auto& [name, s] : series_) {
    for (std::size_t i = 0; i < s->bins().num_bins(); ++i) {
      row("series", name, std::to_string(i).c_str(), s->bins().bin(i));
    }
  }
  return out;
}

}  // namespace obs
}  // namespace slingshot
