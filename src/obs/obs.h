// Observability bundle: one MetricsRegistry + one SlotTracer, reachable
// from any component through the Simulator's obs anchor (see
// Simulator::set_obs / Simulator::obs in sim/simulator.h — a forward
// declaration, so the sim core never depends on this library).
//
// Instrumentation sites use the SLS_TRACE_* macros below.  Each expands
// to a null-check on the anchor plus a passive data write — no heap, no
// new simulator events — and compiles to nothing when the build sets
// SLINGSHOT_OBS_DISABLED (CMake option SLINGSHOT_DISABLE_OBS), so the
// release-perf preset can strip even the branch.
#ifndef SLINGSHOT_OBS_OBS_H_
#define SLINGSHOT_OBS_OBS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace slingshot {
namespace obs {

struct ObservabilityConfig {
  TracerConfig tracer;
};

class Observability {
 public:
  explicit Observability(const ObservabilityConfig& config = {});

  MetricsRegistry& registry() { return registry_; }
  SlotTracer& tracer() { return tracer_; }

  // Fold open spans, copy tracer aggregates into the registry, and freeze
  // sampler gauges.  Idempotent.  Call before exporting, and before any
  // object a gauge sampler observes is destroyed.
  void finalize();

 private:
  MetricsRegistry registry_;
  SlotTracer tracer_;
  bool finalized_ = false;
};

// Merge per-island observability lanes (the sharded testbed attaches
// one bundle per cell island) into a single export: finalizes every
// bundle, then renders a JSON array with one `{"island": i, "metrics":
// {...}}` entry per lane, in island order. Null entries are skipped so
// partially-instrumented fleets still export.
std::string merged_islands_json(const std::vector<Observability*>& islands);

}  // namespace obs
}  // namespace slingshot

#if defined(SLINGSHOT_OBS_DISABLED)

#define SLS_TRACE_STAGE(sim, stage, ru, slot) \
  do {                                        \
  } while (0)
#define SLS_TRACE_EVENT(sim, kind, id, slot) \
  do {                                       \
  } while (0)
#define SLS_TRACE_DETECTOR_TICK(sim) \
  do {                               \
  } while (0)

#else

// (sim) is any expression yielding a Simulator&; stamps use sim.now() so
// call sites cannot disagree with virtual time.
#define SLS_TRACE_STAGE(sim, stage, ru, slot)                            \
  do {                                                                   \
    if (auto* sls_obs_ = (sim).obs()) {                                  \
      sls_obs_->tracer().stamp((stage), std::uint8_t(ru),                \
                               std::int64_t(slot), (sim).now());         \
    }                                                                    \
  } while (0)

#define SLS_TRACE_EVENT(sim, kind, id, slot)                             \
  do {                                                                   \
    if (auto* sls_obs_ = (sim).obs()) {                                  \
      sls_obs_->tracer().event((kind), std::uint8_t(id),                 \
                               std::int64_t(slot), (sim).now());         \
    }                                                                    \
  } while (0)

#define SLS_TRACE_DETECTOR_TICK(sim)                                     \
  do {                                                                   \
    if (auto* sls_obs_ = (sim).obs()) {                                  \
      sls_obs_->tracer().detector_tick();                                \
    }                                                                    \
  } while (0)

#endif  // SLINGSHOT_OBS_DISABLED

#endif  // SLINGSHOT_OBS_OBS_H_
