// Per-TTI slot tracer.
//
// Records the life of every TTI as a span of timestamps — one stamp per
// pipeline stage, keyed by (ru, absolute slot) — plus a low-rate event
// timeline for failover/migration episodes.  All storage is allocated up
// front (fixed lane array, power-of-two row window per lane, pre-sized
// timeline ring, reserved percentile trackers), so stamp()/event() on the
// hot path never touch the heap and never schedule simulator events: the
// tracer is a passive observer and cannot perturb event order (the golden
// trace hash must stay bit-identical with tracing attached).
//
// Span lifecycle: the first stamp for a new slot *opens* a row; when the
// window wraps onto an older slot (or at finalize()) the row is *folded* —
// derived per-stage latencies go into percentile trackers, deadline misses
// and unserved slots are counted — and the span is *closed*.  After
// finalize(), spans_opened() == spans_closed() (the CI span-balance check).
//
// Stamps are first-write-wins (duplicate deliveries do not move a span's
// timestamps), and a stamp for a slot older than the window's occupant is
// dropped and counted, never allowed to evict newer data.
#ifndef SLINGSHOT_OBS_TRACE_H_
#define SLINGSHOT_OBS_TRACE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/time.h"

namespace slingshot {
namespace obs {

class MetricsRegistry;

// Pipeline stages stamped along a TTI's life.  Order is chronological for
// a healthy uplink slot.
enum class SlotStage : std::uint8_t {
  kL2Request = 0,   // L2 sends UL_TTI.request (2 slots ahead)
  kOrionForward,    // Orion forwards the FAPI request to the primary
  kPhySlot,         // PHY begins processing the slot
  kFronthaulTx,     // first DL fronthaul packet for the slot reaches the RU
  kPhyDecode,       // PHY finishes UL decode for the slot
  kResponse,        // L2 receives the CRC indication
  kNumStages,
};

// Derived per-stage latencies computed when a span folds.
enum class SlotSpanLatency : std::uint8_t {
  kForward = 0,    // OrionForward - L2Request
  kLead,           // slot_start - L2Request (scheduling lead time)
  kFronthaul,      // FronthaulTx - slot_start
  kDecode,         // PhyDecode - slot_start
  kResponse,       // Response - PhyDecode
  kEndToEnd,       // Response - L2Request
  kNumLatencies,
};

const char* slot_stage_name(SlotStage s);
const char* slot_span_latency_name(SlotSpanLatency l);

// Low-rate control-plane events for the failover/migration timeline.
enum class ObsEvent : std::uint8_t {
  kPhyDown = 0,         // fail-stop crash (ground truth, id = phy)
  kDetectorFire,        // in-switch detector declared the phy dead
  kNotifyReceived,      // Orion L2-side received the failure notification
  kFailoverInitiated,   // migrate_on_slot issued (slot = boundary)
  kMigrateCmdAbsorbed,  // mbox parsed + stored the migrate command
  kMigrationExecuted,   // mbox flipped the data plane at the boundary
  kSwapFinalized,       // Orion finalized primary/secondary swap
  kDrainAccepted,       // pipelined response from old primary accepted
  kDrainExpired,        // drain window closed with the old primary ignored
  kRehabilitated,       // false-positive failover: phy reinstated
  kPlannedMigration,    // operator-initiated migration start
  kAdoptStandby,        // standby adopted as new secondary
  kNumEvents,
};

const char* obs_event_name(ObsEvent e);

struct TraceEvent {
  Nanos t = 0;
  std::int64_t slot = -1;
  ObsEvent kind = ObsEvent::kNumEvents;
  std::uint8_t id = 0;  // phy or ru id, event-dependent
};

struct TracerConfig {
  SlotConfig slot;
  // A slot's CRC indication is due before slot_start(slot + deadline_slots)
  // — the pipelined PHY indicates slot N while processing N+2, so the
  // default is ul_pipeline_slots + 1.
  int deadline_slots = 3;
  std::size_t window = 64;              // rows per lane; power of two
  std::size_t timeline_capacity = 8192; // TraceEvents; drop-on-full
  std::size_t histogram_reserve = 32768;
  int max_lanes = 4;                    // distinct RUs tracked
};

class SlotTracer {
 public:
  explicit SlotTracer(const TracerConfig& config = {});

  // --- hot path (no allocation, no simulator interaction) ---------------
  void stamp(SlotStage stage, std::uint8_t ru, std::int64_t slot, Nanos t);
  void event(ObsEvent kind, std::uint8_t id, std::int64_t slot, Nanos t);
  void detector_tick() { ++detector_ticks_; }

  // Fold every open span.  Idempotent; call before reading aggregates.
  void finalize();

  // --- span accounting ---------------------------------------------------
  std::uint64_t spans_opened() const { return spans_opened_; }
  std::uint64_t spans_closed() const { return spans_closed_; }
  std::uint64_t late_stamps_dropped() const { return late_stamps_dropped_; }
  std::uint64_t stamps_recorded(SlotStage s) const {
    return stamps_recorded_[std::size_t(s)];
  }
  std::uint64_t deadline_misses() const { return deadline_misses_; }
  // Spans with an L2 request but no PHY slot processing (failover gap).
  std::uint64_t unserved_slots() const { return unserved_slots_; }
  std::uint64_t detector_ticks() const { return detector_ticks_; }
  std::uint64_t events_dropped() const { return events_dropped_; }

  // Per-stage latency distribution over all folded spans, microseconds.
  const RunningStats& latency_stats(SlotSpanLatency l) const {
    return latency_stats_[std::size_t(l)];
  }
  PercentileTracker& latency_percentiles(SlotSpanLatency l) {
    return latency_pct_[std::size_t(l)];
  }

  // --- timeline ----------------------------------------------------------
  const std::vector<TraceEvent>& timeline() const { return timeline_; }

  // One failover episode reconstructed from the timeline: kPhyDown through
  // swap finalization and the drained responses that followed.  Times are
  // absolute virtual-time nanoseconds; -1 when the stage never happened.
  struct Episode {
    std::uint8_t failed_phy = 0;
    Nanos down_t = -1;
    Nanos detect_t = -1;     // detector fire
    Nanos notify_t = -1;     // notification reached Orion L2 side
    Nanos initiate_t = -1;   // migrate_on_slot issued
    std::int64_t boundary_slot = -1;
    Nanos swap_t = -1;       // swap finalized at the boundary
    Nanos last_drain_t = -1;
    int drains_accepted = 0;
    bool drain_expired = false;
    // Per-slot drain accounting across the migration boundary.
    std::vector<std::int64_t> drained_slots;
  };
  std::vector<Episode> failover_episodes() const;

  // Copy tracer aggregates into "trace.*" registry instruments (counters
  // for span accounting, histograms for per-stage latencies).
  void export_into(MetricsRegistry& registry);

 private:
  struct Row {
    std::int64_t slot = kEmptySlot;
    std::array<Nanos, std::size_t(SlotStage::kNumStages)> t;
  };
  struct Lane {
    std::uint8_t ru = 0;  // 0 = unclaimed
    std::vector<Row> rows;
  };
  static constexpr std::int64_t kEmptySlot = -1;
  static constexpr Nanos kNoStamp = -1;

  Lane* lane_for(std::uint8_t ru);
  void reset_row(Row& row, std::int64_t slot);
  void fold(Row& row);
  void record_latency(SlotSpanLatency l, Nanos delta);

  TracerConfig config_;
  std::size_t window_mask_ = 0;
  std::vector<Lane> lanes_;
  std::vector<TraceEvent> timeline_;

  std::array<std::uint64_t, std::size_t(SlotStage::kNumStages)>
      stamps_recorded_{};
  std::array<RunningStats, std::size_t(SlotSpanLatency::kNumLatencies)>
      latency_stats_{};
  std::array<PercentileTracker, std::size_t(SlotSpanLatency::kNumLatencies)>
      latency_pct_{};

  std::uint64_t spans_opened_ = 0;
  std::uint64_t spans_closed_ = 0;
  std::uint64_t late_stamps_dropped_ = 0;
  std::uint64_t deadline_misses_ = 0;
  std::uint64_t unserved_slots_ = 0;
  std::uint64_t detector_ticks_ = 0;
  std::uint64_t events_dropped_ = 0;
  bool finalized_ = false;
};

}  // namespace obs
}  // namespace slingshot

#endif  // SLINGSHOT_OBS_TRACE_H_
