#include "obs/trace.h"

#include "obs/metrics.h"

namespace slingshot {
namespace obs {

const char* slot_stage_name(SlotStage s) {
  switch (s) {
    case SlotStage::kL2Request: return "l2_request";
    case SlotStage::kOrionForward: return "orion_forward";
    case SlotStage::kPhySlot: return "phy_slot";
    case SlotStage::kFronthaulTx: return "fronthaul_tx";
    case SlotStage::kPhyDecode: return "phy_decode";
    case SlotStage::kResponse: return "response";
    case SlotStage::kNumStages: break;
  }
  return "?";
}

const char* slot_span_latency_name(SlotSpanLatency l) {
  switch (l) {
    case SlotSpanLatency::kForward: return "forward";
    case SlotSpanLatency::kLead: return "lead";
    case SlotSpanLatency::kFronthaul: return "fronthaul";
    case SlotSpanLatency::kDecode: return "decode";
    case SlotSpanLatency::kResponse: return "response";
    case SlotSpanLatency::kEndToEnd: return "e2e";
    case SlotSpanLatency::kNumLatencies: break;
  }
  return "?";
}

const char* obs_event_name(ObsEvent e) {
  switch (e) {
    case ObsEvent::kPhyDown: return "phy_down";
    case ObsEvent::kDetectorFire: return "detector_fire";
    case ObsEvent::kNotifyReceived: return "notify_received";
    case ObsEvent::kFailoverInitiated: return "failover_initiated";
    case ObsEvent::kMigrateCmdAbsorbed: return "migrate_cmd_absorbed";
    case ObsEvent::kMigrationExecuted: return "migration_executed";
    case ObsEvent::kSwapFinalized: return "swap_finalized";
    case ObsEvent::kDrainAccepted: return "drain_accepted";
    case ObsEvent::kDrainExpired: return "drain_expired";
    case ObsEvent::kRehabilitated: return "rehabilitated";
    case ObsEvent::kPlannedMigration: return "planned_migration";
    case ObsEvent::kAdoptStandby: return "adopt_standby";
    case ObsEvent::kNumEvents: break;
  }
  return "?";
}

namespace {
std::size_t round_up_pow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

SlotTracer::SlotTracer(const TracerConfig& config) : config_(config) {
  const std::size_t window = round_up_pow2(
      config_.window < 2 ? std::size_t{2} : config_.window);
  window_mask_ = window - 1;
  lanes_.resize(std::size_t(config_.max_lanes < 1 ? 1 : config_.max_lanes));
  for (auto& lane : lanes_) {
    lane.rows.resize(window);
    for (auto& row : lane.rows) {
      row.t.fill(kNoStamp);
    }
  }
  timeline_.reserve(config_.timeline_capacity);
  for (auto& pct : latency_pct_) {
    pct.reserve(config_.histogram_reserve);
  }
}

SlotTracer::Lane* SlotTracer::lane_for(std::uint8_t ru) {
  for (auto& lane : lanes_) {
    if (lane.ru == ru) return &lane;
  }
  for (auto& lane : lanes_) {
    if (lane.ru == 0) {
      lane.ru = ru;
      return &lane;
    }
  }
  return nullptr;  // more RUs than lanes: drop silently
}

void SlotTracer::reset_row(Row& row, std::int64_t slot) {
  row.slot = slot;
  row.t.fill(kNoStamp);
  ++spans_opened_;
}

void SlotTracer::stamp(SlotStage stage, std::uint8_t ru, std::int64_t slot,
                       Nanos t) {
  if (ru == 0 || slot < 0) return;
  Lane* lane = lane_for(ru);
  if (lane == nullptr) return;
  Row& row = lane->rows[std::size_t(slot) & window_mask_];
  if (row.slot != slot) {
    if (row.slot > slot) {
      // Stale stamp from before the window wrapped; never evict newer data.
      ++late_stamps_dropped_;
      return;
    }
    if (row.slot != kEmptySlot) {
      fold(row);
    }
    reset_row(row, slot);
  }
  auto& cell = row.t[std::size_t(stage)];
  if (cell != kNoStamp) return;  // first write wins
  cell = t;
  ++stamps_recorded_[std::size_t(stage)];
}

void SlotTracer::event(ObsEvent kind, std::uint8_t id, std::int64_t slot,
                       Nanos t) {
  if (timeline_.size() >= config_.timeline_capacity) {
    ++events_dropped_;
    return;
  }
  TraceEvent e;
  e.t = t;
  e.slot = slot;
  e.kind = kind;
  e.id = id;
  timeline_.push_back(e);
}

void SlotTracer::record_latency(SlotSpanLatency l, Nanos delta) {
  const double us = double(delta) / 1e3;
  latency_stats_[std::size_t(l)].add(us);
  latency_pct_[std::size_t(l)].add(us);
}

void SlotTracer::fold(Row& row) {
  ++spans_closed_;
  const auto at = [&row](SlotStage s) { return row.t[std::size_t(s)]; };
  const Nanos start = config_.slot.slot_start(row.slot);
  const Nanos l2 = at(SlotStage::kL2Request);
  const Nanos fwd = at(SlotStage::kOrionForward);
  const Nanos phy = at(SlotStage::kPhySlot);
  const Nanos fh = at(SlotStage::kFronthaulTx);
  const Nanos dec = at(SlotStage::kPhyDecode);
  const Nanos rsp = at(SlotStage::kResponse);

  if (l2 != kNoStamp && fwd != kNoStamp) {
    record_latency(SlotSpanLatency::kForward, fwd - l2);
  }
  if (l2 != kNoStamp) {
    record_latency(SlotSpanLatency::kLead, start - l2);
    if (phy == kNoStamp) {
      ++unserved_slots_;
    }
  }
  if (fh != kNoStamp) {
    record_latency(SlotSpanLatency::kFronthaul, fh - start);
  }
  if (dec != kNoStamp) {
    record_latency(SlotSpanLatency::kDecode, dec - start);
    if (rsp != kNoStamp) {
      record_latency(SlotSpanLatency::kResponse, rsp - dec);
    }
  }
  if (rsp != kNoStamp) {
    if (l2 != kNoStamp) {
      record_latency(SlotSpanLatency::kEndToEnd, rsp - l2);
    }
    const Nanos deadline =
        config_.slot.slot_start(row.slot + config_.deadline_slots);
    if (rsp > deadline) {
      ++deadline_misses_;
    }
  }
}

void SlotTracer::finalize() {
  if (finalized_) return;
  finalized_ = true;
  for (auto& lane : lanes_) {
    for (auto& row : lane.rows) {
      if (row.slot != kEmptySlot) {
        fold(row);
        row.slot = kEmptySlot;
        row.t.fill(kNoStamp);
      }
    }
  }
}

std::vector<SlotTracer::Episode> SlotTracer::failover_episodes() const {
  std::vector<Episode> episodes;
  Episode* cur = nullptr;
  for (const auto& e : timeline_) {
    switch (e.kind) {
      case ObsEvent::kPhyDown:
        episodes.emplace_back();
        cur = &episodes.back();
        cur->failed_phy = e.id;
        cur->down_t = e.t;
        break;
      case ObsEvent::kDetectorFire:
        if (cur && cur->detect_t < 0) cur->detect_t = e.t;
        break;
      case ObsEvent::kNotifyReceived:
        if (cur && cur->notify_t < 0) cur->notify_t = e.t;
        break;
      case ObsEvent::kFailoverInitiated:
        if (cur && cur->initiate_t < 0) {
          cur->initiate_t = e.t;
          cur->boundary_slot = e.slot;
        }
        break;
      case ObsEvent::kSwapFinalized:
        if (cur && cur->swap_t < 0) cur->swap_t = e.t;
        break;
      case ObsEvent::kDrainAccepted:
        if (cur) {
          ++cur->drains_accepted;
          cur->last_drain_t = e.t;
          cur->drained_slots.push_back(e.slot);
        }
        break;
      case ObsEvent::kDrainExpired:
        if (cur) cur->drain_expired = true;
        break;
      default:
        break;
    }
  }
  return episodes;
}

void SlotTracer::export_into(MetricsRegistry& registry) {
  finalize();
  registry.counter("trace.spans_opened")->inc(spans_opened_);
  registry.counter("trace.spans_closed")->inc(spans_closed_);
  registry.counter("trace.late_stamps_dropped")->inc(late_stamps_dropped_);
  registry.counter("trace.deadline_misses")->inc(deadline_misses_);
  registry.counter("trace.unserved_slots")->inc(unserved_slots_);
  registry.counter("trace.detector_ticks")->inc(detector_ticks_);
  registry.counter("trace.events_dropped")->inc(events_dropped_);
  for (std::size_t s = 0; s < std::size_t(SlotStage::kNumStages); ++s) {
    registry
        .counter(std::string("trace.stamps.") +
                 slot_stage_name(SlotStage(s)))
        ->inc(stamps_recorded_[s]);
  }
  for (std::size_t l = 0; l < std::size_t(SlotSpanLatency::kNumLatencies);
       ++l) {
    const auto& pct = latency_pct_[l];
    auto* hist = registry.histogram(
        std::string("trace.latency_us.") +
            slot_span_latency_name(SlotSpanLatency(l)),
        pct.count() + 1);
    for (double v : pct.samples()) {
      hist->record(v);
    }
  }
}

}  // namespace obs
}  // namespace slingshot
