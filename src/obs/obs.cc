#include "obs/obs.h"

namespace slingshot {
namespace obs {

Observability::Observability(const ObservabilityConfig& config)
    : tracer_(config.tracer) {}

void Observability::finalize() {
  if (finalized_) return;
  finalized_ = true;
  tracer_.export_into(registry_);  // also folds open spans
  registry_.freeze_gauges();
}

}  // namespace obs
}  // namespace slingshot
