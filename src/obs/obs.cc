#include "obs/obs.h"

namespace slingshot {
namespace obs {

Observability::Observability(const ObservabilityConfig& config)
    : tracer_(config.tracer) {}

void Observability::finalize() {
  if (finalized_) return;
  finalized_ = true;
  tracer_.export_into(registry_);  // also folds open spans
  registry_.freeze_gauges();
}

std::string merged_islands_json(const std::vector<Observability*>& islands) {
  std::string out = "[";
  bool first = true;
  for (std::size_t i = 0; i < islands.size(); ++i) {
    Observability* island = islands[i];
    if (island == nullptr) {
      continue;
    }
    island->finalize();
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"island\":" + std::to_string(i) +
           ",\"metrics\":" + island->registry().to_json() + "}";
  }
  out += "]";
  return out;
}

}  // namespace obs
}  // namespace slingshot
