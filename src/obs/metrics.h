// Central metrics registry — the "pull" half of the observability layer.
//
// Components register named instruments once (at attach time, off the hot
// path) and then update them through stable raw pointers; the registry
// owns the storage.  Four instrument kinds:
//
//   Counter    monotonically increasing uint64 (inc / add)
//   Gauge      instantaneous double; either set directly or backed by a
//              sampler callback evaluated at snapshot time
//   Histogram  RunningStats + PercentileTracker with capacity reserved at
//              registration so record() never reallocates
//   TimeSeries TimeBinnedCounter (events per fixed virtual-time bin)
//
// Instruments live in std::map<std::string, std::unique_ptr<...>>, so the
// pointer returned by counter()/gauge()/histogram()/series() stays valid
// for the registry's lifetime and export order is deterministic.
//
// Snapshots export as a JSON object or CSV rows.  NaN (the empty-collector
// sentinel from RunningStats/PercentileTracker) is emitted as JSON null —
// bare `nan` is not valid JSON.
#ifndef SLINGSHOT_OBS_METRICS_H_
#define SLINGSHOT_OBS_METRICS_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>

#include "common/stats.h"
#include "common/time.h"

namespace slingshot {
namespace obs {

class Counter {
 public:
  void inc(std::uint64_t delta = 1) { value_ += delta; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

// A gauge is either a plain stored double or a sampler evaluated lazily at
// snapshot time.  freeze() collapses a sampler gauge into its current
// value — called when the sampled object is about to die so a later
// snapshot cannot invoke a dangling callback.
class Gauge {
 public:
  void set(double v) {
    sampler_ = nullptr;
    value_ = v;
  }
  void bind(std::function<double()> sampler) { sampler_ = std::move(sampler); }
  void freeze() {
    if (sampler_) {
      value_ = sampler_();
      sampler_ = nullptr;
    }
  }
  double value() const { return sampler_ ? sampler_() : value_; }

 private:
  std::function<double()> sampler_;
  double value_ = 0.0;
};

class Histogram {
 public:
  explicit Histogram(std::size_t reserve) { pct_.reserve(reserve); }

  void record(double v) {
    stats_.add(v);
    pct_.add(v);
  }
  const RunningStats& stats() const { return stats_; }
  PercentileTracker& percentiles() { return pct_; }

 private:
  RunningStats stats_;
  PercentileTracker pct_;
};

class TimeSeries {
 public:
  explicit TimeSeries(Nanos bin_width) : bins_(bin_width) {}

  void record(Nanos t, double v = 1.0) { bins_.add(t, v); }
  const TimeBinnedCounter& bins() const { return bins_; }

 private:
  TimeBinnedCounter bins_;
};

class MetricsRegistry {
 public:
  // Idempotent: registering an existing name returns the same instrument.
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  Histogram* histogram(const std::string& name,
                       std::size_t reserve = kDefaultHistogramReserve);
  TimeSeries* series(const std::string& name, Nanos bin_width = 1_ms);

  // Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  Histogram* find_histogram(const std::string& name);
  const TimeSeries* find_series(const std::string& name) const;

  // Collapse all sampler-backed gauges to static values.  Call before the
  // objects the samplers observe are destroyed.
  void freeze_gauges();

  // One JSON object: {"counters":{...},"gauges":{...},"histograms":{...}}.
  // Histograms export count/mean/min/max/p50/p90/p99; empty collectors
  // export null for the undefined fields.  Series export per-bin arrays.
  // Non-const: quantile extraction sorts the trackers lazily.
  std::string to_json();

  // CSV rows: kind,name,field,value — one line per scalar.
  std::string to_csv();

  std::size_t num_instruments() const {
    return counters_.size() + gauges_.size() + histograms_.size() +
           series_.size();
  }

  static constexpr std::size_t kDefaultHistogramReserve = 4096;

 private:
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

// Process-memory samplers for the mem.* gauges (and the massive-UE
// bench's RSS column): peak / current resident set from
// /proc/self/status, with a getrusage fallback for the peak. Returns 0
// where the platform exposes neither.
std::size_t sample_peak_rss_bytes();
std::size_t sample_current_rss_bytes();

}  // namespace obs
}  // namespace slingshot

#endif  // SLINGSHOT_OBS_METRICS_H_
