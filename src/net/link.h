// Point-to-point full-duplex link with serialization delay, propagation
// latency, and optional random loss. Connects an endpoint ("station") to
// a switch port, or two stations back-to-back.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>

#include "common/rng.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace slingshot {

// How serialization time is computed from frame size and rate.
enum class TxTimeModel : std::uint8_t {
  // llround(bits / bw * 1e9): rounds *down* for small frames at high
  // rates, so back-to-back sends drift and can overlap on the wire.
  // Kept as the default because the golden traces are pinned to it.
  kLegacyRound,
  // Integer picoseconds with ceil rounding: queued frames never overlap
  // and no drift accumulates across a burst.
  kPicoCeil,
};

struct LinkConfig {
  double bandwidth_bps = 100e9;  // 100 GbE by default, as in the testbed
  Nanos propagation_delay = 1'000;  // 1 µs intra-rack fiber + transceivers
  double loss_probability = 0.0;    // rare in provisioned vRAN datacenters
  TxTimeModel tx_time_model = TxTimeModel::kLegacyRound;
  // Finite per-direction egress buffer, as bytes of not-yet-serialized
  // backlog; a frame arriving to a full queue is tail-dropped. 0 keeps
  // the legacy unbounded queue.
  std::uint64_t max_queue_bytes = 0;
};

class Link {
 public:
  Link(Simulator& sim, LinkConfig config, RngStream loss_rng)
      : sim_(sim), config_(config), loss_rng_(std::move(loss_rng)) {}

  void attach_a(FrameSink* a) { side_a_ = a; }
  void attach_b(FrameSink* b) { side_b_ = b; }

  // Send from side A toward side B (and vice versa). The frame is
  // serialized onto the wire after any frames already queued in that
  // direction, then arrives propagation_delay later.
  void send_from_a(Packet&& packet) { send(std::move(packet), /*a_to_b=*/true); }
  void send_from_b(Packet&& packet) { send(std::move(packet), /*a_to_b=*/false); }

  [[nodiscard]] const LinkConfig& config() const { return config_; }
  // Split drop causes. frames_dropped() stays the sum so existing
  // callers keep seeing the aggregate.
  [[nodiscard]] std::uint64_t frames_dropped() const {
    return dropped_no_receiver_ + dropped_loss_ + dropped_fault_ +
           dropped_overflow_ + dropped_down_;
  }
  [[nodiscard]] std::uint64_t dropped_no_receiver() const {
    return dropped_no_receiver_;
  }
  [[nodiscard]] std::uint64_t dropped_loss() const { return dropped_loss_; }
  [[nodiscard]] std::uint64_t dropped_fault() const { return dropped_fault_; }
  [[nodiscard]] std::uint64_t dropped_overflow() const {
    return dropped_overflow_;
  }
  [[nodiscard]] std::uint64_t dropped_down() const { return dropped_down_; }
  // Counted when the receiver is actually handed the frame — a frame
  // still serializing or propagating is in flight, not delivered.
  [[nodiscard]] std::uint64_t frames_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t bytes_delivered() const {
    return delivered_bytes_;
  }
  [[nodiscard]] std::uint64_t frames_in_flight() const { return in_flight_; }

  // Fault controls: a downed link (cable pull / port kill) drops every
  // subsequent send; frames already on the wire still arrive.
  void set_down(bool down) { down_ = down; }
  [[nodiscard]] bool is_down() const { return down_; }
  void set_loss_probability(double p) { config_.loss_probability = p; }

  // Fault-injection hook (src/inject): sees every frame before it is
  // serialized onto the wire, may mutate it; returning false drops it
  // (counted in frames_dropped).
  using FaultHook = std::function<bool(Packet&, bool a_to_b)>;
  void set_fault_hook(FaultHook hook) { fault_hook_ = std::move(hook); }

 private:
  void send(Packet&& packet, bool a_to_b);
  void schedule_delivery(FrameSink* receiver, Packet&& packet, Nanos arrival);

  Simulator& sim_;
  LinkConfig config_;
  RngStream loss_rng_;
  FaultHook fault_hook_;
  FrameSink* side_a_ = nullptr;
  FrameSink* side_b_ = nullptr;
  bool down_ = false;
  Nanos busy_until_ab_ = 0;
  Nanos busy_until_ba_ = 0;
  // kPicoCeil keeps the wire occupancy in integer picoseconds so the
  // sub-ns remainder of one frame is charged to the next.
  std::int64_t busy_ps_ab_ = 0;
  std::int64_t busy_ps_ba_ = 0;
  std::uint64_t dropped_no_receiver_ = 0;
  std::uint64_t dropped_loss_ = 0;
  std::uint64_t dropped_fault_ = 0;
  std::uint64_t dropped_overflow_ = 0;
  std::uint64_t dropped_down_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t delivered_bytes_ = 0;
  std::uint64_t in_flight_ = 0;
};

}  // namespace slingshot
