#include "net/frer.h"

namespace slingshot {

void rtag_encapsulate(Packet& packet, std::uint16_t seq) {
  const auto inner = std::uint16_t(packet.eth.ethertype);
  const std::uint8_t tag[kRtagWireSize] = {
      0,
      0,
      std::uint8_t(seq >> 8),
      std::uint8_t(seq & 0xFF),
      std::uint8_t(inner >> 8),
      std::uint8_t(inner & 0xFF),
  };
  packet.payload.insert(packet.payload.begin(), tag, tag + kRtagWireSize);
  packet.eth.ethertype = EtherType::kRTag;
}

std::optional<RtagView> rtag_peek(const Packet& packet) {
  if (packet.eth.ethertype != EtherType::kRTag ||
      packet.payload.size() < kRtagWireSize) {
    return std::nullopt;
  }
  RtagView view;
  view.seq = std::uint16_t((packet.payload[2] << 8) | packet.payload[3]);
  view.inner =
      EtherType(std::uint16_t((packet.payload[4] << 8) | packet.payload[5]));
  return view;
}

bool rtag_decapsulate(Packet& packet) {
  const auto view = rtag_peek(packet);
  if (!view.has_value()) {
    return false;
  }
  packet.eth.ethertype = view->inner;
  packet.payload.erase(packet.payload.begin(),
                       packet.payload.begin() + kRtagWireSize);
  return true;
}

FrerReplicator::FrerReplicator(Nic& nic, Link& plane_a, Link& plane_b)
    : plane_a_(plane_a), plane_b_(plane_b) {
  nic.set_tx_override([this](Packet&& p) { on_tx(std::move(p)); });
}

void FrerReplicator::on_tx(Packet&& packet) {
  if (packet.eth.ethertype != EtherType::kEcpri) {
    // Unprotected traffic rides plane A only, untagged.
    ++passthrough_;
    plane_a_.send_from_a(std::move(packet));
    return;
  }
  rtag_encapsulate(packet, next_seq_);
  ++next_seq_;  // u16 wraps; the eliminator's delta math is wrap-aware
  Packet copy = packet;
  ++frames_replicated_;
  bytes_replicated_ += copy.wire_size();
  plane_a_.send_from_a(std::move(packet));
  plane_b_.send_from_a(std::move(copy));
}

void FrerEliminator::handle_frame(Packet&& packet) {
  if (packet.eth.ethertype != EtherType::kRTag) {
    // Untagged traffic (notifications, unprotected types) is not
    // subject to sequence recovery.
    ++stats_.untagged_passed;
    out_.handle_frame(std::move(packet));
    return;
  }
  if (!rtag_peek(packet).has_value()) {
    ++stats_.rogue_discarded;  // truncated tag: never forward
    return;
  }
  const std::uint16_t seq = rtag_peek(packet)->seq;
  const Nanos now = sim_.now();
  auto [it, fresh] = streams_.try_emplace(packet.eth.src.bits());
  StreamState& st = it->second;

  auto accept = [&](Packet&& p) {
    st.last_accept = now;
    ++stats_.passed;
    rtag_decapsulate(p);
    out_.handle_frame(std::move(p));
  };

  if (fresh || now - st.last_accept > config_.reset_timeout) {
    // First frame of the stream, or the recovery state went stale
    // (talker rebooted / both planes silent): take the frame and
    // restart the window at it.
    if (!fresh) {
      ++stats_.recovery_resets;
    }
    st.highest = seq;
    st.history = 1;
    accept(std::move(packet));
    return;
  }

  // Wrap-aware distance from the newest accepted sequence number.
  const auto delta = std::int16_t(std::uint16_t(seq - st.highest));
  if (delta > 0) {
    // Future frame: advance the window. A jump past the window depth
    // (after a long single-plane outage) simply restarts the history.
    st.highest = seq;
    st.history = delta < 64 ? (st.history << delta) | 1 : 1;
    accept(std::move(packet));
    return;
  }
  const int age = -int(delta);
  if (age >= std::min(config_.history_window, 64)) {
    ++stats_.stale_discarded;  // too old to vouch for: reject
    return;
  }
  if ((st.history >> age) & 1) {
    ++stats_.duplicates_eliminated;  // other plane's copy already passed
    return;
  }
  st.history |= std::uint64_t(1) << age;  // out-of-order first copy
  accept(std::move(packet));
}

}  // namespace slingshot
