// Background cross-traffic injector: bursty on-off best-effort frames
// sharing a station's egress link with the fronthaul.
//
// A real O-RAN transport segment is not a dedicated wire — the fabric
// carries management, midhaul, and tenant traffic on the same ports.
// Each injector emits bursts of back-to-back frames from one NIC toward
// a sink station; the frames queue behind (and ahead of) fronthaul
// frames in the link's serialization queue, producing exactly the
// congestion jitter the failure detector must tolerate (§5.2.2 picks
// its timeout above the worst-case heartbeat gap — cross-traffic is
// what widens that gap). Burst starts are a Poisson process whose rate
// is derived from the target long-run load.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "net/nic.h"
#include "sim/simulator.h"

namespace slingshot {

struct CrossTrafficConfig {
  // Long-run average offered load as a fraction of the link rate.
  // 0 disables the injector entirely (no events scheduled).
  double load = 0.0;
  double link_bandwidth_bps = 100e9;  // rate of the shared link
  std::uint32_t frame_bytes = 1500;   // payload per background frame
  std::uint32_t mean_burst_frames = 64;  // geometric mean burst length
  MacAddr sink;  // L2 destination (any wired station; rx side ignores)
};

class CrossTrafficInjector {
 public:
  CrossTrafficInjector(Simulator& sim, Nic& nic, CrossTrafficConfig config,
                       RngStream rng);

  // Begin injecting (schedules the first burst). Idempotent-safe to
  // call once; no-op when load <= 0.
  void start();

  [[nodiscard]] std::uint64_t frames_injected() const { return frames_; }
  [[nodiscard]] std::uint64_t bytes_injected() const { return bytes_; }

 private:
  void schedule_next_burst();
  void emit_burst();

  Simulator& sim_;
  Nic& nic_;
  CrossTrafficConfig config_;
  RngStream rng_;
  double mean_gap_ns_ = 0.0;  // between burst starts
  bool started_ = false;
  std::uint64_t frames_ = 0;
  std::uint64_t bytes_ = 0;
};

}  // namespace slingshot
