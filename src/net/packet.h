// Ethernet-style frames carried by the simulated edge-datacenter fabric.
//
// Everything that crosses a wire in this testbed is one of these frames
// with a serialized byte payload: O-RAN fronthaul packets, FAPI-over-UDP
// messages between Orion processes, Slingshot command/notification
// packets, and user-plane traffic between the L2 and the app server.
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace slingshot {

// EtherType values. Fronthaul uses the real eCPRI EtherType; the rest
// are from the experimental/local range.
enum class EtherType : std::uint16_t {
  kEcpri = 0xAEFE,          // O-RAN fronthaul (eCPRI)
  kFapiTransport = 0x88B5,  // Orion's lean FAPI-over-UDP transport
  kSlingshotCmd = 0x88B6,   // migrate_on_slot and other mbox commands
  kFailureNotify = 0x88B7,  // switch -> Orion failure notifications
  kUserPlane = 0x88B8,      // app-server <-> L2 user traffic
  kControl = 0x88B9,        // misc control (PTP-like, mgmt)
  kRTag = 0xF1C1,           // IEEE 802.1CB redundancy tag (FRER)
};

struct EthernetHeader {
  MacAddr dst;
  MacAddr src;
  EtherType ethertype = EtherType::kControl;

  static constexpr std::size_t kWireSize = 14;
};

struct Packet {
  EthernetHeader eth;
  std::vector<std::uint8_t> payload;

  // Bookkeeping (not on the wire).
  Nanos created_at = 0;      // when the sender handed it to its NIC
  std::uint64_t id = 0;      // unique per simulation, for tracing

  [[nodiscard]] std::size_t wire_size() const {
    // Ethernet header + payload + FCS; ignore preamble/IPG.
    return EthernetHeader::kWireSize + payload.size() + 4;
  }
};

// Where an endpoint receives frames from the fabric.
class FrameSink {
 public:
  virtual ~FrameSink() = default;
  virtual void handle_frame(Packet&& packet) = 0;
};

}  // namespace slingshot
