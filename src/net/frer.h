// FRER-style frame replication and elimination (IEEE 802.1CB).
//
// An alternative resilience mechanism to Slingshot's detect-and-migrate
// failover: every protected (eCPRI) frame is tagged with an R-TAG
// sequence number at the talker's NIC and sent over two disjoint switch
// planes; a sequence-recovery function in front of each listener passes
// the first copy of each sequence number and eliminates the rest. A
// single link or plane failure then loses nothing — at the steady cost
// of ~2x fronthaul bandwidth (the tradeoff bench/abl_fronthaul
// measures against failover).
//
// R-TAG wire format (after the Ethernet header, EtherType kRTag):
//   [0..1] reserved (zero)    [2..3] sequence number (network order)
//   [4..5] encapsulated EtherType (network order)
// followed by the original payload.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>

#include "net/link.h"
#include "net/nic.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace slingshot {

inline constexpr std::size_t kRtagWireSize = 6;

// In-place encapsulation: prepends the R-TAG to the payload and
// reclassifies the frame as kRTag.
void rtag_encapsulate(Packet& packet, std::uint16_t seq);

struct RtagView {
  std::uint16_t seq = 0;
  EtherType inner = EtherType::kControl;
};
// Reads the tag without modifying the frame; nullopt if the frame is
// not kRTag or the payload is too short to hold a tag.
[[nodiscard]] std::optional<RtagView> rtag_peek(const Packet& packet);

// Strips the tag and restores the encapsulated EtherType. Returns false
// (frame untouched) on a malformed tag.
bool rtag_decapsulate(Packet& packet);

// ---------------------------------------------------------------------
// Replication point: installed as a NIC tx override. Protected frames
// (eCPRI) are sequence-tagged and sent over both planes; everything
// else passes through on plane A untagged.
class FrerReplicator {
 public:
  FrerReplicator(Nic& nic, Link& plane_a, Link& plane_b);

  [[nodiscard]] std::uint64_t frames_replicated() const {
    return frames_replicated_;
  }
  // Wire bytes of the *extra* (plane B) copies — the redundancy
  // bandwidth overhead attributable to this talker.
  [[nodiscard]] std::uint64_t bytes_replicated() const {
    return bytes_replicated_;
  }
  [[nodiscard]] std::uint64_t frames_passed_through() const {
    return passthrough_;
  }
  [[nodiscard]] std::uint16_t next_seq() const { return next_seq_; }

 private:
  void on_tx(Packet&& packet);

  Link& plane_a_;
  Link& plane_b_;
  std::uint16_t next_seq_ = 0;
  std::uint64_t frames_replicated_ = 0;
  std::uint64_t bytes_replicated_ = 0;
  std::uint64_t passthrough_ = 0;
};

// ---------------------------------------------------------------------
// Elimination point: a FrameSink interposed between both planes' links
// and the listener's NIC. Runs 802.1CB-style per-stream (per source
// MAC) sequence recovery with a sliding history window.
struct FrerEliminatorConfig {
  // History window depth in sequence numbers (<= 64: one bitmask word,
  // like a shallow hardware recovery function).
  int history_window = 64;
  // No accepted frame on a stream for this long -> the recovery state
  // is considered stale and resets on the next frame (802.1CB's
  // SequenceRecoveryReset), so a rebooted talker is accepted.
  Nanos reset_timeout = 50'000'000;
};

struct FrerEliminatorStats {
  std::uint64_t passed = 0;                 // first copies forwarded
  std::uint64_t duplicates_eliminated = 0;  // second-plane copies
  std::uint64_t stale_discarded = 0;        // behind the history window
  std::uint64_t rogue_discarded = 0;        // malformed / truncated tag
  std::uint64_t recovery_resets = 0;        // timeout-triggered resets
  std::uint64_t untagged_passed = 0;        // non-R-TAG passthrough
};

class FrerEliminator final : public FrameSink {
 public:
  FrerEliminator(Simulator& sim, FrerEliminatorConfig config, FrameSink& out)
      : sim_(sim), config_(config), out_(out) {}

  void handle_frame(Packet&& packet) override;

  [[nodiscard]] const FrerEliminatorStats& stats() const { return stats_; }

 private:
  struct StreamState {
    std::uint16_t highest = 0;   // newest accepted sequence number
    std::uint64_t history = 0;   // bit k set: seq (highest - k) seen
    Nanos last_accept = 0;
  };

  Simulator& sim_;
  FrerEliminatorConfig config_;
  FrameSink& out_;
  std::unordered_map<std::uint64_t, StreamState> streams_;  // by src MAC
  FrerEliminatorStats stats_;
};

}  // namespace slingshot
