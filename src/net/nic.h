// Host NIC: couples a station (PHY server, L2 server, RU, app server) to
// one side of a Link and dispatches received frames to a handler.
#pragma once

#include <functional>
#include <utility>

#include "net/link.h"
#include "net/packet.h"
#include "sim/simulator.h"

namespace slingshot {

class Nic final : public FrameSink {
 public:
  Nic(Simulator& sim, MacAddr mac) : sim_(&sim), mac_(mac) {}

  // Attach this NIC as side A of `link` (side B is typically a switch
  // port).
  void attach(Link& link) {
    link_ = &link;
    link.attach_a(this);
  }

  void set_rx_handler(std::function<void(Packet&&)> handler) {
    rx_ = std::move(handler);
  }

  // Fault-injection hooks (src/inject): an interceptor sees every frame
  // on its path and may mutate it; returning false drops the frame. The
  // tx interceptor runs after the source MAC is stamped, the rx
  // interceptor before the frame reaches the rx handler.
  using PacketInterceptor = std::function<bool(Packet&)>;
  void set_tx_interceptor(PacketInterceptor f) { tx_intercept_ = std::move(f); }
  void set_rx_interceptor(PacketInterceptor f) { rx_intercept_ = std::move(f); }

  // Replaces the default "hand to the attached link" egress with a
  // custom path (the FRER replication point installs itself here). Runs
  // after MAC stamping, timestamping, interception, and tx counting; a
  // null function restores the default.
  using TxOverride = std::function<void(Packet&&)>;
  void set_tx_override(TxOverride f) { tx_override_ = std::move(f); }

  // Host local-clock transform for tx timestamps (the gPTP sync-error
  // model): created_at becomes f(true_time). Null = perfect clock.
  using ClockTransform = std::function<Nanos(Nanos)>;
  void set_clock(ClockTransform f) { clock_ = std::move(f); }

  [[nodiscard]] MacAddr mac() const { return mac_; }

  void send(Packet&& packet) {
    if (link_ == nullptr && !tx_override_) {
      return;
    }
    packet.eth.src = mac_;
    packet.created_at = clock_ ? clock_(sim_->now()) : sim_->now();
    if (tx_intercept_ && !tx_intercept_(packet)) {
      ++tx_injected_drops_;
      return;
    }
    ++tx_frames_;
    tx_bytes_ += packet.wire_size();
    if (tx_override_) {
      tx_override_(std::move(packet));
      return;
    }
    link_->send_from_a(std::move(packet));
  }

  void handle_frame(Packet&& packet) override {
    if (rx_intercept_ && !rx_intercept_(packet)) {
      ++rx_injected_drops_;
      return;
    }
    ++rx_frames_;
    rx_bytes_ += packet.wire_size();
    if (rx_) {
      rx_(std::move(packet));
    }
  }

  // Deliver a frame straight to the rx handler, bypassing the rx
  // interceptor — used by the injector to re-deliver duplicated or
  // delayed frames without re-intercepting them.
  void inject_rx(Packet&& packet) {
    ++rx_frames_;
    rx_bytes_ += packet.wire_size();
    if (rx_) {
      rx_(std::move(packet));
    }
  }

  [[nodiscard]] std::uint64_t tx_frames() const { return tx_frames_; }
  [[nodiscard]] std::uint64_t rx_frames() const { return rx_frames_; }
  [[nodiscard]] std::uint64_t tx_bytes() const { return tx_bytes_; }
  [[nodiscard]] std::uint64_t rx_bytes() const { return rx_bytes_; }
  [[nodiscard]] std::uint64_t tx_injected_drops() const {
    return tx_injected_drops_;
  }
  [[nodiscard]] std::uint64_t rx_injected_drops() const {
    return rx_injected_drops_;
  }

 private:
  Simulator* sim_;
  MacAddr mac_;
  Link* link_ = nullptr;
  std::function<void(Packet&&)> rx_;
  PacketInterceptor tx_intercept_;
  PacketInterceptor rx_intercept_;
  TxOverride tx_override_;
  ClockTransform clock_;
  std::uint64_t tx_frames_ = 0;
  std::uint64_t rx_frames_ = 0;
  std::uint64_t tx_bytes_ = 0;
  std::uint64_t rx_bytes_ = 0;
  std::uint64_t tx_injected_drops_ = 0;
  std::uint64_t rx_injected_drops_ = 0;
};

}  // namespace slingshot
