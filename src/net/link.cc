#include "net/link.h"

#include <algorithm>
#include <cmath>

namespace slingshot {
namespace {

// Time to move `bytes` at `bandwidth_bps`, in integer picoseconds,
// rounded up. Fits in 64 bits for any Ethernet-sized frame (bits ~5e5,
// numerator ~5e17).
std::int64_t bytes_to_ps_ceil(std::uint64_t bytes, double bandwidth_bps) {
  const std::uint64_t bw = std::max<std::uint64_t>(1, std::uint64_t(bandwidth_bps));
  const std::uint64_t bits = bytes * 8;
  return std::int64_t((bits * 1'000'000'000'000ULL + bw - 1) / bw);
}

}  // namespace

void Link::send(Packet&& packet, bool a_to_b) {
  FrameSink* receiver = a_to_b ? side_b_ : side_a_;
  if (receiver == nullptr) {
    ++dropped_no_receiver_;
    return;
  }
  if (down_) {
    // Dead cable: nothing reaches the wire. Checked before the fault
    // hook and the loss gate so a downed link draws no RNG.
    ++dropped_down_;
    return;
  }
  // The fault hook runs *before* the random-loss gate: an injected drop
  // must not depend on (or perturb) the loss RNG stream, so fault plans
  // replay identically under lossy link configs.
  if (fault_hook_ && !fault_hook_(packet, a_to_b)) {
    ++dropped_fault_;
    return;
  }
  if (config_.loss_probability > 0.0 &&
      loss_rng_.bernoulli(config_.loss_probability)) {
    ++dropped_loss_;
    return;
  }

  if (config_.tx_time_model == TxTimeModel::kPicoCeil) {
    std::int64_t& busy_ps = a_to_b ? busy_ps_ab_ : busy_ps_ba_;
    const std::int64_t now_ps = std::int64_t(sim_.now()) * 1000;
    if (config_.max_queue_bytes > 0 && busy_ps > now_ps &&
        busy_ps - now_ps >
            bytes_to_ps_ceil(config_.max_queue_bytes, config_.bandwidth_bps)) {
      ++dropped_overflow_;  // tail-drop: egress buffer full
      return;
    }
    const std::int64_t start_ps = std::max(now_ps, busy_ps);
    busy_ps = start_ps + bytes_to_ps_ceil(packet.wire_size(),
                                          config_.bandwidth_bps);
    const Nanos arrival = Nanos((busy_ps + 999) / 1000) +
                          config_.propagation_delay;
    schedule_delivery(receiver, std::move(packet), arrival);
    return;
  }

  Nanos& busy_until = a_to_b ? busy_until_ab_ : busy_until_ba_;
  if (config_.max_queue_bytes > 0 && busy_until > sim_.now() &&
      (busy_until - sim_.now()) * 1000 >
          bytes_to_ps_ceil(config_.max_queue_bytes, config_.bandwidth_bps)) {
    ++dropped_overflow_;
    return;
  }
  const Nanos start = std::max(sim_.now(), busy_until);
  const auto bits = double(packet.wire_size()) * 8.0;
  const auto tx_time = Nanos(std::llround(bits / config_.bandwidth_bps * 1e9));
  busy_until = start + tx_time;
  const Nanos arrival = busy_until + config_.propagation_delay;
  schedule_delivery(receiver, std::move(packet), arrival);
}

void Link::schedule_delivery(FrameSink* receiver, Packet&& packet,
                             Nanos arrival) {
  ++in_flight_;
  sim_.at(arrival, [this, receiver, p = std::move(packet)]() mutable {
    --in_flight_;
    ++delivered_;
    delivered_bytes_ += p.wire_size();
    receiver->handle_frame(std::move(p));
  });
}

}  // namespace slingshot
