#include "net/link.h"

#include <cmath>

namespace slingshot {

void Link::send(Packet&& packet, bool a_to_b) {
  FrameSink* receiver = a_to_b ? side_b_ : side_a_;
  if (receiver == nullptr) {
    ++dropped_no_receiver_;
    return;
  }
  // The fault hook runs *before* the random-loss gate: an injected drop
  // must not depend on (or perturb) the loss RNG stream, so fault plans
  // replay identically under lossy link configs.
  if (fault_hook_ && !fault_hook_(packet, a_to_b)) {
    ++dropped_fault_;
    return;
  }
  if (config_.loss_probability > 0.0 &&
      loss_rng_.bernoulli(config_.loss_probability)) {
    ++dropped_loss_;
    return;
  }
  Nanos& busy_until = a_to_b ? busy_until_ab_ : busy_until_ba_;
  const Nanos start = std::max(sim_.now(), busy_until);
  const auto bits = double(packet.wire_size()) * 8.0;
  const auto tx_time = Nanos(std::llround(bits / config_.bandwidth_bps * 1e9));
  busy_until = start + tx_time;
  const Nanos arrival = busy_until + config_.propagation_delay;
  ++delivered_;
  sim_.at(arrival, [receiver, p = std::move(packet)]() mutable {
    receiver->handle_frame(std::move(p));
  });
}

}  // namespace slingshot
