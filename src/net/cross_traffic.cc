#include "net/cross_traffic.h"

#include <algorithm>

namespace slingshot {

CrossTrafficInjector::CrossTrafficInjector(Simulator& sim, Nic& nic,
                                           CrossTrafficConfig config,
                                           RngStream rng)
    : sim_(sim), nic_(nic), config_(config), rng_(std::move(rng)) {
  if (config_.load <= 0.0 || config_.link_bandwidth_bps <= 0.0) {
    return;
  }
  // Mean burst payload on the wire / (load * rate) = mean gap between
  // burst starts that realizes the target long-run load.
  const double wire_bytes = double(config_.frame_bytes) + 18.0;  // hdr + FCS
  const double burst_bits =
      wire_bytes * 8.0 * double(std::max<std::uint32_t>(1, config_.mean_burst_frames));
  mean_gap_ns_ =
      burst_bits / (config_.load * config_.link_bandwidth_bps) * 1e9;
}

void CrossTrafficInjector::start() {
  if (started_ || mean_gap_ns_ <= 0.0) {
    return;
  }
  started_ = true;
  schedule_next_burst();
}

void CrossTrafficInjector::schedule_next_burst() {
  const auto gap = Nanos(std::max(1.0, rng_.exponential(mean_gap_ns_)));
  sim_.after(gap, [this] {
    emit_burst();
    schedule_next_burst();
  });
}

void CrossTrafficInjector::emit_burst() {
  // Geometric burst length around the configured mean: long bursts are
  // what stall the serialization queue past the detector's margin.
  const int frames = 1 + int(rng_.exponential(
                             double(std::max<std::uint32_t>(1,
                                        config_.mean_burst_frames)) -
                             1.0));
  for (int i = 0; i < frames; ++i) {
    Packet p;
    p.eth.dst = config_.sink;
    p.eth.ethertype = EtherType::kUserPlane;
    p.payload.assign(config_.frame_bytes, 0x5A);
    ++frames_;
    bytes_ += p.wire_size();
    nic_.send(std::move(p));
  }
}

}  // namespace slingshot
