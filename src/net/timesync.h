// gPTP-style per-node time-sync error model (802.1AS).
//
// Each fabric node (switch, PHY/RU hosts) free-runs on a local
// oscillator with a fixed frequency error (ppm, sampled per node) and
// is servoed back toward the grandmaster every sync interval with a
// residual measurement error. The resulting clock offset is a bounded
// sawtooth-plus-noise: it grows at the drift rate between syncs and is
// pulled toward zero (but not exactly to zero) at each sync, clamped to
// max_abs_offset.
//
// Where it bites the failure detector (§5.2.2): the switch's packet
// generator ticks on the switch's *local* clock, so its tick train —
// the detector's only notion of elapsed time — stretches or compresses
// by the switch's frequency error (see
// ProgrammableSwitch::set_tick_perturbation). NIC timestamps
// (Packet::created_at) are likewise read on the host's local clock.
#pragma once

#include <cstdint>

#include "common/rng.h"
#include "common/time.h"

namespace slingshot {

struct TimeSyncConfig {
  // Clamp on |local - true| offset. 0 = perfectly synchronized fabric
  // (the model is inert: offsets are identically zero).
  Nanos max_abs_offset = 0;
  // Magnitude of the per-node oscillator frequency error; the actual
  // error is sampled uniformly in [-drift_ppm, +drift_ppm] per node.
  double drift_ppm = 0.0;
  // gPTP default sync interval (8 messages/s).
  Nanos sync_interval = 125'000'000;
};

class TimeSyncNode {
 public:
  TimeSyncNode(TimeSyncConfig config, RngStream rng);

  // The node's local clock reading at true time `t` (monotone in t for
  // realistic drift rates). Lazily advances the servo.
  [[nodiscard]] Nanos local_time(Nanos t);
  // local_time(t) - t.
  [[nodiscard]] Nanos offset_at(Nanos t);
  // Largest |offset| observed by any query so far.
  [[nodiscard]] Nanos max_abs_offset_seen() const { return max_seen_; }
  [[nodiscard]] double drift_ppm_actual() const { return drift_ppm_; }

  // Map one nominal timer period onto this node's local clock: a node
  // whose oscillator runs fast fires its periodic timer early in true
  // time (and vice versa). Sub-ns drift per period is accumulated so a
  // long tick train carries the exact frequency error.
  [[nodiscard]] Nanos perturb_period(Nanos nominal_period);

 private:
  void advance(Nanos t);

  TimeSyncConfig config_;
  RngStream rng_;
  double drift_ppm_ = 0.0;      // this node's sampled frequency error
  Nanos last_sync_ = 0;
  double offset_ns_ = 0.0;      // offset at last_sync_
  double period_err_accum_ = 0.0;
  Nanos max_seen_ = 0;
};

}  // namespace slingshot
