#include "net/timesync.h"

#include <algorithm>
#include <cmath>

namespace slingshot {
namespace {

double clamp_offset(double offset_ns, Nanos max_abs) {
  const double bound = double(max_abs);
  return std::clamp(offset_ns, -bound, bound);
}

}  // namespace

TimeSyncNode::TimeSyncNode(TimeSyncConfig config, RngStream rng)
    : config_(config), rng_(std::move(rng)) {
  if (config_.drift_ppm != 0.0) {
    drift_ppm_ = rng_.uniform(-config_.drift_ppm, config_.drift_ppm);
  }
}

void TimeSyncNode::advance(Nanos t) {
  if (config_.max_abs_offset <= 0) {
    return;  // perfect sync: offset pinned at zero
  }
  const Nanos interval = std::max<Nanos>(1, config_.sync_interval);
  while (last_sync_ + interval <= t) {
    last_sync_ += interval;
    // Free-run for one interval at the node's frequency error...
    offset_ns_ += drift_ppm_ * 1e-6 * double(interval);
    // ...then the servo pulls most of it out, leaving a residual plus
    // the sync measurement's own noise (a fraction of the bound).
    const double noise =
        rng_.gaussian(0.0, double(config_.max_abs_offset) / 16.0);
    offset_ns_ = clamp_offset(offset_ns_ * 0.1 + noise,
                              config_.max_abs_offset);
  }
}

Nanos TimeSyncNode::offset_at(Nanos t) {
  if (config_.max_abs_offset <= 0) {
    return 0;
  }
  advance(t);
  const double raw =
      offset_ns_ + drift_ppm_ * 1e-6 * double(t - last_sync_);
  const auto offset =
      Nanos(std::llround(clamp_offset(raw, config_.max_abs_offset)));
  max_seen_ = std::max<Nanos>(max_seen_, offset >= 0 ? offset : -offset);
  return offset;
}

Nanos TimeSyncNode::local_time(Nanos t) { return t + offset_at(t); }

Nanos TimeSyncNode::perturb_period(Nanos nominal_period) {
  if (drift_ppm_ == 0.0) {
    return nominal_period;
  }
  // A fast oscillator (positive ppm) counts the nominal period off in
  // *less* true time, so the timer fires early.
  period_err_accum_ -= drift_ppm_ * 1e-6 * double(nominal_period);
  const auto shift = std::int64_t(std::llround(period_err_accum_));
  period_err_accum_ -= double(shift);
  return std::max<Nanos>(1, nominal_period + shift);
}

}  // namespace slingshot
