#include "ue/ue_batch.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"
#include "phy/mcs.h"
#include "phy/simd.h"
#include "phy/tb_codec.h"

namespace slingshot {
namespace {

// The batch never transmits an empty turn: a granted lane with no app
// backlog sends a padding/keepalive PDU, like a real PUSCH with padding
// BSR. Keeps every scheduled turn's section well-formed.
constexpr std::uint32_t kMinUlPayloadBytes = 16;

// A grant announced on the PDCCH stays usable this many slots — the
// batch keeps transmitting through a control gap no longer than the
// announce-to-target distance (fapi_advance + 2), mirroring how a real
// UE holds grants it already heard across a short fronthaul outage.
constexpr std::int64_t kGrantHoldSlots = 4;

[[nodiscard]] float lcg_uniform(std::uint32_t& state) {
  state = state * 1664525U + 1013904223U;
  return float(state >> 8) * 0x1.0p-24F;
}

}  // namespace

UeBatch::UeBatch(UeBatchConfig config) : config_(config) {
  const std::size_t n = config_.schedule.population;
  snr_db_.resize(n, config_.fading.mean_snr_db);
  innov_.resize(n, 0.0F);
  credits_.resize(n, 0.0F);
  rate_.resize(n, 0.0F);
  // All lanes start connected, as freshly attached at slot 0.
  rlf_deadline_.resize(n, config_.rlf_timeout_slots);
  reattach_deadline_.resize(n, -1);
  lcg_.resize(n, 1U);
  harq_bits_.resize(n, 0);
  app_.resize(n, std::uint8_t(BulkApp::kFullBuffer));
  hits_.resize(n, 0);
  connected_count_ = std::int64_t(n);

  // Triangular approximation of the gaussian innovation: sqrt(6)*sigma*
  // (u1+u2-1) matches the reference stddev; the distribution shape is a
  // deliberate simplification (documented in DESIGN.md §5.7).
  innov_scale_ =
      config_.fading.innov_sigma_db * float(std::sqrt(6.0));

  for (std::size_t i = 0; i < n; ++i) {
    const std::uint64_t h = splitmix64(config_.seed ^ (i * 2654435761ULL));
    lcg_[i] = std::uint32_t(h) | 1U;  // LCG state may be anything; keep odd
    const double mix = double(h >> 11) * 0x1.0p-53;
    if (mix < config_.web_fraction) {
      app_[i] = std::uint8_t(BulkApp::kWeb);
      rate_[i] = config_.web_rate_bytes_per_slot;
    } else if (mix < config_.web_fraction + config_.voice_fraction) {
      app_[i] = std::uint8_t(BulkApp::kVoice);
      rate_[i] = config_.voice_rate_bytes_per_slot;
    } else {
      app_[i] = std::uint8_t(BulkApp::kFullBuffer);
      rate_[i] = 0.0F;  // full-buffer lanes always fill the TB
    }
  }
}

double UeBatch::hash01(std::uint64_t a, std::uint64_t b) const {
  const std::uint64_t h = splitmix64(
      config_.seed ^ (a * 0x9E3779B97F4A7C15ULL) ^ (b + 0x632BE59BD9B4E019ULL));
  return double(h >> 11) * 0x1.0p-53;
}

void UeBatch::on_dl_control(std::int64_t slot) {
  if (slot <= cell_last_ctrl_slot_) {
    return;  // same slot's second C-plane packet (mid-slot sync), or late
  }
  if (cell_last_ctrl_slot_ >= 0) {
    const std::int64_t gap = slot - cell_last_ctrl_slot_ - 1;
    if (gap > stats_.max_ctrl_gap_slots) {
      stats_.max_ctrl_gap_slots = gap;
    }
  }
  cell_last_ctrl_slot_ = slot;
  ++stats_.ctrl_slots_seen;
}

void UeBatch::on_dl_section(std::int64_t slot, const UPlaneSection& section) {
  const auto& s = config_.schedule;
  if (s.population == 0) {
    return;
  }
  // Recover this section's lane from the shared schedule arithmetic.
  std::uint32_t lane = 0;
  bool matched = false;
  for (int j = 0; j < s.dl_pdus_per_slot; ++j) {
    const auto turn = bulk_dl_turn(s, slot, j);
    if (turn.ue == section.ue) {
      lane = turn.lane;
      matched = true;
      break;
    }
  }
  if (!matched) {
    return;  // not this slot's schedule (stale or misrouted)
  }
  ++stats_.dl_sections;
  cell_last_dl_service_slot_ = std::max(cell_last_dl_service_slot_, slot);
  if (rlf_deadline_[lane] < 0) {
    return;  // lane detached/reattaching: nobody is listening
  }

  // Modeled decode: SNR threshold + deterministic hash error floor,
  // with a HARQ-combining bonus — a lane that failed this process
  // decodes the retry, the SoA analogue of soft-combining.
  const std::uint8_t harq_mask = std::uint8_t(1U << (section.harq.value() % 8));
  const float threshold = float(mcs_entry(section.mcs).snr_threshold_db +
                                config_.dl_snr_margin_db);
  bool ok;
  if ((harq_bits_[lane] & harq_mask) != 0) {
    ok = true;
    ++stats_.dl_harq_combines;
  } else if (snr_db_[lane] < threshold) {
    ok = false;
  } else {
    ok = hash01(lane, std::uint64_t(slot)) >= config_.dl_base_error_rate;
  }
  if (ok) {
    harq_bits_[lane] = std::uint8_t(harq_bits_[lane] & ~harq_mask);
    ++stats_.dl_tbs_ok;
    stats_.dl_app_bytes += section.tb_bytes;
  } else {
    harq_bits_[lane] = std::uint8_t(harq_bits_[lane] | harq_mask);
    ++stats_.dl_tbs_failed;
  }
  pending_uci_.push_back(UciFeedback{section.ue, section.harq, ok});
}

void UeBatch::declare_rlf(std::uint32_t lane, std::int64_t slot) {
  rlf_deadline_[lane] = -1;
  reattach_deadline_[lane] = slot + config_.reattach_delay_slots;
  harq_bits_[lane] = 0;
  credits_[lane] = 0.0F;
  --connected_count_;
  ++reattaching_count_;
}

void UeBatch::complete_reattach(std::uint32_t lane, std::int64_t slot) {
  reattach_deadline_[lane] = -1;
  rlf_deadline_[lane] = slot + config_.rlf_timeout_slots;
  --reattaching_count_;
  ++connected_count_;
  ++stats_.reattach_events;
}

void UeBatch::advance_tti(std::int64_t slot) {
  ++stats_.advance_calls;
  const std::size_t n = snr_db_.size();
  if (n == 0) {
    return;
  }
  const auto& kernels = simd::kernels();

  // ---- Fading: per-lane innovations, then one vectorized AR(1) step.
  for (std::size_t i = 0; i < n; ++i) {
    const float u1 = lcg_uniform(lcg_[i]);
    const float u2 = lcg_uniform(lcg_[i]);
    innov_[i] = innov_scale_ * (u1 + u2 - 1.0F);
  }
  kernels.ar1_update(snr_db_.data(), n, config_.fading.mean_snr_db,
                     config_.fading.ar1_rho, innov_.data());

  // ---- Credit accrual: x += rate, on the same kernel (mean 0, rho 1).
  kernels.ar1_update(credits_.data(), n, 0.0F, 1.0F, rate_.data());

  // ---- RLF sweep. Effective lane deadline is
  // max(attach_slot, cell_last_ctrl) + timeout; the scalar guard covers
  // the cell_last_ctrl term, so the stored attach-based deadlines only
  // need scanning once the whole cell's control plane is stale — the
  // steady-state cost of radio-link supervision is one compare per TTI.
  if (connected_count_ > 0 &&
      slot > cell_last_ctrl_slot_ + config_.rlf_timeout_slots) {
    ++stats_.deadline_scans;
    const std::size_t hits =
        kernels.deadline_scan(rlf_deadline_.data(), n, slot, hits_.data());
    for (std::size_t h = 0; h < hits; ++h) {
      declare_rlf(hits_[h], slot);
      ++stats_.rlf_events;
    }
  }

  // ---- Grant starvation (cell-level, see UeBatchConfig).
  if (config_.grant_starvation_slots > 0 && connected_count_ > 0 &&
      cell_last_dl_service_slot_ >= 0 &&
      slot > cell_last_dl_service_slot_ + config_.grant_starvation_slots &&
      slot <= cell_last_ctrl_slot_ + config_.rlf_timeout_slots) {
    for (std::size_t i = 0; i < n; ++i) {
      if (rlf_deadline_[i] >= 0) {
        declare_rlf(std::uint32_t(i), slot);
        ++stats_.starvation_events;
      }
    }
    cell_last_dl_service_slot_ = slot;  // one re-establishment per outage
  }

  // ---- Reattach completions.
  if (reattaching_count_ > 0) {
    ++stats_.deadline_scans;
    const std::size_t hits = kernels.deadline_scan(reattach_deadline_.data(),
                                                   n, slot, hits_.data());
    for (std::size_t h = 0; h < hits; ++h) {
      complete_reattach(hits_[h], slot);
    }
  }

  // ---- Diurnal churn: triangle-wave detach target, bounded moves/TTI.
  if (config_.churn_amplitude > 0.0 && config_.churn_period_slots > 0) {
    const std::int64_t phase = slot % config_.churn_period_slots;
    const std::int64_t half = config_.churn_period_slots / 2;
    const double tri = half == 0 ? 0.0
                       : phase < half
                           ? double(phase) / double(half)
                           : double(config_.churn_period_slots - phase) /
                                 double(half);
    const auto target = std::int64_t(config_.churn_amplitude * double(n) * tri);
    const auto max_moves = std::max<std::int64_t>(1, std::int64_t(n) / 1000);
    std::int64_t moves = 0;
    while (churn_detached_count_ < target && moves < max_moves &&
           connected_count_ > 0) {
      // Walk the cursor to the next connected lane and park it.
      for (std::size_t probe = 0; probe < n; ++probe) {
        const std::uint32_t lane = churn_cursor_;
        churn_cursor_ = (churn_cursor_ + 1) % std::uint32_t(n);
        if (rlf_deadline_[lane] >= 0) {
          rlf_deadline_[lane] = -1;
          harq_bits_[lane] = 0;
          credits_[lane] = 0.0F;
          --connected_count_;
          ++churn_detached_count_;
          churn_stack_.push_back(lane);
          ++stats_.churn_detaches;
          break;
        }
      }
      ++moves;
    }
    while (churn_detached_count_ > target && moves < max_moves &&
           !churn_stack_.empty()) {
      const std::uint32_t lane = churn_stack_.back();
      churn_stack_.pop_back();
      rlf_deadline_[lane] = slot + config_.rlf_timeout_slots;
      credits_[lane] = 0.0F;
      --churn_detached_count_;
      ++connected_count_;
      ++stats_.churn_attaches;
      ++moves;
    }
  }
}

std::uint32_t UeBatch::drain_credits(std::uint32_t lane, std::int64_t slot) {
  const auto& s = config_.schedule;
  switch (BulkApp(app_[lane])) {
    case BulkApp::kFullBuffer:
      return s.ul_tb_bytes;
    case BulkApp::kVoice: {
      const auto backlog = std::uint32_t(std::max(0.0F, credits_[lane]));
      const auto drained = std::min(backlog, s.ul_tb_bytes);
      credits_[lane] -= float(drained);
      return drained;
    }
    case BulkApp::kWeb: {
      const std::int64_t window =
          config_.web_burst_window_slots > 0
              ? slot / config_.web_burst_window_slots
              : slot;
      const bool in_burst = hash01(lane ^ 0x5EB0000ULL,
                                   std::uint64_t(window)) <
                            config_.web_burst_probability;
      const auto backlog = std::uint32_t(std::max(0.0F, credits_[lane]));
      // Outside a burst only a keepalive trickle leaves; the backlog
      // keeps building toward the next burst window.
      const auto cap = in_burst ? s.ul_tb_bytes
                                : std::min<std::uint32_t>(64, s.ul_tb_bytes);
      const auto drained = std::min(backlog, cap);
      credits_[lane] -= float(drained);
      return drained;
    }
  }
  return 0;
}

std::vector<UPlaneSection> UeBatch::pull_uplink(std::int64_t slot) {
  std::vector<UPlaneSection> sections;
  const auto& s = config_.schedule;
  if (s.population == 0 || connected_count_ == 0) {
    return sections;
  }
  // No control plane for longer than the grant-hold window means the
  // batch has no (implicit) grant to transmit against — during a
  // failover gap this is what the PHY observes as missing sections.
  if (cell_last_ctrl_slot_ < 0 ||
      slot - cell_last_ctrl_slot_ > kGrantHoldSlots) {
    return sections;
  }
  for (int j = 0; j < s.ul_grants_per_slot; ++j) {
    const auto turn = bulk_ul_turn(s, slot, j);
    if (rlf_deadline_[turn.lane] < 0) {
      continue;  // lane detached: the PHY sees a missing section
    }
    const std::uint32_t app_bytes = drain_credits(turn.lane, slot);
    stats_.ul_app_bytes += app_bytes;
    const std::uint32_t payload_bytes =
        std::max(app_bytes, kMinUlPayloadBytes);
    std::vector<std::uint8_t> payload(payload_bytes);
    for (std::uint32_t b = 0; b < payload_bytes; ++b) {
      payload[b] = std::uint8_t(turn.lane * 31U + b);
    }
    const auto mod = mcs_entry(s.ul_mcs).modulation;
    auto encoded = encode_tb(payload, mod);
    UPlaneSection section;
    section.ue = turn.ue;
    section.harq = turn.harq;
    section.new_data = true;
    section.mcs = s.ul_mcs;
    section.tb_bytes = std::uint32_t(payload.size());
    section.codeword_bits = encoded.codeword_bits;
    section.iq = std::move(encoded.iq);
    section.shadow_payload = std::move(payload);
    sections.push_back(std::move(section));
    ++stats_.ul_sections;
  }
  return sections;
}

std::vector<UciFeedback> UeBatch::pull_uci() {
  auto out = std::move(pending_uci_);
  pending_uci_.clear();
  return out;
}

std::size_t UeBatch::lane_bytes() const {
  return snr_db_.capacity() * sizeof(float) +
         innov_.capacity() * sizeof(float) +
         credits_.capacity() * sizeof(float) +
         rate_.capacity() * sizeof(float) +
         rlf_deadline_.capacity() * sizeof(std::int64_t) +
         reattach_deadline_.capacity() * sizeof(std::int64_t) +
         lcg_.capacity() * sizeof(std::uint32_t) +
         harq_bits_.capacity() * sizeof(std::uint8_t) +
         app_.capacity() * sizeof(std::uint8_t) +
         hits_.capacity() * sizeof(std::uint32_t) +
         churn_stack_.capacity() * sizeof(std::uint32_t);
}

}  // namespace slingshot
