#include "ue/ue.h"

#include "common/log.h"
#include "phy/mcs.h"
#include "phy/tb_codec.h"

namespace slingshot {

UserEquipment::UserEquipment(Simulator& sim, std::string name, UeConfig config,
                             FadingConfig fading, RngStream channel_rng)
    : sim_(sim),
      name_(std::move(name)),
      config_(config),
      channel_(fading, std::move(channel_rng)),
      jitter_rng_(sim.rng().stream("ue.jitter." + name_)) {
  // Downlink RLC receive entity: in-order release, then the modem
  // processing-delay stage, then the app sink.
  dl_rlc_rx_ = std::make_unique<RlcRx>(
      sim_, config.rlc_t_reordering, [this](std::vector<std::uint8_t> sdu) {
        ++stats_.dl_sdus_delivered;
        track_modem_release(
            sim_.at(release_time(config_.dl_processing_delay, dl_release_),
                    [this, s = std::move(sdu)]() mutable {
                      if (downlink_sink_) {
                        downlink_sink_(std::move(s));
                      }
                    }));
      });
}

UserEquipment::~UserEquipment() {
  supervision_task_.cancel();
  reattach_task_.cancel();
  for (auto& task : modem_release_tasks_) {
    task.cancel();
  }
}

void UserEquipment::track_modem_release(EventHandle h) {
  if (modem_release_tasks_.size() >= modem_release_scan_at_) {
    std::erase_if(modem_release_tasks_, [](const EventHandle& t) {
      return t.state() == EventState::kExpired;
    });
    // Re-arm at double the surviving count: if a prune reclaims little
    // (deep modem pipeline), the next scan waits for proportionally more
    // pushes, so prune work stays amortized O(1) per tracked handle
    // instead of rescanning a full vector on nearly every delivery.
    modem_release_scan_at_ =
        std::max<std::size_t>(64, 2 * modem_release_tasks_.size());
  }
  modem_release_tasks_.push_back(h);
}

Nanos UserEquipment::release_time(Nanos base, Nanos& last_release) {
  Nanos delay = base;
  if (config_.processing_jitter > 0) {
    delay +=
        Nanos(jitter_rng_.uniform(0.0, double(config_.processing_jitter)));
  }
  const Nanos release = std::max(sim_.now() + delay, last_release + 1);
  last_release = release;
  return release;
}

void UserEquipment::power_on() {
  last_dl_control_ = sim_.now();
  last_grant_ = sim_.now();
  // Radio-link supervision: sample every 5 ms, well below the 50 ms RLF
  // timeout.
  supervision_task_ =
      sim_.every(sim_.now() + 5_ms, 5_ms, [this] { check_radio_link(); });
}

void UserEquipment::check_radio_link() {
  if (state_ != UeState::kConnected) {
    return;
  }
  if (sim_.now() - last_dl_control_ > config_.rlf_timeout) {
    ++stats_.rlf_events;
    SLOG_WARN("ue", "%s radio link failure (no DL control for %.1f ms)",
              name_.c_str(), to_millis(sim_.now() - last_dl_control_));
    begin_reattach();
    return;
  }
  if (config_.grant_starvation_timeout > 0 &&
      sim_.now() - last_grant_ > config_.grant_starvation_timeout) {
    SLOG_WARN("ue", "%s grant starvation: stale RRC context, re-establishing",
              name_.c_str());
    begin_reattach();
  }
}

void UserEquipment::force_reattach(const char* reason) {
  if (state_ != UeState::kConnected) {
    return;
  }
  SLOG_WARN("ue", "%s forced reattach: %s", name_.c_str(), reason);
  begin_reattach();
}

void UserEquipment::begin_reattach() {
  state_ = UeState::kReattaching;
  // All radio-layer state is lost across the re-attach.
  grants_.clear();
  ul_inflight_.clear();
  dl_harq_.clear();
  pending_uci_.clear();
  ul_rlc_tx_.reset();
  dl_rlc_rx_->reset();
  reattach_task_ = sim_.after(config_.reattach_delay, [this] {
    state_ = UeState::kConnected;
    last_dl_control_ = sim_.now();
    last_grant_ = sim_.now();
    ++stats_.reattach_events;
    SLOG_INFO("ue", "%s reattached", name_.c_str());
    if (on_reattached_) {
      on_reattached_();
    }
  });
}

void UserEquipment::on_dl_control(std::int64_t /*slot*/, const CPlaneMsg& msg) {
  if (state_ != UeState::kConnected) {
    return;
  }
  last_dl_control_ = sim_.now();
  for (const auto& grant : msg.ul_grants) {
    if (grant.ue == config_.id) {
      last_grant_ = sim_.now();
      grants_[grant.target_slot].push_back(grant);
    }
  }
}

void UserEquipment::on_dl_section(std::int64_t /*slot*/,
                                  const UPlaneSection& section) {
  if (state_ != UeState::kConnected || section.ue != config_.id) {
    return;
  }
  if (section.new_data) {
    dl_harq_.start_new(config_.id, section.harq);
  }
  const auto* buffer = dl_harq_.find(config_.id, section.harq);
  const std::vector<float>* prior = buffer != nullptr ? &buffer->llrs : nullptr;
  if (prior != nullptr) {
    ++stats_.dl_harq_combines;
  }
  const auto mod = mcs_entry(section.mcs).modulation;
  auto result = decode_tb(section.iq, mod, section.shadow_payload,
                          config_.ldpc_max_iters, prior,
                          LdpcCode::standard(), &decode_ws_);
  if (result.crc_ok) {
    ++stats_.dl_tbs_ok;
    dl_harq_.release(config_.id, section.harq);
    pending_uci_.push_back(UciFeedback{config_.id, section.harq, true});
    // Hand the TB's SDUs to the RLC receive entity (in-order release).
    for (auto& sdu : rlc_unpack(section.shadow_payload)) {
      dl_rlc_rx_->on_sdu(std::move(sdu));
    }
  } else {
    ++stats_.dl_tbs_failed;
    dl_harq_.store(config_.id, section.harq, std::move(result.combined_llrs));
    pending_uci_.push_back(UciFeedback{config_.id, section.harq, false});
  }
}

std::vector<UPlaneSection> UserEquipment::pull_uplink(std::int64_t slot) {
  std::vector<UPlaneSection> sections;
  if (state_ != UeState::kConnected) {
    return sections;
  }
  const auto it = grants_.find(slot);
  if (it != grants_.end()) {
    for (const auto& grant : it->second) {
      std::vector<std::uint8_t> payload;
      if (grant.new_data) {
        payload = ul_rlc_tx_.pack(ul_queue_, grant.tb_bytes);
        ul_inflight_[grant.harq.value()] = payload;
        ++stats_.ul_transmissions;
      } else {
        // Retransmission: resend the retained payload; if it was lost
        // (e.g. reattach cleared it), send padding.
        const auto inflight = ul_inflight_.find(grant.harq.value());
        if (inflight != ul_inflight_.end()) {
          payload = inflight->second;
        } else {
          payload.assign(grant.tb_bytes, 0);
        }
        ++stats_.ul_retransmissions;
      }
      const auto mod = mcs_entry(grant.mcs).modulation;
      auto encoded = encode_tb(payload, mod);
      UPlaneSection section;
      section.ue = config_.id;
      section.harq = grant.harq;
      section.new_data = grant.new_data;
      section.mcs = grant.mcs;
      section.tb_bytes = grant.tb_bytes;
      section.codeword_bits = encoded.codeword_bits;
      section.iq = std::move(encoded.iq);
      section.shadow_payload = std::move(payload);
      sections.push_back(std::move(section));
    }
  }
  // Garbage-collect grants at or before this slot.
  grants_.erase(grants_.begin(), grants_.upper_bound(slot));
  return sections;
}

std::vector<UciFeedback> UserEquipment::pull_uci() {
  auto out = std::move(pending_uci_);
  pending_uci_.clear();
  return out;
}

void UserEquipment::send_uplink(std::vector<std::uint8_t> sdu) {
  if (sdu.empty()) {
    return;  // zero-length SDUs are not representable in RLC framing
  }
  if (ul_queue_bytes() + sdu.size() > config_.max_ul_queue_bytes) {
    ++stats_.ul_sdus_dropped_overflow;
    return;
  }
  // Model uplink stack processing latency by delaying enqueue.
  ul_pending_bytes_ += sdu.size();
  track_modem_release(
      sim_.at(release_time(config_.ul_processing_delay, ul_release_),
              [this, s = std::move(sdu)]() mutable {
                ul_pending_bytes_ -= s.size();
                ul_queue_.push_back(RlcSdu{kRlcSnUnassigned, std::move(s)});
              }));
}

}  // namespace slingshot
