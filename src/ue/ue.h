// User equipment model.
//
// Models the UE behaviours that matter for Slingshot's evaluation:
//
//  * Real receive/transmit chains (the UE decodes DL transport blocks
//    with the same LDPC/QAM pipeline the PHY uses, and soft-combines DL
//    HARQ retransmissions in its own buffer — the paper notes DL HARQ
//    state lives at the UE, not the vRAN PHY, §8.4).
//  * Radio-link supervision: if no DL control is seen for the RLF
//    timeout (50 ms in the paper's setup), the UE declares radio link
//    failure, disconnects, and takes ~6.2 s to re-attach through the
//    core network (§8.1) — the baseline outage Slingshot eliminates.
//  * Uplink transmission against PDCCH-like grants, with per-HARQ
//    payload retention for retransmissions.
//  * A datagram interface for traffic apps (ping/iperf/video).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "channel/channel.h"
#include "common/time.h"
#include "common/types.h"
#include "fronthaul/oran.h"
#include "l2/rlc.h"
#include "phy/harq.h"
#include "phy/tb_codec.h"
#include "sim/simulator.h"

namespace slingshot {

enum class UeState : std::uint8_t {
  kConnected,
  kReattaching,  // after radio link failure
};

struct UeConfig {
  UeId id;
  SlotConfig slots{};
  Nanos rlf_timeout = 50_ms;       // Radio Link Failure timer (§2.4)
  Nanos reattach_delay = 6'200_ms;  // measured reattach time (§8.1)
  // Service supervision: a connected UE that stops receiving any UL
  // grants for this long concludes its RRC connection is stale (the
  // serving vRAN lost its context) and re-establishes. 0 disables.
  // This is what strands a UE for ~6 s when a whole vRAN stack fails
  // over without Slingshot (§8.1).
  Nanos grant_starvation_timeout = 0;
  int ldpc_max_iters = 8;
  // One-way modem/stack processing latency applied to app datagrams in
  // each direction (calibrated so end-to-end ping matches the paper's
  // ~23 ms median, §8.7), plus per-datagram jitter — the "routine
  // performance fluctuations" visible in the paper's ping traces.
  Nanos dl_processing_delay = 6_ms;
  Nanos ul_processing_delay = 6_ms;
  Nanos processing_jitter = 4_ms;  // uniform [0, jitter) per datagram
  std::size_t max_ul_queue_bytes = 3'000'000;
  // DL receive reordering window: long enough for the L2's RLC-AM
  // retransmission (HARQ-reap + reschedule, ~25 ms) to fill gaps.
  Nanos rlc_t_reordering = 50_ms;
};

struct UeStats {
  std::int64_t dl_tbs_ok = 0;
  std::int64_t dl_tbs_failed = 0;
  std::int64_t dl_harq_combines = 0;
  std::int64_t ul_transmissions = 0;
  std::int64_t ul_retransmissions = 0;
  std::int64_t rlf_events = 0;
  std::int64_t reattach_events = 0;
  std::int64_t dl_sdus_delivered = 0;
  std::int64_t ul_sdus_dropped_overflow = 0;
};

class UserEquipment {
 public:
  UserEquipment(Simulator& sim, std::string name, UeConfig config,
                FadingConfig fading, RngStream channel_rng);
  // Every timer/callback this UE schedules captures `this`: the
  // supervision `every()`, the one-shot reattach completion, and the
  // per-datagram modem release events (DL delivery + UL enqueue). All
  // of them are cancelled here so destroying a UE mid-reattach or with
  // datagrams still inside the modem delay stage can never fire a
  // callback into freed memory.
  ~UserEquipment();

  [[nodiscard]] UeId id() const { return config_.id; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] UeChannel& channel() { return channel_; }
  [[nodiscard]] UeState state() const { return state_; }
  [[nodiscard]] bool connected() const { return state_ == UeState::kConnected; }

  void power_on();  // starts radio-link supervision

  // ---- Over-the-air interface (called by the RU) ----
  // DL control broadcast (PDCCH-like): keeps radio-link supervision fed
  // and delivers UL grants.
  void on_dl_control(std::int64_t slot, const CPlaneMsg& msg);
  // DL user-plane section addressed to this UE, already channel-impaired.
  void on_dl_section(std::int64_t slot, const UPlaneSection& section);
  // Uplink transmissions for `slot` per stored grants (clean IQ; the RU
  // applies the channel). Empty when disconnected.
  [[nodiscard]] std::vector<UPlaneSection> pull_uplink(std::int64_t slot);
  // Pending HARQ feedback, drained each UL opportunity by the RU.
  [[nodiscard]] std::vector<UciFeedback> pull_uci();

  // ---- App-layer datagram interface ----
  void set_downlink_sink(
      std::function<void(std::vector<std::uint8_t>)> sink) {
    downlink_sink_ = std::move(sink);
  }
  void send_uplink(std::vector<std::uint8_t> sdu);
  [[nodiscard]] std::size_t ul_queue_bytes() const {
    return queued_bytes(ul_queue_) + ul_pending_bytes_;
  }

  // Force the UE through the full disconnect/re-attach procedure — what
  // happens in the no-Slingshot baseline when the whole vRAN stack
  // fails over and the UE's RRC context is gone (§8.1).
  void force_reattach(const char* reason);

  // Reattach notification (the testbed uses it to re-create the UE
  // context at the serving L2).
  void set_on_reattached(std::function<void()> callback) {
    on_reattached_ = std::move(callback);
  }

  [[nodiscard]] const UeStats& stats() const { return stats_; }
  [[nodiscard]] Nanos last_dl_control_time() const { return last_dl_control_; }

 private:
  void check_radio_link();
  void begin_reattach();

  // Remember a scheduled `this`-capturing modem event so the destructor
  // can cancel it. Fired handles report kExpired and are pruned lazily,
  // keeping the vector bounded by the in-flight datagram count.
  void track_modem_release(EventHandle h);

  // FIFO-preserving jittered release time for a datagram entering the
  // modem stack in the given direction (reordering inside the modem
  // would look like packet reordering to TCP, which real stacks avoid).
  [[nodiscard]] Nanos release_time(Nanos base, Nanos& last_release);

  Simulator& sim_;
  std::string name_;
  UeConfig config_;
  UeChannel channel_;
  RngStream jitter_rng_;
  UeState state_ = UeState::kConnected;
  Nanos last_dl_control_ = 0;
  Nanos last_grant_ = 0;
  Nanos dl_release_ = 0;
  Nanos ul_release_ = 0;
  std::size_t ul_pending_bytes_ = 0;  // in the modem delay stage
  EventHandle supervision_task_;
  EventHandle reattach_task_;
  std::vector<EventHandle> modem_release_tasks_;
  std::size_t modem_release_scan_at_ = 64;  // next prune threshold

  // UL grants keyed by target slot.
  std::map<std::int64_t, std::vector<UlGrant>> grants_;
  // Per-HARQ retained UL payloads for retransmission.
  std::map<std::uint8_t, std::vector<std::uint8_t>> ul_inflight_;
  std::deque<RlcSdu> ul_queue_;
  RlcTx ul_rlc_tx_;
  std::unique_ptr<RlcRx> dl_rlc_rx_;  // in-order release to the app
  HarqSoftBufferStore dl_harq_;  // DL soft-combining lives at the UE
  std::vector<UciFeedback> pending_uci_;
  std::function<void(std::vector<std::uint8_t>)> downlink_sink_;
  std::function<void()> on_reattached_;
  UeStats stats_;
  // Reused across every DL TB decode: zero per-decode heap traffic.
  TbDecodeWorkspace decode_ws_;
};

}  // namespace slingshot
