// Massive-UE mode: one struct-of-arrays batch per cell, advanced by a
// single advance_tti() call per TTI.
//
// The individually-modeled UserEquipment carries a 5 ms supervision
// every() timer, per-UE std::map grant/HARQ state, and per-datagram
// callbacks — at 10^5+ UEs the timer ticks alone dominate the event
// loop. UeBatch restructures the per-UE hot state into contiguous SoA
// lanes:
//
//   snr_db[]             AR(1)-fading SNR, stepped by the runtime-
//                        dispatched simd::ar1_update kernel
//   credits[] / rate[]   app-traffic credit counters (bytes), accrued by
//                        the same kernel with mean=0, rho=1
//   rlf_deadline[]       i64 lanes swept by simd::deadline_scan —
//                        instead of a per-UE supervision timer, the
//                        batch runs ONE vectorized sweep per TTI, and
//                        only when the cell's control plane is actually
//                        stale (a scalar guard makes the steady-state
//                        cost zero)
//   reattach_deadline[]  i64 lanes for the ~6.2 s core re-attach
//   harq_bits[]          per-lane DL HARQ NACK bitmap (8 processes)
//   app[] / lcg[]        traffic-app class + per-lane RNG state
//
// The batch is deliberately simulator-free: it schedules no events and
// draws from no sim RNG stream (it owns a splitmix64-seeded per-lane
// LCG), so attaching a batch to a cell cannot perturb any tracer UE's
// RNG stream or event interleaving — the property the tracer
// equivalence test (tests/testbed/test_bulk_equivalence.cc) pins.
//
// Air interface: the batch rides the configured-grant bulk schedule
// (src/l2/bulk_schedule.h). Uplink turns produce real encode_tb
// sections (clean IQ → the PHY's real LDPC decode passes CRC), so the
// PHY-side cost stays a constant ul_grants_per_slot decodes per UL slot
// regardless of population. Downlink bulk sections arrive as zero-IQ
// markers; the batch models the decode with an SNR-threshold +
// deterministic-hash error model and a HARQ-combining bonus (a lane
// that failed a process decodes the next transmission on it), which is
// the SoA analogue of soft-combining without storing LLR vectors.
//
// Fidelity contract vs UserEquipment (asserted by tests/ue conformance
// tests): RLF declared at the first TTI where the control-plane gap
// exceeds rlf_timeout_slots — slot-granular, where UserEquipment
// samples on a 5 ms supervision period, so batch RLF lands within one
// supervision period of the reference; reattach completes exactly
// reattach_delay_slots after the RLF declaration.
#pragma once

#include <cstdint>
#include <vector>

#include "channel/channel.h"
#include "common/types.h"
#include "fronthaul/oran.h"
#include "l2/bulk_schedule.h"

namespace slingshot {

// Batched traffic-app classes (assigned per lane from the configured
// mix): bursty web browsing, constant-bit-rate voice, and full-buffer.
enum class BulkApp : std::uint8_t { kFullBuffer = 0, kWeb = 1, kVoice = 2 };

struct UeBatchConfig {
  BulkSchedule schedule;            // cell id, population, per-slot quotas
  std::uint64_t seed = 1;           // batch-private; never the sim's RNG
  BatchFadingParams fading{};

  // Radio-link supervision (slot-granular analogues of UeConfig's
  // timers; defaults match 50 ms / 6.2 s at µ=1's 500 µs slots).
  std::int64_t rlf_timeout_slots = 100;
  std::int64_t reattach_delay_slots = 12'400;
  // A connected batch whose implicit grants stop being serviced (no
  // bulk DL section for this long while control is still alive)
  // re-establishes, mirroring UeConfig::grant_starvation_timeout. This
  // is a cell-level scalar — a per-lane starvation deadline is
  // meaningless when a lane's turn interval is population/quota slots.
  // 0 disables.
  std::int64_t grant_starvation_slots = 0;

  // Traffic mix: fractions of web and voice lanes; the remainder runs
  // full-buffer. Rates are mean bytes per TTI.
  double web_fraction = 0.4;
  double voice_fraction = 0.3;
  float web_rate_bytes_per_slot = 3.0F;    // ~48 kb/s at 500 µs slots
  float voice_rate_bytes_per_slot = 0.76F; // AMR 12.2 kb/s CBR
  // Web burstiness: lanes drain their backlog only inside burst windows
  // (hash-Bernoulli per lane per window), a keepalive trickle otherwise.
  std::int64_t web_burst_window_slots = 64;
  double web_burst_probability = 0.25;

  // Diurnal churn: a triangle wave detaches up to churn_amplitude of
  // the population at the peak, moving at most max(1, N/1000) lanes per
  // TTI so churn cost stays O(moved), not O(N). 0 disables.
  double churn_amplitude = 0.0;
  std::int64_t churn_period_slots = 20'000;  // 10 s at µ=1

  // Batch-internal DL decode model.
  double dl_base_error_rate = 0.02;
  double dl_snr_margin_db = 0.0;
};

struct UeBatchStats {
  std::int64_t rlf_events = 0;
  std::int64_t reattach_events = 0;
  std::int64_t starvation_events = 0;
  std::int64_t churn_detaches = 0;
  std::int64_t churn_attaches = 0;
  std::int64_t ul_sections = 0;
  std::int64_t ul_app_bytes = 0;   // credit bytes drained into UL turns
  std::int64_t dl_sections = 0;
  std::int64_t dl_tbs_ok = 0;
  std::int64_t dl_tbs_failed = 0;
  std::int64_t dl_harq_combines = 0;
  std::int64_t dl_app_bytes = 0;
  std::int64_t ctrl_slots_seen = 0;
  // Largest number of whole slots with no DL control between two
  // control arrivals — the failover-gap measurement (2 TTIs under
  // Slingshot, §8.2).
  std::int64_t max_ctrl_gap_slots = 0;
  std::int64_t deadline_scans = 0;  // SIMD sweeps actually executed
  std::int64_t advance_calls = 0;
};

class UeBatch {
 public:
  explicit UeBatch(UeBatchConfig config);

  // ---- Over-the-air interface (called by the RU) ----
  // Control-plane liveness: any DL C-plane packet for `slot` feeds the
  // whole batch's radio-link supervision (broadcast channel).
  void on_dl_control(std::int64_t slot);
  // A bulk DL U-plane marker section; the batch models the decode.
  void on_dl_section(std::int64_t slot, const UPlaneSection& section);
  // One per-TTI advance for the whole population: fading step, credit
  // accrual, guarded RLF/reattach deadline sweeps, churn step.
  void advance_tti(std::int64_t slot);
  // Uplink turns for `slot` per the bulk schedule (clean IQ; the PHY
  // decodes for real). Empty when the schedule has no live lanes due.
  [[nodiscard]] std::vector<UPlaneSection> pull_uplink(std::int64_t slot);
  // Pending HARQ feedback for the modeled DL decodes.
  [[nodiscard]] std::vector<UciFeedback> pull_uci();

  // ---- Introspection ----
  [[nodiscard]] const UeBatchStats& stats() const { return stats_; }
  [[nodiscard]] const UeBatchConfig& config() const { return config_; }
  [[nodiscard]] std::uint32_t population() const {
    return config_.schedule.population;
  }
  [[nodiscard]] std::int64_t connected_count() const {
    return connected_count_;
  }
  [[nodiscard]] std::int64_t reattaching_count() const {
    return reattaching_count_;
  }
  [[nodiscard]] std::int64_t last_ctrl_slot() const {
    return cell_last_ctrl_slot_;
  }
  [[nodiscard]] float lane_snr_db(std::uint32_t lane) const {
    return snr_db_[lane];
  }
  [[nodiscard]] bool lane_connected(std::uint32_t lane) const {
    return rlf_deadline_[lane] >= 0;
  }
  [[nodiscard]] BulkApp lane_app(std::uint32_t lane) const {
    return BulkApp(app_[lane]);
  }
  // Total SoA bytes held for the population (capacity-accurate), the
  // numerator of the bytes-per-UE flatness check in bench/abl_ue_sweep.
  [[nodiscard]] std::size_t lane_bytes() const;
  [[nodiscard]] double bytes_per_ue() const {
    return population() == 0 ? 0.0
                             : double(lane_bytes()) / double(population());
  }

 private:
  void declare_rlf(std::uint32_t lane, std::int64_t slot);
  void complete_reattach(std::uint32_t lane, std::int64_t slot);
  [[nodiscard]] std::uint32_t drain_credits(std::uint32_t lane,
                                            std::int64_t slot);
  [[nodiscard]] double hash01(std::uint64_t a, std::uint64_t b) const;

  UeBatchConfig config_;
  UeBatchStats stats_;

  // ---- SoA lanes (all sized exactly to the population) ----
  std::vector<float> snr_db_;
  std::vector<float> innov_;          // per-TTI fading innovations
  std::vector<float> credits_;        // app bytes awaiting an UL turn
  std::vector<float> rate_;           // credit accrual per TTI
  std::vector<std::int64_t> rlf_deadline_;       // <0: not connected
  std::vector<std::int64_t> reattach_deadline_;  // <0: not reattaching
  std::vector<std::uint32_t> lcg_;    // per-lane RNG state
  std::vector<std::uint8_t> harq_bits_;  // DL HARQ NACK bitmap
  std::vector<std::uint8_t> app_;
  std::vector<std::uint32_t> hits_;   // deadline_scan output scratch

  std::int64_t connected_count_ = 0;
  std::int64_t reattaching_count_ = 0;
  std::int64_t churn_detached_count_ = 0;
  std::vector<std::uint32_t> churn_stack_;  // lanes parked by churn
  std::uint32_t churn_cursor_ = 0;

  std::int64_t cell_last_ctrl_slot_ = -1;
  std::int64_t cell_last_dl_service_slot_ = -1;

  std::vector<UciFeedback> pending_uci_;
  float innov_scale_ = 0.0F;  // sigma * sqrt(6) for the triangular draw
};

}  // namespace slingshot
