// Orion: Slingshot's software middlebox between the L2 and PHY (§6).
//
// Orion comes in two halves. The *PHY-side* Orion pairs with a PHY
// process over SHM and relays FAPI to/from the datacenter network using
// a lean stateless UDP-like transport (§6.1). The *L2-side* Orion pairs
// with the L2, and is where all the intelligence lives:
//
//  * Hot standby via null FAPI (§6.2): every real UL_TTI/DL_TTI the L2
//    emits is forwarded unmodified to the active PHY, while a *null*
//    request for the same slot keeps the standby PHY alive at
//    negligible compute cost. Standby responses are filtered out.
//  * Initialization interception (§6.3): CONFIG/START requests are
//    stored and replayed to both PHYs (and to any future replacement
//    standby).
//  * Migration: swapping which PHY receives real vs null FAPI at a slot
//    boundary B, plus a migrate_on_slot command to the fronthaul
//    middlebox so the RU's traffic moves at exactly the same boundary.
//  * Pipelined-slot draining (§7, Fig 7): indications from the old
//    primary for slots before B are still accepted and forwarded to the
//    L2 after migration, so in-flight uplink work is not wasted.
//  * Failover: a failure notification from the in-switch detector
//    triggers the same migration path with the standby as the target.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "core/fh_mbox.h"
#include "fapi/channel.h"
#include "fapi/fapi.h"
#include "net/nic.h"
#include "sim/simulator.h"

namespace slingshot {

// Forwarding-cost model for Orion's transport (DPDK busy-polling in the
// paper): a fixed per-message cost plus a per-byte copy/serialize cost
// and an exponential tail. Reproduces the Fig 12 latency-vs-load shape.
struct OrionCostModel {
  Nanos base = 3'000;            // 3 µs fixed
  double per_byte_ns = 0.08;     // ~12 GB/s copy + serialize
  Nanos tail_mean = 1'500;       // exponential jitter tail
  double tail_per_byte_ns = 0.04;

  [[nodiscard]] Nanos sample(std::size_t bytes, RngStream& rng) const {
    const double mean =
        double(tail_mean) + tail_per_byte_ns * double(bytes);
    return base + Nanos(per_byte_ns * double(bytes)) +
           Nanos(rng.exponential(mean));
  }
};

// ---------------------------------------------------------------------
// PHY-side Orion: SHM <-> network relay.
// ---------------------------------------------------------------------
class OrionPhySide final : public FapiSink {
 public:
  OrionPhySide(Simulator& sim, std::string name, Nic& nic,
               OrionCostModel costs = {});

  // SHM pipe toward the local PHY (requests travel through it).
  void connect_phy(ShmFapiPipe* to_phy) { to_phy_ = to_phy; }
  // Where PHY indications are sent on the network (the L2-side Orion).
  void set_l2_orion_mac(MacAddr mac) { l2_orion_mac_ = mac; }

  // §6.1 loss compensation: Orion's transport is stateless and
  // unacknowledged, so when a rare datacenter packet loss swallows a
  // slot's TTI requests, this side injects null requests for the slot —
  // keeping the FAPI every-slot contract intact so the PHY does not
  // crash. On by default.
  void enable_loss_compensation(bool enabled) { null_on_loss_ = enabled; }

  // Slot timing used by the loss-compensation watchdog; must match the
  // deployment's numerology.
  void set_slot_config(SlotConfig slots) { slots_ = slots; }

  // FapiSink: indications arriving from the local PHY over SHM.
  void on_fapi(FapiMessage&& msg) override;

  [[nodiscard]] MacAddr mac() const { return nic_.mac(); }
  [[nodiscard]] std::uint64_t relayed_to_phy() const { return to_phy_count_; }
  [[nodiscard]] std::uint64_t relayed_to_l2() const { return to_l2_count_; }
  // §6.1 loss-compensation nulls, split per request stream (a hole can
  // exist in the DL stream while the UL stream is intact, and vice
  // versa). nulls_injected() stays the aggregate of both.
  [[nodiscard]] std::uint64_t nulls_injected_dl() const {
    return nulls_injected_dl_;
  }
  [[nodiscard]] std::uint64_t nulls_injected_ul() const {
    return nulls_injected_ul_;
  }
  [[nodiscard]] std::uint64_t nulls_injected() const {
    return nulls_injected_dl_ + nulls_injected_ul_;
  }
  // Datagrams that failed try_parse_fapi (each also raised an
  // ERROR.indication toward the L2 and bumped the process-wide
  // fapi.parse_errors counter).
  [[nodiscard]] std::uint64_t parse_errors() const { return parse_errors_; }

 private:
  void handle_frame(Packet&& frame);
  void deliver_to_phy(FapiMessage&& msg);
  void on_slot_watchdog();

  Simulator& sim_;
  std::string name_;
  Nic& nic_;
  OrionCostModel costs_;
  RngStream jitter_rng_;
  ShmFapiPipe* to_phy_ = nullptr;
  MacAddr l2_orion_mac_;
  std::uint64_t to_phy_count_ = 0;
  std::uint64_t to_l2_count_ = 0;

  // Loss compensation (§6.1). DL and UL request streams are tracked
  // separately: a lost datagram carries exactly one message, so a hole
  // can exist in one stream while the other is intact.
  struct RuLossTrack {
    std::int64_t last_dl = -1;    // highest DL_TTI slot seen
    std::int64_t last_ul = -1;    // highest UL_TTI slot seen
    std::int64_t last_real = -1;  // wall slot a real request last arrived
  };
  bool null_on_loss_ = true;
  SlotConfig slots_{};
  EventHandle watchdog_;
  std::map<std::uint8_t, RuLossTrack> loss_tracks_;
  std::uint64_t nulls_injected_dl_ = 0;
  std::uint64_t nulls_injected_ul_ = 0;
  std::uint64_t parse_errors_ = 0;
};

// ---------------------------------------------------------------------
// L2-side Orion.
// ---------------------------------------------------------------------
// How the standby PHY is kept alive. kNullFapi is Slingshot's design
// (§6.2); kDuplicate is the strawman the paper rejects — it doubles the
// PHY compute bill (quantified in bench/abl_standby_modes).
enum class StandbyMode : std::uint8_t { kNullFapi, kDuplicate };

struct OrionL2Config {
  SlotConfig slots{};
  StandbyMode standby_mode = StandbyMode::kNullFapi;
  // Failover migration boundary margin: B = current_slot + margin.
  int failover_margin_slots = 2;
  // Fig 7 drain window: responses from the pre-migration primary are
  // accepted for this many slots after the swap, then the route state
  // expires (stale pipelines must not leak into later migrations).
  int drain_window_slots = 8;
  OrionCostModel costs{};
  MacAddr switch_cmd_mac = MacAddr::broadcast();  // migrate_on_slot dst
  // ABLATION: artificial delay before the migrate_on_slot command takes
  // effect — models the naive design where the RU-to-PHY remap is a
  // switch *control-plane* rule update (milliseconds, §5.1) instead of
  // a data-plane register write.
  Nanos cmd_extra_delay = 0;
};

struct MigrationEvent {
  enum class Kind { kPlanned, kFailover };
  Kind kind = Kind::kPlanned;
  RuId ru;
  PhyId from;
  PhyId to;
  std::int64_t boundary_slot = 0;
  Nanos initiated_at = 0;       // when Orion decided to migrate
  Nanos notification_at = 0;    // failure notification arrival (failover)
};

// Observation tap for the L2-side Orion (src/inject's InvariantChecker
// attaches here). Pure observer.
class OrionL2Tap {
 public:
  virtual ~OrionL2Tap() = default;
  // An indication from PHY `from` was forwarded to the L2 (or dropped).
  // `drained` means it was accepted from the pre-migration primary via
  // the Fig 7 drain path; `drain_boundary` is that path's slot bound.
  virtual void on_indication(PhyId /*from*/, const FapiMessage& /*msg*/,
                             bool /*forwarded*/, bool /*drained*/,
                             std::int64_t /*drain_boundary*/) {}
  // A migration (planned or failover) was initiated.
  virtual void on_migration(const MigrationEvent& /*event*/) {}
  // The request stream crossed the boundary; FAPI routing swapped.
  virtual void on_swap_finalized(RuId /*ru*/, std::int64_t /*slot*/,
                                 PhyId /*new_primary*/,
                                 std::int64_t /*boundary_slot*/) {}
  // A replacement standby was adopted (§6.3 init replay).
  virtual void on_adopt(RuId /*ru*/, PhyId /*phy*/) {}
  // A failed-over PHY proved itself alive (fresh indications after the
  // failure notification): the detection was a false positive and its
  // standby keepalive feed resumes.
  virtual void on_rehabilitate(RuId /*ru*/, PhyId /*phy*/) {}
};

struct OrionL2Stats {
  std::uint64_t real_requests_forwarded = 0;
  std::uint64_t null_requests_sent = 0;
  std::uint64_t responses_forwarded = 0;
  std::uint64_t standby_responses_dropped = 0;
  std::uint64_t drained_responses_accepted = 0;  // Fig 7 pipeline drain
  // Every kFailureNotify frame increments failure_notifications, and
  // exactly one of the three outcome counters below — so
  //   failure_notifications == failovers_initiated
  //                          + duplicate_notifications_ignored
  //                          + stale_notifications_ignored
  // holds at all times (asserted by bench/abl_fault_matrix). Before this
  // split, duplicate deliveries (the PR 1 idempotence path) inflated
  // failure_notifications with no way to tell real failovers apart.
  std::uint64_t failure_notifications = 0;
  std::uint64_t failovers_initiated = 0;
  // Re-delivered notification for an episode still pending or already
  // executed (boundary set, or the phy is a known-failed standby slot).
  std::uint64_t duplicate_notifications_ignored = 0;
  // Notification for a phy that is primary nowhere and part of no
  // episode (e.g. raced with a planned migration).
  std::uint64_t stale_notifications_ignored = 0;
  // Fig 7 drain windows that expired with route state still held.
  std::uint64_t drain_windows_expired = 0;
  std::uint64_t rehabilitations = 0;  // false-positive failovers rescinded
  std::uint64_t fapi_bytes_to_standby = 0;  // §8.5 network overhead
  // Datagrams from a PHY peer that failed try_parse_fapi (each also
  // raised an ERROR.indication toward the L2).
  std::uint64_t parse_errors = 0;
  // ---- Standby-pool (N+K) extensions. All zero when the pool is
  // unused, so the three-way identity above is unchanged for legacy
  // configs; with a pool the full identity is
  //   failure_notifications == failovers_initiated
  //                          + duplicate_notifications_ignored
  //                          + stale_notifications_ignored
  //                          + unprotected_notifications
  //                          + standby_failures.
  // Notification for a primary whose pool is exhausted: the cell enters
  // an explicit "unprotected" state (no stale swap) until a standby is
  // added back, which then executes the failover.
  std::uint64_t unprotected_notifications = 0;
  // Notification for a PHY that is a pool standby (primary nowhere):
  // the member is marked dead and the RUs it backed are re-pointed.
  std::uint64_t standby_failures = 0;
  // Secondary slots refilled from the pool (after a member was consumed
  // by a promotion or died).
  std::uint64_t standbys_reassigned = 0;
  // Failovers executed when a standby arrived for an already-dead,
  // unprotected primary (counted here, not in failovers_initiated, so
  // the notification identity stays an identity).
  std::uint64_t deferred_failovers_executed = 0;
};

class OrionL2Side final : public FapiSink {
 public:
  OrionL2Side(Simulator& sim, std::string name, Nic& nic,
              OrionL2Config config);

  // ---- Wiring ----
  // SHM pipe toward the local L2 (indications travel through it).
  void connect_l2(ShmFapiPipe* to_l2) { to_l2_ = to_l2; }
  // Register a PHY-side Orion peer.
  void add_phy_peer(PhyId phy, MacAddr orion_mac);
  // Configure which PHYs serve an RU (fixed primary/secondary pair).
  void set_ru_phys(RuId ru, PhyId primary, PhyId secondary);

  // ---- Shared standby pool (N primaries backed by K hot standbys) ----
  // The paper's deployment note: secondaries need no dedicated servers —
  // one hot standby can back several primaries. Registering an RU with
  // set_ru_primary (instead of set_ru_phys) draws its secondary from the
  // pool; pool members are shared across RUs until a failover *consumes*
  // one (promotes it to primary), at which point every other RU backed
  // by it is re-pointed at the next available member — or enters an
  // explicit "unprotected" state if the pool is exhausted. Never a
  // stale swap onto an already-consumed standby.
  void add_pool_standby(PhyId phy, MacAddr orion_mac);
  void set_ru_primary(RuId ru, PhyId primary);
  [[nodiscard]] bool pool_mode() const { return pool_mode_; }
  // Pool members currently available as failover targets.
  [[nodiscard]] std::size_t pool_available() const;

  // ---- FapiSink: requests arriving from the local L2 over SHM ----
  void on_fapi(FapiMessage&& msg) override;

  // ---- Migration control (§6.3) ----
  // Planned migration of `ru` to its standby at slot `boundary`.
  void migrate(RuId ru, std::int64_t boundary_slot);
  // Replay stored init messages to a (new) standby PHY peer — used to
  // bring up a replacement secondary after a failover consumed the old
  // one.
  void adopt_standby(RuId ru, PhyId phy, MacAddr orion_mac);
  // Adopt a revived PHY as standby for *every* RU it backed (secondary
  // or failed slot) — a PHY can be the standby of several RUs, and each
  // needs its own init replay. In pool mode this returns the PHY to the
  // pool, which also executes any deferred failovers for unprotected
  // cells whose primary already died.
  void adopt_standby_all(PhyId phy, MacAddr orion_mac);

  // Notification hook for experiments (called on failover initiation).
  void set_on_failover(std::function<void(const MigrationEvent&)> callback) {
    on_failover_ = std::move(callback);
  }

  // ---- Pool lifecycle observation ----
  // Fired synchronously inside the Orion event that changed the pool —
  // an external pool manager (the shard coordinator of
  // core/shard_coord.h) mirrors the island's inventory from these
  // without polling. Observers must not mutate the Orion re-entrantly.
  enum class PoolEvent : std::uint8_t {
    kConsumed,    // failover promoted the member to someone's primary
    kExhausted,   // a cell needed a member and none was available
    kMemberDead,  // the standby itself failed
    kRestored,    // a member (re)joined via add_pool_standby
  };
  using PoolObserver = std::function<void(PoolEvent, PhyId)>;
  void set_pool_observer(PoolObserver observer) {
    pool_observer_ = std::move(observer);
  }

  // Attach an observation tap (invariant checking); nullptr detaches.
  void set_tap(OrionL2Tap* tap) { tap_ = tap; }

  [[nodiscard]] PhyId active_phy(RuId ru) const;
  [[nodiscard]] PhyId standby_phy(RuId ru) const;
  [[nodiscard]] const OrionL2Stats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<MigrationEvent>& migration_log() const {
    return migration_log_;
  }
  [[nodiscard]] MacAddr mac() const { return nic_.mac(); }

 private:
  struct RuState {
    RuId ru;
    PhyId primary;
    PhyId secondary;
    // Pending migration: requests for slots >= boundary go to `target`.
    std::optional<std::int64_t> boundary;
    PhyId target;
    // Previous primary (accepts drained responses for slots < boundary
    // for a short window after migration). Expires drain_window_slots
    // after the swap.
    PhyId previous;
    std::int64_t previous_until_slot = -1;
    std::int64_t swap_wall_slot = -1;  // wall slot the swap finalized at
    // A failover consumed this PHY; it gets no FAPI (not even nulls)
    // until adopt_standby replaces or re-adopts it (§6.3).
    PhyId failed_phy;
    // Stored initialization messages for standby replay (§6.3).
    std::vector<FapiMessage> init_messages;
  };

  // Shared-pool member lifecycle: available → consumed (promoted to
  // primary by a failover) or dead (the standby itself failed). A
  // revived PHY re-enters as available via add_pool_standby.
  enum class PoolState : std::uint8_t { kAvailable, kConsumed, kDead };
  struct PoolMember {
    PhyId id;
    PoolState state = PoolState::kAvailable;
  };

  void handle_frame(Packet&& frame);
  void handle_failure_notification(PhyId failed);
  void handle_phy_indication(PhyId from, FapiMessage&& msg);
  void send_to_phy(PhyId phy, const FapiMessage& msg);
  void send_migrate_cmd(RuId ru, PhyId dest, std::int64_t boundary_slot);
  void send_unwatch_cmd(PhyId phy);
  void send_watch_cmd(PhyId phy);
  // Resolve who is real/standby for a request targeting `slot`,
  // finalizing the swap once the boundary has passed.
  [[nodiscard]] std::pair<PhyId, PhyId> route_for_slot(RuState& state,
                                                       std::int64_t slot);
  // Pool helpers (no-ops outside pool mode).
  [[nodiscard]] PhyId next_pool_standby() const;
  void assign_standby(RuState& state, PhyId phy);
  void consume_pool_member(PhyId phy);
  void initiate_failover(RuState& state, Nanos notified_at, bool deferred);

  Simulator& sim_;
  std::string name_;
  Nic& nic_;
  OrionL2Config config_;
  RngStream jitter_rng_;
  ShmFapiPipe* to_l2_ = nullptr;
  std::map<std::uint8_t, MacAddr> phy_peers_;
  std::map<std::uint8_t, RuState> rus_;
  void notify_pool(PoolEvent event, PhyId phy) {
    if (pool_observer_) {
      pool_observer_(event, phy);
    }
  }

  bool pool_mode_ = false;
  std::vector<PoolMember> pool_;
  PoolObserver pool_observer_;
  std::function<void(const MigrationEvent&)> on_failover_;
  OrionL2Tap* tap_ = nullptr;
  OrionL2Stats stats_;
  std::vector<MigrationEvent> migration_log_;
};

}  // namespace slingshot
