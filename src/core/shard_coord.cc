#include "core/shard_coord.h"

#include "common/log.h"

namespace slingshot {

void ShardCoordinator::on_control(const ControlMsg& msg) {
  ledger_.push_back(Episode{msg.src_island, msg.kind, msg.a, msg.time});
  switch (ShardCtrlKind(msg.kind)) {
    case ShardCtrlKind::kFailureEpisode:
      ++stats_.episodes;
      break;
    case ShardCtrlKind::kPoolConsumed: {
      ++stats_.consumed;
      // Replenish: spend a global spare so the island can bring a
      // replacement member up. The grant lands one boot delay after the
      // island's own report time — never before the current barrier
      // (post_event_from_control clamps to the window end).
      if (spares_ > 0 && grant_) {
        --spares_;
        ++stats_.grants_issued;
        SLOG_INFO("shard_coord",
                  "island %d consumed phy %llu: granting spare (%d left)",
                  msg.src_island, (unsigned long long)msg.a, spares_);
        grant_(msg.src_island, msg.time + config_.boot_delay);
      } else {
        ++stats_.grants_declined;
        SLOG_WARN("shard_coord",
                  "island %d consumed phy %llu: no spare to grant",
                  msg.src_island, (unsigned long long)msg.a);
      }
      break;
    }
    case ShardCtrlKind::kPoolExhausted:
      ++stats_.exhausted;
      break;
    case ShardCtrlKind::kMemberDead:
      ++stats_.member_deaths;
      break;
    case ShardCtrlKind::kMemberRestored:
      ++stats_.restored;
      break;
  }
}

}  // namespace slingshot
