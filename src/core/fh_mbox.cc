#include "core/fh_mbox.h"

#include <algorithm>

#include "common/bits.h"
#include "common/log.h"
#include "net/frer.h"
#include "obs/obs.h"

namespace slingshot {

std::vector<std::uint8_t> serialize_migrate_cmd(const MigrateOnSlotCmd& cmd) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(kCmdOpMigrateOnSlot);
  w.u8(cmd.ru.value());
  w.u8(cmd.dest_phy.value());
  w.u16(cmd.slot.frame);
  w.u8(cmd.slot.subframe);
  w.u8(cmd.slot.slot);
  return out;
}

MigrateOnSlotCmd parse_migrate_cmd(std::span<const std::uint8_t> bytes) {
  ByteReader r{bytes};
  if (r.u8() != kCmdOpMigrateOnSlot) {
    throw std::runtime_error("not a migrate_on_slot command");
  }
  MigrateOnSlotCmd cmd;
  cmd.ru = RuId{r.u8()};
  cmd.dest_phy = PhyId{r.u8()};
  cmd.slot.frame = r.u16();
  cmd.slot.subframe = r.u8();
  cmd.slot.slot = r.u8();
  return cmd;
}

std::vector<std::uint8_t> serialize_unwatch_cmd(const UnwatchPhyCmd& cmd) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(kCmdOpUnwatchPhy);
  w.u8(cmd.phy.value());
  return out;
}

std::vector<std::uint8_t> serialize_watch_cmd(const WatchPhyCmd& cmd) {
  std::vector<std::uint8_t> out;
  ByteWriter w{out};
  w.u8(kCmdOpWatchPhy);
  w.u8(cmd.phy.value());
  return out;
}

SwitchResourceEstimate estimate_switch_resources(int num_rus, int num_phys) {
  // Calibrated to the paper's §8.6 measurement at 256 RUs + 256 PHYs:
  // crossbar 5.2%, ALU 10.4%, gateway 14.1%, SRAM 5.3%, hash 9.5%.
  // Logic resources (crossbar/ALU/gateway/hash) are dominated by the
  // fixed program structure; "supporting more RUs/PHYs increases only
  // SRAM usage" — SRAM scales with table/register entries.
  SwitchResourceEstimate est;
  est.crossbar_pct = 5.2;
  est.alu_pct = 10.4;
  est.gateway_pct = 14.1;
  est.hash_bits_pct = 9.5;
  const double entries = double(num_rus) * 2.0 + double(num_phys) * 2.0 +
                         double(num_rus) + double(num_phys);  // tables + regs
  const double calib_entries = 256.0 * 2 + 256.0 * 2 + 256.0 + 256.0;
  est.sram_pct = 1.0 + 4.3 * entries / calib_entries;  // 5.3% at calibration
  return est;
}

FronthaulMiddlebox::FronthaulMiddlebox(Simulator& sim, FhMboxConfig config)
    : sim_(sim),
      config_(config),
      slots_(config.slots),
      wrap_window_(std::int64_t(SlotPoint::kFrames) *
                   config.slots.slots_per_frame),
      ru_id_directory_(sim, sim.rng().stream("mbox.cp", 0)),
      phy_id_directory_(sim, sim.rng().stream("mbox.cp", 1)),
      phy_addr_directory_(sim, sim.rng().stream("mbox.cp", 2)),
      ru_addr_directory_(sim, sim.rng().stream("mbox.cp", 3)),
      ru_to_phy_(std::size_t(config.max_ids), 0),
      migration_store_(std::size_t(config.max_ids)),
      failure_counters_(std::size_t(config.max_ids), 0),
      watches_(std::size_t(config.max_ids)) {}

void FronthaulMiddlebox::register_ru(RuId id, MacAddr mac) {
  ru_id_directory_.bootstrap_insert(mac, id.value());
  ru_addr_directory_.bootstrap_insert(id.value(), mac);
}

void FronthaulMiddlebox::register_phy(PhyId id, MacAddr mac) {
  phy_id_directory_.bootstrap_insert(mac, id.value());
  phy_addr_directory_.bootstrap_insert(id.value(), mac);
}

void FronthaulMiddlebox::bind_ru_to_phy(RuId ru, PhyId phy) {
  if (ru.value() >= std::size_t(config_.max_ids)) {
    ++stats_.unknown_dropped;
    return;
  }
  ru_to_phy_.write(ru.value(), phy.value());
}

void FronthaulMiddlebox::watch_phy(PhyId phy, MacAddr orion_mac) {
  if (phy.value() >= watches_.size()) {
    ++stats_.unknown_dropped;
    return;
  }
  watches_[phy.value()] = WatchEntry{/*armed=*/true, orion_mac};
  failure_counters_.write(phy.value(), 0);
  if (std::find(tracked_phys_.begin(), tracked_phys_.end(), phy.value()) ==
      tracked_phys_.end()) {
    tracked_phys_.push_back(phy.value());
  }
  if (tap_ != nullptr) {
    tap_->on_watch_changed(phy, true);
  }
}

void FronthaulMiddlebox::unwatch_phy(PhyId phy) {
  if (phy.value() >= watches_.size()) {
    return;
  }
  watches_[phy.value()].armed = false;
  std::erase(tracked_phys_, phy.value());
  if (tap_ != nullptr) {
    tap_->on_watch_changed(phy, false);
  }
}

bool FronthaulMiddlebox::slot_reached(std::int64_t pkt_wrapped,
                                      std::int64_t boundary_wrapped) const {
  const std::int64_t diff =
      ((pkt_wrapped - boundary_wrapped) % wrap_window_ + wrap_window_) %
      wrap_window_;
  return diff < wrap_window_ / 2;
}

void FronthaulMiddlebox::maybe_execute_migration(RuId ru,
                                                 std::int64_t pkt_wrapped) {
  const auto& entry = migration_store_.read(ru.value());
  if (entry.valid && slot_reached(pkt_wrapped, entry.wrapped_slot)) {
    ru_to_phy_.write(ru.value(), entry.dest_phy);
    auto cleared = entry;
    cleared.valid = false;
    migration_store_.write(ru.value(), cleared);
    ++stats_.migrations_executed;
    SLS_TRACE_EVENT(sim_, obs::ObsEvent::kMigrationExecuted, entry.dest_phy,
                    pkt_wrapped);
    SLOG_INFO("fh_mbox", "migration executed: ru=%u -> phy=%u at slot %lld",
              ru.value(), entry.dest_phy,
              static_cast<long long>(pkt_wrapped));
    if (tap_ != nullptr) {
      tap_->on_migration_executed(ru, PhyId{entry.dest_phy}, pkt_wrapped,
                                  entry.wrapped_slot);
    }
  }
}

PipelineVerdict FronthaulMiddlebox::process(Packet& packet, int /*port*/,
                                            PipelineContext& ctx) {
  // FRER transparency: an R-TAG frame (802.1CB) is classified by its
  // encapsulated EtherType and its fronthaul header sits past the tag.
  // The tag itself is carried through untouched — sequence recovery
  // belongs to the elimination point in front of the listener, not the
  // middlebox.
  EtherType type = packet.eth.ethertype;
  std::span<const std::uint8_t> fh_bytes{packet.payload};
  if (type == EtherType::kRTag) {
    const auto tag = rtag_peek(packet);
    if (!tag.has_value()) {
      ++stats_.unknown_dropped;
      return PipelineVerdict::kHandled;
    }
    type = tag->inner;
    fh_bytes = fh_bytes.subspan(kRtagWireSize);
  }
  switch (type) {
    case EtherType::kSlingshotCmd: {
      // Orion -> middlebox commands: absorbed in the data plane.
      if (packet.payload.empty()) {
        ++stats_.unknown_dropped;
        return PipelineVerdict::kHandled;
      }
      switch (packet.payload[0]) {
        case kCmdOpMigrateOnSlot: {
          if (packet.payload.size() < 7) {
            ++stats_.unknown_dropped;
            return PipelineVerdict::kHandled;
          }
          const auto cmd = parse_migrate_cmd(packet.payload);
          MigrationEntry entry;
          entry.valid = true;
          entry.dest_phy = cmd.dest_phy.value();
          entry.wrapped_slot = cmd.slot.wrapped_index(slots_);
          migration_store_.write(cmd.ru.value(), entry);
          ++stats_.commands_received;
          SLS_TRACE_EVENT(sim_, obs::ObsEvent::kMigrateCmdAbsorbed,
                          entry.dest_phy, entry.wrapped_slot);
          if (tap_ != nullptr) {
            tap_->on_command(cmd, entry.wrapped_slot);
          }
          return PipelineVerdict::kHandled;
        }
        case kCmdOpUnwatchPhy: {
          if (packet.payload.size() < 2) {
            ++stats_.unknown_dropped;
            return PipelineVerdict::kHandled;
          }
          const PhyId phy{packet.payload[1]};
          unwatch_phy(phy);
          ++stats_.commands_received;
          if (tap_ != nullptr) {
            tap_->on_unwatch_command(phy);
          }
          return PipelineVerdict::kHandled;
        }
        case kCmdOpWatchPhy: {
          if (packet.payload.size() < 2) {
            ++stats_.unknown_dropped;
            return PipelineVerdict::kHandled;
          }
          // Notifications go back to whoever sent the command.
          watch_phy(PhyId{packet.payload[1]}, packet.eth.src);
          ++stats_.commands_received;
          return PipelineVerdict::kHandled;
        }
        default:
          ++stats_.unknown_dropped;
          return PipelineVerdict::kHandled;
      }
    }
    case EtherType::kEcpri:
      break;  // fronthaul handling below
    default:
      return PipelineVerdict::kDefaultForward;  // FAPI/user-plane traffic
  }

  const auto header = peek_fronthaul_header(fh_bytes);
  if (!header.has_value()) {
    ++stats_.unknown_dropped;
    return PipelineVerdict::kHandled;
  }
  const std::int64_t pkt_wrapped = header->slot.wrapped_index(slots_);

  if (header->direction == FhDirection::kUplink) {
    // RU -> virtual PHY address: resolve RU, run migration trigger,
    // translate to the active PHY's MAC.
    const auto* ru_id = ru_id_directory_.lookup(packet.eth.src);
    if (ru_id == nullptr) {
      ++stats_.unknown_dropped;
      return PipelineVerdict::kHandled;
    }
    const RuId ru{*ru_id};
    maybe_execute_migration(ru, pkt_wrapped);
    const auto phy = ru_to_phy_.read(ru.value());
    const auto* phy_mac = phy_addr_directory_.lookup(phy);
    if (phy_mac == nullptr) {
      ++stats_.unknown_dropped;
      return PipelineVerdict::kHandled;
    }
    packet.eth.dst = *phy_mac;
    ++stats_.ul_forwarded;
    ctx.emit_to_mac(*phy_mac, std::move(packet));
    return PipelineVerdict::kHandled;
  }

  // Downlink: PHY -> RU.
  const auto* src_phy = phy_id_directory_.lookup(packet.eth.src);
  if (src_phy == nullptr || *src_phy >= watches_.size()) {
    ++stats_.unknown_dropped;
    return PipelineVerdict::kHandled;
  }
  // Natural heartbeat: any DL fronthaul packet proves the PHY alive.
  // Re-arm only for PHYs still in the tracked set — a stray packet from
  // an unwatched (or failover-consumed and since unwatched) PHY must
  // not resurrect its detector and fire duplicate notifications.
  failure_counters_.write(*src_phy, 0);
  watches_[*src_phy].armed =
      watches_[*src_phy].notify_mac.bits() != 0 &&
      std::find(tracked_phys_.begin(), tracked_phys_.end(), *src_phy) !=
          tracked_phys_.end();

  const RuId ru = header->ru;
  maybe_execute_migration(ru, pkt_wrapped);
  if (dl_filter_ && ru_to_phy_.read(ru.value()) != *src_phy) {
    // Not the active PHY for this RU: block (standby heartbeats, or a
    // stale primary after migration).
    ++stats_.dl_blocked;
    if (tap_ != nullptr) {
      tap_->on_dl_packet(PhyId{*src_phy}, ru, pkt_wrapped, false);
    }
    return PipelineVerdict::kHandled;
  }
  const auto* ru_mac = ru_addr_directory_.lookup(ru.value());
  if (ru_mac == nullptr) {
    ++stats_.unknown_dropped;
    return PipelineVerdict::kHandled;
  }
  packet.eth.dst = *ru_mac;
  ++stats_.dl_forwarded;
  if (tap_ != nullptr) {
    tap_->on_dl_packet(PhyId{*src_phy}, ru, pkt_wrapped, true);
  }
  ctx.emit_to_mac(*ru_mac, std::move(packet));
  return PipelineVerdict::kHandled;
}

void FronthaulMiddlebox::on_generator_packet(Packet& /*packet*/,
                                             PipelineContext& ctx) {
  // Each generator tick increments every tracked PHY's counter; a
  // saturated counter (n ticks without a downlink packet) means the
  // timeout T elapsed with no heartbeat -> the PHY failed.
  for (const auto phy : tracked_phys_) {
    auto& watch = watches_[phy];
    if (!watch.armed) {
      continue;
    }
    SLS_TRACE_DETECTOR_TICK(sim_);
    const auto count = failure_counters_.read(phy);
    if (count + 1 >= config_.detector_ticks) {
      watch.armed = false;  // one notification per failure episode
      failure_counters_.write(phy, 0);
      ++stats_.failures_detected;
      SLS_TRACE_EVENT(sim_, obs::ObsEvent::kDetectorFire, phy,
                      slots_.slot_at(sim_.now()));
      SLOG_WARN("fh_mbox", "PHY %u failure detected (timeout)", unsigned(phy));
      if (tap_ != nullptr) {
        tap_->on_failure_notify(PhyId{phy});
      }
      // Re-format the timer packet into a failure notification.
      Packet notify;
      notify.eth.dst = watch.notify_mac;
      notify.eth.ethertype = EtherType::kFailureNotify;
      notify.payload = {phy};
      ctx.emit_to_mac(watch.notify_mac, std::move(notify));
    } else {
      failure_counters_.write(phy, std::uint16_t(count + 1));
    }
  }
}

}  // namespace slingshot
