#include "core/real_orion.h"

#include "common/log.h"

namespace slingshot {

const char* episode_event_name(EpisodeEventKind kind) {
  switch (kind) {
    case EpisodeEventKind::kDetected:
      return "detected";
    case EpisodeEventKind::kFailoverInitiated:
      return "failover_initiated";
    case EpisodeEventKind::kSwapFinalized:
      return "swap_finalized";
    case EpisodeEventKind::kStandbyAdopted:
      return "standby_adopted";
  }
  return "?";
}

RealOrionRelay::RealOrionRelay(RealOrionConfig config, UdpEndpoint* endpoint,
                               ShmRing l2_to_orion, ShmRing orion_to_l2,
                               std::vector<ShmRing> orion_to_phy,
                               std::vector<ShmRing> phy_to_orion)
    : config_(std::move(config)),
      endpoint_(endpoint),
      l2_to_orion_(l2_to_orion),
      orion_to_l2_(orion_to_l2),
      orion_to_phy_(std::move(orion_to_phy)),
      phy_to_orion_(std::move(phy_to_orion)) {}

std::int64_t RealOrionRelay::wall_slot() const {
  const auto& p = config_.pacer;
  if (p.tti_ns <= 0) {
    return 0;
  }
  return (WallclockPacer::now_ns() - p.epoch_ns) / p.tti_ns;
}

std::size_t RealOrionRelay::phy_index_for_port(std::uint16_t port) const {
  for (std::size_t i = 0; i < config_.phy_ports.size(); ++i) {
    if (config_.phy_ports[i] == port) {
      return i;
    }
  }
  return config_.phy_ports.size();
}

void RealOrionRelay::send_fapi(std::uint16_t port, const FapiMessage& msg) {
  serialize_fapi_into(msg, wire_scratch_);
  endpoint_->send_to(port, wire_scratch_);
}

void RealOrionRelay::record(EpisodeEventKind kind, PhyId phy) {
  ledger_.push_back(EpisodeEvent{kind, config_.ru, phy, wall_slot(),
                                 WallclockPacer::now_ns()});
}

void RealOrionRelay::poll_once(int timeout_ms) {
  std::uint16_t from_port = 0;
  const int n = endpoint_->recv(rx_scratch_, timeout_ms, &from_port);
  if (n > 0) {
    handle_datagram(from_port, rx_scratch_);
  }
  drain_rings();
  check_detector();
}

void RealOrionRelay::handle_datagram(std::uint16_t from_port,
                                     std::span<const std::uint8_t> bytes) {
  FapiMessage msg;
  const char* err = nullptr;
  if (!try_parse_fapi(bytes, msg, &err)) {
    ++stats_.parse_errors;
    SLOG_WARN("real-orion", "dropping corrupt datagram from port %u (%s)",
              unsigned(from_port), err == nullptr ? "?" : err);
    // Same contract as the simulated Orion: the L2 hears about
    // unparseable bytes instead of observing a silent gap.
    send_fapi(config_.l2_port,
              FapiMessage{config_.ru, 0,
                          ErrorIndication{kFapiMsgCorrupt,
                                          FapiMsgType::kErrorIndication}});
    return;
  }
  if (from_port == config_.l2_port) {
    handle_l2_request(std::move(msg));
    return;
  }
  const std::size_t phy = phy_index_for_port(from_port);
  if (phy < config_.phy_ports.size()) {
    handle_phy_indication(phy, std::move(msg));
  }
  // Unknown senders are dropped: the transport is closed-world.
}

void RealOrionRelay::handle_l2_request(FapiMessage&& msg) {
  const std::uint16_t active_port = config_.phy_ports[config_.active];
  const std::uint16_t standby_port = config_.phy_ports[config_.standby];
  switch (msg.type()) {
    case FapiMsgType::kDlTtiRequest: {
      send_fapi(active_port, msg);
      ++stats_.requests_forwarded;
      if (!failed_over_) {
        send_fapi(standby_port, make_null_dl_tti(msg.ru, msg.slot));
        ++stats_.nulls_sent;
      }
      break;
    }
    case FapiMsgType::kUlTtiRequest: {
      send_fapi(active_port, msg);
      ++stats_.requests_forwarded;
      if (!failed_over_) {
        send_fapi(standby_port, make_null_ul_tti(msg.ru, msg.slot));
        ++stats_.nulls_sent;
      }
      break;
    }
    case FapiMsgType::kConfigRequest:
    case FapiMsgType::kStartRequest:
    case FapiMsgType::kStopRequest: {
      // Lifecycle fans out to both PHYs — the standby stays initialized
      // without an explicit replay in this fixed-pair mode (§6.3).
      send_fapi(active_port, msg);
      if (!failed_over_) {
        send_fapi(standby_port, msg);
      }
      ++stats_.requests_forwarded;
      break;
    }
    default: {
      send_fapi(active_port, msg);
      ++stats_.requests_forwarded;
      break;
    }
  }
}

void RealOrionRelay::handle_phy_indication(std::size_t phy_index,
                                           FapiMessage&& msg) {
  if (phy_index == config_.active) {
    active_heard_ = true;
    last_active_heard_ns_ = WallclockPacer::now_ns();
    send_fapi(config_.l2_port, msg);
    ++stats_.indications_forwarded;
    return;
  }
  // Standby chatter (slot indications for its null feed) never reaches
  // the L2 — it must see exactly one PHY (§6.2).
  ++stats_.standby_filtered;
}

void RealOrionRelay::drain_rings() {
  // L2 -> active PHY: TX_DATA payload records move ring-to-ring without
  // a parse — Orion treats SHM payloads as opaque, as the paper's
  // middlebox never touches IQ bytes.
  std::vector<std::uint8_t> record;
  while (l2_to_orion_.pop(record)) {
    orion_to_phy_[config_.active].push(record);
    ++stats_.ring_records_relayed;
  }
  for (std::size_t i = 0; i < phy_to_orion_.size(); ++i) {
    while (phy_to_orion_[i].pop(record)) {
      if (i == config_.active) {
        active_heard_ = true;
        last_active_heard_ns_ = WallclockPacer::now_ns();
        orion_to_l2_.push(record);
        ++stats_.ring_records_relayed;
      } else {
        ++stats_.standby_filtered;
      }
    }
  }
}

void RealOrionRelay::check_detector() {
  if (failed_over_ || !active_heard_) {
    return;
  }
  // Lifecycle chatter during the pre-epoch launch lead must not arm the
  // countdown: everyone is deliberately idle until slot 0, and that
  // idle stretch dwarfs any sane detect timeout. The detector runs only
  // once the active PHY has spoken inside the paced window.
  if (last_active_heard_ns_ < config_.pacer.epoch_ns) {
    return;
  }
  const std::int64_t now = WallclockPacer::now_ns();
  if (now > config_.detect_deadline_ns) {
    return;
  }
  const std::int64_t silent_ns = now - last_active_heard_ns_;
  if (silent_ns < config_.detect_timeout_ns) {
    return;
  }
  // Real socket silence exceeded the budget: the wall-clock analogue of
  // the paper's in-switch detection (§5).
  const PhyId dead = active_phy();
  record(EpisodeEventKind::kDetected, dead);
  record(EpisodeEventKind::kFailoverInitiated, dead);
  std::swap(config_.active, config_.standby);
  failed_over_ = true;
  active_heard_ = false;  // re-arm on the new primary's first word
  record(EpisodeEventKind::kSwapFinalized, active_phy());
  SLOG_WARN("real-orion",
            "failover ru=%u dead_phy=%u new_phy=%u after %ld ns of silence",
            unsigned(config_.ru.value()), unsigned(dead.value()),
            unsigned(active_phy().value()), long(silent_ns));
}

}  // namespace slingshot
