#include "core/orion.h"

#include <algorithm>

#include "common/log.h"
#include "common/pool.h"
#include "obs/obs.h"

namespace slingshot {

namespace {
// An indication older than this many slots is not proof of life: it may
// be a delayed datagram sent before the PHY actually died.
constexpr std::int64_t kRehabFreshnessSlots = 8;
}  // namespace

// ---------------------------------------------------------------------
// OrionPhySide
// ---------------------------------------------------------------------

OrionPhySide::OrionPhySide(Simulator& sim, std::string name, Nic& nic,
                           OrionCostModel costs)
    : sim_(sim),
      name_(std::move(name)),
      nic_(nic),
      costs_(costs),
      jitter_rng_(sim.rng().stream("orion.phy." + name_)) {
  nic_.set_rx_handler([this](Packet&& f) { handle_frame(std::move(f)); });
}

void OrionPhySide::handle_frame(Packet&& frame) {
  if (frame.eth.ethertype != EtherType::kFapiTransport || to_phy_ == nullptr) {
    return;
  }
  // Network -> SHM relay toward the local PHY, with forwarding cost.
  const auto delay = costs_.sample(frame.payload.size(), jitter_rng_);
  sim_.after(delay, [this, payload = std::move(frame.payload)]() mutable {
    if (to_phy_ == nullptr) {
      return;
    }
    FapiMessage msg;
    const char* error = nullptr;
    if (try_parse_fapi(payload, msg, &error)) {
      deliver_to_phy(std::move(msg));
    } else {
      // Corrupt datagram: surface it as an ERROR.indication toward the
      // L2 (the request itself is unrecoverable; the loss watchdog
      // plugs the slot hole with nulls so the PHY contract holds).
      ++parse_errors_;
      SLOG_WARN("orion", "%s dropped unparseable FAPI datagram: %s",
                name_.c_str(), error);
      on_fapi(FapiMessage{RuId{}, 0,
                          ErrorIndication{kFapiMsgCorrupt,
                                          FapiMsgType::kErrorIndication}});
    }
    BufferPools::instance().bytes.release(std::move(payload));
  });
}

void OrionPhySide::deliver_to_phy(FapiMessage&& msg) {
  // Track the request stream per RU for §6.1 loss compensation, and arm
  // the per-slot watchdog once real traffic starts.
  const auto type = msg.type();
  if (type == FapiMsgType::kDlTtiRequest ||
      type == FapiMsgType::kUlTtiRequest) {
    const bool is_dl = type == FapiMsgType::kDlTtiRequest;
    auto& track = loss_tracks_[msg.ru.value()];
    std::int64_t& last = is_dl ? track.last_dl : track.last_ul;
    // A request that leapfrogs the expected slot reveals a hole right
    // away (the lost datagram carried the slots in between): plug it
    // now rather than waiting for the watchdog. Only this stream's
    // holes — the other type may have arrived fine.
    if (null_on_loss_ && last >= 0 && msg.slot > last + 1) {
      int plugged = 0;
      for (std::int64_t s = last + 1; s < msg.slot && plugged < 8;
           ++s, ++plugged) {
        ++(is_dl ? nulls_injected_dl_ : nulls_injected_ul_);
        ++to_phy_count_;
        to_phy_->send(is_dl ? make_null_dl_tti(msg.ru, s)
                            : make_null_ul_tti(msg.ru, s));
      }
    }
    last = std::max(last, msg.slot);
    track.last_real = std::max(track.last_real, slots_.slot_at(sim_.now()));
    if (null_on_loss_ && !watchdog_.valid()) {
      const Nanos first =
          slots_.slot_start(slots_.next_slot_after(sim_.now()));
      watchdog_ = sim_.every(first, slots_.slot_duration,
                             [this] { on_slot_watchdog(); });
    }
  }
  ++to_phy_count_;
  to_phy_->send(std::move(msg));
}

void OrionPhySide::on_slot_watchdog() {
  if (!null_on_loss_ || to_phy_ == nullptr) {
    return;
  }
  // At the start of slot s, requests for s (sent by the L2 a couple of
  // slots ago) must already have arrived. If the stream has a hole —
  // a lost datagram — plug it with null requests so the PHY keeps its
  // every-slot contract.
  const auto current = slots_.slot_at(sim_.now());
  for (auto& [ru, track] : loss_tracks_) {
    // Plug at most a handful of consecutive slots, and only while real
    // requests keep arriving: this compensates for rare datagram loss,
    // not for a dead L2 (whose failure is detected by its own missing
    // per-TTI packet stream and handled elsewhere).
    if (current - track.last_real > 16) {
      continue;
    }
    const auto plug = [&](std::int64_t& last, bool dl) {
      if (last < 0) {
        return;
      }
      int plugged = 0;
      while (last < current && plugged < 8) {
        ++last;
        ++plugged;
        ++(dl ? nulls_injected_dl_ : nulls_injected_ul_);
        ++to_phy_count_;
        to_phy_->send(dl ? make_null_dl_tti(RuId{ru}, last)
                         : make_null_ul_tti(RuId{ru}, last));
      }
    };
    plug(track.last_dl, true);
    plug(track.last_ul, false);
  }
}

void OrionPhySide::on_fapi(FapiMessage&& msg) {
  // SHM -> network relay of PHY indications toward the L2-side Orion.
  if (l2_orion_mac_.bits() == 0) {
    return;
  }
  auto payload = BufferPools::instance().bytes.acquire();
  serialize_fapi_into(msg, payload);
  const auto delay = costs_.sample(payload.size(), jitter_rng_);
  sim_.after(delay, [this, p = std::move(payload)]() mutable {
    Packet frame;
    frame.eth.dst = l2_orion_mac_;
    frame.eth.ethertype = EtherType::kFapiTransport;
    frame.payload = std::move(p);
    ++to_l2_count_;
    nic_.send(std::move(frame));
  });
}

// ---------------------------------------------------------------------
// OrionL2Side
// ---------------------------------------------------------------------

OrionL2Side::OrionL2Side(Simulator& sim, std::string name, Nic& nic,
                         OrionL2Config config)
    : sim_(sim),
      name_(std::move(name)),
      nic_(nic),
      config_(config),
      jitter_rng_(sim.rng().stream("orion.l2." + name_)) {
  nic_.set_rx_handler([this](Packet&& f) { handle_frame(std::move(f)); });
}

void OrionL2Side::add_phy_peer(PhyId phy, MacAddr orion_mac) {
  phy_peers_[phy.value()] = orion_mac;
}

void OrionL2Side::set_ru_phys(RuId ru, PhyId primary, PhyId secondary) {
  auto& state = rus_[ru.value()];
  state.ru = ru;
  state.primary = primary;
  state.secondary = secondary;
  state.previous_until_slot = -1;
}

void OrionL2Side::set_ru_primary(RuId ru, PhyId primary) {
  pool_mode_ = true;
  auto& state = rus_[ru.value()];
  state.ru = ru;
  state.primary = primary;
  state.secondary = PhyId{};
  state.previous_until_slot = -1;
  const PhyId next = next_pool_standby();
  if (next != PhyId{}) {
    assign_standby(state, next);
  }
}

void OrionL2Side::add_pool_standby(PhyId phy, MacAddr orion_mac) {
  pool_mode_ = true;
  add_phy_peer(phy, orion_mac);
  bool known = false;
  for (auto& m : pool_) {
    if (m.id == phy) {
      m.state = PoolState::kAvailable;  // revived member rejoins the pool
      known = true;
    }
  }
  if (!known) {
    pool_.push_back(PoolMember{phy, PoolState::kAvailable});
  }
  notify_pool(PoolEvent::kRestored, phy);
  // Deferred failovers first: an unprotected cell whose primary already
  // died has been waiting for exactly this — give it a member and
  // migrate now. Counted separately from notification-driven failovers
  // so the notification identity stays an identity.
  for (auto& [ru_value, state] : rus_) {
    (void)ru_value;
    if (state.secondary != PhyId{} || state.boundary.has_value()) {
      continue;
    }
    if (state.failed_phy == PhyId{} || state.failed_phy != state.primary) {
      continue;
    }
    const PhyId next = next_pool_standby();
    if (next == PhyId{}) {
      break;
    }
    assign_standby(state, next);
    ++stats_.deferred_failovers_executed;
    initiate_failover(state, sim_.now(), /*deferred=*/true);
    consume_pool_member(next);
  }
  // Then refill empty secondary slots of cells whose primary is alive.
  for (auto& [ru_value, state] : rus_) {
    (void)ru_value;
    if (state.secondary != PhyId{} || state.boundary.has_value()) {
      continue;
    }
    if (state.failed_phy != PhyId{} && state.failed_phy == state.primary) {
      continue;  // dead primary and pool already exhausted above
    }
    const PhyId next = next_pool_standby();
    if (next == PhyId{}) {
      break;
    }
    assign_standby(state, next);
    ++stats_.standbys_reassigned;
  }
}

std::size_t OrionL2Side::pool_available() const {
  std::size_t n = 0;
  for (const auto& m : pool_) {
    n += m.state == PoolState::kAvailable ? 1 : 0;
  }
  return n;
}

PhyId OrionL2Side::next_pool_standby() const {
  for (const auto& m : pool_) {
    if (m.state != PoolState::kAvailable) {
      continue;
    }
    // A member that is (or is becoming) a primary is not a standby,
    // whatever its recorded state.
    bool is_primary = false;
    for (const auto& [ru_value, state] : rus_) {
      (void)ru_value;
      if (state.primary == m.id) {
        is_primary = true;
        break;
      }
    }
    if (!is_primary) {
      return m.id;
    }
  }
  return PhyId{};
}

void OrionL2Side::assign_standby(RuState& state, PhyId phy) {
  state.secondary = phy;
  // The member may never have seen this RU's init sequence (§6.3) — a
  // shared standby must hold PHY state for every cell it backs.
  for (const auto& msg : state.init_messages) {
    send_to_phy(phy, msg);
  }
  if (sim_.now() > 0) {
    // A runtime assignment may hand us a cold member whose first
    // heartbeat is an init replay + one TTI away — longer than the
    // detector timeout. Arm its watch after the same grace period the
    // testbed uses at boot, once its null-FAPI heartbeats flow.
    sim_.after(5'000'000, [this, phy] { send_watch_cmd(phy); });
  }
  if (tap_ != nullptr) {
    tap_->on_adopt(state.ru, phy);
  }
  SLS_TRACE_EVENT(sim_, obs::ObsEvent::kAdoptStandby, phy.value(),
                  config_.slots.slot_at(sim_.now()));
}

void OrionL2Side::consume_pool_member(PhyId phy) {
  if (!pool_mode_) {
    return;
  }
  for (auto& m : pool_) {
    if (m.id == phy && m.state == PoolState::kAvailable) {
      m.state = PoolState::kConsumed;
      notify_pool(PoolEvent::kConsumed, phy);
    }
  }
  // Re-point every other RU backed by this member: it is now (becoming)
  // someone's primary and can no longer absorb their failovers. RUs
  // with a pending boundary keep their target — their own swap path
  // resolves the slot.
  for (auto& [ru_value, state] : rus_) {
    (void)ru_value;
    if (state.secondary != phy || state.boundary.has_value() ||
        state.primary == phy) {
      continue;
    }
    // The member keeps running (it is being promoted): stop the carriers
    // of the RUs it no longer backs, or their FAPI-starvation watchdogs
    // kill the whole process once the null feeds cease.
    send_to_phy(phy, FapiMessage{state.ru, config_.slots.slot_at(sim_.now()),
                                 StopRequest{state.ru}});
    state.secondary = PhyId{};
    const PhyId next = next_pool_standby();
    if (next != PhyId{}) {
      assign_standby(state, next);
      ++stats_.standbys_reassigned;
    } else {
      SLOG_WARN("orion", "%s ru=%u standby pool exhausted: cell unprotected",
                name_.c_str(), state.ru.value());
      notify_pool(PoolEvent::kExhausted, phy);
    }
  }
}

PhyId OrionL2Side::active_phy(RuId ru) const {
  const auto it = rus_.find(ru.value());
  return it == rus_.end() ? PhyId{} : it->second.primary;
}

PhyId OrionL2Side::standby_phy(RuId ru) const {
  const auto it = rus_.find(ru.value());
  return it == rus_.end() ? PhyId{} : it->second.secondary;
}

std::pair<PhyId, PhyId> OrionL2Side::route_for_slot(RuState& state,
                                                    std::int64_t slot) {
  if (state.boundary.has_value() && slot >= *state.boundary) {
    // The migration boundary is reached by the request stream: finalize
    // the swap. The old active keeps draining pipelined responses for
    // pre-boundary slots (Fig 7).
    state.previous = state.primary;
    state.previous_until_slot = *state.boundary;
    state.swap_wall_slot = config_.slots.slot_at(sim_.now());
    std::swap(state.primary, state.secondary);
    const std::int64_t boundary = state.previous_until_slot;
    state.boundary.reset();
    if (pool_mode_ && state.secondary != PhyId{} &&
        state.secondary == state.failed_phy) {
      // Failover swap: the slot vacated by the dead primary is refilled
      // from the shared pool (or left empty until a member returns).
      state.secondary = PhyId{};
      const PhyId next = next_pool_standby();
      if (next != PhyId{}) {
        assign_standby(state, next);
        ++stats_.standbys_reassigned;
      }
    }
    SLOG_INFO("orion", "%s FAPI switched to phy=%u from slot %lld",
              name_.c_str(), state.primary.value(),
              static_cast<long long>(slot));
    if (tap_ != nullptr) {
      tap_->on_swap_finalized(state.ru, slot, state.primary, boundary);
    }
    SLS_TRACE_EVENT(sim_, obs::ObsEvent::kSwapFinalized,
                    state.primary.value(), boundary);
  }
  return {state.primary, state.secondary};
}

void OrionL2Side::on_fapi(FapiMessage&& msg) {
  auto it = rus_.find(msg.ru.value());
  if (it == rus_.end()) {
    return;  // RU not managed by this Orion
  }
  auto& state = it->second;

  switch (msg.type()) {
    case FapiMsgType::kConfigRequest:
    case FapiMsgType::kStartRequest: {
      // Intercept and store initialization messages (§6.3); send to
      // both the primary and the hot standby.
      state.init_messages.push_back(msg);
      send_to_phy(state.primary, msg);
      if (state.secondary != state.failed_phy) {
        send_to_phy(state.secondary, msg);
      }
      return;
    }
    case FapiMsgType::kStopRequest: {
      send_to_phy(state.primary, msg);
      if (state.secondary != state.failed_phy) {
        send_to_phy(state.secondary, msg);
      }
      return;
    }
    case FapiMsgType::kDlTtiRequest: {
      const auto [real, standby] = route_for_slot(state, msg.slot);
      ++stats_.real_requests_forwarded;
      send_to_phy(real, msg);
      if (standby == state.failed_phy || standby == PhyId{}) {
        // Consumed by a failover (or the pool is exhausted): nothing
        // flows to it until a replacement standby is adopted.
        return;
      }
      if (config_.standby_mode == StandbyMode::kDuplicate) {
        send_to_phy(standby, msg);  // strawman: standby does real work
      } else {
        const auto null_msg = make_null_dl_tti(msg.ru, msg.slot);
        ++stats_.null_requests_sent;
        stats_.fapi_bytes_to_standby += serialized_fapi_size(null_msg);
        send_to_phy(standby, null_msg);
      }
      return;
    }
    case FapiMsgType::kUlTtiRequest: {
      const auto [real, standby] = route_for_slot(state, msg.slot);
      ++stats_.real_requests_forwarded;
      SLS_TRACE_STAGE(sim_, obs::SlotStage::kOrionForward, msg.ru.value(),
                      msg.slot);
      send_to_phy(real, msg);
      if (standby == state.failed_phy || standby == PhyId{}) {
        return;
      }
      if (config_.standby_mode == StandbyMode::kDuplicate) {
        send_to_phy(standby, msg);
      } else {
        const auto null_msg = make_null_ul_tti(msg.ru, msg.slot);
        ++stats_.null_requests_sent;
        stats_.fapi_bytes_to_standby += serialized_fapi_size(null_msg);
        send_to_phy(standby, null_msg);
      }
      return;
    }
    case FapiMsgType::kTxDataRequest: {
      const auto [real, standby] = route_for_slot(state, msg.slot);
      ++stats_.real_requests_forwarded;
      send_to_phy(real, msg);
      if (config_.standby_mode == StandbyMode::kDuplicate &&
          standby != state.failed_phy) {
        send_to_phy(standby, msg);
      }
      return;
    }
    default:
      return;
  }
}

void OrionL2Side::send_to_phy(PhyId phy, const FapiMessage& msg) {
  const auto peer = phy_peers_.find(phy.value());
  if (peer == phy_peers_.end()) {
    return;
  }
  auto payload = BufferPools::instance().bytes.acquire();
  serialize_fapi_into(msg, payload);
  const auto delay = config_.costs.sample(payload.size(), jitter_rng_);
  const MacAddr dst = peer->second;
  sim_.after(delay, [this, dst, p = std::move(payload)]() mutable {
    Packet frame;
    frame.eth.dst = dst;
    frame.eth.ethertype = EtherType::kFapiTransport;
    frame.payload = std::move(p);
    nic_.send(std::move(frame));
  });
}

void OrionL2Side::handle_frame(Packet&& frame) {
  switch (frame.eth.ethertype) {
    case EtherType::kFapiTransport: {
      // Identify the sending PHY by its Orion peer MAC.
      PhyId from;
      bool known = false;
      for (const auto& [phy, mac] : phy_peers_) {
        if (mac == frame.eth.src) {
          from = PhyId{phy};
          known = true;
          break;
        }
      }
      if (!known) {
        return;
      }
      FapiMessage msg;
      const char* error = nullptr;
      if (try_parse_fapi(frame.payload, msg, &error)) {
        handle_phy_indication(from, std::move(msg));
      } else {
        // Corrupt indication: count it and tell the L2 (the stack above
        // treats ERROR.indication as advisory; the HARQ machinery
        // retransmits whatever the lost indication acknowledged).
        ++stats_.parse_errors;
        SLOG_WARN("orion", "%s dropped unparseable indication from phy %u: %s",
                  name_.c_str(), from.value(), error);
        if (to_l2_ != nullptr) {
          to_l2_->send(FapiMessage{
              RuId{}, 0,
              ErrorIndication{kFapiMsgCorrupt,
                              FapiMsgType::kErrorIndication}});
        }
      }
      BufferPools::instance().bytes.release(std::move(frame.payload));
      return;
    }
    case EtherType::kFailureNotify: {
      if (!frame.payload.empty()) {
        ++stats_.failure_notifications;
        SLS_TRACE_EVENT(sim_, obs::ObsEvent::kNotifyReceived,
                        frame.payload[0],
                        config_.slots.slot_at(sim_.now()));
        handle_failure_notification(PhyId{frame.payload[0]});
      }
      return;
    }
    default:
      return;
  }
}

void OrionL2Side::handle_phy_indication(PhyId from, FapiMessage&& msg) {
  const auto it = rus_.find(msg.ru.value());
  if (it == rus_.end() || to_l2_ == nullptr) {
    return;
  }
  auto& state = it->second;

  // Close the Fig 7 drain window: the pipeline is only a couple of
  // slots deep, so responses from the old primary arriving long after
  // the swap are stale — expire the route state rather than letting a
  // later migration back to the same PHY wrongly accept them.
  if (state.previous_until_slot >= 0 && state.swap_wall_slot >= 0 &&
      config_.slots.slot_at(sim_.now()) >=
          state.swap_wall_slot + config_.drain_window_slots) {
    ++stats_.drain_windows_expired;
    SLS_TRACE_EVENT(sim_, obs::ObsEvent::kDrainExpired,
                    state.previous.value(), state.previous_until_slot);
    state.previous = PhyId{};
    state.previous_until_slot = -1;
    state.swap_wall_slot = -1;
  }

  // False-positive failover recovery: a *fresh* indication from the PHY
  // we failed away from proves the process is alive — the switch
  // detector tripped on lost heartbeats, not a dead PHY. Refill the
  // standby slot (its keepalive feed resumes) instead of starving a
  // healthy process to death. Staleness-guarded so delayed datagrams
  // from before a real crash cannot resurrect a corpse.
  if (state.failed_phy == from &&
      config_.slots.slot_at(sim_.now()) - msg.slot <= kRehabFreshnessSlots) {
    for (auto& [other_ru, other_state] : rus_) {
      if (other_state.failed_phy == from) {
        other_state.failed_phy = PhyId{};
        ++stats_.rehabilitations;
        if (tap_ != nullptr) {
          tap_->on_rehabilitate(RuId{other_ru}, from);
        }
        SLS_TRACE_EVENT(sim_, obs::ObsEvent::kRehabilitated, from.value(),
                        msg.slot);
      }
    }
    SLOG_WARN("orion",
              "%s false-positive failover: phy %u is alive, standby feed "
              "resumes",
              name_.c_str(), from.value());
  }

  bool forward = false;
  bool drained = false;
  if (from == state.primary) {
    forward = true;
  } else if (from == state.previous && state.previous_until_slot >= 0 &&
             msg.slot < state.previous_until_slot) {
    // Pipelined uplink results from the pre-migration primary (Fig 7).
    forward = true;
    drained = true;
  }

  if (tap_ != nullptr) {
    tap_->on_indication(from, msg, forward, drained,
                        state.previous_until_slot);
  }
  if (!forward) {
    ++stats_.standby_responses_dropped;
    return;
  }
  if (drained) {
    ++stats_.drained_responses_accepted;
    SLS_TRACE_EVENT(sim_, obs::ObsEvent::kDrainAccepted, from.value(),
                    msg.slot);
  }
  ++stats_.responses_forwarded;
  to_l2_->send(std::move(msg));
}

void OrionL2Side::migrate(RuId ru, std::int64_t boundary_slot) {
  auto it = rus_.find(ru.value());
  if (it == rus_.end()) {
    return;
  }
  auto& state = it->second;
  state.boundary = boundary_slot;
  send_migrate_cmd(ru, state.secondary, boundary_slot);
  MigrationEvent event;
  event.kind = MigrationEvent::Kind::kPlanned;
  event.ru = ru;
  event.from = state.primary;
  event.to = state.secondary;
  event.boundary_slot = boundary_slot;
  event.initiated_at = sim_.now();
  migration_log_.push_back(event);
  if (tap_ != nullptr) {
    tap_->on_migration(event);
  }
  SLS_TRACE_EVENT(sim_, obs::ObsEvent::kPlannedMigration,
                  state.secondary.value(), boundary_slot);
  SLOG_INFO("orion", "%s planned migration ru=%u phy %u -> %u at slot %lld",
            name_.c_str(), ru.value(), state.primary.value(),
            state.secondary.value(), static_cast<long long>(boundary_slot));
}

void OrionL2Side::initiate_failover(RuState& state, Nanos notified_at,
                                    bool deferred) {
  // Pick the earliest boundary that the request stream has not yet
  // passed, and steer both the FAPI and the fronthaul there.
  const auto current = config_.slots.slot_at(sim_.now());
  const std::int64_t boundary = current + config_.failover_margin_slots;
  state.boundary = boundary;
  send_migrate_cmd(state.ru, state.secondary, boundary);
  MigrationEvent event;
  event.kind = MigrationEvent::Kind::kFailover;
  event.ru = state.ru;
  event.from = state.primary;
  event.to = state.secondary;
  event.boundary_slot = boundary;
  event.initiated_at = sim_.now();
  event.notification_at = notified_at;
  migration_log_.push_back(event);
  if (tap_ != nullptr) {
    tap_->on_migration(event);
  }
  SLS_TRACE_EVENT(sim_, obs::ObsEvent::kFailoverInitiated,
                  state.failed_phy.value(), boundary);
  SLOG_WARN("orion",
            "%s %sFAILOVER ru=%u phy %u -> %u at slot %lld (notified %.3f ms)",
            name_.c_str(), deferred ? "DEFERRED " : "",
            state.ru.value(), state.primary.value(),
            state.secondary.value(), static_cast<long long>(boundary),
            to_millis(notified_at));
  if (on_failover_) {
    on_failover_(event);
  }
}

void OrionL2Side::handle_failure_notification(PhyId failed) {
  const Nanos notified_at = sim_.now();
  bool any_failover = false;
  bool any_duplicate = false;
  bool any_unprotected = false;
  std::vector<PhyId> promoted;
  for (auto& [ru_value, state] : rus_) {
    (void)ru_value;
    // A notification for a phy this RU already failed away from is a
    // re-delivery of a finished episode, not a new failure.
    if (state.failed_phy == failed) {
      any_duplicate = true;
    }
    if (state.primary != failed) {
      continue;
    }
    // Idempotence: the switch (or the network) can deliver the same
    // notification more than once. A failover for this RU is already
    // pending — re-running it would move the boundary later and log a
    // duplicate MigrationEvent.
    if (state.boundary.has_value()) {
      any_duplicate = true;
      continue;
    }
    if (state.failed_phy == failed) {
      continue;  // re-delivered unprotected episode, counted above
    }
    if (state.secondary == PhyId{}) {
      // Pool exhausted at failure time: enter the explicit unprotected
      // state. No stale swap — the cell stays down until
      // add_pool_standby supplies a member and executes the deferred
      // failover.
      state.failed_phy = failed;
      any_unprotected = true;
      SLOG_WARN("orion",
                "%s ru=%u UNPROTECTED: primary phy %u failed with the "
                "standby pool exhausted",
                name_.c_str(), state.ru.value(), failed.value());
      notify_pool(PoolEvent::kExhausted, failed);
      continue;
    }
    any_failover = true;
    state.failed_phy = failed;
    if (std::find(promoted.begin(), promoted.end(), state.secondary) ==
        promoted.end()) {
      promoted.push_back(state.secondary);
    }
    initiate_failover(state, notified_at, /*deferred=*/false);
  }
  // A promotion consumes the pool member: every other RU backed by it
  // is re-pointed (next member or unprotected), never left aimed at a
  // standby that is becoming someone's primary.
  for (const PhyId p : promoted) {
    consume_pool_member(p);
  }
  if (any_failover) {
    ++stats_.failovers_initiated;
    // Stop the switch from watching the consumed PHY: stray heartbeats
    // from a half-dead process must not re-arm its failure detector.
    send_unwatch_cmd(failed);
    // The detector must keep covering whoever now serves the RU — the
    // promoted standby may have been unwatched by an earlier episode.
    for (const PhyId p : promoted) {
      send_watch_cmd(p);
    }
    return;
  }
  if (any_unprotected) {
    ++stats_.unprotected_notifications;
    return;
  }
  if (any_duplicate) {
    ++stats_.duplicate_notifications_ignored;
    return;
  }
  // Pool mode only: the dead PHY may be a *standby* (primary nowhere).
  // Mark the member dead and re-point every RU it backed — including a
  // mid-consume target (an RU with a pending boundary aimed at it),
  // which is redirected to the next member or falls back unprotected.
  if (pool_mode_) {
    bool standby_hit = false;
    for (auto& m : pool_) {
      if (m.id == failed && m.state != PoolState::kDead) {
        m.state = PoolState::kDead;
        standby_hit = true;
        notify_pool(PoolEvent::kMemberDead, failed);
      }
    }
    for (auto& [rv, state] : rus_) {
      (void)rv;
      if (state.secondary != failed || state.primary == failed) {
        continue;
      }
      standby_hit = true;
      state.secondary = PhyId{};
      const PhyId next = next_pool_standby();
      if (state.boundary.has_value()) {
        // The failover target itself died before the swap: redirect the
        // pending migration — never swap onto a corpse.
        state.boundary.reset();
        if (next != PhyId{}) {
          assign_standby(state, next);
          ++stats_.standbys_reassigned;
          initiate_failover(state, notified_at, /*deferred=*/false);
          consume_pool_member(next);
        } else {
          SLOG_WARN("orion",
                    "%s ru=%u UNPROTECTED: failover target phy %u died "
                    "mid-consume with the pool exhausted",
                    name_.c_str(), state.ru.value(), failed.value());
        }
      } else if (next != PhyId{}) {
        assign_standby(state, next);
        ++stats_.standbys_reassigned;
      }
    }
    if (standby_hit) {
      ++stats_.standby_failures;
      return;
    }
  }
  ++stats_.stale_notifications_ignored;
}

void OrionL2Side::send_migrate_cmd(RuId ru, PhyId dest,
                                   std::int64_t boundary_slot) {
  MigrateOnSlotCmd cmd;
  cmd.ru = ru;
  cmd.dest_phy = dest;
  cmd.slot = SlotPoint::from_index(boundary_slot, config_.slots);
  Packet frame;
  frame.eth.dst = config_.switch_cmd_mac;
  frame.eth.ethertype = EtherType::kSlingshotCmd;
  frame.payload = serialize_migrate_cmd(cmd);
  if (config_.cmd_extra_delay > 0) {
    sim_.after(config_.cmd_extra_delay, [this, f = std::move(frame)]() mutable {
      nic_.send(std::move(f));
    });
  } else {
    nic_.send(std::move(frame));
  }
}

void OrionL2Side::send_unwatch_cmd(PhyId phy) {
  Packet frame;
  frame.eth.dst = config_.switch_cmd_mac;
  frame.eth.ethertype = EtherType::kSlingshotCmd;
  frame.payload = serialize_unwatch_cmd(UnwatchPhyCmd{phy});
  nic_.send(std::move(frame));
}

void OrionL2Side::send_watch_cmd(PhyId phy) {
  Packet frame;
  frame.eth.dst = config_.switch_cmd_mac;
  frame.eth.ethertype = EtherType::kSlingshotCmd;
  frame.payload = serialize_watch_cmd(WatchPhyCmd{phy});
  nic_.send(std::move(frame));
}

void OrionL2Side::adopt_standby(RuId ru, PhyId phy, MacAddr orion_mac) {
  auto it = rus_.find(ru.value());
  if (it == rus_.end()) {
    return;
  }
  add_phy_peer(phy, orion_mac);
  auto& state = it->second;
  state.secondary = phy;
  state.failed_phy = PhyId{};  // episode over: the slot is filled again
  // Replay the stored initialization sequence so the new standby brings
  // up PHY processing for this RU (§6.3).
  for (const auto& msg : state.init_messages) {
    send_to_phy(phy, msg);
  }
  if (tap_ != nullptr) {
    tap_->on_adopt(ru, phy);
  }
  SLS_TRACE_EVENT(sim_, obs::ObsEvent::kAdoptStandby, phy.value(),
                  config_.slots.slot_at(sim_.now()));
  SLOG_INFO("orion", "%s adopted new standby phy=%u for ru=%u", name_.c_str(),
            phy.value(), ru.value());
}

void OrionL2Side::adopt_standby_all(PhyId phy, MacAddr orion_mac) {
  if (pool_mode_) {
    add_pool_standby(phy, orion_mac);
    return;
  }
  // A PHY can be the standby of several RUs; each needs its own init
  // replay (the old per-RU adopt silently left the others cold).
  for (auto& [ru_value, state] : rus_) {
    if (state.secondary == phy || state.failed_phy == phy) {
      adopt_standby(RuId{ru_value}, phy, orion_mac);
    }
  }
}

}  // namespace slingshot
