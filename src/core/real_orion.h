// Real-deployment Orion relay: the paper's L2<->PHY middlebox (§6.1)
// running against actual sockets and shared memory instead of the
// simulator's Nic/Link fabric.
//
// One RealOrionRelay serves one RU with a fixed primary/standby PHY
// pair. It speaks the same little-endian FAPI wire format as the
// simulator's Orion (fapi/wire.h — one datagram carries exactly one
// serialized FapiMessage), so the two modes are byte-compatible:
//
//   - L2 requests arrive on the relay's UDP endpoint; DL_TTI/UL_TTI are
//     forwarded verbatim to the active PHY while the standby receives
//     null requests for the same slot (§6.2 hot standby). Lifecycle
//     messages (CONFIG/START/STOP) fan out to both, which doubles as
//     the degenerate init replay of §6.3 for this fixed-pair mode.
//   - IQ-heavy TX_DATA rides the L2->Orion SHM ring and is re-pushed
//     onto the active PHY's ring; RX_DATA comes back the same way.
//   - Indications from the active PHY are forwarded up to L2; standby
//     indications (slot indications for nulls) are absorbed.
//
// Failure detection is *wall-clock socket silence*: once the active PHY
// has spoken, not hearing from it (socket or ring) for longer than
// `detect_timeout_ns` while L2 traffic keeps flowing declares it dead —
// the real-mode stand-in for the paper's in-switch detector. The relay
// then swaps the pair and records an episode ledger (kDetected →
// kFailoverInitiated → kSwapFinalized) whose (kind, ru, phy) sequence
// must match the simulator's ledger for the same scripted fault plan;
// tests/testbed/test_real_testbed.cc enforces that conformance.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/types.h"
#include "fapi/fapi.h"
#include "transport/shm_ring.h"
#include "transport/udp_endpoint.h"
#include "transport/wallclock_pacer.h"

namespace slingshot {

enum class EpisodeEventKind : std::uint8_t {
  kDetected = 0,           // active PHY declared dead
  kFailoverInitiated = 1,  // migration toward the standby decided
  kSwapFinalized = 2,      // FAPI routing now targets the new primary
  kStandbyAdopted = 3,     // replacement standby wired in (§6.3)
};

[[nodiscard]] const char* episode_event_name(EpisodeEventKind kind);

struct EpisodeEvent {
  EpisodeEventKind kind = EpisodeEventKind::kDetected;
  RuId ru;
  PhyId phy;              // the PHY the event concerns
  std::int64_t slot = 0;  // wall slot the event happened in
  std::int64_t wall_ns = 0;
};

struct RealOrionConfig {
  RuId ru;
  std::uint16_t l2_port = 0;
  // phy_ports[i] pairs with PhyId{i + 1}, matching the simulator
  // testbed's kPhyA/kPhyB numbering so ledgers align across modes.
  std::vector<std::uint16_t> phy_ports;
  std::size_t active = 0;   // index into phy_ports
  std::size_t standby = 1;  // index into phy_ports
  std::int64_t detect_timeout_ns = 2'000'000;
  // Wall instant past which the detector disarms. A finite run ends
  // with *everyone* going quiet; without this the trailing silence
  // would read as a PHY death. The launcher sets it a few slots before
  // the L2 stops pacing.
  std::int64_t detect_deadline_ns =
      std::numeric_limits<std::int64_t>::max();
  WallclockPacer::Config pacer;  // for wall->slot conversion only
};

struct RealOrionStats {
  std::uint64_t requests_forwarded = 0;   // real DL/UL_TTI to active
  std::uint64_t nulls_sent = 0;           // null TTIs to the standby
  std::uint64_t indications_forwarded = 0;
  std::uint64_t standby_filtered = 0;     // standby indications absorbed
  std::uint64_t ring_records_relayed = 0;
  std::uint64_t parse_errors = 0;
};

class RealOrionRelay {
 public:
  // `endpoint` is the relay's pre-opened socket (owned by the caller,
  // must outlive the relay). Ring handles are plain values into
  // launcher-created shared mappings.
  RealOrionRelay(RealOrionConfig config, UdpEndpoint* endpoint,
                 ShmRing l2_to_orion, ShmRing orion_to_l2,
                 std::vector<ShmRing> orion_to_phy,
                 std::vector<ShmRing> phy_to_orion);

  // One scheduling quantum: receive at most one datagram (waiting up to
  // timeout_ms), drain every ring, then run the silence detector. The
  // role loop calls this until the run ends.
  void poll_once(int timeout_ms);

  [[nodiscard]] PhyId active_phy() const {
    return PhyId{std::uint8_t(config_.active + 1)};
  }
  [[nodiscard]] const std::vector<EpisodeEvent>& ledger() const {
    return ledger_;
  }
  [[nodiscard]] const RealOrionStats& stats() const { return stats_; }

 private:
  void handle_datagram(std::uint16_t from_port,
                       std::span<const std::uint8_t> bytes);
  void handle_l2_request(FapiMessage&& msg);
  void handle_phy_indication(std::size_t phy_index, FapiMessage&& msg);
  void drain_rings();
  void check_detector();
  void send_fapi(std::uint16_t port, const FapiMessage& msg);
  [[nodiscard]] std::size_t phy_index_for_port(std::uint16_t port) const;
  void record(EpisodeEventKind kind, PhyId phy);
  [[nodiscard]] std::int64_t wall_slot() const;

  RealOrionConfig config_;
  UdpEndpoint* endpoint_;
  ShmRing l2_to_orion_;
  ShmRing orion_to_l2_;
  std::vector<ShmRing> orion_to_phy_;
  std::vector<ShmRing> phy_to_orion_;

  RealOrionStats stats_;
  std::vector<EpisodeEvent> ledger_;
  // Detector state: the active PHY is armed once it has produced any
  // traffic, and silence is measured from the last time it spoke.
  bool active_heard_ = false;
  std::int64_t last_active_heard_ns_ = 0;
  bool failed_over_ = false;  // fixed pair: at most one failover
  std::vector<std::uint8_t> rx_scratch_;
  std::vector<std::uint8_t> wire_scratch_;
};

}  // namespace slingshot
