// Slingshot's in-switch fronthaul middlebox (§5) + realtime PHY failure
// detector (§5.2), expressed as a dataplane program over the
// programmable-switch primitives (match-action tables, registers,
// packet generator) — structurally the paper's P4 implementation (§7).
//
// Data structures (Fig 5):
//  * ID directory        — match-action table: RU MAC -> RU id, and
//                          PHY MAC -> PHY id (control-plane populated at
//                          installation time).
//  * Address directory   — match-action table: PHY id -> PHY MAC and
//                          RU id -> RU MAC.
//  * RU-to-PHY mapping   — data-plane register array indexed by RU id
//                          (match-action tables can't be updated at
//                          line rate; registers can).
//  * Migration request store — register array of pending
//                          migrate_on_slot commands per RU.
//  * Failure counters    — per-PHY registers driven by the switch
//                          packet generator (n ticks per timeout T).
//
// Per-packet logic:
//  * Uplink fronthaul (RU -> virtual PHY address): resolve the RU id,
//    execute any matured migration request at the TTI boundary, then
//    rewrite the destination to the *current* primary PHY's MAC.
//  * Downlink fronthaul (PHY -> RU): reset the source PHY's failure
//    counter (natural heartbeat), execute matured migration requests,
//    and forward only if the source is the RU's active PHY — blocking
//    the hot standby's control plane from reaching the RU.
//  * migrate_on_slot command packets from Orion are absorbed into the
//    migration request store entirely in the data plane (no
//    millisecond-scale control-plane rule update on the critical path).
//  * Generator packets increment every tracked PHY's counter; a counter
//    reaching n re-formats the packet into a failure notification sent
//    to that PHY's L2-side Orion.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "fronthaul/oran.h"
#include "switchsim/pswitch.h"
#include "switchsim/tables.h"

namespace slingshot {

// migrate_on_slot command payload (EtherType kSlingshotCmd).
struct MigrateOnSlotCmd {
  RuId ru;
  PhyId dest_phy;
  SlotPoint slot;  // first slot served by dest_phy
};
[[nodiscard]] std::vector<std::uint8_t> serialize_migrate_cmd(
    const MigrateOnSlotCmd& cmd);
[[nodiscard]] MigrateOnSlotCmd parse_migrate_cmd(
    std::span<const std::uint8_t> bytes);

// Failure notification payload (EtherType kFailureNotify).
struct FailureNotification {
  PhyId phy;
};

struct FhMboxConfig {
  // Failure detector: timeout T split into n generator ticks (§5.2.2).
  Nanos detector_timeout = 450'000;  // 450 µs, chosen from the measured
                                     // 393 µs max inter-packet gap
  int detector_ticks = 50;           // n = 50 -> 9 µs precision
  int max_ids = 256;                 // operator-assigned 8-bit id space
};

struct FhMboxStats {
  std::uint64_t ul_forwarded = 0;
  std::uint64_t dl_forwarded = 0;
  std::uint64_t dl_blocked = 0;        // standby/stale-PHY DL packets
  std::uint64_t migrations_executed = 0;
  std::uint64_t commands_received = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t unknown_dropped = 0;
};

// Estimated switch ASIC resource usage for a given deployment size —
// reproduces the paper's §8.6 resource table (calibrated at 256 RUs /
// 256 PHYs).
struct SwitchResourceEstimate {
  double crossbar_pct = 0.0;
  double alu_pct = 0.0;
  double gateway_pct = 0.0;
  double sram_pct = 0.0;
  double hash_bits_pct = 0.0;
};
[[nodiscard]] SwitchResourceEstimate estimate_switch_resources(int num_rus,
                                                               int num_phys);

class FronthaulMiddlebox final : public DataplaneProgram {
 public:
  FronthaulMiddlebox(Simulator& sim, FhMboxConfig config);

  // ---- Installation-time configuration (operator-assigned IDs) ----
  void register_ru(RuId id, MacAddr mac);
  void register_phy(PhyId id, MacAddr mac);
  void bind_ru_to_phy(RuId ru, PhyId phy);  // initial mapping
  // Failure detection: watch `phy`; notifications go to `orion_mac`.
  void watch_phy(PhyId phy, MacAddr orion_mac);
  void unwatch_phy(PhyId phy);

  // ABLATION: disable the downlink source filter (the check that only
  // the RU's active PHY may reach it). The naive no-filter design lets
  // the hot standby's control plane hit the RU in every slot.
  void set_dl_source_filter(bool enabled) { dl_filter_ = enabled; }

  // ---- DataplaneProgram ----
  PipelineVerdict process(Packet& packet, int ingress_port,
                          PipelineContext& ctx) override;
  void on_generator_packet(Packet& packet, PipelineContext& ctx) override;

  // Generator period implied by the config (switch owner starts it).
  [[nodiscard]] Nanos generator_period() const {
    return config_.detector_timeout / config_.detector_ticks;
  }

  [[nodiscard]] PhyId active_phy(RuId ru) const {
    return PhyId{ru_to_phy_.read(ru.value())};
  }
  [[nodiscard]] const FhMboxStats& stats() const { return stats_; }

 private:
  struct MigrationEntry {
    bool valid = false;
    std::uint8_t dest_phy = 0;
    std::int64_t wrapped_slot = 0;  // within the 20480-slot wrap window
  };
  struct WatchEntry {
    bool armed = false;
    MacAddr notify_mac;
  };

  // Has this packet's slot reached the migration boundary (wrap-aware)?
  [[nodiscard]] bool slot_reached(std::int64_t pkt_wrapped,
                                  std::int64_t boundary_wrapped) const;
  void maybe_execute_migration(RuId ru, std::int64_t pkt_wrapped);

  Simulator& sim_;
  FhMboxConfig config_;
  SlotConfig slots_;
  // Match-action tables (control-plane populated, data-plane read).
  MatchActionTable<MacAddr, std::uint8_t> ru_id_directory_;
  MatchActionTable<MacAddr, std::uint8_t> phy_id_directory_;
  MatchActionTable<std::uint8_t, MacAddr> phy_addr_directory_;
  MatchActionTable<std::uint8_t, MacAddr> ru_addr_directory_;
  // Data-plane registers.
  RegisterArray<std::uint8_t> ru_to_phy_;
  RegisterArray<MigrationEntry> migration_store_;
  RegisterArray<std::uint16_t> failure_counters_;
  std::vector<WatchEntry> watches_;
  std::vector<std::uint8_t> tracked_phys_;  // ids with an active watch
  bool dl_filter_ = true;
  FhMboxStats stats_;
};

}  // namespace slingshot
