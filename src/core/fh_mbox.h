// Slingshot's in-switch fronthaul middlebox (§5) + realtime PHY failure
// detector (§5.2), expressed as a dataplane program over the
// programmable-switch primitives (match-action tables, registers,
// packet generator) — structurally the paper's P4 implementation (§7).
//
// Data structures (Fig 5):
//  * ID directory        — match-action table: RU MAC -> RU id, and
//                          PHY MAC -> PHY id (control-plane populated at
//                          installation time).
//  * Address directory   — match-action table: PHY id -> PHY MAC and
//                          RU id -> RU MAC.
//  * RU-to-PHY mapping   — data-plane register array indexed by RU id
//                          (match-action tables can't be updated at
//                          line rate; registers can).
//  * Migration request store — register array of pending
//                          migrate_on_slot commands per RU.
//  * Failure counters    — per-PHY registers driven by the switch
//                          packet generator (n ticks per timeout T).
//
// Per-packet logic:
//  * Uplink fronthaul (RU -> virtual PHY address): resolve the RU id,
//    execute any matured migration request at the TTI boundary, then
//    rewrite the destination to the *current* primary PHY's MAC.
//  * Downlink fronthaul (PHY -> RU): reset the source PHY's failure
//    counter (natural heartbeat), execute matured migration requests,
//    and forward only if the source is the RU's active PHY — blocking
//    the hot standby's control plane from reaching the RU.
//  * migrate_on_slot command packets from Orion are absorbed into the
//    migration request store entirely in the data plane (no
//    millisecond-scale control-plane rule update on the critical path).
//  * Generator packets increment every tracked PHY's counter; a counter
//    reaching n re-formats the packet into a failure notification sent
//    to that PHY's L2-side Orion.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/types.h"
#include "fronthaul/oran.h"
#include "switchsim/pswitch.h"
#include "switchsim/tables.h"

namespace slingshot {

// Command opcodes carried in the first byte of kSlingshotCmd payloads.
inline constexpr std::uint8_t kCmdOpMigrateOnSlot = 0;
inline constexpr std::uint8_t kCmdOpUnwatchPhy = 1;
inline constexpr std::uint8_t kCmdOpWatchPhy = 2;

// migrate_on_slot command payload (EtherType kSlingshotCmd, opcode 0).
struct MigrateOnSlotCmd {
  RuId ru;
  PhyId dest_phy;
  SlotPoint slot;  // first slot served by dest_phy
};
[[nodiscard]] std::vector<std::uint8_t> serialize_migrate_cmd(
    const MigrateOnSlotCmd& cmd);
[[nodiscard]] MigrateOnSlotCmd parse_migrate_cmd(
    std::span<const std::uint8_t> bytes);

// unwatch_phy command payload (EtherType kSlingshotCmd, opcode 1):
// Orion disarms the in-switch failure detector for a PHY it has already
// failed away from, so stray heartbeats cannot re-trigger detection.
struct UnwatchPhyCmd {
  PhyId phy;
};
[[nodiscard]] std::vector<std::uint8_t> serialize_unwatch_cmd(
    const UnwatchPhyCmd& cmd);

// watch_phy command payload (EtherType kSlingshotCmd, opcode 2): Orion
// (re-)enrolls a PHY in the in-switch failure detector — sent when a
// failover promotes a standby that was previously unwatched. The
// notification target is the command packet's source MAC.
struct WatchPhyCmd {
  PhyId phy;
};
[[nodiscard]] std::vector<std::uint8_t> serialize_watch_cmd(
    const WatchPhyCmd& cmd);

// Failure notification payload (EtherType kFailureNotify).
struct FailureNotification {
  PhyId phy;
};

struct FhMboxConfig {
  // Failure detector: timeout T split into n generator ticks (§5.2.2).
  Nanos detector_timeout = 450'000;  // 450 µs, chosen from the measured
                                     // 393 µs max inter-packet gap
  int detector_ticks = 50;           // n = 50 -> 9 µs precision
  int max_ids = 256;                 // operator-assigned 8-bit id space
  // Deployment numerology. Boundary comparisons and the wrapped slot
  // number space are derived from this; it must match the Orions'.
  SlotConfig slots{};
};

struct FhMboxStats {
  std::uint64_t ul_forwarded = 0;
  std::uint64_t dl_forwarded = 0;
  std::uint64_t dl_blocked = 0;        // standby/stale-PHY DL packets
  std::uint64_t migrations_executed = 0;
  std::uint64_t commands_received = 0;
  std::uint64_t failures_detected = 0;
  std::uint64_t unknown_dropped = 0;
};

// Estimated switch ASIC resource usage for a given deployment size —
// reproduces the paper's §8.6 resource table (calibrated at 256 RUs /
// 256 PHYs).
struct SwitchResourceEstimate {
  double crossbar_pct = 0.0;
  double alu_pct = 0.0;
  double gateway_pct = 0.0;
  double sram_pct = 0.0;
  double hash_bits_pct = 0.0;
};
[[nodiscard]] SwitchResourceEstimate estimate_switch_resources(int num_rus,
                                                               int num_phys);

// Observation tap for the middlebox dataplane (src/inject's
// InvariantChecker attaches here). Pure observer: sees decisions after
// they are made, cannot alter them.
class MboxTap {
 public:
  virtual ~MboxTap() = default;
  // A migrate_on_slot command was absorbed; `boundary_wrapped` is the
  // wrapped slot index the middlebox will trigger on.
  virtual void on_command(const MigrateOnSlotCmd& /*cmd*/,
                          std::int64_t /*boundary_wrapped*/) {}
  virtual void on_unwatch_command(PhyId /*phy*/) {}
  // A matured migration executed on the packet with slot `pkt_wrapped`.
  virtual void on_migration_executed(RuId /*ru*/, PhyId /*dest*/,
                                     std::int64_t /*pkt_wrapped*/,
                                     std::int64_t /*boundary_wrapped*/) {}
  // A downlink fronthaul packet from `src` for `ru` was forwarded or
  // blocked by the DL source filter.
  virtual void on_dl_packet(PhyId /*src*/, RuId /*ru*/,
                            std::int64_t /*pkt_wrapped*/, bool /*forwarded*/) {}
  virtual void on_failure_notify(PhyId /*phy*/) {}
  // Control-plane watch state changed (watch_phy / unwatch_phy).
  virtual void on_watch_changed(PhyId /*phy*/, bool /*watched*/) {}
};

class FronthaulMiddlebox final : public DataplaneProgram {
 public:
  FronthaulMiddlebox(Simulator& sim, FhMboxConfig config);

  // ---- Installation-time configuration (operator-assigned IDs) ----
  void register_ru(RuId id, MacAddr mac);
  void register_phy(PhyId id, MacAddr mac);
  void bind_ru_to_phy(RuId ru, PhyId phy);  // initial mapping
  // Failure detection: watch `phy`; notifications go to `orion_mac`.
  void watch_phy(PhyId phy, MacAddr orion_mac);
  void unwatch_phy(PhyId phy);

  // ABLATION: disable the downlink source filter (the check that only
  // the RU's active PHY may reach it). The naive no-filter design lets
  // the hot standby's control plane hit the RU in every slot.
  void set_dl_source_filter(bool enabled) { dl_filter_ = enabled; }

  // Attach an observation tap (invariant checking); nullptr detaches.
  void set_tap(MboxTap* tap) { tap_ = tap; }

  [[nodiscard]] bool phy_watched(PhyId phy) const {
    return std::find(tracked_phys_.begin(), tracked_phys_.end(),
                     phy.value()) != tracked_phys_.end();
  }

  // ---- DataplaneProgram ----
  PipelineVerdict process(Packet& packet, int ingress_port,
                          PipelineContext& ctx) override;
  void on_generator_packet(Packet& packet, PipelineContext& ctx) override;

  // Generator period implied by the config (switch owner starts it).
  [[nodiscard]] Nanos generator_period() const {
    return config_.detector_timeout / config_.detector_ticks;
  }

  [[nodiscard]] PhyId active_phy(RuId ru) const {
    return PhyId{ru_to_phy_.read(ru.value())};
  }
  [[nodiscard]] const FhMboxStats& stats() const { return stats_; }

 private:
  struct MigrationEntry {
    bool valid = false;
    std::uint8_t dest_phy = 0;
    std::int64_t wrapped_slot = 0;  // within the 20480-slot wrap window
  };
  struct WatchEntry {
    bool armed = false;
    MacAddr notify_mac;
  };

  // Has this packet's slot reached the migration boundary (wrap-aware)?
  [[nodiscard]] bool slot_reached(std::int64_t pkt_wrapped,
                                  std::int64_t boundary_wrapped) const;
  void maybe_execute_migration(RuId ru, std::int64_t pkt_wrapped);

  Simulator& sim_;
  FhMboxConfig config_;
  SlotConfig slots_;
  // Wrapped slot-number space (kFrames x slots_per_frame), numerology-
  // derived: 20480 at the default µ=1, 40960 at µ=2.
  std::int64_t wrap_window_;
  // Match-action tables (control-plane populated, data-plane read).
  MatchActionTable<MacAddr, std::uint8_t> ru_id_directory_;
  MatchActionTable<MacAddr, std::uint8_t> phy_id_directory_;
  MatchActionTable<std::uint8_t, MacAddr> phy_addr_directory_;
  MatchActionTable<std::uint8_t, MacAddr> ru_addr_directory_;
  // Data-plane registers.
  RegisterArray<std::uint8_t> ru_to_phy_;
  RegisterArray<MigrationEntry> migration_store_;
  RegisterArray<std::uint16_t> failure_counters_;
  std::vector<WatchEntry> watches_;
  std::vector<std::uint8_t> tracked_phys_;  // ids with an active watch
  bool dl_filter_ = true;
  MboxTap* tap_ = nullptr;
  FhMboxStats stats_;
};

}  // namespace slingshot
