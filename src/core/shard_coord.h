// Shard coordinator: the sequenced "control island" of the sharded
// multi-cell testbed (see sim/sharded.h and testbed/sharded_testbed.h).
//
// Each cell island runs its own complete vRAN stack — switch, L2,
// Orion, standby-pool slice — so intra-cell resilience (detection,
// failover, drain) never crosses an island boundary. What does cross is
// the fleet-level view the paper's deployment note implies: a global
// operator watching failure episodes everywhere and keeping the shared
// spare inventory topped up. The coordinator is that operator. It is
// not a Simulator: it executes only at window barriers, consuming
// control messages in the mailbox's deterministic (source island, seq)
// order, so its ledger and every grant it issues are bit-identical at
// any shard count.
//
// Replenish loop: when an island reports a consumed pool member (a
// failover promoted its standby to primary), the coordinator spends one
// global spare — if any remain — and schedules a replacement on that
// island after `boot_delay` (process start + §6.3 init replay), via the
// grant action the testbed wires to post_event_from_control. The island
// then revives its dead PHY as a fresh pool standby, restoring
// protection; the resulting kRestored report closes the loop in the
// ledger.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/time.h"
#include "sim/sharded.h"

namespace slingshot {

// Control-message vocabulary the sharded testbed posts through the
// mailbox (ControlMsg::kind; payload word `a` carries the PhyId value).
enum class ShardCtrlKind : std::uint32_t {
  kFailureEpisode = 1,  // in-switch detector fired for a watched PHY
  kPoolConsumed = 2,    // failover consumed a pool standby
  kPoolExhausted = 3,   // a cell needed a member and none was available
  kMemberDead = 4,      // a pool standby itself failed
  kMemberRestored = 5,  // a member (re)joined the island's pool
};

struct ShardCoordStats {
  std::uint64_t episodes = 0;          // kFailureEpisode received
  std::uint64_t consumed = 0;          // kPoolConsumed received
  std::uint64_t exhausted = 0;         // kPoolExhausted received
  std::uint64_t member_deaths = 0;     // kMemberDead received
  std::uint64_t restored = 0;          // kMemberRestored received
  std::uint64_t grants_issued = 0;     // spares spent on replenishment
  std::uint64_t grants_declined = 0;   // consumption with no spare left
};

class ShardCoordinator {
 public:
  struct Config {
    // Global replacement inventory shared by all islands.
    int spares = 0;
    // Virtual time from grant to the replacement joining the pool:
    // process boot plus the same watch-arming grace the testbed uses.
    Nanos boot_delay = 5'000'000;
  };

  explicit ShardCoordinator(Config config)
      : config_(config), spares_(config.spares) {}

  // Mailbox sink — wire as
  //   engine.set_control_sink([&](const ControlMsg& m) {
  //     coord.on_control(m); });
  // Runs at barriers only; messages arrive in (src island, seq) order.
  void on_control(const ControlMsg& msg);

  // Invoked inside on_control when a spare is granted to `island`; the
  // testbed schedules the island-side revive at virtual time `at` via
  // ShardedSimulator::post_event_from_control.
  void set_grant_action(std::function<void(int island, Nanos at)> action) {
    grant_ = std::move(action);
  }

  [[nodiscard]] const ShardCoordStats& stats() const { return stats_; }
  [[nodiscard]] int spares_left() const { return spares_; }

  // Fleet-wide episode ledger, in deterministic delivery order.
  struct Episode {
    int island = -1;
    std::uint32_t kind = 0;  // ShardCtrlKind
    std::uint64_t phy = 0;   // PhyId value
    Nanos time = 0;          // island-local time of the report
  };
  [[nodiscard]] const std::vector<Episode>& ledger() const { return ledger_; }

 private:
  Config config_;
  int spares_;
  std::function<void(int, Nanos)> grant_;
  ShardCoordStats stats_;
  std::vector<Episode> ledger_;
};

}  // namespace slingshot
