// Wireless channel model: per-UE block-fading AWGN.
//
// Each UE's link is a single complex tap h (unit-ish magnitude with slow
// log-normal fading and a random-walk phase) plus AWGN whose variance is
// set by the instantaneous SNR. SNR follows an AR(1) process in dB — a
// standard model for the "routine wireless signal quality degradation"
// that Slingshot's whole design leans on (§4): even stationary 5G UEs
// see multi-dB swings (the paper cites up to 4x throughput variation).
#pragma once

#include <cmath>
#include <complex>
#include <span>
#include <vector>

#include "common/rng.h"

namespace slingshot {

using Cf = std::complex<float>;

struct FadingConfig {
  double mean_snr_db = 20.0;
  double ar1_rho = 0.98;      // per-slot correlation of the SNR process
  double ar1_sigma_db = 0.6;  // innovation stddev per slot (dB)
  double phase_walk_rad = 0.05;  // phase random-walk step per slot
  double amp_sigma_db = 0.3;     // amplitude fading around 0 dB
};

// Reduced form of the fading model for the massive-UE batch
// (src/ue/ue_batch.h): only the AR(1) SNR recursion survives — the batch
// never synthesizes IQ, so the tap phase/amplitude processes are
// dropped — and the parameters are narrowed to float for the SoA lanes.
struct BatchFadingParams {
  float mean_snr_db = 20.0F;
  float ar1_rho = 0.98F;
  float innov_sigma_db = 0.6F;  // innovation stddev per slot (dB)
};

[[nodiscard]] inline BatchFadingParams batch_fading_params(
    const FadingConfig& config) {
  return BatchFadingParams{float(config.mean_snr_db), float(config.ar1_rho),
                           float(config.ar1_sigma_db)};
}

// Evolves per slot; applies the channel to a symbol block.
class UeChannel {
 public:
  UeChannel(FadingConfig config, RngStream rng)
      : config_(config),
        rng_(std::move(rng)),
        snr_db_(config.mean_snr_db) {}

  // Advance the fading processes by one slot.
  void step_slot();

  [[nodiscard]] double snr_db() const { return snr_db_; }
  void set_mean_snr_db(double snr) { config_.mean_snr_db = snr; }
  [[nodiscard]] double mean_snr_db() const { return config_.mean_snr_db; }
  // Force an immediate SNR excursion (models shadowing events).
  void shock_snr_db(double delta) { snr_db_ += delta; }

  [[nodiscard]] Cf tap() const { return h_; }

  // y = h*x + n over the block; noise power from the current SNR
  // (signal normalized to unit average power).
  [[nodiscard]] std::vector<Cf> apply(std::span<const Cf> x);

  // Noise variance implied by the current SNR.
  [[nodiscard]] double noise_variance() const {
    return std::pow(10.0, -snr_db_ / 10.0);
  }

 private:
  FadingConfig config_;
  RngStream rng_;
  double snr_db_;
  double phase_ = 0.0;
  double amp_db_ = 0.0;
  Cf h_{1.0F, 0.0F};
};

}  // namespace slingshot
