#include "channel/channel.h"

namespace slingshot {

void UeChannel::step_slot() {
  // AR(1) SNR in dB around the configured mean.
  snr_db_ = config_.mean_snr_db +
            config_.ar1_rho * (snr_db_ - config_.mean_snr_db) +
            rng_.gaussian(0.0, config_.ar1_sigma_db);
  // Slow phase random walk and mild amplitude fading.
  phase_ += rng_.gaussian(0.0, config_.phase_walk_rad);
  amp_db_ = 0.9 * amp_db_ + rng_.gaussian(0.0, config_.amp_sigma_db * 0.2);
  const auto amp = float(std::pow(10.0, amp_db_ / 20.0));
  h_ = Cf{amp * float(std::cos(phase_)), amp * float(std::sin(phase_))};
}

std::vector<Cf> UeChannel::apply(std::span<const Cf> x) {
  const double sigma2 = noise_variance();
  // Per-dimension noise stddev: total noise power sigma2 split across
  // real and imaginary components.
  const double sigma = std::sqrt(sigma2 / 2.0);
  std::vector<Cf> y;
  y.reserve(x.size());
  for (const auto& s : x) {
    const Cf noise{float(rng_.gaussian(0.0, sigma)),
                   float(rng_.gaussian(0.0, sigma))};
    y.push_back(h_ * s + noise);
  }
  return y;
}

}  // namespace slingshot
