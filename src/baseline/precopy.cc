#include "baseline/precopy.h"

#include <algorithm>
#include <cmath>

namespace slingshot {

PrecopyResult PrecopyMigrationModel::run_once(MigrationTransport transport) {
  PrecopyResult result;
  const double bw = transport == MigrationTransport::kTcp
                        ? config_.tcp_bandwidth_bytes_per_s
                        : config_.rdma_bandwidth_bytes_per_s;
  // Per-run dirty rate: the PHY's dirtying varies with load/placement.
  // Capped below the link bandwidth, as QEMU's auto-converge throttling
  // guarantees forward progress.
  const double dirty = std::clamp(
      config_.dirty_rate_bytes_per_s *
          (1.0 + rng_.gaussian(0.0, config_.dirty_rate_rel_stddev)),
      0.1 * config_.dirty_rate_bytes_per_s, 0.85 * bw);

  double remaining = config_.vm_memory_bytes;
  double elapsed_s = 0.0;
  while (result.rounds < config_.max_rounds) {
    // Stop condition: the remaining dirty set fits in the downtime
    // budget.
    if (remaining <= bw * config_.downtime_limit_s) {
      break;
    }
    const double round_s = remaining / bw;
    result.bytes_transferred += remaining;
    elapsed_s += round_s;
    remaining = dirty * round_s;  // pages dirtied while copying
    ++result.rounds;
  }

  const double final_copy_s = remaining / bw;
  const Nanos overhead = std::max<Nanos>(
      Nanos(rng_.gaussian(double(config_.mgmt_overhead_mean),
                          double(config_.mgmt_overhead_stddev))),
      5_ms);
  result.bytes_transferred += remaining;
  result.pause_time = Nanos(final_copy_s * 1e9) + overhead;
  result.total_migration_time =
      Nanos((elapsed_s + final_copy_s) * 1e9) + overhead;
  result.phy_crashed = result.pause_time > config_.realtime_tolerance;
  return result;
}

std::vector<PrecopyResult> PrecopyMigrationModel::run_many(
    MigrationTransport transport, int runs) {
  std::vector<PrecopyResult> results;
  results.reserve(std::size_t(runs));
  for (int i = 0; i < runs; ++i) {
    results.push_back(run_once(transport));
  }
  return results;
}

}  // namespace slingshot
