// Pre-copy VM live-migration model — the baseline of the paper's Fig 3.
//
// QEMU/KVM pre-copy iteratively transfers dirty memory pages; the VM is
// paused when the remaining dirty set can be shipped within the
// configured downtime limit (or the round budget runs out), so the
// pause time is governed by the fixed point of the dirty-rate /
// bandwidth ratio and by the downtime limit. A PHY like FlexRAN
// dirties memory continuously (per-TTI signal-processing buffers),
// which keeps the remaining set large — the paper measures a median
// 244 ms pause and observes FlexRAN crashes in every run, since vRAN
// platforms budget sub-10 µs thread interruptions.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace slingshot {

enum class MigrationTransport { kTcp, kRdma };

struct PrecopyConfig {
  double vm_memory_bytes = 8e9;       // FlexRAN VM working set
  double dirty_rate_bytes_per_s = 2.0e9;   // mean; per-run lognormal-ish
  double dirty_rate_rel_stddev = 0.25;
  double tcp_bandwidth_bytes_per_s = 2.8e9;   // ~22 Gbps effective
  double rdma_bandwidth_bytes_per_s = 5.5e9;  // ~44 Gbps effective [1]
  double downtime_limit_s = 0.30;  // QEMU default migrate_downtime knob
  int max_rounds = 30;
  Nanos mgmt_overhead_mean = 25_ms;  // stop/resume + device state
  Nanos mgmt_overhead_stddev = 10_ms;
  // Real-time tolerance: FlexRAN crashes if interrupted longer than
  // this (vRAN platform requirement, §2.4).
  Nanos realtime_tolerance = 10'000;  // 10 µs
};

struct PrecopyResult {
  Nanos pause_time = 0;        // VM blackout (dropped TTIs span)
  Nanos total_migration_time = 0;
  int rounds = 0;
  double bytes_transferred = 0;
  bool phy_crashed = false;    // pause exceeded the realtime tolerance
};

class PrecopyMigrationModel {
 public:
  PrecopyMigrationModel(PrecopyConfig config, RngStream rng)
      : config_(config), rng_(std::move(rng)) {}

  [[nodiscard]] PrecopyResult run_once(MigrationTransport transport);
  // N independent migration runs (the paper performs 80).
  [[nodiscard]] std::vector<PrecopyResult> run_many(
      MigrationTransport transport, int runs);

 private:
  PrecopyConfig config_;
  RngStream rng_;
};

}  // namespace slingshot
