#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace slingshot {

EventHandle Simulator::at(Nanos t, std::function<void()> fn) {
  if (t < now_) {
    throw std::invalid_argument{"Simulator::at: time in the past"};
  }
  auto flag = std::make_shared<bool>(false);
  queue_.push(Event{t, next_seq_++, std::move(fn), flag});
  return EventHandle{std::move(flag)};
}

EventHandle Simulator::every(Nanos start, Nanos period,
                             std::function<void()> fn) {
  if (period <= 0) {
    throw std::invalid_argument{"Simulator::every: non-positive period"};
  }
  auto flag = std::make_shared<bool>(false);
  // Self-rescheduling closure; shares the same cancellation flag so that
  // cancelling the returned handle stops all future firings. The closure
  // holds only a weak reference to itself — the strong one lives in the
  // queued event — so the series is freed once no firing is pending
  // (a strong self-capture would be an unreclaimable cycle).
  auto tick = std::make_shared<std::function<void(Nanos)>>();
  *tick = [this, period, fn = std::move(fn), flag,
           weak = std::weak_ptr<std::function<void(Nanos)>>(tick)](Nanos when) {
    if (*flag) {
      return;
    }
    fn();
    if (*flag) {
      return;  // fn may have cancelled the series
    }
    auto self = weak.lock();  // always succeeds: we are running through it
    if (self == nullptr) {
      return;
    }
    const Nanos next = when + period;
    queue_.push(Event{next, next_seq_++,
                      [self, next] { (*self)(next); }, flag});
  };
  queue_.push(Event{start, next_seq_++, [tick, start] { (*tick)(start); },
                    flag});
  return EventHandle{std::move(flag)};
}

void Simulator::run_until(Nanos t_end) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const auto& top = queue_.top();
    if (top.time > t_end) {
      break;
    }
    Event ev = std::move(const_cast<Event&>(top));
    queue_.pop();
    assert(ev.time >= now_);
    now_ = ev.time;
    if (!*ev.cancelled) {
      ++executed_;
      ev.fn();
    }
  }
  if (now_ < t_end) {
    now_ = t_end;
  }
}

void Simulator::run_all() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    Event ev = std::move(const_cast<Event&>(queue_.top()));
    queue_.pop();
    now_ = ev.time;
    if (!*ev.cancelled) {
      ++executed_;
      ev.fn();
    }
  }
}

}  // namespace slingshot
