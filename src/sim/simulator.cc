#include "sim/simulator.h"

#include <cassert>
#include <stdexcept>

namespace slingshot {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
}  // namespace

std::uint32_t Simulator::allocate_record() {
  if (free_slots_.empty()) {
    const auto base = static_cast<std::uint32_t>(chunks_.size() * kChunkRecords);
    chunks_.push_back(std::make_unique<EventRecord[]>(kChunkRecords));
    free_slots_.reserve(kChunkRecords);
    for (std::size_t i = kChunkRecords; i > 0; --i) {
      free_slots_.push_back(base + static_cast<std::uint32_t>(i - 1));
    }
  }
  const std::uint32_t slot = free_slots_.back();
  free_slots_.pop_back();
  return slot;
}

void Simulator::retire_record(std::uint32_t slot) {
  EventRecord& rec = record(slot);
  rec.fn.reset();
  rec.period = 0;
  rec.cancelled = false;
  ++rec.generation;  // invalidates every outstanding handle/queue reference
  free_slots_.push_back(slot);
}

EventHandle Simulator::at(Nanos t, InlineCallback fn) {
  if (t < now_) {
    // Clamp, never schedule behind the clock: a past-time entry would
    // still be popped by the heap and execute out of causal order,
    // corrupting the (time, seq) trace every golden test pins.
    ++past_clamped_;
    t = now_;
  }
  const std::uint32_t slot = allocate_record();
  EventRecord& rec = record(slot);
  rec.fn = std::move(fn);
  rec.period = 0;
  rec.pending = 1;
  rec.cancelled = false;
  queue_.push(HeapEntry{t, next_seq_++, slot, rec.generation});
  return EventHandle{this, slot, rec.generation};
}

EventHandle Simulator::every(Nanos start, Nanos period, InlineCallback fn) {
  if (period <= 0) {
    throw std::invalid_argument{"Simulator::every: non-positive period"};
  }
  const std::uint32_t slot = allocate_record();
  EventRecord& rec = record(slot);
  rec.fn = std::move(fn);
  rec.period = period;
  rec.pending = 1;
  rec.cancelled = false;
  queue_.push(HeapEntry{start, next_seq_++, slot, rec.generation});
  return EventHandle{this, slot, rec.generation};
}

void Simulator::execute_top(HeapEntry entry) {
  EventRecord& rec = record(entry.slot);
  if (rec.generation != entry.generation) {
    return;  // record already recycled (defensive; shouldn't happen)
  }
  --rec.pending;
  if (rec.cancelled) {
    if (rec.pending == 0) {
      retire_record(entry.slot);
    }
    return;
  }
  trace_hash_ = (trace_hash_ ^ static_cast<std::uint64_t>(entry.time)) *
                kFnvPrime;
  trace_hash_ = (trace_hash_ ^ entry.seq) * kFnvPrime;
  ++executed_;
  if (rec.period > 0) {
    // Periodic series: the record stays live across firings. The callback
    // may cancel its own series; re-check before rescheduling. The next
    // occurrence's seq is allocated here — after fn() returns — matching
    // the historical scheduling order exactly.
    rec.fn();
    if (!rec.cancelled) {
      ++rec.pending;
      queue_.push(HeapEntry{entry.time + rec.period, next_seq_++, entry.slot,
                            entry.generation});
    } else if (rec.pending == 0) {
      retire_record(entry.slot);
    }
    return;
  }
  // One-shot: move the callable out and retire the slot BEFORE invoking,
  // so a fired event holds no resources however many handle copies
  // survive, and a cancel() from inside the callback (or later) is a
  // clean generation-mismatch no-op.
  InlineCallback fn = std::move(rec.fn);
  retire_record(entry.slot);
  fn();
}

void Simulator::run_until(Nanos t_end) {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const HeapEntry top = queue_.top();
    if (top.time > t_end) {
      break;
    }
    queue_.pop();
    assert(top.time >= now_);
    now_ = top.time;
    execute_top(top);
  }
  // Normal return (drained or horizon reached): the clock lands exactly
  // on t_end so back-to-back segments see time advance monotonically.
  // A stop() exit leaves now_ at the stopping event — the remaining
  // queue has not run, and jumping to the horizon would let follow-up
  // schedules land after events that are still pending before t_end.
  if (!stopped_ && now_ < t_end) {
    now_ = t_end;
  }
}

void Simulator::run_all() {
  stopped_ = false;
  while (!queue_.empty() && !stopped_) {
    const HeapEntry top = queue_.top();
    queue_.pop();
    now_ = top.time;
    execute_top(top);
  }
}

void Simulator::cancel_event(std::uint32_t slot, std::uint64_t generation) {
  if (std::size_t(slot) >= chunks_.size() * kChunkRecords) {
    return;
  }
  EventRecord& rec = record(slot);
  if (rec.generation == generation) {
    rec.cancelled = true;
  }
}

bool Simulator::event_cancelled(std::uint32_t slot, std::uint64_t generation) {
  return event_state(slot, generation) == EventState::kCancelled;
}

EventState Simulator::event_state(std::uint32_t slot,
                                  std::uint64_t generation) {
  if (std::size_t(slot) >= chunks_.size() * kChunkRecords) {
    return EventState::kExpired;  // defensive: no such record was issued
  }
  EventRecord& rec = record(slot);
  if (rec.generation != generation) {
    // The record was retired (fired or reaped) and possibly reissued to
    // an unrelated event. The distinct answer matters: "expired" must
    // not read as "pending and healthy", and with 64-bit generations a
    // recycled slot can never alias back to this handle's generation.
    return EventState::kExpired;
  }
  return rec.cancelled ? EventState::kCancelled : EventState::kPending;
}

}  // namespace slingshot
