#include "sim/sharded.h"

#include <algorithm>
#include <stdexcept>

namespace slingshot {

namespace {
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kFnvSeed = 1469598103934665603ULL;
}  // namespace

ShardedSimulator::ShardedSimulator(Config config) : config_(config) {
  if (config_.window <= 0) {
    throw std::invalid_argument{"ShardedSimulator: non-positive window"};
  }
  if (config_.shards < 1) {
    config_.shards = 1;
  }
  if (config_.shards > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.shards);
  }
}

ShardedSimulator::~ShardedSimulator() = default;

int ShardedSimulator::add_island(Simulator* sim) {
  if (windows_ > 0) {
    throw std::logic_error{"ShardedSimulator: add_island after run"};
  }
  islands_.push_back(sim);
  outboxes_.emplace_back();
  return int(islands_.size()) - 1;
}

void ShardedSimulator::set_control_sink(
    std::function<void(const ControlMsg&)> sink) {
  control_sink_ = std::move(sink);
}

void ShardedSimulator::post_event(int src, int dst, Nanos not_before,
                                  InlineCallback fn) {
  Outbox& outbox = outboxes_.at(std::size_t(src));
  outbox.events.push_back(
      EventMsg{outbox.next_seq++, dst, not_before, std::move(fn)});
}

void ShardedSimulator::post_control(ControlMsg msg) {
  Outbox& outbox = outboxes_.at(std::size_t(msg.src_island));
  outbox.ctrl.push_back(SeqControlMsg{outbox.next_seq++, msg});
}

void ShardedSimulator::post_event_from_control(int dst, Nanos not_before,
                                               InlineCallback fn) {
  control_outbox_.events.push_back(EventMsg{control_outbox_.next_seq++, dst,
                                            not_before, std::move(fn)});
}

void ShardedSimulator::run_until(Nanos t_end) {
  while (now_ < t_end) {
    const Nanos w_end = std::min(now_ + config_.window, t_end);
    const std::size_t n = islands_.size();
    if (pool_ != nullptr && n > 1) {
      // Which worker runs which island is scheduling noise: islands
      // share no mutable state, and outbox writes are published to the
      // coordinating thread by the parallel_for join (the barrier).
      auto body = [&](std::size_t i, int) { islands_[i]->run_until(w_end); };
      pool_->parallel_for(n, body);
    } else {
      for (Simulator* island : islands_) {
        island->run_until(w_end);
      }
    }
    now_ = w_end;
    ++windows_;
    drain_barrier(w_end);
  }
}

void ShardedSimulator::drain_barrier(Nanos w_end) {
  // Phase 1: control messages, ascending (src island, seq). Outboxes
  // are appended in seq order, so per-source vectors are pre-sorted and
  // the global order is just source-major iteration. The sink may post
  // island-bound events; they land in the control outbox and are
  // sequenced after every island's events in phase 2.
  if (control_sink_) {
    for (Outbox& outbox : outboxes_) {
      for (SeqControlMsg& sc : outbox.ctrl) {
        ++ctrl_delivered_;
        control_sink_(sc.msg);
      }
    }
  }
  for (Outbox& outbox : outboxes_) {
    outbox.ctrl.clear();
  }
  // Phase 2: island-bound events, ascending (src island, seq), control
  // source last. Scheduling happens here on the coordinating thread, so
  // each destination's seq numbers — and with them its (time, seq)
  // trace — depend only on the posted messages, never on thread timing.
  for (Outbox& outbox : outboxes_) {
    deliver_events(outbox, w_end);
  }
  deliver_events(control_outbox_, w_end);
}

void ShardedSimulator::deliver_events(Outbox& outbox, Nanos w_end) {
  for (EventMsg& msg : outbox.events) {
    Simulator* dst = islands_.at(std::size_t(msg.dst));
    dst->at(std::max(w_end, msg.not_before), std::move(msg.fn));
    ++delivered_;
  }
  outbox.events.clear();
}

std::uint64_t ShardedSimulator::total_executed() const {
  std::uint64_t total = 0;
  for (const Simulator* island : islands_) {
    total += island->executed_events();
  }
  return total;
}

std::uint64_t ShardedSimulator::fingerprint() const {
  std::uint64_t h = kFnvSeed;
  for (const Simulator* island : islands_) {
    h = (h ^ island->trace_hash()) * kFnvPrime;
    h = (h ^ island->executed_events()) * kFnvPrime;
  }
  return h;
}

}  // namespace slingshot
