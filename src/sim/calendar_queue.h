// Calendar queue for the discrete-event scheduler: a two-tier timing
// wheel that replaces the binary heap's O(log n) comparator traffic
// with O(1) bucketed inserts while preserving the heap's EXACT
// (time, seq) total order — the golden-trace fingerprints pin that
// contract, so this structure must be a drop-in reorder-free swap.
//
// Layout. Virtual time (non-negative nanoseconds) is quantized into
// power-of-two buckets of width W = 2^log2_bucket_ns; a ring of
// B = 2^log2_buckets vectors covers the sliding window
// [cur, cur + B) of bucket numbers (bucket(t) = t >> log2_bucket_ns,
// ring index = bucket & (B - 1)). With the defaults (W = 131.072 us,
// about a quarter TTI; B = 256) the window spans ~33.6 ms, far beyond
// the horizon the testbed schedules into; anything later goes to a
// spill-over min-heap and migrates into the ring as the window slides.
//
// Ordering argument. Every ring vector holds entries of exactly one
// bucket number (the window invariant: all ring entries lie in
// [cur, cur + B), so ring indexes never alias two "laps" at once).
// A bucket is kept unsorted while it is in the future — inserts are
// plain O(1) appends — and is heapified by (time, seq) only when the
// cursor enters it; pops then come out of that heap. Buckets are
// visited in increasing bucket-number order and an earlier bucket
// strictly precedes a later one in time, so the pop sequence is the
// global (time, seq) ascending order, identical to the old
// std::priority_queue. Two edge rules keep the invariant airtight:
//  * overflow entries migrate into the ring the moment the advancing
//    cursor brings them inside the window (they can never be the
//    minimum while still outside it: any in-ring entry has a strictly
//    smaller bucket number);
//  * a push BEHIND the cursor (legal: after run_until() drains early,
//    the clock jumps to the horizon but the cursor rests at the next
//    pending bucket, and a fresh schedule may land in between) pulls
//    the cursor back and spills the ring entries the narrowed window
//    no longer covers back to the overflow heap. Pull-backs only
//    happen between run segments, never while the loop is popping, so
//    the O(B) respill scan stays off the hot path.
//
// Cancellation is untouched: the simulator's generation-checked lazy
// cancellation never removes queue entries, so the calendar queue
// needs no erase operation and the slab EventRecord machinery works
// unchanged.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <queue>
#include <vector>

#include "common/time.h"

namespace slingshot {

struct CalendarConfig {
  int log2_bucket_ns = 17;  // 131.072 us buckets (~ TTI / 4)
  int log2_buckets = 8;     // 256-bucket ring, ~33.6 ms window
};

// Entry must expose `.time` (non-negative Nanos) and `.seq`, with
// operator> realizing the strict (time, seq) order.
template <typename Entry>
class CalendarQueue {
 public:
  CalendarQueue() { apply_config(CalendarConfig{}); }

  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] CalendarConfig config() const { return cfg_; }

  // Reconfigure the bucket geometry. Valid at any time: pending
  // entries are drained and re-filed under the new layout (the pop
  // order is a pure function of (time, seq), so a rebuild cannot
  // change it).
  void set_config(CalendarConfig cfg) {
    std::vector<Entry> pending;
    pending.reserve(size_);
    for (auto& bucket : buckets_) {
      pending.insert(pending.end(), bucket.begin(), bucket.end());
    }
    while (!overflow_.empty()) {
      pending.push_back(overflow_.top());
      overflow_.pop();
    }
    apply_config(cfg);
    for (const Entry& e : pending) {
      push(e);
    }
  }

  void push(const Entry& e) {
    const std::uint64_t bn = bucket_of(e.time);
    if (bn < cur_) {
      pull_back(bn);
    }
    if (bn < cur_ + num_buckets()) {
      auto& bucket = buckets_[bn & mask_];
      bucket.push_back(e);
      if (bn == cur_ && cur_heaped_) {
        std::push_heap(bucket.begin(), bucket.end(), Greater{});
      }
      ++ring_size_;
    } else {
      overflow_.push(e);
    }
    ++size_;
  }

  // Smallest entry by (time, seq). Requires !empty().
  [[nodiscard]] const Entry& top() {
    advance_to_min();
    return buckets_[cur_ & mask_].front();
  }

  void pop() {
    advance_to_min();
    auto& bucket = buckets_[cur_ & mask_];
    std::pop_heap(bucket.begin(), bucket.end(), Greater{});
    bucket.pop_back();
    --ring_size_;
    --size_;
  }

 private:
  struct Greater {
    bool operator()(const Entry& a, const Entry& b) const { return a > b; }
  };

  [[nodiscard]] std::uint64_t num_buckets() const { return mask_ + 1; }
  [[nodiscard]] std::uint64_t bucket_of(Nanos t) const {
    return std::uint64_t(t) >> log2_w_;
  }

  void apply_config(CalendarConfig cfg) {
    cfg_ = cfg;
    log2_w_ = cfg.log2_bucket_ns;
    mask_ = (std::uint64_t(1) << cfg.log2_buckets) - 1;
    buckets_.assign(std::size_t(mask_) + 1, {});
    cur_ = 0;
    cur_heaped_ = false;
    ring_size_ = 0;
    size_ = 0;
  }

  // Move the cursor to the bucket holding the global minimum,
  // heapifying it on entry. Requires size_ > 0. Each empty bucket is
  // skipped with one vector-empty check; when the ring is empty the
  // cursor jumps straight to the earliest overflow bucket, so the scan
  // is bounded by the window span, not by the gap to the next event.
  void advance_to_min() {
    for (;;) {
      auto& bucket = buckets_[cur_ & mask_];
      if (!bucket.empty()) {
        if (!cur_heaped_) {
          std::make_heap(bucket.begin(), bucket.end(), Greater{});
          cur_heaped_ = true;
        }
        return;
      }
      cur_heaped_ = false;
      if (ring_size_ == 0) {
        cur_ = bucket_of(overflow_.top().time);
      } else {
        ++cur_;
      }
      migrate_overflow();
    }
  }

  // Restore the overflow invariant (overflow entries lie at or beyond
  // cur + B) after the cursor moved forward.
  void migrate_overflow() {
    const std::uint64_t horizon = cur_ + num_buckets();
    while (!overflow_.empty() && bucket_of(overflow_.top().time) < horizon) {
      const Entry& e = overflow_.top();
      buckets_[bucket_of(e.time) & mask_].push_back(e);
      ++ring_size_;
      overflow_.pop();
    }
  }

  // A push landed behind the cursor. Rewind the window to start at
  // `bn` and respill every ring entry the narrowed window no longer
  // covers (its ring index would otherwise alias a nearer bucket and
  // could surface out of order). Each vector holds a single bucket
  // number, so whole vectors spill or stay.
  void pull_back(std::uint64_t bn) {
    const std::uint64_t horizon = bn + num_buckets();
    cur_ = bn;
    cur_heaped_ = false;
    if (ring_size_ > 0) {
      for (auto& bucket : buckets_) {
        if (!bucket.empty() && bucket_of(bucket.front().time) >= horizon) {
          for (const Entry& e : bucket) {
            overflow_.push(e);
          }
          ring_size_ -= bucket.size();
          bucket.clear();
        }
      }
    }
  }

  CalendarConfig cfg_{};
  int log2_w_ = 17;
  std::uint64_t mask_ = 255;
  std::uint64_t cur_ = 0;      // bucket number the window starts at
  bool cur_heaped_ = false;    // buckets_[cur_ & mask_] is a valid heap
  std::size_t ring_size_ = 0;  // entries in the ring (excl. overflow)
  std::size_t size_ = 0;
  std::vector<std::vector<Entry>> buckets_;
  std::priority_queue<Entry, std::vector<Entry>, Greater> overflow_;
};

}  // namespace slingshot
