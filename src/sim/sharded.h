// Sharded deterministic simulation: N independent event islands advance
// in lockstep time windows under a conservative barrier.
//
// An *island* is a self-contained Simulator — its own event queue, RNG
// streams, and (time, seq) trace hash. The partition into islands is
// fixed by the workload (one per cell group in the testbed), NOT by the
// shard count: `shards` only controls how many worker threads execute
// islands concurrently. That split is what makes the determinism
// contract cheap to state — each island's golden trace is a function of
// its own initial state plus the sequenced messages delivered to it, so
// it is bit-identical at every shard count, and a `--shards 1` run is
// the reference a `--shards N` run must reproduce exactly.
//
// Conservative windowing: run_until advances all islands window by
// window (window = one TTI for the vRAN testbed). Within a window every
// island executes serially on whichever worker claimed it; no island
// may start window k+1 until all islands finish window k (the
// parallel_for join is the barrier). Cross-island interaction is only
// allowed through the sequenced mailbox below, never through shared
// mutable state, so intra-window execution is embarrassingly parallel.
//
// Sequenced mailbox: during its window, island `src` may post
//   * island-bound events  — post_event(src, dst, not_before, fn)
//   * control messages     — post_control({src, kind, ...})
// into its own outbox (thread-confined: only the worker currently
// running `src` appends, and the barrier join publishes the writes).
// At the barrier the coordinator thread drains all outboxes in a fixed
// global order — ascending (source island, per-source seq) — first
// handing control messages to the control sink (which may respond with
// post_event_from_control), then scheduling island-bound events on
// their destination simulators at max(window end, not_before). Because
// drain order, delivery times, and therefore every destination-side seq
// number depend only on what was posted — not on which thread ran which
// island when — the mailbox preserves bit-identical traces at any shard
// count. Messages posted in window k are visible at the start of window
// k+1 at the earliest; senders that need a minimum latency pass it via
// `not_before`.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/threadpool.h"
#include "common/time.h"
#include "sim/simulator.h"

namespace slingshot {

// Cross-island control envelope delivered to the control sink at window
// barriers, in (src_island, seq) order. `kind` and the payload words
// are defined by the sink's owner (see core/shard_coord.h for the vRAN
// testbed's vocabulary); the engine treats them as opaque.
struct ControlMsg {
  int src_island = -1;
  std::uint32_t kind = 0;
  std::uint64_t a = 0;  // payload word (e.g. a PhyId value)
  std::uint64_t b = 0;  // payload word
  Nanos time = 0;       // island-local virtual time when posted
};

class ShardedSimulator {
 public:
  struct Config {
    // Barrier granularity. One TTI for the vRAN testbed: cross-island
    // traffic is control-plane only and tolerates one-window latency.
    Nanos window = 500'000;
    // Worker threads executing islands concurrently (1 = serial).
    // Parallelism only — never affects any simulation outcome.
    int shards = 1;
  };

  explicit ShardedSimulator(Config config);
  ~ShardedSimulator();

  ShardedSimulator(const ShardedSimulator&) = delete;
  ShardedSimulator& operator=(const ShardedSimulator&) = delete;

  // Register an island. Islands must all be registered before the first
  // run_until, and must outlive the engine run. Returns the island
  // index used for mailbox addressing.
  int add_island(Simulator* sim);

  // Control-message consumer, invoked at window barriers on the
  // coordinating thread with messages in (src island, seq) order. The
  // sink may call post_event_from_control; it must not post further
  // control messages (there is no later drain phase to sequence them).
  void set_control_sink(std::function<void(const ControlMsg&)> sink);

  // ---- Mailbox: called from island code during its window ----
  // Deliver `fn` on island `dst` at max(current window end, not_before).
  void post_event(int src, int dst, Nanos not_before, InlineCallback fn);
  // Hand a control message to the sink at the next barrier.
  void post_control(ControlMsg msg);

  // ---- Mailbox: called from the control sink during a barrier ----
  // Control-sourced events are sequenced after every island's outbox
  // (the control island is source index num_islands()).
  void post_event_from_control(int dst, Nanos not_before, InlineCallback fn);

  // Advance all islands to t_end in lockstep windows, draining the
  // mailbox at every barrier. On return every island's now() == t_end.
  void run_until(Nanos t_end);

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] int num_islands() const { return int(islands_.size()); }
  [[nodiscard]] int shards() const { return config_.shards; }
  [[nodiscard]] Nanos window() const { return config_.window; }
  [[nodiscard]] std::uint64_t windows_run() const { return windows_; }
  [[nodiscard]] std::uint64_t events_delivered() const { return delivered_; }
  [[nodiscard]] std::uint64_t control_delivered() const {
    return ctrl_delivered_;
  }

  // ---- Determinism fingerprints ----
  [[nodiscard]] std::uint64_t island_trace_hash(int island) const {
    return islands_.at(std::size_t(island))->trace_hash();
  }
  [[nodiscard]] std::uint64_t island_executed(int island) const {
    return islands_.at(std::size_t(island))->executed_events();
  }
  [[nodiscard]] std::uint64_t total_executed() const;
  // Fold of the per-island trace hashes in island order — one number
  // that must match across shard counts.
  [[nodiscard]] std::uint64_t fingerprint() const;

 private:
  struct EventMsg {
    std::uint64_t seq = 0;
    int dst = -1;
    Nanos not_before = 0;
    InlineCallback fn;
  };
  struct SeqControlMsg {
    std::uint64_t seq = 0;
    ControlMsg msg;
  };
  // Per-source message staging. Appended only by the worker currently
  // executing the source island (or, for the control outbox, by the
  // coordinating thread inside a barrier), drained only at barriers.
  struct Outbox {
    std::uint64_t next_seq = 0;
    std::vector<EventMsg> events;
    std::vector<SeqControlMsg> ctrl;
  };

  void drain_barrier(Nanos w_end);
  void deliver_events(Outbox& outbox, Nanos w_end);

  Config config_;
  Nanos now_ = 0;
  std::vector<Simulator*> islands_;
  std::vector<Outbox> outboxes_;  // index i = island i's outbox
  Outbox control_outbox_;         // source index num_islands()
  std::function<void(const ControlMsg&)> control_sink_;
  std::unique_ptr<ThreadPool> pool_;  // null when shards <= 1
  std::uint64_t windows_ = 0;
  std::uint64_t delivered_ = 0;
  std::uint64_t ctrl_delivered_ = 0;
};

}  // namespace slingshot
