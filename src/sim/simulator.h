// Discrete-event simulator.
//
// The whole testbed — RU, switch, PHY/L2 servers, UEs, traffic apps —
// runs as callbacks scheduled on a single virtual clock with nanosecond
// resolution. Events at the same timestamp execute in scheduling order
// (FIFO tie-break), which keeps runs fully deterministic.
//
// Hot-path design: scheduling an event allocates nothing in the common
// case. Callables live in slab-allocated event records (recycled through
// a free list, stable addresses) inside a small-buffer-optimized
// InlineCallback — no per-event std::function heap traffic — and
// cancellation is a generation counter on the record rather than a
// shared_ptr<bool> flag, so a fired event releases its resources
// immediately no matter how many handle copies survive. Events are
// ordered by a calendar queue (sim/calendar_queue.h): O(1) bucketed
// inserts on the TTI-quantized timeline instead of a binary heap's
// O(log n) comparator traffic, popping in strictly the same (time, seq)
// order as before; the golden-trace determinism test pins that
// contract.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/threadpool.h"
#include "common/time.h"
#include "sim/calendar_queue.h"

namespace slingshot {

class Simulator;

// Move-only callable with inline storage for typical capture sets.
// Callables larger than the inline buffer (or with throwing moves) fall
// back to a single heap allocation.
class InlineCallback {
 public:
  static constexpr std::size_t kInlineSize = 128;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);

  InlineCallback() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::remove_cvref_t<F>, InlineCallback> &&
                std::is_invocable_r_v<void, std::remove_cvref_t<F>&>>>
  InlineCallback(F&& f) {  // NOLINT(google-explicit-constructor)
    using Fn = std::remove_cvref_t<F>;
    if constexpr (sizeof(Fn) <= kInlineSize &&
                  alignof(Fn) <= kInlineAlign &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
      vt_ = inline_vtable<Fn>();
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(f)));
      vt_ = heap_vtable<Fn>();
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { move_from(other); }
  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;
  ~InlineCallback() { reset(); }

  void operator()() { vt_->invoke(buf_); }
  [[nodiscard]] explicit operator bool() const { return vt_ != nullptr; }

  void reset() {
    if (vt_ != nullptr) {
      vt_->destroy(buf_);
      vt_ = nullptr;
    }
  }

 private:
  struct VTable {
    void (*invoke)(void*);
    void (*move_to)(void* src, void* dst);  // dst is raw storage
    void (*destroy)(void*);
  };

  template <typename Fn>
  static const VTable* inline_vtable() {
    static constexpr VTable vt{
        [](void* p) { (*std::launder(reinterpret_cast<Fn*>(p)))(); },
        [](void* src, void* dst) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        },
        [](void* p) { std::launder(reinterpret_cast<Fn*>(p))->~Fn(); }};
    return &vt;
  }

  template <typename Fn>
  static const VTable* heap_vtable() {
    static constexpr VTable vt{
        [](void* p) { (**std::launder(reinterpret_cast<Fn**>(p)))(); },
        [](void* src, void* dst) {
          Fn** s = std::launder(reinterpret_cast<Fn**>(src));
          ::new (dst) Fn*(*s);
        },
        [](void* p) { delete *std::launder(reinterpret_cast<Fn**>(p)); }};
    return &vt;
  }

  void move_from(InlineCallback& other) noexcept {
    vt_ = other.vt_;
    if (vt_ != nullptr) {
      vt_->move_to(other.buf_, buf_);
      other.vt_ = nullptr;
    }
  }

  alignas(kInlineAlign) unsigned char buf_[kInlineSize];
  const VTable* vt_ = nullptr;
};

// Lifecycle answer for an EventHandle query. kExpired is the distinct
// "this occurrence is over" state: the record behind the handle has been
// recycled (the event fired, or a cancelled record was reaped), so the
// handle can say nothing about whatever event now occupies the slot.
// Before this state existed, a recycled record answered cancelled() ==
// false — indistinguishable from "pending and healthy", and one 32-bit
// generation wrap away from an ABA false positive against a live event.
enum class EventState : std::uint8_t {
  kInvalid,    // default-constructed handle, no simulator behind it
  kPending,    // scheduled and will fire (or periodic series running)
  kCancelled,  // cancel() took effect; the occurrence will not fire
  kExpired,    // record recycled: fired, reaped, or slot reused
};

// Handle for a scheduled event; allows cancellation. Copyable; all
// copies refer to the same scheduled occurrence (or periodic series).
// A handle must not outlive its Simulator. cancelled() reports true
// while a cancelled occurrence is still pending in the queue; once the
// event fires or is reaped, its record is recycled and the handle
// reports kExpired — cancel() through it is a generation-mismatch no-op
// even after the slot is handed to a new event. Generations are 64-bit
// precisely so that slot reuse through the free list can never wrap a
// stale handle back onto a live event's generation (the ABA a 32-bit
// counter left open). Nothing is kept alive by surviving handle copies.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel();
  [[nodiscard]] bool valid() const { return sim_ != nullptr; }
  // True only while a cancelled occurrence is still pending in the
  // queue. A recycled record answers kExpired via state(), not true
  // here — "expired" and "cancelled" are different answers.
  [[nodiscard]] bool cancelled() const;
  [[nodiscard]] EventState state() const;

 private:
  friend class Simulator;
  EventHandle(Simulator* sim, std::uint32_t slot, std::uint64_t generation)
      : sim_(sim), slot_(slot), generation_(generation) {}

  Simulator* sim_ = nullptr;
  std::uint32_t slot_ = 0;
  std::uint64_t generation_ = 0;
};

namespace obs {
class Observability;
}  // namespace obs

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1)
      : rng_(seed) {}

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] const RngRegistry& rng() const { return rng_; }

  // Observability anchor (see obs/obs.h). Forward-declared on purpose:
  // the sim core never depends on the obs library. Null by default —
  // every SLS_TRACE_* site null-checks, so an unattached sim pays one
  // predictable branch per site and nothing else. The tracer is a
  // passive observer; attaching it must not change event order.
  void set_obs(obs::Observability* o) { obs_ = o; }
  [[nodiscard]] obs::Observability* obs() const { return obs_; }

  // Optional fork-join worker pool for intra-event data parallelism
  // (see common/threadpool.h). Null by default: run_parallel degrades
  // to a serial loop and the simulator stays strictly single-threaded.
  // The pool must outlive the simulator run. Attaching a pool must not
  // change any simulation outcome — tasks handed to run_parallel are
  // pure functions of pre-staged inputs writing disjoint result slots,
  // so the event stream, the (time, seq) trace hash, and every decode
  // result are bit-identical at every worker count. Observability and
  // fault-injection hooks keep working unmodified because they only
  // ever run on the event-loop thread: the fork and the join both
  // happen inside the currently-executing event.
  void set_thread_pool(ThreadPool* pool) { pool_ = pool; }
  [[nodiscard]] ThreadPool* thread_pool() const { return pool_; }
  // Worker count run_parallel will fan out to (1 when no pool).
  [[nodiscard]] int parallel_workers() const {
    return pool_ != nullptr ? pool_->num_workers() : 1;
  }

  // Run body(task_index, worker_id) for every index in [0, n) and join
  // before returning. Serial in task order when no pool is attached.
  template <typename Body>
  void run_parallel(std::size_t n, Body&& body) {
    if (pool_ != nullptr) {
      pool_->parallel_for(n, std::forward<Body>(body));
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        body(i, 0);
      }
    }
  }

  // Schedule `fn` at absolute virtual time `t` (must be >= now). A
  // past-time `t` is CLAMPED to now(): the event fires at the current
  // time, after events already scheduled there, never behind the clock.
  // Before this was enforced a past-time schedule silently landed
  // behind now_ — the heap still popped it, executing it out of causal
  // order and corrupting the (time, seq) trace. Clamps are counted in
  // past_schedules_clamped() so tests (and the sharded barrier loop)
  // can assert the path stays cold; there is deliberately no hard
  // assert so the clamp contract is testable in every build type.
  EventHandle at(Nanos t, InlineCallback fn);
  // Schedule `fn` after a delay from now.
  EventHandle after(Nanos delay, InlineCallback fn) {
    return at(now_ + delay, std::move(fn));
  }
  // Schedule `fn` every `period`, starting at `start`. Returns a handle
  // that cancels all future occurrences.
  EventHandle every(Nanos start, Nanos period, InlineCallback fn);

  // Run until the event queue drains or virtual time would pass `t_end`.
  // On normal return now() == t_end even when the queue drained early,
  // so back-to-back run_until segments (the sharded barrier loop issues
  // one per TTI window) always see time advance to each horizon instead
  // of standing still at the last executed event. After stop(), now()
  // stays at the stopping event's timestamp — the clock must not
  // teleport past events that never ran.
  void run_until(Nanos t_end);
  // Run until the queue is empty (use with care: periodic tasks never
  // drain; prefer run_until).
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }
  // Past-time at() calls that were clamped to now(). Healthy schedules
  // never clamp; a nonzero value flags a caller computing stale times.
  [[nodiscard]] std::uint64_t past_schedules_clamped() const {
    return past_clamped_;
  }
  // True when the last run_until/run_all exited via stop() rather than
  // reaching its horizon or draining.
  [[nodiscard]] bool stopped() const { return stopped_; }
  // FNV-1a-style hash over the (time, seq) of every executed event, in
  // execution order — the determinism fingerprint the golden-trace test
  // compares across refactors.
  [[nodiscard]] std::uint64_t trace_hash() const { return trace_hash_; }

  // Stop the current run_until loop after the in-flight event returns.
  void stop() { stopped_ = true; }

  // Calendar-queue bucket geometry (tests/tuning). Safe at any time —
  // pending events are re-filed under the new layout — and provably
  // order-neutral: the pop order is a pure function of (time, seq)
  // regardless of geometry, which the golden-trace pins verify at
  // several widths.
  void set_calendar_config(CalendarConfig cfg) { queue_.set_config(cfg); }
  [[nodiscard]] CalendarConfig calendar_config() const {
    return queue_.config();
  }

 private:
  friend class EventHandle;

  // One scheduled occurrence (or periodic series). Records live in
  // fixed-size slab chunks — stable addresses — and are recycled through
  // a free list once no heap entry references them.
  struct EventRecord {
    InlineCallback fn;
    Nanos period = 0;  // > 0 for a periodic series
    // 64-bit: bumped on every retire, so a recycled slot can never
    // revisit a generation an outstanding handle still holds (ABA).
    std::uint64_t generation = 0;
    std::uint32_t pending = 0;  // queue entries referencing this record
    bool cancelled = false;
  };

  struct HeapEntry {
    Nanos time;
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint64_t generation;
    // Strict (time, seq) order for the calendar queue's bucket heaps.
    bool operator>(const HeapEntry& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  static constexpr std::size_t kChunkRecords = 256;

  [[nodiscard]] EventRecord& record(std::uint32_t slot) {
    return chunks_[slot / kChunkRecords][slot % kChunkRecords];
  }
  std::uint32_t allocate_record();
  void retire_record(std::uint32_t slot);
  void execute_top(HeapEntry entry);

  void cancel_event(std::uint32_t slot, std::uint64_t generation);
  [[nodiscard]] bool event_cancelled(std::uint32_t slot,
                                     std::uint64_t generation);
  [[nodiscard]] EventState event_state(std::uint32_t slot,
                                       std::uint64_t generation);

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  std::uint64_t past_clamped_ = 0;
  std::uint64_t trace_hash_ = 1469598103934665603ULL;  // hash seed
  bool stopped_ = false;
  CalendarQueue<HeapEntry> queue_;
  std::vector<std::unique_ptr<EventRecord[]>> chunks_;
  std::vector<std::uint32_t> free_slots_;
  RngRegistry rng_;
  obs::Observability* obs_ = nullptr;
  ThreadPool* pool_ = nullptr;
};

inline void EventHandle::cancel() {
  if (sim_ != nullptr) {
    sim_->cancel_event(slot_, generation_);
  }
}

inline bool EventHandle::cancelled() const {
  return sim_ != nullptr && sim_->event_cancelled(slot_, generation_);
}

inline EventState EventHandle::state() const {
  return sim_ == nullptr ? EventState::kInvalid
                         : sim_->event_state(slot_, generation_);
}

}  // namespace slingshot
