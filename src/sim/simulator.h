// Discrete-event simulator.
//
// The whole testbed — RU, switch, PHY/L2 servers, UEs, traffic apps —
// runs as callbacks scheduled on a single virtual clock with nanosecond
// resolution. Events at the same timestamp execute in scheduling order
// (FIFO tie-break), which keeps runs fully deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace slingshot {

class Simulator;

// Handle for a scheduled event; allows cancellation. Copyable; all
// copies refer to the same scheduled occurrence.
class EventHandle {
 public:
  EventHandle() = default;

  void cancel() {
    if (cancelled_) {
      *cancelled_ = true;
    }
  }
  [[nodiscard]] bool valid() const { return cancelled_ != nullptr; }
  [[nodiscard]] bool cancelled() const { return cancelled_ && *cancelled_; }

 private:
  friend class Simulator;
  explicit EventHandle(std::shared_ptr<bool> flag)
      : cancelled_(std::move(flag)) {}
  std::shared_ptr<bool> cancelled_;
};

class Simulator {
 public:
  explicit Simulator(std::uint64_t seed = 1)
      : rng_(seed) {}

  [[nodiscard]] Nanos now() const { return now_; }
  [[nodiscard]] const RngRegistry& rng() const { return rng_; }

  // Schedule `fn` at absolute virtual time `t` (must be >= now).
  EventHandle at(Nanos t, std::function<void()> fn);
  // Schedule `fn` after a delay from now.
  EventHandle after(Nanos delay, std::function<void()> fn) {
    return at(now_ + delay, std::move(fn));
  }
  // Schedule `fn` every `period`, starting at `start`. Returns a handle
  // that cancels all future occurrences.
  EventHandle every(Nanos start, Nanos period, std::function<void()> fn);

  // Run until the event queue drains or virtual time would pass `t_end`.
  void run_until(Nanos t_end);
  // Run until the queue is empty (use with care: periodic tasks never
  // drain; prefer run_until).
  void run_all();

  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }
  [[nodiscard]] std::uint64_t executed_events() const { return executed_; }

  // Stop the current run_until loop after the in-flight event returns.
  void stop() { stopped_ = true; }

 private:
  struct Event {
    Nanos time;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
    // Min-heap by (time, seq).
    bool operator>(const Event& other) const {
      return time != other.time ? time > other.time : seq > other.seq;
    }
  };

  Nanos now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
  bool stopped_ = false;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  RngRegistry rng_;
};

}  // namespace slingshot
