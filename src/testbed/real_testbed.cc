#include "testbed/real_testbed.h"

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>
#include <utility>

#include "common/pool.h"
#include "testbed/testbed.h"
#include "transport/shm_ring.h"
#include "transport/udp_endpoint.h"
#include "transport/wallclock_pacer.h"

namespace slingshot {
namespace {

// Wall slots past run_slots during which roles keep draining so
// in-flight indications land before everyone exits.
constexpr std::int64_t kGraceSlots = 40;
// Slots before run end at which the relay's silence detector disarms
// (the wind-down is silent by design, not a failure).
constexpr std::int64_t kDetectorDisarmSlots = 6;
// Lead time between launch and the shared epoch, so every role is up
// and parked on wait_slot(0) before slot 0 begins.
constexpr std::int64_t kEpochLeadNs = 30'000'000;

constexpr RuId kRu{1};
constexpr UeId kUe{1};

using Kv = std::vector<std::pair<std::string, std::string>>;

void put(Kv& kv, const std::string& key, std::int64_t value) {
  kv.emplace_back(key, std::to_string(value));
}

std::int64_t get_i64(const Kv& kv, const std::string& key,
                     std::int64_t fallback) {
  for (const auto& [k, v] : kv) {
    if (k == key) {
      return std::strtoll(v.c_str(), nullptr, 10);
    }
  }
  return fallback;
}

// Everything the launcher wires up before spawning roles. Endpoints are
// value members opened pre-fork (children inherit the descriptors);
// rings are MAP_SHARED handles valid in every process.
struct Net {
  UdpEndpoint l2;
  UdpEndpoint orion;
  std::vector<UdpEndpoint> phys;
  ShmRing l2_to_orion;
  ShmRing orion_to_l2;
  std::vector<ShmRing> orion_to_phy;
  std::vector<ShmRing> phy_to_orion;
};

void send_fapi(UdpEndpoint& from, std::uint16_t to_port,
               const FapiMessage& msg, std::vector<std::uint8_t>& scratch) {
  serialize_fapi_into(msg, scratch);
  from.send_to(to_port, scratch);
}

FapiMessage make_real_dl_tti(std::int64_t slot) {
  DlTtiRequest req;
  req.pdus.push_back(TtiPdu{kUe, 10, 64, HarqId{0}, true});
  return FapiMessage{kRu, slot, std::move(req)};
}

FapiMessage make_real_ul_tti(std::int64_t slot) {
  UlTtiRequest req;
  req.pdus.push_back(TtiPdu{kUe, 10, 64, HarqId{0}, true});
  return FapiMessage{kRu, slot, std::move(req)};
}

// ---- L2 role ----------------------------------------------------------
// Paces the run: one DL_TTI + UL_TTI pair per wall slot plus a TX_DATA
// record on the SHM ring, while draining indications and measuring the
// CRC-flow gaps that define the user-visible outage.
Kv l2_role(const RealTestbedConfig& cfg, Net& net, std::int64_t epoch) {
  WallclockPacer pacer{{epoch, cfg.tti_ns}};
  std::vector<std::uint8_t> scratch;
  const std::uint16_t orion_port = net.orion.port();

  send_fapi(net.l2, orion_port,
            FapiMessage{kRu, 0, ConfigRequest{CarrierConfig{kRu}}}, scratch);
  send_fapi(net.l2, orion_port, FapiMessage{kRu, 0, StartRequest{kRu}},
            scratch);

  std::uint64_t crcs = 0;
  std::uint64_t rx_records = 0;
  std::uint64_t error_inds = 0;
  std::int64_t last_crc_wall = -1;
  std::int64_t last_crc_slot = -1;
  std::int64_t max_gap = 0;
  std::vector<std::uint8_t> rx;
  std::vector<std::uint8_t> record;

  auto drain = [&](int timeout_ms) {
    for (;;) {
      const int n = net.l2.recv(rx, timeout_ms);
      timeout_ms = 0;  // only the first receive of a batch may block
      if (n <= 0) {
        break;
      }
      FapiMessage msg;
      if (!try_parse_fapi(rx, msg)) {
        continue;  // corrupt bytes already counted process-wide
      }
      if (msg.type() == FapiMsgType::kCrcIndication) {
        const std::int64_t now = WallclockPacer::now_ns();
        if (last_crc_wall >= 0 && now - last_crc_wall > max_gap) {
          max_gap = now - last_crc_wall;
        }
        last_crc_wall = now;
        last_crc_slot = msg.slot;
        ++crcs;
      } else if (msg.type() == FapiMsgType::kErrorIndication) {
        ++error_inds;
      }
    }
    while (net.orion_to_l2.pop(record)) {
      ++rx_records;
    }
  };

  const std::vector<std::uint8_t> payload(64, 0xAB);
  for (std::int64_t slot = 0; slot < cfg.run_slots; ++slot) {
    pacer.wait_slot(std::uint64_t(slot));
    send_fapi(net.l2, orion_port, make_real_dl_tti(slot), scratch);
    send_fapi(net.l2, orion_port, make_real_ul_tti(slot), scratch);
    net.l2_to_orion.push(payload);
    drain(0);
  }
  const std::int64_t end =
      epoch + (cfg.run_slots + kGraceSlots) * cfg.tti_ns;
  while (WallclockPacer::now_ns() < end) {
    drain(1);
  }

  Kv kv;
  put(kv, "crcs", std::int64_t(crcs));
  put(kv, "rx_records", std::int64_t(rx_records));
  put(kv, "error_inds", std::int64_t(error_inds));
  put(kv, "last_crc_slot", last_crc_slot);
  put(kv, "max_gap_ns", max_gap);
  put(kv, "overruns", std::int64_t(pacer.overruns()));
  return kv;
}

// ---- PHY role ---------------------------------------------------------
// Event-driven: answers real UL_TTI with a CRC indication plus an
// RX_DATA ring record, nulls with a slot indication, and drains its TX
// ring. `frozen` is the inproc analogue of SIGKILL: once set the role
// stops touching its socket and rings, so the outside world sees the
// exact silence a dead process produces.
Kv phy_role(const RealTestbedConfig& cfg, Net& net, std::size_t index,
            std::int64_t epoch, const std::atomic<bool>* frozen) {
  const std::int64_t end =
      epoch + (cfg.run_slots + kGraceSlots) * cfg.tti_ns;
  std::vector<std::uint8_t> scratch;
  std::vector<std::uint8_t> rx;
  std::vector<std::uint8_t> record;
  const std::vector<std::uint8_t> rx_payload(32, 0xCD);
  std::uint64_t real_ul = 0;
  std::uint64_t nulls = 0;
  std::uint64_t tx_records = 0;
  std::int64_t killed = 0;
  UdpEndpoint& ep = net.phys[index];
  const std::uint16_t orion_port = net.orion.port();

  while (WallclockPacer::now_ns() < end) {
    if (frozen != nullptr && frozen->load(std::memory_order_acquire)) {
      killed = 1;
      break;
    }
    const int n = ep.recv(rx, 1);
    while (net.orion_to_phy[index].pop(record)) {
      ++tx_records;
    }
    if (n <= 0) {
      continue;
    }
    if (frozen != nullptr && frozen->load(std::memory_order_acquire)) {
      killed = 1;  // died while the datagram was in flight: never reply
      break;
    }
    FapiMessage msg;
    if (!try_parse_fapi(rx, msg)) {
      continue;
    }
    switch (msg.type()) {
      case FapiMsgType::kUlTtiRequest: {
        const auto& req = std::get<UlTtiRequest>(msg.body);
        if (req.pdus.empty()) {
          ++nulls;
          send_fapi(ep, orion_port,
                    FapiMessage{msg.ru, msg.slot, SlotIndication{}}, scratch);
        } else {
          ++real_ul;
          CrcIndication crc;
          crc.entries.push_back(CrcEntry{kUe, HarqId{0}, true, 20.0F});
          send_fapi(ep, orion_port,
                    FapiMessage{msg.ru, msg.slot, std::move(crc)}, scratch);
          net.phy_to_orion[index].push(rx_payload);
        }
        break;
      }
      case FapiMsgType::kConfigRequest: {
        send_fapi(ep, orion_port,
                  FapiMessage{msg.ru, msg.slot, ConfigResponse{msg.ru, true}},
                  scratch);
        break;
      }
      default:
        break;  // DL_TTI/START/STOP consume no reply in this harness
    }
  }

  Kv kv;
  put(kv, "real_ul", std::int64_t(real_ul));
  put(kv, "nulls", std::int64_t(nulls));
  put(kv, "tx_records", std::int64_t(tx_records));
  put(kv, "killed", killed);
  return kv;
}

// ---- Orion role -------------------------------------------------------
Kv orion_role(const RealTestbedConfig& cfg, Net& net, std::int64_t epoch) {
  RealOrionConfig oc;
  oc.ru = kRu;
  oc.l2_port = net.l2.port();
  for (const auto& ep : net.phys) {
    oc.phy_ports.push_back(ep.port());
  }
  oc.active = 0;
  oc.standby = 1;
  oc.detect_timeout_ns = cfg.detect_timeout_ns;
  oc.detect_deadline_ns =
      epoch + (cfg.run_slots - kDetectorDisarmSlots) * cfg.tti_ns;
  oc.pacer = {epoch, cfg.tti_ns};
  RealOrionRelay relay(oc, &net.orion, net.l2_to_orion, net.orion_to_l2,
                       net.orion_to_phy, net.phy_to_orion);
  const std::int64_t end =
      epoch + (cfg.run_slots + kGraceSlots) * cfg.tti_ns;
  while (WallclockPacer::now_ns() < end) {
    relay.poll_once(1);
  }

  Kv kv;
  const auto& stats = relay.stats();
  put(kv, "requests_forwarded", std::int64_t(stats.requests_forwarded));
  put(kv, "nulls_sent", std::int64_t(stats.nulls_sent));
  put(kv, "indications_forwarded",
      std::int64_t(stats.indications_forwarded));
  put(kv, "standby_filtered", std::int64_t(stats.standby_filtered));
  put(kv, "ring_records_relayed", std::int64_t(stats.ring_records_relayed));
  put(kv, "parse_errors", std::int64_t(stats.parse_errors));
  for (const auto& e : relay.ledger()) {
    std::ostringstream enc;
    enc << int(e.kind) << ':' << unsigned(e.ru.value()) << ':'
        << unsigned(e.phy.value()) << ':' << e.slot << ':' << e.wall_ns;
    kv.emplace_back("episode", enc.str());
  }
  return kv;
}

std::vector<EpisodeEvent> decode_ledger(const Kv& kv) {
  std::vector<EpisodeEvent> ledger;
  for (const auto& [k, v] : kv) {
    if (k != "episode") {
      continue;
    }
    EpisodeEvent e;
    unsigned kind = 0;
    unsigned ru = 0;
    unsigned phy = 0;
    char sep = 0;
    std::istringstream dec(v);
    dec >> kind >> sep >> ru >> sep >> phy >> sep >> e.slot >> sep >>
        e.wall_ns;
    e.kind = EpisodeEventKind(kind);
    e.ru = RuId{std::uint8_t(ru)};
    e.phy = PhyId{std::uint8_t(phy)};
    ledger.push_back(e);
  }
  return ledger;
}

void write_kv_file(const std::filesystem::path& path, const Kv& kv) {
  std::ofstream out(path);
  for (const auto& [k, v] : kv) {
    out << k << '=' << v << '\n';
  }
}

Kv read_kv_file(const std::filesystem::path& path) {
  Kv kv;
  std::ifstream in(path);
  std::string line;
  while (std::getline(in, line)) {
    const auto eq = line.find('=');
    if (eq != std::string::npos) {
      kv.emplace_back(line.substr(0, eq), line.substr(eq + 1));
    }
  }
  return kv;
}

}  // namespace

RealRunResult RealTestbed::run() {
  RealRunResult result;
  const std::size_t num_phys = config_.num_phys < 2 ? 2 : config_.num_phys;

  Net net;
  if (!net.l2.open_loopback() || !net.orion.open_loopback()) {
    result.error = "failed to open L2/Orion sockets";
    return result;
  }
  net.phys.resize(num_phys);
  for (auto& ep : net.phys) {
    if (!ep.open_loopback()) {
      result.error = "failed to open PHY socket";
      return result;
    }
  }
  net.l2_to_orion = ShmRing::create(config_.ring_bytes);
  net.orion_to_l2 = ShmRing::create(config_.ring_bytes);
  for (std::size_t i = 0; i < num_phys; ++i) {
    net.orion_to_phy.push_back(ShmRing::create(config_.ring_bytes));
    net.phy_to_orion.push_back(ShmRing::create(config_.ring_bytes));
  }
  for (const auto& ring : net.orion_to_phy) {
    if (!ring.valid()) {
      result.error = "failed to map SHM ring";
      return result;
    }
  }
  if (!net.l2_to_orion.valid() || !net.orion_to_l2.valid()) {
    result.error = "failed to map SHM ring";
    return result;
  }

  const std::int64_t epoch = WallclockPacer::now_ns() + kEpochLeadNs;
  const bool fault = config_.fault.kill_slot >= 0;
  const std::int64_t kill_target =
      epoch + config_.fault.kill_slot * config_.tti_ns;

  Kv l2_kv;
  Kv orion_kv;
  std::vector<Kv> phy_kv(num_phys);

  if (config_.inproc) {
    std::vector<std::atomic<bool>> frozen(num_phys);
    std::vector<std::thread> threads;
    threads.emplace_back(
        [&] { orion_kv = orion_role(config_, net, epoch); });
    for (std::size_t i = 0; i < num_phys; ++i) {
      threads.emplace_back([&, i] {
        phy_kv[i] = phy_role(config_, net, i, epoch, &frozen[i]);
      });
    }
    threads.emplace_back([&] { l2_kv = l2_role(config_, net, epoch); });
    if (fault) {
      while (WallclockPacer::now_ns() < kill_target) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      result.kill_wall_ns = WallclockPacer::now_ns();
      frozen[0].store(true, std::memory_order_release);
    }
    for (auto& t : threads) {
      t.join();
    }
  } else {
    const auto dir = std::filesystem::temp_directory_path() /
                     ("slingshot_rt_" + std::to_string(::getpid()));
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      result.error = "failed to create result dir";
      return result;
    }
    auto spawn = [&](const std::string& name, auto&& fn) -> pid_t {
      const pid_t pid = ::fork();
      if (pid == 0) {
        // Child: inherited thread_local pools belong to parent threads
        // that do not exist here — collapse the registry to this
        // thread's own pool before doing any work.
        BufferPools::reset_after_fork();
        write_kv_file(dir / (name + ".kv"), fn());
        ::_exit(0);
      }
      return pid;
    };
    const pid_t orion_pid =
        spawn("orion", [&] { return orion_role(config_, net, epoch); });
    std::vector<pid_t> phy_pids;
    for (std::size_t i = 0; i < num_phys; ++i) {
      phy_pids.push_back(spawn("phy" + std::to_string(i), [&, i] {
        return phy_role(config_, net, i, epoch, nullptr);
      }));
    }
    const pid_t l2_pid =
        spawn("l2", [&] { return l2_role(config_, net, epoch); });
    if (orion_pid < 0 || l2_pid < 0 ||
        std::any_of(phy_pids.begin(), phy_pids.end(),
                    [](pid_t p) { return p < 0; })) {
      result.error = "fork failed";
      return result;
    }

    if (fault) {
      // The scripted kill -9: wait for the fault slot's wall instant,
      // then terminate the active PHY process outright.
      while (WallclockPacer::now_ns() < kill_target) {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
      result.kill_wall_ns = WallclockPacer::now_ns();
      ::kill(phy_pids[0], SIGKILL);
    }

    auto reap = [](pid_t pid) {
      int status = 0;
      ::waitpid(pid, &status, 0);
      return status;
    };
    reap(orion_pid);
    reap(l2_pid);
    for (std::size_t i = 0; i < num_phys; ++i) {
      reap(phy_pids[i]);
    }
    orion_kv = read_kv_file(dir / "orion.kv");
    l2_kv = read_kv_file(dir / "l2.kv");
    for (std::size_t i = 0; i < num_phys; ++i) {
      phy_kv[i] = read_kv_file(dir / ("phy" + std::to_string(i) + ".kv"));
    }
    std::filesystem::remove_all(dir, ec);
  }

  net.l2_to_orion.destroy();
  net.orion_to_l2.destroy();
  for (auto& ring : net.orion_to_phy) {
    ring.destroy();
  }
  for (auto& ring : net.phy_to_orion) {
    ring.destroy();
  }

  if (l2_kv.empty() || orion_kv.empty()) {
    result.error = "missing role results";
    return result;
  }

  result.l2_crcs = std::uint64_t(get_i64(l2_kv, "crcs", 0));
  result.l2_rx_records = std::uint64_t(get_i64(l2_kv, "rx_records", 0));
  result.l2_error_inds = std::uint64_t(get_i64(l2_kv, "error_inds", 0));
  result.max_ind_gap_ns = get_i64(l2_kv, "max_gap_ns", 0);
  result.last_crc_slot = get_i64(l2_kv, "last_crc_slot", -1);
  result.pacer_overruns = std::uint64_t(get_i64(l2_kv, "overruns", 0));
  result.parse_errors = std::uint64_t(get_i64(orion_kv, "parse_errors", 0));
  result.ledger = decode_ledger(orion_kv);
  // "Restored" means the CRC stream reached the end of the pacing
  // window — the stack was serving again, not merely detected-and-
  // swapped.
  result.restored = result.last_crc_slot >= config_.run_slots - 5;
  if (fault) {
    result.outage_ns = result.max_ind_gap_ns;
    for (const auto& e : result.ledger) {
      if (e.kind == EpisodeEventKind::kDetected) {
        result.detection_ns = e.wall_ns - result.kill_wall_ns;
        break;
      }
    }
  }
  result.ok = true;
  return result;
}

std::vector<EpisodeEvent> run_sim_fault_plan(const FaultPlan& plan) {
  struct LedgerTap final : OrionL2Tap {
    std::vector<EpisodeEvent> ledger;
    void on_migration(const MigrationEvent& event) override {
      if (event.kind != MigrationEvent::Kind::kFailover) {
        return;
      }
      ledger.push_back(EpisodeEvent{EpisodeEventKind::kDetected, event.ru,
                                    event.from, 0, event.notification_at});
      ledger.push_back(EpisodeEvent{EpisodeEventKind::kFailoverInitiated,
                                    event.ru, event.from, 0,
                                    event.initiated_at});
    }
    void on_swap_finalized(RuId ru, std::int64_t slot, PhyId new_primary,
                           std::int64_t /*boundary_slot*/) override {
      ledger.push_back(EpisodeEvent{EpisodeEventKind::kSwapFinalized, ru,
                                    new_primary, slot, 0});
    }
    void on_adopt(RuId ru, PhyId phy) override {
      ledger.push_back(
          EpisodeEvent{EpisodeEventKind::kStandbyAdopted, ru, phy, 0, 0});
    }
  };

  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  Testbed tb{cfg};
  LedgerTap tap;
  tb.orion().set_tap(&tap);
  tb.start();
  tb.run_for(50_ms);  // settle window before measuring, as everywhere
  if (plan.kill_slot >= 0) {
    tb.run_for(Nanos(plan.kill_slot) * tb.config().slots.slot_duration);
    tb.kill_phy(Testbed::kPhyA);
    tb.run_for(100_ms);
  } else {
    tb.run_for(100_ms);
  }
  tb.orion().set_tap(nullptr);
  return tap.ledger;
}

bool ledgers_conform(const std::vector<EpisodeEvent>& lhs,
                     const std::vector<EpisodeEvent>& rhs) {
  if (lhs.size() != rhs.size()) {
    return false;
  }
  for (std::size_t i = 0; i < lhs.size(); ++i) {
    if (lhs[i].kind != rhs[i].kind || lhs[i].ru != rhs[i].ru ||
        lhs[i].phy != rhs[i].phy) {
      return false;
    }
  }
  return true;
}

}  // namespace slingshot
