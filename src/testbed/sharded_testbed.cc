#include "testbed/sharded_testbed.h"

#include <utility>

#include "obs/obs.h"

namespace slingshot {

std::uint64_t ShardedTestbed::island_seed(std::uint64_t base, int island) {
  // splitmix64-style mix of (base, island): well-separated per-island
  // RNG universes from one user-facing seed, stable across runs and
  // shard counts (the determinism contract hangs off this).
  std::uint64_t z = base + 0x9E3779B97F4A7C15ULL * std::uint64_t(island + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

ShardedTestbed::ShardedTestbed(ShardedTestbedConfig config)
    : config_(std::move(config)),
      engine_(ShardedSimulator::Config{config_.slots.slot_duration,
                                       config_.shards}),
      coord_(ShardCoordinator::Config{
          config_.coordinator_spares < 0 ? int(config_.cells.size())
                                         : config_.coordinator_spares,
          config_.coordinator_boot_delay}) {
  islands_.reserve(config_.cells.size());
  for (int c = 0; c < int(config_.cells.size()); ++c) {
    TestbedConfig tc;
    tc.seed = island_seed(config_.seed, c);
    tc.mode = TestbedMode::kSlingshot;
    tc.cells = {config_.cells[std::size_t(c)]};
    tc.standby_pool_size = config_.pool_per_cell;
    tc.slots = config_.slots;
    auto tb = std::make_unique<Testbed>(tc);
    const int idx = engine_.add_island(&tb->sim());

    // Island -> coordinator: every in-switch detector firing becomes a
    // fleet-ledger episode. The payload byte is the failed PhyId
    // (core/fh_mbox.cc formats the notification).
    tb->fabric().set_notification_tap(
        EtherType::kFailureNotify,
        [this, idx](const Packet& p, Nanos now) {
          ControlMsg msg;
          msg.src_island = idx;
          msg.kind = std::uint32_t(ShardCtrlKind::kFailureEpisode);
          msg.a = p.payload.empty() ? 0 : p.payload[0];
          msg.time = now;
          engine_.post_control(msg);
        });

    // Island -> coordinator: pool inventory changes.
    Testbed* tb_raw = tb.get();
    tb->orion().set_pool_observer(
        [this, idx, tb_raw](OrionL2Side::PoolEvent event, PhyId phy) {
          ControlMsg msg;
          msg.src_island = idx;
          msg.time = tb_raw->sim().now();
          msg.a = phy.value();
          switch (event) {
            case OrionL2Side::PoolEvent::kConsumed:
              msg.kind = std::uint32_t(ShardCtrlKind::kPoolConsumed);
              break;
            case OrionL2Side::PoolEvent::kExhausted:
              msg.kind = std::uint32_t(ShardCtrlKind::kPoolExhausted);
              break;
            case OrionL2Side::PoolEvent::kMemberDead:
              msg.kind = std::uint32_t(ShardCtrlKind::kMemberDead);
              break;
            case OrionL2Side::PoolEvent::kRestored:
              msg.kind = std::uint32_t(ShardCtrlKind::kMemberRestored);
              break;
          }
          engine_.post_control(msg);
        });
    islands_.push_back(std::move(tb));
  }

  // Coordinator -> island: a granted spare revives the island's dead
  // PHY as a fresh pool standby one boot delay after the report. The
  // mailbox clamps delivery to the window boundary, so the grant is a
  // deterministic (time, seq) point in the island's own stream.
  engine_.set_control_sink(
      [this](const ControlMsg& msg) { coord_.on_control(msg); });
  coord_.set_grant_action([this](int island, Nanos at) {
    engine_.post_event_from_control(island, at, [this, island] {
      islands_[std::size_t(island)]->revive_dead_phy_as_standby();
    });
  });

  // Stamp logs with the fleet window clock (see header for why the
  // per-island clocks the Testbed ctors installed are unusable here).
  log_time_.install([this] { return engine_.now(); });
}

ShardedTestbed::~ShardedTestbed() = default;

void ShardedTestbed::start() {
  for (auto& island : islands_) {
    island->start();
  }
}

void ShardedTestbed::kill_primary_at(int cell, Nanos t) {
  Testbed* tb = islands_.at(std::size_t(cell)).get();
  tb->sim().at(t, [tb] { tb->kill_phy(tb->phy_id(0)); });
}

void ShardedTestbed::attach_observability() {
  if (!obs_lanes_.empty()) {
    return;
  }
  obs_lanes_.reserve(islands_.size());
  for (auto& island : islands_) {
    auto lane = std::make_unique<obs::Observability>(island->obs_config());
    island->attach_observability(*lane);
    obs_lanes_.push_back(std::move(lane));
  }
}

std::string ShardedTestbed::merged_obs_json() {
  std::vector<obs::Observability*> lanes;
  lanes.reserve(obs_lanes_.size());
  for (auto& lane : obs_lanes_) {
    lanes.push_back(lane.get());
  }
  return obs::merged_islands_json(lanes);
}

}  // namespace slingshot
