// The full vRAN testbed, mirroring the paper's §8 setup: N radio units
// with attached UEs, M PHY servers, a separate L2 server, an
// application server behind the core, and a programmable edge switch
// connecting everything — with Slingshot's fronthaul middlebox and
// Orion deployed (or not, for the baselines).
//
// Modes:
//  * kSlingshot        — fully decoupled (L2 and PHYs on different
//                        servers), Orion + in-switch middlebox active.
//  * kCoupledNoOrion   — L2 talks SHM directly to the primary PHY; no
//                        middlebox intelligence needed (the "without
//                        Orion" comparison of §8.7).
//  * kBaselineFailover — two independent full vRAN stacks (L2+PHY);
//                        on primary-PHY failure the fronthaul is
//                        re-routed to the backup stack, but the UE must
//                        re-attach from scratch (§8.1's 6.2 s outage).
//
// Scale: the legacy configuration (num_ues / num_ues_ru2) builds the
// original fixed A/B pair — one or two RUs, two PHYs, cross-assigned
// primaries — and is bit-identical to the pre-scale-out testbed
// (pinned by tests/testbed/test_golden_trace.cc). Setting `cells`
// instead builds N cells × M PHYs where the first N PHYs are dedicated
// primaries and the remainder form a *shared standby pool* (the
// paper's deployment note: secondaries need no dedicated servers).
#pragma once

#include <memory>
#include <vector>

#include "baseline/precopy.h"
#include "channel/channel.h"
#include "common/log.h"
#include "core/fh_mbox.h"
#include "core/orion.h"
#include "fapi/channel.h"
#include "l2/l2.h"
#include "net/cross_traffic.h"
#include "net/frer.h"
#include "net/nic.h"
#include "net/timesync.h"
#include "phy/phy.h"
#include "ru/ru.h"
#include "sim/simulator.h"
#include "switchsim/pswitch.h"
#include "transport/gateway.h"
#include "transport/pipe.h"
#include "ue/ue.h"
#include "ue/ue_batch.h"

namespace slingshot {

namespace obs {
class Observability;
struct ObservabilityConfig;
}  // namespace obs

enum class TestbedMode { kSlingshot, kCoupledNoOrion, kBaselineFailover };

// Per-cell spec for multi-cell scale-out configurations.
struct CellSpec {
  int num_ues = 1;
  std::vector<double> ue_mean_snr_db;  // per-UE; default 20 dB
  // Massive-UE mode: additional batched UEs served by one SoA UeBatch
  // (src/ue/ue_batch.h) alongside the individually-modeled tracer UEs
  // above. 0 = no batch.
  int bulk_ues = 0;
};

// Realistic-fabric layer (tentpole of the fronthaul-fabric PR). Every
// default is inert: with this struct untouched the testbed's event
// sequence is bit-identical to the ideal fabric (pinned by the golden
// traces). Link-level knobs (finite queues, tx-time model, bandwidth)
// live in TestbedConfig::link.
struct FabricConfig {
  // Background cross-traffic: long-run offered load (fraction of link
  // rate) injected on every PHY server's egress link. 0 = off.
  double cross_traffic_load = 0.0;
  std::uint32_t cross_frame_bytes = 1500;
  std::uint32_t cross_burst_frames = 64;
  // gPTP-style per-node clock error (switch tick train + NIC
  // timestamps). Default = perfectly synchronized.
  TimeSyncConfig sync{};
  // FRER-style redundant streams (802.1CB): replicate eCPRI over a
  // second, disjoint switch plane and eliminate duplicates in front of
  // each RU/PHY.
  bool frer = false;
  FrerEliminatorConfig frer_elim{};
  // Arm the in-switch failure detector in start(). FRER runs disable it
  // to measure pure replication (no failover) resilience.
  bool arm_detector = true;
};

struct TestbedConfig {
  std::uint64_t seed = 1;
  TestbedMode mode = TestbedMode::kSlingshot;
  int num_ues = 1;
  std::vector<double> ue_mean_snr_db;  // per-UE; default 20 dB
  // Second radio unit (kSlingshot mode only). Its UEs get ids starting
  // at 101. Per the paper's deployment note, primaries and secondaries
  // for different RUs are co-located within the PHY processes: RU 1 is
  // primary on PHY-A / standby on PHY-B, RU 2 the other way around.
  int num_ues_ru2 = 0;

  // ---- Multi-cell scale-out (kSlingshot mode) ----
  // When non-empty, overrides num_ues/num_ues_ru2: cell c gets
  // RuId{c+1}, UE ids 100*c+1.., and PHY index c (PhyId{c+1}) as its
  // dedicated primary. PHYs beyond the cell count join Orion's shared
  // standby pool.
  std::vector<CellSpec> cells;
  // Total PHY processes. 0 derives cells.size() + standby_pool_size;
  // an explicit value is clamped to at least cells.size() (a value of
  // exactly cells.size() means an empty pool: every cell unprotected).
  int num_phys = 0;
  // Shared hot standbys backing all primaries (used when num_phys==0).
  int standby_pool_size = 1;

  // Massive-UE mode, legacy single-cell form: batched UEs added to
  // cell 0 (the `cells` form sets CellSpec::bulk_ues per cell instead).
  int bulk_ues = 0;
  // Template for every cell's batch: traffic mix, churn, DL error
  // model. Per-cell fields (schedule.cell, population, seed, fading,
  // supervision timeouts) are filled in by the testbed.
  UeBatchConfig bulk{};

  SlotConfig slots{};
  PhyConfig phy{};
  int secondary_ldpc_iters = 0;  // 0: same as primary (set >0 to model
                                 // an upgraded PHY build, §8.3)
  L2Config l2{};
  UeConfig ue{};
  FadingConfig fading{};
  FhMboxConfig mbox{};
  OrionCostModel orion_costs{};
  StandbyMode standby_mode = StandbyMode::kNullFapi;
  int failover_margin_slots = 2;
  Nanos orion_cmd_extra_delay = 0;   // ablation: control-plane remap
  bool dl_source_filter = true;      // ablation: naive no-filter design
  LinkConfig link{};
  FabricConfig fabric{};
};

class Testbed {
 public:
  explicit Testbed(TestbedConfig config);
  ~Testbed();

  // Power on all components, start the carrier, attach UEs. After
  // start(), run the simulator for ~50 ms before measuring to let SNR
  // filters and MCS selection settle.
  void start();

  void run_until(Nanos t) { sim_.run_until(t); }
  void run_for(Nanos dt) { sim_.run_until(sim_.now() + dt); }

  // ---- Scenario controls ----
  // Fail-stop a PHY process (the SIGKILL of §8.2).
  void kill_phy(PhyId phy);
  // Legacy alias: fail-stop PHY-A (cell 0's primary).
  void kill_primary_phy() { kill_phy(kPhyA); }
  // Planned migration of the RU to the standby at the slot boundary
  // `lead` slots from now.
  void planned_migration(int lead_slots = 4);
  // Planned migration of a specific RU (multi-RU deployments).
  void planned_migration_of(RuId ru, int lead_slots = 4);
  // ABLATION: planned migration that (incorrectly) moves the fronthaul
  // at a different slot than the FAPI stream — violating the paper's
  // TTI-boundary alignment requirement (§5.1). `skew` of 0 is correct.
  void misaligned_migration(int lead_slots, int fronthaul_skew_slots);
  // ABLATION: migration that oracle-transfers the PHY's soft state
  // (HARQ buffers + SNR filters) instead of discarding it.
  void planned_migration_with_state_transfer(int lead_slots = 4);
  // Restart a dead PHY process and adopt it as a standby again: Orion
  // replays the stored initialization sequence for *every* RU the PHY
  // backs (§6.3) and the failure detector re-arms. In pool
  // configurations the PHY rejoins the shared pool, which also executes
  // any deferred failovers for unprotected cells.
  void revive_phy_as_standby(PhyId phy);
  // Legacy alias: revive whichever PHY is dead (first by index).
  void revive_dead_phy_as_standby();

  // ---- Component access ----
  [[nodiscard]] Simulator& sim() { return sim_; }
  [[nodiscard]] const TestbedConfig& config() const { return config_; }
  [[nodiscard]] int num_cells() const { return int(plan_.size()); }
  [[nodiscard]] int num_phys() const { return num_phys_; }
  [[nodiscard]] RuId ru_id(int cell) const {
    return RuId{std::uint8_t(cell + 1)};
  }
  [[nodiscard]] PhyId phy_id(int index) const {
    return PhyId{std::uint8_t(index + 1)};
  }
  // PHY by construction index (0 = A, 1 = B, ...).
  [[nodiscard]] PhyProcess& phy(int index) {
    return *phys_.at(std::size_t(index));
  }
  // PHY by logical id; nullptr if out of range.
  [[nodiscard]] PhyProcess* phy_by_id(PhyId id);
  [[nodiscard]] PhyProcess& phy_a() { return *phys_.at(0); }
  [[nodiscard]] PhyProcess& phy_b() { return *phys_.at(1); }
  [[nodiscard]] L2Process& l2() { return *l2_; }
  [[nodiscard]] L2Process& l2_backup() { return *l2b_; }
  [[nodiscard]] OrionL2Side& orion() { return *orion_l2_; }
  [[nodiscard]] FronthaulMiddlebox& mbox() { return *mbox_; }
  // RU by cell index.
  [[nodiscard]] RadioUnit& ru_at(int cell) {
    return *rus_.at(std::size_t(cell));
  }
  [[nodiscard]] RadioUnit& ru() { return *rus_.at(0); }
  [[nodiscard]] RadioUnit& ru2() { return *rus_.at(1); }
  // UE by global index (cells in order; within a cell, attach order).
  [[nodiscard]] UserEquipment& ue(int i) { return *ues_.at(std::size_t(i)); }
  // Cell index serving UE i.
  [[nodiscard]] int ue_cell(int i) const {
    return ue_cell_.at(std::size_t(i));
  }
  // Cell c's massive-UE batch; nullptr when the cell has none.
  [[nodiscard]] UeBatch* batch_at(int cell) {
    return batches_.at(std::size_t(cell)).get();
  }
  [[nodiscard]] ProgrammableSwitch& fabric() { return *switch_; }
  // FRER plane-B switch; null unless config.fabric.frer.
  [[nodiscard]] ProgrammableSwitch* fabric_b() { return switch_b_.get(); }

  // ---- Fabric link access (fault plans: cable pulls, lossy links) ----
  // Plane-A link between a station and the switch.
  [[nodiscard]] Link& ru_link(int cell) {
    return *ru_links_.at(std::size_t(cell));
  }
  [[nodiscard]] Link& phy_link(int index) {
    return *phy_links_.at(std::size_t(index));
  }
  // Plane-B counterparts; null unless config.fabric.frer.
  [[nodiscard]] Link* ru_link_b(int cell) {
    return cell < int(ru_links_b_.size()) ? ru_links_b_[std::size_t(cell)]
                                          : nullptr;
  }
  [[nodiscard]] Link* phy_link_b(int index) {
    return index < int(phy_links_b_.size()) ? phy_links_b_[std::size_t(index)]
                                            : nullptr;
  }

  // Aggregate FRER replication/elimination counters over every
  // protected station (all-zero when FRER is off).
  struct FrerTotals {
    std::uint64_t frames_replicated = 0;
    std::uint64_t bytes_replicated = 0;
    std::uint64_t passed = 0;
    std::uint64_t duplicates_eliminated = 0;
    std::uint64_t stale_discarded = 0;
    std::uint64_t rogue_discarded = 0;
    std::uint64_t recovery_resets = 0;
  };
  [[nodiscard]] FrerTotals frer_totals() const;
  [[nodiscard]] std::uint64_t cross_traffic_frames() const;
  [[nodiscard]] std::uint64_t cross_traffic_bytes() const;
  // Worst clock offset any fabric node has exhibited so far (0 with a
  // perfectly synchronized fabric).
  [[nodiscard]] Nanos sync_max_abs_offset_seen() const;

  // ---- Fault-injection and invariant-checker access (src/inject) ----
  // NIC handles for installing packet interceptors. Valid after
  // construction in every mode.
  [[nodiscard]] Nic& ru_nic() { return *ru_nics_.at(0); }
  [[nodiscard]] Nic& ru_nic_at(int cell) {
    return *ru_nics_.at(std::size_t(cell));
  }
  [[nodiscard]] Nic& phy_nic(int index) {
    return *phy_nics_.at(std::size_t(index));
  }
  [[nodiscard]] Nic& phy_a_nic() { return *phy_nics_.at(0); }
  [[nodiscard]] Nic& phy_b_nic() { return *phy_nics_.at(1); }
  [[nodiscard]] Nic& orion_a_nic() { return *orion_phy_nics_.at(0); }
  [[nodiscard]] Nic& orion_b_nic() { return *orion_phy_nics_.at(1); }
  [[nodiscard]] Nic& orion_l2_nic() { return *orion_l2_nic_; }
  // PHY-side Orions (kSlingshot mode only).
  [[nodiscard]] OrionPhySide& orion_phy(int index) {
    return *orion_phys_.at(std::size_t(index));
  }
  [[nodiscard]] OrionPhySide& orion_a() { return *orion_phys_.at(0); }
  [[nodiscard]] OrionPhySide& orion_b() { return *orion_phys_.at(1); }
  // FAPI pipes feeding the PHYs / the L2; null in modes without them.
  [[nodiscard]] ShmFapiPipe* pipe_to_phy(int index) {
    return index < int(to_phy_pipes_.size())
               ? to_phy_pipes_[std::size_t(index)].get()
               : nullptr;
  }
  [[nodiscard]] ShmFapiPipe* pipe_to_phy_a() { return pipe_to_phy(0); }
  [[nodiscard]] ShmFapiPipe* pipe_to_phy_b() { return pipe_to_phy(1); }
  [[nodiscard]] ShmFapiPipe* pipe_to_l2() { return mbx_to_l2_.get(); }

  // ---- Traffic endpoints ----
  // Server-side pipe (app server) and UE-side pipe for UE i.
  [[nodiscard]] DatagramPipe& server_pipe(int i);
  [[nodiscard]] DatagramPipe& ue_pipe(int i) {
    return *ue_pipes_.at(std::size_t(i));
  }

  // Time the L2-side Orion learned about the last failover (for §8.2
  // detection-latency measurements); 0 if none.
  [[nodiscard]] Nanos last_failover_notification() const;

  // ---- Observability (src/obs) ----
  // Tracer/registry configuration matching this testbed's numerology
  // (slot duration, UL pipeline depth). Build an obs::Observability from
  // this, then attach it.
  [[nodiscard]] obs::ObservabilityConfig obs_config() const;
  // Hook the bundle into the simulator anchor, bind switch counters, and
  // register gauge samplers over the component stats structs. The bundle
  // must outlive the run; the Testbed destructor freezes sampler gauges
  // so a longer-lived bundle never dereferences dead components.
  void attach_observability(obs::Observability& o);

  static constexpr RuId kRu{1};
  static constexpr RuId kRu2{2};
  static constexpr PhyId kPhyA{1};
  static constexpr PhyId kPhyB{2};

 private:
  // Normalized per-cell plan (from `cells`, or num_ues/num_ues_ru2).
  struct CellPlan {
    int num_ues = 0;
    std::vector<double> snrs;
    int bulk_ues = 0;
  };

  void build_fabric();
  void build_fabric_plane_b();
  void build_vran();
  void wire_slingshot();
  void wire_coupled();
  void wire_baseline();
  [[nodiscard]] int primary_phy_index(int cell) const;

  TestbedConfig config_;
  Simulator sim_;
  // Declared after sim_ so its destructor (which uninstalls the log time
  // source capturing sim_) runs before sim_ is torn down.
  ScopedLogTimeSource log_time_;
  obs::Observability* obs_ = nullptr;

  std::vector<CellPlan> plan_;
  int num_phys_ = 2;
  // True when `cells` drives the build: dedicated primaries + a shared
  // Orion standby pool instead of the fixed cross-assigned A/B pair.
  bool pool_wiring_ = false;

  // Fabric.
  std::unique_ptr<ProgrammableSwitch> switch_;
  std::vector<std::unique_ptr<Link>> links_;
  std::vector<std::unique_ptr<Nic>> nics_;
  std::vector<Link*> ru_links_;   // plane-A link per cell
  std::vector<Link*> phy_links_;  // plane-A link per PHY index
  // Realistic-fabric layer (empty/null at default FabricConfig).
  std::unique_ptr<ProgrammableSwitch> switch_b_;  // FRER plane B
  std::shared_ptr<FronthaulMiddlebox> mbox_b_;
  std::vector<std::unique_ptr<Link>> links_b_;
  std::vector<Link*> ru_links_b_;
  std::vector<Link*> phy_links_b_;
  std::vector<std::unique_ptr<FrerEliminator>> eliminators_;
  std::vector<std::unique_ptr<FrerReplicator>> replicators_;
  std::vector<std::unique_ptr<TimeSyncNode>> sync_nodes_;
  std::vector<std::unique_ptr<CrossTrafficInjector>> injectors_;
  std::vector<Nic*> ru_nics_;
  std::vector<Nic*> phy_nics_;
  std::vector<Nic*> orion_phy_nics_;
  Nic* orion_l2_nic_ = nullptr;
  Nic* app_nic_ = nullptr;
  Nic* l2_gw_nic_ = nullptr;
  Nic* l2b_gw_nic_ = nullptr;
  Nic* baseline_ctl_nic_ = nullptr;

  std::shared_ptr<FronthaulMiddlebox> mbox_;

  // vRAN processes.
  std::vector<std::unique_ptr<PhyProcess>> phys_;
  std::unique_ptr<L2Process> l2_;
  std::unique_ptr<L2Process> l2b_;  // baseline backup stack
  std::vector<std::unique_ptr<OrionPhySide>> orion_phys_;
  std::unique_ptr<OrionL2Side> orion_l2_;

  // FAPI pipes.
  std::unique_ptr<ShmFapiPipe> l2_to_mbx_;     // L2 -> Orion/PHY
  std::unique_ptr<ShmFapiPipe> mbx_to_l2_;     // Orion/PHY -> L2
  std::vector<std::unique_ptr<ShmFapiPipe>> to_phy_pipes_;   // Orion-p -> PHY-p
  std::vector<std::unique_ptr<ShmFapiPipe>> phy_out_pipes_;  // PHY-p -> Orion-p
  std::unique_ptr<ShmFapiPipe> l2b_to_phy_b_;  // baseline backup stack
  std::unique_ptr<ShmFapiPipe> phy_b_to_l2b_;

  // Radio side.
  std::vector<std::unique_ptr<RadioUnit>> rus_;
  std::vector<std::unique_ptr<UserEquipment>> ues_;
  // One optional batch per cell (parallel to rus_).
  std::vector<std::unique_ptr<UeBatch>> batches_;
  std::vector<int> ue_cell_;  // cell index per UE (parallel to ues_)
  std::vector<std::unique_ptr<FunctionPipe>> ue_pipes_;

  // User plane.
  std::unique_ptr<AppServer> app_server_;
  std::unique_ptr<L2UserGateway> l2_gw_;
  std::unique_ptr<L2UserGateway> l2b_gw_;

  // Baseline failover controller state.
  bool baseline_failed_over_ = false;
  Nanos baseline_notify_time_ = 0;
};

}  // namespace slingshot
