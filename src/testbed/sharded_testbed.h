// Sharded multi-cell testbed: one self-contained cell island per cell,
// advanced in lockstep TTI windows by a ShardedSimulator, with a global
// ShardCoordinator as the sequenced control island.
//
// Partitioning: cell c becomes island c — a complete Testbed (its own
// Simulator, edge switch + fronthaul middlebox, L2, Orion, and a
// per-island slice of the standby pool). The cut follows the physics:
// fronthaul and FAPI latencies are sub-TTI (a 1 µs link hop cannot
// cross a 500 µs conservative window), so everything latency-coupled
// stays inside one island, while the traffic that genuinely spans cells
// — failure-episode reporting and spare-inventory management — is
// control-plane, tolerates one-window latency, and rides the sequenced
// mailbox.
//
// Determinism: each island is built from a per-island seed derived only
// from (base seed, island index), its event stream depends only on its
// own state plus mailbox deliveries, and mailbox order is fixed by
// (source island, seq) — so per-island executed counts and trace hashes
// are bit-identical at every shard count. `shards` is purely a
// parallelism knob (worker threads in the window barrier loop).
//
// Cross-island wiring (per island):
//  * switch notification tap (kFailureNotify) -> kFailureEpisode to the
//    coordinator: the fleet sees every in-switch detector firing.
//  * Orion pool observer -> kPoolConsumed / kPoolExhausted /
//    kMemberDead / kMemberRestored to the coordinator.
//  * coordinator grant -> island revive_phy (boot delay later): the
//    global spare inventory replaces consumed standbys, restoring
//    protection after a failover (core/shard_coord.h).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "core/shard_coord.h"
#include "sim/sharded.h"
#include "testbed/testbed.h"

namespace slingshot {

struct ShardedTestbedConfig {
  std::uint64_t seed = 1;
  // One island per entry. Island i serves cells[i] with RuId{1} and a
  // dedicated primary PhyId{1} inside its own Testbed.
  std::vector<CellSpec> cells;
  // Worker threads for the window barrier loop (parallelism only —
  // never affects any simulation outcome).
  int shards = 1;
  // Hot standbys in each island's local pool slice.
  int pool_per_cell = 1;
  // Global replacement inventory managed by the coordinator. Defaults
  // to one spare per cell when negative.
  int coordinator_spares = -1;
  // Grant-to-pool-join delay (process boot + §6.3 init replay).
  Nanos coordinator_boot_delay = 5'000'000;
  SlotConfig slots{};
};

class ShardedTestbed {
 public:
  explicit ShardedTestbed(ShardedTestbedConfig config);
  ~ShardedTestbed();

  // Power on every island (Testbed::start) — call before run_until.
  void start();
  // Advance all islands in lockstep windows to virtual time t.
  void run_until(Nanos t) { engine_.run_until(t); }
  void run_for(Nanos dt) { engine_.run_until(engine_.now() + dt); }
  [[nodiscard]] Nanos now() const { return engine_.now(); }

  // Schedule a fail-stop of island `cell`'s primary PHY at island-local
  // virtual time t. Call from the coordinating thread only (setup, or
  // between run_until segments) — never from inside another island.
  void kill_primary_at(int cell, Nanos t);

  [[nodiscard]] int num_islands() const { return int(islands_.size()); }
  [[nodiscard]] Testbed& island(int i) {
    return *islands_.at(std::size_t(i));
  }
  [[nodiscard]] ShardedSimulator& engine() { return engine_; }
  [[nodiscard]] ShardCoordinator& coordinator() { return coord_; }

  // ---- Determinism fingerprints (must match across shard counts) ----
  [[nodiscard]] std::uint64_t island_hash(int i) const {
    return engine_.island_trace_hash(i);
  }
  [[nodiscard]] std::uint64_t island_executed(int i) const {
    return engine_.island_executed(i);
  }
  [[nodiscard]] std::uint64_t fingerprint() const {
    return engine_.fingerprint();
  }

  // ---- Observability: one lane per island, merged on export ----
  // Builds and attaches an obs bundle to every island (idempotent).
  void attach_observability();
  // Finalizes all lanes and renders the merged per-island JSON array
  // (obs::merged_islands_json). Empty "[]" if never attached.
  [[nodiscard]] std::string merged_obs_json();

 private:
  [[nodiscard]] static std::uint64_t island_seed(std::uint64_t base,
                                                 int island);

  ShardedTestbedConfig config_;
  ShardedSimulator engine_;
  ShardCoordinator coord_;
  std::vector<std::unique_ptr<Testbed>> islands_;
  std::vector<std::unique_ptr<obs::Observability>> obs_lanes_;
  // Fleet-window log clock. Each Testbed ctor installed its own island
  // clock as the global log time source — under sharding that means log
  // calls on one island's worker thread read another island's mutating
  // clock (a data race, and misleading timestamps). This guard, installed
  // after all islands are built, stamps logs with the engine's window
  // clock instead: it only advances between windows on the coordinating
  // thread, so island threads always read a stable value. Declared last
  // so it releases before any island (and its clock) is destroyed.
  ScopedLogTimeSource log_time_;
};

}  // namespace slingshot
