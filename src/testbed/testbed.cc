#include "testbed/testbed.h"

#include "common/log.h"
#include "obs/obs.h"

namespace slingshot {
namespace {

// Station MAC plan for the edge datacenter.
constexpr std::uint64_t kRuMac = 0x0A01;
constexpr std::uint64_t kRu2Mac = 0x0A02;
constexpr std::uint64_t kPhyAMac = 0x1A01;
constexpr std::uint64_t kPhyBMac = 0x1B01;
constexpr std::uint64_t kVirtualPhyMac = 0x1F00;  // RUs address this (§5.1)
constexpr std::uint64_t kOrionAMac = 0x2A01;
constexpr std::uint64_t kOrionBMac = 0x2B01;
constexpr std::uint64_t kOrionL2Mac = 0x2C01;
constexpr std::uint64_t kAppServerMac = 0x3A01;
constexpr std::uint64_t kL2GwMac = 0x3B01;
constexpr std::uint64_t kL2bGwMac = 0x3B02;
constexpr std::uint64_t kBaselineCtlMac = 0x3C01;

}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(config), sim_(config.seed) {
  if (config_.ue.grant_starvation_timeout == 0) {
    config_.ue.grant_starvation_timeout = 300_ms;
  }
  log_time_.install([this] { return sim_.now(); });
  build_fabric();
  build_vran();
  switch (config_.mode) {
    case TestbedMode::kSlingshot:
      wire_slingshot();
      break;
    case TestbedMode::kCoupledNoOrion:
      wire_coupled();
      break;
    case TestbedMode::kBaselineFailover:
      wire_baseline();
      break;
  }
}

Testbed::~Testbed() {
  // A longer-lived Observability must not sample destroyed components;
  // collapse its gauge callbacks to their final values. (log_time_'s own
  // destructor likewise uninstalls the sim-clock log time source.)
  if (obs_ != nullptr) {
    obs_->registry().freeze_gauges();
    sim_.set_obs(nullptr);
  }
}

void Testbed::build_fabric() {
  switch_ = std::make_unique<ProgrammableSwitch>(sim_, 12);
  auto add_station = [&](int port, std::uint64_t mac) -> Nic* {
    links_.push_back(std::make_unique<Link>(
        sim_, config_.link, sim_.rng().stream("link.loss", std::uint64_t(port))));
    nics_.push_back(std::make_unique<Nic>(sim_, MacAddr{mac}));
    nics_.back()->attach(*links_.back());
    switch_->attach_link(port, *links_.back());
    switch_->add_l2_route(MacAddr{mac}, port);
    return nics_.back().get();
  };
  ru_nic_ = add_station(0, kRuMac);
  phy_a_nic_ = add_station(1, kPhyAMac);
  phy_b_nic_ = add_station(2, kPhyBMac);
  orion_a_nic_ = add_station(3, kOrionAMac);
  orion_b_nic_ = add_station(4, kOrionBMac);
  orion_l2_nic_ = add_station(5, kOrionL2Mac);
  app_nic_ = add_station(6, kAppServerMac);
  l2_gw_nic_ = add_station(7, kL2GwMac);
  l2b_gw_nic_ = add_station(8, kL2bGwMac);
  baseline_ctl_nic_ = add_station(9, kBaselineCtlMac);
  if (config_.num_ues_ru2 > 0) {
    ru2_nic_ = add_station(10, kRu2Mac);
  }

  // The middlebox must share the deployment's numerology or its boundary
  // math disagrees with the Orions'.
  auto mbox_cfg = config_.mbox;
  mbox_cfg.slots = config_.slots;
  mbox_ = std::make_shared<FronthaulMiddlebox>(sim_, mbox_cfg);
  mbox_->register_ru(kRu, MacAddr{kRuMac});
  mbox_->register_phy(kPhyA, MacAddr{kPhyAMac});
  mbox_->register_phy(kPhyB, MacAddr{kPhyBMac});
  mbox_->bind_ru_to_phy(kRu, kPhyA);
  if (config_.num_ues_ru2 > 0) {
    mbox_->register_ru(kRu2, MacAddr{kRu2Mac});
    mbox_->bind_ru_to_phy(kRu2, kPhyB);  // cross-assigned primary
  }
  mbox_->set_dl_source_filter(config_.dl_source_filter);
  switch_->install_program(mbox_);
}

void Testbed::build_vran() {
  PhyConfig phy_cfg = config_.phy;
  phy_cfg.slots = config_.slots;
  phy_cfg.obs_phy_id = kPhyA.value();
  phy_a_ = std::make_unique<PhyProcess>(sim_, "phy-a", phy_cfg, *phy_a_nic_);
  PhyConfig phy_b_cfg = phy_cfg;
  phy_b_cfg.obs_phy_id = kPhyB.value();
  if (config_.secondary_ldpc_iters > 0) {
    phy_b_cfg.ldpc_max_iters = config_.secondary_ldpc_iters;
  }
  phy_b_ = std::make_unique<PhyProcess>(sim_, "phy-b", phy_b_cfg, *phy_b_nic_);
  phy_a_->add_ru_binding(kRu, MacAddr{kRuMac});
  phy_b_->add_ru_binding(kRu, MacAddr{kRuMac});
  if (config_.num_ues_ru2 > 0) {
    phy_a_->add_ru_binding(kRu2, MacAddr{kRu2Mac});
    phy_b_->add_ru_binding(kRu2, MacAddr{kRu2Mac});
  }

  L2Config l2_cfg = config_.l2;
  l2_cfg.slots = config_.slots;
  l2_ = std::make_unique<L2Process>(sim_, "l2", l2_cfg);

  RuConfig ru_cfg;
  ru_cfg.id = kRu;
  ru_cfg.slots = config_.slots;
  ru_cfg.virtual_phy_mac = MacAddr{kVirtualPhyMac};
  ru_ = std::make_unique<RadioUnit>(sim_, "ru", ru_cfg, *ru_nic_);
  if (config_.num_ues_ru2 > 0) {
    RuConfig ru2_cfg = ru_cfg;
    ru2_cfg.id = kRu2;
    ru2_ = std::make_unique<RadioUnit>(sim_, "ru2", ru2_cfg, *ru2_nic_);
  }

  auto make_ue = [&](int index, std::uint16_t id, RadioUnit& serving_ru) {
    UeConfig ue_cfg = config_.ue;
    ue_cfg.id = UeId{id};
    ue_cfg.slots = config_.slots;
    FadingConfig fading = config_.fading;
    if (index < int(config_.ue_mean_snr_db.size())) {
      fading.mean_snr_db = config_.ue_mean_snr_db[std::size_t(index)];
    }
    auto ue = std::make_unique<UserEquipment>(
        sim_, "ue-" + std::to_string(id), ue_cfg, fading,
        sim_.rng().stream("ue.chan", std::uint64_t(id)));
    serving_ru.attach_ue(ue.get());
    ue_pipes_.push_back(make_ue_modem_pipe(*ue));
    ues_.push_back(std::move(ue));
  };
  for (int i = 0; i < config_.num_ues; ++i) {
    make_ue(i, std::uint16_t(i + 1), *ru_);
  }
  for (int i = 0; i < config_.num_ues_ru2; ++i) {
    make_ue(config_.num_ues + i, std::uint16_t(101 + i), *ru2_);
  }

  app_server_ =
      std::make_unique<AppServer>(sim_, *app_nic_, MacAddr{kL2GwMac});
  l2_gw_ = std::make_unique<L2UserGateway>(*l2_gw_nic_, *l2_,
                                           MacAddr{kAppServerMac});
}

void Testbed::wire_slingshot() {
  orion_a_ = std::make_unique<OrionPhySide>(sim_, "orion-a", *orion_a_nic_,
                                            config_.orion_costs);
  orion_b_ = std::make_unique<OrionPhySide>(sim_, "orion-b", *orion_b_nic_,
                                            config_.orion_costs);
  // The loss-compensation watchdog ticks per TTI; give both sides the
  // deployment numerology instead of the default.
  orion_a_->set_slot_config(config_.slots);
  orion_b_->set_slot_config(config_.slots);
  OrionL2Config ol2;
  ol2.slots = config_.slots;
  ol2.standby_mode = config_.standby_mode;
  ol2.failover_margin_slots = config_.failover_margin_slots;
  ol2.cmd_extra_delay = config_.orion_cmd_extra_delay;
  ol2.costs = config_.orion_costs;
  orion_l2_ = std::make_unique<OrionL2Side>(sim_, "orion-l2", *orion_l2_nic_,
                                            ol2);

  // L2 <-> L2-side Orion over SHM.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(orion_l2_.get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  mbx_to_l2_ = std::make_unique<ShmFapiPipe>(sim_);
  mbx_to_l2_->connect(l2_.get());
  orion_l2_->connect_l2(mbx_to_l2_.get());

  // PHY-side Orions <-> PHYs over SHM.
  to_phy_a_ = std::make_unique<ShmFapiPipe>(sim_);
  to_phy_a_->connect(phy_a_.get());
  orion_a_->connect_phy(to_phy_a_.get());
  phy_a_out_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_a_out_->connect(orion_a_.get());
  phy_a_->connect_fapi_out(phy_a_out_.get());

  to_phy_b_ = std::make_unique<ShmFapiPipe>(sim_);
  to_phy_b_->connect(phy_b_.get());
  orion_b_->connect_phy(to_phy_b_.get());
  phy_b_out_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_b_out_->connect(orion_b_.get());
  phy_b_->connect_fapi_out(phy_b_out_.get());

  orion_a_->set_l2_orion_mac(MacAddr{kOrionL2Mac});
  orion_b_->set_l2_orion_mac(MacAddr{kOrionL2Mac});
  orion_l2_->add_phy_peer(kPhyA, MacAddr{kOrionAMac});
  orion_l2_->add_phy_peer(kPhyB, MacAddr{kOrionBMac});
  orion_l2_->set_ru_phys(kRu, kPhyA, kPhyB);
  if (config_.num_ues_ru2 > 0) {
    orion_l2_->set_ru_phys(kRu2, kPhyB, kPhyA);  // cross-assigned
  }
}

void Testbed::wire_coupled() {
  // Tightly-coupled deployment: the L2 and PHY exchange FAPI directly
  // over SHM (§2.2); the standby PHY is left idle.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(phy_a_.get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  phy_a_out_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_a_out_->connect(l2_.get());
  phy_a_->connect_fapi_out(phy_a_out_.get());
}

void Testbed::wire_baseline() {
  // Two independent full vRAN stacks (§8.1's baseline). Primary:
  // l2 + phy-a; hot backup: l2b + phy-b with identical configuration
  // but no UE contexts.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(phy_a_.get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  phy_a_out_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_a_out_->connect(l2_.get());
  phy_a_->connect_fapi_out(phy_a_out_.get());

  L2Config l2b_cfg = config_.l2;
  l2b_cfg.slots = config_.slots;
  l2b_ = std::make_unique<L2Process>(sim_, "l2-backup", l2b_cfg);
  l2b_to_phy_b_ = std::make_unique<ShmFapiPipe>(sim_);
  l2b_to_phy_b_->connect(phy_b_.get());
  l2b_->connect_fapi_out(l2b_to_phy_b_.get());
  phy_b_to_l2b_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_b_to_l2b_->connect(l2b_.get());
  phy_b_->connect_fapi_out(phy_b_to_l2b_.get());

  l2b_gw_ = std::make_unique<L2UserGateway>(*l2b_gw_nic_, *l2b_,
                                            MacAddr{kAppServerMac});

  // A minimal failover controller: on the switch's failure
  // notification, re-route the fronthaul to the backup stack's PHY.
  // The UEs' RRC contexts do not exist there, so they must re-attach.
  baseline_ctl_nic_->set_rx_handler([this](Packet&& frame) {
    if (frame.eth.ethertype != EtherType::kFailureNotify ||
        baseline_failed_over_) {
      return;
    }
    baseline_failed_over_ = true;
    baseline_notify_time_ = sim_.now();
    SLOG_WARN("baseline", "re-routing fronthaul to backup vRAN");
    MigrateOnSlotCmd cmd;
    cmd.ru = kRu;
    cmd.dest_phy = kPhyB;
    cmd.slot = SlotPoint::from_index(config_.slots.slot_at(sim_.now()) + 2,
                                     config_.slots);
    Packet packet;
    packet.eth.dst = MacAddr::broadcast();
    packet.eth.ethertype = EtherType::kSlingshotCmd;
    packet.payload = serialize_migrate_cmd(cmd);
    baseline_ctl_nic_->send(std::move(packet));
    // The core network re-routes user traffic to the backup stack.
    app_server_->set_gateway_mac(MacAddr{kL2bGwMac});
  });
}

void Testbed::start() {
  phy_a_->power_on();
  phy_b_->power_on();
  l2_->power_on();
  l2_->start_carrier(CarrierConfig{kRu});
  if (config_.num_ues_ru2 > 0) {
    l2_->start_carrier(CarrierConfig{kRu2});
  }
  if (l2b_) {
    l2b_->power_on();
    l2b_->start_carrier(CarrierConfig{kRu});
  }
  ru_->power_on();
  if (ru2_) {
    ru2_->power_on();
  }

  for (auto& ue : ues_) {
    const RuId serving = ue->id().value() >= 101 ? kRu2 : kRu;
    ue->power_on();
    l2_->add_ue(ue->id(), serving);
    UserEquipment* raw = ue.get();
    ue->set_on_reattached([this, raw] {
      L2Process* active =
          (config_.mode == TestbedMode::kBaselineFailover &&
           baseline_failed_over_)
              ? l2b_.get()
              : l2_.get();
      active->add_ue(raw->id(), raw->id().value() >= 101 ? kRu2 : kRu);
    });
    // Server-side pipes exist from the start (apps bind to them).
    (void)app_server_->pipe_for(ue->id());
  }

  // Failure detection: the packet generator emulates the timeout; arm
  // watches after a short grace period so the detector does not fire
  // before the PHYs' first heartbeats.
  switch_->start_packet_generator(mbox_->generator_period());
  const MacAddr notify_mac = config_.mode == TestbedMode::kSlingshot
                                 ? MacAddr{kOrionL2Mac}
                                 : MacAddr{kBaselineCtlMac};
  if (config_.mode != TestbedMode::kCoupledNoOrion) {
    sim_.after(5_ms, [this, notify_mac] {
      mbox_->watch_phy(kPhyA, notify_mac);
      mbox_->watch_phy(kPhyB, notify_mac);
    });
  }
}

void Testbed::kill_primary_phy() { phy_a_->kill(); }

void Testbed::planned_migration(int lead_slots) {
  planned_migration_of(kRu, lead_slots);
}

void Testbed::planned_migration_of(RuId ru, int lead_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  orion_l2_->migrate(ru, boundary);
}

void Testbed::misaligned_migration(int lead_slots, int fronthaul_skew_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  orion_l2_->migrate(kRu, boundary);
  // Overwrite the fronthaul boundary with a skewed one, as a buggy or
  // non-TTI-aligned implementation would.
  MigrateOnSlotCmd cmd;
  cmd.ru = kRu;
  cmd.dest_phy = orion_l2_->standby_phy(kRu);
  cmd.slot = SlotPoint::from_index(boundary + fronthaul_skew_slots,
                                   config_.slots);
  Packet packet;
  packet.eth.dst = MacAddr::broadcast();
  packet.eth.ethertype = EtherType::kSlingshotCmd;
  packet.payload = serialize_migrate_cmd(cmd);
  baseline_ctl_nic_->send(std::move(packet));
}

void Testbed::planned_migration_with_state_transfer(int lead_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  PhyProcess* from = orion_l2_->active_phy(kRu) == kPhyA ? phy_a_.get()
                                                         : phy_b_.get();
  PhyProcess* to = from == phy_a_.get() ? phy_b_.get() : phy_a_.get();
  orion_l2_->migrate(kRu, boundary);
  // Oracle: hand the destination the source's soft state at the
  // boundary instant.
  sim_.at(config_.slots.slot_start(boundary),
          [from, to] { to->transfer_soft_state_from(*from); });
}

void Testbed::revive_dead_phy_as_standby() {
  if (orion_l2_ == nullptr) {
    return;
  }
  PhyProcess* dead = !phy_a_->alive() ? phy_a_.get()
                     : !phy_b_->alive() ? phy_b_.get()
                                        : nullptr;
  if (dead == nullptr) {
    return;
  }
  const bool is_a = dead == phy_a_.get();
  dead->restart();
  orion_l2_->adopt_standby(kRu, is_a ? kPhyA : kPhyB,
                           MacAddr{is_a ? kOrionAMac : kOrionBMac});
  // Re-arm the failure detector once the revived PHY's heartbeats flow.
  sim_.after(5_ms, [this, is_a] {
    mbox_->watch_phy(is_a ? kPhyA : kPhyB, MacAddr{kOrionL2Mac});
  });
}

DatagramPipe& Testbed::server_pipe(int i) {
  return app_server_->pipe_for(ues_.at(std::size_t(i))->id());
}

obs::ObservabilityConfig Testbed::obs_config() const {
  obs::ObservabilityConfig c;
  c.tracer.slot = config_.slots;
  // A slot's CRC indication is due one slot after the pipelined decode.
  c.tracer.deadline_slots = config_.phy.ul_pipeline_slots + 1;
  return c;
}

void Testbed::attach_observability(obs::Observability& o) {
  obs_ = &o;
  sim_.set_obs(&o);
  auto& reg = o.registry();
  switch_->bind_obs(reg.counter("switch.frames"),
                    reg.counter("switch.generator_packets"));

  // Gauge samplers: pulled only at snapshot time, so the hot path pays
  // nothing. The Testbed destructor freezes them (see ~Testbed).
  reg.gauge("sim.executed_events")->bind([this] {
    return double(sim_.executed_events());
  });
  reg.gauge("sim.pending_events")->bind([this] {
    return double(sim_.pending_events());
  });
  const auto phy_gauges = [&reg](const std::string& prefix, PhyProcess* phy) {
    if (phy == nullptr) {
      return;
    }
    reg.gauge(prefix + ".slots_processed")->bind([phy] {
      return double(phy->stats().slots_processed);
    });
    reg.gauge(prefix + ".ul_crc_ok")->bind([phy] {
      return double(phy->stats().ul_crc_ok);
    });
    reg.gauge(prefix + ".ul_crc_fail")->bind([phy] {
      return double(phy->stats().ul_crc_fail);
    });
    reg.gauge(prefix + ".fapi_starved_slots")->bind([phy] {
      return double(phy->stats().fapi_starved_slots);
    });
    reg.gauge(prefix + ".null_slots")->bind([phy] {
      return double(phy->stats().null_slots);
    });
  };
  phy_gauges("phy.a", phy_a_.get());
  phy_gauges("phy.b", phy_b_.get());
  if (ru_ != nullptr) {
    reg.gauge("ru.dropped_ttis")->bind([this] {
      return double(ru_->stats().dropped_ttis);
    });
    reg.gauge("ru.dl_cplane_rx")->bind([this] {
      return double(ru_->stats().dl_cplane_rx);
    });
  }
  if (l2_ != nullptr) {
    reg.gauge("l2.ul_tbs_granted")->bind([this] {
      return double(l2_->stats().ul_tbs_granted);
    });
    reg.gauge("l2.ul_tbs_lost")->bind([this] {
      return double(l2_->stats().ul_tbs_lost);
    });
  }
  if (mbox_ != nullptr) {
    reg.gauge("mbox.failures_detected")->bind([this] {
      return double(mbox_->stats().failures_detected);
    });
    reg.gauge("mbox.migrations_executed")->bind([this] {
      return double(mbox_->stats().migrations_executed);
    });
    reg.gauge("mbox.dl_blocked")->bind([this] {
      return double(mbox_->stats().dl_blocked);
    });
  }
  if (orion_l2_ != nullptr) {
    reg.gauge("orion.failure_notifications")->bind([this] {
      return double(orion_l2_->stats().failure_notifications);
    });
    reg.gauge("orion.failovers_initiated")->bind([this] {
      return double(orion_l2_->stats().failovers_initiated);
    });
    reg.gauge("orion.duplicate_notifications_ignored")->bind([this] {
      return double(orion_l2_->stats().duplicate_notifications_ignored);
    });
    reg.gauge("orion.drained_responses_accepted")->bind([this] {
      return double(orion_l2_->stats().drained_responses_accepted);
    });
    reg.gauge("orion.drain_windows_expired")->bind([this] {
      return double(orion_l2_->stats().drain_windows_expired);
    });
  }
  if (orion_a_ != nullptr) {
    reg.gauge("orion.a.nulls_injected_dl")->bind([this] {
      return double(orion_a_->nulls_injected_dl());
    });
    reg.gauge("orion.a.nulls_injected_ul")->bind([this] {
      return double(orion_a_->nulls_injected_ul());
    });
  }
}

Nanos Testbed::last_failover_notification() const {
  if (config_.mode == TestbedMode::kBaselineFailover) {
    return baseline_notify_time_;
  }
  if (orion_l2_ == nullptr) {
    return 0;
  }
  for (auto it = orion_l2_->migration_log().rbegin();
       it != orion_l2_->migration_log().rend(); ++it) {
    if (it->kind == MigrationEvent::Kind::kFailover) {
      return it->notification_at;
    }
  }
  return 0;
}

}  // namespace slingshot
