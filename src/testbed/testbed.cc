#include "testbed/testbed.h"

#include <algorithm>
#include <string>

#include "common/log.h"
#include "common/pool.h"
#include "obs/obs.h"

namespace slingshot {
namespace {

// Station MAC plan for the edge datacenter. Slots 0/1 keep the original
// A/B addresses; extra cells and pool PHYs extend into ranges chosen so
// no extension collides with a legacy address (0x1A01 + p would hit the
// Orion range at p = 16).
constexpr std::uint64_t kRuMac = 0x0A01;
constexpr std::uint64_t kRu2Mac = 0x0A02;
constexpr std::uint64_t kPhyAMac = 0x1A01;
constexpr std::uint64_t kPhyBMac = 0x1B01;
constexpr std::uint64_t kVirtualPhyMac = 0x1F00;  // RUs address this (§5.1)
constexpr std::uint64_t kOrionAMac = 0x2A01;
constexpr std::uint64_t kOrionBMac = 0x2B01;
constexpr std::uint64_t kOrionL2Mac = 0x2C01;
constexpr std::uint64_t kAppServerMac = 0x3A01;
constexpr std::uint64_t kL2GwMac = 0x3B01;
constexpr std::uint64_t kL2bGwMac = 0x3B02;
constexpr std::uint64_t kBaselineCtlMac = 0x3C01;

std::uint64_t ru_mac_for(int cell) {
  return cell == 0 ? kRuMac : cell == 1 ? kRu2Mac : kRuMac + std::uint64_t(cell);
}

std::uint64_t phy_mac_for(int index) {
  if (index == 0) {
    return kPhyAMac;
  }
  if (index == 1) {
    return kPhyBMac;
  }
  return 0x4A01 + std::uint64_t(index);
}

std::uint64_t orion_mac_for(int index) {
  if (index == 0) {
    return kOrionAMac;
  }
  if (index == 1) {
    return kOrionBMac;
  }
  return 0x5A01 + std::uint64_t(index);
}

// Naming keeps the legacy "a"/"b" suffixes for slots 0/1 (component
// names feed name-derived RNG streams — see common/rng.h — so they are
// part of the golden-trace contract).
std::string unit_suffix(int index) {
  if (index == 0) {
    return "a";
  }
  if (index == 1) {
    return "b";
  }
  return std::to_string(index);
}

std::string ru_name_for(int cell) {
  return cell == 0 ? "ru" : "ru" + std::to_string(cell + 1);
}

// UE ids: cell 0 uses 1.., cell c uses 100*c+1.. (cell 1's 101.. is the
// legacy num_ues_ru2 numbering).
std::uint16_t ue_base_id(int cell) {
  return cell == 0 ? 1 : std::uint16_t(100 * cell + 1);
}

}  // namespace

Testbed::Testbed(TestbedConfig config) : config_(config), sim_(config.seed) {
  if (config_.ue.grant_starvation_timeout == 0) {
    config_.ue.grant_starvation_timeout = 300_ms;
  }
  // Normalize the cell plan. The legacy num_ues/num_ues_ru2 form maps
  // onto one or two cells with the fixed cross-assigned A/B pair; the
  // `cells` form switches to dedicated primaries + a shared pool.
  if (!config_.cells.empty()) {
    pool_wiring_ = true;
    for (const auto& spec : config_.cells) {
      CellPlan p;
      p.num_ues = spec.num_ues;
      p.snrs = spec.ue_mean_snr_db;
      p.bulk_ues = spec.bulk_ues;
      plan_.push_back(std::move(p));
    }
    const int n = int(plan_.size());
    num_phys_ = config_.num_phys > 0
                    ? config_.num_phys
                    : n + std::max(0, config_.standby_pool_size);
    num_phys_ = std::max(num_phys_, n);
  } else {
    CellPlan p0;
    p0.num_ues = config_.num_ues;
    p0.snrs = config_.ue_mean_snr_db;
    p0.bulk_ues = config_.bulk_ues;
    if (int(p0.snrs.size()) > config_.num_ues) {
      p0.snrs.resize(std::size_t(config_.num_ues));
    }
    plan_.push_back(std::move(p0));
    if (config_.num_ues_ru2 > 0) {
      CellPlan p1;
      p1.num_ues = config_.num_ues_ru2;
      for (std::size_t i = std::size_t(config_.num_ues);
           i < config_.ue_mean_snr_db.size(); ++i) {
        p1.snrs.push_back(config_.ue_mean_snr_db[i]);
      }
      plan_.push_back(std::move(p1));
    }
    num_phys_ = 2;
  }

  log_time_.install([this] { return sim_.now(); });
  build_fabric();
  build_vran();
  switch (config_.mode) {
    case TestbedMode::kSlingshot:
      wire_slingshot();
      break;
    case TestbedMode::kCoupledNoOrion:
      wire_coupled();
      break;
    case TestbedMode::kBaselineFailover:
      wire_baseline();
      break;
  }
}

Testbed::~Testbed() {
  // A longer-lived Observability must not sample destroyed components;
  // collapse its gauge callbacks to their final values. (log_time_'s own
  // destructor likewise uninstalls the sim-clock log time source.)
  if (obs_ != nullptr) {
    obs_->registry().freeze_gauges();
    sim_.set_obs(nullptr);
  }
}

int Testbed::primary_phy_index(int cell) const {
  if (pool_wiring_) {
    return cell;  // dedicated primary per cell
  }
  return cell == 0 ? 0 : 1;  // legacy cross-assignment
}

PhyProcess* Testbed::phy_by_id(PhyId id) {
  const int index = int(id.value()) - 1;
  if (index < 0 || index >= int(phys_.size())) {
    return nullptr;
  }
  return phys_[std::size_t(index)].get();
}

void Testbed::build_fabric() {
  const int num_cells = int(plan_.size());
  // Port plan: 0..9 are the legacy stations, extra RUs start at 10
  // (so the legacy ru2 keeps port 10), extra PHYs + their Orions follow.
  const int extra_base = 10 + std::max(0, num_cells - 1);
  const int ports_needed = extra_base + 2 * std::max(0, num_phys_ - 2);
  switch_ = std::make_unique<ProgrammableSwitch>(sim_,
                                                 std::max(12, ports_needed));
  auto add_station = [&](int port, std::uint64_t mac) -> Nic* {
    links_.push_back(std::make_unique<Link>(
        sim_, config_.link, sim_.rng().stream("link.loss", std::uint64_t(port))));
    nics_.push_back(std::make_unique<Nic>(sim_, MacAddr{mac}));
    nics_.back()->attach(*links_.back());
    switch_->attach_link(port, *links_.back());
    switch_->add_l2_route(MacAddr{mac}, port);
    return nics_.back().get();
  };
  // Fault plans pull specific cables, so remember which link serves
  // which RU/PHY station (links_ itself is ordered by port plan).
  auto last_link = [&]() { return links_.back().get(); };
  ru_nics_.push_back(add_station(0, ru_mac_for(0)));
  ru_links_.push_back(last_link());
  phy_nics_.push_back(add_station(1, phy_mac_for(0)));
  phy_links_.push_back(last_link());
  phy_nics_.push_back(add_station(2, phy_mac_for(1)));
  phy_links_.push_back(last_link());
  orion_phy_nics_.push_back(add_station(3, orion_mac_for(0)));
  orion_phy_nics_.push_back(add_station(4, orion_mac_for(1)));
  orion_l2_nic_ = add_station(5, kOrionL2Mac);
  app_nic_ = add_station(6, kAppServerMac);
  l2_gw_nic_ = add_station(7, kL2GwMac);
  l2b_gw_nic_ = add_station(8, kL2bGwMac);
  baseline_ctl_nic_ = add_station(9, kBaselineCtlMac);
  for (int c = 1; c < num_cells; ++c) {
    ru_nics_.push_back(add_station(10 + (c - 1), ru_mac_for(c)));
    ru_links_.push_back(last_link());
  }
  for (int p = 2; p < num_phys_; ++p) {
    phy_nics_.push_back(add_station(extra_base + 2 * (p - 2), phy_mac_for(p)));
    phy_links_.push_back(last_link());
    orion_phy_nics_.push_back(
        add_station(extra_base + 2 * (p - 2) + 1, orion_mac_for(p)));
  }

  // The middlebox must share the deployment's numerology or its boundary
  // math disagrees with the Orions'.
  auto mbox_cfg = config_.mbox;
  mbox_cfg.slots = config_.slots;
  mbox_ = std::make_shared<FronthaulMiddlebox>(sim_, mbox_cfg);
  mbox_->register_ru(ru_id(0), MacAddr{ru_mac_for(0)});
  for (int p = 0; p < num_phys_; ++p) {
    mbox_->register_phy(phy_id(p), MacAddr{phy_mac_for(p)});
  }
  mbox_->bind_ru_to_phy(ru_id(0), phy_id(primary_phy_index(0)));
  for (int c = 1; c < num_cells; ++c) {
    mbox_->register_ru(ru_id(c), MacAddr{ru_mac_for(c)});
    mbox_->bind_ru_to_phy(ru_id(c), phy_id(primary_phy_index(c)));
  }
  mbox_->set_dl_source_filter(config_.dl_source_filter);
  switch_->install_program(mbox_);

  if (config_.fabric.frer) {
    build_fabric_plane_b();
  }

  // gPTP-style clock-error model: node 0 is the switch (its drifting
  // oscillator stretches the packet generator's tick train — the
  // failure detector's only clock); RU/PHY hosts get their own nodes
  // for NIC timestamps. With the default config no node is created and
  // every clock is ideal.
  const auto& sync_cfg = config_.fabric.sync;
  if (sync_cfg.max_abs_offset > 0 || sync_cfg.drift_ppm != 0.0) {
    auto make_node = [&](std::uint64_t idx) -> TimeSyncNode* {
      sync_nodes_.push_back(std::make_unique<TimeSyncNode>(
          sync_cfg, sim_.rng().stream("tsync", idx)));
      return sync_nodes_.back().get();
    };
    TimeSyncNode* sw = make_node(0);
    switch_->set_tick_perturbation(
        [sw](Nanos period) { return sw->perturb_period(period); });
    std::uint64_t idx = 1;
    for (Nic* nic : ru_nics_) {
      TimeSyncNode* n = make_node(idx++);
      nic->set_clock([n](Nanos t) { return n->local_time(t); });
    }
    for (Nic* nic : phy_nics_) {
      TimeSyncNode* n = make_node(idx++);
      nic->set_clock([n](Nanos t) { return n->local_time(t); });
    }
  }

  // Background cross-traffic: one injector per PHY server egress (the
  // direction heartbeats share), aimed at a station whose rx side
  // ignores best-effort frames.
  if (config_.fabric.cross_traffic_load > 0.0) {
    CrossTrafficConfig cc;
    cc.load = config_.fabric.cross_traffic_load;
    cc.link_bandwidth_bps = config_.link.bandwidth_bps;
    cc.frame_bytes = config_.fabric.cross_frame_bytes;
    cc.mean_burst_frames = config_.fabric.cross_burst_frames;
    cc.sink = MacAddr{kBaselineCtlMac};
    for (std::size_t p = 0; p < phy_nics_.size(); ++p) {
      injectors_.push_back(std::make_unique<CrossTrafficInjector>(
          sim_, *phy_nics_[p], cc, sim_.rng().stream("xtraffic", p)));
    }
  }
}

void Testbed::build_fabric_plane_b() {
  const int num_cells = int(plan_.size());
  switch_b_ = std::make_unique<ProgrammableSwitch>(sim_, switch_->num_ports());

  // Plane B runs its own middlebox instance for forwarding (UL
  // redirection to the bound PHY, DL source filtering) but never arms
  // watches or a generator: detection stays a plane-A concern.
  auto mbox_cfg = config_.mbox;
  mbox_cfg.slots = config_.slots;
  mbox_b_ = std::make_shared<FronthaulMiddlebox>(sim_, mbox_cfg);
  for (int p = 0; p < num_phys_; ++p) {
    mbox_b_->register_phy(phy_id(p), MacAddr{phy_mac_for(p)});
  }
  for (int c = 0; c < num_cells; ++c) {
    mbox_b_->register_ru(ru_id(c), MacAddr{ru_mac_for(c)});
    mbox_b_->bind_ru_to_phy(ru_id(c), phy_id(primary_phy_index(c)));
  }
  mbox_b_->set_dl_source_filter(config_.dl_source_filter);
  switch_b_->install_program(mbox_b_);

  // Interpose a sequence-recovery point between both planes' links and
  // each protected station's NIC, then install the replication point as
  // the NIC's tx path. Orion/L2/app stations stay plane-A-only: FRER
  // protects the fronthaul streams, not the control plane.
  auto protect = [&](int port, std::uint64_t mac, Nic* nic,
                     Link* plane_a) -> Link* {
    links_b_.push_back(std::make_unique<Link>(
        sim_, config_.link,
        sim_.rng().stream("link.loss.b", std::uint64_t(port))));
    Link* plane_b = links_b_.back().get();
    switch_b_->attach_link(port, *plane_b);
    switch_b_->add_l2_route(MacAddr{mac}, port);
    eliminators_.push_back(std::make_unique<FrerEliminator>(
        sim_, config_.fabric.frer_elim, *nic));
    FrerEliminator* elim = eliminators_.back().get();
    plane_a->attach_a(elim);
    plane_b->attach_a(elim);
    replicators_.push_back(
        std::make_unique<FrerReplicator>(*nic, *plane_a, *plane_b));
    return plane_b;
  };
  const int extra_base = 10 + std::max(0, num_cells - 1);
  for (int c = 0; c < num_cells; ++c) {
    const int port = c == 0 ? 0 : 10 + (c - 1);
    ru_links_b_.push_back(protect(port, ru_mac_for(c),
                                  ru_nics_[std::size_t(c)],
                                  ru_links_[std::size_t(c)]));
  }
  for (int p = 0; p < num_phys_; ++p) {
    const int port = p == 0 ? 1 : p == 1 ? 2 : extra_base + 2 * (p - 2);
    phy_links_b_.push_back(protect(port, phy_mac_for(p),
                                   phy_nics_[std::size_t(p)],
                                   phy_links_[std::size_t(p)]));
  }
}

void Testbed::build_vran() {
  const int num_cells = int(plan_.size());
  for (int p = 0; p < num_phys_; ++p) {
    PhyConfig phy_cfg = config_.phy;
    phy_cfg.slots = config_.slots;
    phy_cfg.obs_phy_id = phy_id(p).value();
    // secondary_ldpc_iters models an upgraded PHY build on the standby
    // side: PHY-B in the legacy pair, the pool members in pool wiring.
    const bool is_standby = pool_wiring_ ? p >= num_cells : p == 1;
    if (is_standby && config_.secondary_ldpc_iters > 0) {
      phy_cfg.ldpc_max_iters = config_.secondary_ldpc_iters;
    }
    phys_.push_back(std::make_unique<PhyProcess>(
        sim_, "phy-" + unit_suffix(p), phy_cfg, *phy_nics_[std::size_t(p)]));
  }
  for (int c = 0; c < num_cells; ++c) {
    for (int p = 0; p < num_phys_; ++p) {
      phys_[std::size_t(p)]->add_ru_binding(ru_id(c), MacAddr{ru_mac_for(c)});
    }
  }

  L2Config l2_cfg = config_.l2;
  l2_cfg.slots = config_.slots;
  l2_ = std::make_unique<L2Process>(sim_, "l2", l2_cfg);

  for (int c = 0; c < num_cells; ++c) {
    RuConfig ru_cfg;
    ru_cfg.id = ru_id(c);
    ru_cfg.slots = config_.slots;
    ru_cfg.virtual_phy_mac = MacAddr{kVirtualPhyMac};
    rus_.push_back(std::make_unique<RadioUnit>(
        sim_, ru_name_for(c), ru_cfg, *ru_nics_[std::size_t(c)]));
  }

  for (int c = 0; c < num_cells; ++c) {
    const auto& cell = plan_[std::size_t(c)];
    for (int i = 0; i < cell.num_ues; ++i) {
      UeConfig ue_cfg = config_.ue;
      ue_cfg.id = UeId{std::uint16_t(ue_base_id(c) + i)};
      ue_cfg.slots = config_.slots;
      FadingConfig fading = config_.fading;
      if (i < int(cell.snrs.size())) {
        fading.mean_snr_db = cell.snrs[std::size_t(i)];
      }
      auto ue = std::make_unique<UserEquipment>(
          sim_, "ue-" + std::to_string(ue_cfg.id.value()), ue_cfg, fading,
          sim_.rng().stream("ue.chan", std::uint64_t(ue_cfg.id.value())));
      rus_[std::size_t(c)]->attach_ue(ue.get());
      ue_pipes_.push_back(make_ue_modem_pipe(*ue));
      ues_.push_back(std::move(ue));
      ue_cell_.push_back(c);
    }
  }

  // Massive-UE batches: one SoA pool per cell that asked for one. The
  // batch rides configured grants (no per-UE L2 context) and owns a
  // private RNG, so attaching it perturbs no tracer UE.
  for (int c = 0; c < num_cells; ++c) {
    const int bulk = plan_[std::size_t(c)].bulk_ues;
    if (bulk <= 0) {
      batches_.push_back(nullptr);
      continue;
    }
    UeBatchConfig bcfg = config_.bulk;
    bcfg.schedule.cell = std::uint8_t(c);
    bcfg.schedule.population = std::uint32_t(bulk);
    bcfg.seed = splitmix64(config_.seed ^ (0xB4170000ULL + std::uint64_t(c)));
    bcfg.fading = batch_fading_params(config_.fading);
    const auto slot_ns = config_.slots.slot_duration;
    bcfg.rlf_timeout_slots = config_.ue.rlf_timeout / slot_ns;
    bcfg.reattach_delay_slots = config_.ue.reattach_delay / slot_ns;
    bcfg.grant_starvation_slots = config_.ue.grant_starvation_timeout / slot_ns;
    auto batch = std::make_unique<UeBatch>(bcfg);
    rus_[std::size_t(c)]->attach_batch(batch.get());
    l2_->configure_bulk(ru_id(c), bcfg.schedule);
    batches_.push_back(std::move(batch));
  }

  app_server_ =
      std::make_unique<AppServer>(sim_, *app_nic_, MacAddr{kL2GwMac});
  l2_gw_ = std::make_unique<L2UserGateway>(*l2_gw_nic_, *l2_,
                                           MacAddr{kAppServerMac});
}

void Testbed::wire_slingshot() {
  const int num_cells = int(plan_.size());
  for (int p = 0; p < num_phys_; ++p) {
    orion_phys_.push_back(std::make_unique<OrionPhySide>(
        sim_, "orion-" + unit_suffix(p), *orion_phy_nics_[std::size_t(p)],
        config_.orion_costs));
    // The loss-compensation watchdog ticks per TTI; give every side the
    // deployment numerology instead of the default.
    orion_phys_.back()->set_slot_config(config_.slots);
  }
  OrionL2Config ol2;
  ol2.slots = config_.slots;
  ol2.standby_mode = config_.standby_mode;
  ol2.failover_margin_slots = config_.failover_margin_slots;
  ol2.cmd_extra_delay = config_.orion_cmd_extra_delay;
  ol2.costs = config_.orion_costs;
  orion_l2_ = std::make_unique<OrionL2Side>(sim_, "orion-l2", *orion_l2_nic_,
                                            ol2);

  // L2 <-> L2-side Orion over SHM.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(orion_l2_.get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  mbx_to_l2_ = std::make_unique<ShmFapiPipe>(sim_);
  mbx_to_l2_->connect(l2_.get());
  orion_l2_->connect_l2(mbx_to_l2_.get());

  // PHY-side Orions <-> PHYs over SHM.
  for (int p = 0; p < num_phys_; ++p) {
    auto to_phy = std::make_unique<ShmFapiPipe>(sim_);
    to_phy->connect(phys_[std::size_t(p)].get());
    orion_phys_[std::size_t(p)]->connect_phy(to_phy.get());
    to_phy_pipes_.push_back(std::move(to_phy));
    auto phy_out = std::make_unique<ShmFapiPipe>(sim_);
    phy_out->connect(orion_phys_[std::size_t(p)].get());
    phys_[std::size_t(p)]->connect_fapi_out(phy_out.get());
    phy_out_pipes_.push_back(std::move(phy_out));
  }

  for (int p = 0; p < num_phys_; ++p) {
    orion_phys_[std::size_t(p)]->set_l2_orion_mac(MacAddr{kOrionL2Mac});
  }
  if (pool_wiring_) {
    for (int p = 0; p < num_phys_; ++p) {
      orion_l2_->add_phy_peer(phy_id(p), MacAddr{orion_mac_for(p)});
    }
    // Pool members first, so every set_ru_primary finds a standby.
    for (int p = num_cells; p < num_phys_; ++p) {
      orion_l2_->add_pool_standby(phy_id(p), MacAddr{orion_mac_for(p)});
    }
    for (int c = 0; c < num_cells; ++c) {
      orion_l2_->set_ru_primary(ru_id(c), phy_id(primary_phy_index(c)));
    }
  } else {
    orion_l2_->add_phy_peer(kPhyA, MacAddr{kOrionAMac});
    orion_l2_->add_phy_peer(kPhyB, MacAddr{kOrionBMac});
    orion_l2_->set_ru_phys(kRu, kPhyA, kPhyB);
    if (num_cells > 1) {
      orion_l2_->set_ru_phys(kRu2, kPhyB, kPhyA);  // cross-assigned
    }
  }
}

void Testbed::wire_coupled() {
  // Tightly-coupled deployment: the L2 and PHY exchange FAPI directly
  // over SHM (§2.2); the standby PHY is left idle.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(phys_[0].get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  auto phy_out = std::make_unique<ShmFapiPipe>(sim_);
  phy_out->connect(l2_.get());
  phys_[0]->connect_fapi_out(phy_out.get());
  phy_out_pipes_.push_back(std::move(phy_out));
}

void Testbed::wire_baseline() {
  // Two independent full vRAN stacks (§8.1's baseline). Primary:
  // l2 + phy-a; hot backup: l2b + phy-b with identical configuration
  // but no UE contexts.
  l2_to_mbx_ = std::make_unique<ShmFapiPipe>(sim_);
  l2_to_mbx_->connect(phys_[0].get());
  l2_->connect_fapi_out(l2_to_mbx_.get());
  auto phy_out = std::make_unique<ShmFapiPipe>(sim_);
  phy_out->connect(l2_.get());
  phys_[0]->connect_fapi_out(phy_out.get());
  phy_out_pipes_.push_back(std::move(phy_out));

  L2Config l2b_cfg = config_.l2;
  l2b_cfg.slots = config_.slots;
  l2b_ = std::make_unique<L2Process>(sim_, "l2-backup", l2b_cfg);
  l2b_to_phy_b_ = std::make_unique<ShmFapiPipe>(sim_);
  l2b_to_phy_b_->connect(phys_[1].get());
  l2b_->connect_fapi_out(l2b_to_phy_b_.get());
  phy_b_to_l2b_ = std::make_unique<ShmFapiPipe>(sim_);
  phy_b_to_l2b_->connect(l2b_.get());
  phys_[1]->connect_fapi_out(phy_b_to_l2b_.get());

  l2b_gw_ = std::make_unique<L2UserGateway>(*l2b_gw_nic_, *l2b_,
                                            MacAddr{kAppServerMac});

  // A minimal failover controller: on the switch's failure
  // notification, re-route the fronthaul to the backup stack's PHY.
  // The UEs' RRC contexts do not exist there, so they must re-attach.
  baseline_ctl_nic_->set_rx_handler([this](Packet&& frame) {
    if (frame.eth.ethertype != EtherType::kFailureNotify ||
        baseline_failed_over_) {
      return;
    }
    baseline_failed_over_ = true;
    baseline_notify_time_ = sim_.now();
    SLOG_WARN("baseline", "re-routing fronthaul to backup vRAN");
    MigrateOnSlotCmd cmd;
    cmd.ru = kRu;
    cmd.dest_phy = kPhyB;
    cmd.slot = SlotPoint::from_index(config_.slots.slot_at(sim_.now()) + 2,
                                     config_.slots);
    Packet packet;
    packet.eth.dst = MacAddr::broadcast();
    packet.eth.ethertype = EtherType::kSlingshotCmd;
    packet.payload = serialize_migrate_cmd(cmd);
    baseline_ctl_nic_->send(std::move(packet));
    // The core network re-routes user traffic to the backup stack.
    app_server_->set_gateway_mac(MacAddr{kL2bGwMac});
  });
}

void Testbed::start() {
  for (auto& phy : phys_) {
    phy->power_on();
  }
  l2_->power_on();
  for (int c = 0; c < num_cells(); ++c) {
    l2_->start_carrier(CarrierConfig{ru_id(c)});
  }
  if (l2b_) {
    l2b_->power_on();
    l2b_->start_carrier(CarrierConfig{kRu});
  }
  for (auto& ru : rus_) {
    ru->power_on();
  }

  for (std::size_t i = 0; i < ues_.size(); ++i) {
    auto& ue = ues_[i];
    const RuId serving = ru_id(ue_cell_[i]);
    ue->power_on();
    l2_->add_ue(ue->id(), serving);
    UserEquipment* raw = ue.get();
    ue->set_on_reattached([this, raw, serving] {
      L2Process* active =
          (config_.mode == TestbedMode::kBaselineFailover &&
           baseline_failed_over_)
              ? l2b_.get()
              : l2_.get();
      active->add_ue(raw->id(), serving);
    });
    // Server-side pipes exist from the start (apps bind to them).
    (void)app_server_->pipe_for(ue->id());
  }

  // Failure detection: the packet generator emulates the timeout; arm
  // watches after a short grace period so the detector does not fire
  // before the PHYs' first heartbeats. Every *fed* PHY is watched —
  // assigned pool standbys included, so a dying standby is detected.
  // Idle pool members (not yet backing any cell) get no FAPI feed and
  // hence no heartbeats; arming their detector would fire a false
  // failure. Orion arms a member's watch when it assigns it.
  for (auto& injector : injectors_) {
    injector->start();
  }
  switch_->start_packet_generator(mbox_->generator_period());
  const MacAddr notify_mac = config_.mode == TestbedMode::kSlingshot
                                 ? MacAddr{kOrionL2Mac}
                                 : MacAddr{kBaselineCtlMac};
  if (config_.mode != TestbedMode::kCoupledNoOrion &&
      config_.fabric.arm_detector) {
    sim_.after(5_ms, [this, notify_mac] {
      for (int p = 0; p < num_phys_; ++p) {
        const PhyId id = phy_id(p);
        if (pool_wiring_ && orion_l2_ != nullptr) {
          bool in_use = false;
          for (int c = 0; c < num_cells() && !in_use; ++c) {
            in_use = orion_l2_->active_phy(ru_id(c)) == id ||
                     orion_l2_->standby_phy(ru_id(c)) == id;
          }
          if (!in_use) {
            continue;
          }
        }
        mbox_->watch_phy(id, notify_mac);
      }
    });
  }
}

void Testbed::kill_phy(PhyId phy) {
  PhyProcess* p = phy_by_id(phy);
  if (p != nullptr) {
    p->kill();
  }
}

void Testbed::planned_migration(int lead_slots) {
  planned_migration_of(kRu, lead_slots);
}

void Testbed::planned_migration_of(RuId ru, int lead_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  orion_l2_->migrate(ru, boundary);
}

void Testbed::misaligned_migration(int lead_slots, int fronthaul_skew_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  orion_l2_->migrate(kRu, boundary);
  // Overwrite the fronthaul boundary with a skewed one, as a buggy or
  // non-TTI-aligned implementation would.
  MigrateOnSlotCmd cmd;
  cmd.ru = kRu;
  cmd.dest_phy = orion_l2_->standby_phy(kRu);
  cmd.slot = SlotPoint::from_index(boundary + fronthaul_skew_slots,
                                   config_.slots);
  Packet packet;
  packet.eth.dst = MacAddr::broadcast();
  packet.eth.ethertype = EtherType::kSlingshotCmd;
  packet.payload = serialize_migrate_cmd(cmd);
  baseline_ctl_nic_->send(std::move(packet));
}

void Testbed::planned_migration_with_state_transfer(int lead_slots) {
  if (orion_l2_ == nullptr) {
    return;
  }
  const auto boundary = config_.slots.slot_at(sim_.now()) + lead_slots;
  PhyProcess* from = phy_by_id(orion_l2_->active_phy(kRu));
  PhyProcess* to = phy_by_id(orion_l2_->standby_phy(kRu));
  if (from == nullptr || to == nullptr) {
    return;
  }
  orion_l2_->migrate(kRu, boundary);
  // Oracle: hand the destination the source's soft state at the
  // boundary instant.
  sim_.at(config_.slots.slot_start(boundary),
          [from, to] { to->transfer_soft_state_from(*from); });
}

void Testbed::revive_phy_as_standby(PhyId phy) {
  if (orion_l2_ == nullptr) {
    return;
  }
  PhyProcess* dead = phy_by_id(phy);
  if (dead == nullptr || dead->alive()) {
    return;
  }
  dead->restart();
  // Init replay covers every RU this PHY backs — a standby shared by
  // several cells must come back warm for all of them.
  orion_l2_->adopt_standby_all(phy,
                               MacAddr{orion_mac_for(int(phy.value()) - 1)});
  // Re-arm the failure detector once the revived PHY's heartbeats flow.
  sim_.after(5_ms, [this, phy] {
    mbox_->watch_phy(phy, MacAddr{kOrionL2Mac});
  });
}

void Testbed::revive_dead_phy_as_standby() {
  for (int p = 0; p < num_phys_; ++p) {
    if (!phys_[std::size_t(p)]->alive()) {
      revive_phy_as_standby(phy_id(p));
      return;
    }
  }
}

DatagramPipe& Testbed::server_pipe(int i) {
  return app_server_->pipe_for(ues_.at(std::size_t(i))->id());
}

Testbed::FrerTotals Testbed::frer_totals() const {
  FrerTotals t;
  for (const auto& r : replicators_) {
    t.frames_replicated += r->frames_replicated();
    t.bytes_replicated += r->bytes_replicated();
  }
  for (const auto& e : eliminators_) {
    const auto& s = e->stats();
    t.passed += s.passed;
    t.duplicates_eliminated += s.duplicates_eliminated;
    t.stale_discarded += s.stale_discarded;
    t.rogue_discarded += s.rogue_discarded;
    t.recovery_resets += s.recovery_resets;
  }
  return t;
}

std::uint64_t Testbed::cross_traffic_frames() const {
  std::uint64_t n = 0;
  for (const auto& injector : injectors_) {
    n += injector->frames_injected();
  }
  return n;
}

std::uint64_t Testbed::cross_traffic_bytes() const {
  std::uint64_t n = 0;
  for (const auto& injector : injectors_) {
    n += injector->bytes_injected();
  }
  return n;
}

Nanos Testbed::sync_max_abs_offset_seen() const {
  Nanos worst = 0;
  for (const auto& node : sync_nodes_) {
    worst = std::max(worst, node->max_abs_offset_seen());
  }
  return worst;
}

obs::ObservabilityConfig Testbed::obs_config() const {
  obs::ObservabilityConfig c;
  c.tracer.slot = config_.slots;
  // A slot's CRC indication is due one slot after the pipelined decode.
  c.tracer.deadline_slots = config_.phy.ul_pipeline_slots + 1;
  return c;
}

void Testbed::attach_observability(obs::Observability& o) {
  obs_ = &o;
  sim_.set_obs(&o);
  auto& reg = o.registry();
  switch_->bind_obs(reg.counter("switch.frames"),
                    reg.counter("switch.generator_packets"));

  // Gauge samplers: pulled only at snapshot time, so the hot path pays
  // nothing. The Testbed destructor freezes them (see ~Testbed).
  reg.gauge("sim.executed_events")->bind([this] {
    return double(sim_.executed_events());
  });
  reg.gauge("sim.pending_events")->bind([this] {
    return double(sim_.pending_events());
  });
  const auto phy_gauges = [&reg](const std::string& prefix, PhyProcess* phy) {
    if (phy == nullptr) {
      return;
    }
    reg.gauge(prefix + ".slots_processed")->bind([phy] {
      return double(phy->stats().slots_processed);
    });
    reg.gauge(prefix + ".ul_crc_ok")->bind([phy] {
      return double(phy->stats().ul_crc_ok);
    });
    reg.gauge(prefix + ".ul_crc_fail")->bind([phy] {
      return double(phy->stats().ul_crc_fail);
    });
    reg.gauge(prefix + ".fapi_starved_slots")->bind([phy] {
      return double(phy->stats().fapi_starved_slots);
    });
    reg.gauge(prefix + ".null_slots")->bind([phy] {
      return double(phy->stats().null_slots);
    });
  };
  for (int p = 0; p < num_phys_; ++p) {
    phy_gauges("phy." + unit_suffix(p), phys_[std::size_t(p)].get());
  }
  for (int c = 0; c < num_cells(); ++c) {
    RadioUnit* ru = rus_[std::size_t(c)].get();
    const std::string prefix = ru_name_for(c);
    reg.gauge(prefix + ".dropped_ttis")->bind([ru] {
      return double(ru->stats().dropped_ttis);
    });
    reg.gauge(prefix + ".dl_cplane_rx")->bind([ru] {
      return double(ru->stats().dl_cplane_rx);
    });
    // Massive-UE batch gauges (only for cells that carry a pool).
    if (UeBatch* batch = batches_[std::size_t(c)].get(); batch != nullptr) {
      reg.gauge(prefix + ".bulk.population")->bind([batch] {
        return double(batch->population());
      });
      reg.gauge(prefix + ".bulk.connected")->bind([batch] {
        return double(batch->connected_count());
      });
      reg.gauge(prefix + ".bulk.reattaching")->bind([batch] {
        return double(batch->reattaching_count());
      });
      reg.gauge(prefix + ".bulk.bytes_per_ue")->bind([batch] {
        return batch->bytes_per_ue();
      });
      reg.gauge(prefix + ".bulk.rlf_events")->bind([batch] {
        return double(batch->stats().rlf_events);
      });
      reg.gauge(prefix + ".bulk.max_ctrl_gap_slots")->bind([batch] {
        return double(batch->stats().max_ctrl_gap_slots);
      });
    }
  }
  // Process-memory gauges (satellite: peak/current RSS + bytes parked
  // on this thread's buffer-pool freelists).
  reg.gauge("mem.peak_rss_bytes")->bind([] {
    return double(obs::sample_peak_rss_bytes());
  });
  reg.gauge("mem.current_rss_bytes")->bind([] {
    return double(obs::sample_current_rss_bytes());
  });
  reg.gauge("mem.pool_retained_bytes")->bind([] {
    // All live threads' freelists, not just the sampling thread's own
    // (worker/transport threads park buffers too; see pool.h).
    return double(BufferPools::global_retained_bytes());
  });
  reg.gauge("fapi.parse_errors")->bind([] {
    return double(fapi_parse_errors());
  });
  if (l2_ != nullptr) {
    reg.gauge("l2.ul_tbs_granted")->bind([this] {
      return double(l2_->stats().ul_tbs_granted);
    });
    reg.gauge("l2.ul_tbs_lost")->bind([this] {
      return double(l2_->stats().ul_tbs_lost);
    });
  }
  if (mbox_ != nullptr) {
    reg.gauge("mbox.failures_detected")->bind([this] {
      return double(mbox_->stats().failures_detected);
    });
    reg.gauge("mbox.migrations_executed")->bind([this] {
      return double(mbox_->stats().migrations_executed);
    });
    reg.gauge("mbox.dl_blocked")->bind([this] {
      return double(mbox_->stats().dl_blocked);
    });
  }
  // Split link-drop counters (no receiver / random loss / fault hook),
  // summed over every fabric link.
  reg.gauge("net.dropped_no_receiver")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->dropped_no_receiver();
    }
    return double(n);
  });
  reg.gauge("net.dropped_loss")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->dropped_loss();
    }
    return double(n);
  });
  reg.gauge("net.dropped_fault")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->dropped_fault();
    }
    return double(n);
  });
  // Fabric-layer counters (tail drops on finite queues, cable pulls,
  // in-flight census) summed over both planes' links.
  reg.gauge("net.dropped_overflow")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->dropped_overflow();
    }
    for (const auto& link : links_b_) {
      n += link->dropped_overflow();
    }
    return double(n);
  });
  reg.gauge("net.dropped_down")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->dropped_down();
    }
    for (const auto& link : links_b_) {
      n += link->dropped_down();
    }
    return double(n);
  });
  reg.gauge("net.frames_in_flight")->bind([this] {
    std::uint64_t n = 0;
    for (const auto& link : links_) {
      n += link->frames_in_flight();
    }
    for (const auto& link : links_b_) {
      n += link->frames_in_flight();
    }
    return double(n);
  });
  reg.gauge("switch.unwired_emits")->bind([this] {
    return double(switch_->emits_to_unwired_port() +
                  (switch_b_ ? switch_b_->emits_to_unwired_port() : 0));
  });
  if (!injectors_.empty()) {
    reg.gauge("fabric.cross_frames_injected")->bind([this] {
      return double(cross_traffic_frames());
    });
  }
  if (!sync_nodes_.empty()) {
    reg.gauge("fabric.sync_max_abs_offset_ns")->bind([this] {
      return double(sync_max_abs_offset_seen());
    });
  }
  if (config_.fabric.frer) {
    reg.gauge("frer.passed")->bind([this] {
      return double(frer_totals().passed);
    });
    reg.gauge("frer.duplicates_eliminated")->bind([this] {
      return double(frer_totals().duplicates_eliminated);
    });
    reg.gauge("frer.stale_discarded")->bind([this] {
      return double(frer_totals().stale_discarded);
    });
    reg.gauge("frer.rogue_discarded")->bind([this] {
      return double(frer_totals().rogue_discarded);
    });
    reg.gauge("frer.recovery_resets")->bind([this] {
      return double(frer_totals().recovery_resets);
    });
    reg.gauge("frer.frames_replicated")->bind([this] {
      return double(frer_totals().frames_replicated);
    });
    reg.gauge("frer.bytes_replicated")->bind([this] {
      return double(frer_totals().bytes_replicated);
    });
  }
  if (orion_l2_ != nullptr) {
    reg.gauge("orion.failure_notifications")->bind([this] {
      return double(orion_l2_->stats().failure_notifications);
    });
    reg.gauge("orion.failovers_initiated")->bind([this] {
      return double(orion_l2_->stats().failovers_initiated);
    });
    reg.gauge("orion.duplicate_notifications_ignored")->bind([this] {
      return double(orion_l2_->stats().duplicate_notifications_ignored);
    });
    reg.gauge("orion.drained_responses_accepted")->bind([this] {
      return double(orion_l2_->stats().drained_responses_accepted);
    });
    reg.gauge("orion.drain_windows_expired")->bind([this] {
      return double(orion_l2_->stats().drain_windows_expired);
    });
    reg.gauge("orion.unprotected_notifications")->bind([this] {
      return double(orion_l2_->stats().unprotected_notifications);
    });
    reg.gauge("orion.standby_failures")->bind([this] {
      return double(orion_l2_->stats().standby_failures);
    });
    reg.gauge("orion.standbys_reassigned")->bind([this] {
      return double(orion_l2_->stats().standbys_reassigned);
    });
    reg.gauge("orion.pool_available")->bind([this] {
      return double(orion_l2_->pool_available());
    });
  }
  if (!orion_phys_.empty()) {
    reg.gauge("orion.a.nulls_injected_dl")->bind([this] {
      return double(orion_phys_[0]->nulls_injected_dl());
    });
    reg.gauge("orion.a.nulls_injected_ul")->bind([this] {
      return double(orion_phys_[0]->nulls_injected_ul());
    });
  }
}

Nanos Testbed::last_failover_notification() const {
  if (config_.mode == TestbedMode::kBaselineFailover) {
    return baseline_notify_time_;
  }
  if (orion_l2_ == nullptr) {
    return 0;
  }
  for (auto it = orion_l2_->migration_log().rbegin();
       it != orion_l2_->migration_log().rend(); ++it) {
    if (it->kind == MigrationEvent::Kind::kFailover) {
      return it->notification_at;
    }
  }
  return 0;
}

}  // namespace slingshot
