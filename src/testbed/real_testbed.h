// Real-process deployment testbed: Orion, each PHY, and the L2 run as
// separate OS processes exchanging the existing FAPI wire format over
// real UDP sockets plus shared-memory rings for the IQ-heavy path, all
// paced by CLOCK_MONOTONIC TTIs instead of the simulator clock. This is
// the repo's answer to the paper's §8 hardware testbed: same protocol
// machinery (fapi/wire.h datagrams, null-FAPI hot standby, episode
// ledger), real kill -9 fault injection, wall-clock detection and
// restoration gaps.
//
// Two modes:
//   * fork mode (default) — the launcher opens every socket and maps
//     every ring *before* fork(), so children inherit the wiring with
//     no rendezvous; roles report results through key=value files in a
//     temp directory; the fault plan is a literal SIGKILL of the active
//     PHY's pid at the scripted wall slot.
//   * inproc mode (--inproc; CI-safe) — the same role loops run as
//     threads of one process; the kill becomes a freeze flag the PHY
//     role observes, which produces the identical external symptom
//     (its socket goes silent, datagrams queue unread).
//
// Conformance contract: for the same FaultPlan, the real run's episode
// ledger (kind, ru, phy sequence) must equal the simulator's — see
// run_sim_fault_plan()/ledgers_conform(). That is what licenses using
// the simulator's failover numbers as predictions for the real mode.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/real_orion.h"

namespace slingshot {

// Scripted fault to inject during a run (shared between real and sim
// conformance runs so the two ledgers describe the same experiment).
struct FaultPlan {
  // L2-paced slot at which the active PHY is killed; < 0 = no fault.
  std::int64_t kill_slot = -1;
};

struct RealTestbedConfig {
  bool inproc = false;            // threads instead of processes
  std::int64_t tti_ns = 500'000;  // µ=1 slot, matching SlotConfig
  std::int64_t run_slots = 400;
  FaultPlan fault;
  std::int64_t detect_timeout_ns = 2'000'000;  // 4 slots of silence
  std::size_t num_phys = 2;
  std::size_t ring_bytes = std::size_t{1} << 16;
};

struct RealRunResult {
  bool ok = false;        // all roles launched, ran, and reported
  bool restored = false;  // CRC flow re-established by run end
  std::int64_t kill_wall_ns = -1;  // CLOCK_MONOTONIC instant of the kill
  // kDetected wall time minus the kill instant (-1 when no fault ran).
  std::int64_t detection_ns = -1;
  // Longest interruption of the L2's CRC-indication flow — the
  // user-visible outage the paper plots in §8.2 (-1 when no fault ran).
  std::int64_t outage_ns = -1;
  std::int64_t max_ind_gap_ns = 0;
  std::uint64_t l2_crcs = 0;
  std::uint64_t l2_rx_records = 0;  // RX_DATA records off the SHM ring
  std::uint64_t l2_error_inds = 0;
  std::uint64_t parse_errors = 0;   // relay-side try_parse failures
  std::uint64_t pacer_overruns = 0;
  std::int64_t last_crc_slot = -1;
  std::vector<EpisodeEvent> ledger;
  std::string error;  // non-empty iff a launch/collection step failed
};

class RealTestbed {
 public:
  explicit RealTestbed(RealTestbedConfig config) : config_(config) {}

  // Blocking: spawn the roles, execute the fault plan, reap everyone,
  // and assemble the measurements. Safe to call once per instance.
  RealRunResult run();

 private:
  RealTestbedConfig config_;
};

// Run the same fault plan through the simulator testbed and extract its
// episode ledger via OrionL2Tap (sim timestamps are virtual; only the
// (kind, ru, phy) sequence is meaningful for conformance).
[[nodiscard]] std::vector<EpisodeEvent> run_sim_fault_plan(
    const FaultPlan& plan);

// True when the two ledgers describe the same episode sequence:
// identical (kind, ru, phy) triples in identical order.
[[nodiscard]] bool ledgers_conform(const std::vector<EpisodeEvent>& lhs,
                                   const std::vector<EpisodeEvent>& rhs);

}  // namespace slingshot
