#include "ru/ru.h"

#include <gtest/gtest.h>

#include "net/nic.h"
#include "phy/tb_codec.h"

namespace slingshot {
namespace {

struct RuFixture {
  Simulator sim;
  Link link{sim, LinkConfig{}, sim.rng().stream("loss")};
  Nic nic{sim, MacAddr{0xA1}};
  RuConfig config;
  std::unique_ptr<RadioUnit> ru;
  std::unique_ptr<UserEquipment> ue;
  std::vector<Packet> uplink_tx;  // frames the RU sent toward the switch
  struct TxSink final : FrameSink {
    RuFixture* owner;
    void handle_frame(Packet&& p) override {
      owner->uplink_tx.push_back(std::move(p));
    }
  } tx_sink;

  RuFixture() {
    config.id = RuId{1};
    config.virtual_phy_mac = MacAddr{0xBF};
    nic.attach(link);
    tx_sink.owner = this;
    link.attach_b(&tx_sink);
    ru = std::make_unique<RadioUnit>(sim, "ru-test", config, nic);

    UeConfig ue_cfg;
    ue_cfg.id = UeId{1};
    ue_cfg.processing_jitter = 0;
    FadingConfig fading;
    fading.mean_snr_db = 30.0;
    ue = std::make_unique<UserEquipment>(sim, "ue", ue_cfg, fading,
                                         sim.rng().stream("chan"));
    ru->attach_ue(ue.get());
    ru->power_on();
    ue->power_on();
  }

  void deliver_dl(FronthaulPacket packet, std::uint64_t src = 0xB1) {
    link.send_from_b(
        make_fronthaul_frame(MacAddr{src}, MacAddr{0xA1}, packet));
  }

  [[nodiscard]] FronthaulPacket dl_control(std::int64_t slot) const {
    FronthaulPacket p;
    p.header.direction = FhDirection::kDownlink;
    p.header.plane = FhPlane::kControl;
    p.header.slot = SlotPoint::from_index(slot, config.slots);
    p.header.ru = RuId{1};
    return p;
  }
};

TEST(RadioUnit, BroadcastsDlControlToUes) {
  RuFixture f;
  const auto before = f.ue->last_dl_control_time();
  f.sim.run_until(1_ms);
  f.deliver_dl(f.dl_control(2));
  f.sim.run_until(2_ms);
  EXPECT_GT(f.ue->last_dl_control_time(), before);
  EXPECT_EQ(f.ru->stats().dl_cplane_rx, 1);
}

TEST(RadioUnit, DeliversDlDataThroughUeChannel) {
  RuFixture f;
  const std::vector<std::uint8_t> payload(200, 0x3C);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  auto packet = f.dl_control(2);
  packet.header.plane = FhPlane::kUser;
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{0};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 200;
  section.codeword_bits = enc.codeword_bits;
  section.iq = enc.iq;
  section.shadow_payload = payload;
  packet.uplane.sections.push_back(std::move(section));
  f.sim.run_until(1_ms);
  f.deliver_dl(packet);
  f.sim.run_until(2_ms);
  // The UE decoded it (through its 30 dB channel).
  EXPECT_EQ(f.ue->stats().dl_tbs_ok, 1);
}

TEST(RadioUnit, CollectsGrantedUplinkAndAddressesVirtualPhy) {
  RuFixture f;
  f.ue->send_uplink({1, 2, 3});
  // Grant for UL slot 9, announced via DL control.
  auto control = f.dl_control(2);
  control.cplane.ul_grants.push_back(
      UlGrant{UeId{1}, 9, 0, 300, HarqId{0}, true});
  f.sim.run_until(1_ms);
  f.deliver_dl(control);
  f.sim.run_until(6_ms);  // past UL slot 9's emission offset
  bool found_uplane = false;
  for (const auto& frame : f.uplink_tx) {
    const auto header = peek_fronthaul_header(frame.payload);
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(frame.eth.dst, MacAddr{0xBF});  // virtual PHY address
    if (header->plane == FhPlane::kUser) {
      EXPECT_EQ(header->direction, FhDirection::kUplink);
      const auto packet = parse_fronthaul(frame.payload);
      ASSERT_EQ(packet.uplane.sections.size(), 1U);
      found_uplane = true;
    }
  }
  EXPECT_TRUE(found_uplane);
  EXPECT_EQ(f.ru->stats().ul_uplane_tx, 1);
}

TEST(RadioUnit, ForwardsUciInUlControlPlane) {
  RuFixture f;
  // Make the UE produce a NACK by feeding it garbage DL data.
  auto packet = f.dl_control(2);
  packet.header.plane = FhPlane::kUser;
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{1};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 100;
  section.codeword_bits = 648;
  section.iq.assign(340, Cf{0.001F, 0.0F});
  section.shadow_payload.assign(100, 1);
  packet.uplane.sections.push_back(std::move(section));
  f.sim.run_until(1_ms);
  f.deliver_dl(packet);
  f.sim.run_until(6_ms);  // next UL slot carries the UCI
  bool found_uci = false;
  for (const auto& frame : f.uplink_tx) {
    const auto header = peek_fronthaul_header(frame.payload);
    if (header->plane == FhPlane::kControl) {
      const auto parsed = parse_fronthaul(frame.payload);
      ASSERT_EQ(parsed.cplane.uci.size(), 1U);
      EXPECT_FALSE(parsed.cplane.uci[0].ack);
      found_uci = true;
    }
  }
  EXPECT_TRUE(found_uci);
}

TEST(RadioUnit, CountsConflictingSources) {
  RuFixture f;
  f.sim.run_until(1_ms);
  f.deliver_dl(f.dl_control(2), 0xB1);
  f.deliver_dl(f.dl_control(2), 0xB2);  // same TTI, different PHY
  f.sim.run_until(2_ms);
  EXPECT_EQ(f.ru->stats().conflicting_sources, 1);
}

TEST(RadioUnit, CountsDroppedTtis) {
  RuFixture f;
  // DL control for slots 4..6, then silence for slots 7..20.
  for (std::int64_t s = 4; s <= 6; ++s) {
    f.sim.at(Nanos(s) * 500_us + 50_us, [&f, s] {
      f.deliver_dl(f.dl_control(s));
    });
  }
  f.sim.run_until(11'000_us);  // through slot 21
  EXPECT_GE(f.ru->stats().dropped_ttis, 10);
}

TEST(RadioUnit, IgnoresForeignRuPackets) {
  RuFixture f;
  auto packet = f.dl_control(2);
  packet.header.ru = RuId{9};  // not ours
  f.sim.run_until(1_ms);
  f.deliver_dl(packet);
  f.sim.run_until(2_ms);
  EXPECT_EQ(f.ru->stats().dl_cplane_rx, 0);
}

}  // namespace
}  // namespace slingshot
