// Shard-determinism golden trace: the 8-cell sharded testbed must
// produce bit-identical per-island executed counts and trace hashes at
// shard counts 1, 2, and 4 — through a primary-PHY failover, the
// coordinator's spare grant, and the island-side pool replenishment.
// Registered with the `tsan` ctest label so the thread-sanitizer preset
// exercises the window barrier and mailbox under instrumentation.
#include "testbed/sharded_testbed.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "transport/apps.h"

namespace slingshot {
namespace {

constexpr int kCells = 8;
constexpr Nanos kKillAt = 300_ms;
constexpr Nanos kHorizon = 600_ms;

struct RunFingerprint {
  std::vector<std::uint64_t> hashes;
  std::vector<std::uint64_t> executed;
  std::uint64_t fingerprint = 0;
  std::uint64_t delivered = 0;
  std::uint64_t episodes = 0;
  std::uint64_t grants = 0;
  std::int64_t failed_cell_dropped = 0;
  std::int64_t max_other_dropped = 0;
  std::size_t pool_restored = 0;  // failed island's pool after replenish

  bool operator==(const RunFingerprint&) const = default;
};

RunFingerprint run_scenario(int shards) {
  ShardedTestbedConfig cfg;
  cfg.seed = 8;
  cfg.cells.assign(kCells, CellSpec{1, {20.0}});
  cfg.shards = shards;
  cfg.pool_per_cell = 1;
  cfg.coordinator_spares = kCells;
  ShardedTestbed tb{cfg};

  std::vector<std::unique_ptr<UdpFlow>> flows;
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  for (int c = 0; c < kCells; ++c) {
    Testbed& island = tb.island(c);
    flows.push_back(std::make_unique<UdpFlow>(
        island.sim(), island.ue_pipe(0), island.server_pipe(0), flow_cfg));
  }

  tb.start();
  tb.run_until(100_ms);
  for (auto& flow : flows) {
    flow->start();
  }
  tb.kill_primary_at(0, kKillAt);
  tb.run_until(kHorizon);

  RunFingerprint fp;
  for (int c = 0; c < kCells; ++c) {
    fp.hashes.push_back(tb.island_hash(c));
    fp.executed.push_back(tb.island_executed(c));
  }
  fp.fingerprint = tb.fingerprint();
  fp.delivered = tb.engine().events_delivered();
  fp.episodes = tb.coordinator().stats().episodes;
  fp.grants = tb.coordinator().stats().grants_issued;
  fp.failed_cell_dropped = tb.island(0).ru_at(0).stats().dropped_ttis;
  for (int c = 1; c < kCells; ++c) {
    const auto dropped = tb.island(c).ru_at(0).stats().dropped_ttis;
    if (dropped > fp.max_other_dropped) {
      fp.max_other_dropped = dropped;
    }
  }
  fp.pool_restored = tb.island(0).orion().pool_available();
  return fp;
}

TEST(ShardDeterminism, GoldenTraceBitIdenticalAcrossShardCounts) {
  const RunFingerprint serial = run_scenario(1);

  // The failover episode itself behaved: only the killed island dropped
  // TTIs, within the detection + 2-slot-boundary budget, the untouched
  // islands rode through clean, and the coordinator saw the episode and
  // replenished the consumed pool slice (protection restored).
  EXPECT_GE(serial.episodes, 1U);
  EXPECT_GE(serial.grants, 1U);
  EXPECT_GT(serial.failed_cell_dropped, 0);
  EXPECT_LE(serial.failed_cell_dropped, 4);
  EXPECT_EQ(serial.max_other_dropped, 0);
  EXPECT_EQ(serial.pool_restored, 1U);  // revived PHY rejoined the pool
  // Cross-island traffic actually flowed through the mailbox.
  EXPECT_GE(serial.delivered, 1U);

  // The tentpole contract: every per-island count and hash — and the
  // fleet fingerprint folding them — is bit-identical when the same
  // islands run on 2 and 4 worker threads.
  EXPECT_EQ(serial, run_scenario(2));
  EXPECT_EQ(serial, run_scenario(4));
}

TEST(ShardDeterminism, ShardCountIsNotPartOfTheSeed) {
  // Different seeds must change the fingerprint (the equality above is
  // meaningful, not a constant function).
  ShardedTestbedConfig cfg;
  cfg.cells.assign(2, CellSpec{1, {20.0}});
  cfg.shards = 1;
  auto fingerprint = [&](std::uint64_t seed) {
    cfg.seed = seed;
    ShardedTestbed tb{cfg};
    tb.start();
    tb.run_until(50_ms);
    return tb.fingerprint();
  };
  EXPECT_NE(fingerprint(1), fingerprint(2));
}

}  // namespace
}  // namespace slingshot
