// Multi-cell scale-out tests: N cells x M PHYs with Orion's shared
// standby pool. Covers pool assignment and consumption, concurrent
// double failures inside one detection window, pool exhaustion with the
// explicit "unprotected" state and deferred failover on revive, and the
// legacy-pair revive path replaying inits for every RU a PHY backs.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "inject/fault_plan.h"
#include "inject/injector.h"
#include "transport/apps.h"

namespace slingshot {
namespace {

TestbedConfig pool_config(int cells, int pool_size) {
  TestbedConfig cfg;
  cfg.seed = 11;
  cfg.cells.assign(std::size_t(cells), CellSpec{1, {20.0}});
  cfg.standby_pool_size = pool_size;
  return cfg;
}

// The extended notification identity: every kFailureNotify frame lands
// in exactly one outcome counter.
bool identity_holds(const OrionL2Stats& s) {
  return s.failure_notifications ==
         s.failovers_initiated + s.duplicate_notifications_ignored +
             s.stale_notifications_ignored + s.unprotected_notifications +
             s.standby_failures;
}

TEST(ScaleOut, PoolStandbyIsSharedAcrossCells) {
  Testbed tb{pool_config(4, 1)};
  tb.start();
  tb.run_until(300_ms);

  // One standby (PHY index 4 -> PhyId 5) backs all four primaries.
  ASSERT_EQ(tb.num_phys(), 5);
  for (int c = 0; c < 4; ++c) {
    EXPECT_EQ(tb.orion().active_phy(tb.ru_id(c)), tb.phy_id(c)) << "cell " << c;
    EXPECT_EQ(tb.orion().standby_phy(tb.ru_id(c)), tb.phy_id(4)) << "cell " << c;
    EXPECT_TRUE(tb.ue(c).connected()) << "cell " << c;
    EXPECT_EQ(tb.ru_at(c).stats().dropped_ttis, 0) << "cell " << c;
  }
  EXPECT_TRUE(tb.orion().pool_mode());
  EXPECT_EQ(tb.orion().pool_available(), 1U);
  // The shared standby runs on null FAPI for every cell, decodes nothing.
  EXPECT_GT(tb.phy(4).stats().null_slots, 500);
  EXPECT_EQ(tb.phy(4).stats().ul_tbs_decoded, 0);
}

TEST(ScaleOut, ConsumingAStandbyRepointsTheOtherCells) {
  Testbed tb{pool_config(3, 2)};
  tb.start();
  tb.run_until(400_ms);
  // All three cells drew the first pool member (PhyId 4).
  for (int c = 0; c < 3; ++c) {
    ASSERT_EQ(tb.orion().standby_phy(tb.ru_id(c)), tb.phy_id(3));
  }

  tb.kill_phy(tb.phy_id(0));  // cell 0's primary
  tb.run_until(1'500_ms);

  // Cell 0 was promoted onto the shared standby; the other two cells
  // must never be left pointing at the now-primary member.
  EXPECT_EQ(tb.orion().active_phy(tb.ru_id(0)), tb.phy_id(3));
  for (int c = 1; c < 3; ++c) {
    EXPECT_EQ(tb.orion().active_phy(tb.ru_id(c)), tb.phy_id(c)) << "cell " << c;
    EXPECT_EQ(tb.orion().standby_phy(tb.ru_id(c)), tb.phy_id(4)) << "cell " << c;
    EXPECT_EQ(tb.ru_at(c).stats().dropped_ttis, 0) << "cell " << c;
  }
  // Cell 0's vacated secondary slot is refilled from the pool too, so it
  // keeps protection after the failover.
  EXPECT_EQ(tb.orion().standby_phy(tb.ru_id(0)), tb.phy_id(4));
  EXPECT_EQ(tb.orion().stats().standbys_reassigned, 3U);
  EXPECT_EQ(tb.orion().pool_available(), 1U);
  EXPECT_TRUE(identity_holds(tb.orion().stats()));
  for (int c = 0; c < 3; ++c) {
    EXPECT_TRUE(tb.ue(c).connected()) << "cell " << c;
    EXPECT_EQ(tb.ue(c).stats().reattach_events, 0) << "cell " << c;
  }
}

TEST(ScaleOut, ConcurrentDoubleFailureInOneDetectionWindow) {
  Testbed tb{pool_config(2, 2)};
  FaultInjector inject{tb};
  // Both primaries die 100 us apart — well inside the 450 us detection
  // timeout, so the second failure overlaps the first failover while the
  // pool is being consumed.
  inject.arm(make_double_failure_plan(500_ms, tb.phy_id(0), tb.phy_id(1),
                                      100_us));
  tb.start();
  tb.run_until(2'000_ms);

  // Both cells must end on live PHYs drawn from the pool — never a
  // stale swap onto a member the concurrent failover already consumed.
  const PhyId active0 = tb.orion().active_phy(tb.ru_id(0));
  const PhyId active1 = tb.orion().active_phy(tb.ru_id(1));
  EXPECT_TRUE(tb.phy_by_id(active0)->alive());
  EXPECT_TRUE(tb.phy_by_id(active1)->alive());
  EXPECT_NE(active0, active1);

  const auto& s = tb.orion().stats();
  EXPECT_EQ(s.failovers_initiated, 2U);
  EXPECT_TRUE(identity_holds(s))
      << "notifications=" << s.failure_notifications
      << " failovers=" << s.failovers_initiated
      << " dup=" << s.duplicate_notifications_ignored
      << " stale=" << s.stale_notifications_ignored
      << " unprotected=" << s.unprotected_notifications
      << " standby_failures=" << s.standby_failures;

  for (int c = 0; c < 2; ++c) {
    EXPECT_TRUE(tb.ue(c).connected()) << "cell " << c;
    EXPECT_EQ(tb.ue(c).stats().reattach_events, 0) << "cell " << c;
    EXPECT_LE(tb.ru_at(c).stats().dropped_ttis, 4) << "cell " << c;
  }
}

TEST(ScaleOut, ExhaustedPoolEntersUnprotectedStateThenDeferredFailover) {
  Testbed tb{pool_config(2, 1)};
  tb.start();
  tb.run_until(400_ms);

  // First failure consumes the only pool member for cell 0; cell 1 is
  // left explicitly unprotected (no standby), not pointed at a stale one.
  tb.kill_phy(tb.phy_id(0));
  tb.run_until(900_ms);
  EXPECT_EQ(tb.orion().active_phy(tb.ru_id(0)), tb.phy_id(2));
  EXPECT_EQ(tb.orion().standby_phy(tb.ru_id(1)), PhyId{});
  EXPECT_EQ(tb.orion().pool_available(), 0U);

  // Second failure with the pool exhausted: no failover target exists.
  // The notification is accounted as "unprotected" — no swap happens.
  // (Detection takes ~450 us; check shortly after, and revive before
  // the UE's ~50 ms radio-link-failure timer expires.)
  tb.kill_phy(tb.phy_id(1));
  tb.run_until(905_ms);
  EXPECT_EQ(tb.orion().stats().unprotected_notifications, 1U);
  EXPECT_EQ(tb.orion().stats().failovers_initiated, 1U);
  EXPECT_EQ(tb.orion().active_phy(tb.ru_id(1)), tb.phy_id(1));  // still dead

  // An operator restarts the first dead PHY into the pool: the deferred
  // failover executes immediately and cell 1 recovers.
  tb.revive_phy_as_standby(tb.phy_id(0));
  tb.run_until(2'500_ms);
  EXPECT_EQ(tb.orion().stats().deferred_failovers_executed, 1U);
  EXPECT_EQ(tb.orion().active_phy(tb.ru_id(1)), tb.phy_id(0));
  EXPECT_TRUE(tb.phy(0).alive());
  EXPECT_GT(tb.phy(0).stats().ul_tbs_decoded, 50);
  EXPECT_TRUE(identity_holds(tb.orion().stats()));
  for (int c = 0; c < 2; ++c) {
    EXPECT_TRUE(tb.ue(c).connected()) << "cell " << c;
    EXPECT_EQ(tb.ue(c).stats().reattach_events, 0) << "cell " << c;
  }
}

TEST(ScaleOut, LegacyReviveReplaysInitsForEveryRuThePhyBacks) {
  // Legacy cross-assigned pair: PHY-A is RU1's primary and RU2's
  // standby. After A dies and both RUs live on B, reviving A must
  // replay the init sequence for *both* RUs — then a second failover
  // (B dies) moves both onto the revived A without a reattach.
  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  cfg.num_ues_ru2 = 1;
  cfg.ue_mean_snr_db = {20.0, 20.0};
  Testbed tb{cfg};
  tb.start();
  tb.run_until(400_ms);

  tb.kill_phy(Testbed::kPhyA);
  tb.run_until(1'000_ms);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu), Testbed::kPhyB);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu2), Testbed::kPhyB);

  tb.revive_phy_as_standby(Testbed::kPhyA);
  tb.run_until(1'400_ms);
  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_EQ(tb.orion().standby_phy(Testbed::kRu), Testbed::kPhyA);
  EXPECT_EQ(tb.orion().standby_phy(Testbed::kRu2), Testbed::kPhyA);

  tb.kill_phy(Testbed::kPhyB);
  tb.run_until(3'000_ms);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu), Testbed::kPhyA);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu2), Testbed::kPhyA);
  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_GT(tb.phy_a().stats().ul_tbs_decoded, 50);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(tb.ue(i).connected()) << "ue " << i;
    EXPECT_EQ(tb.ue(i).stats().reattach_events, 0) << "ue " << i;
  }
  EXPECT_TRUE(identity_holds(tb.orion().stats()));
}

TEST(ScaleOut, FailedCellRecoversOthersUndisturbed) {
  Testbed tb{pool_config(4, 1)};
  tb.start();
  tb.run_until(500_ms);
  tb.kill_phy(tb.phy_id(2));
  tb.run_until(2'000_ms);

  EXPECT_EQ(tb.orion().active_phy(tb.ru_id(2)), tb.phy_id(4));
  EXPECT_LE(tb.ru_at(2).stats().dropped_ttis, 4);
  for (int c = 0; c < 4; ++c) {
    if (c == 2) {
      continue;
    }
    // Untouched cells: zero disruption.
    EXPECT_EQ(tb.orion().active_phy(tb.ru_id(c)), tb.phy_id(c)) << "cell " << c;
    EXPECT_EQ(tb.ru_at(c).stats().dropped_ttis, 0) << "cell " << c;
    EXPECT_TRUE(tb.ue(c).connected()) << "cell " << c;
  }
  // The pool is exhausted; the untouched cells are now unprotected —
  // explicitly, not silently pointed at the consumed member.
  for (int c = 0; c < 4; ++c) {
    EXPECT_NE(tb.orion().standby_phy(tb.ru_id(c)), tb.phy_id(4)) << "cell " << c;
  }
}

TEST(ScaleOut, PoolConfigIsDeterministicAcrossRuns) {
  auto run = [] {
    Testbed tb{pool_config(3, 1)};
    tb.start();
    tb.run_until(300_ms);
    tb.kill_phy(tb.phy_id(1));
    tb.run_until(700_ms);
    return std::tuple{tb.fabric().frames_processed(),
                      tb.orion().stats().failovers_initiated,
                      tb.orion().stats().standbys_reassigned,
                      tb.phy(3).stats().ul_tbs_decoded};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace slingshot
