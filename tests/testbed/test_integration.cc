// End-to-end integration tests on the full simulated testbed.
#include "testbed/testbed.h"

#include <gtest/gtest.h>

#include "transport/apps.h"
#include "transport/minitcp.h"

namespace slingshot {
namespace {

TestbedConfig base_config() {
  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  cfg.ue_mean_snr_db = {20.0};
  return cfg;
}

TEST(TestbedIntegration, BringUpIsStable) {
  Testbed tb{base_config()};
  tb.start();
  tb.run_until(500_ms);

  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_TRUE(tb.phy_b().alive());
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_EQ(tb.ue(0).stats().rlf_events, 0);
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 0);
  // No false-positive failure detections.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);
  // The primary did real uplink work; the standby only nulls.
  EXPECT_GT(tb.phy_a().stats().ul_tbs_decoded, 50);
  EXPECT_EQ(tb.phy_b().stats().ul_tbs_decoded, 0);
  EXPECT_GT(tb.phy_b().stats().null_slots, 500);
  // The standby's heartbeats were blocked from the RU.
  EXPECT_GT(tb.mbox().stats().dl_blocked, 100U);
  EXPECT_EQ(tb.ru().stats().conflicting_sources, 0);
  // No dropped TTIs in steady state.
  EXPECT_EQ(tb.ru().stats().dropped_ttis, 0);
}

TEST(TestbedIntegration, SnrFilterConvergesAndMcsAdapts) {
  auto cfg = base_config();
  cfg.ue_mean_snr_db = {24.0};
  Testbed tb{cfg};
  tb.start();
  tb.run_until(1'000_ms);
  // The PHY's filtered SNR should track the channel (which wanders a
  // few dB around its mean), and the L2's link adaptation should see
  // the same value the PHY filter holds.
  const double instantaneous = tb.ue(0).channel().snr_db();
  const double filtered = tb.phy_a().filtered_snr_db(Testbed::kRu, UeId{1});
  EXPECT_NEAR(filtered, 24.0, 6.0);
  EXPECT_NEAR(filtered, instantaneous, 6.0);
  EXPECT_NEAR(tb.l2().reported_snr_db(UeId{1}), filtered, 0.5);
}

TEST(TestbedIntegration, UplinkUdpFlowDelivers) {
  Testbed tb{base_config()};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);  // settle
  flow.start();
  tb.run_until(1'100_ms);

  // Goodput between 300 ms and 1.1 s should be near the offered rate.
  double bytes = 0;
  for (std::size_t bin = 30; bin < 110; ++bin) {
    bytes += flow.goodput().bin(bin);
  }
  const double mbps = bytes * 8.0 / 0.8 / 1e6;
  EXPECT_GT(mbps, 8.0);
  EXPECT_LE(mbps, 11.0);
  EXPECT_LT(flow.loss_rate(), 0.05);
}

TEST(TestbedIntegration, DownlinkUdpFlowDelivers) {
  Testbed tb{base_config()};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 30e6;
  UdpFlow flow{tb.sim(), tb.server_pipe(0), tb.ue_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(1'100_ms);

  double bytes = 0;
  for (std::size_t bin = 30; bin < 110; ++bin) {
    bytes += flow.goodput().bin(bin);
  }
  const double mbps = bytes * 8.0 / 0.8 / 1e6;
  EXPECT_GT(mbps, 24.0);
}

TEST(TestbedIntegration, PingRoundTripIsCellularScale) {
  Testbed tb{base_config()};
  PingApp ping{tb.sim(), tb.server_pipe(0), PingConfig{}};
  PingResponder responder{tb.ue_pipe(0)};
  tb.start();
  tb.run_until(100_ms);
  ping.start();
  tb.run_until(2'000_ms);

  ASSERT_GT(ping.samples().size(), 100U);
  PercentileTracker rtt;
  for (const auto& s : ping.samples()) {
    rtt.add(to_millis(s.rtt));
  }
  // The paper's testbed pings at ~22.8 ms median; ours should be in the
  // same cellular ballpark (well above datacenter RTTs).
  EXPECT_GT(rtt.quantile(0.5), 10.0);
  EXPECT_LT(rtt.quantile(0.5), 40.0);
}

TEST(TestbedIntegration, FailoverKeepsUeAttached) {
  Testbed tb{base_config()};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(500_ms);
  tb.kill_primary_phy();
  tb.run_until(1'500_ms);

  // Failure was detected and the failover executed.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 1U);
  EXPECT_GE(tb.mbox().stats().migrations_executed, 1U);
  const Nanos notified = tb.last_failover_notification();
  EXPECT_GT(notified, 500_ms);
  EXPECT_LT(notified, 501_ms);  // detection within ~1 ms (450 us + slack)

  // The UE never disconnected (no RLF, no reattach).
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_EQ(tb.ue(0).stats().rlf_events, 0);
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 0);

  // The standby took over real work.
  EXPECT_GT(tb.phy_b().stats().ul_tbs_decoded, 50);
  // At most a few TTIs dropped (vs hundreds of ms for VM migration).
  EXPECT_LE(tb.ru().stats().dropped_ttis, 4);

  // Traffic resumed: goodput in the second after failover.
  double bytes = 0;
  for (std::size_t bin = 60; bin < 150; ++bin) {
    bytes += flow.goodput().bin(bin);
  }
  EXPECT_GT(bytes * 8.0 / 0.9 / 1e6, 7.0);
}

TEST(TestbedIntegration, PlannedMigrationDropsNothing) {
  Testbed tb{base_config()};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(500_ms);
  tb.planned_migration();
  tb.run_until(1'500_ms);

  EXPECT_EQ(tb.ru().stats().dropped_ttis, 0);
  EXPECT_EQ(tb.ru().stats().conflicting_sources, 0);
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_GT(tb.phy_b().stats().ul_tbs_decoded, 50);
  // Pipelined uplink from the old primary was drained, not wasted.
  EXPECT_GT(tb.orion().stats().drained_responses_accepted, 0U);
  // The old primary keeps running on null FAPI (hot standby for the
  // way back) without crashing.
  EXPECT_TRUE(tb.phy_a().alive());
}

TEST(TestbedIntegration, BaselineFailoverDisconnectsForSeconds) {
  auto cfg = base_config();
  cfg.mode = TestbedMode::kBaselineFailover;
  Testbed tb{cfg};
  tb.start();
  tb.run_until(500_ms);
  tb.kill_primary_phy();
  // After ~300 ms of grant starvation the UE re-establishes, taking
  // ~6.2 s — so it is still down at +3 s and back by +8 s.
  tb.run_until(3'500_ms);
  EXPECT_FALSE(tb.ue(0).connected());
  tb.run_until(9'000_ms);
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 1);
  // The backup stack now serves the UE.
  EXPECT_TRUE(tb.l2_backup().has_ue(UeId{1}));
  EXPECT_GT(tb.phy_b().stats().ul_tbs_decoded, 0);
}

TEST(TestbedIntegration, CoupledModeCarriesTraffic) {
  auto cfg = base_config();
  cfg.mode = TestbedMode::kCoupledNoOrion;
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 5e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(800_ms);
  EXPECT_GT(flow.packets_received(), 100U);
}

TEST(TestbedIntegration, MultiUeFailoverKeepsEveryoneAttached) {
  auto cfg = base_config();
  cfg.num_ues = 3;
  cfg.ue_mean_snr_db = {22.0, 17.0, 12.0};
  Testbed tb{cfg};
  std::vector<std::unique_ptr<UdpFlow>> flows;
  for (int i = 0; i < 3; ++i) {
    UdpFlowConfig flow_cfg;
    flow_cfg.rate_bps = 4e6;
    flows.push_back(std::make_unique<UdpFlow>(
        tb.sim(), tb.ue_pipe(i), tb.server_pipe(i), flow_cfg));
  }
  tb.start();
  tb.run_until(100_ms);
  for (auto& f : flows) {
    f->start();
  }
  tb.run_until(500_ms);
  tb.kill_primary_phy();
  tb.run_until(2'000_ms);
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(tb.ue(i).connected()) << "ue " << i;
    EXPECT_EQ(tb.ue(i).stats().reattach_events, 0) << "ue " << i;
    EXPECT_GT(flows[std::size_t(i)]->packets_received(), 400U) << "ue " << i;
  }
  EXPECT_LE(tb.ru().stats().dropped_ttis, 4);
}

TEST(TestbedIntegration, ReviveDeadPhyEnablesSecondFailover) {
  Testbed tb{base_config()};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 8e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();

  // First failover: A dies, B takes over.
  tb.run_until(500_ms);
  tb.kill_primary_phy();
  tb.run_until(1'000_ms);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu), Testbed::kPhyB);

  // Operator restarts the dead process; Orion replays the stored init
  // sequence and adopts it as the new standby.
  tb.revive_dead_phy_as_standby();
  tb.run_until(2'000_ms);
  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_GT(tb.phy_a().stats().null_slots, 100);  // hot again, on nulls

  // Second failover: B dies, back to the revived A.
  tb.phy_b().kill();
  tb.run_until(3'500_ms);
  EXPECT_EQ(tb.orion().active_phy(Testbed::kRu), Testbed::kPhyA);
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 0);
  EXPECT_GT(tb.phy_a().stats().ul_tbs_decoded, 50);
  // Traffic still flows at the end.
  double tail_bytes = 0;
  for (std::size_t b = 300; b < 350; ++b) {
    tail_bytes += flow.goodput().bin(b);
  }
  EXPECT_GT(tail_bytes * 8 / 0.5 / 1e6, 5.0);
}

TEST(TestbedIntegration, StandbyModeDuplicateDoesRealDlWork) {
  auto cfg = base_config();
  cfg.standby_mode = StandbyMode::kDuplicate;
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 40e6;
  UdpFlow dl{tb.sim(), tb.server_pipe(0), tb.ue_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  dl.start();
  tb.run_until(1'000_ms);
  EXPECT_GT(tb.phy_b().stats().dl_tbs_encoded, 100);
  EXPECT_GT(tb.phy_b().stats().work_units, 0.0);
  // Its responses still never reach the L2.
  EXPECT_GT(tb.orion().stats().standby_responses_dropped, 0U);
}

TEST(TestbedIntegration, TwoRusWithCrossAssignedPrimaries) {
  auto cfg = base_config();
  cfg.num_ues = 1;       // UE 1 on RU 1 (primary: PHY-A)
  cfg.num_ues_ru2 = 1;   // UE 101 on RU 2 (primary: PHY-B)
  cfg.ue_mean_snr_db = {20.0, 20.0};
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 6e6;
  UdpFlow flow1{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  UdpFlow flow2{tb.sim(), tb.ue_pipe(1), tb.server_pipe(1), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow1.start();
  flow2.start();
  tb.run_until(800_ms);

  // Both RUs carry traffic; each PHY is primary for one RU and hot
  // standby for the other (the paper's co-location deployment).
  EXPECT_GT(flow1.packets_received(), 200U);
  EXPECT_GT(flow2.packets_received(), 200U);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu), Testbed::kPhyA);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu2), Testbed::kPhyB);
  EXPECT_GT(tb.phy_a().stats().ul_tbs_decoded, 50);
  EXPECT_GT(tb.phy_b().stats().ul_tbs_decoded, 50);
  EXPECT_GT(tb.phy_a().stats().null_slots, 500);  // standby role for RU2
  EXPECT_GT(tb.phy_b().stats().null_slots, 500);  // standby role for RU1
}

TEST(TestbedIntegration, KillingOnePhyOnlyMigratesItsRus) {
  auto cfg = base_config();
  cfg.num_ues = 1;
  cfg.num_ues_ru2 = 1;
  cfg.ue_mean_snr_db = {20.0, 20.0};
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 6e6;
  UdpFlow flow1{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  UdpFlow flow2{tb.sim(), tb.ue_pipe(1), tb.server_pipe(1), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow1.start();
  flow2.start();
  tb.run_until(500_ms);
  tb.kill_primary_phy();  // PHY-A: primary for RU1, standby for RU2
  tb.run_until(2'000_ms);

  // RU1 failed over to PHY-B; RU2 was never disturbed.
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu), Testbed::kPhyB);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu2), Testbed::kPhyB);
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_TRUE(tb.ue(1).connected());
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 0);
  EXPECT_EQ(tb.ue(1).stats().reattach_events, 0);
  EXPECT_EQ(tb.ru2().stats().dropped_ttis, 0);  // RU2: zero disruption
  EXPECT_GT(flow2.packets_received(), 600U);
}

TEST(TestbedIntegration, IndependentPerRuPlannedMigration) {
  auto cfg = base_config();
  cfg.num_ues = 1;
  cfg.num_ues_ru2 = 1;
  cfg.ue_mean_snr_db = {20.0, 20.0};
  Testbed tb{cfg};
  tb.start();
  tb.run_until(300_ms);
  tb.planned_migration_of(Testbed::kRu2);  // only RU2 moves (B -> A)
  tb.run_until(1'000_ms);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu), Testbed::kPhyA);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu2), Testbed::kPhyA);
  EXPECT_EQ(tb.ru().stats().dropped_ttis, 0);
  EXPECT_EQ(tb.ru2().stats().dropped_ttis, 0);
}

TEST(TestbedIntegration, LossyFabricSurvivesViaNullInjection) {
  auto cfg = base_config();
  cfg.link.loss_probability = 0.005;  // harsh for a datacenter fabric
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 8e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(3'000_ms);
  // Lost FAPI datagrams were compensated with injected nulls (§6.1);
  // neither PHY starved to death.
  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_TRUE(tb.phy_b().alive());
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_GT(flow.packets_received(), 1500U);
}

TEST(TestbedIntegration, HigherNumerologyWorks) {
  // §3 scope note: the ideas apply to mmWave-style configurations with
  // larger subcarrier spacing. Run the whole stack at µ=2 (250 µs
  // slots), with the PHY's intra-slot schedule and the detector scaled
  // accordingly.
  auto cfg = base_config();
  cfg.slots.slot_duration = 250'000;  // 250 µs TTIs
  cfg.slots.slots_per_frame = 40;
  cfg.slots.slots_per_subframe = 4;
  cfg.phy.cplane_offset = 15_us;
  cfg.phy.uplane_offset = 60_us;
  cfg.phy.midslot_sync_offset = 130_us;
  cfg.phy.tx_jitter = 17_us;
  cfg.phy.ul_indication_offset = 40_us;
  cfg.mbox.detector_timeout = 225_us;  // scales with the heartbeat gap
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 10e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(500_ms);
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);  // no false alarms
  EXPECT_GT(flow.packets_received(), 300U);

  // Failover still lands within a couple of (shorter) TTIs.
  tb.kill_primary_phy();
  tb.run_until(1'500_ms);
  EXPECT_TRUE(tb.ue(0).connected());
  EXPECT_EQ(tb.ue(0).stats().reattach_events, 0);
  EXPECT_LE(tb.ru().stats().dropped_ttis, 4);
  const Nanos detect = tb.last_failover_notification() - 500_ms;
  EXPECT_LT(detect, 250_us);  // faster detection at higher numerology
}

TEST(TestbedIntegration, SnrShockTriggersLinkAdaptation) {
  // A deep shadowing event (-14 dB) mid-run: the PHY's SNR filter
  // tracks it down, the L2 downgrades the MCS, and the link keeps
  // working at a lower rate instead of thrashing.
  auto cfg = base_config();
  cfg.ue_mean_snr_db = {21.0};
  Testbed tb{cfg};
  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 5e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};
  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(500_ms);
  const double snr_before = tb.l2().reported_snr_db(UeId{1});
  tb.ue(0).channel().set_mean_snr_db(7.0);
  tb.ue(0).channel().shock_snr_db(-14.0);
  tb.run_until(1'500_ms);
  const double snr_after = tb.l2().reported_snr_db(UeId{1});
  EXPECT_GT(snr_before, 17.0);
  EXPECT_LT(snr_after, 11.0);
  EXPECT_TRUE(tb.ue(0).connected());
  // Traffic still flows at QPSK rates.
  double tail = 0;
  for (std::size_t b = 100; b < 150; ++b) {
    tail += flow.goodput().bin(b);
  }
  EXPECT_GT(tail * 8 / 0.5 / 1e6, 3.0);
}

TEST(TestbedIntegration, L2DeathEventuallyStarvesThePhys) {
  // The FAPI contract cuts both ways: if the L2 stops issuing per-slot
  // requests, Orion's loss compensation bridges only a short gap (it
  // is for lost datagrams, not a dead L2) and the PHYs then crash —
  // the behaviour the paper observed with FlexRAN.
  Testbed tb{base_config()};
  tb.start();
  tb.run_until(500_ms);
  tb.l2().kill();
  tb.run_until(1'000_ms);
  EXPECT_FALSE(tb.phy_a().alive());
  EXPECT_FALSE(tb.phy_b().alive());
}

TEST(TestbedIntegration, DeterministicAcrossRuns) {
  auto run = [] {
    Testbed tb{base_config()};
    tb.start();
    tb.run_until(300_ms);
    return std::tuple{tb.phy_a().stats().ul_crc_ok,
                      tb.phy_a().stats().ul_crc_fail,
                      tb.fabric().frames_processed()};
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace slingshot
