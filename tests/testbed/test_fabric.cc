// Realistic-fabric layer: inertness at defaults, FRER end-to-end
// resilience, cross-traffic injection, and the gPTP sync-error model,
// all through the full testbed.
#include <gtest/gtest.h>

#include <unordered_set>

#include "common/log.h"
#include "testbed/testbed.h"
#include "transport/apps.h"

namespace slingshot {
namespace {

// FNV-1a over the fields that identify one distinct fronthaul frame:
// origin, tx timestamp, and payload. Two frames hashing equal are the
// same frame delivered twice.
std::uint64_t frame_fingerprint(const Packet& p) {
  std::uint64_t h = 1469598103934665603ULL;
  auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xFF;
      h *= 1099511628211ULL;
    }
  };
  mix(p.eth.src.bits());
  mix(std::uint64_t(p.created_at));
  for (std::uint8_t b : p.payload) {
    h ^= b;
    h *= 1099511628211ULL;
  }
  return h;
}

// With every fabric knob at its default the layer must be provably
// absent: the steady-state golden scenario reproduces the pinned event
// count and (time, seq) trace hash bit-for-bit.
TEST(Fabric, IdealConfigReproducesGoldenTrace) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 42;
  cfg.num_ues = 2;
  cfg.ue_mean_snr_db = {18.0, 7.0};
  cfg.link = LinkConfig{};      // explicit ideal link
  cfg.fabric = FabricConfig{};  // explicit ideal fabric
  Testbed tb{cfg};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};

  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.run_until(500_ms);

  // Same pins as GoldenTrace.SteadyStateMatchesSeedImplementation.
  EXPECT_EQ(tb.sim().executed_events(), 117124ULL);
  EXPECT_EQ(tb.sim().trace_hash(), 0x72da9490d4437484ULL);
  // And the fabric layer reports itself absent.
  EXPECT_EQ(tb.fabric_b(), nullptr);
  EXPECT_EQ(tb.frer_totals().passed, 0U);
  EXPECT_EQ(tb.cross_traffic_frames(), 0U);
  EXPECT_EQ(tb.sync_max_abs_offset_seen(), 0);
  EXPECT_EQ(tb.phy_link(0).dropped_overflow(), 0U);
}

TEST(Fabric, FrerSurvivesSingleLinkKillWithZeroOutage) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  cfg.fabric.frer = true;
  cfg.fabric.arm_detector = false;  // pure replication, no failover
  Testbed tb{cfg};
  ASSERT_NE(tb.fabric_b(), nullptr);
  ASSERT_NE(tb.phy_link_b(0), nullptr);

  // Independent duplicate-leak detector: every eCPRI frame reaching the
  // RU NIC past the eliminator must be unique.
  std::unordered_set<std::uint64_t> seen;
  std::uint64_t duplicates_delivered = 0;
  tb.ru_nic().set_rx_interceptor([&](Packet& p) {
    if (p.eth.ethertype == EtherType::kEcpri &&
        !seen.insert(frame_fingerprint(p)).second) {
      ++duplicates_delivered;
    }
    return true;
  });

  tb.start();
  tb.run_until(250_ms);
  const auto dropped_before = tb.ru().stats().dropped_ttis;

  // Cable pull on PHY-A's plane-A link: both DL and UL on plane A die;
  // plane B carries every frame through.
  tb.phy_link(0).set_down(true);
  tb.run_until(450_ms);

  EXPECT_EQ(tb.ru().stats().dropped_ttis, dropped_before);  // zero outage
  EXPECT_EQ(duplicates_delivered, 0U);
  const auto totals = tb.frer_totals();
  EXPECT_GT(totals.passed, 0U);
  EXPECT_GT(totals.duplicates_eliminated, 0U);  // both planes were live
  EXPECT_EQ(totals.rogue_discarded, 0U);
  EXPECT_GT(tb.phy_link(0).dropped_down(), 0U);
  // No failover happened — resilience came from replication alone.
  EXPECT_EQ(tb.last_failover_notification(), 0);
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);
}

TEST(Fabric, WithoutFrerTheSameLinkKillStarvesTheRu) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  cfg.fabric.arm_detector = false;  // no failover to mask the outage
  Testbed tb{cfg};
  EXPECT_EQ(tb.fabric_b(), nullptr);
  tb.start();
  tb.run_until(250_ms);
  const auto dropped_before = tb.ru().stats().dropped_ttis;
  tb.phy_link(0).set_down(true);
  tb.run_until(450_ms);
  EXPECT_GT(tb.ru().stats().dropped_ttis, dropped_before + 100);
  EXPECT_EQ(tb.frer_totals().passed, 0U);
}

TEST(Fabric, CrossTrafficInjectsAtConfiguredLoadWithoutFalsePositives) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 11;
  cfg.num_ues = 1;
  cfg.fabric.cross_traffic_load = 0.3;  // modest load on 100 GbE
  Testbed tb{cfg};
  tb.start();
  tb.run_until(100_ms);
  EXPECT_GT(tb.cross_traffic_frames(), 1000U);
  EXPECT_GT(tb.cross_traffic_bytes(), tb.cross_traffic_frames() * 1500);
  // 30% background load leaves the §5.2.2 congestion margin intact:
  // no spurious failure detection.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);
  EXPECT_EQ(tb.last_failover_notification(), 0);
}

TEST(Fabric, SyncErrorStaysBoundedAndPerturbsTheTickTrain) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 13;
  cfg.num_ues = 1;
  cfg.fabric.sync.max_abs_offset = 1'000;  // +/- 1 us, gPTP-grade
  cfg.fabric.sync.drift_ppm = 50.0;
  Testbed tb{cfg};
  tb.start();
  tb.run_until(100_ms);
  EXPECT_GT(tb.sync_max_abs_offset_seen(), 0);
  EXPECT_LE(tb.sync_max_abs_offset_seen(), 1'000);
  // Bounded gPTP error must not fake a PHY death.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);
}

TEST(Fabric, DetectorDisarmGateSilencesFailover) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 17;
  cfg.num_ues = 1;
  cfg.fabric.arm_detector = false;
  Testbed tb{cfg};
  tb.start();
  tb.run_until(100_ms);
  tb.kill_primary_phy();
  tb.run_until(300_ms);
  // A dead PHY with the detector disarmed: nobody notices, nobody
  // migrates — the control the FRER-vs-failover bench relies on.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 0U);
  EXPECT_EQ(tb.last_failover_notification(), 0);
}

}  // namespace
}  // namespace slingshot
