// Tracer/legacy equivalence for massive-UE mode.
//
// Attaching a UeBatch to a cell must be invisible to the
// individually-modeled tracer UEs sharing that cell: the batch draws
// from its own splitmix64-seeded LCG (never a sim RNG stream), the PHY
// emits bulk DL markers at a fixed offset (no jitter() draw), and the
// RU sends bulk uplink in separate packets after the tracer packets.
// These tests pin that property by folding every tracer-visible
// observable — per-UE UeStats, connected state, exact channel SNR bits,
// the RU's tracer-path counters, L2 scheduler stats, and end-to-end
// UDP flow delivery — into an FNV-1a fingerprint and requiring it
// bit-identical between a bulk_ues=0 build and a bulk_ues>0 build, in
// steady state and across a mid-run PHY failover.
//
// Deliberately NOT in the fingerprint: sim().trace_hash() and
// executed_events() (the batch legitimately adds fronthaul packets and
// their events), PHY ul_crc_* (bulk sections decode on the real LDPC
// path), and RuStats::dl_uplane_rx (bulk marker packets count there).
//
// The sharded variants re-run the check inside ShardedTestbed and pin
// the existing shard-count invariance at shards 1/2/4 with batches
// attached: `shards` stays a pure parallelism knob.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>

#include "common/log.h"
#include "testbed/sharded_testbed.h"
#include "testbed/testbed.h"
#include "transport/apps.h"

namespace slingshot {
namespace {

constexpr std::uint64_t kFnvOffset = 0xCBF29CE484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001B3ULL;

void fold(std::uint64_t& h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = (h ^ ((v >> (8 * i)) & 0xFFU)) * kFnvPrime;
  }
}

void fold_double(std::uint64_t& h, double d) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(d));
  std::memcpy(&bits, &d, sizeof(bits));
  fold(h, bits);
}

// Everything a tracer UE (or the operator watching it) can observe.
std::uint64_t tracer_fingerprint(Testbed& tb, int num_ues) {
  std::uint64_t h = kFnvOffset;
  for (int i = 0; i < num_ues; ++i) {
    auto& ue = tb.ue(i);
    const auto& s = ue.stats();
    fold(h, std::uint64_t(s.dl_tbs_ok));
    fold(h, std::uint64_t(s.dl_tbs_failed));
    fold(h, std::uint64_t(s.dl_harq_combines));
    fold(h, std::uint64_t(s.ul_transmissions));
    fold(h, std::uint64_t(s.ul_retransmissions));
    fold(h, std::uint64_t(s.rlf_events));
    fold(h, std::uint64_t(s.reattach_events));
    fold(h, std::uint64_t(s.dl_sdus_delivered));
    fold(h, std::uint64_t(s.ul_sdus_dropped_overflow));
    fold(h, ue.connected() ? 1 : 0);
    // Exact fading-filter state: one extra RNG draw anywhere on the
    // tracer path would desynchronize this immediately.
    fold_double(h, ue.channel().snr_db());
  }
  for (int c = 0; c < tb.num_cells(); ++c) {
    const auto& r = tb.ru_at(c).stats();
    fold(h, std::uint64_t(r.dl_cplane_rx));
    fold(h, std::uint64_t(r.ul_uplane_tx));
    fold(h, std::uint64_t(r.ul_uci_tx));
    fold(h, std::uint64_t(r.conflicting_sources));
    fold(h, std::uint64_t(r.dropped_ttis));
  }
  const auto& l2 = tb.l2().stats();
  fold(h, std::uint64_t(l2.dl_tbs_scheduled));
  fold(h, std::uint64_t(l2.dl_retx));
  fold(h, std::uint64_t(l2.dl_tbs_lost));
  fold(h, std::uint64_t(l2.ul_tbs_granted));
  fold(h, std::uint64_t(l2.ul_retx));
  fold(h, std::uint64_t(l2.ul_tbs_lost));
  fold(h, std::uint64_t(l2.ul_sdus_delivered));
  return h;
}

struct EquivRun {
  std::uint64_t tracer_hash;
  std::uint64_t flow_tx;
  std::uint64_t flow_rx;
  // Proof the batch actually carried traffic (0 in the bulk-free run).
  std::int64_t batch_ul_sections;
  std::int64_t batch_dl_sections;
  std::int64_t batch_max_ctrl_gap;
  std::int64_t l2_bulk_crc_ok;
  std::int64_t l2_bulk_dl_acks;
};

// The golden-trace scenario (seed 42, one weak UE, 4 Mb/s DL flow,
// optional PHY-A SIGKILL at 250 ms) with an optional batch riding on
// cell 0.
EquivRun run_scenario(int bulk_ues, bool with_failover) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 42;
  cfg.num_ues = 2;
  cfg.ue_mean_snr_db = {18.0, 7.0};
  cfg.bulk_ues = bulk_ues;
  Testbed tb{cfg};

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};

  tb.start();
  tb.run_until(100_ms);
  flow.start();
  if (with_failover) {
    tb.sim().at(250_ms, [&tb] { tb.kill_primary_phy(); });
  }
  tb.run_until(500_ms);

  EquivRun r{};
  r.tracer_hash = tracer_fingerprint(tb, cfg.num_ues);
  r.flow_tx = flow.packets_sent();
  r.flow_rx = flow.packets_received();
  if (UeBatch* batch = tb.batch_at(0); batch != nullptr) {
    r.batch_ul_sections = batch->stats().ul_sections;
    r.batch_dl_sections = batch->stats().dl_sections;
    r.batch_max_ctrl_gap = batch->stats().max_ctrl_gap_slots;
    r.l2_bulk_crc_ok = tb.l2().bulk_stats(0).ul_crc_ok;
    r.l2_bulk_dl_acks = tb.l2().bulk_stats(0).dl_acks +
                        tb.l2().bulk_stats(0).dl_nacks;
  }
  return r;
}

TEST(BulkEquivalence, SteadyStateTracerStateUnchangedByBatch) {
  const EquivRun bare = run_scenario(/*bulk_ues=*/0, /*with_failover=*/false);
  const EquivRun bulk = run_scenario(/*bulk_ues=*/2000,
                                     /*with_failover=*/false);
  EXPECT_EQ(bare.tracer_hash, bulk.tracer_hash);
  EXPECT_EQ(bare.flow_tx, bulk.flow_tx);
  EXPECT_EQ(bare.flow_rx, bulk.flow_rx);
  // The batch was not a no-op: its configured-grant uplink flowed
  // through the real PHY decode into the L2's bulk pool counters, and
  // its DL markers came back as modeled decodes + UCI.
  EXPECT_GT(bulk.batch_ul_sections, 0);
  EXPECT_GT(bulk.batch_dl_sections, 0);
  EXPECT_GT(bulk.l2_bulk_crc_ok, 0);
  EXPECT_GT(bulk.l2_bulk_dl_acks, 0);
}

TEST(BulkEquivalence, FailoverTracerStateUnchangedByBatch) {
  const EquivRun bare = run_scenario(/*bulk_ues=*/0, /*with_failover=*/true);
  const EquivRun bulk = run_scenario(/*bulk_ues=*/2000,
                                     /*with_failover=*/true);
  EXPECT_EQ(bare.tracer_hash, bulk.tracer_hash);
  EXPECT_EQ(bare.flow_tx, bulk.flow_tx);
  EXPECT_EQ(bare.flow_rx, bulk.flow_rx);
  EXPECT_GT(bulk.batch_ul_sections, 0);
  EXPECT_GT(bulk.l2_bulk_crc_ok, 0);
}

TEST(BulkEquivalence, FailoverGapSeenByBatchStaysTight) {
  const EquivRun steady = run_scenario(/*bulk_ues=*/500,
                                       /*with_failover=*/false);
  const EquivRun failover = run_scenario(/*bulk_ues=*/500,
                                         /*with_failover=*/true);
  // The failover outage is visible to the batch's control-plane gap
  // tracker and bounded by the paper's ~2-TTI gap: strictly wider than
  // the steady-state TDD gap, but never more than a few slots.
  EXPECT_GT(failover.batch_max_ctrl_gap, steady.batch_max_ctrl_gap);
  EXPECT_LE(failover.batch_max_ctrl_gap, steady.batch_max_ctrl_gap + 3);
}

// ---- Sharded variants ----

ShardedTestbedConfig sharded_config(int bulk_ues, int shards) {
  ShardedTestbedConfig cfg;
  cfg.seed = 42;
  cfg.shards = shards;
  CellSpec cell;
  cell.num_ues = 2;
  cell.ue_mean_snr_db = {18.0, 7.0};
  cell.bulk_ues = bulk_ues;
  cfg.cells = {cell, cell};
  return cfg;
}

struct ShardedRun {
  std::uint64_t engine_fingerprint;
  std::vector<std::uint64_t> island_hashes;
  std::vector<std::uint64_t> island_executed;
  std::vector<std::uint64_t> tracer_hashes;
  std::int64_t total_bulk_ul_sections;
};

ShardedRun run_sharded(int bulk_ues, int shards) {
  Logger::instance().set_level(LogLevel::kError);
  ShardedTestbed stb{sharded_config(bulk_ues, shards)};
  stb.start();
  stb.kill_primary_at(0, 250_ms);
  stb.run_until(400_ms);

  ShardedRun r{};
  r.engine_fingerprint = stb.fingerprint();
  r.total_bulk_ul_sections = 0;
  for (int i = 0; i < stb.num_islands(); ++i) {
    r.island_hashes.push_back(stb.island_hash(i));
    r.island_executed.push_back(stb.island_executed(i));
    r.tracer_hashes.push_back(tracer_fingerprint(stb.island(i), 2));
    if (UeBatch* batch = stb.island(i).batch_at(0); batch != nullptr) {
      r.total_bulk_ul_sections += batch->stats().ul_sections;
    }
  }
  return r;
}

TEST(BulkEquivalence, ShardCountInvariantWithBatchesAttached) {
  const ShardedRun s1 = run_sharded(/*bulk_ues=*/500, /*shards=*/1);
  const ShardedRun s2 = run_sharded(/*bulk_ues=*/500, /*shards=*/2);
  const ShardedRun s4 = run_sharded(/*bulk_ues=*/500, /*shards=*/4);
  // Worker-thread count must stay a pure parallelism knob even with a
  // batch advancing inside every island: identical per-island event
  // streams AND identical tracer-visible state at shards 1/2/4.
  EXPECT_EQ(s1.engine_fingerprint, s2.engine_fingerprint);
  EXPECT_EQ(s1.engine_fingerprint, s4.engine_fingerprint);
  EXPECT_EQ(s1.island_hashes, s2.island_hashes);
  EXPECT_EQ(s1.island_hashes, s4.island_hashes);
  EXPECT_EQ(s1.island_executed, s2.island_executed);
  EXPECT_EQ(s1.island_executed, s4.island_executed);
  EXPECT_EQ(s1.tracer_hashes, s2.tracer_hashes);
  EXPECT_EQ(s1.tracer_hashes, s4.tracer_hashes);
  EXPECT_GT(s1.total_bulk_ul_sections, 0);
}

TEST(BulkEquivalence, ShardedTracerStateUnchangedByBatch) {
  const ShardedRun bare = run_sharded(/*bulk_ues=*/0, /*shards=*/2);
  const ShardedRun bulk = run_sharded(/*bulk_ues=*/500, /*shards=*/2);
  // Island trace hashes legitimately differ (the batch adds fronthaul
  // packets); the tracer-visible state must not.
  EXPECT_EQ(bare.tracer_hashes, bulk.tracer_hashes);
  EXPECT_GT(bulk.total_bulk_ul_sections, 0);
}

}  // namespace
}  // namespace slingshot
