// Golden-trace determinism tests.
//
// The simulator's ordering contract — events execute in strict
// (time, seq) order with FIFO tie-break — must survive refactors of the
// event-loop internals. These tests run a fixed-seed testbed scenario
// (steady state, and a mid-run PHY failover) and compare against
// constants captured from the original std::function/shared_ptr event
// loop: the executed-event count, an FNV-1a hash folded over every
// executed event's (time, seq) in execution order, and the decode
// outcomes (CRC pass/fail and LDPC iteration totals). A mismatch in the
// hash means event ordering changed; a mismatch in decode counters with
// a matching hash means the PHY kernels changed behaviour.
#include <gtest/gtest.h>

#include "common/log.h"
#include "obs/obs.h"
#include "testbed/testbed.h"
#include "transport/apps.h"

namespace slingshot {
namespace {

struct GoldenRun {
  std::uint64_t executed;
  std::uint64_t trace_hash;
  std::int64_t a_ul_crc_ok;
  std::int64_t a_ul_crc_fail;
  std::int64_t a_iters;
  std::int64_t b_ul_crc_ok;
  std::int64_t b_ul_crc_fail;
  std::int64_t b_iters;
  std::uint64_t flow_tx;
  std::uint64_t flow_rx;
};

GoldenRun run_scenario(bool with_failover, obs::Observability* o = nullptr,
                       const CalendarConfig* cal = nullptr) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 42;
  cfg.num_ues = 2;
  cfg.ue_mean_snr_db = {18.0, 7.0};  // UE 1 weak: exercises CRC failures
  Testbed tb{cfg};
  if (cal != nullptr) {
    tb.sim().set_calendar_config(*cal);
  }
  if (o != nullptr) {
    tb.attach_observability(*o);
  }

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};

  tb.start();
  tb.run_until(100_ms);
  flow.start();
  if (with_failover) {
    tb.sim().at(250_ms, [&tb] { tb.kill_primary_phy(); });
  }
  tb.run_until(500_ms);

  if (o != nullptr) {
    o->finalize();
  }
  const auto& a = tb.phy_a().stats();
  const auto& b = tb.phy_b().stats();
  return GoldenRun{tb.sim().executed_events(),
                   tb.sim().trace_hash(),
                   a.ul_crc_ok,
                   a.ul_crc_fail,
                   a.decode_iterations,
                   b.ul_crc_ok,
                   b.ul_crc_fail,
                   b.decode_iterations,
                   flow.packets_sent(),
                   flow.packets_received()};
}

obs::ObservabilityConfig obs_config_for_scenario() {
  TestbedConfig cfg;
  cfg.seed = 42;
  cfg.num_ues = 2;
  cfg.ue_mean_snr_db = {18.0, 7.0};
  Testbed tb{cfg};
  return tb.obs_config();
}

// Constants captured from the pre-refactor event loop (seed 42).
TEST(GoldenTrace, SteadyStateMatchesSeedImplementation) {
  const GoldenRun r = run_scenario(/*with_failover=*/false);
  EXPECT_EQ(r.executed, 117124ULL);
  EXPECT_EQ(r.trace_hash, 0x72da9490d4437484ULL);
  EXPECT_EQ(r.a_ul_crc_ok, 387);
  EXPECT_EQ(r.a_ul_crc_fail, 9);
  EXPECT_EQ(r.a_iters, 686);
  EXPECT_EQ(r.b_ul_crc_ok, 0);
  EXPECT_EQ(r.b_ul_crc_fail, 0);
  EXPECT_EQ(r.flow_tx, 166ULL);
  EXPECT_EQ(r.flow_rx, 162ULL);
}

// The calendar-queue scheduler must be a reorder-free swap for the
// binary heap at ANY bucket geometry: the full failover scenario is
// pinned to the same event count and (time, seq) trace hash under
// hostile bucket widths (a window smaller than the scheduling horizon
// forces constant overflow churn; a near-TTI-wide bucket packs whole
// slots into one heap).
TEST(GoldenTrace, FailoverInvariantAcrossCalendarGeometries) {
  const CalendarConfig geometries[] = {
      {12, 4},   // 4 us x 16: everything spills through overflow
      {20, 6},   // 1 ms x 64
      {10, 5},   // 1 us x 32: long empty-bucket scans
      {24, 10},  // 16.8 ms x 1024: multi-slot buckets
  };
  for (const auto& cal : geometries) {
    SCOPED_TRACE(testing::Message() << "log2_w=" << cal.log2_bucket_ns
                                    << " log2_b=" << cal.log2_buckets);
    const GoldenRun r =
        run_scenario(/*with_failover=*/true, nullptr, &cal);
    EXPECT_EQ(r.executed, 105137ULL);
    EXPECT_EQ(r.trace_hash, 0xa72f2ee07b06d292ULL);
    EXPECT_EQ(r.b_ul_crc_ok, 195);
    EXPECT_EQ(r.flow_rx, 160ULL);
  }
}

TEST(GoldenTrace, FailoverMatchesSeedImplementation) {
  const GoldenRun r = run_scenario(/*with_failover=*/true);
  EXPECT_EQ(r.executed, 105137ULL);
  EXPECT_EQ(r.trace_hash, 0xa72f2ee07b06d292ULL);
  EXPECT_EQ(r.a_ul_crc_ok, 188);
  EXPECT_EQ(r.a_ul_crc_fail, 8);
  EXPECT_EQ(r.a_iters, 352);
  EXPECT_EQ(r.b_ul_crc_ok, 195);
  EXPECT_EQ(r.b_ul_crc_fail, 1);
  EXPECT_EQ(r.b_iters, 325);
  EXPECT_EQ(r.flow_tx, 166ULL);
  EXPECT_EQ(r.flow_rx, 160ULL);
}

// Observability must be a pure observer: attaching the tracer writes
// pre-allocated rows but schedules nothing, so the executed-event count
// and (time, seq) trace hash must be bit-identical to the untraced
// pins above. The span/stamp/deadline constants below are themselves
// golden values for the tracer — a change means the instrumentation
// points moved.
TEST(GoldenTrace, SteadyStateTracerCountsArePinned) {
  obs::Observability o{obs_config_for_scenario()};
  const GoldenRun r = run_scenario(/*with_failover=*/false, &o);
  EXPECT_EQ(r.executed, 117124ULL);
  EXPECT_EQ(r.trace_hash, 0x72da9490d4437484ULL);

  const auto& t = o.tracer();
  EXPECT_EQ(t.spans_opened(), t.spans_closed());
  EXPECT_EQ(t.spans_opened(), 1002ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kL2Request), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kOrionForward), 999ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kPhySlot), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kFronthaulTx), 999ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kPhyDecode), 198ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kResponse), 198ULL);
  EXPECT_EQ(t.deadline_misses(), 0ULL);
  // The last two slots at the 500 ms cutoff have an L2 request in
  // flight but no processed PHY slot yet (L2 runs one lead interval
  // ahead) — folded as unserved at finalize, not a telemetry bug.
  EXPECT_EQ(t.unserved_slots(), 2ULL);
  EXPECT_EQ(t.late_stamps_dropped(), 0ULL);
  EXPECT_EQ(t.events_dropped(), 0ULL);
  EXPECT_TRUE(t.failover_episodes().empty());
}

TEST(GoldenTrace, FailoverTracerCountsArePinned) {
  obs::Observability o{obs_config_for_scenario()};
  const GoldenRun r = run_scenario(/*with_failover=*/true, &o);
  EXPECT_EQ(r.executed, 105137ULL);
  EXPECT_EQ(r.trace_hash, 0xa72f2ee07b06d292ULL);

  const auto& t = o.tracer();
  EXPECT_EQ(t.spans_opened(), t.spans_closed());
  EXPECT_EQ(t.spans_opened(), 1002ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kL2Request), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kPhySlot), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kResponse), 197ULL);
  EXPECT_EQ(t.deadline_misses(), 0ULL);
  EXPECT_EQ(t.unserved_slots(), 2ULL);
  const auto episodes = t.failover_episodes();
  ASSERT_EQ(episodes.size(), 1U);
  const auto& ep = episodes[0];
  EXPECT_EQ(ep.failed_phy, 1);       // kPhyA
  EXPECT_GE(ep.detect_t, ep.down_t);
  EXPECT_GE(ep.notify_t, ep.detect_t);
  EXPECT_GE(ep.initiate_t, ep.notify_t);
  EXPECT_GE(ep.boundary_slot, 0);
  EXPECT_EQ(ep.drains_accepted, 0);
}

// Two runs of the same scenario in one process must agree exactly —
// catches hidden global state (thread_local workspaces, static pools)
// leaking across runs.
TEST(GoldenTrace, BackToBackRunsAreIdentical) {
  const GoldenRun r1 = run_scenario(/*with_failover=*/true);
  const GoldenRun r2 = run_scenario(/*with_failover=*/true);
  EXPECT_EQ(r1.executed, r2.executed);
  EXPECT_EQ(r1.trace_hash, r2.trace_hash);
  EXPECT_EQ(r1.a_ul_crc_ok, r2.a_ul_crc_ok);
  EXPECT_EQ(r1.b_ul_crc_ok, r2.b_ul_crc_ok);
}

}  // namespace
}  // namespace slingshot
