// Real-process deployment mode end to end: Orion relay + 2 PHYs + L2
// exchanging real FAPI datagrams under wall-clock pacing, a scripted
// kill of the active PHY, and the conformance contract that the real
// run's episode ledger matches the simulator's for the same fault plan.
//
// These tests run real time (tens of milliseconds of wall clock each)
// and carry the `realtime` ctest label. The inproc variants are the CI
// smoke; the fork variant exercises genuine process isolation and
// SIGKILL.
#include <gtest/gtest.h>

#include "testbed/real_testbed.h"

namespace slingshot {
namespace {

RealTestbedConfig smoke_config(bool inproc) {
  RealTestbedConfig cfg;
  cfg.inproc = inproc;
  cfg.tti_ns = 500'000;
  cfg.run_slots = 160;
  cfg.detect_timeout_ns = 2'000'000;
  return cfg;
}

void expect_failover_ledger(const RealRunResult& result) {
  // kDetected -> kFailoverInitiated on the dead primary (PhyId 1),
  // then kSwapFinalized on the promoted standby (PhyId 2).
  ASSERT_EQ(result.ledger.size(), 3U);
  EXPECT_EQ(result.ledger[0].kind, EpisodeEventKind::kDetected);
  EXPECT_EQ(result.ledger[0].phy, PhyId{1});
  EXPECT_EQ(result.ledger[1].kind, EpisodeEventKind::kFailoverInitiated);
  EXPECT_EQ(result.ledger[1].phy, PhyId{1});
  EXPECT_EQ(result.ledger[2].kind, EpisodeEventKind::kSwapFinalized);
  EXPECT_EQ(result.ledger[2].phy, PhyId{2});
  for (const auto& e : result.ledger) {
    EXPECT_EQ(e.ru, RuId{1});
  }
}

TEST(RealTestbed, InprocNoFaultRunsClean) {
  auto cfg = smoke_config(/*inproc=*/true);
  RealRunResult result = RealTestbed{cfg}.run();
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_TRUE(result.ledger.empty());  // no fault, no episodes
  EXPECT_TRUE(result.restored);
  // The overwhelming majority of slots must complete the
  // UL_TTI -> CRC round trip (allow slack for scheduler jitter).
  EXPECT_GE(result.l2_crcs, std::uint64_t(cfg.run_slots) * 8 / 10);
  EXPECT_GT(result.l2_rx_records, 0U);  // RX_DATA flowed over SHM
  EXPECT_EQ(result.parse_errors, 0U);
  EXPECT_EQ(result.detection_ns, -1);
  EXPECT_EQ(result.outage_ns, -1);
}

TEST(RealTestbed, InprocFailoverDetectsSwapsAndRestores) {
  auto cfg = smoke_config(/*inproc=*/true);
  cfg.fault.kill_slot = 60;
  RealRunResult result = RealTestbed{cfg}.run();
  ASSERT_TRUE(result.ok) << result.error;
  expect_failover_ledger(result);
  // Detection: the silence countdown starts at the last message heard
  // from the dead PHY, which precedes the kill by up to a slot or so,
  // hence the slack below the timeout. It must also not take an
  // unreasonable multiple of the timeout.
  EXPECT_GE(result.detection_ns, cfg.detect_timeout_ns - 4 * cfg.tti_ns);
  EXPECT_LT(result.detection_ns, 25 * cfg.detect_timeout_ns);
  // Service resumed on the standby and ran to the end of the window.
  EXPECT_TRUE(result.restored);
  EXPECT_GT(result.outage_ns, 0);
  EXPECT_LT(result.outage_ns, 60'000'000);  // well under the paper's 6.2 s
}

TEST(RealTestbed, InprocLedgerConformsToSimulator) {
  auto cfg = smoke_config(/*inproc=*/true);
  cfg.fault.kill_slot = 60;
  RealRunResult real = RealTestbed{cfg}.run();
  ASSERT_TRUE(real.ok) << real.error;

  const auto sim_ledger = run_sim_fault_plan(cfg.fault);
  EXPECT_TRUE(ledgers_conform(real.ledger, sim_ledger))
      << "real ledger (" << real.ledger.size() << " events) diverged from "
      << "sim ledger (" << sim_ledger.size() << " events)";

  // And the no-fault plans agree too (both empty).
  const FaultPlan none;
  EXPECT_TRUE(ledgers_conform({}, run_sim_fault_plan(none)));
}

TEST(RealTestbed, ForkModeFailoverWithRealSigkill) {
  auto cfg = smoke_config(/*inproc=*/false);
  cfg.fault.kill_slot = 60;
  RealRunResult result = RealTestbed{cfg}.run();
  ASSERT_TRUE(result.ok) << result.error;
  expect_failover_ledger(result);
  EXPECT_TRUE(result.restored);
  EXPECT_GE(result.detection_ns, cfg.detect_timeout_ns - 4 * cfg.tti_ns);
  EXPECT_GT(result.outage_ns, 0);
  EXPECT_TRUE(
      ledgers_conform(result.ledger, run_sim_fault_plan(cfg.fault)));
}

}  // namespace
}  // namespace slingshot
