#include "obs/trace.h"

#include <gtest/gtest.h>

#include "obs/metrics.h"

namespace slingshot {
namespace obs {
namespace {

TracerConfig small_config() {
  TracerConfig cfg;
  cfg.window = 4;
  cfg.timeline_capacity = 8;
  cfg.histogram_reserve = 64;
  return cfg;
}

constexpr Nanos kSlot = 500'000;  // default slot_duration

TEST(SlotTracer, SpanBalanceAfterFinalize) {
  SlotTracer tracer{small_config()};
  for (std::int64_t slot = 0; slot < 20; ++slot) {
    tracer.stamp(SlotStage::kL2Request, 1, slot, slot * kSlot - 1000);
    tracer.stamp(SlotStage::kPhySlot, 1, slot, slot * kSlot);
    tracer.stamp(SlotStage::kResponse, 1, slot, slot * kSlot + 2000);
  }
  tracer.finalize();
  EXPECT_EQ(tracer.spans_opened(), 20u);
  EXPECT_EQ(tracer.spans_closed(), 20u);
  EXPECT_EQ(tracer.stamps_recorded(SlotStage::kL2Request), 20u);
  EXPECT_EQ(tracer.stamps_recorded(SlotStage::kResponse), 20u);
}

TEST(SlotTracer, FirstWriteWinsAndLateStampsAreDropped) {
  SlotTracer tracer{small_config()};
  tracer.stamp(SlotStage::kL2Request, 1, 10, 100);
  tracer.stamp(SlotStage::kL2Request, 1, 10, 999);  // duplicate: ignored
  EXPECT_EQ(tracer.stamps_recorded(SlotStage::kL2Request), 1u);

  // Advance the window far past slot 10; a stale stamp for it must not
  // evict the newer occupant (window=4, so slot 100 maps over slot 10's
  // row only after wrapping).
  tracer.stamp(SlotStage::kL2Request, 1, 100, 100 * kSlot);
  tracer.stamp(SlotStage::kPhySlot, 1, 10, 101);
  EXPECT_EQ(tracer.late_stamps_dropped(), 0u);  // different row, fine
  tracer.stamp(SlotStage::kPhySlot, 1, 98, 98 * kSlot);  // same row as 10? no
  // Slot 102 occupies row (102 & 3) = 2; a stamp for slot 10 (row 2)
  // arriving now is older than the occupant and must be dropped.
  tracer.stamp(SlotStage::kL2Request, 1, 102, 102 * kSlot);
  tracer.stamp(SlotStage::kResponse, 1, 10, 200);
  EXPECT_EQ(tracer.late_stamps_dropped(), 1u);
}

TEST(SlotTracer, DerivedLatenciesAndDeadlineMiss) {
  TracerConfig cfg = small_config();
  cfg.deadline_slots = 3;
  SlotTracer tracer{cfg};
  // Slot 4: request 900us before slot start, response within deadline.
  const std::int64_t s = 4;
  const Nanos start = s * kSlot;
  tracer.stamp(SlotStage::kL2Request, 1, s, start - 900'000);
  tracer.stamp(SlotStage::kOrionForward, 1, s, start - 880'000);
  tracer.stamp(SlotStage::kPhySlot, 1, s, start);
  tracer.stamp(SlotStage::kPhyDecode, 1, s, start + 2 * kSlot);
  tracer.stamp(SlotStage::kResponse, 1, s, start + 2 * kSlot + 100'000);
  // Slot 5: response after slot_start(5+3) -> deadline miss. Also no
  // kPhySlot stamp -> unserved.
  tracer.stamp(SlotStage::kL2Request, 1, 5, 5 * kSlot - 900'000);
  tracer.stamp(SlotStage::kResponse, 1, 5, (5 + 4) * kSlot);
  tracer.finalize();

  EXPECT_EQ(tracer.deadline_misses(), 1u);
  EXPECT_EQ(tracer.unserved_slots(), 1u);
  const auto& fwd = tracer.latency_stats(SlotSpanLatency::kForward);
  EXPECT_EQ(fwd.count(), 1);
  EXPECT_DOUBLE_EQ(fwd.mean(), 20.0);  // 20 us
  const auto& lead = tracer.latency_stats(SlotSpanLatency::kLead);
  EXPECT_EQ(lead.count(), 2);
  EXPECT_DOUBLE_EQ(lead.mean(), 900.0);
  const auto& e2e = tracer.latency_stats(SlotSpanLatency::kEndToEnd);
  EXPECT_EQ(e2e.count(), 2);
}

TEST(SlotTracer, TimelineDropsOnFullAndCounts) {
  SlotTracer tracer{small_config()};  // capacity 8
  for (int i = 0; i < 12; ++i) {
    tracer.event(ObsEvent::kDrainAccepted, 1, i, i * 100);
  }
  EXPECT_EQ(tracer.timeline().size(), 8u);
  EXPECT_EQ(tracer.events_dropped(), 4u);
}

TEST(SlotTracer, FailoverEpisodeReconstruction) {
  SlotTracer tracer{small_config()};
  tracer.event(ObsEvent::kPhyDown, 1, 400, 400 * kSlot);
  tracer.detector_tick();
  tracer.detector_tick();
  tracer.event(ObsEvent::kDetectorFire, 1, 401, 400 * kSlot + 450'000);
  tracer.event(ObsEvent::kNotifyReceived, 1, 401, 400 * kSlot + 460'000);
  tracer.event(ObsEvent::kFailoverInitiated, 1, 403, 400 * kSlot + 465'000);
  tracer.event(ObsEvent::kSwapFinalized, 2, 403, 403 * kSlot);
  tracer.event(ObsEvent::kDrainAccepted, 1, 401, 403 * kSlot + 80'000);
  tracer.event(ObsEvent::kDrainAccepted, 1, 402, 404 * kSlot + 80'000);

  const auto episodes = tracer.failover_episodes();
  ASSERT_EQ(episodes.size(), 1u);
  const auto& ep = episodes[0];
  EXPECT_EQ(ep.failed_phy, 1);
  EXPECT_EQ(ep.detect_t - ep.down_t, 450'000);
  EXPECT_EQ(ep.notify_t - ep.detect_t, 10'000);
  EXPECT_EQ(ep.boundary_slot, 403);
  EXPECT_EQ(ep.drains_accepted, 2);
  ASSERT_EQ(ep.drained_slots.size(), 2u);
  EXPECT_EQ(ep.drained_slots[0], 401);
  EXPECT_EQ(ep.drained_slots[1], 402);
  EXPECT_EQ(tracer.detector_ticks(), 2u);
}

TEST(SlotTracer, ExportIntoRegistry) {
  SlotTracer tracer{small_config()};
  tracer.stamp(SlotStage::kL2Request, 1, 3, 3 * kSlot - 1000);
  tracer.stamp(SlotStage::kPhySlot, 1, 3, 3 * kSlot);
  MetricsRegistry reg;
  tracer.export_into(reg);
  ASSERT_NE(reg.find_counter("trace.spans_opened"), nullptr);
  EXPECT_EQ(reg.find_counter("trace.spans_opened")->value(), 1u);
  EXPECT_EQ(reg.find_counter("trace.spans_closed")->value(), 1u);
  ASSERT_NE(reg.find_histogram("trace.latency_us.lead"), nullptr);
  EXPECT_EQ(reg.find_histogram("trace.latency_us.lead")->stats().count(), 1);
}

TEST(SlotTracer, MoreRusThanLanesAreDroppedSilently) {
  TracerConfig cfg = small_config();
  cfg.max_lanes = 2;
  SlotTracer tracer{cfg};
  tracer.stamp(SlotStage::kL2Request, 1, 0, 0);
  tracer.stamp(SlotStage::kL2Request, 2, 0, 0);
  tracer.stamp(SlotStage::kL2Request, 3, 0, 0);  // no lane: dropped
  tracer.finalize();
  EXPECT_EQ(tracer.spans_opened(), 2u);
  EXPECT_EQ(tracer.spans_closed(), 2u);
}

}  // namespace
}  // namespace obs
}  // namespace slingshot
