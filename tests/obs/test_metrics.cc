#include "obs/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace slingshot {
namespace obs {
namespace {

TEST(MetricsRegistry, RegistrationIsIdempotentAndPointersAreStable) {
  MetricsRegistry reg;
  Counter* c1 = reg.counter("a.count");
  Counter* c2 = reg.counter("a.count");
  EXPECT_EQ(c1, c2);
  c1->inc(3);
  // Registering more instruments must not move existing ones (std::map
  // storage keeps addresses stable — components cache the raw pointer).
  for (int i = 0; i < 100; ++i) {
    reg.counter("filler." + std::to_string(i));
  }
  EXPECT_EQ(reg.counter("a.count"), c1);
  EXPECT_EQ(c1->value(), 3u);
  EXPECT_EQ(reg.num_instruments(), 101u);
}

TEST(MetricsRegistry, FindDoesNotCreate) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.find_counter("missing"), nullptr);
  EXPECT_EQ(reg.find_gauge("missing"), nullptr);
  EXPECT_EQ(reg.find_histogram("missing"), nullptr);
  EXPECT_EQ(reg.find_series("missing"), nullptr);
  EXPECT_EQ(reg.num_instruments(), 0u);
  reg.counter("present");
  EXPECT_NE(reg.find_counter("present"), nullptr);
}

TEST(MetricsRegistry, GaugeSamplerAndFreeze) {
  MetricsRegistry reg;
  double live = 1.0;
  Gauge* g = reg.gauge("g");
  g->bind([&live] { return live; });
  live = 5.0;
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
  reg.freeze_gauges();
  live = 9.0;  // sampler is gone; the frozen value stays
  EXPECT_DOUBLE_EQ(g->value(), 5.0);
}

TEST(MetricsRegistry, HistogramReservesUpfront) {
  MetricsRegistry reg;
  Histogram* h = reg.histogram("lat", 64);
  const double* data_before = h->percentiles().samples().data();
  for (int i = 0; i < 64; ++i) {
    h->record(double(i));
  }
  EXPECT_EQ(h->percentiles().samples().data(), data_before);
  EXPECT_EQ(h->stats().count(), 64);
}

TEST(MetricsRegistry, JsonExportIsWellFormedAndNaNBecomesNull) {
  MetricsRegistry reg;
  reg.counter("c")->inc(7);
  reg.gauge("g")->set(2.5);
  reg.histogram("empty_hist");  // no samples: NaN fields -> null
  Histogram* h = reg.histogram("hist");
  h->record(1.0);
  h->record(3.0);
  reg.series("s", 1_ms)->record(1'500'000, 2.0);

  const std::string json = reg.to_json();
  EXPECT_NE(json.find("\"c\":7"), std::string::npos);
  EXPECT_NE(json.find("\"g\":2.5"), std::string::npos);
  EXPECT_NE(json.find("\"empty_hist\":{\"count\":0,\"mean\":null"),
            std::string::npos);
  EXPECT_NE(json.find("\"p50\":2"), std::string::npos);
  EXPECT_EQ(json.find("nan"), std::string::npos);
  // Balanced braces (cheap structural sanity check).
  int depth = 0;
  for (const char ch : json) {
    if (ch == '{') ++depth;
    if (ch == '}') --depth;
    EXPECT_GE(depth, 0);
  }
  EXPECT_EQ(depth, 0);
}

TEST(MetricsRegistry, CsvExportHasOneRowPerScalar) {
  MetricsRegistry reg;
  reg.counter("c")->inc();
  reg.gauge("g")->set(1.0);
  const std::string csv = reg.to_csv();
  EXPECT_NE(csv.find("kind,name,field,value\n"), std::string::npos);
  EXPECT_NE(csv.find("counter,c,value,1\n"), std::string::npos);
  EXPECT_NE(csv.find("gauge,g,value,1\n"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace slingshot
