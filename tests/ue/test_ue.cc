#include "ue/ue.h"

#include <gtest/gtest.h>

#include "phy/tb_codec.h"

namespace slingshot {
namespace {

struct UeFixture {
  Simulator sim;
  UeConfig config;
  std::unique_ptr<UserEquipment> ue;

  explicit UeFixture(double snr_db = 30.0) {
    config.id = UeId{1};
    config.processing_jitter = 0;  // deterministic timing for tests
    config.dl_processing_delay = 1_ms;
    config.ul_processing_delay = 1_ms;
    FadingConfig fading;
    fading.mean_snr_db = snr_db;
    fading.ar1_sigma_db = 0.0;
    ue = std::make_unique<UserEquipment>(sim, "ue-test", config, fading,
                                         sim.rng().stream("chan"));
    ue->power_on();
  }

  // Deliver DL control with a grant for this UE.
  void give_grant(std::int64_t target_slot, std::uint32_t tb_bytes = 2000,
                  HarqId harq = HarqId{0}, bool new_data = true) {
    CPlaneMsg msg;
    msg.ul_grants.push_back(
        UlGrant{UeId{1}, target_slot, 1, tb_bytes, harq, new_data});
    ue->on_dl_control(0, msg);
  }
};

TEST(UserEquipment, StartsConnected) {
  UeFixture f;
  EXPECT_TRUE(f.ue->connected());
  EXPECT_EQ(f.ue->stats().rlf_events, 0);
}

TEST(UserEquipment, RadioLinkFailureAfterTimeout) {
  UeFixture f;
  // No DL control ever arrives: RLF at ~50 ms, reattach 6.2 s later.
  f.sim.run_until(60_ms);
  EXPECT_FALSE(f.ue->connected());
  EXPECT_EQ(f.ue->stats().rlf_events, 1);
  f.sim.run_until(60_ms + f.config.reattach_delay + 10_ms);
  EXPECT_TRUE(f.ue->connected());
  EXPECT_EQ(f.ue->stats().reattach_events, 1);
}

TEST(UserEquipment, DlControlKeepsLinkAlive) {
  UeFixture f;
  f.sim.every(0, 10_ms, [&f] { f.ue->on_dl_control(0, CPlaneMsg{}); });
  f.sim.run_until(500_ms);
  EXPECT_TRUE(f.ue->connected());
  EXPECT_EQ(f.ue->stats().rlf_events, 0);
}

TEST(UserEquipment, GrantStarvationTriggersReestablish) {
  UeFixture f;
  f.ue = nullptr;  // rebuild with starvation supervision
  f.config.grant_starvation_timeout = 300_ms;
  FadingConfig fading;
  f.ue = std::make_unique<UserEquipment>(f.sim, "ue-test2", f.config, fading,
                                         f.sim.rng().stream("chan2"));
  f.ue->power_on();
  // DL control flows (no RLF) but never contains grants.
  f.sim.every(0, 10_ms, [&f] { f.ue->on_dl_control(0, CPlaneMsg{}); });
  f.sim.run_until(400_ms);
  EXPECT_FALSE(f.ue->connected());
  EXPECT_EQ(f.ue->stats().rlf_events, 0);  // it was starvation, not RLF
}

TEST(UserEquipment, TransmitsOnGrant) {
  UeFixture f;
  f.ue->send_uplink({1, 2, 3, 4});
  f.sim.run_until(5_ms);  // let the SDU clear modem processing
  f.give_grant(100);
  const auto sections = f.ue->pull_uplink(100);
  ASSERT_EQ(sections.size(), 1U);
  EXPECT_EQ(sections[0].ue, UeId{1});
  EXPECT_TRUE(sections[0].new_data);
  // The SDU rode in the TB.
  const auto sdus = rlc_unpack(sections[0].shadow_payload);
  ASSERT_EQ(sdus.size(), 1U);
  EXPECT_EQ(sdus[0].bytes, (std::vector<std::uint8_t>{1, 2, 3, 4}));
  // IQ is a really modulated codeword.
  EXPECT_GT(sections[0].iq.size(), std::size_t(kNumPilotSymbols));
}

TEST(UserEquipment, NoGrantNoTransmission) {
  UeFixture f;
  EXPECT_TRUE(f.ue->pull_uplink(100).empty());
}

TEST(UserEquipment, RetransmissionResendsSamePayload) {
  UeFixture f;
  f.ue->send_uplink({9, 9, 9});
  f.sim.run_until(5_ms);
  f.give_grant(100, 2000, HarqId{3}, /*new_data=*/true);
  const auto first = f.ue->pull_uplink(100);
  ASSERT_EQ(first.size(), 1U);
  f.give_grant(110, 2000, HarqId{3}, /*new_data=*/false);
  const auto retx = f.ue->pull_uplink(110);
  ASSERT_EQ(retx.size(), 1U);
  EXPECT_FALSE(retx[0].new_data);
  EXPECT_EQ(retx[0].shadow_payload, first[0].shadow_payload);
  EXPECT_EQ(f.ue->stats().ul_retransmissions, 1);
}

TEST(UserEquipment, DecodesCleanDlSectionAndAcks) {
  UeFixture f;
  std::vector<std::uint8_t> delivered;
  f.ue->set_downlink_sink([&](std::vector<std::uint8_t> sdu) {
    delivered = std::move(sdu);
  });
  // Build a DL TB as the PHY would.
  RlcTx tx;
  std::deque<RlcSdu> queue;
  queue.push_back(RlcSdu{kRlcSnUnassigned, {0xCA, 0xFE}});
  const auto payload = tx.pack(queue, 500);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{2};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 500;
  section.codeword_bits = enc.codeword_bits;
  section.iq = enc.iq;  // clean channel
  section.shadow_payload = payload;
  f.ue->on_dl_section(50, section);
  f.sim.run_until(10_ms);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{0xCA, 0xFE}));
  EXPECT_EQ(f.ue->stats().dl_tbs_ok, 1);
  const auto uci = f.ue->pull_uci();
  ASSERT_EQ(uci.size(), 1U);
  EXPECT_TRUE(uci[0].ack);
  EXPECT_EQ(uci[0].harq, HarqId{2});
}

TEST(UserEquipment, GarbageDlSectionNacksAndCombinesLater) {
  UeFixture f;
  const std::vector<std::uint8_t> payload(100, 0x42);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{0};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 100;
  section.codeword_bits = enc.codeword_bits;
  // Heavy noise: decoding fails.
  section.iq.assign(enc.iq.size(), Cf{0.01F, 0.01F});
  section.shadow_payload = payload;
  f.ue->on_dl_section(50, section);
  EXPECT_EQ(f.ue->stats().dl_tbs_failed, 1);
  const auto uci = f.ue->pull_uci();
  ASSERT_EQ(uci.size(), 1U);
  EXPECT_FALSE(uci[0].ack);
  // Retransmission (clean this time) chase-combines and succeeds.
  UPlaneSection retx = section;
  retx.new_data = false;
  retx.iq = enc.iq;
  f.ue->on_dl_section(60, retx);
  EXPECT_EQ(f.ue->stats().dl_tbs_ok, 1);
  EXPECT_EQ(f.ue->stats().dl_harq_combines, 1);
}

TEST(UserEquipment, ReattachClearsRadioState) {
  UeFixture f;
  f.ue->send_uplink({1});
  f.give_grant(100);
  f.ue->force_reattach("test");
  EXPECT_FALSE(f.ue->connected());
  // Grants and modem state are gone.
  f.sim.run_until(f.config.reattach_delay + 10_ms);
  EXPECT_TRUE(f.ue->connected());
  EXPECT_TRUE(f.ue->pull_uplink(100).empty());
}

TEST(UserEquipment, DisconnectedIgnoresEverything) {
  UeFixture f;
  f.ue->force_reattach("test");
  f.give_grant(100);
  EXPECT_TRUE(f.ue->pull_uplink(100).empty());
  UPlaneSection section;
  section.ue = UeId{1};
  f.ue->on_dl_section(100, section);
  EXPECT_EQ(f.ue->stats().dl_tbs_ok + f.ue->stats().dl_tbs_failed, 0);
}

// Regression: the UE's supervision/reattach timers and modem-release
// callbacks capture `this`. Destroying the UE while a reattach (or an
// in-flight datagram) is pending must cancel them all — the events left
// in the simulator would otherwise fire into freed memory (caught by
// ASan in the sanitizer lanes).
TEST(UserEquipment, DestroyMidReattachCancelsPendingTimers) {
  UeFixture f;
  // Drive into RLF, then partway into the 6.2 s reattach wait.
  f.sim.run_until(60_ms);
  ASSERT_FALSE(f.ue->connected());
  f.sim.run_until(100_ms);  // reattach timer armed, far from firing
  f.ue = nullptr;           // destroy with the reattach event pending
  // The reattach deadline passes on a live simulator: nothing may fire.
  f.sim.run_until(100_ms + f.config.reattach_delay + 100_ms);
}

TEST(UserEquipment, DestroyWithInflightDatagramCancelsModemCallbacks) {
  UeFixture f;
  // Queue uplink SDUs whose modem-processing delay is still pending,
  // and deliver a DL section whose datagram is mid modem processing.
  f.ue->send_uplink({1, 2, 3});
  f.ue->send_uplink({4, 5, 6});
  f.ue = nullptr;  // destroy with modem-release events in flight
  f.sim.run_until(50_ms);
}

TEST(UserEquipment, DestroyMidSupervisionPeriodCancelsTimer) {
  UeFixture f;
  f.sim.run_until(2_ms);  // inside the first 5 ms supervision period
  f.ue = nullptr;
  f.sim.run_until(1_s);
}

TEST(UserEquipment, UplinkQueueOverflowDrops) {
  UeFixture f;
  for (int i = 0; i < 4000; ++i) {
    f.ue->send_uplink(std::vector<std::uint8_t>(1400, 1));
    if (i % 100 == 0) {
      f.sim.run_until(f.sim.now() + 1_us);
    }
  }
  f.sim.run_until(f.sim.now() + 10_ms);
  EXPECT_GT(f.ue->stats().ul_sdus_dropped_overflow, 0);
}

}  // namespace
}  // namespace slingshot
