// UeBatch conformance tests: the SoA massive-UE batch must reproduce
// the tracer-visible behavior of the individually-modeled UserEquipment
// — RLF declared within one supervision period of the reference, reattach
// exactly reattach_delay after declaration, grants held across short
// control gaps — plus the batch-only machinery (schedule arithmetic,
// traffic apps, churn, the zero-cost steady-state supervision guard).
#include "ue/ue_batch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>

#include "l2/bulk_schedule.h"
#include "ue/ue.h"

namespace slingshot {
namespace {

UeBatchConfig small_config(std::uint32_t population) {
  UeBatchConfig cfg;
  cfg.schedule.population = population;
  cfg.seed = 7;
  return cfg;
}

// ---- Shared schedule arithmetic ----

TEST(BulkSchedule, WireIdsAreFlaggedAndCellRecoverable) {
  for (std::uint8_t cell : {std::uint8_t(0), std::uint8_t(3),
                            std::uint8_t(127)}) {
    const UeId id = bulk_wire_id(cell, 42);
    EXPECT_TRUE(is_bulk_ue(id));
    EXPECT_EQ(bulk_cell_of(id), cell);
  }
  // Tracer testbed ids (1.., 100*c+1..) never carry the flag.
  EXPECT_FALSE(is_bulk_ue(UeId{1}));
  EXPECT_FALSE(is_bulk_ue(UeId{101}));
  EXPECT_FALSE(is_bulk_ue(UeId{701}));
}

TEST(BulkSchedule, TurnsCycleFairlyOverAllLanes) {
  BulkSchedule s;
  s.population = 7;
  s.ul_grants_per_slot = 2;
  std::vector<int> turns_per_lane(s.population, 0);
  for (std::int64_t slot = 0; slot < 7 * 4; ++slot) {
    for (int j = 0; j < s.ul_grants_per_slot; ++j) {
      const auto turn = bulk_ul_turn(s, slot, j);
      ASSERT_LT(turn.lane, s.population);
      ++turns_per_lane[turn.lane];
    }
  }
  // 56 turns over 7 lanes: exactly 8 each (round-robin index % N).
  for (const int count : turns_per_lane) {
    EXPECT_EQ(count, 8);
  }
}

TEST(BulkSchedule, L2AndBatchRecomputeIdenticalTurns) {
  BulkSchedule s;
  s.cell = 2;
  s.population = 1000;
  std::vector<TtiPdu> pdus;
  append_bulk_ul(s, /*slot=*/1234, pdus);
  ASSERT_EQ(int(pdus.size()), s.ul_grants_per_slot);
  for (int j = 0; j < s.ul_grants_per_slot; ++j) {
    const auto turn = bulk_ul_turn(s, 1234, j);
    EXPECT_EQ(pdus[std::size_t(j)].ue, turn.ue);
    EXPECT_EQ(pdus[std::size_t(j)].harq, turn.harq);
    EXPECT_TRUE(pdus[std::size_t(j)].new_data);
  }
}

// ---- Construction and footprint ----

TEST(UeBatch, StartsFullyConnectedWithSmallFootprint) {
  UeBatch batch(small_config(10'000));
  EXPECT_EQ(batch.population(), 10'000U);
  EXPECT_EQ(batch.connected_count(), 10'000);
  EXPECT_EQ(batch.reattaching_count(), 0);
  // SoA lanes: ~42 bytes of hot state per UE; anything near the
  // UserEquipment footprint (timers + maps, kilobytes) is a regression.
  EXPECT_LT(batch.bytes_per_ue(), 64.0);
  EXPECT_GT(batch.bytes_per_ue(), 0.0);
}

TEST(UeBatch, TrafficMixFollowsConfiguredFractions) {
  auto cfg = small_config(20'000);
  cfg.web_fraction = 0.4;
  cfg.voice_fraction = 0.3;
  UeBatch batch(cfg);
  std::int64_t web = 0;
  std::int64_t voice = 0;
  for (std::uint32_t lane = 0; lane < batch.population(); ++lane) {
    web += batch.lane_app(lane) == BulkApp::kWeb ? 1 : 0;
    voice += batch.lane_app(lane) == BulkApp::kVoice ? 1 : 0;
  }
  EXPECT_NEAR(double(web) / 20'000.0, 0.4, 0.02);
  EXPECT_NEAR(double(voice) / 20'000.0, 0.3, 0.02);
}

// ---- Control-plane supervision ----

TEST(UeBatch, TracksMaxControlGap) {
  UeBatch batch(small_config(4));
  for (std::int64_t s = 0; s <= 10; ++s) {
    batch.on_dl_control(s);
  }
  batch.on_dl_control(13);  // slots 11, 12 missing: gap of 2
  batch.on_dl_control(14);
  EXPECT_EQ(batch.stats().max_ctrl_gap_slots, 2);
  EXPECT_EQ(batch.stats().ctrl_slots_seen, 13);
}

TEST(UeBatch, SteadyStateRunsZeroDeadlineScans) {
  auto cfg = small_config(256);
  UeBatch batch(cfg);
  for (std::int64_t s = 0; s < 300; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
  }
  // Live control plane: the scalar guard keeps the SIMD sweeps idle.
  EXPECT_EQ(batch.stats().deadline_scans, 0);
  EXPECT_EQ(batch.stats().rlf_events, 0);
  EXPECT_EQ(batch.connected_count(), 256);
}

TEST(UeBatch, ShortFailoverGapDoesNotDisconnectAnyone) {
  auto cfg = small_config(64);
  cfg.rlf_timeout_slots = 100;
  UeBatch batch(cfg);
  std::int64_t s = 0;
  for (; s < 50; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
  }
  for (; s < 53; ++s) {
    batch.advance_tti(s);  // 3-slot control outage (a generous failover)
  }
  for (; s < 120; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
  }
  EXPECT_EQ(batch.stats().rlf_events, 0);
  EXPECT_EQ(batch.connected_count(), 64);
  EXPECT_EQ(batch.stats().max_ctrl_gap_slots, 3);
}

// The conformance anchor: the batch's slot-granular RLF lands within one
// 5 ms supervision period of a reference UserEquipment driven by the
// same control-plane history, and reattach completes exactly
// reattach_delay later.
TEST(UeBatchConformance, RlfTimingWithinOneSupervisionPeriodOfReferenceUe) {
  const std::int64_t last_ctrl_slot = 40;

  // Reference: a real UserEquipment with the default 50 ms RLF timer.
  Simulator sim;
  UeConfig ue_cfg;
  ue_cfg.id = UeId{1};
  FadingConfig fading;
  fading.ar1_sigma_db = 0.0;
  UserEquipment ue(sim, "ref-ue", ue_cfg, fading, sim.rng().stream("chan"));
  ue.power_on();
  const Nanos slot_ns = ue_cfg.slots.slot_duration;
  std::int64_t ue_rlf_slot = -1;
  for (std::int64_t s = 0; s < 400 && ue_rlf_slot < 0; ++s) {
    sim.run_until(s * slot_ns + 1);
    if (s <= last_ctrl_slot) {
      ue.on_dl_control(s, CPlaneMsg{});
    }
    if (!ue.connected()) {
      ue_rlf_slot = s;
    }
  }
  ASSERT_GT(ue_rlf_slot, 0);

  // Batch with the matching slot-granular timeout (50 ms at 500 µs).
  auto cfg = small_config(32);
  cfg.rlf_timeout_slots = ue_cfg.rlf_timeout / slot_ns;
  UeBatch batch(cfg);
  std::int64_t batch_rlf_slot = -1;
  for (std::int64_t s = 0; s < 400 && batch_rlf_slot < 0; ++s) {
    if (s <= last_ctrl_slot) {
      batch.on_dl_control(s);
    }
    batch.advance_tti(s);
    if (batch.connected_count() < std::int64_t(batch.population())) {
      batch_rlf_slot = s;
    }
  }
  ASSERT_GT(batch_rlf_slot, 0);
  // All lanes share the cell's control plane: they fail together.
  EXPECT_EQ(batch.connected_count(), 0);
  EXPECT_EQ(batch.stats().rlf_events, 32);

  // One supervision period = 5 ms = 10 slots at this numerology.
  EXPECT_LE(std::llabs(batch_rlf_slot - ue_rlf_slot), 10)
      << "batch declared at slot " << batch_rlf_slot << ", reference UE at "
      << ue_rlf_slot;
}

TEST(UeBatchConformance, ReattachCompletesExactlyAfterConfiguredDelay) {
  auto cfg = small_config(8);
  cfg.rlf_timeout_slots = 100;
  cfg.reattach_delay_slots = 57;
  UeBatch batch(cfg);
  batch.on_dl_control(0);
  std::int64_t rlf_slot = -1;
  std::int64_t reattach_slot = -1;
  // Stop before slot 258: with the control plane still dead, the
  // reattached lanes would (correctly, like a real UE) RLF again one
  // timeout after the reattach and start a second cycle.
  for (std::int64_t s = 1; s < 250; ++s) {
    batch.advance_tti(s);
    if (rlf_slot < 0 && batch.connected_count() == 0) {
      rlf_slot = s;
    }
    if (rlf_slot > 0 && reattach_slot < 0 && batch.connected_count() == 8) {
      reattach_slot = s;
    }
  }
  ASSERT_GT(rlf_slot, 0);
  ASSERT_GT(reattach_slot, 0);
  EXPECT_EQ(reattach_slot, rlf_slot + 57);
  EXPECT_EQ(batch.stats().reattach_events, 8);
}

// ---- Uplink generation ----

TEST(UeBatch, PullUplinkProducesRealEncodedSections) {
  auto cfg = small_config(100);
  UeBatch batch(cfg);
  batch.on_dl_control(10);
  const auto sections = batch.pull_uplink(10);
  ASSERT_EQ(int(sections.size()), cfg.schedule.ul_grants_per_slot);
  for (const auto& section : sections) {
    EXPECT_TRUE(is_bulk_ue(section.ue));
    EXPECT_TRUE(section.new_data);
    EXPECT_GT(section.codeword_bits, 0U);
    EXPECT_FALSE(section.iq.empty());
    EXPECT_GE(section.shadow_payload.size(), 16U);
    EXPECT_EQ(section.tb_bytes, section.shadow_payload.size());
  }
}

TEST(UeBatch, GrantHoldWindowStopsUplinkDuringLongOutage) {
  UeBatch batch(small_config(16));
  batch.on_dl_control(10);
  // Within the hold window (announce-to-target distance) transmission
  // continues; beyond it the batch has no grant to transmit against.
  EXPECT_FALSE(batch.pull_uplink(14).empty());
  EXPECT_TRUE(batch.pull_uplink(15).empty());
  EXPECT_TRUE(batch.pull_uplink(100).empty());
  // Control resumes: uplink resumes.
  batch.on_dl_control(101);
  EXPECT_FALSE(batch.pull_uplink(101).empty());
}

TEST(UeBatch, FullBufferLanesFillEveryTurn) {
  auto cfg = small_config(10);
  cfg.web_fraction = 0.0;
  cfg.voice_fraction = 0.0;  // all lanes full-buffer
  UeBatch batch(cfg);
  std::int64_t pulled = 0;
  for (std::int64_t s = 0; s < 40; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
    pulled += std::int64_t(batch.pull_uplink(s).size());
  }
  EXPECT_EQ(batch.stats().ul_sections, pulled);
  EXPECT_EQ(batch.stats().ul_app_bytes,
            pulled * std::int64_t(cfg.schedule.ul_tb_bytes));
}

TEST(UeBatch, VoiceLaneDrainsAccruedCredits) {
  auto cfg = small_config(1);  // one lane: every turn is lane 0
  cfg.web_fraction = 0.0;
  cfg.voice_fraction = 1.0;
  cfg.schedule.ul_grants_per_slot = 1;
  UeBatch batch(cfg);
  ASSERT_EQ(batch.lane_app(0), BulkApp::kVoice);
  for (std::int64_t s = 0; s < 100; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
  }
  batch.on_dl_control(100);
  const auto sections = batch.pull_uplink(100);
  ASSERT_EQ(sections.size(), 1U);
  // 100 slots of 0.76 B/slot CBR accrual ≈ 76 bytes drained.
  EXPECT_GE(batch.stats().ul_app_bytes, 70);
  EXPECT_LE(batch.stats().ul_app_bytes, 80);
}

// ---- Downlink decode model ----

TEST(UeBatch, DlHarqCombiningRecoversAfterLowSnrFailure) {
  auto cfg = small_config(1);
  cfg.fading.mean_snr_db = -20.0F;  // far below any MCS threshold
  cfg.fading.innov_sigma_db = 0.0F;
  UeBatch batch(cfg);
  const auto turn = bulk_dl_turn(cfg.schedule, /*slot=*/8, 0);
  UPlaneSection section;
  section.ue = turn.ue;
  section.harq = turn.harq;
  section.mcs = cfg.schedule.dl_mcs;
  section.tb_bytes = cfg.schedule.dl_tb_bytes;
  batch.on_dl_section(8, section);   // first transmission: SNR fail
  batch.on_dl_section(8, section);   // retry on the same process: combine
  EXPECT_EQ(batch.stats().dl_tbs_failed, 1);
  EXPECT_EQ(batch.stats().dl_tbs_ok, 1);
  EXPECT_EQ(batch.stats().dl_harq_combines, 1);
  const auto uci = batch.pull_uci();
  ASSERT_EQ(uci.size(), 2U);
  EXPECT_FALSE(uci[0].ack);
  EXPECT_TRUE(uci[1].ack);
  EXPECT_TRUE(batch.pull_uci().empty());  // drained
}

TEST(UeBatch, HighSnrDlSectionsMostlyDecode) {
  auto cfg = small_config(50);
  cfg.fading.mean_snr_db = 30.0F;
  cfg.dl_base_error_rate = 0.0;
  UeBatch batch(cfg);
  for (std::int64_t s = 0; s < 100; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
    for (int j = 0; j < cfg.schedule.dl_pdus_per_slot; ++j) {
      const auto turn = bulk_dl_turn(cfg.schedule, s, j);
      UPlaneSection section;
      section.ue = turn.ue;
      section.harq = turn.harq;
      section.mcs = cfg.schedule.dl_mcs;
      section.tb_bytes = cfg.schedule.dl_tb_bytes;
      batch.on_dl_section(s, section);
    }
  }
  EXPECT_EQ(batch.stats().dl_sections, 200);
  EXPECT_EQ(batch.stats().dl_tbs_failed, 0);
  EXPECT_EQ(batch.stats().dl_app_bytes,
            200 * std::int64_t(cfg.schedule.dl_tb_bytes));
}

// ---- Churn ----

TEST(UeBatch, DiurnalChurnMovesLanesAndKeepsBookkeepingConsistent) {
  auto cfg = small_config(2000);
  cfg.churn_amplitude = 0.2;
  cfg.churn_period_slots = 400;
  UeBatch batch(cfg);
  for (std::int64_t s = 0; s < 400; ++s) {
    batch.on_dl_control(s);
    batch.advance_tti(s);
  }
  EXPECT_GT(batch.stats().churn_detaches, 0);
  EXPECT_GT(batch.stats().churn_attaches, 0);
  // connected_count must equal the lane-level truth at all times.
  std::int64_t connected = 0;
  for (std::uint32_t lane = 0; lane < batch.population(); ++lane) {
    connected += batch.lane_connected(lane) ? 1 : 0;
  }
  EXPECT_EQ(connected, batch.connected_count());
  EXPECT_EQ(batch.stats().rlf_events, 0);  // churn is not RLF
}

TEST(UeBatch, EmptyBatchIsInert) {
  UeBatch batch(small_config(0));
  batch.on_dl_control(5);
  batch.advance_tti(5);
  EXPECT_TRUE(batch.pull_uplink(5).empty());
  EXPECT_TRUE(batch.pull_uci().empty());
  EXPECT_EQ(batch.connected_count(), 0);
}

}  // namespace
}  // namespace slingshot
