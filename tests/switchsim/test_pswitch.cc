#include "switchsim/pswitch.h"

#include <gtest/gtest.h>

#include "net/nic.h"
#include "common/stats.h"
#include "switchsim/tables.h"

namespace slingshot {
namespace {

struct Fixture {
  Simulator sim;
  ProgrammableSwitch sw{sim, 8};
  std::vector<std::unique_ptr<Link>> links;
  std::vector<std::unique_ptr<Nic>> nics;

  Nic& add_station(int port, std::uint64_t mac) {
    links.push_back(std::make_unique<Link>(
        sim, LinkConfig{}, sim.rng().stream("loss", std::uint64_t(port))));
    nics.push_back(std::make_unique<Nic>(sim, MacAddr{mac}));
    nics.back()->attach(*links.back());
    sw.attach_link(port, *links.back());
    sw.add_l2_route(MacAddr{mac}, port);
    return *nics.back();
  }
};

TEST(ProgrammableSwitch, StaticL2Forwarding) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  auto& b = f.add_station(1, 0xB);
  int b_got = 0;
  b.set_rx_handler([&](Packet&&) { ++b_got; });

  Packet p;
  p.eth.dst = MacAddr{0xB};
  p.payload = {1, 2, 3};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(b_got, 1);
}

TEST(ProgrammableSwitch, UnknownDestinationDropped) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  Packet p;
  p.eth.dst = MacAddr{0xDEAD};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(f.sw.frames_processed(), 1U);  // ingressed but nowhere to go
}

struct DropAllProgram final : DataplaneProgram {
  int processed = 0;
  int generator_ticks = 0;
  PipelineVerdict process(Packet&, int, PipelineContext&) override {
    ++processed;
    return PipelineVerdict::kHandled;  // swallow everything
  }
  void on_generator_packet(Packet&, PipelineContext&) override {
    ++generator_ticks;
  }
};

TEST(ProgrammableSwitch, ProgramCanConsumeFrames) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  auto& b = f.add_station(1, 0xB);
  int b_got = 0;
  b.set_rx_handler([&](Packet&&) { ++b_got; });
  auto program = std::make_shared<DropAllProgram>();
  f.sw.install_program(program);

  Packet p;
  p.eth.dst = MacAddr{0xB};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(program->processed, 1);
  EXPECT_EQ(b_got, 0);
}

struct RedirectProgram final : DataplaneProgram {
  MacAddr target;
  PipelineVerdict process(Packet& p, int, PipelineContext& ctx) override {
    p.eth.dst = target;
    ctx.emit_to_mac(target, std::move(p));
    return PipelineVerdict::kHandled;
  }
  void on_generator_packet(Packet&, PipelineContext&) override {}
};

TEST(ProgrammableSwitch, ProgramCanRedirect) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  auto& b = f.add_station(1, 0xB);
  auto& c = f.add_station(2, 0xC);
  int b_got = 0;
  int c_got = 0;
  b.set_rx_handler([&](Packet&&) { ++b_got; });
  c.set_rx_handler([&](Packet&&) { ++c_got; });
  auto program = std::make_shared<RedirectProgram>();
  program->target = MacAddr{0xC};
  f.sw.install_program(program);

  Packet p;
  p.eth.dst = MacAddr{0xB};  // program redirects to C
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(b_got, 0);
  EXPECT_EQ(c_got, 1);
}

TEST(ProgrammableSwitch, PacketGeneratorTicksAtPeriod) {
  Fixture f;
  auto program = std::make_shared<DropAllProgram>();
  f.sw.install_program(program);
  f.sw.start_packet_generator(9_us);
  f.sim.run_until(90_us);
  EXPECT_EQ(program->generator_ticks, 10);
  f.sw.stop_packet_generator();
  f.sim.run_until(200_us);
  EXPECT_EQ(program->generator_ticks, 10);
}

TEST(ProgrammableSwitch, IngressTapSeesFrames) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  f.add_station(1, 0xB);
  int tapped = 0;
  f.sw.set_ingress_tap([&](const Packet&, int port, Nanos) {
    EXPECT_EQ(port, 0);
    ++tapped;
  });
  Packet p;
  p.eth.dst = MacAddr{0xB};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(tapped, 1);
}

struct EmitOnPortProgram final : DataplaneProgram {
  int port = 0;
  PipelineVerdict process(Packet& p, int, PipelineContext& ctx) override {
    ctx.emit(port, std::move(p));
    return PipelineVerdict::kHandled;
  }
  void on_generator_packet(Packet&, PipelineContext&) override {}
};

TEST(ProgrammableSwitch, EmitToOutOfRangePortIsCountedDrop) {
  // Regression: emitting on a port beyond the switch radix used to
  // throw (vector::at) from inside the pipeline; it must be a counted
  // drop — a misprogrammed egress is a dataplane event, not UB.
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  auto program = std::make_shared<EmitOnPortProgram>();
  program->port = 99;
  f.sw.install_program(program);
  Packet p;
  p.eth.dst = MacAddr{0xB};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(f.sw.emits_to_unwired_port(), 1U);

  program->port = -3;
  Packet q;
  q.eth.dst = MacAddr{0xB};
  a.send(std::move(q));
  f.sim.run_until(2_ms);
  EXPECT_EQ(f.sw.emits_to_unwired_port(), 2U);
}

TEST(ProgrammableSwitch, EmitToUnwiredPortIsCountedDrop) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  // Port 5 is within the radix but has no link attached.
  f.sw.add_l2_route(MacAddr{0xE}, 5);
  Packet p;
  p.eth.dst = MacAddr{0xE};
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(f.sw.emits_to_unwired_port(), 1U);
  EXPECT_EQ(f.sw.frames_processed(), 1U);
}

TEST(ProgrammableSwitch, NotificationTapNullFunctionDetaches) {
  Fixture f;
  auto& a = f.add_station(0, 0xA);
  f.add_station(1, 0xB);
  int tapped = 0;
  f.sw.set_notification_tap(EtherType::kUserPlane,
                            [&](const Packet&, Nanos) { ++tapped; });
  Packet p;
  p.eth.dst = MacAddr{0xB};
  p.eth.ethertype = EtherType::kUserPlane;
  a.send(std::move(p));
  f.sim.run_until(1_ms);
  EXPECT_EQ(tapped, 1);

  f.sw.set_notification_tap(EtherType::kUserPlane, nullptr);
  Packet q;
  q.eth.dst = MacAddr{0xB};
  q.eth.ethertype = EtherType::kUserPlane;
  a.send(std::move(q));
  f.sim.run_until(2_ms);
  EXPECT_EQ(tapped, 1);  // detached: no further callbacks
}

TEST(ProgrammableSwitch, TickPerturbationStretchesGeneratorTrain) {
  Fixture f;
  auto program = std::make_shared<DropAllProgram>();
  f.sw.install_program(program);
  // A +11% "slow oscillator" perturbation: 9 us nominal -> 10 us real.
  f.sw.set_tick_perturbation([](Nanos nominal) {
    return nominal + nominal / 9;
  });
  f.sw.start_packet_generator(9_us);
  f.sim.run_until(90_us);
  EXPECT_EQ(program->generator_ticks, 9);  // 10 with an ideal clock
}

TEST(MatchActionTable, BootstrapInsertIsImmediate) {
  Simulator sim;
  MatchActionTable<int, int> table{sim, sim.rng().stream("cp")};
  table.bootstrap_insert(1, 100);
  ASSERT_NE(table.lookup(1), nullptr);
  EXPECT_EQ(*table.lookup(1), 100);
  EXPECT_EQ(table.lookup(2), nullptr);
}

TEST(MatchActionTable, ControlPlaneInsertTakesMilliseconds) {
  Simulator sim;
  MatchActionTable<int, int> table{sim, sim.rng().stream("cp")};
  const Nanos lands_at = table.control_plane_insert(7, 7);
  EXPECT_GE(lands_at, 5_ms);  // at least the base latency
  sim.run_until(4_ms);
  EXPECT_EQ(table.lookup(7), nullptr);  // not yet visible
  sim.run_until(lands_at + 1);
  ASSERT_NE(table.lookup(7), nullptr);
}

TEST(MatchActionTable, UpdateLatencyTailMatchesPaper) {
  // The paper measures ~29 ms at p99.9 for switch rule updates — the
  // reason the RU-to-PHY map lives in data-plane registers instead.
  Simulator sim;
  auto rng = sim.rng().stream("lat");
  ControlPlaneLatencyModel model;
  PercentileTracker t;
  for (int i = 0; i < 20000; ++i) {
    t.add(to_millis(model.sample(rng)));
  }
  EXPECT_NEAR(t.quantile(0.999), 29.0, 6.0);
  EXPECT_GT(t.quantile(0.0), 4.9);
}

TEST(MatchActionTable, InstallsApplyInIssueOrderNotLatencyOrder) {
  Simulator sim;
  MatchActionTable<int, int> table{sim, sim.rng().stream("cp")};
  // Issue updates to one key back-to-back until the sampled latencies
  // invert (a later issue landing earlier). The exponential tail makes
  // this near-immediate; the fixed seed makes it deterministic.
  Nanos prev = table.control_plane_insert(5, 0);
  int last = 0;
  bool inverted = false;
  for (int i = 1; i < 256 && !inverted; ++i) {
    const Nanos lands = table.control_plane_insert(5, i);
    last = i;
    inverted = lands < prev;
    prev = lands;
  }
  ASSERT_TRUE(inverted);
  sim.run_until(1_s);
  // The newest *issued* value wins even though an older install landed
  // after it; the stale land was dropped, not applied.
  ASSERT_NE(table.lookup(5), nullptr);
  EXPECT_EQ(*table.lookup(5), last);
  EXPECT_GE(table.stale_lands_dropped(), 1U);
}

TEST(MatchActionTable, IssueOrderIsTrackedPerKey) {
  Simulator sim;
  MatchActionTable<int, int> table{sim, sim.rng().stream("cp")};
  // Interleaved updates to two keys: latency inversions across keys
  // never invalidate each other, only within a key.
  for (int i = 0; i < 8; ++i) {
    table.control_plane_insert(1, 100 + i);
    table.control_plane_insert(2, 200 + i);
  }
  sim.run_until(1_s);
  ASSERT_NE(table.lookup(1), nullptr);
  ASSERT_NE(table.lookup(2), nullptr);
  EXPECT_EQ(*table.lookup(1), 107);
  EXPECT_EQ(*table.lookup(2), 207);
}

TEST(MatchActionTable, TeardownCancelsPendingInstalls) {
  Simulator sim;
  {
    MatchActionTable<int, int> table{sim, sim.rng().stream("cp")};
    for (int i = 0; i < 16; ++i) {
      table.control_plane_insert(i, i);
    }
  }  // destroyed with installs still in flight
  sim.run_until(1_s);  // cancelled callbacks must not touch freed memory
  SUCCEED();
}

TEST(RegisterArray, DataPlaneReadWrite) {
  RegisterArray<int> regs{4, -1};
  EXPECT_EQ(regs.read(3), -1);
  regs.write(3, 42);
  EXPECT_EQ(regs.read(3), 42);
  EXPECT_THROW(regs.write(4, 0), std::out_of_range);
}

}  // namespace
}  // namespace slingshot
