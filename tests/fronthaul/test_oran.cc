#include "fronthaul/oran.h"

#include <gtest/gtest.h>

namespace slingshot {
namespace {

FronthaulPacket make_cplane_packet() {
  FronthaulPacket p;
  p.header.direction = FhDirection::kDownlink;
  p.header.plane = FhPlane::kControl;
  p.header.slot = SlotPoint{17, 3, 1};
  p.header.symbol = 0;
  p.header.ru = RuId{9};
  p.cplane.dl_assignments.push_back(
      DlAssignment{UeId{100}, 2, 5000, HarqId{3}, true});
  p.cplane.ul_grants.push_back(UlGrant{UeId{101}, 12345, 1, 2000, HarqId{1}, false});
  p.cplane.uci.push_back(UciFeedback{UeId{100}, HarqId{2}, true});
  return p;
}

TEST(Fronthaul, CPlaneRoundtrip) {
  const auto original = make_cplane_packet();
  const auto bytes = serialize_fronthaul(original);
  const auto parsed = parse_fronthaul(bytes);

  EXPECT_EQ(parsed.header.direction, FhDirection::kDownlink);
  EXPECT_EQ(parsed.header.plane, FhPlane::kControl);
  EXPECT_EQ(parsed.header.slot, (SlotPoint{17, 3, 1}));
  EXPECT_EQ(parsed.header.ru, RuId{9});
  ASSERT_EQ(parsed.cplane.dl_assignments.size(), 1U);
  EXPECT_EQ(parsed.cplane.dl_assignments[0].ue, UeId{100});
  EXPECT_EQ(parsed.cplane.dl_assignments[0].tb_bytes, 5000U);
  ASSERT_EQ(parsed.cplane.ul_grants.size(), 1U);
  EXPECT_EQ(parsed.cplane.ul_grants[0].target_slot, 12345);
  EXPECT_FALSE(parsed.cplane.ul_grants[0].new_data);
  ASSERT_EQ(parsed.cplane.uci.size(), 1U);
  EXPECT_TRUE(parsed.cplane.uci[0].ack);
}

TEST(Fronthaul, UPlaneRoundtripWithIq) {
  FronthaulPacket p;
  p.header.direction = FhDirection::kUplink;
  p.header.plane = FhPlane::kUser;
  p.header.slot = SlotPoint{1023, 9, 1};  // max header values
  p.header.symbol = 13;
  p.header.ru = RuId{255};
  UPlaneSection s;
  s.ue = UeId{7};
  s.harq = HarqId{5};
  s.new_data = false;
  s.mcs = 3;
  s.tb_bytes = 9999;
  s.codeword_bits = 648;
  s.iq = {{1.5F, -2.5F}, {0.0F, 3.25F}};
  s.shadow_payload = {0xDE, 0xAD};
  p.uplane.sections.push_back(s);

  const auto parsed = parse_fronthaul(serialize_fronthaul(p));
  ASSERT_EQ(parsed.uplane.sections.size(), 1U);
  const auto& ps = parsed.uplane.sections[0];
  EXPECT_EQ(ps.ue, UeId{7});
  EXPECT_EQ(ps.codeword_bits, 648U);
  ASSERT_EQ(ps.iq.size(), 2U);
  EXPECT_FLOAT_EQ(ps.iq[0].real(), 1.5F);
  EXPECT_FLOAT_EQ(ps.iq[1].imag(), 3.25F);
  EXPECT_EQ(ps.shadow_payload, (std::vector<std::uint8_t>{0xDE, 0xAD}));
}

TEST(Fronthaul, EmptyCPlaneIsValid) {
  FronthaulPacket p;
  p.header.plane = FhPlane::kControl;
  const auto parsed = parse_fronthaul(serialize_fronthaul(p));
  EXPECT_TRUE(parsed.cplane.dl_assignments.empty());
  EXPECT_TRUE(parsed.cplane.ul_grants.empty());
}

TEST(Fronthaul, PeekHeaderWithoutFullParse) {
  const auto p = make_cplane_packet();
  const auto bytes = serialize_fronthaul(p);
  const auto header = peek_fronthaul_header(bytes);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->slot, (SlotPoint{17, 3, 1}));
  EXPECT_EQ(header->ru, RuId{9});
  EXPECT_EQ(header->direction, FhDirection::kDownlink);
}

TEST(Fronthaul, PeekHeaderRejectsGarbage) {
  const std::vector<std::uint8_t> junk{0x00, 0x01, 0x02};
  EXPECT_FALSE(peek_fronthaul_header(junk).has_value());
  const std::vector<std::uint8_t> wrong_version(32, 0xFF);
  EXPECT_FALSE(peek_fronthaul_header(wrong_version).has_value());
}

TEST(Fronthaul, ParseTruncatedThrows) {
  auto bytes = serialize_fronthaul(make_cplane_packet());
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW((void)parse_fronthaul(bytes), std::out_of_range);
}

TEST(Fronthaul, MakeFrameSetsEthernetFields) {
  const auto frame = make_fronthaul_frame(MacAddr{0xA}, MacAddr{0xB},
                                          make_cplane_packet());
  EXPECT_EQ(frame.eth.src, MacAddr{0xA});
  EXPECT_EQ(frame.eth.dst, MacAddr{0xB});
  EXPECT_EQ(frame.eth.ethertype, EtherType::kEcpri);
  EXPECT_TRUE(peek_fronthaul_header(frame.payload).has_value());
}

}  // namespace
}  // namespace slingshot
