#include "fronthaul/bfp.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "fronthaul/oran.h"

namespace slingshot {
namespace {

std::vector<std::complex<float>> random_iq(std::size_t n, std::uint64_t seed,
                                           double scale = 1.0) {
  auto rng = RngRegistry{seed}.stream("bfp");
  std::vector<std::complex<float>> iq;
  iq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    iq.emplace_back(float(rng.gaussian(0, scale)),
                    float(rng.gaussian(0, scale)));
  }
  return iq;
}

double max_error(std::span<const std::complex<float>> a,
                 std::span<const std::complex<float>> b) {
  double worst = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    worst = std::max<double>(worst, std::abs(a[i] - b[i]));
  }
  return worst;
}

class BfpMantissaSweep : public ::testing::TestWithParam<int> {};

TEST_P(BfpMantissaSweep, RoundtripErrorBoundedByQuantizationStep) {
  const int m = GetParam();
  const auto iq = random_iq(333, 7);  // deliberately not a block multiple
  const auto compressed = bfp_compress(iq, m);
  const auto restored = bfp_decompress(compressed, iq.size(), m);
  ASSERT_EQ(restored.size(), iq.size());
  // Error per block is bounded by the block's quantization step:
  // peak / (2^(m-1) - 1), within rounding.
  for (std::size_t base = 0; base < iq.size(); base += kBfpBlockSamples) {
    const auto n = std::min<std::size_t>(kBfpBlockSamples, iq.size() - base);
    float peak = 0;
    for (std::size_t s = 0; s < n; ++s) {
      peak = std::max({peak, std::fabs(iq[base + s].real()),
                       std::fabs(iq[base + s].imag())});
    }
    const double step = peak / double((1 << (m - 1)) - 1);
    for (std::size_t s = 0; s < n; ++s) {
      EXPECT_LE(std::abs(iq[base + s] - restored[base + s]), 2.1 * step)
          << "m=" << m << " sample " << base + s;
    }
  }
}

TEST_P(BfpMantissaSweep, CompressedSizeMatchesAccounting) {
  const int m = GetParam();
  const auto iq = random_iq(100, 8);
  EXPECT_EQ(bfp_compress(iq, m).size(), bfp_compressed_size(iq.size(), m));
}

INSTANTIATE_TEST_SUITE_P(Widths, BfpMantissaSweep,
                         ::testing::Values(4, 6, 9, 12, 14));

TEST(Bfp, NineBitBeatsFloat32ByFactorThree) {
  const auto iq = random_iq(324, 9);
  const auto compressed = bfp_compressed_size(iq.size(), 9);
  const auto raw = iq.size() * 8;  // two float32 per sample
  EXPECT_LT(double(compressed), double(raw) / 3.0);
}

TEST(Bfp, HandlesWideDynamicRangeAcrossBlocks) {
  // One loud block followed by a near-silent one: per-block exponents
  // must keep the quiet block's relative precision.
  auto iq = random_iq(12, 10, 1.0);
  const auto quiet = random_iq(12, 11, 1e-4);
  iq.insert(iq.end(), quiet.begin(), quiet.end());
  const auto restored = bfp_decompress(bfp_compress(iq, 9), iq.size(), 9);
  // The quiet block survives with error << its own magnitude.
  EXPECT_LT(max_error(std::span(iq).subspan(12),
                      std::span(restored).subspan(12)),
            1e-5);
}

TEST(Bfp, AllZeroBlockRoundtripsToZero) {
  const std::vector<std::complex<float>> zeros(24, {0.0F, 0.0F});
  const auto restored = bfp_decompress(bfp_compress(zeros, 9), 24, 9);
  for (const auto& s : restored) {
    EXPECT_EQ(s, (std::complex<float>{0.0F, 0.0F}));
  }
}

TEST(Bfp, InvalidMantissaThrows) {
  const auto iq = random_iq(12, 12);
  EXPECT_THROW((void)bfp_compress(iq, 1), std::invalid_argument);
  EXPECT_THROW((void)bfp_compress(iq, 17), std::invalid_argument);
  EXPECT_THROW((void)bfp_decompress({}, 12, 0), std::invalid_argument);
}

TEST(Bfp, TruncatedStreamThrows) {
  const auto iq = random_iq(24, 13);
  auto compressed = bfp_compress(iq, 9);
  compressed.resize(compressed.size() / 2);
  EXPECT_THROW((void)bfp_decompress(compressed, 24, 9), std::out_of_range);
}

TEST(Bfp, UPlaneSectionCompressesOnTheWire) {
  FronthaulPacket p;
  p.header.direction = FhDirection::kDownlink;
  p.header.plane = FhPlane::kUser;
  p.header.ru = RuId{1};
  UPlaneSection s;
  s.ue = UeId{1};
  s.codeword_bits = 648;
  s.iq = random_iq(340, 14);
  s.shadow_payload = {1, 2, 3};

  // Uncompressed baseline.
  s.bfp_mantissa_bits = 0;
  p.uplane.sections = {s};
  const auto raw_bytes = serialize_fronthaul(p);
  // 9-bit BFP.
  p.uplane.sections[0].bfp_mantissa_bits = 9;
  const auto bfp_bytes = serialize_fronthaul(p);
  EXPECT_LT(double(bfp_bytes.size()), double(raw_bytes.size()) / 2.5);

  // Parsed samples are quantized but close.
  const auto parsed = parse_fronthaul(bfp_bytes);
  ASSERT_EQ(parsed.uplane.sections.size(), 1U);
  EXPECT_EQ(parsed.uplane.sections[0].iq.size(), s.iq.size());
  EXPECT_LT(max_error(s.iq, parsed.uplane.sections[0].iq), 0.03);
}

}  // namespace
}  // namespace slingshot
