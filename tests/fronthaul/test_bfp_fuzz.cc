// Negative/fuzz corpus for the fronthaul U-plane path: BFP-compressed
// IQ sections crossing the eCPRI framing. Compiled into the
// test_wire_fuzz binary (asan ctest label) so the whole corpus runs
// under AddressSanitizer in the asan-ubsan preset.
//
// Pinned properties:
//   1. totality — no truncation, mutation, or noise input crashes or
//      reads out of bounds; parse_fronthaul fails only by throwing
//      std::out_of_range, and bfp_try_decompress_into never throws;
//   2. strict framing — every strict prefix of a valid U-plane frame
//      is rejected;
//   3. the checked decoder is exact — on valid input it produces the
//      same samples as the throwing codec, and on failure it leaves
//      the output cleared.
#include <complex>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include <gtest/gtest.h>

#include "fronthaul/bfp.h"
#include "fronthaul/oran.h"

namespace slingshot {
namespace {

struct Xorshift {
  std::uint64_t s;
  std::uint64_t next() {
    s ^= s << 13;
    s ^= s >> 7;
    s ^= s << 17;
    return s;
  }
};

std::vector<std::complex<float>> make_iq(std::size_t n, std::uint64_t seed) {
  Xorshift rng{seed + 0x9E3779B97F4A7C15ULL};
  std::vector<std::complex<float>> iq;
  iq.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    // Mixed magnitudes, signs, and exact zeros (silent-block path).
    const auto a = double(std::int32_t(rng.next())) / 65536.0;
    const auto b = (i % 7 == 0) ? 0.0 : double(std::int32_t(rng.next())) / 8.0;
    iq.emplace_back(float(a), float(b));
  }
  return iq;
}

FronthaulPacket make_uplane_packet(int mantissa_bits, std::size_t n_iq,
                                   std::uint64_t seed) {
  FronthaulPacket packet;
  packet.header.direction = FhDirection::kUplink;
  packet.header.plane = FhPlane::kUser;
  packet.header.slot = {.frame = 7, .subframe = 3, .slot = 1};
  packet.header.symbol = 4;
  packet.header.ru = RuId{2};
  UPlaneSection s;
  s.ue = UeId{0x1234};
  s.harq = HarqId{3};
  s.new_data = true;
  s.mcs = 11;
  s.tb_bytes = 320;
  s.codeword_bits = 648;
  s.bfp_mantissa_bits = std::uint8_t(mantissa_bits);
  s.iq = make_iq(n_iq, seed);
  s.shadow_payload = {0xDE, 0xAD, 0xBE, 0xEF};
  packet.uplane.sections.push_back(std::move(s));
  return packet;
}

// Width x sample-count grid: byte-aligned and odd mantissa widths,
// whole blocks, a partial final block, and the empty section.
const int kWidths[] = {2, 5, 8, 9, 12, 16};
const std::size_t kCounts[] = {0, 1, 11, 12, 13, 36, 100};

TEST(BfpFuzz, UPlaneRoundTripMatchesCodec) {
  for (const int m : kWidths) {
    for (const std::size_t n : kCounts) {
      const auto packet = make_uplane_packet(m, n, std::uint64_t(m) * 1000 + n);
      const auto bytes = serialize_fronthaul(packet);
      const auto parsed = parse_fronthaul(bytes);
      ASSERT_EQ(parsed.uplane.sections.size(), 1U) << "m=" << m << " n=" << n;
      const auto& sec = parsed.uplane.sections[0];
      // The parsed samples must equal an offline decompress of an
      // offline compress — the wire carries exactly the codec's bytes.
      const auto expected = bfp_decompress(
          bfp_compress(packet.uplane.sections[0].iq, m), n, m);
      ASSERT_EQ(sec.iq.size(), expected.size());
      for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(sec.iq[i], expected[i]) << "m=" << m << " sample " << i;
      }
    }
  }
}

TEST(BfpFuzz, EveryStrictPrefixOfUPlaneFrameThrows) {
  for (const int m : {2, 9, 16}) {
    const auto bytes = serialize_fronthaul(make_uplane_packet(m, 36, 42));
    for (std::size_t len = 0; len < bytes.size(); ++len) {
      EXPECT_THROW((void)parse_fronthaul({bytes.data(), len}),
                   std::out_of_range)
          << "m=" << m << " prefix " << len;
    }
  }
}

TEST(BfpFuzz, SingleByteMutationsNeverCrash) {
  // Any byte flip may invalidate the mantissa width, the sample count,
  // or the compressed payload; the parse may throw (std::out_of_range)
  // or succeed with different samples, but must never crash or read out
  // of bounds (asan enforces the latter).
  const auto original = serialize_fronthaul(make_uplane_packet(9, 24, 7));
  for (std::size_t i = 0; i < original.size(); ++i) {
    for (const std::uint8_t delta : {0x01, 0x80, 0xFF}) {
      auto mutated = original;
      mutated[i] = std::uint8_t(mutated[i] ^ delta);
      try {
        (void)parse_fronthaul(mutated);
      } catch (const std::out_of_range&) {
        // Rejected — fine.
      }
    }
  }
}

TEST(BfpFuzz, TryDecompressBoundsContract) {
  for (const int m : kWidths) {
    for (const std::size_t n : kCounts) {
      const auto iq = make_iq(n, std::uint64_t(m) * 77 + n);
      auto bytes = bfp_compress(iq, m);
      ASSERT_EQ(bytes.size(), bfp_compressed_size(n, m));
      std::vector<std::complex<float>> out;
      // Exact size: succeeds and matches the throwing decoder.
      ASSERT_TRUE(bfp_try_decompress_into(bytes, n, m, out));
      const auto expected = bfp_decompress(bytes, n, m);
      EXPECT_EQ(out, expected);
      // Trailing bytes are the caller's business: still succeeds.
      bytes.push_back(0xAA);
      ASSERT_TRUE(bfp_try_decompress_into(bytes, n, m, out));
      EXPECT_EQ(out, expected);
      bytes.pop_back();
      // Any strict prefix: fails, never throws, leaves out cleared.
      if (!bytes.empty()) {
        out.assign(3, {1.0F, 1.0F});  // stale content must not survive
        EXPECT_FALSE(bfp_try_decompress_into(
            {bytes.data(), bytes.size() - 1}, n, m, out));
        EXPECT_TRUE(out.empty());
      }
    }
  }
  // Invalid widths: rejected up front for any buffer.
  const std::vector<std::uint8_t> buf(64, 0x55);
  std::vector<std::complex<float>> out;
  for (const int bad_m : {-1, 0, 1, 17, 255}) {
    EXPECT_FALSE(bfp_try_decompress_into(buf, 12, bad_m, out));
    EXPECT_TRUE(out.empty());
  }
}

TEST(BfpFuzz, DeterministicNoiseBuffersNeverCrash) {
  Xorshift rng{0xC0FFEE0DDBA11ULL};
  for (int len = 0; len < 160; ++len) {
    for (int trial = 0; trial < 8; ++trial) {
      std::vector<std::uint8_t> bytes(std::size_t(len), 0);
      for (auto& b : bytes) {
        b = std::uint8_t(rng.next());
      }
      try {
        (void)parse_fronthaul(bytes);
      } catch (const std::out_of_range&) {
        // The only sanctioned failure mode.
      }
      (void)peek_fronthaul_header(bytes);
      // The checked BFP reader must be total on noise too.
      std::vector<std::complex<float>> out;
      const auto m = int(rng.next() % 20);
      const auto n = std::size_t(rng.next() % 64);
      (void)bfp_try_decompress_into(bytes, n, m, out);
    }
  }
}

}  // namespace
}  // namespace slingshot
