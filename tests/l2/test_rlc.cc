#include "l2/rlc.h"

#include <gtest/gtest.h>

namespace slingshot {
namespace {

std::deque<RlcSdu> make_queue(std::initializer_list<std::size_t> sizes) {
  std::deque<RlcSdu> queue;
  std::uint8_t fill = 1;
  for (const auto size : sizes) {
    queue.push_back(
        RlcSdu{kRlcSnUnassigned, std::vector<std::uint8_t>(size, fill++)});
  }
  return queue;
}

TEST(RlcTx, PacksWholeSdusWithSequenceNumbers) {
  RlcTx tx;
  auto queue = make_queue({10, 20, 30});
  const auto tb = tx.pack(queue, 100);
  EXPECT_EQ(tb.size(), 100U);
  EXPECT_TRUE(queue.empty());
  const auto sdus = rlc_unpack(tb);
  ASSERT_EQ(sdus.size(), 3U);
  EXPECT_EQ(sdus[0].sn, 0U);
  EXPECT_EQ(sdus[1].sn, 1U);
  EXPECT_EQ(sdus[2].sn, 2U);
  EXPECT_EQ(sdus[0].bytes.size(), 10U);
  EXPECT_EQ(sdus[2].bytes.size(), 30U);
  EXPECT_EQ(tx.next_sn(), 3U);
}

TEST(RlcTx, RespectsTbCapacity) {
  RlcTx tx;
  auto queue = make_queue({50, 50, 50});
  const auto tb = tx.pack(queue, 120);  // fits two (2 x (6+50) = 112)
  const auto sdus = rlc_unpack(tb);
  EXPECT_EQ(sdus.size(), 2U);
  EXPECT_EQ(queue.size(), 1U);  // third remains queued
}

TEST(RlcTx, PreservesPreAssignedSn) {
  RlcTx tx;
  auto queue = make_queue({10});
  (void)tx.pack(queue, 50);  // consumes SN 0
  // A retransmitted SDU with its original SN jumps the queue.
  std::deque<RlcSdu> retx;
  retx.push_back(RlcSdu{0, std::vector<std::uint8_t>(10, 0xAA)});
  retx.push_back(RlcSdu{kRlcSnUnassigned, std::vector<std::uint8_t>(10, 0xBB)});
  const auto tb = tx.pack(retx, 100);
  const auto sdus = rlc_unpack(tb);
  ASSERT_EQ(sdus.size(), 2U);
  EXPECT_EQ(sdus[0].sn, 0U);  // kept
  EXPECT_EQ(sdus[1].sn, 1U);  // fresh
}

TEST(RlcTx, EmptyQueueYieldsPurePadding) {
  RlcTx tx;
  std::deque<RlcSdu> queue;
  const auto tb = tx.pack(queue, 64);
  EXPECT_EQ(tb.size(), 64U);
  EXPECT_TRUE(rlc_unpack(tb).empty());
}

TEST(RlcRx, InOrderDeliversImmediately) {
  Simulator sim;
  std::vector<std::uint8_t> delivered;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t> sdu) {
             delivered.push_back(sdu[0]);
           }};
  rx.on_sdu(RlcSdu{0, {10}});
  rx.on_sdu(RlcSdu{1, {11}});
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{10, 11}));
  EXPECT_EQ(rx.buffered(), 0U);
}

TEST(RlcRx, OutOfOrderHeldThenDrained) {
  Simulator sim;
  std::vector<std::uint8_t> delivered;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t> sdu) {
             delivered.push_back(sdu[0]);
           }};
  rx.on_sdu(RlcSdu{1, {11}});
  rx.on_sdu(RlcSdu{2, {12}});
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(rx.buffered(), 2U);
  rx.on_sdu(RlcSdu{0, {10}});  // gap fills: everything drains in order
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{10, 11, 12}));
}

TEST(RlcRx, TimerSkipsGenuineLoss) {
  Simulator sim;
  std::vector<std::uint8_t> delivered;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t> sdu) {
             delivered.push_back(sdu[0]);
           }};
  rx.on_sdu(RlcSdu{2, {12}});  // SNs 0 and 1 lost
  sim.run_until(29_ms);
  EXPECT_TRUE(delivered.empty());
  sim.run_until(35_ms);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{12}));
  EXPECT_EQ(rx.skipped(), 2U);
  EXPECT_EQ(rx.expected_sn(), 3U);
}

TEST(RlcRx, LateRetransmissionBeatsTimer) {
  // The RLC-AM scenario: the gap's retransmission (same SN) arrives
  // before t-Reordering expires — delivery resumes without a skip.
  Simulator sim;
  std::vector<std::uint8_t> delivered;
  RlcRx rx{sim, 50_ms, [&](std::vector<std::uint8_t> sdu) {
             delivered.push_back(sdu[0]);
           }};
  rx.on_sdu(RlcSdu{1, {11}});
  rx.on_sdu(RlcSdu{2, {12}});
  sim.run_until(25_ms);
  rx.on_sdu(RlcSdu{0, {10}});  // retransmission fills the gap
  sim.run_until(100_ms);
  EXPECT_EQ(delivered, (std::vector<std::uint8_t>{10, 11, 12}));
  EXPECT_EQ(rx.skipped(), 0U);
}

TEST(RlcRx, DuplicatesDropped) {
  Simulator sim;
  int count = 0;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t>) { ++count; }};
  rx.on_sdu(RlcSdu{0, {1}});
  rx.on_sdu(RlcSdu{0, {1}});
  EXPECT_EQ(count, 1);
  EXPECT_EQ(rx.duplicates(), 1U);
}

TEST(RlcRx, ResetClearsState) {
  Simulator sim;
  int count = 0;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t>) { ++count; }};
  rx.on_sdu(RlcSdu{5, {1}});
  rx.reset();
  EXPECT_EQ(rx.buffered(), 0U);
  rx.on_sdu(RlcSdu{0, {1}});  // fresh numbering accepted
  EXPECT_EQ(count, 1);
  sim.run_until(100_ms);  // no stale timer skip fires
  EXPECT_EQ(rx.skipped(), 0U);
}

TEST(RlcRoundtrip, ManySdusThroughMultipleTbs) {
  RlcTx tx;
  std::deque<RlcSdu> queue;
  for (int i = 0; i < 40; ++i) {
    queue.push_back(RlcSdu{
        kRlcSnUnassigned,
        std::vector<std::uint8_t>(std::size_t(20 + i), std::uint8_t(i))});
  }
  Simulator sim;
  std::vector<std::size_t> sizes;
  RlcRx rx{sim, 30_ms, [&](std::vector<std::uint8_t> sdu) {
             sizes.push_back(sdu.size());
           }};
  while (!queue.empty()) {
    for (auto& sdu : rlc_unpack(tx.pack(queue, 200))) {
      rx.on_sdu(std::move(sdu));
    }
  }
  ASSERT_EQ(sizes.size(), 40U);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(sizes[std::size_t(i)], std::size_t(20 + i));
  }
}

}  // namespace
}  // namespace slingshot
