#include "l2/l2.h"

#include <gtest/gtest.h>

namespace slingshot {
namespace {

struct FapiCapture final : FapiSink {
  std::vector<FapiMessage> messages;
  void on_fapi(FapiMessage&& msg) override {
    messages.push_back(std::move(msg));
  }
  [[nodiscard]] int count(FapiMsgType type) const {
    int n = 0;
    for (const auto& m : messages) {
      n += m.type() == type ? 1 : 0;
    }
    return n;
  }
  [[nodiscard]] const FapiMessage* last(FapiMsgType type) const {
    for (auto it = messages.rbegin(); it != messages.rend(); ++it) {
      if (it->type() == type) {
        return &*it;
      }
    }
    return nullptr;
  }
};

struct L2Fixture {
  Simulator sim;
  L2Config config;
  L2Process l2{sim, "l2-test", config};
  ShmFapiPipe pipe{sim};
  FapiCapture capture;

  L2Fixture() {
    pipe.connect(&capture);
    l2.connect_fapi_out(&pipe);
    l2.power_on();
    l2.start_carrier(CarrierConfig{RuId{1}});
  }
};

TEST(L2Process, SendsConfigAndStartOnCarrierStart) {
  L2Fixture f;
  f.sim.run_until(1_ms);
  EXPECT_EQ(f.capture.count(FapiMsgType::kConfigRequest), 1);
  EXPECT_EQ(f.capture.count(FapiMsgType::kStartRequest), 1);
}

TEST(L2Process, EmitsBothTtiRequestsEverySlot) {
  // The FAPI contract: UL_TTI and DL_TTI for every slot, even with no
  // UEs and no traffic (these are what null requests look like).
  L2Fixture f;
  f.sim.run_until(10'500_us);  // 20 full slots
  const int dl = f.capture.count(FapiMsgType::kDlTtiRequest);
  const int ul = f.capture.count(FapiMsgType::kUlTtiRequest);
  EXPECT_GE(dl, 19);
  EXPECT_EQ(dl, ul);
}

TEST(L2Process, RequestsTargetFutureSlots) {
  L2Fixture f;
  f.sim.run_until(5'000_us);
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kDlTtiRequest) {
      // Sent at slot b for slot b + advance.
      const auto sent_slot = msg.slot - f.config.fapi_advance_slots;
      EXPECT_GE(msg.slot, sent_slot);
    }
  }
}

TEST(L2Process, GrantsUplinkToKnownUes) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.sim.run_until(20_ms);
  bool found_grant = false;
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kUlTtiRequest) {
      const auto& req = std::get<UlTtiRequest>(msg.body);
      for (const auto& pdu : req.pdus) {
        EXPECT_EQ(pdu.ue, UeId{7});
        EXPECT_TRUE(f.config.slots.is_uplink(msg.slot));
        found_grant = true;
      }
    }
  }
  EXPECT_TRUE(found_grant);
}

TEST(L2Process, UlGrantDciRidesInEarlierDlTti) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.sim.run_until(20_ms);
  bool found_dci = false;
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kDlTtiRequest) {
      for (const auto& dci : std::get<DlTtiRequest>(msg.body).ul_dci) {
        EXPECT_GT(dci.target_slot, msg.slot);  // announced ahead of PUSCH
        found_dci = true;
      }
    }
  }
  EXPECT_TRUE(found_dci);
}

TEST(L2Process, SchedulesDownlinkDataWithPayload) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.l2.send_downlink(UeId{7}, std::vector<std::uint8_t>(500, 0xAB));
  f.sim.run_until(10_ms);
  const auto* tx = f.capture.last(FapiMsgType::kTxDataRequest);
  ASSERT_NE(tx, nullptr);
  const auto& payloads = std::get<TxDataRequest>(tx->body).payloads;
  ASSERT_EQ(payloads.size(), 1U);
  const auto sdus = rlc_unpack(payloads[0]);
  ASSERT_EQ(sdus.size(), 1U);
  EXPECT_EQ(sdus[0].bytes.size(), 500U);
  EXPECT_EQ(f.l2.dl_queue_bytes(UeId{7}), 0U);
}

TEST(L2Process, DownlinkToUnknownUeDropped) {
  L2Fixture f;
  f.l2.send_downlink(UeId{99}, {1, 2, 3});
  f.sim.run_until(10_ms);
  EXPECT_EQ(f.capture.count(FapiMsgType::kTxDataRequest), 0);
}

TEST(L2Process, CrcFailureSchedulesRetransmission) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.sim.run_until(20_ms);
  // Find the first real UL grant and nack it.
  const FapiMessage* grant_msg = nullptr;
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kUlTtiRequest &&
        !std::get<UlTtiRequest>(msg.body).pdus.empty()) {
      grant_msg = &msg;
      break;
    }
  }
  ASSERT_NE(grant_msg, nullptr);
  const auto pdu = std::get<UlTtiRequest>(grant_msg->body).pdus[0];
  f.l2.on_fapi(FapiMessage{
      RuId{1}, grant_msg->slot,
      CrcIndication{{CrcEntry{pdu.ue, pdu.harq, false, 15.0F}}}});
  const auto before = f.capture.messages.size();
  f.sim.run_until(f.sim.now() + 10_ms);
  bool found_retx = false;
  for (std::size_t i = before; i < f.capture.messages.size(); ++i) {
    const auto& msg = f.capture.messages[i];
    if (msg.type() == FapiMsgType::kUlTtiRequest) {
      for (const auto& p : std::get<UlTtiRequest>(msg.body).pdus) {
        if (p.harq == pdu.harq && !p.new_data) {
          found_retx = true;
        }
      }
    }
  }
  EXPECT_TRUE(found_retx);
  EXPECT_GE(f.l2.stats().ul_retx, 1);
}

TEST(L2Process, CrcSnrFeedsLinkAdaptation) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.sim.run_until(20_ms);
  EXPECT_NEAR(f.l2.reported_snr_db(UeId{7}), f.config.default_snr_db, 0.1);
  f.l2.on_fapi(FapiMessage{
      RuId{1}, 100,
      CrcIndication{{CrcEntry{UeId{7}, HarqId{0}, true, 22.5F}}}});
  EXPECT_NEAR(f.l2.reported_snr_db(UeId{7}), 22.5, 0.1);
}

TEST(L2Process, RxDataFlowsToUplinkSink) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  std::vector<std::vector<std::uint8_t>> received;
  f.l2.set_uplink_sink([&](UeId ue, std::vector<std::uint8_t> sdu) {
    EXPECT_EQ(ue, UeId{7});
    received.push_back(std::move(sdu));
  });
  // Build an RLC-framed payload as the UE would.
  RlcTx tx;
  std::deque<RlcSdu> queue;
  queue.push_back(RlcSdu{kRlcSnUnassigned, {0xDE, 0xAD}});
  auto payload = tx.pack(queue, 64);
  RxDataIndication ind;
  ind.pdus.push_back(RxPdu{UeId{7}, HarqId{0}, std::move(payload)});
  f.l2.on_fapi(FapiMessage{RuId{1}, 100, std::move(ind)});
  ASSERT_EQ(received.size(), 1U);
  EXPECT_EQ(received[0], (std::vector<std::uint8_t>{0xDE, 0xAD}));
}

TEST(L2Process, DlHarqExhaustionRequeuesSdus) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.l2.send_downlink(UeId{7}, std::vector<std::uint8_t>(100, 0x11));
  f.sim.run_until(10_ms);
  const auto* dl = f.capture.last(FapiMsgType::kDlTtiRequest);
  // Find the scheduled TB's HARQ id.
  const FapiMessage* scheduled = nullptr;
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kDlTtiRequest &&
        !std::get<DlTtiRequest>(msg.body).pdus.empty()) {
      scheduled = &msg;
      break;
    }
  }
  ASSERT_NE(scheduled, nullptr);
  (void)dl;
  const auto pdu = std::get<DlTtiRequest>(scheduled->body).pdus[0];
  // Copy before the loop: each run_until below appends to
  // f.capture.messages, invalidating `scheduled`.
  const auto scheduled_slot = scheduled->slot;
  // NACK it max_harq_retx + 1 times.
  for (int i = 0; i <= f.config.max_harq_retx; ++i) {
    f.l2.on_fapi(FapiMessage{
        RuId{1}, scheduled_slot + i,
        UciIndication{{UciEntry{pdu.ue, pdu.harq, false}}}});
    f.sim.run_until(f.sim.now() + 5_ms);
  }
  // RLC-AM requeued the SDUs rather than dropping them.
  EXPECT_GE(f.l2.stats().dl_rlc_requeues, 1);
  EXPECT_GE(f.l2.stats().dl_tbs_lost, 1);
}

TEST(L2Process, StaleUlHarqReapedAndLogged) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  // Grants are issued but no CRC indications ever arrive (dead PHY).
  f.sim.run_until(100_ms);
  EXPECT_GT(f.l2.stats().ul_tbs_lost, 0);
  bool found_undelivered = false;
  for (const auto& rec : f.l2.harq_log()) {
    if (!rec.delivered) {
      found_undelivered = true;
    }
  }
  EXPECT_TRUE(found_undelivered);
}

TEST(L2Process, RemoveUeStopsScheduling) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  f.sim.run_until(20_ms);
  f.l2.remove_ue(UeId{7});
  const auto before = f.l2.stats().ul_tbs_granted;
  f.sim.run_until(40_ms);
  EXPECT_EQ(f.l2.stats().ul_tbs_granted, before);
  EXPECT_FALSE(f.l2.has_ue(UeId{7}));
}

TEST(L2Process, DlQueueOverflowDropsSdus) {
  L2Fixture f;
  f.l2.add_ue(UeId{7}, RuId{1});
  for (int i = 0; i < 4000; ++i) {
    f.l2.send_downlink(UeId{7}, std::vector<std::uint8_t>(1400, 1));
  }
  EXPECT_GT(f.l2.stats().dl_sdus_dropped_overflow, 0);
}

}  // namespace
}  // namespace slingshot
