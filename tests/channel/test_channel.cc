#include "channel/channel.h"

#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/simulator.h"

namespace slingshot {
namespace {

RngStream make_rng(std::uint64_t idx = 0) {
  return RngRegistry{99}.stream("chan", idx);
}

TEST(UeChannel, SnrStaysNearMean) {
  FadingConfig cfg;
  cfg.mean_snr_db = 20.0;
  UeChannel chan{cfg, make_rng()};
  RunningStats snr;
  for (int i = 0; i < 5000; ++i) {
    chan.step_slot();
    snr.add(chan.snr_db());
  }
  EXPECT_NEAR(snr.mean(), 20.0, 1.0);
  // AR(1) stationary stddev = sigma / sqrt(1 - rho^2) ~= 3 dB.
  EXPECT_GT(snr.stddev(), 1.0);
  EXPECT_LT(snr.stddev(), 6.0);
}

TEST(UeChannel, SnrVariesOverTime) {
  UeChannel chan{{}, make_rng()};
  double min_snr = 1e9;
  double max_snr = -1e9;
  for (int i = 0; i < 2000; ++i) {
    chan.step_slot();
    min_snr = std::min(min_snr, chan.snr_db());
    max_snr = std::max(max_snr, chan.snr_db());
  }
  // Routine wireless variation (§4): several dB of swing.
  EXPECT_GT(max_snr - min_snr, 5.0);
}

TEST(UeChannel, NoiseVarianceMatchesSnr) {
  FadingConfig cfg;
  cfg.mean_snr_db = 10.0;
  cfg.ar1_sigma_db = 0.0;  // freeze the SNR
  UeChannel chan{cfg, make_rng()};
  EXPECT_NEAR(chan.noise_variance(), 0.1, 1e-9);
}

TEST(UeChannel, ApplyAddsCalibratedNoise) {
  FadingConfig cfg;
  cfg.mean_snr_db = 15.0;
  cfg.ar1_sigma_db = 0.0;
  cfg.amp_sigma_db = 0.0;
  cfg.phase_walk_rad = 0.0;
  UeChannel chan{cfg, make_rng(1)};
  // Unit-power input block.
  std::vector<Cf> x(20000, Cf{1.0F, 0.0F});
  const auto y = chan.apply(x);
  ASSERT_EQ(y.size(), x.size());
  const auto h = chan.tap();
  RunningStats noise_power;
  for (std::size_t i = 0; i < y.size(); ++i) {
    const auto n = y[i] - h * x[i];
    noise_power.add(std::norm(n));
  }
  EXPECT_NEAR(noise_power.mean(), chan.noise_variance(),
              chan.noise_variance() * 0.05);
}

TEST(UeChannel, ShockMovesSnr) {
  UeChannel chan{{}, make_rng(2)};
  const double before = chan.snr_db();
  chan.shock_snr_db(-10.0);
  EXPECT_NEAR(chan.snr_db(), before - 10.0, 1e-9);
}

TEST(UeChannel, TapMagnitudeNearUnity) {
  UeChannel chan{{}, make_rng(3)};
  RunningStats mags;
  for (int i = 0; i < 3000; ++i) {
    chan.step_slot();
    mags.add(std::abs(chan.tap()));
  }
  EXPECT_NEAR(mags.mean(), 1.0, 0.15);
}

TEST(UeChannel, DeterministicForSameStream) {
  UeChannel a{{}, make_rng(7)};
  UeChannel b{{}, make_rng(7)};
  for (int i = 0; i < 100; ++i) {
    a.step_slot();
    b.step_slot();
    EXPECT_DOUBLE_EQ(a.snr_db(), b.snr_db());
  }
}

}  // namespace
}  // namespace slingshot
