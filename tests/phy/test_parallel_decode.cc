// Determinism of the parallel PHY decode path (ISSUE 4 tentpole).
//
// Two layers of evidence that attaching a fork-join pool changes
// nothing but wall-clock:
//  * decode a captured batch of noisy transport blocks through
//    Simulator::run_parallel with 1, 2 and 8 workers and assert every
//    result — hard decisions, combined LLRs, CRC verdicts, iteration
//    counts, SNR estimates — is bit-identical to the serial run;
//  * run the full golden-trace testbed scenario (seed 42, failover at
//    250 ms) with pools of each width attached and assert the pinned
//    executed-event count, (time, seq) trace hash, decode counters and
//    tracer span/stamp counts are EXACTLY the serial constants from
//    test_golden_trace.cc.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <vector>

#include "common/log.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "obs/obs.h"
#include "phy/tb_codec.h"
#include "sim/simulator.h"
#include "testbed/testbed.h"
#include "transport/apps.h"

namespace slingshot {
namespace {

struct CapturedTb {
  std::vector<std::complex<float>> iq;
  std::vector<std::uint8_t> payload;
  Modulation mod = Modulation::kQam16;
};

// A "captured slot": a batch of noisy TBs at SNRs straddling the
// decoding threshold, so the batch mixes CRC passes, failures, and
// varying iteration counts.
std::vector<CapturedTb> capture_slot(int num_tbs) {
  auto rng = RngRegistry{77}.stream("capture");
  std::vector<CapturedTb> tbs;
  const Modulation mods[] = {Modulation::kQpsk, Modulation::kQam16,
                             Modulation::kQam64};
  for (int t = 0; t < num_tbs; ++t) {
    CapturedTb tb;
    tb.mod = mods[t % 3];
    tb.payload.resize(40 + std::size_t(t) * 7);
    for (auto& b : tb.payload) {
      b = std::uint8_t(rng.next_u64());
    }
    auto enc = encode_tb(tb.payload, tb.mod);
    const double snr_db = 4.0 + double(t % 6) * 2.5;
    const double sigma = std::sqrt(std::pow(10.0, -snr_db / 10.0) / 2.0);
    for (auto& s : enc.iq) {
      s += std::complex<float>(float(rng.gaussian(0.0, sigma)),
                               float(rng.gaussian(0.0, sigma)));
    }
    tb.iq = std::move(enc.iq);
    tbs.push_back(std::move(tb));
  }
  return tbs;
}

std::vector<TbDecodeResult> decode_batch(const std::vector<CapturedTb>& tbs,
                                         int threads) {
  Simulator sim;
  ThreadPool pool{threads};
  if (threads > 1) {
    sim.set_thread_pool(&pool);
  }
  EXPECT_EQ(sim.parallel_workers(), threads > 1 ? threads : 1);
  // One workspace per worker, results in pre-sized disjoint slots —
  // the same structure PhyProcess::decode_uplink uses.
  std::vector<TbDecodeWorkspace> ws(std::size_t(sim.parallel_workers()));
  std::vector<TbDecodeResult> results(tbs.size());
  sim.run_parallel(tbs.size(), [&](std::size_t i, int worker) {
    const auto& tb = tbs[i];
    results[i] = decode_tb(tb.iq, tb.mod, tb.payload, 8, nullptr,
                           LdpcCode::standard(), &ws[std::size_t(worker)]);
  });
  return results;
}

void expect_identical(const std::vector<TbDecodeResult>& a,
                      const std::vector<TbDecodeResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].crc_ok, b[i].crc_ok) << "tb " << i;
    EXPECT_EQ(a[i].parity_ok, b[i].parity_ok) << "tb " << i;
    EXPECT_EQ(a[i].iterations_used, b[i].iterations_used) << "tb " << i;
    // Bit-exact, not approximately equal.
    EXPECT_EQ(std::memcmp(&a[i].est_snr_db, &b[i].est_snr_db,
                          sizeof(double)),
              0)
        << "tb " << i;
    ASSERT_EQ(a[i].combined_llrs.size(), b[i].combined_llrs.size());
    EXPECT_EQ(std::memcmp(a[i].combined_llrs.data(),
                          b[i].combined_llrs.data(),
                          a[i].combined_llrs.size() * sizeof(float)),
              0)
        << "tb " << i;
  }
}

TEST(ParallelDecode, BatchBitIdenticalAcrossThreadCounts) {
  const auto slot = capture_slot(24);
  const auto serial = decode_batch(slot, 1);
  // The batch must exercise both outcomes to be meaningful.
  int ok = 0;
  int fail = 0;
  for (const auto& r : serial) {
    (r.crc_ok ? ok : fail)++;
  }
  EXPECT_GT(ok, 0);
  EXPECT_GT(fail, 0);
  expect_identical(serial, decode_batch(slot, 2));
  expect_identical(serial, decode_batch(slot, 8));
}

// ---------------------------------------------------------------------
// Full-testbed golden pins, per thread count. Constants are the serial
// ones from test_golden_trace.cc — a pool must not move any of them.
// ---------------------------------------------------------------------

struct GoldenRun {
  std::uint64_t executed;
  std::uint64_t trace_hash;
  std::int64_t a_ul_crc_ok;
  std::int64_t a_iters;
  std::int64_t b_ul_crc_ok;
  std::int64_t b_iters;
};

GoldenRun run_failover_scenario(ThreadPool* pool,
                                obs::Observability* o = nullptr) {
  Logger::instance().set_level(LogLevel::kError);
  TestbedConfig cfg;
  cfg.seed = 42;
  cfg.num_ues = 2;
  cfg.ue_mean_snr_db = {18.0, 7.0};
  Testbed tb{cfg};
  tb.sim().set_thread_pool(pool);
  if (o != nullptr) {
    tb.attach_observability(*o);
  }

  UdpFlowConfig flow_cfg;
  flow_cfg.rate_bps = 4e6;
  UdpFlow flow{tb.sim(), tb.ue_pipe(0), tb.server_pipe(0), flow_cfg};

  tb.start();
  tb.run_until(100_ms);
  flow.start();
  tb.sim().at(250_ms, [&tb] { tb.kill_primary_phy(); });
  tb.run_until(500_ms);
  if (o != nullptr) {
    o->finalize();
  }
  const auto& a = tb.phy_a().stats();
  const auto& b = tb.phy_b().stats();
  return GoldenRun{tb.sim().executed_events(), tb.sim().trace_hash(),
                   a.ul_crc_ok, a.decode_iterations, b.ul_crc_ok,
                   b.decode_iterations};
}

void expect_failover_pins(const GoldenRun& r) {
  EXPECT_EQ(r.executed, 105137ULL);
  EXPECT_EQ(r.trace_hash, 0xa72f2ee07b06d292ULL);
  EXPECT_EQ(r.a_ul_crc_ok, 188);
  EXPECT_EQ(r.a_iters, 352);
  EXPECT_EQ(r.b_ul_crc_ok, 195);
  EXPECT_EQ(r.b_iters, 325);
}

TEST(ParallelDecode, GoldenTracePinnedWithOneWorkerPool) {
  ThreadPool pool{1};
  expect_failover_pins(run_failover_scenario(&pool));
}

TEST(ParallelDecode, GoldenTracePinnedWithTwoWorkerPool) {
  ThreadPool pool{2};
  expect_failover_pins(run_failover_scenario(&pool));
}

TEST(ParallelDecode, GoldenTracePinnedWithEightWorkerPool) {
  ThreadPool pool{8};
  expect_failover_pins(run_failover_scenario(&pool));
}

// Tracer counts (spans opened/closed, per-stage stamps) are golden too:
// observability hooks only run on the event-loop thread, so a pool must
// not move a single stamp.
TEST(ParallelDecode, TracerCountsPinnedWithEightWorkerPool) {
  obs::ObservabilityConfig obs_cfg;
  {
    TestbedConfig cfg;
    cfg.seed = 42;
    cfg.num_ues = 2;
    cfg.ue_mean_snr_db = {18.0, 7.0};
    Testbed tb{cfg};
    obs_cfg = tb.obs_config();
  }
  obs::Observability o{obs_cfg};
  ThreadPool pool{8};
  expect_failover_pins(run_failover_scenario(&pool, &o));
  const auto& t = o.tracer();
  EXPECT_EQ(t.spans_opened(), t.spans_closed());
  EXPECT_EQ(t.spans_opened(), 1002ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kL2Request), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kPhySlot), 1000ULL);
  EXPECT_EQ(t.stamps_recorded(obs::SlotStage::kResponse), 197ULL);
  EXPECT_EQ(t.deadline_misses(), 0ULL);
  EXPECT_EQ(t.late_stamps_dropped(), 0ULL);
  EXPECT_EQ(t.events_dropped(), 0ULL);
}

}  // namespace
}  // namespace slingshot
