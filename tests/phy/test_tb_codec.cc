#include "phy/tb_codec.h"

#include <gtest/gtest.h>

#include "channel/channel.h"
#include "common/rng.h"
#include "common/stats.h"
#include "phy/mcs.h"

namespace slingshot {
namespace {

std::vector<std::uint8_t> random_payload(std::size_t n, RngStream& rng) {
  std::vector<std::uint8_t> payload(n);
  for (auto& b : payload) {
    b = std::uint8_t(rng.next_u64());
  }
  return payload;
}

UeChannel fixed_snr_channel(double snr_db, std::uint64_t idx = 0) {
  FadingConfig cfg;
  cfg.mean_snr_db = snr_db;
  cfg.ar1_sigma_db = 0.0;
  cfg.amp_sigma_db = 0.0;
  return UeChannel{cfg, RngRegistry{11}.stream("tbchan", idx)};
}

TEST(TbCodec, EncodeProducesPilotsPlusData) {
  auto rng = RngRegistry{1}.stream("tb");
  const auto payload = random_payload(500, rng);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  EXPECT_EQ(enc.codeword_bits, 648U);
  EXPECT_EQ(enc.iq.size(), std::size_t(kNumPilotSymbols) + 648 / 2);
}

TEST(TbCodec, CleanChannelDecodes) {
  auto rng = RngRegistry{2}.stream("tb");
  const auto payload = random_payload(1000, rng);
  const auto enc = encode_tb(payload, Modulation::kQam16);
  const auto dec = decode_tb(enc.iq, Modulation::kQam16, payload, 8);
  EXPECT_TRUE(dec.parity_ok);
  EXPECT_TRUE(dec.crc_ok);
  EXPECT_GT(dec.est_snr_db, 30.0);  // essentially noiseless
}

TEST(TbCodec, WrongShadowPayloadFailsCrc) {
  auto rng = RngRegistry{3}.stream("tb");
  const auto payload = random_payload(100, rng);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  auto tampered = payload;
  tampered[0] ^= 1U;
  const auto dec = decode_tb(enc.iq, Modulation::kQpsk, tampered, 8);
  EXPECT_TRUE(dec.parity_ok);   // the codeword itself is clean
  EXPECT_FALSE(dec.crc_ok);     // but it does not match the payload
}

struct SnrCase {
  Modulation mod;
  double good_snr_db;
  double bad_snr_db;
};

class TbCodecSnr : public ::testing::TestWithParam<SnrCase> {};

TEST_P(TbCodecSnr, DecodesAboveThresholdFailsFarBelow) {
  const auto param = GetParam();
  auto rng = RngRegistry{4}.stream("tb", std::uint64_t(param.mod));
  int good_ok = 0;
  int bad_ok = 0;
  const int trials = 12;
  auto good_chan = fixed_snr_channel(param.good_snr_db, 1);
  auto bad_chan = fixed_snr_channel(param.bad_snr_db, 2);
  for (int t = 0; t < trials; ++t) {
    const auto payload = random_payload(600, rng);
    const auto enc = encode_tb(payload, param.mod);
    good_chan.step_slot();
    bad_chan.step_slot();
    const auto rx_good = good_chan.apply(enc.iq);
    const auto rx_bad = bad_chan.apply(enc.iq);
    good_ok += decode_tb(rx_good, param.mod, payload, 10).crc_ok ? 1 : 0;
    bad_ok += decode_tb(rx_bad, param.mod, payload, 10).crc_ok ? 1 : 0;
  }
  EXPECT_GE(good_ok, trials - 1) << modulation_name(param.mod);
  EXPECT_LE(bad_ok, 1) << modulation_name(param.mod);
}

INSTANTIATE_TEST_SUITE_P(
    Thresholds, TbCodecSnr,
    ::testing::Values(SnrCase{Modulation::kQpsk, 6.0, -6.0},
                      SnrCase{Modulation::kQam16, 13.0, 1.0},
                      SnrCase{Modulation::kQam64, 19.0, 7.0},
                      SnrCase{Modulation::kQam256, 26.0, 12.0}),
    [](const auto& info) { return modulation_name(info.param.mod); });

TEST(TbCodec, SnrEstimateTracksTrueSnr) {
  auto rng = RngRegistry{5}.stream("tb");
  for (const double snr : {5.0, 15.0, 25.0}) {
    auto chan = fixed_snr_channel(snr, std::uint64_t(snr));
    RunningStats est;
    for (int t = 0; t < 20; ++t) {
      const auto payload = random_payload(200, rng);
      const auto enc = encode_tb(payload, Modulation::kQpsk);
      chan.step_slot();
      const auto rx = chan.apply(enc.iq);
      est.add(decode_tb(rx, Modulation::kQpsk, payload, 4).est_snr_db);
    }
    EXPECT_NEAR(est.mean(), snr, 2.5) << "true SNR " << snr;
  }
}

TEST(TbCodec, ChannelPhaseRotationIsEqualizedAway) {
  auto rng = RngRegistry{6}.stream("tb");
  const auto payload = random_payload(300, rng);
  const auto enc = encode_tb(payload, Modulation::kQam16);
  // Strong static rotation + mild noise.
  std::vector<Cf> rx;
  const Cf h{0.6F, 0.8F};  // |h| = 1, 53 degrees
  auto noise_rng = RngRegistry{7}.stream("noise");
  for (const auto& s : enc.iq) {
    rx.push_back(h * s + Cf{float(noise_rng.gaussian(0, 0.02)),
                            float(noise_rng.gaussian(0, 0.02))});
  }
  const auto dec = decode_tb(rx, Modulation::kQam16, payload, 8);
  EXPECT_TRUE(dec.crc_ok);
}

TEST(TbCodec, HarqChaseCombiningRescuesFailedDecode) {
  // Two transmissions, each individually at an SNR where decoding
  // fails; combined LLRs succeed. The soft state Slingshot discards.
  auto rng = RngRegistry{8}.stream("tb");
  int solo_ok = 0;
  int combined_ok = 0;
  const int trials = 12;
  for (int t = 0; t < trials; ++t) {
    const auto payload = random_payload(400, rng);
    const auto enc = encode_tb(payload, Modulation::kQpsk);
    auto chan = fixed_snr_channel(0.0, 100 + std::uint64_t(t));
    chan.step_slot();
    const auto rx1 = chan.apply(enc.iq);
    chan.step_slot();
    const auto rx2 = chan.apply(enc.iq);
    const auto dec1 = decode_tb(rx1, Modulation::kQpsk, payload, 8);
    solo_ok += dec1.crc_ok ? 1 : 0;
    const auto dec2 = decode_tb(rx2, Modulation::kQpsk, payload, 8,
                                &dec1.combined_llrs);
    combined_ok += dec2.crc_ok ? 1 : 0;
  }
  EXPECT_GT(combined_ok, solo_ok);
}

TEST(TbCodec, GarbageInputFailsGracefully) {
  // Missing fronthaul packets make the PHY process garbage IQ (§4) —
  // indistinguishable from a noisy channel, and caught by CRC.
  const std::vector<Cf> garbage(std::size_t(kNumPilotSymbols) + 324,
                                Cf{0.01F, -0.02F});
  const std::vector<std::uint8_t> payload{1, 2, 3};
  const auto dec = decode_tb(garbage, Modulation::kQpsk, payload, 8);
  EXPECT_FALSE(dec.crc_ok);
}

TEST(TbCodec, TruncatedIqFails) {
  const std::vector<Cf> tiny(3, Cf{1.0F, 0.0F});
  const auto dec = decode_tb(tiny, Modulation::kQpsk, {}, 8);
  EXPECT_FALSE(dec.crc_ok);
  EXPECT_FALSE(dec.parity_ok);
}

TEST(Mcs, TableMonotonicInEfficiency) {
  for (int m = 1; m < kNumMcs; ++m) {
    EXPECT_GT(mcs_entry(std::uint8_t(m)).spectral_efficiency(),
              mcs_entry(std::uint8_t(m - 1)).spectral_efficiency());
    EXPECT_GT(mcs_entry(std::uint8_t(m)).snr_threshold_db,
              mcs_entry(std::uint8_t(m - 1)).snr_threshold_db);
  }
}

TEST(Mcs, SelectionRespectsThresholds) {
  EXPECT_EQ(select_mcs(0.0), 0);
  EXPECT_EQ(select_mcs(12.0), 1);
  EXPECT_EQ(select_mcs(18.5), 2);
  EXPECT_EQ(select_mcs(30.0), 3);
}

TEST(Mcs, TbSizeScalesWithMcsAndPrbs) {
  EXPECT_GT(tb_size_bytes(3, 100), tb_size_bytes(0, 100));
  EXPECT_GT(tb_size_bytes(1, 200), tb_size_bytes(1, 100));
  EXPECT_GE(tb_size_bytes(0, 1), 1U);
  // Full-carrier 256QAM TB ~ 21 kB (≈340 Mbps at 3/5 DL duty): sanity.
  const auto full = tb_size_bytes(3, 273);
  EXPECT_GT(full, 15'000U);
  EXPECT_LT(full, 30'000U);
}

}  // namespace
}  // namespace slingshot
