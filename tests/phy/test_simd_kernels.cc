// Bit-exactness of the runtime-dispatched SIMD kernels (phy/simd.h).
//
// The golden-trace tests pin LDPC iteration counts and CRC verdicts, so
// the vector kernels must match the scalar reference to the last bit —
// not "close", identical. These tests memcmp the outputs of every
// compiled-in dispatch level against scalar on randomized inputs salted
// with the adversarial cases (ties in magnitude, signed zeros, degrees
// that land on every vector-width tail).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstring>
#include <string>
#include <vector>

#include "common/rng.h"
#include "phy/modulation.h"
#include "phy/simd.h"

namespace slingshot {
namespace {

std::vector<simd::Level> supported_vector_levels() {
  std::vector<simd::Level> levels;
  for (const auto level : {simd::Level::kSse2, simd::Level::kAvx2}) {
    if (simd::level_supported(level)) {
      levels.push_back(level);
    }
  }
  return levels;
}

void expect_cn_minsum_parity(const std::vector<float>& q, float scale) {
  const int deg = int(q.size());
  std::vector<float> want(q.size());
  simd::kernels_for(simd::Level::kScalar)
      .cn_minsum(q.data(), want.data(), deg, scale);
  for (const auto level : supported_vector_levels()) {
    std::vector<float> got(q.size(), -999.0F);
    simd::kernels_for(level).cn_minsum(q.data(), got.data(), deg, scale);
    EXPECT_EQ(
        std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "level " << simd::level_name(level) << " deg " << deg;
  }
}

TEST(SimdKernels, CnMinsumMatchesScalarOnRandomInputs) {
  auto rng = RngRegistry{2024}.stream("cn-parity");
  for (int trial = 0; trial < 3000; ++trial) {
    const int deg = 1 + int(rng.next_u64() % 24);
    std::vector<float> q(static_cast<std::size_t>(deg));
    for (auto& v : q) {
      switch (rng.next_u64() % 8) {
        case 0: v = 0.0F; break;
        case 1: v = -0.0F; break;
        case 2:  // repeated magnitude: exercises the tie-selection proof
          v = (rng.next_u64() & 1U) ? 1.25F : -1.25F;
          break;
        case 3: v = float(rng.gaussian(0.0, 1e-4)); break;   // tiny
        case 4: v = float(rng.gaussian(0.0, 1e6)); break;    // huge
        default: v = float(rng.gaussian(0.0, 5.0)); break;
      }
    }
    expect_cn_minsum_parity(q, 0.8F);
  }
}

// Every degree from 1 to 33 hits each SSE2 (4-lane) and AVX2 (8-lane)
// tail length, including deg < width where the whole check is a tail.
TEST(SimdKernels, CnMinsumMatchesScalarAtEveryTailLength) {
  auto rng = RngRegistry{7}.stream("cn-tails");
  for (int deg = 1; deg <= 33; ++deg) {
    for (int rep = 0; rep < 40; ++rep) {
      std::vector<float> q(static_cast<std::size_t>(deg));
      for (auto& v : q) {
        v = float(rng.gaussian(0.0, 3.0));
      }
      expect_cn_minsum_parity(q, 0.8F);
    }
  }
}

TEST(SimdKernels, CnMinsumMatchesScalarWhenAllMagnitudesTie) {
  // Degenerate slab: every |q| equal, signs mixed. min1 == min2 at
  // every position; any selection-rule discrepancy shows here.
  for (const int deg : {1, 3, 4, 5, 8, 9, 16, 17}) {
    std::vector<float> q(static_cast<std::size_t>(deg));
    for (int i = 0; i < deg; ++i) {
      q[std::size_t(i)] = (i % 2 != 0) ? -2.5F : 2.5F;
    }
    expect_cn_minsum_parity(q, 0.8F);
  }
}

// Recover the Modulator's PAM level table by modulating each bit
// pattern (duplicated into both dimensions) and reading the I value —
// the kernels then run against the exact production tables.
std::vector<float> recover_levels(const Modulator& modulator, Modulation mod) {
  const int bits_per_dim = bits_per_symbol(mod) / 2;
  std::vector<float> levels(std::size_t(1) << bits_per_dim);
  std::vector<std::uint8_t> pat_bits(std::size_t(bits_per_symbol(mod)));
  for (std::size_t pattern = 0; pattern < levels.size(); ++pattern) {
    for (int b = 0; b < bits_per_dim; ++b) {
      pat_bits[std::size_t(b)] =
          std::uint8_t((pattern >> (bits_per_dim - 1 - b)) & 1U);
      pat_bits[std::size_t(bits_per_dim + b)] = pat_bits[std::size_t(b)];
    }
    levels[pattern] = modulator.modulate(pat_bits)[0].real();
  }
  return levels;
}

TEST(SimdKernels, DemapSoftMatchesScalarAcrossModulationsAndCounts) {
  auto rng = RngRegistry{99}.stream("demap-parity");
  for (const auto mod : {Modulation::kQpsk, Modulation::kQam16,
                         Modulation::kQam64, Modulation::kQam256}) {
    const Modulator& modulator = modulator_for(mod);
    const auto levels = recover_levels(modulator, mod);
    const int bits_per_dim = bits_per_symbol(mod) / 2;
    // Counts 1..17 cover every 4- and 8-symbol remainder.
    for (std::size_t count = 1; count <= 17; ++count) {
      std::vector<std::complex<float>> syms(count);
      for (auto& s : syms) {
        s = {float(rng.gaussian(0.0, 1.2)), float(rng.gaussian(0.0, 1.2))};
      }
      const double sigma2 = 0.003 + double(rng.next_u64() % 64) / 100.0;
      const std::size_t n_llrs = count * std::size_t(bits_per_symbol(mod));
      std::vector<float> want(n_llrs, -999.0F);
      simd::kernels_for(simd::Level::kScalar)
          .demap_soft(syms.data(), count, levels.data(), bits_per_dim, sigma2,
                      want.data());
      for (const auto level : supported_vector_levels()) {
        std::vector<float> got(n_llrs, -999.0F);
        simd::kernels_for(level).demap_soft(syms.data(), count, levels.data(),
                                            bits_per_dim, sigma2, got.data());
        EXPECT_EQ(std::memcmp(want.data(), got.data(),
                              n_llrs * sizeof(float)),
                  0)
            << "level " << simd::level_name(level) << " mod "
            << modulation_name(mod) << " count " << count;
      }
    }
  }
}

// demap_into is the production entry point; whatever level is active,
// its output must equal the forced-scalar kernel fed the same tables
// and the same per-dimension variance clamp.
TEST(SimdKernels, DemapIntoMatchesForcedScalarKernel) {
  auto rng = RngRegistry{123}.stream("demap-into");
  for (const auto mod : {Modulation::kQpsk, Modulation::kQam64}) {
    const Modulator& modulator = modulator_for(mod);
    const auto levels = recover_levels(modulator, mod);
    const int bits_per_dim = bits_per_symbol(mod) / 2;
    std::vector<std::complex<float>> syms(37);
    for (auto& s : syms) {
      s = {float(rng.gaussian(0.0, 1.0)), float(rng.gaussian(0.0, 1.0))};
    }
    const double noise_var = 0.08;
    std::vector<float> got;
    modulator.demap_into(syms, noise_var, got);
    std::vector<float> want(got.size(), -999.0F);
    simd::kernels_for(simd::Level::kScalar)
        .demap_soft(syms.data(), syms.size(), levels.data(), bits_per_dim,
                    std::max(noise_var / 2.0, 1e-9), want.data());
    EXPECT_EQ(
        std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << modulation_name(mod);
  }
}

// ---- deadline_scan: the massive-UE batch's RLF/reattach sweep ----

void expect_deadline_scan_parity(const std::vector<std::int64_t>& deadlines,
                                 std::int64_t now) {
  std::vector<std::uint32_t> want(deadlines.size() + 1, 0xFFFFFFFFU);
  const std::size_t want_n =
      simd::kernels_for(simd::Level::kScalar)
          .deadline_scan(deadlines.data(), deadlines.size(), now, want.data());
  for (const auto level : supported_vector_levels()) {
    std::vector<std::uint32_t> got(deadlines.size() + 1, 0xFFFFFFFFU);
    const std::size_t got_n = simd::kernels_for(level).deadline_scan(
        deadlines.data(), deadlines.size(), now, got.data());
    ASSERT_EQ(want_n, got_n)
        << "level " << simd::level_name(level) << " n " << deadlines.size();
    EXPECT_EQ(std::memcmp(want.data(), got.data(),
                          want_n * sizeof(std::uint32_t)),
              0)
        << "level " << simd::level_name(level) << " n " << deadlines.size();
  }
}

TEST(SimdKernels, DeadlineScanSemanticsOnScalar) {
  // Negative lanes are unarmed; hits are expired lanes in ascending
  // index order.
  const std::vector<std::int64_t> deadlines = {5, -1, 0, 100, 7, -42, 6};
  std::vector<std::uint32_t> hits(deadlines.size(), 0);
  const std::size_t n = simd::kernels_for(simd::Level::kScalar)
                            .deadline_scan(deadlines.data(), deadlines.size(),
                                           /*now=*/6, hits.data());
  ASSERT_EQ(n, 3U);
  EXPECT_EQ(hits[0], 0U);  // 5 <= 6
  EXPECT_EQ(hits[1], 2U);  // 0 <= 6
  EXPECT_EQ(hits[2], 6U);  // 6 <= 6 (boundary inclusive)
}

TEST(SimdKernels, DeadlineScanMatchesScalarOnRandomInputs) {
  auto rng = RngRegistry{31}.stream("deadline-parity");
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 1 + rng.next_u64() % 40;
    std::vector<std::int64_t> deadlines(n);
    for (auto& d : deadlines) {
      switch (rng.next_u64() % 5) {
        case 0: d = -1; break;                               // unarmed
        case 1: d = std::int64_t(rng.next_u64() % 8); break;  // near now
        case 2: d = INT64_MAX; break;
        case 3: d = INT64_MIN; break;  // negative: must NOT hit
        default: d = std::int64_t(rng.next_u64() % 1000); break;
      }
    }
    expect_deadline_scan_parity(deadlines, std::int64_t(rng.next_u64() % 16));
  }
}

TEST(SimdKernels, DeadlineScanMatchesScalarAtEveryTailLength) {
  auto rng = RngRegistry{32}.stream("deadline-tails");
  for (std::size_t n = 1; n <= 33; ++n) {
    for (int rep = 0; rep < 20; ++rep) {
      std::vector<std::int64_t> deadlines(n);
      for (auto& d : deadlines) {
        d = std::int64_t(rng.next_u64() % 20) - 4;  // mix of negatives
      }
      expect_deadline_scan_parity(deadlines, 8);
    }
  }
}

// ---- ar1_update: the batch's fused fading / credit-accrual kernel ----

void expect_ar1_parity(const std::vector<float>& x0, float mean, float rho,
                       const std::vector<float>& innov) {
  std::vector<float> want = x0;
  simd::kernels_for(simd::Level::kScalar)
      .ar1_update(want.data(), want.size(), mean, rho, innov.data());
  for (const auto level : supported_vector_levels()) {
    std::vector<float> got = x0;
    simd::kernels_for(level).ar1_update(got.data(), got.size(), mean, rho,
                                        innov.data());
    EXPECT_EQ(
        std::memcmp(want.data(), got.data(), want.size() * sizeof(float)), 0)
        << "level " << simd::level_name(level) << " n " << x0.size();
  }
}

TEST(SimdKernels, Ar1UpdateSemanticsOnScalar) {
  // x = mean + rho*(x - mean) + innov, in exactly that operation order.
  std::vector<float> x = {10.0F, -3.5F, 0.0F};
  const std::vector<float> innov = {0.25F, -1.0F, 0.5F};
  simd::kernels_for(simd::Level::kScalar)
      .ar1_update(x.data(), x.size(), 20.0F, 0.5F, innov.data());
  EXPECT_EQ(x[0], 20.0F + 0.5F * (10.0F - 20.0F) + 0.25F);
  EXPECT_EQ(x[1], 20.0F + 0.5F * (-3.5F - 20.0F) + -1.0F);
  EXPECT_EQ(x[2], 20.0F + 0.5F * (0.0F - 20.0F) + 0.5F);
}

TEST(SimdKernels, Ar1UpdateWithUnitRhoZeroMeanIsCreditAccrual) {
  // The batch reuses the kernel as `credits += rate` — must be exact.
  std::vector<float> credits = {0.0F, 1.5F, 1024.0F, 0.1F};
  const std::vector<float> rate = {3.0F, 0.76F, 0.0F, 0.1F};
  simd::kernels_for(simd::Level::kScalar)
      .ar1_update(credits.data(), credits.size(), 0.0F, 1.0F, rate.data());
  EXPECT_EQ(credits[0], 3.0F);
  EXPECT_EQ(credits[1], 1.5F + 0.76F);
  EXPECT_EQ(credits[2], 1024.0F);
  EXPECT_EQ(credits[3], 0.1F + 0.1F);
}

TEST(SimdKernels, Ar1UpdateMatchesScalarOnRandomInputs) {
  auto rng = RngRegistry{33}.stream("ar1-parity");
  for (int trial = 0; trial < 2000; ++trial) {
    const std::size_t n = 1 + rng.next_u64() % 40;
    std::vector<float> x(n);
    std::vector<float> innov(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = float(rng.gaussian(20.0, 15.0));
      innov[i] = float(rng.gaussian(0.0, 1.5));
    }
    const float mean = float(rng.gaussian(10.0, 10.0));
    const float rho = float(rng.uniform(0.0, 1.0));
    expect_ar1_parity(x, mean, rho, innov);
  }
}

TEST(SimdKernels, Ar1UpdateMatchesScalarAtEveryTailLength) {
  auto rng = RngRegistry{34}.stream("ar1-tails");
  for (std::size_t n = 1; n <= 33; ++n) {
    std::vector<float> x(n);
    std::vector<float> innov(n);
    for (std::size_t i = 0; i < n; ++i) {
      x[i] = float(rng.gaussian(0.0, 25.0));
      innov[i] = float(rng.gaussian(0.0, 0.6));
    }
    expect_ar1_parity(x, 20.0F, 0.98F, innov);
  }
}

TEST(SimdKernels, ScalarLevelIsAlwaysSupported) {
  EXPECT_TRUE(simd::level_supported(simd::Level::kScalar));
  EXPECT_STREQ(simd::level_name(simd::Level::kScalar), "scalar");
  EXPECT_STREQ(simd::level_name(simd::Level::kSse2), "sse2");
  EXPECT_STREQ(simd::level_name(simd::Level::kAvx2), "avx2");
}

TEST(SimdKernels, ActiveLevelIsSupportedAndStable) {
  const auto level = simd::active_level();
  EXPECT_TRUE(simd::level_supported(level));
  // Dispatch is decided once; repeated calls must agree.
  EXPECT_EQ(simd::active_level(), level);
  EXPECT_EQ(&simd::kernels(), &simd::kernels_for(level));
}

TEST(SimdKernels, UnsupportedLevelFallsBackToScalar) {
  for (const auto level : {simd::Level::kSse2, simd::Level::kAvx2}) {
    if (!simd::level_supported(level)) {
      EXPECT_EQ(&simd::kernels_for(level),
                &simd::kernels_for(simd::Level::kScalar))
          << simd::level_name(level);
    }
  }
}

}  // namespace
}  // namespace slingshot
