#include "phy/phy.h"

#include <gtest/gtest.h>

#include "net/nic.h"
#include "phy/tb_codec.h"

namespace slingshot {
namespace {

struct IndicationCapture final : FapiSink {
  std::vector<FapiMessage> messages;
  std::vector<Nanos> times;
  Simulator* sim = nullptr;
  void on_fapi(FapiMessage&& msg) override {
    messages.push_back(std::move(msg));
    times.push_back(sim->now());
  }
  [[nodiscard]] int count(FapiMsgType type) const {
    int n = 0;
    for (const auto& m : messages) {
      n += m.type() == type ? 1 : 0;
    }
    return n;
  }
};

struct PhyFixture {
  Simulator sim;
  Link link{sim, LinkConfig{}, sim.rng().stream("loss")};
  Nic nic{sim, MacAddr{0xB1}};
  PhyConfig config;
  std::unique_ptr<PhyProcess> phy;
  ShmFapiPipe out{sim};
  IndicationCapture capture;
  // Frames the PHY emitted onto its fronthaul link.
  std::vector<Packet> fronthaul_tx;
  struct TxSink final : FrameSink {
    PhyFixture* owner;
    void handle_frame(Packet&& p) override {
      owner->fronthaul_tx.push_back(std::move(p));
    }
  } tx_sink;

  PhyFixture() {
    nic.attach(link);
    tx_sink.owner = this;
    link.attach_b(&tx_sink);
    phy = std::make_unique<PhyProcess>(sim, "phy-test", config, nic);
    phy->add_ru_binding(RuId{1}, MacAddr{0xA1});
    capture.sim = &sim;
    out.connect(&capture);
    phy->connect_fapi_out(&out);
    phy->power_on();
  }

  void configure_and_start() {
    phy->on_fapi(FapiMessage{RuId{1}, 0,
                             ConfigRequest{CarrierConfig{RuId{1}}}});
    phy->on_fapi(FapiMessage{RuId{1}, 0, StartRequest{RuId{1}}});
  }

  // Keep the PHY fed with null FAPI for `n_slots` starting at `first`.
  void feed_null(std::int64_t first, int n_slots) {
    for (int i = 0; i < n_slots; ++i) {
      phy->on_fapi(make_null_dl_tti(RuId{1}, first + i));
      phy->on_fapi(make_null_ul_tti(RuId{1}, first + i));
    }
  }
};

TEST(PhyProcess, ConfigProducesResponse) {
  PhyFixture f;
  f.configure_and_start();
  f.sim.run_until(1_ms);
  EXPECT_EQ(f.capture.count(FapiMsgType::kConfigResponse), 1);
}

TEST(PhyProcess, EmitsHeartbeatPacketsEverySlot) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  f.sim.run_until(10'000_us);  // 20 slots
  // >= 2 DL control packets per slot (scheduling + mid-slot sync).
  int dl_control = 0;
  for (const auto& frame : f.fronthaul_tx) {
    const auto header = peek_fronthaul_header(frame.payload);
    ASSERT_TRUE(header.has_value());
    if (header->direction == FhDirection::kDownlink &&
        header->plane == FhPlane::kControl) {
      ++dl_control;
    }
  }
  EXPECT_GE(dl_control, 2 * 18);
}

TEST(PhyProcess, CrashesWhenFapiStarved) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 10);  // slots 1..10 covered, then nothing
  f.sim.run_until(20'000_us);
  EXPECT_FALSE(f.phy->alive());
  EXPECT_GE(f.phy->stats().fapi_starved_slots,
            f.config.crash_after_missing_slots);
}

TEST(PhyProcess, NullFapiKeepsItAliveForever) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 400);
  f.sim.run_until(200'000_us);  // 400 slots
  EXPECT_TRUE(f.phy->alive());
  EXPECT_GT(f.phy->stats().null_slots, 300);
  EXPECT_EQ(f.phy->stats().work_slots, 0);
  EXPECT_EQ(f.phy->stats().work_units, 0.0);
}

TEST(PhyProcess, KillStopsAllEmission) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  f.sim.run_until(5'000_us);
  const auto frames_before = f.fronthaul_tx.size();
  f.phy->kill();
  f.sim.run_until(15'000_us);
  // At most one in-flight frame after the kill.
  EXPECT_LE(f.fronthaul_tx.size(), frames_before + 1);
  EXPECT_FALSE(f.phy->alive());
}

TEST(PhyProcess, EncodesDownlinkTbIntoUPlane) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  // Schedule a DL TB in slot 5 (a D slot).
  DlTtiRequest dl;
  dl.pdus.push_back(TtiPdu{UeId{1}, 0, 500, HarqId{0}, true});
  f.phy->on_fapi(FapiMessage{RuId{1}, 5, std::move(dl)});
  TxDataRequest tx;
  tx.payloads.push_back(std::vector<std::uint8_t>(500, 0x5C));
  f.phy->on_fapi(FapiMessage{RuId{1}, 5, std::move(tx)});
  f.sim.run_until(5'000_us);
  bool found_uplane = false;
  for (const auto& frame : f.fronthaul_tx) {
    const auto header = peek_fronthaul_header(frame.payload);
    if (header->plane == FhPlane::kUser) {
      const auto packet = parse_fronthaul(frame.payload);
      ASSERT_EQ(packet.uplane.sections.size(), 1U);
      EXPECT_EQ(packet.uplane.sections[0].ue, UeId{1});
      EXPECT_GT(packet.uplane.sections[0].iq.size(),
                std::size_t(kNumPilotSymbols));
      found_uplane = true;
    }
  }
  EXPECT_TRUE(found_uplane);
  EXPECT_EQ(f.phy->stats().dl_tbs_encoded, 1);
  EXPECT_GT(f.phy->stats().work_units, 0.0);
}

TEST(PhyProcess, DecodesUplinkWithPipelineDelay) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  // Grant in UL slot 9; deliver matching clean IQ as the RU would.
  UlTtiRequest ul;
  ul.pdus.push_back(TtiPdu{UeId{1}, 0, 300, HarqId{0}, true});
  f.phy->on_fapi(FapiMessage{RuId{1}, 9, std::move(ul)});

  const std::vector<std::uint8_t> payload(300, 0x77);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  FronthaulPacket up;
  up.header.direction = FhDirection::kUplink;
  up.header.plane = FhPlane::kUser;
  up.header.slot = SlotPoint::from_index(9, f.config.slots);
  up.header.ru = RuId{1};
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{0};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 300;
  section.codeword_bits = enc.codeword_bits;
  section.iq = enc.iq;
  section.shadow_payload = payload;
  up.uplane.sections.push_back(std::move(section));
  f.sim.at(Nanos(9) * 500_us + 200_us, [&f, up] {
    f.link.send_from_b(make_fronthaul_frame(MacAddr{0xA1}, MacAddr{0xB1}, up));
  });

  f.sim.run_until(10'000_us);
  ASSERT_EQ(f.capture.count(FapiMsgType::kCrcIndication), 1);
  ASSERT_EQ(f.capture.count(FapiMsgType::kRxDataIndication), 1);
  for (std::size_t i = 0; i < f.capture.messages.size(); ++i) {
    const auto& msg = f.capture.messages[i];
    if (msg.type() == FapiMsgType::kCrcIndication) {
      const auto& crc = std::get<CrcIndication>(msg.body);
      ASSERT_EQ(crc.entries.size(), 1U);
      EXPECT_TRUE(crc.entries[0].ok);
      EXPECT_EQ(msg.slot, 9);
      // Pipelined: indicated ul_pipeline_slots after the OTA slot.
      const auto indicated_slot = f.config.slots.slot_at(f.capture.times[i]);
      EXPECT_GE(indicated_slot, 9 + f.config.ul_pipeline_slots);
    }
    if (msg.type() == FapiMsgType::kRxDataIndication) {
      const auto& rx = std::get<RxDataIndication>(msg.body);
      ASSERT_EQ(rx.pdus.size(), 1U);
      EXPECT_EQ(rx.pdus[0].payload, payload);
    }
  }
  EXPECT_EQ(f.phy->stats().ul_crc_ok, 1);
}

TEST(PhyProcess, GrantedButNoSignalIsCrcFailure) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  UlTtiRequest ul;
  ul.pdus.push_back(TtiPdu{UeId{1}, 0, 300, HarqId{0}, true});
  f.phy->on_fapi(FapiMessage{RuId{1}, 9, std::move(ul)});
  f.sim.run_until(10'000_us);  // no IQ ever arrives
  ASSERT_EQ(f.capture.count(FapiMsgType::kCrcIndication), 1);
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kCrcIndication) {
      EXPECT_FALSE(std::get<CrcIndication>(msg.body).entries[0].ok);
    }
  }
  EXPECT_EQ(f.phy->stats().ul_missing_sections, 1);
}

TEST(PhyProcess, LateFapiDroppedWithErrorIndication) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  f.sim.run_until(5'000_us);  // now in slot 10
  f.phy->on_fapi(make_null_dl_tti(RuId{1}, 3));  // ancient request
  EXPECT_EQ(f.phy->stats().late_fapi_dropped, 1);
  f.sim.run_until(5'100_us);
  ASSERT_EQ(f.capture.count(FapiMsgType::kErrorIndication), 1);
  for (const auto& msg : f.capture.messages) {
    if (msg.type() == FapiMsgType::kErrorIndication) {
      const auto& err = std::get<ErrorIndication>(msg.body);
      EXPECT_EQ(err.code, kFapiMsgSlotErr);
      EXPECT_EQ(err.offending, FapiMsgType::kDlTtiRequest);
      EXPECT_EQ(msg.slot, 3);
    }
  }
}

TEST(PhyProcess, UlUciForwardedAsIndication) {
  PhyFixture f;
  f.configure_and_start();
  f.feed_null(1, 40);
  FronthaulPacket up;
  up.header.direction = FhDirection::kUplink;
  up.header.plane = FhPlane::kControl;
  up.header.slot = SlotPoint::from_index(4, f.config.slots);
  up.header.ru = RuId{1};
  up.cplane.uci.push_back(UciFeedback{UeId{1}, HarqId{5}, true});
  f.sim.at(2'200_us, [&f, up] {
    f.link.send_from_b(make_fronthaul_frame(MacAddr{0xA1}, MacAddr{0xB1}, up));
  });
  f.sim.run_until(5'000_us);
  ASSERT_EQ(f.capture.count(FapiMsgType::kUciIndication), 1);
}

TEST(PhyProcess, SoftStateTransferCopiesFilters) {
  PhyFixture f;
  Simulator& sim = f.sim;
  Link link2{sim, LinkConfig{}, sim.rng().stream("loss2")};
  Nic nic2{sim, MacAddr{0xB2}};
  nic2.attach(link2);
  PhyProcess other{sim, "phy-other", f.config, nic2};
  other.add_ru_binding(RuId{1}, MacAddr{0xA1});
  // Populate f.phy's SNR filter via a decode, then transfer to `other`.
  f.configure_and_start();
  f.feed_null(1, 40);
  UlTtiRequest ul;
  ul.pdus.push_back(TtiPdu{UeId{1}, 0, 300, HarqId{0}, true});
  f.phy->on_fapi(FapiMessage{RuId{1}, 9, std::move(ul)});
  const std::vector<std::uint8_t> payload(300, 0x11);
  const auto enc = encode_tb(payload, Modulation::kQpsk);
  FronthaulPacket up;
  up.header.direction = FhDirection::kUplink;
  up.header.plane = FhPlane::kUser;
  up.header.slot = SlotPoint::from_index(9, f.config.slots);
  up.header.ru = RuId{1};
  UPlaneSection section;
  section.ue = UeId{1};
  section.harq = HarqId{0};
  section.new_data = true;
  section.mcs = 0;
  section.tb_bytes = 300;
  section.codeword_bits = enc.codeword_bits;
  section.iq = enc.iq;
  section.shadow_payload = payload;
  up.uplane.sections.push_back(std::move(section));
  sim.at(Nanos(9) * 500_us + 200_us, [&] {
    f.link.send_from_b(make_fronthaul_frame(MacAddr{0xA1}, MacAddr{0xB1}, up));
  });
  sim.run_until(10'000_us);
  ASSERT_GT(f.phy->filtered_snr_db(RuId{1}, UeId{1}), 20.0);
  other.transfer_soft_state_from(*f.phy);
  EXPECT_DOUBLE_EQ(other.filtered_snr_db(RuId{1}, UeId{1}),
                   f.phy->filtered_snr_db(RuId{1}, UeId{1}));
}

}  // namespace
}  // namespace slingshot
