#include "phy/harq.h"

#include <gtest/gtest.h>

namespace slingshot {
namespace {

TEST(HarqSoftBufferStore, StoreAndFind) {
  HarqSoftBufferStore store;
  EXPECT_EQ(store.find(UeId{1}, HarqId{0}), nullptr);
  store.store(UeId{1}, HarqId{0}, {1.0F, -2.0F});
  const auto* entry = store.find(UeId{1}, HarqId{0});
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->llrs, (std::vector<float>{1.0F, -2.0F}));
  EXPECT_EQ(entry->transmissions, 1);
}

TEST(HarqSoftBufferStore, ProcessesAreIndependent) {
  HarqSoftBufferStore store;
  store.store(UeId{1}, HarqId{0}, {1.0F});
  store.store(UeId{1}, HarqId{1}, {2.0F});
  store.store(UeId{2}, HarqId{0}, {3.0F});
  EXPECT_EQ(store.active_processes(), 3U);
  EXPECT_EQ(store.find(UeId{1}, HarqId{1})->llrs[0], 2.0F);
  EXPECT_EQ(store.find(UeId{2}, HarqId{0})->llrs[0], 3.0F);
}

TEST(HarqSoftBufferStore, StartNewDropsOldSoftBits) {
  HarqSoftBufferStore store;
  store.store(UeId{5}, HarqId{2}, {9.0F});
  store.start_new(UeId{5}, HarqId{2});
  EXPECT_EQ(store.find(UeId{5}, HarqId{2}), nullptr);
}

TEST(HarqSoftBufferStore, TransmissionsCountAcrossRetx) {
  HarqSoftBufferStore store;
  store.store(UeId{1}, HarqId{0}, {1.0F});
  store.store(UeId{1}, HarqId{0}, {1.5F});
  EXPECT_EQ(store.find(UeId{1}, HarqId{0})->transmissions, 2);
}

TEST(HarqSoftBufferStore, ReleaseRemovesProcess) {
  HarqSoftBufferStore store;
  store.store(UeId{1}, HarqId{0}, {1.0F});
  store.release(UeId{1}, HarqId{0});
  EXPECT_EQ(store.find(UeId{1}, HarqId{0}), nullptr);
  EXPECT_EQ(store.active_processes(), 0U);
}

TEST(HarqSoftBufferStore, ClearDiscardsEverything) {
  // What PHY migration implies: the destination starts empty.
  HarqSoftBufferStore store;
  for (std::uint16_t ue = 0; ue < 8; ++ue) {
    for (std::uint8_t h = 0; h < 8; ++h) {
      store.store(UeId{ue}, HarqId{h}, {float(ue), float(h)});
    }
  }
  EXPECT_EQ(store.active_processes(), 64U);
  store.clear();
  EXPECT_EQ(store.active_processes(), 0U);
  EXPECT_EQ(store.find(UeId{3}, HarqId{3}), nullptr);
}

}  // namespace
}  // namespace slingshot
