#include "phy/modulation.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/stats.h"

namespace slingshot {
namespace {

class ModulationSweep : public ::testing::TestWithParam<Modulation> {};

TEST_P(ModulationSweep, UnitAverageEnergy) {
  const Modulator mod{GetParam()};
  auto rng = RngRegistry{1}.stream("mod");
  std::vector<std::uint8_t> bits(
      std::size_t(bits_per_symbol(GetParam())) * 4096);
  for (auto& b : bits) {
    b = std::uint8_t(rng.next_u64() & 1U);
  }
  const auto syms = mod.modulate(bits);
  RunningStats energy;
  for (const auto& s : syms) {
    energy.add(std::norm(s));
  }
  EXPECT_NEAR(energy.mean(), 1.0, 0.05);
}

TEST_P(ModulationSweep, NoiselessDemapRecoversBits) {
  const Modulator mod{GetParam()};
  auto rng = RngRegistry{2}.stream("mod");
  std::vector<std::uint8_t> bits(std::size_t(bits_per_symbol(GetParam())) * 64);
  for (auto& b : bits) {
    b = std::uint8_t(rng.next_u64() & 1U);
  }
  const auto syms = mod.modulate(bits);
  const auto llrs = mod.demap(syms, 1e-4);
  ASSERT_EQ(llrs.size(), bits.size());
  for (std::size_t i = 0; i < bits.size(); ++i) {
    // Positive LLR => bit 0.
    EXPECT_EQ(llrs[i] < 0.0F ? 1 : 0, bits[i]) << "bit " << i;
  }
}

TEST_P(ModulationSweep, LlrMagnitudeScalesWithNoise) {
  const Modulator mod{GetParam()};
  std::vector<std::uint8_t> bits(std::size_t(bits_per_symbol(GetParam())), 0);
  const auto syms = mod.modulate(bits);
  const auto clean = mod.demap(syms, 0.01);
  const auto noisy = mod.demap(syms, 1.0);
  EXPECT_GT(std::fabs(clean[0]), std::fabs(noisy[0]));
}

INSTANTIATE_TEST_SUITE_P(AllOrders, ModulationSweep,
                         ::testing::Values(Modulation::kQpsk,
                                           Modulation::kQam16,
                                           Modulation::kQam64,
                                           Modulation::kQam256),
                         [](const auto& info) {
                           return modulation_name(info.param);
                         });

TEST(Modulation, SymbolCounts) {
  std::vector<std::uint8_t> bits(24, 0);
  EXPECT_EQ(Modulator{Modulation::kQpsk}.modulate(bits).size(), 12U);
  EXPECT_EQ(Modulator{Modulation::kQam16}.modulate(bits).size(), 6U);
  EXPECT_EQ(Modulator{Modulation::kQam64}.modulate(bits).size(), 4U);
  EXPECT_EQ(Modulator{Modulation::kQam256}.modulate(bits).size(), 3U);
}

TEST(Modulation, QpskConstellationPoints) {
  const Modulator mod{Modulation::kQpsk};
  const float a = float(1.0 / std::sqrt(2.0));
  const auto s00 = mod.modulate(std::vector<std::uint8_t>{0, 0});
  EXPECT_NEAR(std::abs(s00[0].real()), a, 1e-5);
  EXPECT_NEAR(std::abs(s00[0].imag()), a, 1e-5);
}

TEST(Modulation, GrayNeighborsDifferInOneBit) {
  // Adjacent 16QAM levels on one dimension must differ in exactly one
  // bit — the property that makes soft demapping robust.
  const Modulator mod{Modulation::kQam16};
  // Collect (level, bits) for one dimension by modulating all patterns.
  std::vector<std::pair<float, unsigned>> dim;
  for (unsigned p = 0; p < 4; ++p) {
    const std::vector<std::uint8_t> bits{
        std::uint8_t((p >> 1) & 1U), std::uint8_t(p & 1U), 0, 0};
    const auto s = mod.modulate(bits);
    dim.emplace_back(s[0].real(), p);
  }
  std::sort(dim.begin(), dim.end());
  for (std::size_t i = 1; i < dim.size(); ++i) {
    EXPECT_EQ(__builtin_popcount(dim[i - 1].second ^ dim[i].second), 1);
  }
}

TEST(Modulation, WrongBitCountThrows) {
  const Modulator mod{Modulation::kQam64};
  EXPECT_THROW((void)mod.modulate(std::vector<std::uint8_t>(5)),
               std::invalid_argument);
}

TEST(Modulation, HigherOrderNeedsMoreSnr) {
  // Bit error rate after hard-slicing LLRs at the same SNR should be
  // worse for 256QAM than QPSK — the physics behind the MCS ladder.
  auto rng = RngRegistry{3}.stream("mod");
  auto ber_at = [&](Modulation m, double snr_db) {
    const Modulator mod{m};
    const int n_bits = bits_per_symbol(m) * 2000;
    std::vector<std::uint8_t> bits(static_cast<std::size_t>(n_bits));
    for (auto& b : bits) {
      b = std::uint8_t(rng.next_u64() & 1U);
    }
    auto syms = mod.modulate(bits);
    const double sigma2 = std::pow(10.0, -snr_db / 10.0);
    const double sigma = std::sqrt(sigma2 / 2.0);
    for (auto& s : syms) {
      s += std::complex<float>(float(rng.gaussian(0, sigma)),
                               float(rng.gaussian(0, sigma)));
    }
    const auto llrs = mod.demap(syms, sigma2);
    int errors = 0;
    for (std::size_t i = 0; i < bits.size(); ++i) {
      errors += (llrs[i] < 0.0F ? 1 : 0) != bits[i] ? 1 : 0;
    }
    return double(errors) / double(n_bits);
  };
  EXPECT_LT(ber_at(Modulation::kQpsk, 10.0),
            ber_at(Modulation::kQam256, 10.0));
}

}  // namespace
}  // namespace slingshot
