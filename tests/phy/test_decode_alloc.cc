// Counting-allocator proof that the hot decode path is allocation-free.
//
// This TU overrides global operator new/delete with counting shims (the
// reason it lives in its own test binary) and asserts that, once a
// DecodeWorkspace is warm, LdpcCode::decode_into performs ZERO heap
// allocations per decode — for both the flooding and layered schedules.
// That is the contract that lets the PHY decode every uplink TB of a
// 10-second run without touching the allocator.
#include <gtest/gtest.h>

#include <cstdlib>
#include <new>

#include "common/rng.h"
#include "phy/ldpc.h"

namespace {
// Plain counter; the simulation and tests are single-threaded.
std::size_t g_alloc_count = 0;
}  // namespace

void* operator new(std::size_t size) {
  ++g_alloc_count;
  void* p = std::malloc(size);
  if (p == nullptr) {
    throw std::bad_alloc{};
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace slingshot {
namespace {

std::vector<float> make_noisy_llrs(const LdpcCode& code, RngStream& rng) {
  std::vector<std::uint8_t> info(std::size_t(code.k()));
  for (auto& b : info) {
    b = std::uint8_t(rng.next_u64() & 1U);
  }
  const auto cw = code.encode(info);
  std::vector<float> llrs(cw.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    const double x = cw[i] ? -1.0 : 1.0;
    llrs[i] = float(2.0 * (x + rng.gaussian(0.0, 0.5)) / 0.25);
  }
  return llrs;
}

class DecodeAllocTest : public ::testing::TestWithParam<LdpcSchedule> {};

TEST_P(DecodeAllocTest, WarmWorkspaceDecodeIsAllocationFree) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{2024}.stream("alloc");
  LdpcCode::DecodeWorkspace ws;

  // Pre-generate inputs and warm the workspace (first call sizes the
  // scratch vectors).
  std::vector<std::vector<float>> inputs;
  inputs.reserve(8);
  for (int i = 0; i < 8; ++i) {
    inputs.push_back(make_noisy_llrs(code, rng));
  }
  (void)code.decode_into(inputs[0], 8, ws, GetParam());

  const std::size_t before = g_alloc_count;
  for (const auto& llrs : inputs) {
    (void)code.decode_into(llrs, 8, ws, GetParam());
  }
  const std::size_t after = g_alloc_count;
  EXPECT_EQ(after - before, 0U)
      << "decode_into allocated " << (after - before)
      << " times across " << inputs.size() << " warm decodes";
}

INSTANTIATE_TEST_SUITE_P(
    Schedules, DecodeAllocTest,
    ::testing::Values(LdpcSchedule::kFlooding, LdpcSchedule::kLayered),
    [](const ::testing::TestParamInfo<LdpcSchedule>& info) {
      return info.param == LdpcSchedule::kFlooding ? "Flooding" : "Layered";
    });

}  // namespace
}  // namespace slingshot
