#include "phy/ldpc.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace slingshot {
namespace {

std::vector<std::uint8_t> random_bits(int n, RngStream& rng) {
  std::vector<std::uint8_t> bits(static_cast<std::size_t>(n));
  for (auto& b : bits) {
    b = std::uint8_t(rng.next_u64() & 1U);
  }
  return bits;
}

// Transmit a codeword over BPSK + AWGN, produce channel LLRs.
std::vector<float> bpsk_llrs(std::span<const std::uint8_t> cw, double snr_db,
                             RngStream& rng) {
  const double sigma2 = std::pow(10.0, -snr_db / 10.0);
  const double sigma = std::sqrt(sigma2);
  std::vector<float> llrs(cw.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    const double x = cw[i] ? -1.0 : 1.0;
    const double y = x + rng.gaussian(0.0, sigma);
    llrs[i] = float(2.0 * y / sigma2);
  }
  return llrs;
}

TEST(LdpcCode, DimensionsAreSane) {
  const auto& code = LdpcCode::standard();
  EXPECT_EQ(code.n(), 648);
  // Rate ~1/2; a few dependent checks may shift k slightly upward.
  EXPECT_GE(code.k(), 320);
  EXPECT_LE(code.k(), 340);
}

TEST(LdpcCode, EncodedWordsSatisfyParity) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{1}.stream("ldpc");
  for (int trial = 0; trial < 20; ++trial) {
    const auto info = random_bits(code.k(), rng);
    const auto cw = code.encode(info);
    ASSERT_EQ(int(cw.size()), code.n());
    EXPECT_TRUE(code.check_parity(cw));
  }
}

TEST(LdpcCode, EncodeIsSystematicInExtraction) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{2}.stream("ldpc");
  const auto info = random_bits(code.k(), rng);
  const auto cw = code.encode(info);
  EXPECT_EQ(code.extract_info(cw), info);
}

TEST(LdpcCode, CorruptedWordFailsParity) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{3}.stream("ldpc");
  auto cw = code.encode(random_bits(code.k(), rng));
  cw[100] ^= 1U;
  EXPECT_FALSE(code.check_parity(cw));
}

TEST(LdpcCode, DecodesCleanChannelInOneIteration) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{4}.stream("ldpc");
  const auto info = random_bits(code.k(), rng);
  const auto cw = code.encode(info);
  std::vector<float> llrs(cw.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    llrs[i] = cw[i] ? -10.0F : 10.0F;
  }
  const auto result = code.decode(llrs, 8);
  EXPECT_TRUE(result.parity_ok);
  EXPECT_EQ(result.iterations_used, 1);
  EXPECT_EQ(code.extract_info(result.codeword), info);
}

TEST(LdpcCode, DecodesNoisyChannelAtModerateSnr) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{5}.stream("ldpc");
  int successes = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    const auto info = random_bits(code.k(), rng);
    const auto cw = code.encode(info);
    const auto llrs = bpsk_llrs(cw, 4.0, rng);  // comfortable SNR
    const auto result = code.decode(llrs, 20);
    if (result.parity_ok && code.extract_info(result.codeword) == info) {
      ++successes;
    }
  }
  EXPECT_EQ(successes, trials);
}

TEST(LdpcCode, FailsAtVeryLowSnr) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{6}.stream("ldpc");
  int successes = 0;
  for (int t = 0; t < 20; ++t) {
    const auto info = random_bits(code.k(), rng);
    const auto cw = code.encode(info);
    const auto llrs = bpsk_llrs(cw, -4.0, rng);
    const auto result = code.decode(llrs, 20);
    if (result.parity_ok) {
      ++successes;
    }
  }
  EXPECT_LT(successes, 3);
}

// The property behind the paper's Fig 11 live-upgrade experiment: more
// BP iterations decode at SNRs where fewer iterations fail.
TEST(LdpcCode, MoreIterationsImproveNearThresholdDecoding) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{7}.stream("ldpc");
  const int trials = 60;
  int ok_few = 0;
  int ok_many = 0;
  for (int t = 0; t < trials; ++t) {
    const auto info = random_bits(code.k(), rng);
    const auto cw = code.encode(info);
    const auto llrs = bpsk_llrs(cw, 1.4, rng);  // near threshold
    ok_few += code.decode(llrs, 3).parity_ok ? 1 : 0;
    ok_many += code.decode(llrs, 40).parity_ok ? 1 : 0;
  }
  EXPECT_GT(ok_many, ok_few + trials / 10)
      << "few=" << ok_few << " many=" << ok_many;
}

TEST(LdpcCode, EarlyTerminationReportsIterations) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{8}.stream("ldpc");
  const auto cw = code.encode(random_bits(code.k(), rng));
  const auto llrs = bpsk_llrs(cw, 6.0, rng);
  const auto result = code.decode(llrs, 50);
  EXPECT_TRUE(result.parity_ok);
  EXPECT_LT(result.iterations_used, 10);  // early exit, not 50
}

TEST(LdpcCode, WrongInputSizesThrow) {
  const auto& code = LdpcCode::standard();
  EXPECT_THROW((void)code.encode(std::vector<std::uint8_t>(10)),
               std::invalid_argument);
  EXPECT_THROW((void)code.decode(std::vector<float>(10), 5),
               std::invalid_argument);
  EXPECT_THROW(LdpcCode(0, 0, 1), std::invalid_argument);
  EXPECT_THROW(LdpcCode(100, 100, 1), std::invalid_argument);
}

TEST(LdpcCode, DeterministicForSeed) {
  const LdpcCode a{324, 162, 77};
  const LdpcCode b{324, 162, 77};
  auto rng = RngRegistry{9}.stream("ldpc");
  const auto info = random_bits(a.k(), rng);
  ASSERT_EQ(a.k(), b.k());
  EXPECT_EQ(a.encode(info), b.encode(info));
}

TEST(LdpcCode, LayeredDecodesCleanChannel) {
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{10}.stream("ldpc");
  const auto info = random_bits(code.k(), rng);
  const auto cw = code.encode(info);
  std::vector<float> llrs(cw.size());
  for (std::size_t i = 0; i < cw.size(); ++i) {
    llrs[i] = cw[i] ? -10.0F : 10.0F;
  }
  LdpcCode::DecodeWorkspace ws;
  const auto status =
      code.decode_into(llrs, 8, ws, LdpcSchedule::kLayered);
  EXPECT_TRUE(status.parity_ok);
  EXPECT_EQ(code.extract_info(ws.codeword), info);
}

TEST(LdpcCode, DecodeIntoMatchesDecode) {
  // The workspace entry point is the same algorithm as the allocating
  // wrapper — byte-identical outcomes.
  const auto& code = LdpcCode::standard();
  auto rng = RngRegistry{11}.stream("ldpc");
  LdpcCode::DecodeWorkspace ws;
  for (int t = 0; t < 10; ++t) {
    const auto cw = code.encode(random_bits(code.k(), rng));
    const auto llrs = bpsk_llrs(cw, 2.0, rng);
    const auto via_wrapper = code.decode(llrs, 8);
    const auto via_ws = code.decode_into(llrs, 8, ws);
    EXPECT_EQ(via_wrapper.parity_ok, via_ws.parity_ok);
    EXPECT_EQ(via_wrapper.iterations_used, via_ws.iterations_used);
    EXPECT_EQ(via_wrapper.codeword, ws.codeword);
  }
}

// The property that motivates the layered (serial-C) schedule: updated
// beliefs propagate within an iteration, so at an equal (tight)
// iteration budget the layered schedule's frame error rate is no worse
// than flooding's. Swept across near-threshold SNRs.
class LdpcScheduleSweep : public ::testing::TestWithParam<double> {};

TEST_P(LdpcScheduleSweep, LayeredFerNoWorseThanFloodingAtEqualBudget) {
  const auto& code = LdpcCode::standard();
  const double snr_db = GetParam();
  // Seed depends on the SNR point so sweep points are independent.
  auto rng = RngRegistry{std::uint64_t(100 + snr_db * 10)}.stream("ldpc");
  const int trials = 120;
  const int budget = 4;  // tight: convergence speed decides the FER
  int flooding_failures = 0;
  int layered_failures = 0;
  LdpcCode::DecodeWorkspace ws;
  for (int t = 0; t < trials; ++t) {
    const auto info = random_bits(code.k(), rng);
    const auto cw = code.encode(info);
    const auto llrs = bpsk_llrs(cw, snr_db, rng);
    const auto flooding =
        code.decode_into(llrs, budget, ws, LdpcSchedule::kFlooding);
    const bool flooding_ok =
        flooding.parity_ok && code.extract_info(ws.codeword) == info;
    const auto layered =
        code.decode_into(llrs, budget, ws, LdpcSchedule::kLayered);
    const bool layered_ok =
        layered.parity_ok && code.extract_info(ws.codeword) == info;
    flooding_failures += flooding_ok ? 0 : 1;
    layered_failures += layered_ok ? 0 : 1;
  }
  EXPECT_LE(layered_failures, flooding_failures)
      << "snr=" << snr_db << " layered=" << layered_failures << "/" << trials
      << " flooding=" << flooding_failures << "/" << trials;
}

INSTANTIATE_TEST_SUITE_P(NearThreshold, LdpcScheduleSweep,
                         ::testing::Values(1.5, 2.0, 2.5, 3.0));

}  // namespace
}  // namespace slingshot
