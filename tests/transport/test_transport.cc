#include <gtest/gtest.h>

#include "common/stats.h"
#include "sim/simulator.h"
#include "transport/apps.h"
#include "transport/minitcp.h"
#include "transport/pipe.h"

namespace slingshot {
namespace {

// A pair of FunctionPipes connected through a lossy, delaying "network".
struct PipePair {
  Simulator& sim;
  FunctionPipe a;
  FunctionPipe b;
  Nanos delay = 5_ms;
  double loss = 0.0;
  RngStream rng;

  explicit PipePair(Simulator& s) : sim(s), rng(s.rng().stream("pipe")) {
    a.set_sender([this](std::vector<std::uint8_t> d) {
      if (loss > 0 && rng.bernoulli(loss)) {
        return;
      }
      sim.after(delay, [this, d = std::move(d)]() mutable {
        b.inject(std::move(d));
      });
    });
    b.set_sender([this](std::vector<std::uint8_t> d) {
      if (loss > 0 && rng.bernoulli(loss)) {
        return;
      }
      sim.after(delay, [this, d = std::move(d)]() mutable {
        a.inject(std::move(d));
      });
    });
  }
};

TEST(UdpFlow, DeliversAtConfiguredRate) {
  Simulator sim;
  PipePair net{sim};
  UdpFlowConfig cfg;
  cfg.rate_bps = 8e6;
  cfg.packet_bytes = 1000;
  UdpFlow flow{sim, net.a, net.b, cfg};
  flow.start();
  sim.run_until(1_s);
  flow.stop();
  sim.run_until(1'100_ms);  // drain in-flight packets
  EXPECT_NEAR(double(flow.packets_sent()), 1000.0, 20.0);
  EXPECT_EQ(flow.packets_received(), flow.packets_sent());
  EXPECT_DOUBLE_EQ(flow.loss_rate(), 0.0);
  // Goodput in a mid-run bin ~ 8 Mbps.
  EXPECT_NEAR(flow.goodput().bin_rate_bps(50) / 1e6, 8.0, 1.0);
}

TEST(UdpFlow, CountsLoss) {
  Simulator sim;
  PipePair net{sim};
  net.loss = 0.25;
  UdpFlowConfig cfg;
  cfg.rate_bps = 8e6;
  UdpFlow flow{sim, net.a, net.b, cfg};
  flow.start();
  sim.run_until(2_s);
  EXPECT_NEAR(flow.loss_rate(), 0.25, 0.05);
  EXPECT_GT(flow.max_bin_loss(100_ms, 1'900_ms), 0.2);
}

TEST(PingApp, MeasuresRtt) {
  Simulator sim;
  PipePair net{sim};  // 5 ms each way -> 10 ms RTT
  PingApp ping{sim, net.a, PingConfig{}};
  PingResponder responder{net.b};
  ping.start();
  sim.run_until(1_s);
  ASSERT_GT(ping.samples().size(), 90U);
  for (const auto& s : ping.samples()) {
    EXPECT_EQ(s.rtt, 10_ms);
  }
  EXPECT_EQ(ping.timeouts(100_ms), 0U);
}

TEST(PingApp, LostPingsCountedAsTimeouts) {
  Simulator sim;
  PipePair net{sim};
  net.loss = 0.5;
  PingApp ping{sim, net.a, PingConfig{}};
  PingResponder responder{net.b};
  ping.start();
  sim.run_until(2_s);
  EXPECT_GT(ping.timeouts(200_ms), 20U);
}

TEST(VideoApp, BitrateMatchesTarget) {
  Simulator sim;
  PipePair net{sim};
  VideoConfig cfg;
  cfg.bitrate_bps = 500e3;
  VideoApp video{sim, net.a, net.b, cfg};
  video.start();
  sim.run_until(5_s);
  EXPECT_NEAR(video.bitrate_kbps_at(3'500_ms), 500.0, 60.0);
}

TEST(MiniTcp, ReliableDeliveryOverCleanPath) {
  Simulator sim;
  PipePair net{sim};
  MiniTcpConfig cfg;
  MiniTcpSender sender{sim, net.a, cfg};
  MiniTcpReceiver receiver{sim, net.b, cfg};
  sender.start();
  sim.run_until(2_s);
  EXPECT_GT(receiver.bytes_delivered(), 1'000'000U);
  EXPECT_EQ(sender.stats().retransmits, 0U);
  EXPECT_NEAR(to_millis(sender.srtt()), 10.0, 2.0);
}

TEST(MiniTcp, RecoversFromLossBurst) {
  Simulator sim;
  PipePair net{sim};
  MiniTcpConfig cfg;
  cfg.max_cwnd_segments = 32;
  MiniTcpSender sender{sim, net.a, cfg};
  MiniTcpReceiver receiver{sim, net.b, cfg};
  sender.start();
  sim.run_until(1_s);
  // 100% loss for 50 ms, then heal.
  net.loss = 1.0;
  sim.run_until(1'050_ms);
  net.loss = 0.0;
  const auto delivered_at_heal = receiver.bytes_delivered();
  sim.run_until(3_s);
  EXPECT_GT(receiver.bytes_delivered(), delivered_at_heal + 1'000'000U);
  EXPECT_GT(sender.stats().retransmits, 0U);
}

TEST(MiniTcp, SteadyLossLimitsButDoesNotStall) {
  Simulator sim;
  PipePair net{sim};
  net.loss = 0.02;
  MiniTcpConfig cfg;
  MiniTcpSender sender{sim, net.a, cfg};
  MiniTcpReceiver receiver{sim, net.b, cfg};
  sender.start();
  sim.run_until(5_s);
  EXPECT_GT(receiver.bytes_delivered(), 500'000U);
  EXPECT_GT(sender.stats().fast_retransmits, 0U);
}

TEST(MiniTcp, CongestionWindowCapsInFlight) {
  Simulator sim;
  PipePair net{sim};
  net.delay = 50_ms;  // high BDP path
  MiniTcpConfig cfg;
  cfg.max_cwnd_segments = 10;
  MiniTcpSender sender{sim, net.a, cfg};
  MiniTcpReceiver receiver{sim, net.b, cfg};
  sender.start();
  sim.run_until(5_s);
  // Window-limited throughput: 10 * 1200 B / 100 ms RTT = 0.96 Mbps.
  const double mbps = double(receiver.bytes_delivered()) * 8 / 5.0 / 1e6;
  EXPECT_NEAR(mbps, 0.96, 0.15);
  EXPECT_LE(sender.cwnd_segments(), 10.0);
}

TEST(MiniTcp, RtoFiresWhenAllAcksLost) {
  Simulator sim;
  PipePair net{sim};
  MiniTcpConfig cfg;
  MiniTcpSender sender{sim, net.a, cfg};
  MiniTcpReceiver receiver{sim, net.b, cfg};
  sender.start();
  sim.run_until(500_ms);
  net.loss = 1.0;  // blackhole forever
  sim.run_until(3_s);
  EXPECT_GT(sender.stats().rto_fires, 2U);  // with exponential backoff
}

TEST(FunctionPipe, InjectReachesHandler) {
  FunctionPipe pipe;
  std::vector<std::uint8_t> got;
  pipe.set_receive_handler([&](std::vector<std::uint8_t> d) {
    got = std::move(d);
  });
  pipe.inject({1, 2, 3});
  EXPECT_EQ(got, (std::vector<std::uint8_t>{1, 2, 3}));
}

}  // namespace
}  // namespace slingshot
