// Real-transport primitives: UDP loopback endpoints, the shared-memory
// SPSC ring, and the wall-clock TTI pacer. These are the building
// blocks of the real-process deployment mode (testbed/real_testbed.h);
// everything here runs against the actual kernel — sockets, mmap,
// clock_nanosleep — not the simulator.
#include <atomic>
#include <cstdint>
#include <cstring>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "fapi/fapi.h"
#include "transport/shm_ring.h"
#include "transport/udp_endpoint.h"
#include "transport/wallclock_pacer.h"

namespace slingshot {
namespace {

TEST(UdpEndpoint, LoopbackEchoRoundTrip) {
  UdpEndpoint a;
  UdpEndpoint b;
  ASSERT_TRUE(a.open_loopback());
  ASSERT_TRUE(b.open_loopback());
  ASSERT_NE(a.port(), 0);
  ASSERT_NE(b.port(), 0);
  ASSERT_NE(a.port(), b.port());

  const std::vector<std::uint8_t> ping{1, 2, 3, 4, 5};
  ASSERT_TRUE(a.send_to(b.port(), ping));
  std::vector<std::uint8_t> got;
  std::uint16_t from = 0;
  ASSERT_GT(b.recv(got, 1000, &from), 0);
  EXPECT_EQ(got, ping);
  EXPECT_EQ(from, a.port());

  // Echo back to the sender's port — the exact pattern Orion uses to
  // identify peers (the port *is* the identity, no handshake).
  ASSERT_TRUE(b.send_to(from, got));
  std::vector<std::uint8_t> echoed;
  ASSERT_GT(a.recv(echoed, 1000, nullptr), 0);
  EXPECT_EQ(echoed, ping);
  EXPECT_EQ(a.datagrams_sent(), 1U);
  EXPECT_EQ(a.datagrams_received(), 1U);
}

TEST(UdpEndpoint, RecvTimeoutReturnsZero) {
  UdpEndpoint a;
  ASSERT_TRUE(a.open_loopback());
  std::vector<std::uint8_t> got;
  const auto before = WallclockPacer::now_ns();
  EXPECT_EQ(a.recv(got, 20), 0);  // the failure detector's signal
  EXPECT_GE(WallclockPacer::now_ns() - before, 15'000'000);
}

TEST(UdpEndpoint, ZeroLengthDatagramDistinctFromTimeout) {
  UdpEndpoint a;
  UdpEndpoint b;
  ASSERT_TRUE(a.open_loopback());
  ASSERT_TRUE(b.open_loopback());
  ASSERT_TRUE(a.send_to(b.port(), std::span<const std::uint8_t>{}));
  std::vector<std::uint8_t> got{9, 9};
  EXPECT_GT(b.recv(got, 1000), 0);
  EXPECT_TRUE(got.empty());
}

TEST(UdpEndpoint, ClosedEndpointReportsErrors) {
  UdpEndpoint a;
  EXPECT_FALSE(a.is_open());
  std::vector<std::uint8_t> got;
  EXPECT_LT(a.recv(got, 0), 0);
  const std::vector<std::uint8_t> one{1};
  EXPECT_FALSE(a.send_to(1234, one));
  EXPECT_EQ(a.send_errors(), 1U);
}

TEST(UdpEndpoint, CarriesSerializedFapi) {
  UdpEndpoint l2;
  UdpEndpoint phy;
  ASSERT_TRUE(l2.open_loopback());
  ASSERT_TRUE(phy.open_loopback());
  CrcIndication crc;
  crc.entries.push_back(CrcEntry{UeId{7}, HarqId{1}, true, 18.5F});
  const FapiMessage msg{RuId{1}, 42, std::move(crc)};
  const auto bytes = serialize_fapi(msg);
  ASSERT_TRUE(l2.send_to(phy.port(), bytes));
  std::vector<std::uint8_t> got;
  ASSERT_GT(phy.recv(got, 1000), 0);
  FapiMessage parsed;
  ASSERT_TRUE(try_parse_fapi(got, parsed));
  EXPECT_EQ(parsed.type(), FapiMsgType::kCrcIndication);
  EXPECT_EQ(parsed.slot, 42);
  EXPECT_EQ(serialize_fapi(parsed), bytes);
}

TEST(ShmRing, PushPopRoundTrip) {
  ShmRing ring = ShmRing::create(1024);
  ASSERT_TRUE(ring.valid());
  std::vector<std::uint8_t> out;
  EXPECT_FALSE(ring.pop(out));  // empty
  const std::vector<std::uint8_t> a{1, 2, 3};
  const std::vector<std::uint8_t> b{4, 5, 6, 7, 8};
  EXPECT_TRUE(ring.push(a));
  EXPECT_TRUE(ring.push(b));
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, a);
  EXPECT_TRUE(ring.pop(out));
  EXPECT_EQ(out, b);
  EXPECT_FALSE(ring.pop(out));
  ring.destroy();
}

TEST(ShmRing, EmptyRecordAndFullRingBehave) {
  ShmRing ring = ShmRing::create(64);
  ASSERT_TRUE(ring.valid());
  EXPECT_TRUE(ring.push(std::span<const std::uint8_t>{}));  // zero-length record is legal
  std::vector<std::uint8_t> out{9};
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(out.empty());

  // Fill until the producer is refused; the refusal is counted, not
  // fatal (the transport drops, per §6.1 statelessness).
  const std::vector<std::uint8_t> rec(16, 0xAA);
  std::size_t pushed = 0;
  while (ring.push(rec)) {
    ++pushed;
  }
  EXPECT_GT(pushed, 0U);
  EXPECT_EQ(ring.dropped_full(), 1U);
  // Consuming one record frees space for exactly one more.
  EXPECT_TRUE(ring.pop(out));
  EXPECT_TRUE(ring.push(rec));
  ring.destroy();
}

TEST(ShmRing, WrapAroundPreservesRecords) {
  // A small ring cycled many times with varying record sizes: every
  // record must come out intact across the wrap seam.
  ShmRing ring = ShmRing::create(256);
  ASSERT_TRUE(ring.valid());
  std::vector<std::uint8_t> out;
  for (std::uint32_t i = 0; i < 1000; ++i) {
    std::vector<std::uint8_t> rec(1 + (i % 60));
    for (std::size_t j = 0; j < rec.size(); ++j) {
      rec[j] = std::uint8_t(i + j);
    }
    ASSERT_TRUE(ring.push(rec)) << "iteration " << i;
    ASSERT_TRUE(ring.pop(out)) << "iteration " << i;
    ASSERT_EQ(out, rec) << "iteration " << i;
  }
  EXPECT_EQ(ring.used_bytes(), 0U);
  ring.destroy();
}

TEST(ShmRing, CrossThreadSpscOrdering) {
  // Producer and consumer on different threads, records tagged with a
  // sequence number: SPSC acquire/release must deliver every record
  // exactly once, in order, with intact bytes.
  ShmRing ring = ShmRing::create(4096);
  ASSERT_TRUE(ring.valid());
  constexpr std::uint32_t kRecords = 20000;
  std::atomic<bool> failed{false};

  std::thread producer([&ring] {
    for (std::uint32_t i = 0; i < kRecords;) {
      std::vector<std::uint8_t> rec(4 + (i % 32), std::uint8_t(i));
      std::memcpy(rec.data(), &i, sizeof(i));
      if (ring.push(rec)) {
        ++i;
      }
    }
  });
  std::thread consumer([&ring, &failed] {
    std::vector<std::uint8_t> out;
    for (std::uint32_t expect = 0; expect < kRecords;) {
      if (!ring.pop(out)) {
        continue;
      }
      std::uint32_t seq = 0;
      if (out.size() < sizeof(seq)) {
        failed.store(true);
        return;
      }
      std::memcpy(&seq, out.data(), sizeof(seq));
      if (seq != expect || out.size() != 4 + (expect % 32) ||
          (out.size() > 4 && out.back() != std::uint8_t(expect))) {
        failed.store(true);
        return;
      }
      ++expect;
    }
  });
  producer.join();
  consumer.join();
  EXPECT_FALSE(failed.load());
  EXPECT_EQ(ring.used_bytes(), 0U);
  ring.destroy();
}

TEST(WallclockPacer, WaitSlotHitsAbsoluteDeadlines) {
  WallclockPacer::Config cfg;
  cfg.epoch_ns = WallclockPacer::now_ns();
  cfg.tti_ns = 2'000'000;  // 2 ms slots: coarse enough to be robust
  WallclockPacer pacer{cfg};
  for (std::uint64_t slot : {1ULL, 2ULL, 5ULL}) {
    pacer.wait_slot(slot);
    const std::int64_t now = WallclockPacer::now_ns();
    EXPECT_GE(now, cfg.epoch_ns + std::int64_t(slot) * cfg.tti_ns);
  }
  EXPECT_GE(pacer.current_slot(), 5);
  EXPECT_EQ(pacer.overruns(), 0U);
}

TEST(WallclockPacer, PastDeadlineReturnsImmediatelyAndCountsOverrun) {
  WallclockPacer::Config cfg;
  cfg.epoch_ns = WallclockPacer::now_ns() - 100'000'000;  // 100 ms ago
  cfg.tti_ns = 1'000'000;
  WallclockPacer pacer{cfg};
  const auto before = WallclockPacer::now_ns();
  const auto late = pacer.wait_slot(0);  // deadline long past
  EXPECT_LT(WallclockPacer::now_ns() - before, 50'000'000);
  EXPECT_GT(late, 0);
  EXPECT_EQ(pacer.overruns(), 1U);
  EXPECT_GE(pacer.max_lateness_ns(), late);
}

}  // namespace
}  // namespace slingshot
