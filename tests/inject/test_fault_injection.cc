// Regression tests for the failover-path bugs found by the
// fault-injection harness, each driven through a FaultPlan and checked
// with the InvariantChecker, plus a randomized soak over the fault
// space. See src/inject/invariant_checker.h for the invariant list.
#include "inject/injector.h"

#include <gtest/gtest.h>

#include "inject/fault_plan.h"
#include "inject/invariant_checker.h"
#include "testbed/testbed.h"

namespace slingshot {
namespace {

TestbedConfig base_config() {
  TestbedConfig cfg;
  cfg.seed = 7;
  cfg.num_ues = 1;
  cfg.ue_mean_snr_db = {20.0};
  return cfg;
}

// µ=2 numerology (250 µs TTIs), as in TestbedIntegration.HigherNumerologyWorks.
TestbedConfig mu2_config() {
  auto cfg = base_config();
  cfg.slots.slot_duration = 250'000;
  cfg.slots.slots_per_frame = 40;
  cfg.slots.slots_per_subframe = 4;
  cfg.phy.cplane_offset = 15_us;
  cfg.phy.uplane_offset = 60_us;
  cfg.phy.midslot_sync_offset = 130_us;
  cfg.phy.tx_jitter = 17_us;
  cfg.phy.ul_indication_offset = 40_us;
  cfg.mbox.detector_timeout = 225_us;
  return cfg;
}

int failover_count(const Testbed& tb) {
  int n = 0;
  for (const auto& e : const_cast<Testbed&>(tb).orion().migration_log()) {
    if (e.kind == MigrationEvent::Kind::kFailover) {
      ++n;
    }
  }
  return n;
}

// S3 regression: a duplicated failure notification must not trigger a
// second failover with a later boundary, and after the swap no FAPI may
// flow to the consumed PHY until adopt_standby.
TEST(FaultInjection, DuplicateFailureNotificationIsIdempotent) {
  Testbed tb{base_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  FaultPlan plan;
  // The duplicate of the next notification arrives 100 µs after the
  // original — after the first failover is already pending.
  plan.add(195_ms, FaultKind::kDupFailureNotify, FaultSite::kOrionL2, 1,
           100_us);
  plan.add(200_ms, FaultKind::kKillPhy, FaultSite::kPhyA);
  inj.arm(plan);
  tb.start();
  tb.run_until(600_ms);

  EXPECT_EQ(inj.notifications_duplicated(), 1U);
  EXPECT_EQ(failover_count(tb), 1);
  // The split counters classify the pair correctly: one notification
  // initiated the failover, the re-delivery was recognized as a
  // duplicate, and the accounting identity holds.
  const auto& ost = tb.orion().stats();
  EXPECT_EQ(ost.failovers_initiated, 1U);
  EXPECT_EQ(ost.duplicate_notifications_ignored, 1U);
  EXPECT_EQ(ost.failure_notifications,
            ost.failovers_initiated + ost.duplicate_notifications_ignored +
                ost.stale_notifications_ignored);
  EXPECT_EQ(chk.count_matching("I5"), 0U) << chk.report();
  EXPECT_EQ(chk.count_matching("I6"), 0U) << chk.report();
  EXPECT_TRUE(chk.ok()) << chk.report();
}

// S2 regression: once a failure episode consumed a watch (and the L2
// unwatched the PHY at the switch), stray heartbeats from the failed
// PHY must not re-arm the detector. A gray failure makes the stray
// traffic: the PHY's fronthaul goes silent long enough to be declared
// dead, then resumes.
TEST(FaultInjection, StrayHeartbeatDoesNotRearmConsumedWatch) {
  Testbed tb{base_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  FaultPlan plan;
  plan.add(500_ms, FaultKind::kHangPhy, FaultSite::kPhyA, 1, 5_ms);
  plan.add(520_ms, FaultKind::kKillPhy, FaultSite::kPhyA);
  inj.arm(plan);
  tb.start();
  tb.run_until(900_ms);

  // Exactly one detection for the episode: the resumed heartbeats after
  // the hang (and the real death later) must not produce a second one.
  EXPECT_EQ(tb.mbox().stats().failures_detected, 1U);
  EXPECT_EQ(failover_count(tb), 1);
  EXPECT_EQ(chk.count_matching("duplicate"), 0U) << chk.report();
  EXPECT_EQ(chk.count_matching("unwatched"), 0U) << chk.report();
}

// S1 regression: at a non-default numerology the middlebox and the
// PHY-side Orions must use the configured SlotConfig, or the
// migrate_on_slot boundary is interpreted as a different TTI than the
// L2 Orion meant.
TEST(FaultInjection, MigrationBoundaryAtNonDefaultNumerology) {
  Testbed tb{mu2_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  FaultPlan plan;
  plan.add(300_ms, FaultKind::kPlannedMigration, FaultSite::kNone, 8);
  inj.arm(plan);
  tb.start();
  tb.run_until(800_ms);

  EXPECT_EQ(tb.mbox().stats().migrations_executed, 1U);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu), Testbed::kPhyB);
  EXPECT_EQ(chk.count_matching("I3"), 0U) << chk.report();
  EXPECT_EQ(chk.count_matching("I1"), 0U) << chk.report();
}

// S1 regression (wrap window): at µ=2 the slot-number space is 40960
// wrapped slots, not the default 20480 — slot_reached must derive the
// window from the configured numerology, and a migration whose boundary
// sits just past the 40959->0 wrap must execute exactly once, at the
// boundary.
TEST(FaultInjection, MigrationAcrossSlotNumberWrap) {
  Testbed tb{mu2_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  FaultPlan plan;
  // At t=10.239 s the current slot is 40956; boundary 40964 wraps to 4.
  plan.add(10'239_ms, FaultKind::kPlannedMigration, FaultSite::kNone, 8);
  inj.arm(plan);
  tb.start();
  tb.run_until(10'500_ms);

  EXPECT_EQ(tb.mbox().stats().migrations_executed, 1U);
  EXPECT_EQ(tb.mbox().active_phy(Testbed::kRu), Testbed::kPhyB);
  EXPECT_EQ(chk.count_matching("I3"), 0U) << chk.report();
}

// S4 regression: the Fig 7 drain window must close. Responses from the
// pre-migration primary delayed until long after the swap must be
// dropped, not accepted as drained.
TEST(FaultInjection, DrainWindowExpires) {
  Testbed tb{base_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  FaultPlan plan;
  // Capture the next three indications from the old primary's Orion
  // just before the boundary and deliver them 100 ms late.
  plan.add(300_ms, FaultKind::kDelayFapiInd, FaultSite::kOrionA, 3, 100_ms);
  plan.add(300_ms + 100_us, FaultKind::kPlannedMigration, FaultSite::kNone, 4);
  inj.arm(plan);
  tb.start();
  tb.run_until(600_ms);

  EXPECT_EQ(inj.indications_delayed(), 3U);
  EXPECT_EQ(tb.mbox().stats().migrations_executed, 1U);
  EXPECT_EQ(chk.count_matching("I4"), 0U) << chk.report();
}

// Randomized soak: ten thousand slots under a seeded random fault plan
// (datagram loss/corruption, duplicated and delayed notifications, two
// full kill/revive failover cycles). A correct system absorbs all of it
// with zero invariant violations; any violation is replayable from the
// seed.
TEST(FaultInjection, RandomizedSoakHoldsAllInvariants) {
  Testbed tb{base_config()};
  FaultInjector inj{tb};
  InvariantChecker chk{tb};
  RngRegistry rng_registry{20230823};  // fixed seed: replayable
  auto rng = rng_registry.stream("fault_plan");
  const FaultPlan plan =
      make_random_fault_plan(rng, 500_ms, 4'900_ms, 10, true);
  if (plan.contains(FaultKind::kDropFronthaul)) {
    // A dropped fronthaul frame can push a migration's execution to the
    // next packet of the boundary TTI.
    chk.allow_boundary_skew(1);
  }
  inj.arm(plan);
  tb.start();
  tb.run_until(5'000_ms);

  EXPECT_GE(failover_count(tb), 2);
  EXPECT_GT(chk.slots_checked(), 9'000);
  EXPECT_TRUE(chk.ok()) << chk.report();
  // Both PHYs ended the run alive (second revive restored the standby).
  EXPECT_TRUE(tb.phy_a().alive());
  EXPECT_TRUE(tb.phy_b().alive());
}

// Harness self-check: the same seed yields the same plan.
TEST(FaultInjection, RandomPlanIsDeterministic) {
  RngRegistry reg{99};
  auto r1 = reg.stream("p");
  auto r2 = reg.stream("p");
  const auto a = make_random_fault_plan(r1, 0, 3'000_ms, 8, true);
  const auto b = make_random_fault_plan(r2, 0, 3'000_ms, 8, true);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(describe(a.events[i]), describe(b.events[i])) << i;
  }
}

}  // namespace
}  // namespace slingshot
